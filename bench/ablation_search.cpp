// Ablation (DESIGN.md): value-network *search* vs greedy value use.
// §4.2 argues that combining the value network with best-first search beats
// using it greedily (the Q-learning / "hurry-up"-only equivalent). After
// training one Neo on JOB, re-plan the test set three ways:
//   best-first  - the full anytime search,
//   greedy      - hurry-up from the initial state (no heap),
//   random      - random valid plans (floor).
#include "bench/common.h"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
  const Options opt = Options::Parse(argc, argv);
  Env env = Env::Make(WorkloadKind::kJob, opt, /*build_rvec_joins=*/true);

  NeoRun run = NeoRun::Make(env, engine::EngineKind::kPostgres, FeatVariant::kRVector,
                            opt, 9000);
  const double native_total =
      run.OptimizerTotal(run.native.optimizer.get(), env.split.test);
  run.neo->Bootstrap(env.split.train, run.expert.optimizer.get());
  for (int e = 0; e < opt.EffectiveEpisodes(); ++e) run.neo->RunEpisode(env.split.train);

  double best_first = 0.0, greedy = 0.0, random_total = 0.0;
  optim::RandomOptimizer random(env.ds.schema, 4242);
  for (const query::Query* q : env.split.test) {
    best_first += run.neo->PlanAndExecute(*q);
    greedy += run.engine->ExecutePlan(*q, run.neo->search().GreedyPlan(*q).plan);
    random_total += run.engine->ExecutePlan(*q, random.Optimize(*q));
  }

  std::printf("# Ablation: search strategy vs plan quality (JOB test set)\n");
  std::printf("%-22s %12s\n", "strategy", "vs native");
  std::printf("%-22s %12.3f\n", "best-first search", best_first / native_total);
  std::printf("%-22s %12.3f\n", "greedy (hurry-up only)", greedy / native_total);
  std::printf("%-22s %12.3f\n", "random plans", random_total / native_total);
  return 0;
}
