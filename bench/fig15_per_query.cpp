// Figure 15: per-query absolute improvement vs PostgreSQL plans under two
// optimization goals: total workload cost vs relative (per-query) cost
// (§6.4.4). Prints per-query deltas (negative = Neo faster), the number of
// regressed queries, and the total workload saving for each cost function.
#include <algorithm>

#include "bench/common.h"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
  const Options opt = Options::Parse(argc, argv);
  Env env = Env::Make(WorkloadKind::kJob, opt, /*build_rvec_joins=*/true);
  const std::vector<const query::Query*> all = env.workload.All();

  std::printf("# Figure 15: per-query delta vs PostgreSQL plans (negative = faster)\n");

  struct Row {
    std::string name;
    double delta_ms;
  };

  for (core::CostFunction fn :
       {core::CostFunction::kLatency, core::CostFunction::kRelative}) {
    NeoRun run = NeoRun::Make(env, engine::EngineKind::kPostgres,
                              FeatVariant::kRVector, opt, 7000, fn);
    run.neo->Bootstrap(env.split.train, run.expert.optimizer.get());
    for (int e = 0; e < opt.EffectiveEpisodes(); ++e) {
      run.neo->RunEpisode(env.split.train);
    }

    std::vector<Row> rows;
    double total_delta = 0.0;
    int regressions = 0;
    double worst_regression = 0.0;
    for (const query::Query* q : all) {
      const double pg =
          run.engine->ExecutePlan(*q, run.expert.optimizer->Optimize(*q));
      const double neo_ms = run.neo->PlanAndExecute(*q);
      const double delta = neo_ms - pg;
      rows.push_back({q->name, delta});
      total_delta += delta;
      if (delta > 1.0) ++regressions;  // > 1ms counts as a regression.
      worst_regression = std::max(worst_regression, delta);
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.delta_ms < b.delta_ms; });

    std::printf("\n## cost function = %s\n", core::CostFunctionName(fn));
    std::printf("total workload delta: %.1f ms over %zu queries\n", total_delta,
                rows.size());
    std::printf("regressed queries (>1ms slower): %d; worst regression: %.1f ms\n",
                regressions, worst_regression);
    std::printf("best 5 improvements / worst 5 regressions:\n");
    for (size_t i = 0; i < std::min<size_t>(5, rows.size()); ++i) {
      std::printf("  %-12s %10.1f ms\n", rows[i].name.c_str(), rows[i].delta_ms);
    }
    for (size_t i = rows.size() >= 5 ? rows.size() - 5 : 0; i < rows.size(); ++i) {
      std::printf("  %-12s %10.1f ms\n", rows[i].name.c_str(), rows[i].delta_ms);
    }
    std::fflush(stdout);
  }
  return 0;
}
