// Shared infrastructure for the figure/table reproduction benches.
//
// Each bench binary accepts:
//   --quick        small datasets / few episodes (default; CI-friendly)
//   --full         paper-scale episodes and wider networks (slow)
//   --seeds N      number of random seeds (learning-curve bands)
//   --episodes N   override episode count
//   --scale X      dataset scale factor
#pragma once

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/neo.h"
#include "src/datagen/corp_gen.h"
#include "src/datagen/imdb_gen.h"
#include "src/datagen/tpch_gen.h"
#include "src/embedding/row_embedding.h"
#include "src/query/corp_workload.h"
#include "src/query/job_workload.h"
#include "src/query/tpch_workload.h"

namespace neo::bench {

struct Options {
  bool full = false;
  int seeds = 1;
  int episodes = -1;  ///< -1: per-mode default.
  double scale = -1.0;
  int train_cap = -1;  ///< Max training queries (-1: per-mode default).

  int EffectiveEpisodes() const { return episodes > 0 ? episodes : (full ? 50 : 12); }
  double EffectiveScale() const { return scale > 0 ? scale : (full ? 0.15 : 0.05); }
  int EffectiveTrainCap() const { return train_cap > 0 ? train_cap : (full ? 1000 : 40); }

  static Options Parse(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--full")) opt.full = true;
      if (!std::strcmp(argv[i], "--quick")) opt.full = false;
      if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc) opt.seeds = atoi(argv[++i]);
      if (!std::strcmp(argv[i], "--episodes") && i + 1 < argc) {
        opt.episodes = atoi(argv[++i]);
      }
      if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
        opt.scale = atof(argv[++i]);
      }
      if (!std::strcmp(argv[i], "--train-cap") && i + 1 < argc) {
        opt.train_cap = atoi(argv[++i]);
      }
    }
    return opt;
  }
};

enum class WorkloadKind { kJob, kTpch, kCorp };
inline const char* WorkloadName(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kJob: return "JOB";
    case WorkloadKind::kTpch: return "TPC-H";
    case WorkloadKind::kCorp: return "Corp";
  }
  return "?";
}

/// One dataset + workload + the shared read-only artifacts every run needs.
struct Env {
  datagen::Dataset ds;
  query::Workload workload{"none"};
  query::WorkloadSplit split;
  std::unique_ptr<catalog::Statistics> stats;
  std::unique_ptr<optim::HistogramEstimator> hist;
  std::unique_ptr<embedding::RowEmbedding> rvec_joins;
  std::unique_ptr<embedding::RowEmbedding> rvec_nojoins;

  static Env Make(WorkloadKind kind, const Options& opt, bool build_rvec_joins = false,
                  bool build_rvec_nojoins = false, uint64_t seed = 42) {
    Env env;
    datagen::GenOptions gen;
    gen.scale = opt.EffectiveScale();
    gen.seed = seed;
    switch (kind) {
      case WorkloadKind::kJob:
        env.ds = datagen::GenerateImdb(gen);
        env.workload = query::MakeJobWorkload(env.ds.schema, *env.ds.db);
        env.split = env.workload.Split(0.8, seed + 1);
        break;
      case WorkloadKind::kTpch:
        env.ds = datagen::GenerateTpch(gen);
        env.workload = query::MakeTpchWorkload(env.ds.schema, *env.ds.db);
        // Paper: no template shared between train and test.
        env.split = query::SplitByTemplate(env.workload, 4, seed + 1);
        break;
      case WorkloadKind::kCorp:
        env.ds = datagen::GenerateCorp(gen);
        env.workload = query::MakeCorpWorkload(env.ds.schema, *env.ds.db);
        env.split = env.workload.Split(0.8, seed + 1);
        break;
    }
    // Cap training-set size for bench runtime; test set untouched.
    const size_t cap = static_cast<size_t>(opt.EffectiveTrainCap());
    if (env.split.train.size() > cap) env.split.train.resize(cap);

    env.stats = std::make_unique<catalog::Statistics>(env.ds.schema, *env.ds.db);
    env.hist = std::make_unique<optim::HistogramEstimator>(env.ds.schema, *env.stats,
                                                           *env.ds.db);
    if (build_rvec_joins) {
      embedding::RowEmbeddingOptions ropt;
      ropt.mode = embedding::RowEmbeddingMode::kJoins;
      ropt.w2v.dim = opt.full ? 32 : 16;
      ropt.w2v.epochs = opt.full ? 10 : 8;
      env.rvec_joins =
          std::make_unique<embedding::RowEmbedding>(env.ds.schema, *env.ds.db, ropt);
    }
    if (build_rvec_nojoins) {
      embedding::RowEmbeddingOptions ropt;
      ropt.mode = embedding::RowEmbeddingMode::kNoJoins;
      ropt.w2v.dim = opt.full ? 32 : 16;
      ropt.w2v.epochs = opt.full ? 10 : 8;
      env.rvec_nojoins =
          std::make_unique<embedding::RowEmbedding>(env.ds.schema, *env.ds.db, ropt);
    }
    return env;
  }
};

/// Featurization variants of Fig. 12 / 13.
enum class FeatVariant { kRVector, kRVectorNoJoins, kHistogram, k1Hot };
inline const char* FeatVariantName(FeatVariant v) {
  switch (v) {
    case FeatVariant::kRVector: return "R-Vector";
    case FeatVariant::kRVectorNoJoins: return "R-Vector(no joins)";
    case FeatVariant::kHistogram: return "Histogram";
    case FeatVariant::k1Hot: return "1-Hot";
  }
  return "?";
}

inline core::NeoConfig DefaultNeoConfig(const Options& opt, uint64_t seed) {
  core::NeoConfig cfg;
  if (opt.full) {
    cfg.net.query_fc = {128, 64, 32};
    cfg.net.tree_channels = {64, 32, 16};
    cfg.net.head_fc = {32, 16};
    cfg.search.max_expansions = 120;
    cfg.epochs_per_episode = 4;
  } else {
    cfg.net.query_fc = {64, 32};
    cfg.net.tree_channels = {32, 16};
    cfg.net.head_fc = {16};
    cfg.search.max_expansions = 60;
    cfg.epochs_per_episode = 4;
  }
  cfg.net.adam.lr = 1e-3f;
  cfg.batch_size = 32;
  cfg.seed = seed;
  return cfg;
}

/// One full Neo training setup against one engine.
struct NeoRun {
  std::unique_ptr<engine::ExecutionEngine> engine;
  optim::NativeOptimizer native;   ///< The engine's own optimizer (baseline).
  optim::NativeOptimizer expert;   ///< PostgreSQL-style expert (bootstrap).
  std::unique_ptr<featurize::Featurizer> featurizer;
  std::unique_ptr<core::Neo> neo;

  static NeoRun Make(Env& env, engine::EngineKind kind, FeatVariant variant,
                     const Options& opt, uint64_t seed,
                     core::CostFunction cost_fn = core::CostFunction::kLatency,
                     const std::function<void(core::NeoConfig&)>& tweak = {}) {
    NeoRun run;
    run.engine = std::make_unique<engine::ExecutionEngine>(env.ds.schema, *env.ds.db,
                                                           kind);
    run.native = optim::MakeNativeOptimizer(kind, env.ds.schema, *env.ds.db);
    run.expert = optim::MakeNativeOptimizer(engine::EngineKind::kPostgres,
                                            env.ds.schema, *env.ds.db);
    featurize::FeaturizerConfig fcfg;
    const embedding::RowEmbedding* rvec = nullptr;
    switch (variant) {
      case FeatVariant::kRVector:
        fcfg.encoding = featurize::PredicateEncoding::kRVector;
        rvec = env.rvec_joins.get();
        break;
      case FeatVariant::kRVectorNoJoins:
        fcfg.encoding = featurize::PredicateEncoding::kRVector;
        rvec = env.rvec_nojoins.get();
        break;
      case FeatVariant::kHistogram:
        fcfg.encoding = featurize::PredicateEncoding::kHistogram;
        break;
      case FeatVariant::k1Hot:
        fcfg.encoding = featurize::PredicateEncoding::k1Hot;
        break;
    }
    run.featurizer = std::make_unique<featurize::Featurizer>(
        env.ds.schema, *env.ds.db, fcfg, env.hist.get(), rvec);
    core::NeoConfig cfg = DefaultNeoConfig(opt, seed);
    cfg.cost_function = cost_fn;
    if (tweak) tweak(cfg);
    run.neo = std::make_unique<core::Neo>(run.featurizer.get(), run.engine.get(), cfg);
    return run;
  }

  /// Total latency of a plan set produced by an optimizer, on this engine.
  double OptimizerTotal(optim::Optimizer* optimizer,
                        const std::vector<const query::Query*>& queries) {
    double total = 0.0;
    for (const auto* q : queries) {
      total += engine->ExecutePlan(*q, optimizer->Optimize(*q));
    }
    return total;
  }
};

/// Simple aggregate helpers.
inline double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}
inline double Min(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}
inline double Max(const std::vector<double>& v) {
  return *std::max_element(v.begin(), v.end());
}

}  // namespace neo::bench
