// Figure 16: plan quality vs search cutoff, grouped by join count.
// After training on JOB, each query is re-planned with increasing expansion
// budgets; reported value is latency relative to the best observed latency
// for that query across all budgets (1.0 = found the best plan). Paper
// shape: small queries saturate at small budgets; queries with more joins
// need a larger budget; beyond saturation, more time does not help.
#include <map>

#include "bench/common.h"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
  const Options opt = Options::Parse(argc, argv);
  Env env = Env::Make(WorkloadKind::kJob, opt, /*build_rvec_joins=*/true);

  NeoRun run = NeoRun::Make(env, engine::EngineKind::kPostgres, FeatVariant::kRVector,
                            opt, 8000);
  run.neo->Bootstrap(env.split.train, run.expert.optimizer.get());
  for (int e = 0; e < opt.EffectiveEpisodes(); ++e) run.neo->RunEpisode(env.split.train);

  const std::vector<int> budgets = {5, 10, 20, 40, 80, 160};

  // latency[#joins][budget] accumulated over queries.
  std::map<int, std::map<int, double>> latency;
  std::map<int, double> best_total;
  std::map<int, int> count;

  const auto all_queries = env.workload.All();
  for (size_t qi = 0; qi < all_queries.size(); qi += 2) {
    const query::Query* q = all_queries[qi];
    const int joins = static_cast<int>(q->num_joins());
    std::map<int, double> by_budget;
    double best = 1e300;
    for (int budget : budgets) {
      core::SearchOptions sopt = run.neo->config().search;
      sopt.max_expansions = budget;
      const core::SearchResult r = run.neo->search().FindPlan(*q, sopt);
      const double ms = run.engine->ExecutePlan(*q, r.plan);
      by_budget[budget] = ms;
      best = std::min(best, ms);
    }
    for (int budget : budgets) latency[joins][budget] += by_budget[budget];
    best_total[joins] += best;
    count[joins]++;
  }

  std::printf("# Figure 16: latency relative to best-observed vs search budget\n");
  std::printf("%-6s %-3s |", "joins", "n");
  for (int b : budgets) std::printf(" %7d", b);
  std::printf("  (expansions)\n");
  for (const auto& [joins, by_budget] : latency) {
    std::printf("%-6d %-3d |", joins, count[joins]);
    for (int b : budgets) {
      std::printf(" %7.3f", by_budget.at(b) / best_total[joins]);
    }
    std::printf("\n");
  }
  return 0;
}
