// Figure 14: robustness to cardinality estimation errors.
//
// Two Neo models are trained with an extra per-node cardinality feature:
// one fed PostgreSQL-style estimates, one fed true cardinalities. At
// inference, the feature is perturbed by 0 / 2 / 5 orders of magnitude and
// the distribution of value-network outputs over JOB plans is printed,
// bucketed by join count (<=3 vs >3).
//
// Paper shape: the estimate-fed model varies with error only for <=3 joins
// (it learned to distrust estimates on big joins); the true-cardinality
// model varies in both buckets.
#include <cmath>

#include "bench/common.h"

using namespace neo;
using namespace neo::bench;

namespace {

struct Histo {
  static constexpr int kBuckets = 9;
  int counts[kBuckets] = {0};
  int total = 0;
  void Add(double v) {
    // Buckets over normalized output in [-2, 2.5].
    int b = static_cast<int>((v + 2.0) / 0.5);
    b = std::max(0, std::min(kBuckets - 1, b));
    counts[b]++;
    total++;
  }
  double StdDev() const {
    // Std of bucket centers (summary statistic for the spread).
    if (total == 0) return 0;
    double mean = 0;
    for (int b = 0; b < kBuckets; ++b) mean += (-1.75 + 0.5 * b) * counts[b];
    mean /= total;
    double var = 0;
    for (int b = 0; b < kBuckets; ++b) {
      const double c = -1.75 + 0.5 * b;
      var += counts[b] * (c - mean) * (c - mean);
    }
    return std::sqrt(var / total);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = Options::Parse(argc, argv);
  Env env = Env::Make(WorkloadKind::kJob, opt);

  std::printf(
      "# Figure 14: value-network output distribution vs injected card error\n");
  std::printf("%-12s %-8s %-6s %8s   histogram(output in [-2,2.5], 9 buckets)\n",
              "card-source", "joins", "error", "stddev");

  for (featurize::CardChannel channel :
       {featurize::CardChannel::kEstimated, featurize::CardChannel::kTrue}) {
    // Train one model with this cardinality channel (no injected error).
    engine::ExecutionEngine engine(env.ds.schema, *env.ds.db,
                                   engine::EngineKind::kPostgres);
    auto expert = optim::MakeNativeOptimizer(engine::EngineKind::kPostgres,
                                             env.ds.schema, *env.ds.db);
    featurize::FeaturizerConfig fcfg;
    fcfg.encoding = featurize::PredicateEncoding::kHistogram;
    fcfg.card_channel = channel;
    featurize::Featurizer featurizer(env.ds.schema, *env.ds.db, fcfg, env.hist.get(),
                                     nullptr, &engine.oracle());
    core::NeoConfig cfg = DefaultNeoConfig(opt, 6000);
    core::Neo neo(&featurizer, &engine, cfg);
    neo.Bootstrap(env.split.train, expert.optimizer.get());
    const int episodes = std::max(4, opt.EffectiveEpisodes() / 2);
    for (int e = 0; e < episodes; ++e) neo.RunEpisode(env.split.train);

    for (double error : {0.0, 2.0, 5.0}) {
      // Error-injecting featurizer sharing the trained net's input layout.
      featurize::FeaturizerConfig ecfg = fcfg;
      ecfg.card_error_orders = error;
      featurize::Featurizer err_feat(env.ds.schema, *env.ds.db, ecfg, env.hist.get(),
                                     nullptr, &engine.oracle());
      Histo small_joins, big_joins;
      for (const query::Query* q : env.workload.All()) {
        const plan::PartialPlan plan = expert.optimizer->Optimize(*q);
        const nn::PlanSample sample = err_feat.Encode(*q, plan);
        const float out = neo.net().Predict(sample);
        (q->num_joins() <= 3 ? small_joins : big_joins).Add(out);
      }
      for (const auto& [name, histo] :
           {std::pair<const char*, const Histo&>{"<=3", small_joins},
            {">3", big_joins}}) {
        std::printf("%-12s %-8s %-6.0f %8.3f   [",
                    channel == featurize::CardChannel::kEstimated ? "postgres-est"
                                                                  : "true-card",
                    name, error, histo.StdDev());
        for (int b = 0; b < Histo::kBuckets; ++b) std::printf("%3d", histo.counts[b]);
        std::printf(" ]\n");
      }
      std::fflush(stdout);
    }
  }
  return 0;
}
