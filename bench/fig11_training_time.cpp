// Figure 11: training time to reach (a) PostgreSQL-plans-on-engine parity
// and (b) native-optimizer parity, per engine, split into neural-network
// time and query-execution time. NN time is measured wall-clock; execution
// time is the simulated latency the engine accrued (what a real deployment
// would spend running queries), divided by the paper's parallel execution
// factor (queries were executed on multiple nodes simultaneously).
//
// With --no-demo, reproduces §6.3.3: bootstrapping from random plans with a
// latency clip instead of the PostgreSQL expert. The run reports whether
// parity was reached within the episode budget (the paper: it is not, even
// after weeks).
#include <cstring>

#include "bench/common.h"
#include "src/util/stopwatch.h"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
  const Options opt = Options::Parse(argc, argv);
  bool no_demo = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--no-demo")) no_demo = true;
  }
  constexpr double kExecutionParallelism = 8.0;  // Paper: parallel executors.
  const engine::EngineKind kEngines[] = {
      engine::EngineKind::kPostgres, engine::EngineKind::kSqlite,
      engine::EngineKind::kMssql, engine::EngineKind::kOracle};

  std::printf("# Figure 11: time to milestones on JOB (%s bootstrap)\n",
              no_demo ? "NO-DEMONSTRATION (random, clipped)" : "PostgreSQL expert");
  std::printf("%-8s %-12s %10s %10s %10s %8s\n", "engine", "milestone", "nn_min",
              "exec_min", "total_min", "episode");

  Env env = Env::Make(WorkloadKind::kJob, opt, /*build_rvec_joins=*/true);
  const int episodes = opt.EffectiveEpisodes() * (no_demo ? 2 : 1);

  for (engine::EngineKind ek : kEngines) {
    NeoRun run = NeoRun::Make(
        env, ek, FeatVariant::kRVector, opt, 3000, core::CostFunction::kLatency,
        [&](core::NeoConfig& cfg) {
          // §6.3.3: an ad-hoc timeout clips the reward signal — plans slower
          // than the clip all look equally bad to the model.
          if (no_demo) cfg.latency_clip_ms = 2000.0;
        });
    const double native_total =
        run.OptimizerTotal(run.native.optimizer.get(), env.split.test);
    const double pg_total =
        run.OptimizerTotal(run.expert.optimizer.get(), env.split.test);
    const double exec_baseline_ms = run.engine->simulated_execution_ms();

    optim::RandomOptimizer random(env.ds.schema, 77);
    if (no_demo) {
      run.neo->Bootstrap(env.split.train, &random);
    } else {
      run.neo->Bootstrap(env.split.train, run.expert.optimizer.get());
    }

    bool hit_pg = false, hit_native = false;
    for (int e = 0; e < episodes; ++e) {
      run.neo->RunEpisode(env.split.train);
      const double neo_total = run.neo->EvaluateTotalLatency(env.split.test);
      const double nn_min = run.neo->total_nn_time_ms() / 60000.0;
      const double exec_min = (run.engine->simulated_execution_ms() -
                               exec_baseline_ms) /
                              kExecutionParallelism / 60000.0;
      if (!hit_pg && neo_total <= pg_total) {
        hit_pg = true;
        std::printf("%-8s %-12s %10.2f %10.2f %10.2f %8d\n",
                    engine::EngineKindName(ek), "PostgreSQL", nn_min, exec_min,
                    nn_min + exec_min, e + 1);
        std::fflush(stdout);
      }
      if (!hit_native && neo_total <= native_total) {
        hit_native = true;
        std::printf("%-8s %-12s %10.2f %10.2f %10.2f %8d\n",
                    engine::EngineKindName(ek), "Native", nn_min, exec_min,
                    nn_min + exec_min, e + 1);
        std::fflush(stdout);
      }
      if (hit_pg && hit_native) break;
    }
    if (!hit_pg) {
      std::printf("%-8s %-12s %10s %10s %10s %8s\n", engine::EngineKindName(ek),
                  "PostgreSQL", "-", "-", "-", "never");
    }
    if (!hit_native) {
      std::printf("%-8s %-12s %10s %10s %10s %8s\n", engine::EngineKindName(ek),
                  "Native", "-", "-", "-", "never");
    }
    std::fflush(stdout);
  }
  return 0;
}
