// Figure 12: featurization ablation on JOB across the four engines.
// Relative test-set performance (Neo / native optimizer) for R-Vector,
// R-Vector(no joins), Histogram, and 1-Hot. Paper shape: 1-Hot worst,
// Histogram middle, R-Vector best with no-joins slightly behind.
#include "bench/common.h"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
  const Options opt = Options::Parse(argc, argv);
  const engine::EngineKind kEngines[] = {
      engine::EngineKind::kPostgres, engine::EngineKind::kSqlite,
      engine::EngineKind::kMssql, engine::EngineKind::kOracle};
  const FeatVariant kVariants[] = {FeatVariant::kRVector, FeatVariant::kRVectorNoJoins,
                                   FeatVariant::kHistogram, FeatVariant::k1Hot};

  std::printf("# Figure 12: Neo/native relative latency on JOB per featurization\n");
  std::printf("%-8s %-20s %12s\n", "engine", "featurization", "neo/native");

  Env env = Env::Make(WorkloadKind::kJob, opt, /*build_rvec_joins=*/true,
                      /*build_rvec_nojoins=*/true);
  for (engine::EngineKind ek : kEngines) {
    for (FeatVariant v : kVariants) {
      std::vector<double> ratios;
      for (int seed = 0; seed < opt.seeds; ++seed) {
        NeoRun run = NeoRun::Make(env, ek, v, opt,
                                  4000 + static_cast<uint64_t>(seed) * 59);
        const double native_total =
            run.OptimizerTotal(run.native.optimizer.get(), env.split.test);
        run.neo->Bootstrap(env.split.train, run.expert.optimizer.get());
        for (int e = 0; e < opt.EffectiveEpisodes(); ++e) {
          run.neo->RunEpisode(env.split.train);
        }
        ratios.push_back(run.neo->EvaluateTotalLatency(env.split.test) / native_total);
      }
      std::printf("%-8s %-20s %12.3f\n", engine::EngineKindName(ek),
                  FeatVariantName(v), Median(ratios));
      std::fflush(stdout);
    }
  }
  return 0;
}
