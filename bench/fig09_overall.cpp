// Figure 9: relative performance of Neo's plans vs each engine's native
// optimizer, across 4 engines x 3 workloads, R-Vector featurization.
// Lower is better; < 1.0 means Neo beats the native optimizer on its own
// engine. Also prints PostgreSQL-expert-plans-on-engine for context (the
// bootstrap source, as in Fig. 10's dashed lines).
#include "bench/common.h"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
  const Options opt = Options::Parse(argc, argv);
  const engine::EngineKind kEngines[] = {
      engine::EngineKind::kPostgres, engine::EngineKind::kSqlite,
      engine::EngineKind::kMssql, engine::EngineKind::kOracle};
  const WorkloadKind kWorkloads[] = {WorkloadKind::kJob, WorkloadKind::kTpch,
                                     WorkloadKind::kCorp};

  std::printf("# Figure 9: relative test-set latency of Neo vs native optimizer\n");
  std::printf("# (median over %d seed(s), %d episodes, R-Vector encoding)\n",
              opt.seeds, opt.EffectiveEpisodes());
  std::printf("%-10s %-8s %12s %14s %14s\n", "workload", "engine", "neo/native",
              "pg-plans/nat", "neo_total_ms");

  for (WorkloadKind wk : kWorkloads) {
    Env env = Env::Make(wk, opt, /*build_rvec_joins=*/true);
    for (engine::EngineKind ek : kEngines) {
      std::vector<double> ratios;
      double last_total = 0, pg_ratio = 0;
      for (int seed = 0; seed < opt.seeds; ++seed) {
        NeoRun run = NeoRun::Make(env, ek, FeatVariant::kRVector, opt,
                                  1000 + static_cast<uint64_t>(seed) * 77);
        const double native_total =
            run.OptimizerTotal(run.native.optimizer.get(), env.split.test);
        const double pg_total =
            run.OptimizerTotal(run.expert.optimizer.get(), env.split.test);
        run.neo->Bootstrap(env.split.train, run.expert.optimizer.get());
        // Evaluate the final policy as the median of the last three
        // episodes' test evaluations (the paper reports the median over 50
        // full runs; per-episode policies oscillate, §6.3.1).
        std::vector<double> tail;
        for (int e = 0; e < opt.EffectiveEpisodes(); ++e) {
          run.neo->RunEpisode(env.split.train);
          if (e >= opt.EffectiveEpisodes() - 3) {
            tail.push_back(run.neo->EvaluateTotalLatency(env.split.test));
          }
        }
        const double neo_total = Median(tail);
        ratios.push_back(neo_total / native_total);
        pg_ratio = pg_total / native_total;
        last_total = neo_total;
      }
      std::printf("%-10s %-8s %12.3f %14.3f %14.1f\n", WorkloadName(wk),
                  engine::EngineKindName(ek), Median(ratios), pg_ratio, last_total);
      std::fflush(stdout);
    }
  }
  return 0;
}
