// Figure 13: generalization to entirely new queries (Ext-JOB).
// After training on JOB, evaluate on the 24 Ext-JOB queries (full bar),
// then run 5 additional learning episodes that include the Ext-JOB queries
// and re-evaluate (solid bar). Printed per featurization.
#include "bench/common.h"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
  const Options opt = Options::Parse(argc, argv);
  const engine::EngineKind kEngines[] = {engine::EngineKind::kPostgres,
                                         engine::EngineKind::kMssql};
  const FeatVariant kVariants[] = {FeatVariant::kRVector, FeatVariant::kRVectorNoJoins,
                                   FeatVariant::kHistogram, FeatVariant::k1Hot};

  std::printf("# Figure 13: Neo on Ext-JOB (never-seen queries), relative to native\n");
  std::printf("%-8s %-20s %14s %14s\n", "engine", "featurization", "before",
              "after-5-eps");

  Env env = Env::Make(WorkloadKind::kJob, opt, /*build_rvec_joins=*/true,
                      /*build_rvec_nojoins=*/true);
  const query::Workload ext =
      query::MakeExtJobWorkload(env.ds.schema, *env.ds.db);
  const std::vector<const query::Query*> ext_queries = ext.All();

  for (engine::EngineKind ek : kEngines) {
    for (FeatVariant v : kVariants) {
      NeoRun run = NeoRun::Make(env, ek, v, opt, 5000);
      const double native_ext =
          run.OptimizerTotal(run.native.optimizer.get(), ext_queries);
      run.neo->Bootstrap(env.split.train, run.expert.optimizer.get());
      for (int e = 0; e < opt.EffectiveEpisodes(); ++e) {
        run.neo->RunEpisode(env.split.train);
      }
      const double before = run.neo->EvaluateTotalLatency(ext_queries) / native_ext;

      // Five additional episodes that include the new queries (§6.4.2
      // "Learning new queries"). Baselines for the relative cost are not
      // needed (latency cost function).
      std::vector<const query::Query*> mixed = env.split.train;
      mixed.insert(mixed.end(), ext_queries.begin(), ext_queries.end());
      for (int e = 0; e < 5; ++e) run.neo->RunEpisode(mixed);
      const double after = run.neo->EvaluateTotalLatency(ext_queries) / native_ext;

      std::printf("%-8s %-20s %14.3f %14.3f\n", engine::EngineKindName(ek),
                  FeatVariantName(v), before, after);
      std::fflush(stdout);
    }
  }
  return 0;
}
