// Guardrail micro-benchmarks + the BENCH_guard.json fault-injection report.
//
// The JSON measurement runs three serving arms over a JOB subset:
//   expert    - the expert optimizer's plans, fault-free (the baseline).
//   unguarded - Neo with every guardrail off, under deterministic injected
//               latency spikes, execution failures, and retrain weight
//               corruption: the workload total regresses badly.
//   guarded   - the same faults with watchdog + circuit breaker + model
//               health armed: the total is structurally bounded by
//               watchdog_factor x the expert baseline (every serve, learned
//               or fallback, is clipped at watchdog_factor x its query's
//               baseline), and after the faults stop the breaker's half-open
//               probes re-admit the learned plans.
// It also measures happy-path overhead: the guarded serve path (inert
// thresholds, no faults) vs the guards-off fast path on a hot serving loop.
//
// The google-benchmark suite runs after the JSON measurement; pass
// --benchmark_filter etc. as usual.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/neo.h"
#include "src/datagen/imdb_gen.h"
#include "src/query/job_workload.h"
#include "src/util/stopwatch.h"

namespace {

using namespace neo;

struct Fixture {
  datagen::Dataset ds;
  query::Workload wl{"none"};
  std::unique_ptr<featurize::Featurizer> feat;
  std::vector<const query::Query*> train;

  Fixture() {
    datagen::GenOptions opt;
    opt.scale = 0.05;
    ds = datagen::GenerateImdb(opt);
    wl = query::MakeJobWorkload(ds.schema, *ds.db);
    feat = std::make_unique<featurize::Featurizer>(ds.schema, *ds.db,
                                                   featurize::FeaturizerConfig{});
    for (size_t i = 0; i < wl.size(); i += 7) train.push_back(&wl.query(i));
  }
  static core::NeoConfig Config() {
    core::NeoConfig cfg;
    cfg.net.query_fc = {64, 32};
    cfg.net.tree_channels = {32, 16};
    cfg.net.head_fc = {16};
    cfg.search.max_expansions = 40;
    return cfg;
  }
  static core::GuardrailConfig Guards(double watchdog_factor) {
    core::GuardrailConfig g;
    g.watchdog.baseline_factor = watchdog_factor;
    g.breaker.enabled = true;
    g.breaker.trip_after = 2;
    g.breaker.regression_factor = 1.5;
    g.breaker.initial_cooldown = 1;
    g.breaker.max_cooldown = 8;
    g.health.enabled = true;
    return g;
  }
  static Fixture& Get() {
    static Fixture f;
    return f;
  }
};

// ---- google-benchmark micro measurements ----------------------------------

void BM_BreakerDecision(benchmark::State& state) {
  core::CircuitBreakerOptions opt;
  opt.enabled = true;
  opt.trip_after = 3;
  core::CircuitBreaker breaker(opt);
  uint64_t fp = 0;
  for (auto _ : state) {
    const bool learned = breaker.AllowLearned(fp & 63);
    breaker.RecordLearnedOutcome(fp & 63, (fp & 7) == 0);
    benchmark::DoNotOptimize(learned);
    ++fp;
  }
}
BENCHMARK(BM_BreakerDecision);

void BM_InjectorDraw(benchmark::State& state) {
  util::FaultInjectorConfig cfg;
  cfg.enabled = true;
  cfg.latency_spike_p = 0.25;
  cfg.latency_spike_factor = 40.0;
  util::FaultInjector injector(cfg);
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(injector.PerturbLatency(key & 255, 10.0));
    ++key;
  }
}
BENCHMARK(BM_InjectorDraw);

void BM_HealthSnapshot(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  engine::ExecutionEngine eng(f.ds.schema, *f.ds.db, engine::EngineKind::kPostgres);
  core::Neo neo(f.feat.get(), &eng, Fixture::Config());
  nn::ValueNetwork::WeightSnapshot snap;
  for (auto _ : state) {
    neo.net().CaptureSnapshot(&snap);
    benchmark::DoNotOptimize(snap);
  }
  state.SetLabel(std::to_string(neo.net().NumParameters()) + " params");
}
BENCHMARK(BM_HealthSnapshot);

/// Hot serving loop (cached search + memoized execution): guards off vs the
/// guarded path with inert thresholds. The delta is the guard bookkeeping.
void BM_HotServe(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const bool guarded = state.range(0) != 0;
  engine::ExecutionEngine eng(f.ds.schema, *f.ds.db, engine::EngineKind::kPostgres);
  auto expert = optim::MakeNativeOptimizer(engine::EngineKind::kPostgres, f.ds.schema,
                                           *f.ds.db);
  core::NeoConfig cfg = Fixture::Config();
  if (guarded) cfg.guards = Fixture::Guards(/*watchdog_factor=*/1e9);
  core::Neo neo(f.feat.get(), &eng, cfg);
  neo.Bootstrap(f.train, expert.optimizer.get());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(neo.PlanAndExecute(*f.train[i % f.train.size()]));
    ++i;
  }
  state.SetLabel(guarded ? "guarded(inert)" : "guards-off");
}
BENCHMARK(BM_HotServe)->Arg(0)->Arg(1);

// ---- BENCH_guard.json ------------------------------------------------------

struct ArmResult {
  double total_ms = 0.0;
  double worst_regression = 0.0;  ///< max over serves of latency / baseline.
  core::GuardStats guards;
  size_t injected_spikes = 0;
  size_t injected_failures = 0;
  size_t weight_corruptions = 0;
  // Post-fault recovery phase (guarded arm only).
  int64_t recovery_recoveries = 0;
  double recovery_learned_fraction = 0.0;
};

/// One serving round: retrain, then serve every training query (the
/// RunEpisode shape, unrolled so per-serve regressions are observable).
void ServeRound(core::Neo& neo, const std::vector<const query::Query*>& queries,
                double* total_ms, double* worst_regression) {
  neo.Retrain();
  for (const query::Query* q : queries) {
    const double latency = neo.ExecuteAndLearn(*q);
    *total_ms += latency;
    const double regression = latency / neo.Baseline(q->id);
    if (regression > *worst_regression) *worst_regression = regression;
  }
}

ArmResult RunArm(bool guarded, double watchdog_factor, int fault_rounds,
                 int recovery_rounds, const util::FaultInjectorConfig& fcfg) {
  Fixture& f = Fixture::Get();
  engine::ExecutionEngine eng(f.ds.schema, *f.ds.db, engine::EngineKind::kPostgres);
  auto expert = optim::MakeNativeOptimizer(engine::EngineKind::kPostgres, f.ds.schema,
                                           *f.ds.db);
  core::NeoConfig cfg = Fixture::Config();
  if (guarded) cfg.guards = Fixture::Guards(watchdog_factor);
  core::Neo neo(f.feat.get(), &eng, cfg);
  // Bootstrap is fault-free: baselines must be honest expert latencies.
  neo.Bootstrap(f.train, expert.optimizer.get());

  util::FaultInjector injector(fcfg);
  eng.SetFaultInjector(&injector);
  neo.SetFaultInjector(&injector);
  ArmResult r;
  for (int round = 0; round < fault_rounds; ++round) {
    ServeRound(neo, f.train, &r.total_ms, &r.worst_regression);
  }
  eng.SetFaultInjector(nullptr);
  neo.SetFaultInjector(nullptr);
  r.injected_spikes = injector.latency_spikes();
  r.injected_failures = injector.execution_failures();
  r.weight_corruptions = injector.weight_corruptions();

  // Recovery: faults stop; the breaker's half-open probes should re-admit
  // the learned plans (recoveries move, learned serves dominate again).
  const core::GuardStats at_fault_end = neo.guard_stats();
  double recovery_total = 0.0, recovery_worst = 0.0;
  for (int round = 0; round < recovery_rounds; ++round) {
    ServeRound(neo, f.train, &recovery_total, &recovery_worst);
  }
  r.guards = neo.guard_stats();
  r.recovery_recoveries = r.guards.breaker_recoveries - at_fault_end.breaker_recoveries;
  const int64_t recovery_serves =
      (r.guards.learned_serves + r.guards.fallback_serves) -
      (at_fault_end.learned_serves + at_fault_end.fallback_serves);
  if (recovery_serves > 0) {
    r.recovery_learned_fraction =
        static_cast<double>(r.guards.learned_serves - at_fault_end.learned_serves) /
        static_cast<double>(recovery_serves);
  }
  return r;
}

/// Wall seconds for `rounds` hot serving passes (no faults, no retraining:
/// cached search + memoized execution — the tightest happy path, i.e. the
/// worst case for relative guard overhead).
double MeasureHotServeSeconds(bool inert_guards, int rounds) {
  Fixture& f = Fixture::Get();
  engine::ExecutionEngine eng(f.ds.schema, *f.ds.db, engine::EngineKind::kPostgres);
  auto expert = optim::MakeNativeOptimizer(engine::EngineKind::kPostgres, f.ds.schema,
                                           *f.ds.db);
  core::NeoConfig cfg = Fixture::Config();
  if (inert_guards) cfg.guards = Fixture::Guards(/*watchdog_factor=*/1e9);
  core::Neo neo(f.feat.get(), &eng, cfg);
  neo.Bootstrap(f.train, expert.optimizer.get());
  // Warm pass: populate score/latency caches.
  for (const query::Query* q : f.train) neo.PlanAndExecute(*q);
  util::Stopwatch watch;
  for (int round = 0; round < rounds; ++round) {
    for (const query::Query* q : f.train) {
      const double latency = neo.PlanAndExecute(*q);
      benchmark::DoNotOptimize(latency);
    }
  }
  return watch.ElapsedSeconds();
}

void WriteGuardJson(const std::string& path, int reps) {
  Fixture& f = Fixture::Get();
  constexpr int kFaultRounds = 6;
  constexpr int kRecoveryRounds = 4;
  constexpr double kWatchdogFactor = 2.0;

  util::FaultInjectorConfig fcfg;
  fcfg.enabled = true;
  fcfg.seed = 42;
  if (const char* env_seed = std::getenv("NEO_FAULT_SEED")) {
    fcfg.seed = static_cast<uint64_t>(std::strtoull(env_seed, nullptr, 10));
  }
  fcfg.latency_spike_p = 0.25;
  fcfg.latency_spike_factor = 40.0;
  fcfg.exec_failure_p = 0.05;
  // High enough that some retrains corrupt at any plausible seed (the draws
  // are per-retrain-index Bernoulli), so the rollback path gets exercised.
  fcfg.weight_corruption_p = 0.5;

  // Expert baseline: one fault-free pass, scaled to the fault-phase rounds.
  double expert_pass = 0.0;
  {
    engine::ExecutionEngine eng(f.ds.schema, *f.ds.db, engine::EngineKind::kPostgres);
    auto expert = optim::MakeNativeOptimizer(engine::EngineKind::kPostgres,
                                             f.ds.schema, *f.ds.db);
    for (const query::Query* q : f.train) {
      expert_pass += eng.ExecutePlan(*q, expert.optimizer->Optimize(*q));
    }
  }
  const double expert_total = expert_pass * kFaultRounds;

  const ArmResult unguarded =
      RunArm(false, kWatchdogFactor, kFaultRounds, /*recovery_rounds=*/0, fcfg);
  const ArmResult guarded =
      RunArm(true, kWatchdogFactor, kFaultRounds, kRecoveryRounds, fcfg);

  // Happy-path overhead: median hot-serve wall time, guards off vs inert.
  std::vector<double> off_s, on_s;
  for (int rep = 0; rep < reps; ++rep) {
    off_s.push_back(MeasureHotServeSeconds(false, /*rounds=*/30));
    on_s.push_back(MeasureHotServeSeconds(true, /*rounds=*/30));
  }
  std::sort(off_s.begin(), off_s.end());
  std::sort(on_s.begin(), on_s.end());
  const double off_med = off_s[off_s.size() / 2];
  const double on_med = on_s[on_s.size() / 2];
  const double overhead_pct = 100.0 * (on_med - off_med) / off_med;

  const double guarded_vs_expert = guarded.total_ms / expert_total;
  const double unguarded_vs_expert = unguarded.total_ms / expert_total;
  const bool bound_satisfied = guarded.total_ms <= kWatchdogFactor * expert_total * (1 + 1e-9);

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "micro_guard: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"micro_guard\",\n"
               "  \"kernel_arch\": \"%s\",\n"
               "  \"queries\": %zu,\n"
               "  \"fault_rounds\": %d,\n"
               "  \"recovery_rounds\": %d,\n"
               "  \"watchdog_factor\": %.2f,\n"
               "  \"fault_seed\": %llu,\n"
               "  \"fault_config\": {\"spike_p\": %.3f, \"spike_factor\": %.1f,"
               " \"fail_p\": %.3f, \"corrupt_p\": %.3f},\n"
               "  \"expert_total_ms\": %.3f,\n",
               nn::KernelArchString(), f.train.size(), kFaultRounds, kRecoveryRounds,
               kWatchdogFactor, static_cast<unsigned long long>(fcfg.seed),
               fcfg.latency_spike_p, fcfg.latency_spike_factor, fcfg.exec_failure_p,
               fcfg.weight_corruption_p, expert_total);
  std::fprintf(out,
               "  \"unguarded\": {\"total_ms\": %.3f, \"worst_regression\": %.2f,"
               " \"injected_spikes\": %zu, \"injected_failures\": %zu,"
               " \"weight_corruptions\": %zu},\n",
               unguarded.total_ms, unguarded.worst_regression,
               unguarded.injected_spikes, unguarded.injected_failures,
               unguarded.weight_corruptions);
  std::fprintf(out,
               "  \"guarded\": {\"total_ms\": %.3f, \"worst_regression\": %.2f,"
               " \"timeouts\": %lld, \"breaker_trips\": %lld,"
               " \"breaker_reopens\": %lld, \"breaker_recoveries\": %lld,"
               " \"fallback_serves\": %lld, \"learned_serves\": %lld,"
               " \"health_rollbacks\": %lld, \"recovery_recoveries\": %lld,"
               " \"recovery_learned_fraction\": %.3f},\n",
               guarded.total_ms, guarded.worst_regression,
               static_cast<long long>(guarded.guards.timeouts),
               static_cast<long long>(guarded.guards.breaker_trips),
               static_cast<long long>(guarded.guards.breaker_reopens),
               static_cast<long long>(guarded.guards.breaker_recoveries),
               static_cast<long long>(guarded.guards.fallback_serves),
               static_cast<long long>(guarded.guards.learned_serves),
               static_cast<long long>(guarded.guards.health_rollbacks),
               static_cast<long long>(guarded.recovery_recoveries),
               guarded.recovery_learned_fraction);
  std::fprintf(out,
               "  \"unguarded_vs_expert\": %.2f,\n"
               "  \"guarded_vs_expert\": %.2f,\n"
               "  \"bound_satisfied\": %s,\n"
               "  \"happy_path_overhead_pct\": %.2f\n"
               "}\n",
               unguarded_vs_expert, guarded_vs_expert,
               bound_satisfied ? "true" : "false", overhead_pct);
  std::fclose(out);

  std::printf(
      "guardrails: expert %.0f ms; unguarded %.0f ms (%.1fx, worst %.0fx);"
      " guarded %.0f ms (%.2fx <= %.1fx bound: %s; %lld timeouts, %lld trips,"
      " %lld fallback serves, %lld rollbacks; recovery learned fraction %.2f);"
      " happy-path overhead %.2f%% -> %s\n",
      expert_total, unguarded.total_ms, unguarded_vs_expert,
      unguarded.worst_regression, guarded.total_ms, guarded_vs_expert,
      kWatchdogFactor, bound_satisfied ? "yes" : "NO",
      static_cast<long long>(guarded.guards.timeouts),
      static_cast<long long>(guarded.guards.breaker_trips),
      static_cast<long long>(guarded.guards.fallback_serves),
      static_cast<long long>(guarded.guards.health_rollbacks),
      guarded.recovery_learned_fraction, overhead_pct, path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_guard.json";
  bool filtered = false;
  bool json_requested = false;
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json-out=", 0) == 0) {
      json_requested = true;
      json_path = arg.substr(std::string("--json-out=").size());
    } else if (arg == "--json-out") {
      json_requested = true;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        json_path = argv[++i];
      }
    } else if (arg.rfind("--json-reps=", 0) == 0) {
      reps = std::atoi(arg.substr(std::string("--json-reps=").size()).c_str());
      if (reps < 1) reps = 1;
    }
    if (arg.rfind("--benchmark_filter", 0) == 0) filtered = true;
  }
  if (!filtered || json_requested) WriteGuardJson(json_path, reps);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
