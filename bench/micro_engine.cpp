// Micro-benchmarks: cardinality oracle, latency model, classical optimizers.
#include <benchmark/benchmark.h>

#include "src/datagen/imdb_gen.h"
#include "src/engine/execution_engine.h"
#include "src/optim/optimizer.h"
#include "src/query/job_workload.h"

namespace {

using namespace neo;

struct Fixture {
  datagen::Dataset ds;
  query::Workload wl{"none"};

  Fixture() {
    datagen::GenOptions opt;
    opt.scale = 0.05;
    ds = datagen::GenerateImdb(opt);
    wl = query::MakeJobWorkload(ds.schema, *ds.db);
  }
  static Fixture& Get() {
    static Fixture f;
    return f;
  }
};

void BM_OracleColdCardinality(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(60);
  const uint64_t full = (1ULL << q.num_relations()) - 1;
  for (auto _ : state) {
    engine::CardinalityOracle oracle(f.ds.schema, *f.ds.db);  // Cold cache.
    benchmark::DoNotOptimize(oracle.Cardinality(q, full));
  }
}
BENCHMARK(BM_OracleColdCardinality);

void BM_OracleWarmCardinality(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(60);
  const uint64_t full = (1ULL << q.num_relations()) - 1;
  engine::CardinalityOracle oracle(f.ds.schema, *f.ds.db);
  oracle.Cardinality(q, full);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.Cardinality(q, full));
  }
}
BENCHMARK(BM_OracleWarmCardinality);

void BM_ExecutePlanWarm(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(60);
  auto native =
      optim::MakeNativeOptimizer(engine::EngineKind::kPostgres, f.ds.schema, *f.ds.db);
  const plan::PartialPlan p = native.optimizer->Optimize(q);
  engine::ExecutionEngine eng(f.ds.schema, *f.ds.db, engine::EngineKind::kPostgres);
  eng.ExecutePlan(q, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.ExecutePlan(q, p));
  }
}
BENCHMARK(BM_ExecutePlanWarm);

void BM_DpOptimize(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  auto native =
      optim::MakeNativeOptimizer(engine::EngineKind::kPostgres, f.ds.schema, *f.ds.db);
  const query::Query& q = f.wl.query(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(native.optimizer->Optimize(q));
  }
  state.SetLabel(std::to_string(q.num_relations()) + " relations");
}
BENCHMARK(BM_DpOptimize)->Arg(0)->Arg(60)->Arg(131);

void BM_HistogramEstimate(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  catalog::Statistics stats(f.ds.schema, *f.ds.db);
  optim::HistogramEstimator est(f.ds.schema, stats, *f.ds.db);
  const query::Query& q = f.wl.query(60);
  const uint64_t full = (1ULL << q.num_relations()) - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.EstimateSubset(q, full));
  }
}
BENCHMARK(BM_HistogramEstimate);

}  // namespace
