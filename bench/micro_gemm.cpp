// GEMM micro-kernel bench: GFLOP/s of every kernel variant (forward row
// kernel, both backward transpose variants) under every runtime-dispatchable
// ISA arm, on the value network's conv and backward shapes. Emits
// BENCH_gemm.json so successive PRs can track raw kernel throughput per arm
// (the end-to-end search/train counterparts live in BENCH_search.json /
// BENCH_train.json).
//
// The google-benchmark suite runs after the JSON measurement; pass any
// benchmark flags (e.g. --benchmark_filter) as usual.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/nn/matrix.h"
#include "src/util/stopwatch.h"

namespace {

using namespace neo::nn;

Matrix RandomMatrix(int rows, int cols, neo::util::Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.Size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextUniform(-1, 1));
  }
  return m;
}

enum class Variant { kMatMul, kTransposeB, kTransposeA };

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kMatMul:
      return "matmul";
    case Variant::kTransposeB:
      return "transpose_b";
    default:
      return "transpose_a";
  }
}

/// One measured (variant, shape) cell. For kMatMul the shape is the forward
/// conv GEMM n x k -> m; for the transpose variants it is the equivalent
/// backward product (operands sized so the flop count is still 2*n*k*m).
struct GemmCase {
  Variant variant;
  const char* name;  ///< e.g. "conv_53to64"
  int n, k, m;
  bool conv_shape;  ///< Counts toward the conv-shape speedup summary.
};

/// Conv shapes at realistic row counts: a batched scoring round packs the
/// children of several expansions into one forest of a few hundred node rows
/// (BENCH_search.json's incremental arm), and the default channel stack is
/// 53 -> 64 -> 32 -> 16. Backward shapes mirror TrainBatch at batch 64
/// (~800 packed nodes, 3*cin concat columns).
const GemmCase kCases[] = {
    {Variant::kMatMul, "conv_53to64", 384, 53, 64, true},
    {Variant::kMatMul, "conv_64to32", 384, 64, 32, true},
    {Variant::kMatMul, "conv_32to16", 384, 32, 16, true},
    {Variant::kTransposeB, "bwd_dx_64x159", 384, 64, 159, false},
    {Variant::kTransposeA, "bwd_dw_159to64", 768, 159, 64, false},
    {Variant::kTransposeA, "bwd_dw_96to16", 768, 96, 16, false},
};

double MeasureGflops(const GemmCase& c) {
  neo::util::Rng rng(11);
  const Matrix a = RandomMatrix(c.n, c.k, rng);
  // Operand shapes per variant: kMatMul multiplies a (n x k) by b (k x m);
  // kTransposeB needs b as (m x k) (multiplied as b^T); kTransposeA consumes
  // a as (n x k) and b as (n x m), producing (k x m).
  const Matrix b = c.variant == Variant::kTransposeB ? RandomMatrix(c.m, c.k, rng)
                                                     : RandomMatrix(c.k, c.m, rng);
  const Matrix b_ta = RandomMatrix(c.n, c.m, rng);
  const auto run = [&]() {
    switch (c.variant) {
      case Variant::kMatMul:
        return MatMul(a, b);
      case Variant::kTransposeB:
        return MatMulTransposeB(a, b);
      default:
        return MatMulTransposeA(a, b_ta);
    }
  };
  volatile float sink = 0.0f;
  for (int i = 0; i < 3; ++i) sink += run().At(0, 0);  // Warm-up.
  // Best of three windows: a single-CPU container shares its core with the
  // rest of the system, so per-window throughput is noisy downward; the max
  // is the steady-state kernel rate.
  double best = 0.0;
  for (int w = 0; w < 3; ++w) {
    neo::util::Stopwatch watch;
    int iters = 0;
    do {
      sink += run().At(0, 0);
      ++iters;
    } while (watch.ElapsedSeconds() < 0.15);
    const double flops = 2.0 * c.n * c.k * c.m * iters;
    best = std::max(best, flops / watch.ElapsedSeconds() / 1e9);
  }
  (void)sink;
  return best;
}

void WriteGemmJson(const std::string& path) {
  const std::vector<KernelIsa> isas = AvailableKernelIsas();
  // gflops[case][isa].
  std::vector<std::vector<double>> gflops(std::size(kCases));
  for (size_t ci = 0; ci < std::size(kCases); ++ci) {
    for (const KernelIsa isa : isas) {
      KernelIsaScope scope(isa);
      gflops[ci].push_back(MeasureGflops(kCases[ci]));
    }
  }

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "micro_gemm: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"micro_gemm\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"kernel_arch\": \"%s\",\n"
               "  \"isas\": [",
               std::thread::hardware_concurrency(), KernelArchString());
  for (size_t i = 0; i < isas.size(); ++i) {
    std::fprintf(out, "%s\"%s\"", i == 0 ? "" : ", ", KernelIsaName(isas[i]));
  }
  std::fprintf(out, "],\n  \"shapes\": [\n");
  // Per-arm speedups are against the portable arm (isas[0]); the dispatched
  // arm's ratio is what the binary actually gains at runtime.
  const size_t active_idx = [&] {
    for (size_t i = 0; i < isas.size(); ++i) {
      if (isas[i] == ActiveKernelIsa()) return i;
    }
    return size_t{0};
  }();
  double min_conv_avx2 = 1e300, min_conv_active = 1e300;
  bool have_avx2 = false;
  for (size_t ci = 0; ci < std::size(kCases); ++ci) {
    const GemmCase& c = kCases[ci];
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"name\": \"%s\", \"n\": %d,"
                 " \"k\": %d, \"m\": %d, \"gflops\": {",
                 VariantName(c.variant), c.name, c.n, c.k, c.m);
    for (size_t i = 0; i < isas.size(); ++i) {
      std::fprintf(out, "%s\"%s\": %.2f", i == 0 ? "" : ", ",
                   KernelIsaName(isas[i]), gflops[ci][i]);
    }
    std::fprintf(out, "}");
    const double portable = gflops[ci][0];
    for (size_t i = 1; i < isas.size(); ++i) {
      const double speedup = gflops[ci][i] / portable;
      std::fprintf(out, ", \"%s_speedup_vs_portable\": %.2f",
                   KernelIsaName(isas[i]), speedup);
      if (c.conv_shape && isas[i] == KernelIsa::kAvx2) {
        min_conv_avx2 = std::min(min_conv_avx2, speedup);
        have_avx2 = true;
      }
      if (c.conv_shape && i == active_idx) {
        min_conv_active = std::min(min_conv_active, speedup);
      }
    }
    std::fprintf(out, "}%s\n", ci + 1 < std::size(kCases) ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  if (have_avx2) {
    std::fprintf(out, "  \"min_conv_avx2_speedup_vs_portable\": %.2f,\n",
                 min_conv_avx2);
  }
  if (active_idx > 0) {
    std::fprintf(out, "  \"min_conv_dispatched_speedup_vs_portable\": %.2f,\n",
                 min_conv_active);
  }
  // Note for readers of the ratios: when the portable baseline is compiled
  // with -march=native, on AVX-512 hosts it is itself 512-bit auto-vectorized
  // and the hand-written AVX2 arm's ceiling equals the portable arm's (2 ymm
  // FMA ports == 1 zmm FMA port); the dispatched arm is the ratio that
  // reflects what the binary gains. PortableArmCodegen() comes from the
  // library TU that actually carries the NEO_NATIVE_ARCH define.
  std::fprintf(out, "  \"portable_baseline\": \"%s\"\n}\n", PortableArmCodegen());
  std::fclose(out);
  std::printf("micro_gemm:");
  for (size_t ci = 0; ci < std::size(kCases); ++ci) {
    std::printf(" %s", kCases[ci].name);
    for (size_t i = 0; i < isas.size(); ++i) {
      std::printf(" %s=%.0f", KernelIsaName(isas[i]), gflops[ci][i]);
    }
    std::printf(";");
  }
  std::printf(" -> %s\n", path.c_str());
}

/// google-benchmark arms: the forward row kernel per ISA on the first conv
/// shape (finer-grained interactive runs; the JSON covers the full matrix).
void BM_MatMulConvShape(benchmark::State& state) {
  const auto isa = static_cast<KernelIsa>(state.range(0));
  if (!KernelIsaAvailable(isa)) {
    state.SkipWithError("ISA unavailable on this machine");
    return;
  }
  KernelIsaScope scope(isa);
  neo::util::Rng rng(12);
  const Matrix a = RandomMatrix(384, 53, rng);
  const Matrix b = RandomMatrix(53, 64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetLabel(KernelIsaName(isa));
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * 384 * 53 * 64,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_MatMulConvShape)
    ->Arg(static_cast<int>(KernelIsa::kPortable))
    ->Arg(static_cast<int>(KernelIsa::kAvx2))
    ->Arg(static_cast<int>(KernelIsa::kAvx512));

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_gemm.json";
  bool filtered = false;
  bool json_requested = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json-out=", 0) == 0) {
      json_requested = true;
      json_path = arg.substr(std::string("--json-out=").size());
    } else if (arg == "--json-out") {
      json_requested = true;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        json_path = argv[++i];
      }
    }
    if (arg.rfind("--benchmark_filter", 0) == 0) filtered = true;
  }
  if (!filtered || json_requested) WriteGemmJson(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
