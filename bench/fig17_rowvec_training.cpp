// Figure 17: row-vector training time per dataset, "joins" (partially
// denormalized) vs "no joins" (normalized) variants. The paper reports
// minutes on real datasets (4GB-2TB); here the absolute numbers are
// laptop-scale, but the shape must hold: joins >> no-joins, and time grows
// with dataset size.
#include "bench/common.h"
#include "src/util/stopwatch.h"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
  const Options opt = Options::Parse(argc, argv);
  std::printf("# Figure 17: row-vector training time (wall seconds)\n");
  std::printf("%-8s %-10s %10s %12s %10s %12s\n", "dataset", "variant", "seconds",
              "sentences", "vocab", "total_rows");

  for (WorkloadKind wk :
       {WorkloadKind::kJob, WorkloadKind::kTpch, WorkloadKind::kCorp}) {
    Env env = Env::Make(wk, opt);
    for (auto mode :
         {embedding::RowEmbeddingMode::kJoins, embedding::RowEmbeddingMode::kNoJoins}) {
      embedding::RowEmbeddingOptions ropt;
      ropt.mode = mode;
      ropt.w2v.dim = opt.full ? 32 : 16;
      ropt.w2v.epochs = opt.full ? 10 : 8;
      util::Stopwatch watch;
      embedding::RowEmbedding rvec(env.ds.schema, *env.ds.db, ropt);
      std::printf("%-8s %-10s %10.2f %12zu %10zu %12zu\n", WorkloadName(wk),
                  mode == embedding::RowEmbeddingMode::kJoins ? "joins" : "no-joins",
                  watch.ElapsedSeconds(), rvec.num_sentences(), rvec.vocab_size(),
                  env.ds.db->total_rows());
      std::fflush(stdout);
    }
  }
  return 0;
}
