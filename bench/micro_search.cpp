// Micro-benchmarks: plan search (children enumeration, full best-first
// search, featurization throughput).
#include <benchmark/benchmark.h>

#include "src/core/neo.h"
#include "src/datagen/imdb_gen.h"
#include "src/query/job_workload.h"

namespace {

using namespace neo;

struct Fixture {
  datagen::Dataset ds;
  query::Workload wl{"none"};
  std::unique_ptr<featurize::Featurizer> feat;
  std::unique_ptr<engine::ExecutionEngine> eng;
  std::unique_ptr<core::Neo> neo;

  Fixture() {
    datagen::GenOptions opt;
    opt.scale = 0.05;
    ds = datagen::GenerateImdb(opt);
    wl = query::MakeJobWorkload(ds.schema, *ds.db);
    feat = std::make_unique<featurize::Featurizer>(ds.schema, *ds.db,
                                                   featurize::FeaturizerConfig{});
    eng = std::make_unique<engine::ExecutionEngine>(ds.schema, *ds.db,
                                                    engine::EngineKind::kPostgres);
    core::NeoConfig cfg;
    cfg.net.query_fc = {64, 32};
    cfg.net.tree_channels = {32, 16};
    cfg.net.head_fc = {16};
    neo = std::make_unique<core::Neo>(feat.get(), eng.get(), cfg);
  }
  static Fixture& Get() {
    static Fixture f;
    return f;
  }
};

void BM_ChildrenEnumeration(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(60);
  const plan::PartialPlan initial = plan::PartialPlan::Initial(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.neo->search().Children(q, initial));
  }
}
BENCHMARK(BM_ChildrenEnumeration);

void BM_EncodePlan(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(60);
  const plan::PartialPlan initial = plan::PartialPlan::Initial(q);
  nn::TreeStructure tree;
  nn::Matrix feats;
  for (auto _ : state) {
    f.feat->EncodePlan(q, initial, &tree, &feats);
    benchmark::DoNotOptimize(feats);
  }
}
BENCHMARK(BM_EncodePlan);

void BM_EncodeQuery(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.feat->EncodeQuery(q));
  }
}
BENCHMARK(BM_EncodeQuery);

void BM_BestFirstSearch(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(static_cast<size_t>(state.range(0)));
  core::SearchOptions opt;
  opt.max_expansions = 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.neo->search().FindPlan(q, opt));
  }
  state.SetLabel(std::to_string(q.num_relations()) + " relations");
}
BENCHMARK(BM_BestFirstSearch)->Arg(0)->Arg(60);

void BM_GreedyPlan(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.neo->search().GreedyPlan(q));
  }
}
BENCHMARK(BM_GreedyPlan);

}  // namespace
