// Micro-benchmarks: plan search (children enumeration, full best-first
// search, featurization throughput), plus a direct batched-vs-unbatched
// scoring-throughput comparison whose result is written to BENCH_search.json
// so successive PRs can track the inference-path perf trajectory.
//
// The google-benchmark suite runs after the JSON measurement; pass any
// benchmark flags (e.g. --benchmark_filter) as usual.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "src/core/neo.h"
#include "src/datagen/imdb_gen.h"
#include "src/query/job_workload.h"
#include "src/util/stopwatch.h"

namespace {

using namespace neo;

struct Fixture {
  datagen::Dataset ds;
  query::Workload wl{"none"};
  std::unique_ptr<featurize::Featurizer> feat;
  std::unique_ptr<engine::ExecutionEngine> eng;
  std::unique_ptr<core::Neo> neo;

  Fixture() {
    datagen::GenOptions opt;
    opt.scale = 0.05;
    ds = datagen::GenerateImdb(opt);
    wl = query::MakeJobWorkload(ds.schema, *ds.db);
    feat = std::make_unique<featurize::Featurizer>(ds.schema, *ds.db,
                                                   featurize::FeaturizerConfig{});
    eng = std::make_unique<engine::ExecutionEngine>(ds.schema, *ds.db,
                                                    engine::EngineKind::kPostgres);
    neo = std::make_unique<core::Neo>(feat.get(), eng.get(), Config());
  }
  static core::NeoConfig Config() {
    core::NeoConfig cfg;
    cfg.net.query_fc = {64, 32};
    cfg.net.tree_channels = {32, 16};
    cfg.net.head_fc = {16};
    return cfg;
  }
  static Fixture& Get() {
    static Fixture f;
    return f;
  }
};

void BM_ChildrenEnumeration(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(60);
  const plan::PartialPlan initial = plan::PartialPlan::Initial(q);
  std::vector<plan::PartialPlan> scratch;
  for (auto _ : state) {
    f.neo->search().ChildrenInto(q, initial, &scratch);
    benchmark::DoNotOptimize(scratch);
  }
}
BENCHMARK(BM_ChildrenEnumeration);

void BM_EncodePlan(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(60);
  const plan::PartialPlan initial = plan::PartialPlan::Initial(q);
  nn::TreeStructure tree;
  nn::Matrix feats;
  for (auto _ : state) {
    f.feat->EncodePlan(q, initial, &tree, &feats);
    benchmark::DoNotOptimize(feats);
  }
}
BENCHMARK(BM_EncodePlan);

void BM_EncodePlanBatch(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(60);
  const plan::PartialPlan initial = plan::PartialPlan::Initial(q);
  const auto children = f.neo->search().Children(q, initial);
  std::vector<const plan::PartialPlan*> ptrs;
  for (const auto& c : children) ptrs.push_back(&c);
  nn::PlanBatch batch;
  for (auto _ : state) {
    f.feat->EncodePlanBatch(q, ptrs, &batch);
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(ptrs.size()));
}
BENCHMARK(BM_EncodePlanBatch);

void BM_EncodeQuery(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.feat->EncodeQuery(q));
  }
}
BENCHMARK(BM_EncodeQuery);

/// Full best-first search. The per-query score cache persists across
/// iterations, so after the first iteration this measures the fully-cached
/// ("hot") search path: heap + hash lookups, no network forward passes.
void BM_BestFirstSearchHot(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(static_cast<size_t>(state.range(0)));
  core::SearchOptions opt;
  opt.max_expansions = 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.neo->search().FindPlan(q, opt));
  }
  state.SetLabel(std::to_string(q.num_relations()) + " relations");
}
BENCHMARK(BM_BestFirstSearchHot)->Arg(0)->Arg(60);

/// Cold search: a fresh Neo (fresh network version => empty score cache) per
/// iteration; only FindPlan is timed. Items processed = network evaluations,
/// so items/sec is plans scored per second.
void BM_BestFirstSearchCold(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(60);
  core::SearchOptions opt;
  opt.max_expansions = 40;
  opt.batched = state.range(0) != 0;
  int64_t evals = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::Neo fresh(f.feat.get(), f.eng.get(), Fixture::Config());
    state.ResumeTiming();
    const core::SearchResult r = fresh.search().FindPlan(q, opt);
    evals += static_cast<int64_t>(r.evaluations);
  }
  state.SetItemsProcessed(evals);
  state.SetLabel(opt.batched ? "batched" : "per-candidate");
}
BENCHMARK(BM_BestFirstSearchCold)->Arg(1)->Arg(0);

/// Cold greedy descent: a fresh Neo per iteration so the score cache never
/// carries over from earlier benchmarks (the shared-fixture Neo would serve
/// every child score from cache after BM_BestFirstSearchHot runs).
void BM_GreedyPlan(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(60);
  for (auto _ : state) {
    state.PauseTiming();
    core::Neo fresh(f.feat.get(), f.eng.get(), Fixture::Config());
    state.ResumeTiming();
    benchmark::DoNotOptimize(fresh.search().GreedyPlan(q));
  }
}
BENCHMARK(BM_GreedyPlan);

// ---- BENCH_search.json ----------------------------------------------------

struct ThroughputResult {
  double plans_per_sec = 0.0;
  double wall_ms_mean = 0.0;
  size_t evaluations = 0;
  size_t cache_hits = 0;
  size_t activation_hits = 0;
  size_t rows_recomputed = 0;
  size_t rows_reused = 0;
};

/// Repeatedly runs a cold best-first search (fresh network => empty cache,
/// construction untimed) and reports plans scored per second. With
/// `reference_kernels`, GEMMs route through the naive triple loops — combined
/// with `batched = false` this reconstructs the seed per-candidate path.
/// `threads` row-partitions the scoring GEMMs over the pool; `speculation`
/// expands that many heap states per scoring round; `incremental` turns on
/// the activation cache (reuse subtree conv rows across parent/child plans).
ThroughputResult MeasureSearchThroughput(bool batched, bool reference_kernels,
                                         int reps, int threads = 1,
                                         int speculation = 1,
                                         bool incremental = false) {
  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(60);
  core::SearchOptions opt;
  opt.max_expansions = 40;
  opt.batched = batched;
  opt.threads = threads;
  opt.speculation = speculation;
  opt.incremental = incremental;

  // Default ValueNetConfig channel widths (the paper-shaped 64/32/16 conv
  // stack), not the narrower widths the google-benchmark fixture uses.
  core::NeoConfig cfg;
  nn::SetUseReferenceKernels(reference_kernels);
  ThroughputResult out;
  double total_s = 0.0;
  for (int rep = 0; rep < reps + 1; ++rep) {
    core::Neo fresh(f.feat.get(), f.eng.get(), cfg);
    util::Stopwatch watch;
    const core::SearchResult r = fresh.search().FindPlan(q, opt);
    if (rep == 0) continue;  // Warm-up run (page-in, allocator).
    total_s += watch.ElapsedSeconds();
    out.evaluations += r.evaluations;
    out.cache_hits += r.cache_hits;
    out.activation_hits += r.activation_hits;
    out.rows_recomputed += r.rows_recomputed;
    out.rows_reused += r.rows_reused;
  }
  nn::SetUseReferenceKernels(false);
  out.plans_per_sec = static_cast<double>(out.evaluations) / total_s;
  out.wall_ms_mean = total_s * 1000.0 / reps;
  return out;
}

void PrintArm(std::FILE* out, const char* name, const ThroughputResult& r,
              const char* trailing_comma) {
  std::fprintf(out,
               "  \"%s\": {\"plans_per_sec\": %.1f, \"wall_ms_mean\": %.3f,"
               " \"evaluations\": %zu, \"cache_hits\": %zu}%s\n",
               name, r.plans_per_sec, r.wall_ms_mean, r.evaluations, r.cache_hits,
               trailing_comma);
}

void WriteSearchJson(const std::string& path, int reps) {
  // Seven arms: the seed path (per-candidate scoring, naive GEMMs), the
  // blocked kernels alone (per-candidate), the full batched pipeline, the
  // incremental pipeline (batched + activation cache, alone and with
  // speculation 8), and the speculative batched pipeline (8 states per
  // round) at 1 and 8 kernel threads. The two speculative arms differ only
  // in SearchOptions::threads (same kernels, same expansions), so their
  // ratio is the pure thread-pool scaling of the scoring path on this
  // machine; batched vs. incremental differ only in
  // SearchOptions::incremental, so their ratio is the pure win from reusing
  // subtree conv activations across parent/child plans.
  const ThroughputResult seed = MeasureSearchThroughput(false, true, reps);
  const ThroughputResult unbatched = MeasureSearchThroughput(false, false, reps);
  const ThroughputResult batched = MeasureSearchThroughput(true, false, reps);
  const ThroughputResult incremental = MeasureSearchThroughput(
      true, false, reps, /*threads=*/1, /*speculation=*/1, /*incremental=*/true);
  const ThroughputResult inc_spec8 = MeasureSearchThroughput(
      true, false, reps, /*threads=*/1, /*speculation=*/8, /*incremental=*/true);
  const ThroughputResult spec_t1 =
      MeasureSearchThroughput(true, false, reps, /*threads=*/1, /*speculation=*/8);
  // On a single-hardware-thread machine the "threads 8" arm would re-measure
  // the serial path (the pool runs every chunk inline) and record a
  // misleading ~1.0x thread speedup; skip it and flag the skip.
  const unsigned hw = std::thread::hardware_concurrency();
  const bool thread_arms_skipped = hw <= 1;
  const ThroughputResult spec_t8 =
      thread_arms_skipped
          ? ThroughputResult{}
          : MeasureSearchThroughput(true, false, reps, /*threads=*/8,
                                    /*speculation=*/8);
  const double speedup_vs_seed = batched.plans_per_sec / seed.plans_per_sec;
  const double speedup_batching = batched.plans_per_sec / unbatched.plans_per_sec;
  const double speedup_incremental = incremental.plans_per_sec / batched.plans_per_sec;
  const double speedup_threads =
      thread_arms_skipped ? 0.0 : spec_t8.plans_per_sec / spec_t1.plans_per_sec;

  Fixture& f = Fixture::Get();
  const query::Query& q = f.wl.query(60);
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "micro_search: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"micro_search\",\n"
               "  \"query_relations\": %zu,\n"
               "  \"max_expansions\": 40,\n"
               "  \"repetitions\": %d,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"kernel_arch\": \"%s\",\n"
               "  \"thread_arms_skipped\": %s,\n",
               q.num_relations(), reps, hw, nn::KernelArchString(),
               thread_arms_skipped ? "true" : "false");
  PrintArm(out, "seed_path", seed, ",");
  PrintArm(out, "unbatched", unbatched, ",");
  PrintArm(out, "batched", batched, ",");
  PrintArm(out, "incremental", incremental, ",");
  PrintArm(out, "incremental_spec8", inc_spec8, ",");
  PrintArm(out, "batched_spec8_threads1", spec_t1, ",");
  if (!thread_arms_skipped) {
    PrintArm(out, "batched_spec8_threads8", spec_t8, ",");
  }

  // Conv-flop reuse of the incremental arm, per layer: a node hit saves its
  // row in every conv layer, so per-layer row counts are the node totals.
  // Flops per row ~ 2 * 3 blocks * cin * cout (upper bound; absent-child
  // blocks are skipped either way). Channel widths follow the default
  // ValueNetConfig the JSON arms run with.
  {
    const nn::ValueNetConfig net_cfg;
    const int plan_dim = f.feat->plan_dim();
    const int embed_dim = net_cfg.query_fc.back();
    const size_t layers = net_cfg.tree_channels.size();
    const size_t rows_computed = incremental.rows_recomputed / layers;
    const size_t rows_reused = incremental.rows_reused / layers;
    const double reuse_rate =
        static_cast<double>(rows_reused) /
        static_cast<double>(std::max<size_t>(1, rows_reused + rows_computed));
    std::fprintf(out,
                 "  \"incremental_reuse\": {\"activation_hits\": %zu,"
                 " \"rows_recomputed\": %zu, \"rows_reused\": %zu,"
                 " \"reuse_rate\": %.4f, \"per_layer\": [",
                 incremental.activation_hits, incremental.rows_recomputed,
                 incremental.rows_reused, reuse_rate);
    int cin = plan_dim + embed_dim;
    for (size_t li = 0; li < layers; ++li) {
      const int cout = net_cfg.tree_channels[li];
      const double flops_per_row = 2.0 * 3.0 * cin * cout;
      std::fprintf(out,
                   "%s{\"in_channels\": %d, \"out_channels\": %d,"
                   " \"rows_computed\": %zu, \"rows_reused\": %zu,"
                   " \"gflops_computed\": %.3f, \"gflops_saved\": %.3f}",
                   li == 0 ? "" : ", ", cin, cout, rows_computed, rows_reused,
                   flops_per_row * static_cast<double>(rows_computed) * 1e-9,
                   flops_per_row * static_cast<double>(rows_reused) * 1e-9);
      cin = cout;
    }
    std::fprintf(out, "]},\n");
  }

  std::fprintf(out,
               "  \"speedup_vs_seed\": %.2f,\n"
               "  \"speedup_from_batching\": %.2f,\n"
               "  \"speedup_from_incremental\": %.2f",
               speedup_vs_seed, speedup_batching, speedup_incremental);
  if (!thread_arms_skipped) {
    std::fprintf(out, ",\n  \"speedup_from_threads\": %.2f\n}\n", speedup_threads);
  } else {
    std::fprintf(out, "\n}\n");
  }
  std::fclose(out);
  if (thread_arms_skipped) {
    std::printf("search scoring throughput: seed %.0f, unbatched %.0f, batched"
                " %.0f, incremental %.0f plans/s (%.2fx vs seed, %.2fx from"
                " activation reuse); thread arms skipped (hardware_threads=%u)"
                " -> %s\n",
                seed.plans_per_sec, unbatched.plans_per_sec,
                batched.plans_per_sec, incremental.plans_per_sec,
                speedup_vs_seed, speedup_incremental, hw, path.c_str());
  } else {
    std::printf("search scoring throughput: seed %.0f, unbatched %.0f, batched"
                " %.0f, incremental %.0f plans/s (%.2fx vs seed, %.2fx from"
                " activation reuse); spec8 %0.f -> %.0f plans/s (%.2fx from 8"
                " threads) -> %s\n",
                seed.plans_per_sec, unbatched.plans_per_sec, batched.plans_per_sec,
                incremental.plans_per_sec, speedup_vs_seed, speedup_incremental,
                spec_t1.plans_per_sec, spec_t8.plans_per_sec, speedup_threads,
                path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_search.json";
  bool filtered = false;
  bool json_requested = false;
  int reps = 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json-out=", 0) == 0) {
      json_requested = true;
      json_path = arg.substr(std::string("--json-out=").size());
    } else if (arg == "--json-out") {
      json_requested = true;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        json_path = argv[++i];
      }
    } else if (arg.rfind("--json-reps=", 0) == 0) {
      reps = std::atoi(arg.substr(std::string("--json-reps=").size()).c_str());
      if (reps < 1) reps = 1;
    }
    if (arg.rfind("--benchmark_filter", 0) == 0) filtered = true;
  }
  // The multi-arm JSON measurement takes a minute at the default 20 reps
  // (--json-reps trims it for smoke runs); skip it when the caller asked for
  // specific micro-benchmarks, unless --json-out forces it.
  if (!filtered || json_requested) WriteSearchJson(json_path, reps);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
