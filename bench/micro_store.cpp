// Experience-store micro-benchmarks + the BENCH_store.json durability report.
//
// The JSON measurement drives a durable ExperienceStore in a scratch dir and
// reports:
//   wal_append_records_per_sec / wal_append_mb_per_sec - framed+checksummed
//               append throughput through RecordServe (includes the final
//               Sync), over a round-robin of distinct query types,
//   recovery_ms / replay_records_per_sec - cold Open() replaying the full
//               WAL through the live state machine,
//   snapshot_ms / snapshot_recovery_ms - serialize+atomic-publish cost and
//               the Open() that loads the snapshot instead of replaying,
//   recovery_lossless - an in-bench kill-point sweep: the WAL is truncated
//               at every frame boundary and at mid-record offsets, and every
//               cut must recover cleanly (kOk, exact complete-frame prefix,
//               state equal to the pre-crash reference at that boundary).
//               CI hard-fails on false — this is the crash-safety gate.
//
// The google-benchmark suite runs after the JSON measurement; pass
// --benchmark_filter etc. as usual.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/datagen/imdb_gen.h"
#include "src/query/builder.h"
#include "src/store/experience_store.h"
#include "src/store/store_file.h"
#include "src/util/stopwatch.h"

namespace {

using namespace neo;
using store::ExperienceStore;
using store::StoreOptions;
using store::TypeView;

struct Fixture {
  datagen::Dataset ds;
  std::vector<query::Query> queries;           ///< Distinct type templates.
  std::vector<plan::PartialPlan> plans;        ///< One complete plan each.

  Fixture() {
    datagen::GenOptions opt;
    opt.scale = 0.02;
    ds = datagen::GenerateImdb(opt);
    // 16 structurally distinct single-relation templates (predicate-count and
    // operator shape vary, so every one hashes to its own type).
    const query::PredOp ops[] = {query::PredOp::kGe, query::PredOp::kLe,
                                 query::PredOp::kGt, query::PredOp::kLt};
    for (int n = 0; n < 16; ++n) {
      query::QueryBuilder b(ds.schema, *ds.db, "bench");
      b.Rel("title");
      for (int p = 0; p <= n % 4; ++p) {
        b.Pred("title", "production_year", ops[(n + p) % 4], 1950 + 10 * p);
      }
      queries.push_back(b.Build());
      queries.back().id = n + 1;
    }
    for (query::Query& q : queries) {
      plan::PartialPlan p;
      p.query = &q;
      p.roots = {plan::MakeScan(plan::ScanOp::kTable, q.relations[0], 1ULL << 0)};
      plans.push_back(std::move(p));
    }
  }
  static Fixture& Get() {
    static Fixture f;
    return f;
  }
};

/// Scratch dir for durable stores; known store files removed on destruction.
class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/neo_micro_store_XXXXXX";
    const char* p = ::mkdtemp(buf);
    path_ = p != nullptr ? p : "/tmp";
  }
  ~TempDir() {
    for (const char* f : {"/wal.log", "/snapshot.bin", "/snapshot.bin.tmp"}) {
      ::unlink((path_ + f).c_str());
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---- google-benchmark micro measurements ----------------------------------

void BM_WalAppendRecord(benchmark::State& state) {
  TempDir tmp;
  store::WalWriter w;
  if (!w.Open(tmp.path() + "/wal.log", 0).ok()) {
    state.SkipWithError("wal open failed");
    return;
  }
  uint8_t payload[64];
  std::memset(payload, 0x5a, sizeof payload);
  uint64_t lsn = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.AppendRecord(1, lsn++, payload, sizeof payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sizeof payload + 24));
}
BENCHMARK(BM_WalAppendRecord);

/// RecordServe through the full mode machine, in-memory (no WAL I/O): the
/// pure bookkeeping cost a serving worker pays per request.
void BM_StoreRecordServe(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  ExperienceStore store{StoreOptions{}};
  (void)store.Open();
  size_t i = 0;
  for (auto _ : state) {
    const size_t qi = i % f.queries.size();
    store.RecordServe(f.queries[qi], f.plans[qi], 10.0 + 0.001 * (i % 7),
                      /*from_search=*/true);
    ++i;
  }
}
BENCHMARK(BM_StoreRecordServe);

/// Decide() on a pinned (exploit) type: the fast-path lookup serving pays
/// before skipping search. Includes the pinned-plan decode-cache hit.
void BM_StoreDecidePinned(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  ExperienceStore store{StoreOptions{}};
  (void)store.Open();
  store.RecordServe(f.queries[0], f.plans[0], 10.0, /*from_search=*/true);
  if (!store.SetMode(f.queries[0].type_hash, store::TypeMode::kExploit).ok()) {
    state.SkipWithError("pin failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Decide(f.queries[0]));
  }
}
BENCHMARK(BM_StoreDecidePinned);

// ---- BENCH_store.json ------------------------------------------------------

bool ViewsEqual(const TypeView& a, const TypeView& b) {
  return a.type_hash == b.type_hash && a.mode == b.mode &&
         a.serves == b.serves && a.exploit_run_len == b.exploit_run_len &&
         a.ewma == b.ewma && a.baseline_mean == b.baseline_mean &&
         a.baseline_n == b.baseline_n && a.has_best == b.has_best &&
         a.best_latency_ms == b.best_latency_ms &&
         a.best_plan_hash == b.best_plan_hash &&
         a.num_corrections == b.num_corrections;
}

bool AllViewsEqual(const std::vector<TypeView>& a,
                   const std::vector<TypeView>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!ViewsEqual(a[i], b[i])) return false;
  }
  return true;
}

void WriteRawFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return;
  if (!bytes.empty()) {
    (void)std::fwrite(bytes.data(), 1, bytes.size(), f);
  }
  std::fclose(f);
}

/// Kill-point sweep: cut the canonical WAL at every frame boundary and at
/// offsets inside every frame; every cut must mount kOk with exactly the
/// complete-frame prefix and the reference state at that boundary. Returns
/// false on ANY deviation — the bench's hard acceptance gate.
bool SweepKillPoints(const std::vector<uint8_t>& wal,
                     const std::map<uint64_t, std::vector<TypeView>>& reference,
                     uint64_t* cuts_out) {
  std::vector<uint64_t> boundaries = {8};
  uint64_t off = 8;
  while (off + 24 <= wal.size()) {
    uint32_t len = 0;
    std::memcpy(&len, wal.data() + off, 4);
    off += 24 + len;
    if (off > wal.size()) return false;  // Canonical WAL must parse whole.
    boundaries.push_back(off);
  }
  if (off != wal.size()) return false;

  TempDir scratch;
  StoreOptions opt;
  opt.dir = scratch.path();
  opt.snapshot_every = 0;
  uint64_t cuts = 0;
  for (size_t k = 0; k + 1 < boundaries.size(); ++k) {
    const uint64_t frame_len = boundaries[k + 1] - boundaries[k];
    const uint64_t offsets[] = {boundaries[k], boundaries[k] + 1,
                                boundaries[k] + frame_len / 2,
                                boundaries[k] + frame_len - 1};
    for (const uint64_t cut : offsets) {
      WriteRawFile(scratch.path() + "/wal.log",
                   std::vector<uint8_t>(wal.begin(), wal.begin() + cut));
      ExperienceStore b(opt);
      if (!b.Open().ok()) return false;
      if (b.recovery().wal_corrupt) return false;
      if (b.recovery().wal_frames_replayed != k) return false;
      const auto it = reference.find(k);
      if (it != reference.end() && !AllViewsEqual(b.View(), it->second)) {
        return false;
      }
      ++cuts;
    }
  }
  // The untruncated file replays to the final reference state.
  WriteRawFile(scratch.path() + "/wal.log", wal);
  ExperienceStore full(opt);
  if (!full.Open().ok()) return false;
  if (!AllViewsEqual(full.View(), reference.rbegin()->second)) return false;
  *cuts_out = cuts;
  return true;
}

void WriteStoreJson(const std::string& path) {
  Fixture& f = Fixture::Get();

  // 1. WAL append throughput: records round-robin over 16 types, fsync at
  //    the end (the serving cadence amortizes it the same way).
  constexpr int kAppendRecords = 20000;
  TempDir dir;
  StoreOptions opt;
  opt.dir = dir.path();
  opt.snapshot_every = 0;
  double append_secs = 0.0;
  uint64_t appended = 0, wal_bytes = 0;
  {
    ExperienceStore store(opt);
    if (!store.Open().ok()) {
      std::fprintf(stderr, "micro_store: store open failed\n");
      return;
    }
    util::Stopwatch watch;
    for (int i = 0; i < kAppendRecords; ++i) {
      const size_t qi = static_cast<size_t>(i) % f.queries.size();
      store.RecordServe(f.queries[qi], f.plans[qi], 10.0 + 0.001 * (i % 7),
                        /*from_search=*/true);
    }
    (void)store.Sync();
    append_secs = watch.ElapsedSeconds();
    appended = store.stats().wal_records;
    std::vector<uint8_t> bytes;
    if (store::ReadFileBytes(store.wal_path(), &bytes).ok()) {
      wal_bytes = bytes.size();
    }
  }

  // 2. Cold recovery: replay the whole WAL through the state machine.
  double recovery_secs = 0.0;
  uint64_t replayed = 0;
  {
    util::Stopwatch watch;
    ExperienceStore store(opt);
    (void)store.Open();
    recovery_secs = watch.ElapsedSeconds();
    replayed = store.recovery().wal_frames_replayed;

    // 3. Snapshot publish, then the snapshot-backed recovery.
    util::Stopwatch snap_watch;
    const bool snap_ok = store.Snapshot().ok();
    const double snapshot_secs = snap_watch.ElapsedSeconds();

    util::Stopwatch reopen_watch;
    ExperienceStore reopened(opt);
    (void)reopened.Open();
    const double snap_recovery_secs = reopen_watch.ElapsedSeconds();
    const bool snapshot_loaded = reopened.recovery().snapshot_loaded;

    // 4. Kill-point sweep on a small deterministic script (fresh dir).
    TempDir sweep_dir;
    StoreOptions sopt;
    sopt.dir = sweep_dir.path();
    sopt.snapshot_every = 0;
    std::map<uint64_t, std::vector<TypeView>> reference;
    std::vector<uint8_t> sweep_wal;
    {
      ExperienceStore s(sopt);
      (void)s.Open();
      reference[0] = s.View();
      for (int i = 0; i < 120; ++i) {
        const size_t qi = static_cast<size_t>(i) % 4;
        // Mix improving serves (2 frames), plain serves, and corrections.
        s.RecordServe(f.queries[qi], f.plans[qi], 50.0 - 0.1 * i,
                      /*from_search=*/true);
        reference.emplace(s.stats().wal_records, s.View());
        if (i % 10 == 0) {
          s.RecordCardCorrection(f.queries[qi], 1, 100.0, 150.0 + i);
          reference.emplace(s.stats().wal_records, s.View());
        }
      }
      (void)s.Sync();
      (void)store::ReadFileBytes(s.wal_path(), &sweep_wal);
    }
    uint64_t kill_points = 0;
    const bool lossless = SweepKillPoints(sweep_wal, reference, &kill_points);

    const double append_rps = append_secs > 0 ? appended / append_secs : 0.0;
    const double append_mbps =
        append_secs > 0 ? wal_bytes / (1e6 * append_secs) : 0.0;
    const double replay_rps = recovery_secs > 0 ? replayed / recovery_secs : 0.0;

    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "micro_store: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"micro_store\",\n"
                 "  \"types\": %zu,\n"
                 "  \"wal_records\": %llu,\n"
                 "  \"wal_bytes\": %llu,\n"
                 "  \"wal_append_records_per_sec\": %.0f,\n"
                 "  \"wal_append_mb_per_sec\": %.2f,\n"
                 "  \"recovery_ms\": %.3f,\n"
                 "  \"replay_records_per_sec\": %.0f,\n"
                 "  \"snapshot_ms\": %.3f,\n"
                 "  \"snapshot_ok\": %s,\n"
                 "  \"snapshot_recovery_ms\": %.3f,\n"
                 "  \"snapshot_loaded\": %s,\n"
                 "  \"kill_points_swept\": %llu,\n"
                 "  \"recovery_lossless\": %s\n"
                 "}\n",
                 f.queries.size(), static_cast<unsigned long long>(appended),
                 static_cast<unsigned long long>(wal_bytes), append_rps,
                 append_mbps, recovery_secs * 1e3, replay_rps,
                 snapshot_secs * 1e3, snap_ok ? "true" : "false",
                 snap_recovery_secs * 1e3, snapshot_loaded ? "true" : "false",
                 static_cast<unsigned long long>(kill_points),
                 lossless ? "true" : "false");
    std::fclose(out);

    std::printf(
        "store: %llu wal records appended at %.0f rec/s (%.2f MB/s);"
        " cold recovery %.3f ms (%.0f rec/s replay); snapshot %.3f ms,"
        " snapshot recovery %.3f ms; %llu kill points swept, lossless: %s"
        " -> %s\n",
        static_cast<unsigned long long>(appended), append_rps, append_mbps,
        recovery_secs * 1e3, replay_rps, snapshot_secs * 1e3,
        snap_recovery_secs * 1e3, static_cast<unsigned long long>(kill_points),
        lossless ? "yes" : "NO", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_store.json";
  bool filtered = false;
  bool json_requested = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json-out=", 0) == 0) {
      json_requested = true;
      json_path = arg.substr(std::string("--json-out=").size());
    } else if (arg == "--json-out") {
      json_requested = true;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        json_path = argv[++i];
      }
    }
    if (arg.rfind("--benchmark_filter", 0) == 0) filtered = true;
  }
  if (!filtered || json_requested) WriteStoreJson(json_path);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
