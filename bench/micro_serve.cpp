// Serving-core micro-benchmarks + the BENCH_serve.json concurrency report.
//
// The JSON measurement drives a ServingCore over a JOB subset with closed-loop
// clients and reports, per arm (clients x coalescing):
//   qps, p50/p95/p99 request latency (from the serving histograms), and the
//   coalescer / shared-cache counters — so the scaling curve and the batch-
//   merge rate are both visible. Two acceptance probes ride along:
//   single_client_bit_identical - a one-worker serving loop replays the exact
//               latencies of the inline plan+execute+learn loop on a twin Neo
//               (the RCU snapshot, shared caches, and coalescer must all be
//               bit-transparent), and
//   retrain_overlap - background RetrainAndPublish cycles run while a client
//               hammers the core; serving must keep completing during them.
// qps scaling is reported honestly against hardware_threads: on a single-
// hardware-thread host the multi-client curve is flat by construction, and
// qps_scaling_ok accounts for that instead of faking a speedup.
//
// The google-benchmark suite runs after the JSON measurement; pass
// --benchmark_filter etc. as usual.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/neo.h"
#include "src/datagen/imdb_gen.h"
#include "src/query/job_workload.h"
#include "src/serve/serving_core.h"
#include "src/store/experience_store.h"
#include "src/util/alloc_counter.h"
#include "src/util/fault_injector.h"
#include "src/util/stopwatch.h"

namespace {

using namespace neo;

struct Fixture {
  datagen::Dataset ds;
  query::Workload wl{"none"};
  std::unique_ptr<featurize::Featurizer> feat;
  std::vector<const query::Query*> train;

  Fixture() {
    datagen::GenOptions opt;
    opt.scale = 0.05;
    ds = datagen::GenerateImdb(opt);
    wl = query::MakeJobWorkload(ds.schema, *ds.db);
    feat = std::make_unique<featurize::Featurizer>(ds.schema, *ds.db,
                                                   featurize::FeaturizerConfig{});
    for (size_t i = 0; i < wl.size(); i += 7) train.push_back(&wl.query(i));
  }
  static core::NeoConfig Config() {
    core::NeoConfig cfg;
    cfg.net.query_fc = {64, 32};
    cfg.net.tree_channels = {32, 16};
    cfg.net.head_fc = {16};
    cfg.search.max_expansions = 40;
    return cfg;
  }
  static Fixture& Get() {
    static Fixture f;
    return f;
  }
};

/// A bootstrapped Neo + its engine, ready to put behind a ServingCore.
struct Rig {
  std::unique_ptr<engine::ExecutionEngine> engine;
  std::unique_ptr<core::Neo> neo;
};

Rig MakeRig(const core::NeoConfig& cfg) {
  Fixture& f = Fixture::Get();
  Rig r;
  r.engine = std::make_unique<engine::ExecutionEngine>(f.ds.schema, *f.ds.db,
                                                       engine::EngineKind::kPostgres);
  r.neo = std::make_unique<core::Neo>(f.feat.get(), r.engine.get(), cfg);
  auto expert = optim::MakeNativeOptimizer(engine::EngineKind::kPostgres, f.ds.schema,
                                           *f.ds.db);
  r.neo->Bootstrap(f.train, expert.optimizer.get());
  return r;
}

// ---- google-benchmark micro measurements ----------------------------------

void BM_HistogramRecord(benchmark::State& state) {
  util::LatencyHistogram h;
  double v = 0.001;
  for (auto _ : state) {
    h.Record(v);
    v = v * 1.1;
    if (v > 1e4) v = 0.001;
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_ShardedLruLookup(benchmark::State& state) {
  util::ShardedLruMap<uint64_t, float> map(1 << 16, /*shards=*/16);
  for (uint64_t k = 0; k < 4096; ++k) map.Insert(k, static_cast<float>(k));
  uint64_t k = 0;
  float out = 0.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Lookup(k & 4095, &out));
    ++k;
  }
}
BENCHMARK(BM_ShardedLruLookup);

/// Hot single-worker serve (cached search + memoized execution): the serving
/// stack's per-request overhead over the inline loop of micro_guard.
void BM_ServeSyncHot(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rig rig = MakeRig(Fixture::Config());
  serve::ServingOptions sopt;
  sopt.workers = 1;
  sopt.search = Fixture::Config().search;
  serve::ServingCore core(rig.neo.get(), sopt);
  for (const query::Query* q : f.train) core.ServeSync(*q, /*learn=*/false);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core.ServeSync(*f.train[i % f.train.size()], /*learn=*/false));
    ++i;
  }
}
BENCHMARK(BM_ServeSyncHot);

// ---- BENCH_serve.json ------------------------------------------------------

struct ArmResult {
  int clients = 0;
  bool coalesced = false;
  int workers = 0;
  uint64_t requests = 0;
  double qps = 0.0;  ///< Median over reps of the measured serving phase.
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  serve::BatchCoalescer::Stats coalescer;
  util::ShardedLruStats score_cache;
  util::ShardedLruStats activation_cache;
  util::ShardedLruStats leaf_cache;
  uint64_t leaf_tier_hits = 0;
};

/// One serving arm: `clients` closed-loop threads issue `requests` total
/// requests per rep against a fresh core; qps is the median rep.
ArmResult RunArm(int clients, bool coalesced, int requests, int reps) {
  Fixture& f = Fixture::Get();
  const core::NeoConfig cfg = Fixture::Config();
  Rig rig = MakeRig(cfg);
  rig.neo->Retrain();  // Score on trained-ish weights, as serving would.

  serve::ServingOptions sopt;
  sopt.workers = std::min(clients, 8);
  sopt.coalesce = coalesced;
  sopt.search = cfg.search;
  serve::ServingCore core(rig.neo.get(), sopt);
  core.PublishWeights();
  // Warm pass: engine memo + shared caches, so arms compare steady state.
  for (const query::Query* q : f.train) core.ServeSync(*q, /*learn=*/false);

  std::vector<double> rep_qps;
  for (int rep = 0; rep < reps; ++rep) {
    util::Stopwatch watch;
    std::vector<std::thread> threads;
    const int per_client = std::max(1, requests / clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (int i = 0; i < per_client; ++i) {
          const size_t qi = (static_cast<size_t>(c) * 31 + static_cast<size_t>(i)) %
                            f.train.size();
          core.ServeSync(*f.train[qi], /*learn=*/false);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double secs = watch.ElapsedSeconds();
    rep_qps.push_back(static_cast<double>(per_client) * clients / secs);
  }
  std::sort(rep_qps.begin(), rep_qps.end());

  const serve::ServingStats stats = core.stats();
  ArmResult r;
  r.clients = clients;
  r.coalesced = coalesced;
  r.workers = sopt.workers;
  r.requests = stats.requests;
  r.qps = rep_qps[rep_qps.size() / 2];
  r.p50_ms = stats.total_latency.Percentile(50);
  r.p95_ms = stats.total_latency.Percentile(95);
  r.p99_ms = stats.total_latency.Percentile(99);
  r.coalescer = stats.coalescer;
  r.score_cache = stats.score_cache;
  r.activation_cache = stats.activation_cache;
  r.leaf_cache = stats.leaf_cache;
  r.leaf_tier_hits = stats.leaf_tier_hits;
  return r;
}

/// Steady-state allocation probe over the real scoring path: a warmed direct
/// PlanSearch (no coalescer — the gather/merge machinery inherently
/// allocates) alternating over a few queries so every round does full NN
/// work (the per-query score cache re-salts on each switch) while all
/// buffers sit at capacity. RegionAllocs() counts mallocs inside ScoreAll's
/// probe+forward region only.
struct SteadyState {
  uint64_t heap_allocs = 0;
  size_t slab_peak_bytes = 0;
  bool counter_active = false;
};

SteadyState MeasureSteadyState() {
  Fixture& f = Fixture::Get();
  const core::NeoConfig cfg = Fixture::Config();
  Rig rig = MakeRig(cfg);
  rig.neo->Retrain();
  core::PlanSearch search(f.feat.get(), &rig.neo->net());
  const size_t rotation = std::min<size_t>(4, f.train.size());
  for (size_t i = 0; i < 3 * rotation; ++i) {
    search.FindPlan(*f.train[i % rotation], cfg.search);
  }
  util::ArmAllocCounter(true);
  util::ResetRegionAllocs();
  search.FindPlan(*f.train[0], cfg.search);
  SteadyState out;
  out.heap_allocs = util::RegionAllocs();
  util::ArmAllocCounter(false);
  out.slab_peak_bytes = search.activation_slab_peak_bytes();
  out.counter_active = util::AllocCounterActive();
  return out;
}

/// Acceptance probe: a one-worker serving loop must replay the inline
/// guarded plan+execute+learn loop bit-for-bit on a twin Neo.
bool SingleClientBitIdentical() {
  Fixture& f = Fixture::Get();
  core::NeoConfig cfg = Fixture::Config();
  cfg.guards.watchdog.baseline_factor = 4.0;
  cfg.guards.breaker.enabled = true;
  cfg.guards.health.enabled = true;

  Rig inline_rig = MakeRig(cfg);
  std::vector<double> inline_lat;
  for (int pass = 0; pass < 2; ++pass) {
    for (const query::Query* q : f.train) {
      inline_lat.push_back(inline_rig.neo->ExecuteAndLearn(*q));
    }
  }

  Rig served_rig = MakeRig(cfg);
  std::vector<double> served_lat;
  {
    serve::ServingOptions sopt;
    sopt.workers = 1;
    sopt.search = cfg.search;
    serve::ServingCore core(served_rig.neo.get(), sopt);
    for (int pass = 0; pass < 2; ++pass) {
      for (const query::Query* q : f.train) {
        served_lat.push_back(core.ServeSync(*q, /*learn=*/true).latency_ms);
      }
    }
  }
  return inline_lat == served_lat;
}

struct RetrainOverlap {
  int retrains = 0;
  uint64_t serves_during_retrain = 0;
  uint64_t final_generation = 0;
  double qps = 0.0;
};

/// Clients hammer the core while the main thread runs retrain+publish
/// cycles; counts how many serves complete inside the retrain window.
RetrainOverlap MeasureRetrainOverlap() {
  Fixture& f = Fixture::Get();
  const core::NeoConfig cfg = Fixture::Config();
  Rig rig = MakeRig(cfg);
  serve::ServingOptions sopt;
  sopt.workers = 2;
  sopt.search = cfg.search;
  serve::ServingCore core(rig.neo.get(), sopt);
  for (const query::Query* q : f.train) core.ServeSync(*q, /*learn=*/false);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      size_t i = static_cast<size_t>(c);
      while (!stop.load(std::memory_order_relaxed)) {
        core.ServeSync(*f.train[i % f.train.size()], /*learn=*/true);
        served.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }

  RetrainOverlap r;
  r.retrains = 2;
  util::Stopwatch watch;
  const uint64_t before = served.load();
  for (int i = 0; i < r.retrains; ++i) core.RetrainAndPublish();
  r.serves_during_retrain = served.load() - before;
  const double retrain_secs = watch.ElapsedSeconds();
  stop.store(true);
  for (std::thread& t : clients) t.join();
  core.Drain();
  r.final_generation = core.stats().generation;
  r.qps = retrain_secs > 0 ? static_cast<double>(r.serves_during_retrain) / retrain_secs
                           : 0.0;
  return r;
}

/// Experience-store serving arm (the adaptive-mode path): serve the train
/// set through a store-attached core until types learn their best plans,
/// manually pin one type, and report the per-type counters the serving stats
/// surface — so mode behavior is visible in the bench report, not just in
/// tests.
struct StoreServing {
  bool ran = false;
  uint64_t types_tracked = 0;
  uint64_t mode_transitions = 0;
  uint64_t exploit_serves = 0;
  uint64_t drift_demotions = 0;
  uint64_t pinned_serves = 0;
  uint64_t wal_records = 0;
  double pinned_qps = 0.0;
};

StoreServing MeasureStoreServing() {
  Fixture& f = Fixture::Get();
  const core::NeoConfig cfg = Fixture::Config();
  Rig rig = MakeRig(cfg);
  store::ExperienceStore store{store::StoreOptions{}};  // In-memory.
  if (!store.Open().ok()) return {};

  StoreServing r;
  serve::ServingOptions sopt;
  sopt.workers = 2;
  sopt.search = cfg.search;
  sopt.store = &store;
  serve::ServingCore core(rig.neo.get(), sopt);
  // Learn phase: every type records serves and captures its best plan.
  for (int pass = 0; pass < 2; ++pass) {
    for (const query::Query* q : f.train) core.ServeSync(*q, /*learn=*/true);
  }
  // Pin every type that captured a best plan, then measure pinned serving
  // (search skipped entirely — the store's fast path).
  size_t pinned_types = 0;
  for (const query::Query* q : f.train) {
    if (store.SetMode(q->type_hash, store::TypeMode::kExploit).ok()) {
      ++pinned_types;
    }
  }
  constexpr int kPinnedRequests = 256;
  util::Stopwatch watch;
  for (int i = 0; i < kPinnedRequests; ++i) {
    core.ServeSync(*f.train[static_cast<size_t>(i) % f.train.size()],
                   /*learn=*/true);
  }
  const double secs = watch.ElapsedSeconds();
  core.Drain();

  const serve::ServingStats stats = core.stats();
  r.ran = pinned_types > 0;
  r.types_tracked = stats.store_types_tracked;
  r.mode_transitions = stats.store_mode_transitions;
  r.exploit_serves = stats.store_exploit_serves;
  r.drift_demotions = stats.store_drift_demotions;
  r.pinned_serves = stats.store_pinned_serves;
  r.wal_records = stats.store_wal_records;
  r.pinned_qps = secs > 0 ? kPinnedRequests / secs : 0.0;
  return r;
}

/// Overload arm: a 10x-the-cap burst against one deliberately stalled worker,
/// with deadline-aware admission on — then the identical burst with admission
/// OFF as the contrast. The acceptance bound this surfaces (and CI greps):
/// every served request's queue wait stayed within its deadline (structural —
/// expired requests are dropped at pickup, never executed), no future was
/// abandoned, and the queue never grew past its cap; the no-admission
/// baseline blows straight through that cap on the same trace.
struct OverloadArm {
  bool ran = false;
  uint64_t submitted = 0;
  uint64_t served = 0;
  uint64_t abandoned_futures = 0;
  bool bound_satisfied = false;
  double deadline_ms = 0.0;
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
  double served_queue_wait_max_ms = 0.0;
  size_t queue_cap = 0;
  size_t queue_depth_hwm = 0;
  size_t baseline_hwm = 0;  ///< Same burst, admission disabled.
  serve::ServingStats stats;
};

OverloadArm MeasureOverload() {
  Fixture& f = Fixture::Get();
  const core::NeoConfig cfg = Fixture::Config();
  Rig rig = MakeRig(cfg);
  rig.neo->Retrain();

  util::FaultInjectorConfig fcfg;
  fcfg.enabled = true;
  fcfg.seed = 29;
  fcfg.serve_stall_p = 1.0;  // Every serve stalls 1ms: sustained overload.
  fcfg.serve_stall_ms = 1.0;

  OverloadArm r;
  r.queue_cap = 32;
  r.deadline_ms = 250.0;
  const int kBurst = static_cast<int>(r.queue_cap) * 10;

  auto burst = [&](serve::ServingCore* core) {
    std::vector<std::future<serve::ServeResult>> futures;
    futures.reserve(static_cast<size_t>(kBurst));
    for (int i = 0; i < kBurst; ++i) {
      futures.push_back(core->Submit(
          *f.train[static_cast<size_t>(i) % f.train.size()], /*learn=*/false));
    }
    return futures;
  };

  {
    util::FaultInjector chaos(fcfg);
    serve::ServingOptions sopt;
    sopt.workers = 1;
    sopt.search = cfg.search;
    sopt.fault_injector = &chaos;
    sopt.admission.enabled = true;
    sopt.admission.queue_cap = r.queue_cap;
    sopt.admission.default_deadline_ms = r.deadline_ms;
    serve::ServingCore core(rig.neo.get(), sopt);

    std::vector<std::future<serve::ServeResult>> futures = burst(&core);
    core.Drain();
    bool within_deadline = true;
    for (std::future<serve::ServeResult>& fu : futures) {
      if (fu.wait_for(std::chrono::seconds(30)) != std::future_status::ready) {
        ++r.abandoned_futures;  // Should be structurally impossible.
        continue;
      }
      const serve::ServeResult res = fu.get();
      if (res.status.ok()) {
        if (res.queue_ms > r.deadline_ms) within_deadline = false;
        r.served_queue_wait_max_ms =
            std::max(r.served_queue_wait_max_ms, res.queue_ms);
      }
    }
    r.stats = core.stats();
    r.submitted = r.stats.requests;
    r.served = r.stats.total_latency.count();
    r.queue_depth_hwm = r.stats.queue_depth_hwm;
    r.queue_wait_p50_ms = r.stats.queue_wait.Percentile(50);
    r.queue_wait_p99_ms = r.stats.queue_wait.Percentile(99);
    r.bound_satisfied = within_deadline && r.abandoned_futures == 0 &&
                        r.queue_depth_hwm <= r.queue_cap && r.served > 0;
  }

  // The contrast: the same burst with admission disabled has no cap and no
  // deadline — the backlog (and so tail queue wait) grows with the burst.
  {
    util::FaultInjector chaos(fcfg);
    serve::ServingOptions bopt;
    bopt.workers = 1;
    bopt.search = cfg.search;
    bopt.fault_injector = &chaos;
    serve::ServingCore baseline(rig.neo.get(), bopt);
    std::vector<std::future<serve::ServeResult>> futures = burst(&baseline);
    for (std::future<serve::ServeResult>& fu : futures) fu.wait();
    baseline.Drain();
    r.baseline_hwm = baseline.stats().queue_depth_hwm;
  }
  r.ran = true;
  return r;
}

void AppendArmJson(std::FILE* out, const ArmResult& r, bool last) {
  std::fprintf(out,
               "    {\"clients\": %d, \"coalesced\": %s, \"workers\": %d,"
               " \"requests\": %llu, \"qps\": %.2f,"
               " \"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f,"
               " \"merged_groups\": %llu, \"merged_requests\": %llu,"
               " \"direct_calls\": %llu,"
               " \"score_cache_hits\": %llu, \"score_cache_misses\": %llu,"
               " \"activation_cache_hits\": %llu,"
               " \"leaf_tier_hits\": %llu, \"leaf_cache_hits\": %llu,"
               " \"coalescer_window_us\": %d}%s\n",
               r.clients, r.coalesced ? "true" : "false", r.workers,
               static_cast<unsigned long long>(r.requests), r.qps, r.p50_ms,
               r.p95_ms, r.p99_ms,
               static_cast<unsigned long long>(r.coalescer.merged_groups),
               static_cast<unsigned long long>(r.coalescer.merged_requests),
               static_cast<unsigned long long>(r.coalescer.direct_calls),
               static_cast<unsigned long long>(r.score_cache.hits),
               static_cast<unsigned long long>(r.score_cache.misses),
               static_cast<unsigned long long>(r.activation_cache.hits),
               static_cast<unsigned long long>(r.leaf_tier_hits),
               static_cast<unsigned long long>(r.leaf_cache.hits),
               r.coalescer.last_window_us, last ? "" : ",");
}

void WriteServeJson(const std::string& path, int reps) {
  if (nn::UseReferenceKernels()) {
    std::fprintf(stderr,
                 "micro_serve: reference kernels active; serving requires fast"
                 " kernels, skipping %s\n",
                 path.c_str());
    return;
  }
  Fixture& f = Fixture::Get();
  constexpr int kRequestsPerArm = 256;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::vector<ArmResult> arms;
  for (const int clients : {1, 2, 4, 8, 16, 32, 64}) {
    arms.push_back(RunArm(clients, /*coalesced=*/true, kRequestsPerArm, reps));
  }
  for (const int clients : {1, 8, 32}) {
    arms.push_back(RunArm(clients, /*coalesced=*/false, kRequestsPerArm, reps));
  }

  double qps_1 = 0.0, qps_multi_best = 0.0;
  double qps_coal8 = 0.0, qps_uncoal8 = 0.0;
  for (const ArmResult& a : arms) {
    if (a.coalesced && a.clients == 1) qps_1 = a.qps;
    if (a.coalesced && a.clients > 1) qps_multi_best = std::max(qps_multi_best, a.qps);
    if (a.clients == 8) (a.coalesced ? qps_coal8 : qps_uncoal8) = a.qps;
  }
  // On a multi-core host concurrent clients must not lose throughput vs one
  // client (10% noise floor); a single hardware thread cannot scale and is
  // reported as such rather than failed.
  const bool qps_scaling_ok = hw <= 1 || qps_multi_best >= qps_1 * 0.9;
  const double coalesce_speedup =
      qps_uncoal8 > 0.0 ? qps_coal8 / qps_uncoal8 : 0.0;

  const bool bit_identical = SingleClientBitIdentical();
  const RetrainOverlap overlap = MeasureRetrainOverlap();
  const SteadyState steady = MeasureSteadyState();
  const StoreServing store_arm = MeasureStoreServing();
  const OverloadArm ov = MeasureOverload();
  const bool zero_alloc = !steady.counter_active || steady.heap_allocs == 0;

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "micro_serve: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"micro_serve\",\n"
               "  \"kernel_arch\": \"%s\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"queries\": %zu,\n"
               "  \"requests_per_arm\": %d,\n"
               "  \"reps\": %d,\n"
               "  \"arms\": [\n",
               nn::KernelArchString(), hw, f.train.size(), kRequestsPerArm, reps);
  for (size_t i = 0; i < arms.size(); ++i) {
    AppendArmJson(out, arms[i], i + 1 == arms.size());
  }
  std::fprintf(out,
               "  ],\n"
               "  \"single_client_bit_identical\": %s,\n"
               "  \"qps_scaling_ok\": %s,\n"
               "  \"coalesce_speedup_8clients\": %.3f,\n"
               "  \"alloc_counter_active\": %s,\n"
               "  \"steady_state_heap_allocs\": %llu,\n"
               "  \"steady_state_zero_alloc\": %s,\n"
               "  \"activation_slab_peak_bytes\": %zu,\n"
               "  \"retrain_overlap\": {\"retrains\": %d,"
               " \"serves_during_retrain\": %llu, \"final_generation\": %llu,"
               " \"qps\": %.2f},\n"
               "  \"store\": {\"ran\": %s, \"store_types_tracked\": %llu,"
               " \"store_mode_transitions\": %llu,"
               " \"store_exploit_serves\": %llu,"
               " \"store_drift_demotions\": %llu,"
               " \"store_pinned_serves\": %llu, \"store_wal_records\": %llu,"
               " \"pinned_qps\": %.2f},\n"
               "  \"overload_bound_satisfied\": %s,\n"
               "  \"abandoned_futures\": %llu,\n"
               "  \"overload\": {\"submitted\": %llu, \"admitted\": %llu,"
               " \"served\": %llu, \"shed_admission\": %llu,"
               " \"shed_queue_full\": %llu, \"evicted_lower_priority\": %llu,"
               " \"expired_at_admission\": %llu, \"expired_in_queue\": %llu,"
               " \"worker_exceptions\": %llu, \"degraded_budget_serves\": %llu,"
               " \"degraded_pinned_serves\": %llu, \"ladder_transitions\": %llu,"
               " \"ladder_entries_l1\": %llu, \"ladder_entries_l2\": %llu,"
               " \"ladder_entries_l3\": %llu, \"deadline_ms\": %.1f,"
               " \"queue_wait_p50_ms\": %.4f, \"queue_wait_p99_ms\": %.4f,"
               " \"served_queue_wait_max_ms\": %.4f, \"queue_cap\": %zu,"
               " \"queue_depth_hwm\": %zu, \"no_admission_hwm\": %zu}\n"
               "}\n",
               bit_identical ? "true" : "false", qps_scaling_ok ? "true" : "false",
               coalesce_speedup, steady.counter_active ? "true" : "false",
               static_cast<unsigned long long>(steady.heap_allocs),
               zero_alloc ? "true" : "false", steady.slab_peak_bytes,
               overlap.retrains,
               static_cast<unsigned long long>(overlap.serves_during_retrain),
               static_cast<unsigned long long>(overlap.final_generation),
               overlap.qps, store_arm.ran ? "true" : "false",
               static_cast<unsigned long long>(store_arm.types_tracked),
               static_cast<unsigned long long>(store_arm.mode_transitions),
               static_cast<unsigned long long>(store_arm.exploit_serves),
               static_cast<unsigned long long>(store_arm.drift_demotions),
               static_cast<unsigned long long>(store_arm.pinned_serves),
               static_cast<unsigned long long>(store_arm.wal_records),
               store_arm.pinned_qps, ov.bound_satisfied ? "true" : "false",
               static_cast<unsigned long long>(ov.abandoned_futures),
               static_cast<unsigned long long>(ov.submitted),
               static_cast<unsigned long long>(ov.stats.admitted),
               static_cast<unsigned long long>(ov.served),
               static_cast<unsigned long long>(ov.stats.shed_admission),
               static_cast<unsigned long long>(ov.stats.shed_queue_full),
               static_cast<unsigned long long>(ov.stats.evicted_lower_priority),
               static_cast<unsigned long long>(ov.stats.expired_at_admission),
               static_cast<unsigned long long>(ov.stats.expired_in_queue),
               static_cast<unsigned long long>(ov.stats.worker_exceptions),
               static_cast<unsigned long long>(ov.stats.degraded_budget_serves),
               static_cast<unsigned long long>(ov.stats.degraded_pinned_serves),
               static_cast<unsigned long long>(ov.stats.ladder_transitions),
               static_cast<unsigned long long>(ov.stats.ladder_level_entries[1]),
               static_cast<unsigned long long>(ov.stats.ladder_level_entries[2]),
               static_cast<unsigned long long>(ov.stats.ladder_level_entries[3]),
               ov.deadline_ms, ov.queue_wait_p50_ms, ov.queue_wait_p99_ms,
               ov.served_queue_wait_max_ms, ov.queue_cap, ov.queue_depth_hwm,
               ov.baseline_hwm);
  std::fclose(out);

  std::printf(
      "serving: 1-client %.0f qps; best multi-client %.0f qps (%u hw threads,"
      " scaling ok: %s); coalesce speedup @8 clients %.2fx;"
      " single-client bit-identical: %s; steady-state allocs %llu"
      " (slab peak %zu B); %llu serves overlapped %d retrains"
      " (generation %llu); store arm: %llu types, %llu pinned serves at"
      " %.0f qps; overload: %llu/%llu served under a 10x burst (hwm %zu/cap"
      " %zu vs %zu unbounded, served-wait max %.1f ms vs %.0f ms deadline,"
      " bound %s, %llu abandoned) -> %s\n",
      qps_1, qps_multi_best, hw, qps_scaling_ok ? "yes" : "NO", coalesce_speedup,
      bit_identical ? "yes" : "NO",
      static_cast<unsigned long long>(steady.heap_allocs), steady.slab_peak_bytes,
      static_cast<unsigned long long>(overlap.serves_during_retrain),
      overlap.retrains, static_cast<unsigned long long>(overlap.final_generation),
      static_cast<unsigned long long>(store_arm.types_tracked),
      static_cast<unsigned long long>(store_arm.pinned_serves),
      store_arm.pinned_qps, static_cast<unsigned long long>(ov.served),
      static_cast<unsigned long long>(ov.submitted), ov.queue_depth_hwm,
      ov.queue_cap, ov.baseline_hwm, ov.served_queue_wait_max_ms,
      ov.deadline_ms, ov.bound_satisfied ? "yes" : "NO",
      static_cast<unsigned long long>(ov.abandoned_futures), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serve.json";
  bool filtered = false;
  bool json_requested = false;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json-out=", 0) == 0) {
      json_requested = true;
      json_path = arg.substr(std::string("--json-out=").size());
    } else if (arg == "--json-out") {
      json_requested = true;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        json_path = argv[++i];
      }
    } else if (arg.rfind("--json-reps=", 0) == 0) {
      reps = std::atoi(arg.substr(std::string("--json-reps=").size()).c_str());
      if (reps < 1) reps = 1;
    }
    if (arg.rfind("--benchmark_filter", 0) == 0) filtered = true;
  }
  if (!filtered || json_requested) WriteServeJson(json_path, reps);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
