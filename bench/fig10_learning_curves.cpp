// Figure 10: learning curves. Per (workload, engine): test-set latency
// normalized to the native optimizer after every training episode, with
// min/median/max bands over seeds; the PostgreSQL-plans-on-engine reference
// line of the paper's plots is printed per combination.
//
// Output: CSV rows  workload,engine,episode,min,median,max
#include "bench/common.h"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
  Options opt = Options::Parse(argc, argv);
  if (opt.seeds < 1) opt.seeds = 1;
  const engine::EngineKind kEngines[] = {
      engine::EngineKind::kPostgres, engine::EngineKind::kSqlite,
      engine::EngineKind::kMssql, engine::EngineKind::kOracle};
  const WorkloadKind kWorkloads[] = {WorkloadKind::kJob, WorkloadKind::kTpch,
                                     WorkloadKind::kCorp};
  const int episodes = opt.EffectiveEpisodes();

  std::printf("# Figure 10: learning curves (normalized test latency, %d seeds)\n",
              opt.seeds);
  std::printf("workload,engine,episode,min,median,max\n");

  for (WorkloadKind wk : kWorkloads) {
    Env env = Env::Make(wk, opt, /*build_rvec_joins=*/true);
    for (engine::EngineKind ek : kEngines) {
      // curve[seed][episode] = normalized latency.
      std::vector<std::vector<double>> curves;
      double pg_line = 0.0;
      for (int seed = 0; seed < opt.seeds; ++seed) {
        NeoRun run = NeoRun::Make(env, ek, FeatVariant::kRVector, opt,
                                  2000 + static_cast<uint64_t>(seed) * 131);
        const double native_total =
            run.OptimizerTotal(run.native.optimizer.get(), env.split.test);
        pg_line = run.OptimizerTotal(run.expert.optimizer.get(), env.split.test) /
                  native_total;
        run.neo->Bootstrap(env.split.train, run.expert.optimizer.get());
        std::vector<double> curve;
        for (int e = 0; e < episodes; ++e) {
          run.neo->RunEpisode(env.split.train);
          curve.push_back(run.neo->EvaluateTotalLatency(env.split.test) /
                          native_total);
        }
        curves.push_back(std::move(curve));
      }
      for (int e = 0; e < episodes; ++e) {
        std::vector<double> vals;
        for (const auto& c : curves) vals.push_back(c[static_cast<size_t>(e)]);
        std::printf("%s,%s,%d,%.4f,%.4f,%.4f\n", WorkloadName(wk),
                    engine::EngineKindName(ek), e + 1, Min(vals), Median(vals),
                    Max(vals));
      }
      std::printf("# %s/%s: PostgreSQL-plans-on-engine reference = %.4f\n",
                  WorkloadName(wk), engine::EngineKindName(ek), pg_line);
      std::fflush(stdout);
    }
  }
  return 0;
}
