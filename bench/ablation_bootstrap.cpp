// Ablation (DESIGN.md / paper §8): bootstrap-expert quality sweep. How does
// the quality of the demonstration optimizer affect convergence? Experts:
//   random      - random valid plans (the §6.3.3 degenerate case)
//   greedy      - SQLite-style greedy planner
//   dp          - PostgreSQL-style DP (the paper's choice)
#include "bench/common.h"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
  const Options opt = Options::Parse(argc, argv);
  Env env = Env::Make(WorkloadKind::kJob, opt, /*build_rvec_joins=*/true);
  const int episodes = opt.EffectiveEpisodes();

  std::printf("# Ablation: bootstrap expert quality vs convergence (JOB)\n");
  std::printf("%-8s %12s %12s %14s\n", "expert", "ep1", "best", "eps-to-native");

  for (const char* expert_name : {"random", "greedy", "dp"}) {
    NeoRun run = NeoRun::Make(env, engine::EngineKind::kPostgres,
                              FeatVariant::kRVector, opt, 9100);
    const double native_total =
        run.OptimizerTotal(run.native.optimizer.get(), env.split.test);

    optim::RandomOptimizer random(env.ds.schema, 31);
    optim::GreedyOptimizer greedy(env.ds.schema, run.expert.cost_model.get());
    optim::Optimizer* expert = nullptr;
    if (!std::strcmp(expert_name, "random")) expert = &random;
    if (!std::strcmp(expert_name, "greedy")) expert = &greedy;
    if (!std::strcmp(expert_name, "dp")) expert = run.expert.optimizer.get();

    run.neo->Bootstrap(env.split.train, expert);
    double first = 0.0, best = 1e300;
    int eps_to_native = -1;
    for (int e = 0; e < episodes; ++e) {
      run.neo->RunEpisode(env.split.train);
      const double total = run.neo->EvaluateTotalLatency(env.split.test);
      if (e == 0) first = total / native_total;
      best = std::min(best, total / native_total);
      if (eps_to_native < 0 && total <= native_total) eps_to_native = e + 1;
    }
    if (eps_to_native < 0) {
      std::printf("%-8s %12.3f %12.3f %14s\n", expert_name, first, best, "never");
    } else {
      std::printf("%-8s %12.3f %12.3f %14d\n", expert_name, first, best,
                  eps_to_native);
    }
    std::fflush(stdout);
  }
  return 0;
}
