// Table 2: embedding cosine similarity vs true pair cardinality for
// (keyword, genre) pairs — the paper's 'love'/'romance' example (Fig. 8).
// Expected shape: aligned pairs (love-romance, fight-action) have both the
// highest similarity and the highest true cardinality of their row.
#include "bench/common.h"
#include "src/query/builder.h"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
  const Options opt = Options::Parse(argc, argv);
  Env env = Env::Make(WorkloadKind::kJob, opt, /*build_rvec_joins=*/true);
  engine::CardinalityOracle oracle(env.ds.schema, *env.ds.db);

  const int kw_gid = env.ds.schema.GlobalColumnId("keyword", "keyword");
  const int info_gid = env.ds.schema.GlobalColumnId("movie_info", "info");
  const auto& kw_col = env.ds.db->table("keyword").ColumnByName("keyword");
  const auto& info_col = env.ds.db->table("movie_info").ColumnByName("info");

  std::printf("# Table 2: similarity vs cardinality (Fig. 8 query family)\n");
  std::printf("%-10s %-10s %12s %12s\n", "keyword", "genre", "similarity",
              "cardinality");

  int next_id = 90000;
  for (const char* stem : {"love", "fight"}) {
    for (const char* genre : {"romance", "action", "horror"}) {
      // Mean cosine between all '<stem>-*' keyword values and the genre.
      const auto matched = kw_col.CodesContaining(stem);
      const int64_t genre_code = info_col.LookupString(genre);
      double sim = 0.0;
      for (int64_t code : matched) {
        sim += env.rvec_joins->Cosine(kw_gid, code, info_gid, genre_code);
      }
      if (!matched.empty()) sim /= static_cast<double>(matched.size());

      // True cardinality of the Fig. 8 query with this (stem, genre) pair.
      query::QueryBuilder b(env.ds.schema, *env.ds.db, "table2");
      b.JoinFk("movie_info", "title")
          .JoinFk("movie_info", "info_type")
          .JoinFk("movie_keyword", "title")
          .JoinFk("movie_keyword", "keyword")
          .PredStr("info_type", "info", query::PredOp::kEq, "genres")
          .PredStr("movie_info", "info", query::PredOp::kEq, genre)
          .PredStr("keyword", "keyword", query::PredOp::kContains, stem);
      query::Query q = b.Build();
      q.id = next_id++;
      const double card = oracle.Cardinality(q, (1ULL << q.num_relations()) - 1);

      std::printf("%-10s %-10s %12.3f %12.0f\n", stem, genre, sim, card);
    }
  }
  return 0;
}
