// Micro-benchmarks (google-benchmark): neural network primitives. Also
// emits BENCH_train.json — TrainBatch throughput for the per-sample loop vs
// the packed-forest path at 1 and 8 threads — so successive PRs can track
// the training-path perf trajectory (the inference counterpart lives in
// micro_search's BENCH_search.json).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/nn/value_network.h"
#include "src/util/alloc_counter.h"
#include "src/util/stopwatch.h"

namespace {

using namespace neo::nn;

Matrix RandomMatrix(int rows, int cols, neo::util::Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.Size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextUniform(-1, 1));
  }
  return m;
}

/// items/sec = multiply-adds/sec; GFLOP/s counts 2 flops per multiply-add.
void SetGemmCounters(benchmark::State& state, int n) {
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * n * n * n,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  neo::util::Rng rng(1);
  const Matrix a = RandomMatrix(n, n, rng);
  const Matrix b = RandomMatrix(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  SetGemmCounters(state, n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  neo::util::Rng rng(1);
  const Matrix a = RandomMatrix(n, n, rng);
  const Matrix b = RandomMatrix(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulNaive(a, b));
  }
  SetGemmCounters(state, n);
}
BENCHMARK(BM_MatMulNaive)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransposeB(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  neo::util::Rng rng(1);
  const Matrix a = RandomMatrix(n, n, rng);
  const Matrix b = RandomMatrix(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransposeB(a, b));
  }
  SetGemmCounters(state, n);
}
BENCHMARK(BM_MatMulTransposeB)->Arg(64)->Arg(128)->Arg(256);

void BM_TreeConvForward(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  neo::util::Rng rng(2);
  TreeConv conv(53, 32, rng);
  TreeStructure tree;
  tree.left.assign(static_cast<size_t>(nodes), -1);
  tree.right.assign(static_cast<size_t>(nodes), -1);
  for (int i = 0; i + 2 < nodes; i += 2) {
    tree.left[static_cast<size_t>(i)] = i + 1;
    tree.right[static_cast<size_t>(i)] = i + 2;
  }
  const Matrix x = RandomMatrix(nodes, 53, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(tree, x));
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_TreeConvForward)->Arg(9)->Arg(17)->Arg(33);

void BM_ValueNetPredict(benchmark::State& state) {
  ValueNetConfig cfg;
  cfg.query_dim = 66;
  cfg.plan_dim = 21;
  cfg.query_fc = {64, 32};
  cfg.tree_channels = {32, 16};
  cfg.head_fc = {16};
  ValueNetwork net(cfg);
  neo::util::Rng rng(3);
  PlanSample s;
  s.query_vec = RandomMatrix(1, 66, rng);
  const int nodes = 17;
  s.node_features = RandomMatrix(nodes, 21, rng);
  s.tree.left.assign(nodes, -1);
  s.tree.right.assign(nodes, -1);
  for (int i = 0; i + 2 < nodes; i += 2) {
    s.tree.left[static_cast<size_t>(i)] = i + 1;
    s.tree.right[static_cast<size_t>(i)] = i + 2;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Predict(s));
  }
}
BENCHMARK(BM_ValueNetPredict);

void BM_ValueNetPredictWithCachedEmbedding(benchmark::State& state) {
  ValueNetConfig cfg;
  cfg.query_dim = 66;
  cfg.plan_dim = 21;
  cfg.query_fc = {64, 32};
  cfg.tree_channels = {32, 16};
  cfg.head_fc = {16};
  ValueNetwork net(cfg);
  neo::util::Rng rng(4);
  PlanSample s;
  s.query_vec = RandomMatrix(1, 66, rng);
  const int nodes = 17;
  s.node_features = RandomMatrix(nodes, 21, rng);
  s.tree.left.assign(nodes, -1);
  s.tree.right.assign(nodes, -1);
  const Matrix embed = net.EmbedQuery(s.query_vec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net.PredictWithEmbedding(embed, s.tree, s.node_features));
  }
}
BENCHMARK(BM_ValueNetPredictWithCachedEmbedding);

/// Shared fixture for the batched-vs-loop comparison: both arms must score
/// the exact same plans with identically-configured networks.
struct PredictFixture {
  ValueNetwork net;
  std::vector<PlanSample> samples;
  std::vector<const PlanSample*> ptrs;
  Matrix embed;

  static ValueNetConfig Config() {
    ValueNetConfig cfg;
    cfg.query_dim = 66;
    cfg.plan_dim = 21;
    cfg.query_fc = {64, 32};
    cfg.tree_channels = {32, 16};
    cfg.head_fc = {16};
    return cfg;
  }

  explicit PredictFixture(int batch) : net(Config()), samples(static_cast<size_t>(batch)) {
    neo::util::Rng rng(6);
    for (auto& s : samples) {
      const int nodes = 9 + static_cast<int>(rng.NextBounded(9));
      s.query_vec = RandomMatrix(1, 66, rng);
      s.node_features = RandomMatrix(nodes, 21, rng);
      s.tree.left.assign(static_cast<size_t>(nodes), -1);
      s.tree.right.assign(static_cast<size_t>(nodes), -1);
      for (int i = 0; i + 2 < nodes; i += 2) {
        s.tree.left[static_cast<size_t>(i)] = i + 1;
        s.tree.right[static_cast<size_t>(i)] = i + 2;
      }
      ptrs.push_back(&s);
    }
    embed = net.EmbedQuery(samples[0].query_vec);
  }
};

/// Batched forest inference vs. the per-sample loop: both arms score the
/// same plans sharing one query embedding; items/sec is plans scored/sec.
void BM_ValueNetPredictBatch(benchmark::State& state) {
  PredictFixture f(static_cast<int>(state.range(0)));
  const PlanBatch packed = PackPlanBatch(f.ptrs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.net.PredictBatch(f.embed, packed));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ValueNetPredictBatch)->Arg(8)->Arg(32)->Arg(128);

void BM_ValueNetPredictLoop(benchmark::State& state) {
  PredictFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (const auto& s : f.samples) {
      benchmark::DoNotOptimize(f.net.PredictWithEmbedding(f.embed, s.tree, s.node_features));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ValueNetPredictLoop)->Arg(8)->Arg(32)->Arg(128);

/// Training fixture: `batch` samples with mixed tree shapes. `packed`
/// selects the packed-forest path vs the per-sample loop; `threads` the
/// GEMM row-partitioning degree.
struct TrainFixture {
  ValueNetwork net;
  std::vector<PlanSample> samples;
  std::vector<const PlanSample*> ptrs;
  std::vector<float> targets;

  static ValueNetConfig Config() {
    ValueNetConfig cfg;
    cfg.query_dim = 66;
    cfg.plan_dim = 21;
    cfg.query_fc = {64, 32};
    cfg.tree_channels = {32, 16};
    cfg.head_fc = {16};
    return cfg;
  }

  explicit TrainFixture(int batch) : net(Config()), samples(static_cast<size_t>(batch)) {
    neo::util::Rng rng(5);
    for (auto& s : samples) {
      const int nodes = 9 + static_cast<int>(rng.NextBounded(9));
      s.query_vec = RandomMatrix(1, 66, rng);
      s.node_features = RandomMatrix(nodes, 21, rng);
      s.tree.left.assign(static_cast<size_t>(nodes), -1);
      s.tree.right.assign(static_cast<size_t>(nodes), -1);
      for (int i = 0; i + 2 < nodes; i += 2) {
        s.tree.left[static_cast<size_t>(i)] = i + 1;
        s.tree.right[static_cast<size_t>(i)] = i + 2;
      }
      ptrs.push_back(&s);
      targets.push_back(static_cast<float>(rng.NextUniform(-1, 1)));
    }
  }
};

void BM_ValueNetTrainBatch(benchmark::State& state) {
  TrainFixture f(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.net.TrainBatch(f.ptrs, f.targets));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ValueNetTrainBatch);

void BM_ValueNetTrainBatchPerSample(benchmark::State& state) {
  TrainFixture f(32);
  f.net.SetBatchedTraining(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.net.TrainBatch(f.ptrs, f.targets));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ValueNetTrainBatchPerSample);

// ---- BENCH_train.json ------------------------------------------------------

struct TrainThroughput {
  double samples_per_sec = 0.0;
  double step_ms_mean = 0.0;
  float first_loss = 0.0f;
  float final_loss = 0.0f;
  size_t peak_scratch_bytes = 0;
  uint64_t steady_allocs = 0;  ///< Heap allocs in one post-warmup step.
  std::vector<TreeConv::TrainStats> conv_stats;  ///< Per layer, per step.
  std::vector<int> conv_in, conv_out;
};

/// Steps a fresh default-width network (paper-shaped 64/32/16 conv stack)
/// `steps` times on a batch-64 set and reports samples/sec. All arms train
/// on identical data from identical initial weights. `sparse` selects the
/// sparse (skip absent children) vs dense (zero-padded) training conv;
/// `packed` the packed-forest vs per-sample path.
TrainThroughput MeasureTrainThroughput(bool packed, bool sparse, int threads,
                                       int steps) {
  ValueNetConfig cfg;
  cfg.query_dim = 66;
  cfg.plan_dim = 21;  // Default channel widths (64/32/16) from ValueNetConfig.
  ValueNetwork net(cfg);
  net.SetBatchedTraining(packed);
  const bool prev_sparse = SparseTrainingConv();
  SetSparseTrainingConv(sparse);
  ComputeThreadsScope scope(threads);

  neo::util::Rng rng(5);
  std::vector<PlanSample> samples(64);
  std::vector<const PlanSample*> ptrs;
  std::vector<float> targets;
  for (auto& s : samples) {
    const int nodes = 9 + static_cast<int>(rng.NextBounded(9));
    s.query_vec = RandomMatrix(1, 66, rng);
    s.node_features = RandomMatrix(nodes, 21, rng);
    s.tree.left.assign(static_cast<size_t>(nodes), -1);
    s.tree.right.assign(static_cast<size_t>(nodes), -1);
    for (int i = 0; i + 2 < nodes; i += 2) {
      s.tree.left[static_cast<size_t>(i)] = i + 1;
      s.tree.right[static_cast<size_t>(i)] = i + 2;
    }
    ptrs.push_back(&s);
    targets.push_back(static_cast<float>(rng.NextUniform(-1, 1)));
  }

  TrainThroughput out;
  out.first_loss = net.TrainBatch(ptrs, targets);  // Warm-up step (untimed).
  out.final_loss = net.TrainBatch(ptrs, targets);  // Buffers now at capacity.
  // Steady-state alloc probe: TrainBatch brackets its own work in an
  // AllocRegionScope, so RegionAllocs() counts exactly the step's heap
  // traffic. The packed path must be zero once warm.
  neo::util::ArmAllocCounter(true);
  neo::util::ResetRegionAllocs();
  out.final_loss = net.TrainBatch(ptrs, targets);
  out.steady_allocs = neo::util::RegionAllocs();
  neo::util::ArmAllocCounter(false);
  net.ResetConvTrainStats();
  neo::util::Stopwatch watch;
  for (int i = 0; i < steps; ++i) out.final_loss = net.TrainBatch(ptrs, targets);
  const double total_s = watch.ElapsedSeconds();
  out.samples_per_sec = static_cast<double>(steps) * 64.0 / total_s;
  out.step_ms_mean = total_s * 1000.0 / steps;
  out.peak_scratch_bytes = net.peak_training_scratch_bytes();
  out.conv_stats = net.ConvTrainStats();
  for (auto& s : out.conv_stats) {
    // Per-step averages keep the counters comparable across step counts.
    s.forward_madds /= static_cast<uint64_t>(steps);
    s.backward_madds /= static_cast<uint64_t>(steps);
    s.gather_bytes /= static_cast<uint64_t>(steps);
    s.rows_skipped /= static_cast<uint64_t>(steps);
  }
  for (size_t li = 0; li < out.conv_stats.size(); ++li) {
    out.conv_in.push_back(li == 0 ? cfg.plan_dim + cfg.query_fc.back()
                                  : cfg.tree_channels[li - 1]);
    out.conv_out.push_back(cfg.tree_channels[li]);
  }
  SetSparseTrainingConv(prev_sparse);
  return out;
}

void PrintTrainArm(std::FILE* out, const char* name, const TrainThroughput& r,
                   const char* trailing_comma) {
  std::fprintf(out,
               "  \"%s\": {\"samples_per_sec\": %.1f, \"step_ms_mean\": %.3f,"
               " \"first_loss\": %.6f, \"final_loss\": %.6f,"
               " \"peak_train_scratch_bytes\": %zu,"
               " \"steady_state_heap_allocs\": %llu}%s\n",
               name, r.samples_per_sec, r.step_ms_mean,
               static_cast<double>(r.first_loss),
               static_cast<double>(r.final_loss), r.peak_scratch_bytes,
               static_cast<unsigned long long>(r.steady_allocs),
               trailing_comma);
}

/// Per-layer conv flop + gather-byte counters for one arm (per training step).
void PrintConvLayers(std::FILE* out, const char* name, const TrainThroughput& r,
                     const char* trailing_comma) {
  std::fprintf(out, "  \"%s\": [", name);
  for (size_t li = 0; li < r.conv_stats.size(); ++li) {
    const auto& s = r.conv_stats[li];
    std::fprintf(out,
                 "%s\n    {\"layer\": %zu, \"in_channels\": %d,"
                 " \"out_channels\": %d, \"fwd_madds_per_step\": %llu,"
                 " \"bwd_madds_per_step\": %llu, \"gather_bytes_per_step\": %llu,"
                 " \"rows_skipped_per_step\": %llu}",
                 li == 0 ? "" : ",", li, r.conv_in[li], r.conv_out[li],
                 static_cast<unsigned long long>(s.forward_madds),
                 static_cast<unsigned long long>(s.backward_madds),
                 static_cast<unsigned long long>(s.gather_bytes),
                 static_cast<unsigned long long>(s.rows_skipped));
  }
  std::fprintf(out, "\n  ]%s\n", trailing_comma);
}

void WriteTrainJson(const std::string& path, int steps) {
  // On a single-hardware-thread machine the pool degenerates to the caller
  // running every chunk inline, so a "threads 8" arm would just re-measure
  // the serial path and record a misleading ~1.0x thread speedup. Skip it
  // and flag the skip instead (hardware_concurrency() can return 0 when
  // unknown — treat that as single too).
  const unsigned hw = std::thread::hardware_concurrency();
  const bool thread_arms_skipped = hw <= 1;
  const TrainThroughput per_sample =
      MeasureTrainThroughput(false, true, 1, steps);
  const TrainThroughput dense_train =
      MeasureTrainThroughput(true, false, 1, steps);
  const TrainThroughput sparse_train =
      MeasureTrainThroughput(true, true, 1, steps);
  const TrainThroughput sparse_t8 = thread_arms_skipped
                                        ? TrainThroughput{}
                                        : MeasureTrainThroughput(true, true, 8, steps);
  const double speedup_packing =
      sparse_train.samples_per_sec / per_sample.samples_per_sec;
  const double speedup_sparse =
      sparse_train.samples_per_sec / dense_train.samples_per_sec;
  const double speedup_threads =
      thread_arms_skipped ? 0.0 : sparse_t8.samples_per_sec / sparse_train.samples_per_sec;
  // The two packed arms must see the same loss trajectory bitwise (the
  // sparse skip is an exact no-op); nn_test asserts it, the bench records it.
  const bool first_loss_bit_identical =
      std::memcmp(&dense_train.first_loss, &sparse_train.first_loss,
                  sizeof(float)) == 0;
  const bool final_loss_bit_identical =
      std::memcmp(&dense_train.final_loss, &sparse_train.final_loss,
                  sizeof(float)) == 0;

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "micro_nn: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"micro_nn_train\",\n"
               "  \"batch_size\": 64,\n"
               "  \"steps\": %d,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"kernel_arch\": \"%s\",\n"
               "  \"thread_arms_skipped\": %s,\n",
               steps, hw, KernelArchString(),
               thread_arms_skipped ? "true" : "false");
  PrintTrainArm(out, "per_sample", per_sample, ",");
  PrintTrainArm(out, "dense_train", dense_train, ",");
  PrintTrainArm(out, "sparse_train", sparse_train, ",");
  if (!thread_arms_skipped) {
    PrintTrainArm(out, "sparse_train_threads8", sparse_t8, ",");
  }
  PrintConvLayers(out, "conv_layers_dense", dense_train, ",");
  PrintConvLayers(out, "conv_layers", sparse_train, ",");
  // Zero-alloc gate for the default (packed sparse) training path. When the
  // alloc counter is compiled out (sanitizer builds) the gate is vacuous.
  const bool counter_active = neo::util::AllocCounterActive();
  const bool zero_alloc = !counter_active || sparse_train.steady_allocs == 0;
  std::fprintf(out, "  \"alloc_counter_active\": %s,\n",
               counter_active ? "true" : "false");
  std::fprintf(out, "  \"steady_state_heap_allocs\": %llu,\n",
               static_cast<unsigned long long>(sparse_train.steady_allocs));
  std::fprintf(out, "  \"steady_state_zero_alloc\": %s,\n",
               zero_alloc ? "true" : "false");
  std::fprintf(out, "  \"first_loss_bit_identical\": %s,\n",
               first_loss_bit_identical ? "true" : "false");
  std::fprintf(out, "  \"final_loss_bit_identical\": %s,\n",
               final_loss_bit_identical ? "true" : "false");
  std::fprintf(out, "  \"speedup_from_packing\": %.2f,\n", speedup_packing);
  std::fprintf(out, "  \"speedup_sparse_vs_dense\": %.2f", speedup_sparse);
  if (!thread_arms_skipped) {
    std::fprintf(out, ",\n  \"speedup_from_threads\": %.2f\n}\n", speedup_threads);
  } else {
    std::fprintf(out, "\n}\n");
  }
  std::fclose(out);
  std::printf("TrainBatch throughput (batch 64): per-sample %.0f, dense %.0f,"
              " sparse %.0f samples/s; steady-state allocs/step %llu"
              " (%.2fx sparse-vs-dense, %.2fx packing;"
              " loss bit-identical first=%d final=%d",
              per_sample.samples_per_sec, dense_train.samples_per_sec,
              sparse_train.samples_per_sec,
              static_cast<unsigned long long>(sparse_train.steady_allocs),
              speedup_sparse, speedup_packing,
              first_loss_bit_identical ? 1 : 0, final_loss_bit_identical ? 1 : 0);
  if (thread_arms_skipped) {
    std::printf("; thread arms skipped, hardware_threads=%u) -> %s\n", hw,
                path.c_str());
  } else {
    std::printf("; sparse@8t %.0f, %.2fx threads) -> %s\n",
                sparse_t8.samples_per_sec, speedup_threads, path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_train.json";
  bool filtered = false;
  bool json_requested = false;
  int steps = 60;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json-out=", 0) == 0) {
      json_requested = true;
      json_path = arg.substr(std::string("--json-out=").size());
    } else if (arg == "--json-out") {
      json_requested = true;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        json_path = argv[++i];
      }
    } else if (arg.rfind("--json-steps=", 0) == 0) {
      steps = std::atoi(arg.substr(std::string("--json-steps=").size()).c_str());
      if (steps < 1) steps = 1;
    }
    if (arg.rfind("--benchmark_filter", 0) == 0) filtered = true;
  }
  if (!filtered || json_requested) WriteTrainJson(json_path, steps);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
