// Micro-benchmarks (google-benchmark): neural network primitives.
#include <benchmark/benchmark.h>

#include "src/nn/value_network.h"

namespace {

using namespace neo::nn;

Matrix RandomMatrix(int rows, int cols, neo::util::Rng& rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.Size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextUniform(-1, 1));
  }
  return m;
}

/// items/sec = multiply-adds/sec; GFLOP/s counts 2 flops per multiply-add.
void SetGemmCounters(benchmark::State& state, int n) {
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * n * n * n,
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  neo::util::Rng rng(1);
  const Matrix a = RandomMatrix(n, n, rng);
  const Matrix b = RandomMatrix(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  SetGemmCounters(state, n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  neo::util::Rng rng(1);
  const Matrix a = RandomMatrix(n, n, rng);
  const Matrix b = RandomMatrix(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulNaive(a, b));
  }
  SetGemmCounters(state, n);
}
BENCHMARK(BM_MatMulNaive)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulTransposeB(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  neo::util::Rng rng(1);
  const Matrix a = RandomMatrix(n, n, rng);
  const Matrix b = RandomMatrix(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTransposeB(a, b));
  }
  SetGemmCounters(state, n);
}
BENCHMARK(BM_MatMulTransposeB)->Arg(64)->Arg(128)->Arg(256);

void BM_TreeConvForward(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  neo::util::Rng rng(2);
  TreeConv conv(53, 32, rng);
  TreeStructure tree;
  tree.left.assign(static_cast<size_t>(nodes), -1);
  tree.right.assign(static_cast<size_t>(nodes), -1);
  for (int i = 0; i + 2 < nodes; i += 2) {
    tree.left[static_cast<size_t>(i)] = i + 1;
    tree.right[static_cast<size_t>(i)] = i + 2;
  }
  const Matrix x = RandomMatrix(nodes, 53, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(tree, x));
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_TreeConvForward)->Arg(9)->Arg(17)->Arg(33);

void BM_ValueNetPredict(benchmark::State& state) {
  ValueNetConfig cfg;
  cfg.query_dim = 66;
  cfg.plan_dim = 21;
  cfg.query_fc = {64, 32};
  cfg.tree_channels = {32, 16};
  cfg.head_fc = {16};
  ValueNetwork net(cfg);
  neo::util::Rng rng(3);
  PlanSample s;
  s.query_vec = RandomMatrix(1, 66, rng);
  const int nodes = 17;
  s.node_features = RandomMatrix(nodes, 21, rng);
  s.tree.left.assign(nodes, -1);
  s.tree.right.assign(nodes, -1);
  for (int i = 0; i + 2 < nodes; i += 2) {
    s.tree.left[static_cast<size_t>(i)] = i + 1;
    s.tree.right[static_cast<size_t>(i)] = i + 2;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Predict(s));
  }
}
BENCHMARK(BM_ValueNetPredict);

void BM_ValueNetPredictWithCachedEmbedding(benchmark::State& state) {
  ValueNetConfig cfg;
  cfg.query_dim = 66;
  cfg.plan_dim = 21;
  cfg.query_fc = {64, 32};
  cfg.tree_channels = {32, 16};
  cfg.head_fc = {16};
  ValueNetwork net(cfg);
  neo::util::Rng rng(4);
  PlanSample s;
  s.query_vec = RandomMatrix(1, 66, rng);
  const int nodes = 17;
  s.node_features = RandomMatrix(nodes, 21, rng);
  s.tree.left.assign(nodes, -1);
  s.tree.right.assign(nodes, -1);
  const Matrix embed = net.EmbedQuery(s.query_vec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net.PredictWithEmbedding(embed, s.tree, s.node_features));
  }
}
BENCHMARK(BM_ValueNetPredictWithCachedEmbedding);

/// Shared fixture for the batched-vs-loop comparison: both arms must score
/// the exact same plans with identically-configured networks.
struct PredictFixture {
  ValueNetwork net;
  std::vector<PlanSample> samples;
  std::vector<const PlanSample*> ptrs;
  Matrix embed;

  static ValueNetConfig Config() {
    ValueNetConfig cfg;
    cfg.query_dim = 66;
    cfg.plan_dim = 21;
    cfg.query_fc = {64, 32};
    cfg.tree_channels = {32, 16};
    cfg.head_fc = {16};
    return cfg;
  }

  explicit PredictFixture(int batch) : net(Config()), samples(static_cast<size_t>(batch)) {
    neo::util::Rng rng(6);
    for (auto& s : samples) {
      const int nodes = 9 + static_cast<int>(rng.NextBounded(9));
      s.query_vec = RandomMatrix(1, 66, rng);
      s.node_features = RandomMatrix(nodes, 21, rng);
      s.tree.left.assign(static_cast<size_t>(nodes), -1);
      s.tree.right.assign(static_cast<size_t>(nodes), -1);
      for (int i = 0; i + 2 < nodes; i += 2) {
        s.tree.left[static_cast<size_t>(i)] = i + 1;
        s.tree.right[static_cast<size_t>(i)] = i + 2;
      }
      ptrs.push_back(&s);
    }
    embed = net.EmbedQuery(samples[0].query_vec);
  }
};

/// Batched forest inference vs. the per-sample loop: both arms score the
/// same plans sharing one query embedding; items/sec is plans scored/sec.
void BM_ValueNetPredictBatch(benchmark::State& state) {
  PredictFixture f(static_cast<int>(state.range(0)));
  const PlanBatch packed = PackPlanBatch(f.ptrs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.net.PredictBatch(f.embed, packed));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ValueNetPredictBatch)->Arg(8)->Arg(32)->Arg(128);

void BM_ValueNetPredictLoop(benchmark::State& state) {
  PredictFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (const auto& s : f.samples) {
      benchmark::DoNotOptimize(f.net.PredictWithEmbedding(f.embed, s.tree, s.node_features));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ValueNetPredictLoop)->Arg(8)->Arg(32)->Arg(128);

void BM_ValueNetTrainBatch(benchmark::State& state) {
  ValueNetConfig cfg;
  cfg.query_dim = 66;
  cfg.plan_dim = 21;
  cfg.query_fc = {64, 32};
  cfg.tree_channels = {32, 16};
  cfg.head_fc = {16};
  ValueNetwork net(cfg);
  neo::util::Rng rng(5);
  std::vector<PlanSample> samples(32);
  std::vector<const PlanSample*> ptrs;
  std::vector<float> targets;
  for (auto& s : samples) {
    s.query_vec = RandomMatrix(1, 66, rng);
    s.node_features = RandomMatrix(17, 21, rng);
    s.tree.left.assign(17, -1);
    s.tree.right.assign(17, -1);
    ptrs.push_back(&s);
    targets.push_back(static_cast<float>(rng.NextUniform(-1, 1)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.TrainBatch(ptrs, targets));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ValueNetTrainBatch);

}  // namespace
