// Custom optimization goals (paper §6.4.4): the same Neo system trained with
// two different cost functions.
//
//   - workload cost  C(P) = latency(P): minimizes total workload time, may
//     regress individual queries;
//   - relative cost  C(P) = latency(P)/baseline(P): penalizes per-query
//     regressions against the PostgreSQL baseline.
//
// Prints total workload time and the worst per-query regression for both.
#include <algorithm>
#include <cstdio>

#include "src/core/neo.h"
#include "src/datagen/imdb_gen.h"
#include "src/optim/optimizer.h"
#include "src/query/job_workload.h"

using namespace neo;

int main() {
  datagen::GenOptions gen;
  gen.scale = 0.05;
  datagen::Dataset ds = datagen::GenerateImdb(gen);
  query::Workload workload = query::MakeJobWorkload(ds.schema, *ds.db);
  query::WorkloadSplit split = workload.Split(0.8, 7);
  split.train.resize(36);

  featurize::Featurizer featurizer(ds.schema, *ds.db, {});

  for (core::CostFunction fn :
       {core::CostFunction::kLatency, core::CostFunction::kRelative}) {
    engine::ExecutionEngine engine(ds.schema, *ds.db, engine::EngineKind::kPostgres);
    optim::NativeOptimizer expert =
        optim::MakeNativeOptimizer(engine::EngineKind::kPostgres, ds.schema, *ds.db);

    core::NeoConfig config;
    config.cost_function = fn;
    config.net.query_fc = {64, 32};
    config.net.tree_channels = {32, 16};
    config.net.head_fc = {16};
    config.search.max_expansions = 60;
    core::Neo neo(&featurizer, &engine, config);
    neo.Bootstrap(split.train, expert.optimizer.get());
    for (int e = 0; e < 10; ++e) neo.RunEpisode(split.train);

    double total_neo = 0.0, total_pg = 0.0, worst_regression = 0.0;
    int regressed = 0;
    for (const query::Query* q : split.train) {
      const double pg = engine.ExecutePlan(*q, expert.optimizer->Optimize(*q));
      const double mine = neo.PlanAndExecute(*q);
      total_neo += mine;
      total_pg += pg;
      worst_regression = std::max(worst_regression, mine - pg);
      if (mine > pg * 1.05) ++regressed;
    }
    std::printf("cost function = %-22s total %8.1f ms (PostgreSQL: %8.1f ms), "
                "%d/%zu queries regressed, worst regression %.1f ms\n",
                core::CostFunctionName(fn), total_neo, total_pg, regressed,
                split.train.size(), worst_regression);
  }
  std::printf("\nThe relative cost function trades a little total time for fewer "
              "and smaller per-query regressions (paper Fig. 15).\n");
  return 0;
}
