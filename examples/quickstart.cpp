// Quickstart: the complete Neo loop in ~60 lines of user code.
//
//   1. Generate the IMDB-like dataset and JOB-like workload.
//   2. Bootstrap Neo from the PostgreSQL-style expert optimizer.
//   3. Train for a few reinforcement-learning episodes.
//   4. Optimize a held-out query and compare against the expert.
//
// Build: cmake --build build --target quickstart && ./build/examples/quickstart
#include <cstdio>

#include "src/core/neo.h"
#include "src/datagen/imdb_gen.h"
#include "src/optim/optimizer.h"
#include "src/query/job_workload.h"

using namespace neo;

int main() {
  // 1. Data + workload. Everything is deterministic given the seeds.
  datagen::GenOptions gen;
  gen.scale = 0.05;
  datagen::Dataset ds = datagen::GenerateImdb(gen);
  query::Workload workload = query::MakeJobWorkload(ds.schema, *ds.db);
  query::WorkloadSplit split = workload.Split(0.8, /*seed=*/7);
  split.train.resize(40);  // Keep the demo fast.

  // 2. Wire up the components: execution engine (the "database"), expert
  //    optimizer (the demonstration source), featurizer, and Neo itself.
  engine::ExecutionEngine engine(ds.schema, *ds.db, engine::EngineKind::kPostgres);
  optim::NativeOptimizer expert =
      optim::MakeNativeOptimizer(engine::EngineKind::kPostgres, ds.schema, *ds.db);
  featurize::Featurizer featurizer(ds.schema, *ds.db, {});  // 1-Hot encoding.

  core::NeoConfig config;
  config.net.query_fc = {64, 32};
  config.net.tree_channels = {32, 16};
  config.net.head_fc = {16};
  config.search.max_expansions = 60;
  core::Neo neo(&featurizer, &engine, config);

  std::printf("bootstrapping from %s on %zu training queries...\n",
              expert.optimizer->name().c_str(), split.train.size());
  neo.Bootstrap(split.train, expert.optimizer.get());

  // 3. Reinforcement-learning episodes: retrain value network, plan, execute,
  //    learn from the observed latencies.
  for (int episode = 0; episode < 8; ++episode) {
    const core::EpisodeStats stats = neo.RunEpisode(split.train);
    std::printf("episode %d: total train latency %8.1f ms  (loss %.4f, %zu states)\n",
                episode + 1, stats.train_total_latency_ms, stats.retrain_loss,
                stats.experience_states);
  }

  // 4. Optimize a held-out query.
  const query::Query& q = *split.test.front();
  std::printf("\nheld-out query %s:\n  %s\n", q.name.c_str(),
              q.ToSql(ds.schema).c_str());

  const plan::PartialPlan expert_plan = expert.optimizer->Optimize(q);
  const core::SearchResult neo_result = neo.Plan(q);
  const double expert_ms = engine.ExecutePlan(q, expert_plan);
  const double neo_ms = engine.ExecutePlan(q, neo_result.plan);

  std::printf("\nexpert plan  (%7.1f ms): %s\n", expert_ms,
              expert_plan.ToString(ds.schema).c_str());
  std::printf("neo plan     (%7.1f ms): %s\n", neo_ms,
              neo_result.plan.ToString(ds.schema).c_str());
  std::printf("\nneo/expert latency ratio on this query: %.2fx\n", neo_ms / expert_ms);
  return 0;
}
