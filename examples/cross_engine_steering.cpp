// Engine adaptation: the same workload, two very different execution engines.
//
// The SQLite-like engine has a weak hash join and cheap B-tree lookups; the
// SQL-Server-like engine has a strong parallel hash join. After training one
// Neo per engine, this example counts which physical operators each policy
// uses: Neo adapts its operator mix to the engine it observes, without any
// engine-specific code (paper §6.2: Neo tailors itself to the execution
// engine via latency feedback alone).
#include <cstdio>
#include <map>

#include "src/core/neo.h"
#include "src/datagen/imdb_gen.h"
#include "src/optim/optimizer.h"
#include "src/query/job_workload.h"

using namespace neo;

namespace {

void CountOps(const plan::PlanNode& node, std::map<std::string, int>* counts) {
  if (node.is_join) {
    (*counts)[plan::JoinOpName(node.join_op)]++;
    CountOps(*node.left, counts);
    CountOps(*node.right, counts);
  } else {
    (*counts)[plan::ScanOpName(node.scan_op)]++;
  }
}

}  // namespace

int main() {
  datagen::GenOptions gen;
  gen.scale = 0.05;
  datagen::Dataset ds = datagen::GenerateImdb(gen);
  query::Workload workload = query::MakeJobWorkload(ds.schema, *ds.db);
  query::WorkloadSplit split = workload.Split(0.8, 7);
  split.train.resize(36);

  featurize::Featurizer featurizer(ds.schema, *ds.db, {});

  for (engine::EngineKind kind :
       {engine::EngineKind::kSqlite, engine::EngineKind::kMssql}) {
    engine::ExecutionEngine engine(ds.schema, *ds.db, kind);
    optim::NativeOptimizer expert =
        optim::MakeNativeOptimizer(engine::EngineKind::kPostgres, ds.schema, *ds.db);

    core::NeoConfig config;
    config.net.query_fc = {64, 32};
    config.net.tree_channels = {32, 16};
    config.net.head_fc = {16};
    config.search.max_expansions = 60;
    core::Neo neo(&featurizer, &engine, config);
    neo.Bootstrap(split.train, expert.optimizer.get());
    for (int e = 0; e < 10; ++e) neo.RunEpisode(split.train);

    std::map<std::string, int> op_counts;
    double total = 0.0;
    for (const query::Query* q : split.train) {
      const core::SearchResult r = neo.Plan(*q);
      total += engine.ExecutePlan(*q, r.plan);
      CountOps(*r.plan.roots[0], &op_counts);
    }

    std::printf("engine %-10s | total %8.1f ms | operators:",
                engine.profile().name.c_str(), total);
    for (const auto& [op, count] : op_counts) {
      std::printf("  %s=%d", op.c_str(), count);
    }
    std::printf("\n");
  }
  std::printf("\nHJ = hash join, MJ = merge join, LJ = loop join; T/I = table/index "
              "scan. The operator mix shifts toward the engine's strengths.\n");
  return 0;
}
