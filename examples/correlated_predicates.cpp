// Walk-through of the paper's Figure 8 / Table 2 example: why correlated
// predicates break classical optimizers, and what the R-Vector embedding
// sees instead.
//
// The query counts movies with genre 'romance' and a keyword containing
// 'love'. These predicates are strongly correlated in the data, so the
// histogram + independence estimate is off by orders of magnitude — which
// makes the classical optimizer pick a fragile plan. The row-vector
// embedding, in contrast, puts 'love' keywords close to 'romance'.
#include <cstdio>

#include "src/datagen/imdb_gen.h"
#include "src/embedding/row_embedding.h"
#include "src/engine/execution_engine.h"
#include "src/optim/optimizer.h"
#include "src/query/builder.h"

using namespace neo;

int main() {
  datagen::GenOptions gen;
  gen.scale = 0.08;
  datagen::Dataset ds = datagen::GenerateImdb(gen);

  // The Figure 8 query (adapted to this schema).
  auto make_query = [&](const std::string& genre, const std::string& stem, int id) {
    query::QueryBuilder b(ds.schema, *ds.db, "fig8_" + genre + "_" + stem);
    b.JoinFk("movie_info", "title")
        .JoinFk("movie_info", "info_type")
        .JoinFk("movie_keyword", "title")
        .JoinFk("movie_keyword", "keyword")
        .PredStr("info_type", "info", query::PredOp::kEq, "genres")
        .PredStr("movie_info", "info", query::PredOp::kEq, genre)
        .PredStr("keyword", "keyword", query::PredOp::kContains, stem);
    query::Query q = b.Build();
    q.id = id;
    return q;
  };

  engine::CardinalityOracle oracle(ds.schema, *ds.db);
  catalog::Statistics stats(ds.schema, *ds.db);
  optim::HistogramEstimator hist(ds.schema, stats, *ds.db);

  std::printf("=== Estimated vs true cardinality (the JOB pathology) ===\n");
  std::printf("%-22s %14s %14s %10s\n", "(genre, keyword)", "histogram-est",
              "true-card", "under-est");
  for (const auto& [genre, stem] : std::vector<std::pair<std::string, std::string>>{
           {"romance", "love"}, {"action", "fight"}, {"horror", "love"}}) {
    query::Query q = make_query(genre, stem, 1000 + static_cast<int>(stem[0]) +
                                                 static_cast<int>(genre[0]));
    const uint64_t full = (1ULL << q.num_relations()) - 1;
    const double est = hist.EstimateSubset(q, full);
    const double truth = oracle.Cardinality(q, full);
    std::printf("%-22s %14.2f %14.0f %9.1fx\n",
                ("(" + genre + ", " + stem + ")").c_str(), est, truth,
                truth / std::max(est, 1e-9));
  }

  std::printf("\n=== Row-vector embedding similarity (paper Table 2) ===\n");
  embedding::RowEmbedding rvec(ds.schema, *ds.db);  // 'joins' variant default.
  const int kw_gid = ds.schema.GlobalColumnId("keyword", "keyword");
  const int info_gid = ds.schema.GlobalColumnId("movie_info", "info");
  const auto& kw_col = ds.db->table("keyword").ColumnByName("keyword");
  const auto& info_col = ds.db->table("movie_info").ColumnByName("info");
  for (const char* stem : {"love", "fight"}) {
    for (const char* genre : {"romance", "action"}) {
      const auto matched = kw_col.CodesContaining(stem);
      double sim = 0;
      for (int64_t code : matched) {
        sim += rvec.Cosine(kw_gid, code, info_gid, info_col.LookupString(genre));
      }
      std::printf("cos('%s'~keywords, '%s') = %.3f\n", stem, genre,
                  sim / static_cast<double>(matched.size()));
    }
  }

  std::printf(
      "\n=== Plan choice: histogram DP vs true-cardinality DP ===\n");
  engine::ExecutionEngine engine(ds.schema, *ds.db, engine::EngineKind::kPostgres);
  optim::NativeOptimizer pg =
      optim::MakeNativeOptimizer(engine::EngineKind::kPostgres, ds.schema, *ds.db);
  optim::TrueCardEstimator true_est(&engine.oracle());
  optim::CostModel true_cost(ds.schema,
                             engine::GetEngineProfile(engine::EngineKind::kPostgres),
                             &true_est);
  optim::DpOptimizer true_dp(ds.schema, &true_cost);

  query::Query q = make_query("romance", "love", 2000);
  const plan::PartialPlan pg_plan = pg.optimizer->Optimize(q);
  const plan::PartialPlan oracle_plan = true_dp.Optimize(q);
  const double pg_ms = engine.ExecutePlan(q, pg_plan);
  const double oracle_ms = engine.ExecutePlan(q, oracle_plan);
  std::printf("histogram-DP plan (%8.1f ms): %s\n", pg_ms,
              pg_plan.ToString(ds.schema).c_str());
  std::printf("true-card-DP plan (%8.1f ms): %s\n", oracle_ms,
              oracle_plan.ToString(ds.schema).c_str());
  std::printf("\nmis-estimation costs %.1fx on this query — the gap Neo learns to "
              "close from observed latencies.\n",
              pg_ms / oracle_ms);
  return 0;
}
