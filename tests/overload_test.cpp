// Overload-resilience tests: the degradation controller's determinism and
// hysteresis contracts, deadline-aware admission (bounded queue, shed
// policies, priority eviction, in-queue expiry), the graceful-degradation
// ladder end to end under injected stalls, worker crash containment
// (poisoned requests), Drain/Stop under overload resolving every future with
// exact accounting, and the level-0 parity contract (admission enabled but
// unpressured serving is bit-identical to admission disabled). The asan/tsan
// CI arms run this whole file, so every test doubles as a race probe; the
// overload CI arm re-runs it at two seeds with the burst/stall chaos knobs
// armed (the acceptance test below picks those up from the environment).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/neo.h"
#include "src/datagen/imdb_gen.h"
#include "src/query/builder.h"
#include "src/query/job_workload.h"
#include "src/serve/serving_core.h"
#include "src/store/experience_store.h"
#include "src/util/fault_injector.h"

namespace neo::serve {
namespace {

using core::Neo;
using core::NeoConfig;
using engine::EngineKind;
using query::Query;
using util::FaultInjector;
using util::FaultInjectorConfig;
using util::Status;

class OverloadFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GenOptions opt;
    opt.scale = 0.05;
    ds_ = new datagen::Dataset(datagen::GenerateImdb(opt));
    featurizer_ = new featurize::Featurizer(ds_->schema, *ds_->db, {});
    wl_ = new query::Workload(query::MakeJobWorkload(ds_->schema, *ds_->db));
  }
  static void TearDownTestSuite() {
    delete wl_;
    delete featurizer_;
    delete ds_;
  }

  static NeoConfig SmallConfig(uint64_t seed = 7) {
    NeoConfig cfg;
    cfg.net.query_fc = {64, 32};
    cfg.net.tree_channels = {32, 16};
    cfg.net.head_fc = {16};
    cfg.net.adam.lr = 1e-3f;
    cfg.epochs_per_episode = 4;
    cfg.batch_size = 32;
    cfg.search.max_expansions = 40;
    cfg.seed = seed;
    return cfg;
  }

  static std::vector<const Query*> TrainSet() {
    std::vector<const Query*> train;
    for (size_t i = 0; i < wl_->size(); i += 19) train.push_back(&wl_->query(i));
    return train;
  }

  struct Rig {
    std::unique_ptr<engine::ExecutionEngine> engine;
    std::unique_ptr<Neo> neo;
  };
  static Rig MakeRig(const std::vector<const Query*>& train,
                     const NeoConfig& cfg) {
    Rig r;
    r.engine = std::make_unique<engine::ExecutionEngine>(ds_->schema, *ds_->db,
                                                         EngineKind::kPostgres);
    r.neo = std::make_unique<Neo>(featurizer_, r.engine.get(), cfg);
    auto native =
        optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
    r.neo->Bootstrap(train, native.optimizer.get());
    return r;
  }

  static datagen::Dataset* ds_;
  static featurize::Featurizer* featurizer_;
  static query::Workload* wl_;
};

datagen::Dataset* OverloadFixture::ds_ = nullptr;
featurize::Featurizer* OverloadFixture::featurizer_ = nullptr;
query::Workload* OverloadFixture::wl_ = nullptr;

/// Asserts the two-level accounting identity documented on ServingStats:
/// every submission lands in exactly one admission outcome, and every
/// admitted request lands in exactly one service outcome.
void ExpectExactAccounting(const ServingStats& s) {
  EXPECT_EQ(s.requests, s.admitted + s.shed_admission + s.shed_queue_full +
                            s.rejected_post_stop);
  EXPECT_EQ(s.admitted, s.total_latency.count() + s.expired_at_admission +
                            s.expired_in_queue + s.evicted_lower_priority +
                            s.worker_exceptions);
}

/// Tallies the futures of one run by status code; every future must already
/// be resolvable (this blocks forever on an abandoned future, which is
/// itself the strongest "no future abandoned" check under a test timeout —
/// the ready assertions below make the failure crisp instead).
struct Outcomes {
  uint64_t ok = 0;
  uint64_t shed = 0;      // kResourceExhausted (admission / queue / evicted).
  uint64_t expired = 0;   // kDeadlineExceeded.
  uint64_t internal = 0;  // kInternal (contained worker exception).
  uint64_t post_stop = 0; // kFailedPrecondition.
  std::vector<ServeResult> results;
};
Outcomes Collect(std::vector<std::future<ServeResult>>& futures) {
  Outcomes o;
  for (std::future<ServeResult>& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(60)), std::future_status::ready)
        << "abandoned future";
    ServeResult r = f.get();
    switch (r.status.code()) {
      case Status::Code::kOk: ++o.ok; break;
      case Status::Code::kResourceExhausted: ++o.shed; break;
      case Status::Code::kDeadlineExceeded: ++o.expired; break;
      case Status::Code::kInternal: ++o.internal; break;
      case Status::Code::kFailedPrecondition: ++o.post_stop; break;
      default: ADD_FAILURE() << "unexpected status " << r.status.ToString();
    }
    o.results.push_back(std::move(r));
  }
  return o;
}

// ---- DegradationController: determinism + hysteresis -----------------------

TEST(DegradationControllerTest, PureFunctionOfObservationTrace) {
  LadderOptions opt;
  opt.min_dwell = 2;
  // A synthetic pressure wave: idle -> saturated -> idle, with deadline
  // pressure layered over depth pressure.
  struct Obs { double wait, deadline; size_t depth, cap; };
  std::vector<Obs> trace;
  for (int i = 0; i < 10; ++i) trace.push_back({0.5, 100.0, 0, 16});
  for (int i = 0; i < 30; ++i)
    trace.push_back({80.0 + i, 100.0, 16, 16});  // Saturation: x > 1.
  for (int i = 0; i < 40; ++i) trace.push_back({1.0, 100.0, 0, 16});

  auto replay = [&](std::vector<int>* levels, DegradationController* c) {
    for (const Obs& o : trace)
      levels->push_back(c->Observe(o.wait, o.deadline, o.depth, o.cap));
  };
  DegradationController a(opt), b(opt);
  std::vector<int> la, lb;
  replay(&la, &a);
  replay(&lb, &b);
  ASSERT_EQ(la, lb);  // Bit-identical level sequence on the same trace.
  EXPECT_EQ(a.transitions(), b.transitions());
  EXPECT_EQ(a.level_entries(), b.level_entries());
  EXPECT_EQ(a.pressure(), b.pressure());

  // The wave actually walked the ladder up and back down.
  EXPECT_EQ(*std::max_element(la.begin(), la.end()), 3);
  EXPECT_EQ(la.front(), 0);
  EXPECT_EQ(la.back(), 0);
  EXPECT_GE(a.transitions(), 6u);  // Up 3 + down 3, each one level at a time.
  for (size_t i = 1; i < la.size(); ++i) {
    EXPECT_LE(std::abs(la[i] - la[i - 1]), 1) << "jumped a level at " << i;
  }
}

TEST(DegradationControllerTest, HysteresisBandDoesNotFlap) {
  LadderOptions opt;
  opt.min_dwell = 1;  // No dwell rate limit: hysteresis alone must hold.
  DegradationController c(opt);
  // Drive pressure above rise[0]=0.5 to enter level 1.
  while (c.level() == 0) c.Observe(0.0, 0.0, 16, 16);  // x = 1.
  ASSERT_EQ(c.level(), 1);
  const uint64_t entered = c.transitions();
  // Park the observation inside the band (fall[0]=0.3 < x=0.4 < rise[1]=0.75):
  // pressure converges to 0.4 and the level must never move again.
  for (int i = 0; i < 200; ++i) {
    c.Observe(0.0, 0.0, 8, 20);  // x = 0.4.
    EXPECT_EQ(c.level(), 1) << "flapped at observation " << i;
  }
  EXPECT_EQ(c.transitions(), entered);
}

TEST(DegradationControllerTest, MinDwellRateLimitsTransitions) {
  LadderOptions opt;
  opt.min_dwell = 8;
  DegradationController c(opt);
  // Saturated from the first observation: without dwell the EWMA crosses
  // rise[0] after 3 observations, but each level must hold 8 first.
  for (int i = 0; i < 7; ++i) c.Observe(0.0, 0.0, 16, 16);
  EXPECT_EQ(c.level(), 0);  // Pressure is far past rise[0]; dwell holds it.
  c.Observe(0.0, 0.0, 16, 16);  // 8th observation: the transition may fire.
  EXPECT_EQ(c.level(), 1);
  for (int i = 0; i < 7; ++i) c.Observe(0.0, 0.0, 16, 16);
  EXPECT_EQ(c.level(), 1);  // Dwell reset at the transition: 8 more first.
  c.Observe(0.0, 0.0, 16, 16);
  EXPECT_EQ(c.level(), 2);
}

TEST(DegradationControllerTest, DisabledLadderStaysAtLevelZero) {
  LadderOptions opt;
  opt.enabled = false;
  DegradationController c(opt);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(c.Observe(1000.0, 1.0, 64, 1), 0);
  EXPECT_EQ(c.transitions(), 0u);
  EXPECT_EQ(c.pressure(), 0.0);
}

// ---- Admission control ------------------------------------------------------

TEST_F(OverloadFixture, PostStopSubmitReturnsFailedPreconditionFuture) {
  // Regression: Submit after Stop used to trip a NEO_CHECK (process abort);
  // it must instead resolve the future immediately with kFailedPrecondition.
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  ASSERT_GE(train.size(), 2u);
  Rig rig = MakeRig(train, SmallConfig());
  ServingOptions sopt;
  sopt.workers = 1;
  sopt.search = SmallConfig().search;
  ServingCore core(rig.neo.get(), sopt);
  EXPECT_GT(core.ServeSync(*train[0], /*learn=*/false).latency_ms, 0.0);
  core.Stop();

  std::future<ServeResult> f = core.Submit(*train[1], /*learn=*/false);
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const ServeResult r = f.get();
  EXPECT_EQ(r.status.code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(r.latency_ms, 0.0);

  const ServingStats s = core.stats();
  EXPECT_EQ(s.rejected_post_stop, 1u);
  EXPECT_EQ(s.requests, 2u);
  ExpectExactAccounting(s);
}

TEST_F(OverloadFixture, BoundedQueueShedsAndAccountsExactly) {
  // Concurrent submits far past the cap against a stalled single worker:
  // every future resolves, the queue never exceeds its cap, and the
  // admission counters partition the submissions exactly.
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  Rig rig = MakeRig(train, SmallConfig());

  FaultInjectorConfig fcfg;
  fcfg.enabled = true;
  fcfg.seed = 23;
  fcfg.serve_stall_p = 1.0;  // Every serve stalls: the queue must back up.
  fcfg.serve_stall_ms = 2.0;
  FaultInjector chaos(fcfg);

  ServingOptions sopt;
  sopt.workers = 1;
  sopt.search = SmallConfig().search;
  sopt.fault_injector = &chaos;
  sopt.admission.enabled = true;
  sopt.admission.queue_cap = 8;
  sopt.admission.policy = ShedPolicy::kRejectNewest;
  sopt.admission.ladder.enabled = false;  // Isolate the bounded queue.
  ServingCore core(rig.neo.get(), sopt);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::vector<std::future<ServeResult>> futures(kThreads * kPerThread);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        futures[static_cast<size_t>(t * kPerThread + i)] =
            core.Submit(*train[static_cast<size_t>(i) % train.size()],
                        /*learn=*/false);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  Outcomes o = Collect(futures);
  core.Drain();

  const ServingStats s = core.stats();
  EXPECT_EQ(s.requests, uint64_t{kThreads * kPerThread});
  ExpectExactAccounting(s);
  EXPECT_LE(s.queue_depth_hwm, sopt.admission.queue_cap);
  EXPECT_EQ(o.ok, s.total_latency.count());
  EXPECT_EQ(o.shed, s.shed_queue_full);  // No deadlines, priorities, ladder.
  EXPECT_EQ(o.expired + o.internal + o.post_stop, 0u);
  EXPECT_GT(o.ok, 0u);       // The worker kept serving throughout.
  EXPECT_GT(o.shed, 0u);     // 64 submits vs cap 8 + a stalled worker.
  EXPECT_GT(chaos.serve_stalls(), 0u);
  for (const ServeResult& r : o.results) {
    if (!r.status.ok()) {
      EXPECT_EQ(r.status.code(), Status::Code::kResourceExhausted);
      EXPECT_EQ(r.latency_ms, 0.0);  // Shed requests never execute.
    }
  }
}

TEST_F(OverloadFixture, ExpiredInQueueDroppedNotExecuted) {
  // Requests whose deadline passes while queued are dropped at pickup —
  // counted, their futures failed, and NEVER executed (the engine's
  // execution counter is the ground truth).
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  ASSERT_GE(train.size(), 5u);
  Rig rig = MakeRig(train, SmallConfig());

  FaultInjectorConfig fcfg;
  fcfg.enabled = true;
  fcfg.seed = 5;
  fcfg.serve_stall_p = 1.0;
  fcfg.serve_stall_ms = 50.0;  // Holds the lone worker while deadlines burn.
  FaultInjector chaos(fcfg);

  ServingOptions sopt;
  sopt.workers = 1;
  sopt.search = SmallConfig().search;
  sopt.fault_injector = &chaos;
  sopt.admission.enabled = true;
  sopt.admission.queue_cap = 64;
  sopt.admission.ladder.enabled = false;
  ServingCore core(rig.neo.get(), sopt);

  const uint64_t executions_before = rig.engine->num_executions();
  std::vector<std::future<ServeResult>> futures;
  futures.push_back(core.Submit(*train[0], /*learn=*/false));  // No deadline.
  SubmitOptions tight;
  tight.deadline_ms = 1.0;  // Expires during the 50ms stall ahead of it.
  for (int i = 1; i <= 4; ++i) {
    futures.push_back(core.Submit(*train[static_cast<size_t>(i)],
                                  /*learn=*/false, tight));
  }
  Outcomes o = Collect(futures);
  core.Drain();

  EXPECT_EQ(o.ok, 1u);
  EXPECT_EQ(o.expired, 4u);
  EXPECT_TRUE(o.results[0].status.ok());
  for (size_t i = 1; i < o.results.size(); ++i) {
    EXPECT_EQ(o.results[i].status.code(), Status::Code::kDeadlineExceeded);
    EXPECT_EQ(o.results[i].latency_ms, 0.0);
    EXPECT_GT(o.results[i].queue_ms, tight.deadline_ms);
  }
  // Exactly one plan executed: the expired requests never reached the engine.
  EXPECT_EQ(rig.engine->num_executions(), executions_before + 1);
  const ServingStats s = core.stats();
  EXPECT_EQ(s.expired_in_queue, 4u);
  ExpectExactAccounting(s);
}

TEST_F(OverloadFixture, HigherPriorityArrivalEvictsLowestQueued) {
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  ASSERT_GE(train.size(), 2u);
  Rig rig = MakeRig(train, SmallConfig());

  FaultInjectorConfig fcfg;
  fcfg.enabled = true;
  fcfg.seed = 11;
  fcfg.serve_stall_p = 1.0;
  fcfg.serve_stall_ms = 60.0;
  FaultInjector chaos(fcfg);

  ServingOptions sopt;
  sopt.workers = 1;
  sopt.search = SmallConfig().search;
  sopt.fault_injector = &chaos;
  sopt.admission.enabled = true;
  sopt.admission.queue_cap = 3;
  sopt.admission.ladder.enabled = false;
  ServingCore core(rig.neo.get(), sopt);

  // Occupy the worker, then wait until it has actually picked the request up
  // (its pickup records into the queue-wait histogram) so the fill below
  // deterministically lands in the queue, not in the worker.
  std::vector<std::future<ServeResult>> futures;
  futures.push_back(core.Submit(*train[0], /*learn=*/false));
  while (core.stats().queue_wait.count() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 3; ++i) {  // Fill the queue to its cap, priority 0.
    futures.push_back(core.Submit(*train[1], /*learn=*/false));
  }
  // Equal priority does not evict: the arrival is shed.
  std::future<ServeResult> shed = core.Submit(*train[1], /*learn=*/false);
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(shed.get().status.code(), Status::Code::kResourceExhausted);
  // Strictly higher priority evicts the lowest-priority queued request.
  SubmitOptions urgent;
  urgent.priority = 1;
  futures.push_back(core.Submit(*train[1], /*learn=*/false, urgent));

  Outcomes o = Collect(futures);
  core.Drain();
  const ServingStats s = core.stats();
  EXPECT_EQ(s.evicted_lower_priority, 1u);
  EXPECT_EQ(s.shed_queue_full, 1u);
  EXPECT_EQ(o.ok, 4u);   // Worker's request + 2 surviving fills + urgent.
  EXPECT_EQ(o.shed, 1u); // The evicted victim's future.
  ExpectExactAccounting(s);
}

// ---- Worker crash containment ----------------------------------------------

TEST_F(OverloadFixture, PoisonedRequestFailsOnlyItself) {
  // A serve body that throws (injected "poisoned request") must fail only
  // that request's future; the worker survives and keeps serving.
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  Rig rig = MakeRig(train, SmallConfig());

  FaultInjectorConfig fcfg;
  fcfg.enabled = true;
  fcfg.seed = 13;
  fcfg.serve_exception_p = 0.5;
  FaultInjector chaos(fcfg);

  ServingOptions sopt;
  sopt.workers = 1;  // One worker: every survival below is the SAME thread.
  sopt.search = SmallConfig().search;
  sopt.fault_injector = &chaos;
  ServingCore core(rig.neo.get(), sopt);

  constexpr int kRequests = 16;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(core.Submit(*train[static_cast<size_t>(i) % train.size()],
                                  /*learn=*/false));
  }
  Outcomes o = Collect(futures);
  core.Drain();

  const ServingStats s = core.stats();
  EXPECT_EQ(o.ok + o.internal, uint64_t{kRequests});
  EXPECT_EQ(o.internal, s.worker_exceptions);
  EXPECT_EQ(o.internal, chaos.serve_exceptions());
  EXPECT_GT(o.internal, 0u);  // The injector fired (p=0.5 over 16 draws).
  EXPECT_GT(o.ok, 0u);        // ...and the worker survived to keep serving.
  ExpectExactAccounting(s);
  for (const ServeResult& r : o.results) {
    if (!r.status.ok()) {
      EXPECT_EQ(r.status.code(), Status::Code::kInternal);
      EXPECT_EQ(r.latency_ms, 0.0);
    }
  }
  // The core is still fully serviceable after the poison wave.
  EXPECT_GT(core.ServeSync(*train[0], /*learn=*/false).latency_ms, 0.0);
}

// ---- The degradation ladder end to end -------------------------------------

TEST_F(OverloadFixture, LadderDegradesUnderPressureThenRecovers) {
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  Rig rig = MakeRig(train, SmallConfig());

  FaultInjectorConfig fcfg;
  fcfg.enabled = true;
  fcfg.seed = 31;
  fcfg.serve_stall_p = 1.0;
  fcfg.serve_stall_ms = 3.0;
  FaultInjector chaos(fcfg);

  ServingOptions sopt;
  sopt.workers = 1;
  sopt.search = SmallConfig().search;
  sopt.fault_injector = &chaos;
  sopt.admission.enabled = true;
  sopt.admission.queue_cap = 16;
  sopt.admission.default_deadline_ms = 5000.0;  // Generous: expiry not the point.
  sopt.admission.ladder.min_dwell = 1;  // Climb fast inside a small test.
  // Thresholds the sustained-saturation pressure plateau (~depth/cap) will
  // definitely cross, with the hysteresis bands below them for recovery.
  sopt.admission.ladder.rise = {0.4, 0.6, 0.8};
  sopt.admission.ladder.fall = {0.25, 0.45, 0.65};
  ServingCore core(rig.neo.get(), sopt);

  // A paced over-capacity arrival stream: ~1ms between arrivals against a
  // worker that needs >= 3ms per serve keeps the queue pinned at its cap for
  // the whole stream, so pickup observations sustain x ~ 1 long enough for
  // the EWMA to climb the whole ladder (a one-shot flood would drain
  // monotonically and plateau short of the top).
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 300; ++i) {
    futures.push_back(core.Submit(*train[static_cast<size_t>(i) % train.size()],
                                  /*learn=*/false));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Outcomes o = Collect(futures);
  core.Drain();

  ServingStats s = core.stats();
  // The burst saturated a 16-slot queue behind a stalled worker: the ladder
  // must have climbed through reduced-budget search (level 1) and no-search
  // pinned serves (level 2; every bootstrapped query has a fallback plan)
  // to shedding at admission (level 3).
  EXPECT_GT(s.ladder_transitions, 0u);
  EXPECT_GT(s.ladder_level_entries[1], 0u);
  EXPECT_GT(s.ladder_level_entries[2], 0u);
  EXPECT_GT(s.ladder_level_entries[3], 0u);
  EXPECT_GT(s.degraded_budget_serves, 0u);
  EXPECT_GT(s.degraded_pinned_serves, 0u);
  EXPECT_GT(s.shed_admission, 0u);  // Level 3 turned arrivals away.
  EXPECT_GT(o.ok, 0u);
  ExpectExactAccounting(s);
  bool saw_degraded = false;
  for (const ServeResult& r : o.results) {
    if (r.status.ok() && r.degraded) {
      saw_degraded = true;
      EXPECT_GE(r.ladder_level, 1);
      EXPECT_GT(r.latency_ms, 0.0);  // Degraded is still served, not shed.
    }
  }
  EXPECT_TRUE(saw_degraded);

  // Recovery: once pressure is gone the ladder must walk back down and
  // admit again — even from level 3, where shed arrivals are the only
  // observation source. Idle-paced retries must eventually serve.
  bool recovered = false;
  for (int i = 0; i < 200 && !recovered; ++i) {
    std::future<ServeResult> f = core.Submit(*train[0], /*learn=*/false);
    recovered = f.get().status.ok();
  }
  EXPECT_TRUE(recovered);
  EXPECT_LT(core.stats().ladder_level, 3);
  ExpectExactAccounting(core.stats());
}

TEST_F(OverloadFixture, LevelTwoServesStoreBestKnownPlan) {
  // BestPlanFor: after learning serves, the store can hand back the
  // best-known plan for a query type regardless of mode — the level-2
  // no-search serve path.
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  Rig rig = MakeRig(train, SmallConfig());
  store::ExperienceStore store(store::StoreOptions{});  // Memory-only.
  ASSERT_TRUE(store.Open().ok());

  ServingOptions sopt;
  sopt.workers = 1;
  sopt.search = SmallConfig().search;
  sopt.store = &store;
  ServingCore core(rig.neo.get(), sopt);
  const ServeResult learned = core.ServeSync(*train[0], /*learn=*/true);
  ASSERT_TRUE(learned.status.ok());

  plan::PartialPlan best;
  double best_latency_ms = 0.0;
  ASSERT_TRUE(store.BestPlanFor(*train[0], &best, &best_latency_ms));
  EXPECT_EQ(best.Hash(), learned.plan_hash);
  EXPECT_EQ(best_latency_ms, learned.latency_ms);
  // Unknown type: no best plan.
  EXPECT_FALSE(store.BestPlanFor(*train[1], &best, &best_latency_ms));
}

// ---- Level-0 parity: admission enabled == disabled, bit for bit ------------

TEST_F(OverloadFixture, UnpressuredAdmissionIsBitIdenticalToDisabled) {
  // The parity contract: with admission enabled but never pressured (huge
  // cap, no deadlines, sequential clients), serving must be bit-identical
  // to the admission-disabled path — same latencies, same plans, same
  // engine execution count, same experience state.
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  const NeoConfig cfg = SmallConfig();

  auto run = [&](bool admission) {
    Rig rig = MakeRig(train, cfg);
    std::vector<std::pair<double, uint64_t>> out;
    uint64_t executions = 0;
    {
      ServingOptions sopt;
      sopt.workers = 1;
      sopt.search = cfg.search;
      sopt.admission.enabled = admission;
      sopt.admission.queue_cap = 1 << 20;
      ServingCore core(rig.neo.get(), sopt);
      for (int pass = 0; pass < 2; ++pass) {
        for (const Query* q : train) {
          const ServeResult r = core.ServeSync(*q, /*learn=*/true);
          EXPECT_TRUE(r.status.ok());
          EXPECT_EQ(r.ladder_level, 0);
          EXPECT_FALSE(r.degraded);
          out.emplace_back(r.latency_ms, r.plan_hash);
        }
      }
      const ServingStats s = core.stats();
      EXPECT_EQ(s.ladder_level, 0);
      EXPECT_EQ(s.admitted, s.requests);  // Counted on both paths.
    }
    executions = rig.engine->num_executions();
    return std::make_pair(out, executions);
  };

  const auto disabled = run(false);
  const auto enabled = run(true);
  ASSERT_EQ(disabled.first.size(), enabled.first.size());
  for (size_t i = 0; i < disabled.first.size(); ++i) {
    EXPECT_EQ(disabled.first[i].first, enabled.first[i].first)
        << "latency diverged at request " << i;  // Bitwise.
    EXPECT_EQ(disabled.first[i].second, enabled.first[i].second)
        << "plan diverged at request " << i;
  }
  EXPECT_EQ(disabled.second, enabled.second);
}

// ---- Drain/Stop under overload ---------------------------------------------

TEST_F(OverloadFixture, StopUnderOverloadResolvesEveryFutureExactly) {
  // Satellite contract: multi-threaded submits far past the cap racing
  // Stop(); EVERY future resolves, and the counters account for every
  // submission exactly — nothing lost, nothing double-counted.
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  Rig rig = MakeRig(train, SmallConfig());

  FaultInjectorConfig fcfg;
  fcfg.enabled = true;
  fcfg.seed = 3;
  fcfg.serve_stall_p = 0.5;
  fcfg.serve_stall_ms = 1.0;
  fcfg.serve_exception_p = 0.05;  // Some poison in the mix, too.
  FaultInjector chaos(fcfg);

  ServingOptions sopt;
  sopt.workers = 2;
  sopt.search = SmallConfig().search;
  sopt.fault_injector = &chaos;
  sopt.admission.enabled = true;
  sopt.admission.queue_cap = 8;
  sopt.admission.default_deadline_ms = 40.0;
  sopt.admission.ladder.min_dwell = 2;
  ServingCore core(rig.neo.get(), sopt);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 24;
  std::vector<std::future<ServeResult>> futures(kThreads * kPerThread);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SubmitOptions submit;
        submit.priority = t % 2;  // Exercise priority eviction under load.
        futures[static_cast<size_t>(t * kPerThread + i)] =
            core.Submit(*train[static_cast<size_t>(i) % train.size()],
                        /*learn=*/false, submit);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  core.Stop();  // While the queue is still loaded.

  // After Stop returns, every already-submitted future must be ready NOW.
  for (std::future<ServeResult>& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  }
  Outcomes o = Collect(futures);
  // And a straggler submitting after Stop is rejected, not aborted.
  std::future<ServeResult> late = core.Submit(*train[0], /*learn=*/false);
  EXPECT_EQ(late.get().status.code(), Status::Code::kFailedPrecondition);

  const ServingStats s = core.stats();
  EXPECT_EQ(s.requests, uint64_t{kThreads * kPerThread} + 1);
  ExpectExactAccounting(s);
  EXPECT_LE(s.queue_depth_hwm, sopt.admission.queue_cap);
  EXPECT_EQ(o.ok, s.total_latency.count());
  EXPECT_EQ(o.internal, s.worker_exceptions);
  EXPECT_EQ(o.expired, s.expired_at_admission + s.expired_in_queue);
  EXPECT_EQ(o.shed, s.shed_admission + s.shed_queue_full +
                        s.evicted_lower_priority);
  EXPECT_EQ(o.post_stop + 1, s.rejected_post_stop);
  EXPECT_GT(o.ok, 0u);
}

// ---- Acceptance: deadline bound under a 10x arrival burst ------------------

TEST_F(OverloadFixture, AcceptanceBurstKeepsAdmittedWithinDeadline) {
  // THE overload acceptance bound: under a bursty 10x-overload arrival
  // trace with injected slow-serve stalls, every admitted-and-served
  // request's queue wait stays within its deadline (structural: expired
  // requests are dropped at pickup), no future is ever abandoned, and the
  // bounded queue never exceeds its cap. The overload CI arm re-runs this
  // at two seeds with the burst/stall knobs set in the environment.
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  Rig rig = MakeRig(train, SmallConfig());

  // Chaos shape: from the NEO_FAULT_* environment when the harness armed
  // the overload knobs (the overload CI arm), else fixed local defaults so
  // the test is a real burst test in every configuration.
  FaultInjectorConfig fcfg = FaultInjectorConfig::FromEnv();
  if (!fcfg.enabled) {
    fcfg.enabled = true;
    fcfg.seed = 17;
  }
  if (fcfg.arrival_burst_p <= 0.0) {
    fcfg.arrival_burst_p = 0.2;
    fcfg.arrival_burst_len = 8;
  }
  if (fcfg.serve_stall_p <= 0.0) {
    fcfg.serve_stall_p = 0.5;
    fcfg.serve_stall_ms = 1.0;
  }
  FaultInjector chaos(fcfg);

  constexpr double kDeadlineMs = 150.0;
  ServingOptions sopt;
  sopt.workers = 2;
  sopt.search = SmallConfig().search;
  sopt.fault_injector = &chaos;
  sopt.admission.enabled = true;
  sopt.admission.queue_cap = 64;
  sopt.admission.policy = ShedPolicy::kEvictExpiredFirst;
  sopt.admission.default_deadline_ms = kDeadlineMs;
  ServingCore core(rig.neo.get(), sopt);

  // 4 clients, each an open-loop arrival process whose arrivals the
  // injector amplifies into bursts (kArrivalBurst): the aggregate is a
  // far-over-capacity trace against two stall-prone workers.
  constexpr int kClients = 4;
  constexpr int kArrivalsPerClient = 64;
  std::vector<std::vector<std::future<ServeResult>>> per_client(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kArrivalsPerClient; ++i) {
        const int burst = chaos.DrawArrivalBurst(static_cast<uint64_t>(c));
        for (int b = 0; b <= burst; ++b) {
          const size_t qi = static_cast<size_t>(i + b) % train.size();
          per_client[static_cast<size_t>(c)].push_back(
              core.Submit(*train[qi], /*learn=*/false));
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  std::vector<std::future<ServeResult>> futures;
  for (auto& v : per_client)
    for (auto& f : v) futures.push_back(std::move(f));
  Outcomes o = Collect(futures);
  core.Drain();

  const ServingStats s = core.stats();
  EXPECT_GT(chaos.arrival_bursts(), 0u);  // The burst injector actually fired.
  EXPECT_EQ(s.requests, futures.size());
  ExpectExactAccounting(s);
  EXPECT_LE(s.queue_depth_hwm, sopt.admission.queue_cap);
  EXPECT_EQ(o.ok, s.total_latency.count());
  EXPECT_GT(o.ok, 0u);
  // The acceptance bound: every served request's queue wait is within its
  // deadline — exactly, not statistically, because expiry-at-pickup makes
  // the bound structural.
  for (const ServeResult& r : o.results) {
    if (r.status.ok()) {
      EXPECT_LE(r.queue_ms, kDeadlineMs)
          << "served past its deadline headroom";
    }
  }
}

TEST_F(OverloadFixture, NoAdmissionBaselineQueueGrowsUnbounded) {
  // The contrast behind the acceptance bound: with admission disabled, the
  // same over-capacity arrival pattern drives the queue depth far past what
  // the bounded configuration would ever allow — there is no cap, no shed,
  // no deadline, so backlog (and therefore tail queue wait) grows with the
  // burst instead of being bounded by it.
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  Rig rig = MakeRig(train, SmallConfig());

  FaultInjectorConfig fcfg;
  fcfg.enabled = true;
  fcfg.seed = 17;
  fcfg.serve_stall_p = 1.0;
  fcfg.serve_stall_ms = 1.0;
  FaultInjector chaos(fcfg);

  constexpr size_t kBoundedCap = 16;  // What admission WOULD have enforced.
  ServingOptions sopt;
  sopt.workers = 1;
  sopt.search = SmallConfig().search;
  sopt.fault_injector = &chaos;  // Admission stays disabled (the default).
  ServingCore core(rig.neo.get(), sopt);

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 160; ++i) {  // A 10x-the-cap burst, submitted at once.
    futures.push_back(core.Submit(*train[static_cast<size_t>(i) % train.size()],
                                  /*learn=*/false));
  }
  const size_t hwm_during_burst = core.stats().queue_depth_hwm;
  for (std::future<ServeResult>& f : futures) {
    EXPECT_TRUE(f.get().status.ok());  // Nothing is ever shed...
  }
  core.Drain();
  // ...and that is exactly the problem: the backlog blew straight through
  // the bound the admission layer would have held.
  EXPECT_GT(hwm_during_burst, kBoundedCap);
  const ServingStats s = core.stats();
  EXPECT_EQ(s.requests, 160u);
  EXPECT_EQ(s.shed_queue_full + s.shed_admission + s.expired_in_queue, 0u);
}

}  // namespace
}  // namespace neo::serve
