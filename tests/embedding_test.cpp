// Word2vec + row-embedding tests, including the paper's Table 2 property:
// correlated (keyword, genre) pairs get higher cosine similarity.
#include <gtest/gtest.h>

#include "src/datagen/imdb_gen.h"
#include "src/embedding/row_embedding.h"

namespace neo::embedding {
namespace {

TEST(Word2VecTest, LearnsCooccurrence) {
  // Tokens 0/1 always co-occur, 2/3 always co-occur, the groups never mix.
  // After training, within-group similarity must exceed cross-group.
  std::vector<std::vector<int>> sentences;
  util::Rng rng(3);
  for (int i = 0; i < 600; ++i) {
    if (i % 2 == 0) {
      sentences.push_back({0, 1, 4});
    } else {
      sentences.push_back({2, 3, 5});
    }
  }
  Word2VecOptions opt;
  opt.dim = 8;
  opt.epochs = 8;
  Word2Vec w2v(opt);
  w2v.Train(sentences, 6);
  EXPECT_GT(w2v.Cosine(0, 1), w2v.Cosine(0, 2));
  EXPECT_GT(w2v.Cosine(2, 3), w2v.Cosine(1, 3));
  EXPECT_EQ(w2v.Count(0), 300);
}

TEST(Word2VecTest, DeterministicTraining) {
  std::vector<std::vector<int>> sentences = {{0, 1}, {1, 2}, {2, 0}, {0, 1, 2}};
  Word2VecOptions opt;
  opt.dim = 4;
  opt.epochs = 2;
  Word2Vec a(opt), b(opt);
  a.Train(sentences, 3);
  b.Train(sentences, 3);
  for (int d = 0; d < 4; ++d) EXPECT_FLOAT_EQ(a.Vector(1)[d], b.Vector(1)[d]);
}

TEST(Word2VecTest, MeanVector) {
  std::vector<std::vector<int>> sentences = {{0, 1}, {0, 1}};
  Word2VecOptions opt;
  opt.dim = 4;
  opt.epochs = 1;
  Word2Vec w2v(opt);
  w2v.Train(sentences, 2);
  float mean[4];
  w2v.MeanVector({0, 1}, mean);
  for (int d = 0; d < 4; ++d) {
    EXPECT_NEAR(mean[d], (w2v.Vector(0)[d] + w2v.Vector(1)[d]) / 2.0f, 1e-6);
  }
  // Empty token list -> zero vector.
  w2v.MeanVector({}, mean);
  for (int d = 0; d < 4; ++d) EXPECT_EQ(mean[d], 0.0f);
}

class RowEmbeddingFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GenOptions opt;
    opt.scale = 0.05;
    ds_ = new datagen::Dataset(datagen::GenerateImdb(opt));
    RowEmbeddingOptions ropt;
    ropt.mode = RowEmbeddingMode::kJoins;
    ropt.w2v.dim = 16;
    joins_ = new RowEmbedding(ds_->schema, *ds_->db, ropt);
  }
  static void TearDownTestSuite() {
    delete joins_;
    delete ds_;
  }
  static datagen::Dataset* ds_;
  static RowEmbedding* joins_;
};

datagen::Dataset* RowEmbeddingFixture::ds_ = nullptr;
RowEmbedding* RowEmbeddingFixture::joins_ = nullptr;

TEST_F(RowEmbeddingFixture, VocabularyCoversValues) {
  // Every keyword value must have a token.
  const auto& kw_col = ds_->db->table("keyword").ColumnByName("keyword");
  const int kw_gid = ds_->schema.GlobalColumnId("keyword", "keyword");
  for (size_t code = 0; code < std::min<size_t>(kw_col.dictionary_size(), 50);
       ++code) {
    EXPECT_GE(joins_->TokenFor(kw_gid, static_cast<int64_t>(code)), 0);
  }
  EXPECT_GT(joins_->vocab_size(), 100u);
  EXPECT_GT(joins_->num_sentences(), 1000u);
}

TEST_F(RowEmbeddingFixture, Table2CorrelationProperty) {
  // Cosine similarity between an aligned (keyword-stem, genre) pair must
  // exceed the similarity of a cross pair, averaged over stems (paper
  // Table 2: 'love'/romance > 'love'/horror).
  const int kw_gid = ds_->schema.GlobalColumnId("keyword", "keyword");
  const int info_gid = ds_->schema.GlobalColumnId("movie_info", "info");
  const auto& kw_col = ds_->db->table("keyword").ColumnByName("keyword");
  const auto& info_col = ds_->db->table("movie_info").ColumnByName("info");

  auto mean_sim_to_genre = [&](const std::string& stem, const std::string& genre) {
    const int64_t genre_code = info_col.LookupString(genre);
    EXPECT_GE(genre_code, 0) << genre;
    const auto matched = kw_col.CodesContaining(stem);
    EXPECT_FALSE(matched.empty()) << stem;
    double total = 0;
    for (int64_t code : matched) {
      total += joins_->Cosine(kw_gid, code, info_gid, genre_code);
    }
    return total / static_cast<double>(matched.size());
  };

  // 'love' stems belong to romance; 'space' stems to scifi.
  const double love_romance = mean_sim_to_genre("love", "romance");
  const double love_horror = mean_sim_to_genre("love", "horror");
  const double space_scifi = mean_sim_to_genre("space", "scifi");
  const double space_family = mean_sim_to_genre("space", "family");
  EXPECT_GT(love_romance, love_horror);
  EXPECT_GT(space_scifi, space_family);
}

TEST_F(RowEmbeddingFixture, UnseenValueYieldsZeroVector) {
  const int kw_gid = ds_->schema.GlobalColumnId("keyword", "keyword");
  std::vector<float> v(static_cast<size_t>(joins_->dim()), 1.0f);
  joins_->VectorFor(kw_gid, 99999999, v.data());
  for (float x : v) EXPECT_EQ(x, 0.0f);
  EXPECT_EQ(joins_->CountFor(kw_gid, 99999999), 0);
}

TEST_F(RowEmbeddingFixture, NoJoinsVariantBuilds) {
  RowEmbeddingOptions ropt;
  ropt.mode = RowEmbeddingMode::kNoJoins;
  ropt.w2v.dim = 8;
  ropt.w2v.epochs = 1;
  RowEmbedding no_joins(ds_->schema, *ds_->db, ropt);
  EXPECT_GT(no_joins.vocab_size(), 50u);
  // The joins variant sees strictly more sentences (every normalized table
  // row with >=2 attrs plus link-table sentences) - not necessarily, but it
  // must at least produce a usable vocabulary.
  const int kw_gid = ds_->schema.GlobalColumnId("keyword", "keyword");
  EXPECT_GE(no_joins.TokenFor(kw_gid, 0), -1);
}

}  // namespace
}  // namespace neo::embedding
