// Experience-store tests: constant-insensitive type hashing, the on-disk WAL
// and snapshot primitives, plan codec round trips, the per-type mode state
// machine (drift demotion, probes, re-promotion, stability, frozen), epoch-
// gated cardinality corrections and their featurizer integration, and the
// crash-safety contract — WAL/snapshot restart round trips, a kill-point
// sweep over every frame boundary and mid-record offset, bit-flip corruption
// detection, injected I/O faults, and crash-budget truncation through
// util::FaultInjector. The faults CI arm runs this file under NEO_FAULT_*
// injection, so the recovery paths are exercised both ways.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/datagen/imdb_gen.h"
#include "src/featurize/featurizer.h"
#include "src/query/builder.h"
#include "src/store/experience_store.h"
#include "src/store/plan_codec.h"
#include "src/store/store_file.h"
#include "src/util/fault_injector.h"

namespace neo::store {
namespace {

using plan::JoinOp;
using plan::MakeJoin;
using plan::MakeScan;
using plan::PartialPlan;
using plan::ScanOp;
using query::PredOp;
using query::Query;
using query::QueryBuilder;

// ---- helpers ---------------------------------------------------------------

/// Unique scratch directory, removed (with its known store files) on exit.
class TempDir {
 public:
  TempDir() {
    char buf[] = "/tmp/neo_store_test_XXXXXX";
    const char* p = ::mkdtemp(buf);
    EXPECT_NE(p, nullptr);
    path_ = p != nullptr ? p : "/tmp";
  }
  ~TempDir() {
    for (const char* f : {"/wal.log", "/snapshot.bin", "/snapshot.bin.tmp"}) {
      ::unlink((path_ + f).c_str());
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void WriteRawFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

class StoreFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GenOptions opt;
    opt.scale = 0.04;
    ds_ = new datagen::Dataset(datagen::GenerateImdb(opt));
    stats_ = new catalog::Statistics(ds_->schema, *ds_->db);
    hist_ = new optim::HistogramEstimator(ds_->schema, *stats_, *ds_->db);
  }
  static void TearDownTestSuite() {
    delete hist_;
    delete stats_;
    delete ds_;
  }

  /// One relation + one integer predicate: the parameterized-query template.
  /// All years share one type (the constants differ, the structure does not).
  static Query SingleRel(int id, int64_t year) {
    QueryBuilder b(ds_->schema, *ds_->db, "sr");
    b.Rel("title").Pred("title", "production_year", PredOp::kGe, year);
    Query q = b.Build();
    q.id = id;
    return q;
  }

  static Query ThreeWay(int id, const std::string& needle) {
    QueryBuilder b(ds_->schema, *ds_->db, "tw");
    b.JoinFk("movie_keyword", "title")
        .JoinFk("movie_keyword", "keyword")
        .PredStr("keyword", "keyword", PredOp::kContains, needle);
    Query q = b.Build();
    q.id = id;
    return q;
  }

  /// The (only) complete plan shape for a single-relation query.
  static PartialPlan OneScanPlan(const Query& q) {
    PartialPlan p;
    p.query = &q;
    p.roots = {MakeScan(ScanOp::kTable, q.relations[0], 1ULL << 0)};
    return p;
  }

  /// A complete 3-relation plan: ((r0 merge r1) hash r2).
  static PartialPlan ThreeWayPlan(const Query& q) {
    PartialPlan p;
    p.query = &q;
    auto s0 = MakeScan(ScanOp::kTable, q.relations[0], 1ULL << 0);
    auto s1 = MakeScan(ScanOp::kIndex, q.relations[1], 1ULL << 1);
    auto s2 = MakeScan(ScanOp::kTable, q.relations[2], 1ULL << 2);
    p.roots = {MakeJoin(JoinOp::kHash, MakeJoin(JoinOp::kMerge, s0, s1), s2)};
    return p;
  }

  static bool ViewsEqual(const TypeView& a, const TypeView& b) {
    return a.type_hash == b.type_hash && a.mode == b.mode &&
           a.exploit_from_drift == b.exploit_from_drift &&
           a.serves == b.serves && a.search_serves == b.search_serves &&
           a.exploit_run_len == b.exploit_run_len && a.ewma == b.ewma &&
           a.baseline_mean == b.baseline_mean &&
           a.baseline_n == b.baseline_n && a.stable_run == b.stable_run &&
           a.healthy_run == b.healthy_run &&
           a.exploit_bad_run == b.exploit_bad_run &&
           a.demotions == b.demotions && a.has_best == b.has_best &&
           a.best_latency_ms == b.best_latency_ms &&
           a.best_plan_hash == b.best_plan_hash &&
           a.num_corrections == b.num_corrections;
  }

  static void ExpectViewsEqual(const std::vector<TypeView>& a,
                               const std::vector<TypeView>& b,
                               const std::string& context) {
    ASSERT_EQ(a.size(), b.size()) << context;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(ViewsEqual(a[i], b[i]))
          << context << ": type " << i << " diverged (hash " << a[i].type_hash
          << ", serves " << a[i].serves << " vs " << b[i].serves << ", ewma "
          << a[i].ewma << " vs " << b[i].ewma << ")";
    }
  }

  static datagen::Dataset* ds_;
  static catalog::Statistics* stats_;
  static optim::HistogramEstimator* hist_;
};

datagen::Dataset* StoreFixture::ds_ = nullptr;
catalog::Statistics* StoreFixture::stats_ = nullptr;
optim::HistogramEstimator* StoreFixture::hist_ = nullptr;

// ---- Query type hashing ----------------------------------------------------

TEST_F(StoreFixture, TypeHashIgnoresLiteralsButFingerprintDoesNot) {
  const Query a = SingleRel(1, 1990);
  const Query b = SingleRel(2, 2005);
  EXPECT_NE(a.type_hash, 0u);
  EXPECT_EQ(a.type_hash, b.type_hash);     // Same template.
  EXPECT_NE(a.fingerprint, b.fingerprint);  // Different constants.
  EXPECT_NE(a.type_hash, a.fingerprint);

  const Query s1 = ThreeWay(3, "love");
  const Query s2 = ThreeWay(4, "war");
  EXPECT_EQ(s1.type_hash, s2.type_hash);   // String literal dropped too.
  EXPECT_NE(s1.fingerprint, s2.fingerprint);
}

TEST_F(StoreFixture, TypeHashSeparatesStructure) {
  const Query base = SingleRel(1, 1990);
  // Different operator on the same column.
  QueryBuilder b1(ds_->schema, *ds_->db, "sr");
  b1.Rel("title").Pred("title", "production_year", PredOp::kLe, 1990);
  EXPECT_NE(b1.Build().type_hash, base.type_hash);
  // Extra predicate.
  QueryBuilder b2(ds_->schema, *ds_->db, "sr");
  b2.Rel("title")
      .Pred("title", "production_year", PredOp::kGe, 1990)
      .Pred("title", "production_year", PredOp::kLe, 2000);
  EXPECT_NE(b2.Build().type_hash, base.type_hash);
  // Different relation/join structure.
  EXPECT_NE(ThreeWay(2, "love").type_hash, base.type_hash);
}

// ---- store_file: byte codecs, WAL, atomic publish --------------------------

TEST(StoreFileTest, ByteWriterReaderRoundTrip) {
  ByteWriter w;
  w.PutU8(7);
  w.PutU32(0xdeadbeefu);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI32(-42);
  w.PutF64(3.14159);
  w.PutString("neo");
  ByteReader r(w.bytes().data(), w.size());
  EXPECT_EQ(r.GetU8(), 7u);
  EXPECT_EQ(r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetI32(), -42);
  EXPECT_EQ(r.GetF64(), 3.14159);
  EXPECT_EQ(r.GetString(), "neo");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  r.GetU64();  // Past the end: latches, returns zero.
  EXPECT_FALSE(r.ok());
}

TEST(StoreFileTest, WalAppendReadRoundTrip) {
  TempDir tmp;
  const std::string path = tmp.path() + "/wal.log";
  WalWriter w;
  ASSERT_TRUE(w.Open(path, 0).ok());
  const std::vector<std::vector<uint8_t>> payloads = {
      {1, 2, 3}, {}, {9, 8, 7, 6, 5}};
  for (size_t i = 0; i < payloads.size(); ++i) {
    ASSERT_TRUE(w.AppendRecord(static_cast<uint32_t>(i + 1), i + 10,
                               payloads[i].data(), payloads[i].size())
                    .ok());
  }
  ASSERT_TRUE(w.Sync().ok());
  w.Close();

  WalReadResult res;
  ASSERT_TRUE(ReadWal(path, &res).ok());
  ASSERT_EQ(res.records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(res.records[i].type, i + 1);
    EXPECT_EQ(res.records[i].lsn, i + 10);
    EXPECT_EQ(res.records[i].payload, payloads[i]);
  }
  EXPECT_FALSE(res.corruption);
  EXPECT_EQ(res.torn_bytes, 0u);
  std::vector<uint8_t> raw;
  ASSERT_TRUE(ReadFileBytes(path, &raw).ok());
  EXPECT_EQ(res.valid_bytes, raw.size());
}

TEST(StoreFileTest, WalTornTailIsDroppedSilently) {
  TempDir tmp;
  const std::string path = tmp.path() + "/wal.log";
  WalWriter w;
  ASSERT_TRUE(w.Open(path, 0).ok());
  const uint8_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(w.AppendRecord(1, static_cast<uint64_t>(i + 1), payload, 8).ok());
  }
  ASSERT_TRUE(w.Sync().ok());
  w.Close();
  std::vector<uint8_t> raw;
  ASSERT_TRUE(ReadFileBytes(path, &raw).ok());
  WriteRawFile(path, std::vector<uint8_t>(raw.begin(), raw.end() - 5));

  WalReadResult res;
  EXPECT_TRUE(ReadWal(path, &res).ok());  // Torn tail: kOk, not corruption.
  EXPECT_EQ(res.records.size(), 2u);
  EXPECT_FALSE(res.corruption);
  EXPECT_GT(res.torn_bytes, 0u);
  EXPECT_EQ(res.valid_bytes + res.torn_bytes, raw.size() - 5);
}

TEST(StoreFileTest, WalBitFlipInCompleteFrameIsCorruption) {
  TempDir tmp;
  const std::string path = tmp.path() + "/wal.log";
  WalWriter w;
  ASSERT_TRUE(w.Open(path, 0).ok());
  const uint8_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(w.AppendRecord(1, static_cast<uint64_t>(i + 1), payload, 8).ok());
  }
  ASSERT_TRUE(w.Sync().ok());
  w.Close();
  std::vector<uint8_t> raw;
  ASSERT_TRUE(ReadFileBytes(path, &raw).ok());
  const uint64_t frame = 4 + 4 + 8 + 8 + 8;  // len + type + lsn + payload + sum
  raw[8 + frame + 20] ^= 0x40;               // Inside frame 2's payload.
  WriteRawFile(path, raw);

  WalReadResult res;
  const util::Status s = ReadWal(path, &res);
  EXPECT_EQ(s.code(), util::Status::Code::kDataLoss);
  EXPECT_TRUE(res.corruption);
  EXPECT_EQ(res.records.size(), 1u);  // Valid prefix still usable.
  EXPECT_EQ(res.valid_bytes, 8 + frame);
}

TEST(StoreFileTest, AtomicWriteFilePublishesWholeOrNothing) {
  TempDir tmp;
  const std::string path = tmp.path() + "/snapshot.bin";
  const std::string v1 = "first version";
  const std::string v2 = "second version, longer";
  ASSERT_TRUE(AtomicWriteFile(path, v1.data(), v1.size(), nullptr, 1).ok());
  ASSERT_TRUE(AtomicWriteFile(path, v2.data(), v2.size(), nullptr, 1).ok());
  std::vector<uint8_t> got;
  ASSERT_TRUE(ReadFileBytes(path, &got).ok());
  EXPECT_EQ(std::string(got.begin(), got.end()), v2);

  // An injected EIO must leave the previous file intact and no tmp behind.
  util::FaultInjectorConfig fcfg;
  fcfg.enabled = true;
  fcfg.io_failure_p = 1.0;
  util::FaultInjector injector(fcfg);
  const std::string v3 = "never lands";
  EXPECT_FALSE(
      AtomicWriteFile(path, v3.data(), v3.size(), &injector, 1).ok());
  ASSERT_TRUE(ReadFileBytes(path, &got).ok());
  EXPECT_EQ(std::string(got.begin(), got.end()), v2);
  struct stat st;
  EXPECT_NE(::stat((path + ".tmp").c_str(), &st), 0);
}

// ---- Plan codec ------------------------------------------------------------

TEST_F(StoreFixture, PlanCodecRoundTripsCompleteAndPartialPlans) {
  const Query q = ThreeWay(1, "love");
  const PartialPlan complete = ThreeWayPlan(q);
  ASSERT_TRUE(complete.IsComplete());
  ByteWriter w;
  EncodePlan(complete, &w);
  ByteReader r(w.bytes().data(), w.size());
  PartialPlan decoded;
  ASSERT_TRUE(DecodePlan(&r, q, &decoded).ok());
  EXPECT_TRUE(decoded.IsComplete());
  EXPECT_EQ(decoded.Hash(), complete.Hash());
  EXPECT_EQ(decoded.query, &q);
  EXPECT_EQ(decoded.ToString(ds_->schema), complete.ToString(ds_->schema));

  // A multi-root partial forest round-trips too.
  PartialPlan partial;
  partial.query = &q;
  partial.roots = {MakeScan(ScanOp::kTable, q.relations[0], 1ULL << 0),
                   MakeScan(ScanOp::kIndex, q.relations[1], 1ULL << 1)};
  ByteWriter w2;
  EncodePlan(partial, &w2);
  ByteReader r2(w2.bytes().data(), w2.size());
  PartialPlan decoded2;
  ASSERT_TRUE(DecodePlan(&r2, q, &decoded2).ok());
  EXPECT_FALSE(decoded2.IsComplete());
  EXPECT_EQ(decoded2.Hash(), partial.Hash());
}

TEST_F(StoreFixture, PlanCodecRejectsGarbageWithoutCrashing) {
  const Query q = ThreeWay(1, "love");
  // Arbitrary bytes.
  const std::vector<uint8_t> junk = {0xff, 0xfe, 0x13, 0x37, 0x00, 0x42};
  ByteReader r(junk.data(), junk.size());
  PartialPlan out;
  EXPECT_EQ(DecodePlan(&r, q, &out).code(), util::Status::Code::kDataLoss);

  // A valid encoding truncated mid-stream.
  ByteWriter w;
  EncodePlan(ThreeWayPlan(q), &w);
  ByteReader r2(w.bytes().data(), w.size() / 2);
  PartialPlan out2;
  EXPECT_EQ(DecodePlan(&r2, q, &out2).code(), util::Status::Code::kDataLoss);

  // A valid encoding decoded against the wrong query (its tables are not in
  // the query's relation set) must be rejected, not trusted.
  const Query other = SingleRel(2, 1990);
  ByteReader r3(w.bytes().data(), w.size());
  PartialPlan out3;
  EXPECT_EQ(DecodePlan(&r3, other, &out3).code(),
            util::Status::Code::kDataLoss);
}

// ---- Mode state machine (in-memory store) ----------------------------------

TEST_F(StoreFixture, FirstImprovingServeCapturesBestPlan) {
  ExperienceStore store(StoreOptions{});
  ASSERT_TRUE(store.Open().ok());
  const Query q = SingleRel(1, 1990);
  const PartialPlan plan = OneScanPlan(q);

  EXPECT_FALSE(store.Decide(q).type_known);
  store.RecordServe(q, plan, 10.0, /*from_search=*/true);
  TypeView v;
  ASSERT_TRUE(store.ViewOf(q.type_hash, &v));
  EXPECT_TRUE(v.has_best);
  EXPECT_EQ(v.best_latency_ms, 10.0);
  EXPECT_EQ(v.best_plan_hash, plan.Hash());
  EXPECT_EQ(v.mode, TypeMode::kLearn);
  // A slower serve does not displace the best; a faster one does.
  store.RecordServe(q, plan, 20.0, /*from_search=*/true);
  ASSERT_TRUE(store.ViewOf(q.type_hash, &v));
  EXPECT_EQ(v.best_latency_ms, 10.0);
  store.RecordServe(q, plan, 5.0, /*from_search=*/true);
  ASSERT_TRUE(store.ViewOf(q.type_hash, &v));
  EXPECT_EQ(v.best_latency_ms, 5.0);
  EXPECT_EQ(store.stats().best_updates, 2u);
  // Learn mode: Decide still sends the query to search.
  const Decision d = store.Decide(q);
  EXPECT_TRUE(d.type_known);
  EXPECT_FALSE(d.use_pinned);
}

TEST_F(StoreFixture, DriftDemotionPinsRegressingType) {
  ExperienceStore store(StoreOptions{});
  ASSERT_TRUE(store.Open().ok());
  const Query q = SingleRel(1, 1990);
  const PartialPlan plan = OneScanPlan(q);

  // Baseline window (8) of healthy 10ms serves; first one captures the best.
  for (int i = 0; i < 8; ++i) store.RecordServe(q, plan, 10.0, true);
  TypeView v;
  ASSERT_TRUE(store.ViewOf(q.type_hash, &v));
  EXPECT_EQ(v.mode, TypeMode::kLearn);
  EXPECT_EQ(v.baseline_mean, 10.0);

  // One regressed serve pushes the EWMA past demote_factor x baseline
  // (0.25*100 + 0.75*10 = 32.5 > 25): the type pins to its best plan.
  store.RecordServe(q, plan, 100.0, true);
  ASSERT_TRUE(store.ViewOf(q.type_hash, &v));
  EXPECT_EQ(v.mode, TypeMode::kExploit);
  EXPECT_TRUE(v.exploit_from_drift);
  EXPECT_EQ(v.demotions, 1u);
  EXPECT_EQ(store.stats().drift_demotions, 1u);
  EXPECT_EQ(store.stats().mode_transitions, 1u);

  const Decision d = store.Decide(q);
  EXPECT_TRUE(d.use_pinned);
  EXPECT_EQ(d.mode, TypeMode::kExploit);
  EXPECT_EQ(d.pinned.Hash(), plan.Hash());
  EXPECT_EQ(d.pinned_latency_ms, 10.0);
  EXPECT_EQ(d.pinned.query, &q);
}

TEST_F(StoreFixture, HealthyProbesRepromoteDriftDemotedType) {
  ExperienceStore store(StoreOptions{});
  ASSERT_TRUE(store.Open().ok());
  const Query q = SingleRel(1, 1990);
  const PartialPlan plan = OneScanPlan(q);
  for (int i = 0; i < 8; ++i) store.RecordServe(q, plan, 10.0, true);
  store.RecordServe(q, plan, 100.0, true);  // Demote.
  TypeView v;
  ASSERT_TRUE(store.ViewOf(q.type_hash, &v));
  ASSERT_EQ(v.mode, TypeMode::kExploit);

  // Pinned serves at healthy latency. Every probe_interval-th (4th) exploit
  // serve is a probe; Decide must announce the schedule ahead of time, and
  // healthy_probes (3) healthy probes re-promote — at the 12th serve.
  int serves = 0;
  while (true) {
    ASSERT_TRUE(store.ViewOf(q.type_hash, &v));
    if (v.mode != TypeMode::kExploit) break;
    const Decision d = store.Decide(q);
    EXPECT_EQ(d.is_probe, (v.exploit_run_len + 1) % 4 == 0);
    store.RecordServe(q, plan, 10.0, /*from_search=*/false);
    ASSERT_LT(++serves, 64) << "never re-promoted";
  }
  EXPECT_EQ(serves, 12);
  EXPECT_EQ(v.mode, TypeMode::kLearn);
  EXPECT_EQ(store.stats().probe_serves, 3u);
  EXPECT_EQ(store.stats().repromotions, 1u);
  EXPECT_FALSE(store.Decide(q).use_pinned);  // Searching again.
}

TEST_F(StoreFixture, ExploitEscapeWhenPinnedPlanItselfRegresses) {
  ExperienceStore store(StoreOptions{});
  ASSERT_TRUE(store.Open().ok());
  const Query q = SingleRel(1, 1990);
  const PartialPlan plan = OneScanPlan(q);
  for (int i = 0; i < 8; ++i) store.RecordServe(q, plan, 10.0, true);
  store.RecordServe(q, plan, 100.0, true);  // Demote.

  // The pinned plan now also regresses: exploit_bad_streak (4) consecutive
  // bad serves force the type back to learn with a RESET baseline, so the
  // stale 10ms baseline cannot instantly re-demote it.
  for (int i = 0; i < 4; ++i) store.RecordServe(q, plan, 100.0, false);
  TypeView v;
  ASSERT_TRUE(store.ViewOf(q.type_hash, &v));
  EXPECT_EQ(v.mode, TypeMode::kLearn);
  EXPECT_EQ(v.baseline_n, 0);
  EXPECT_EQ(store.stats().exploit_escapes, 1u);

  // The next serves rebuild a fresh baseline at the new latency level.
  store.RecordServe(q, plan, 90.0, true);
  ASSERT_TRUE(store.ViewOf(q.type_hash, &v));
  EXPECT_EQ(v.mode, TypeMode::kLearn);
  EXPECT_EQ(v.baseline_mean, 90.0);
}

TEST_F(StoreFixture, StabilityPromotionStopsPayingForSearch) {
  StoreOptions opt;
  opt.drift.stable_streak = 3;
  ExperienceStore store(opt);
  ASSERT_TRUE(store.Open().ok());
  const Query q = SingleRel(1, 1990);
  const PartialPlan plan = OneScanPlan(q);

  store.RecordServe(q, plan, 10.0, true);  // Captures best, resets streak.
  for (int i = 0; i < 3; ++i) store.RecordServe(q, plan, 10.0, true);
  TypeView v;
  ASSERT_TRUE(store.ViewOf(q.type_hash, &v));
  EXPECT_EQ(v.mode, TypeMode::kExploit);
  EXPECT_FALSE(v.exploit_from_drift);  // Stability, not drift.
  EXPECT_EQ(store.stats().stability_promotions, 1u);

  // Stability promotions never probe (nothing drifted — only the escape
  // hatch can exit), and Decide pins without a probe schedule.
  for (int i = 0; i < 12; ++i) {
    EXPECT_FALSE(store.Decide(q).is_probe);
    store.RecordServe(q, plan, 10.0, false);
  }
  ASSERT_TRUE(store.ViewOf(q.type_hash, &v));
  EXPECT_EQ(v.mode, TypeMode::kExploit);
  EXPECT_EQ(store.stats().probe_serves, 0u);
}

TEST_F(StoreFixture, FrozenModePinsForeverAndRecordsNothing) {
  ExperienceStore store(StoreOptions{});
  ASSERT_TRUE(store.Open().ok());
  const Query q = SingleRel(1, 1990);
  const PartialPlan plan = OneScanPlan(q);
  store.RecordServe(q, plan, 10.0, true);
  ASSERT_TRUE(store.Freeze(q.type_hash).ok());

  Decision d = store.Decide(q);
  EXPECT_TRUE(d.use_pinned);
  EXPECT_EQ(d.mode, TypeMode::kFrozen);
  EXPECT_FALSE(d.is_probe);

  // Frozen serves leave the durable state untouched, whatever the latency.
  TypeView before;
  ASSERT_TRUE(store.ViewOf(q.type_hash, &before));
  for (int i = 0; i < 10; ++i) store.RecordServe(q, plan, 500.0, false);
  store.RecordCardCorrection(q, 1, 100.0, 1000.0);
  TypeView after;
  ASSERT_TRUE(store.ViewOf(q.type_hash, &after));
  EXPECT_TRUE(ViewsEqual(before, after));
  EXPECT_EQ(store.stats().frozen_serves, 10u);

  // Manual thaw resumes learning.
  ASSERT_TRUE(store.SetMode(q.type_hash, TypeMode::kLearn).ok());
  EXPECT_FALSE(store.Decide(q).use_pinned);
}

TEST_F(StoreFixture, ManualModeControlValidates) {
  ExperienceStore store(StoreOptions{});
  ASSERT_TRUE(store.Open().ok());
  const Query q = SingleRel(1, 1990);
  EXPECT_EQ(store.SetMode(q.type_hash, TypeMode::kExploit).code(),
            util::Status::Code::kNotFound);
  // A type with no best plan cannot be pinned.
  store.RecordServe(q, PartialPlan::Initial(q), 10.0, /*from_search=*/false);
  EXPECT_EQ(store.SetMode(q.type_hash, TypeMode::kExploit).code(),
            util::Status::Code::kFailedPrecondition);
  EXPECT_EQ(store.Freeze(q.type_hash).code(),
            util::Status::Code::kFailedPrecondition);
}

// ---- Cardinality corrections ------------------------------------------------

TEST_F(StoreFixture, CardCorrectionsPublishEpochGatedLogMeans) {
  ExperienceStore store(StoreOptions{});
  ASSERT_TRUE(store.Open().ok());
  const Query q = SingleRel(1, 1990);

  EXPECT_EQ(store.CorrectionFor(q, 1), 1.0);  // No data: exact identity.
  EXPECT_EQ(store.epoch(), 0u);

  store.RecordCardCorrection(q, 1, 100.0, 1000.0);  // Observed 10x estimate.
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_NEAR(store.CorrectionFor(q, 1), 10.0, 1e-9);

  // The same ratio again moves the mean by zero: no epoch bump, caches stay.
  store.RecordCardCorrection(q, 1, 100.0, 1000.0);
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_NEAR(store.CorrectionFor(q, 1), 10.0, 1e-9);

  // Ratios clamp at 1e4 in both directions.
  store.RecordCardCorrection(q, 2, 1.0, 1e9);
  EXPECT_NEAR(store.CorrectionFor(q, 2), 1e4, 1e-6);
  store.RecordCardCorrection(q, 4, 1e9, 1.0);
  EXPECT_NEAR(store.CorrectionFor(q, 4), 1e-4, 1e-12);

  // Unknown subsets and unknown types stay at 1.0.
  EXPECT_EQ(store.CorrectionFor(q, 1ULL << 40), 1.0);
  EXPECT_EQ(store.CorrectionFor(ThreeWay(2, "love"), 1), 1.0);
  EXPECT_EQ(store.stats().card_corrections, 4u);
}

TEST_F(StoreFixture, CorrectionsFeedFeaturizerCardChannelAndEpoch) {
  featurize::FeaturizerConfig cfg;
  cfg.card_channel = featurize::CardChannel::kEstimated;
  featurize::Featurizer feat(ds_->schema, *ds_->db, cfg, hist_);
  const Query q = SingleRel(1, 1990);
  const PartialPlan plan = OneScanPlan(q);
  const int card_col = feat.plan_dim() - 1;

  // Unattached baseline.
  nn::TreeStructure tree;
  nn::Matrix before;
  feat.EncodePlan(q, plan, &tree, &before);

  ExperienceStore store(StoreOptions{});
  ASSERT_TRUE(store.Open().ok());
  feat.SetCardCorrections(&store);
  EXPECT_EQ(feat.encoding_epoch(), 0u);

  // Attached but empty: encodings must be bit-identical to unattached.
  nn::TreeStructure tree2;
  nn::Matrix attached;
  feat.EncodePlan(q, plan, &tree2, &attached);
  EXPECT_EQ(attached.At(0, card_col), before.At(0, card_col));

  // A learned 10x correction on this subset shifts the channel and bumps the
  // epoch the search cache keys on.
  store.RecordCardCorrection(q, 1ULL << 0, 100.0, 1000.0);
  EXPECT_EQ(feat.encoding_epoch(), 1u);
  nn::TreeStructure tree3;
  nn::Matrix corrected;
  feat.EncodePlan(q, plan, &tree3, &corrected);
  EXPECT_NE(corrected.At(0, card_col), before.At(0, card_col));

  // The channel is log1p-scaled in encoders downstream of CardFeature; at
  // minimum the corrected feature must reflect a strictly larger estimate.
  EXPECT_GT(corrected.At(0, card_col), before.At(0, card_col));

  feat.SetCardCorrections(nullptr);
  EXPECT_EQ(feat.encoding_epoch(), 0u);
  nn::TreeStructure tree4;
  nn::Matrix detached;
  feat.EncodePlan(q, plan, &tree4, &detached);
  EXPECT_EQ(detached.At(0, card_col), before.At(0, card_col));
}

// ---- Durability: restart round trips ----------------------------------------

/// Drives a deterministic mixed workload (two types, an improving serve, a
/// drift demotion, corrections) against `store`. The same script is used to
/// produce reference states and WAL byte streams across tests.
void DriveScript(ExperienceStore* store, const Query& q1,
                 const PartialPlan& p1, const Query& q2,
                 const PartialPlan& p2) {
  for (int i = 0; i < 8; ++i) {
    store->RecordServe(q1, p1, 10.0 + 0.25 * i, /*from_search=*/true);
  }
  store->RecordCardCorrection(q1, 1, 100.0, 700.0);
  for (int i = 0; i < 5; ++i) {
    store->RecordServe(q2, p2, 40.0 + i, /*from_search=*/true);
  }
  store->RecordCardCorrection(q2, 3, 50.0, 10.0);
  store->RecordServe(q1, p1, 120.0, /*from_search=*/true);  // Demotes q1.
  for (int i = 0; i < 3; ++i) {
    store->RecordServe(q1, p1, 10.0, /*from_search=*/false);
  }
}

TEST_F(StoreFixture, WalReplayReproducesStateExactly) {
  TempDir tmp;
  const Query q1 = SingleRel(1, 1990);
  const Query q2 = ThreeWay(2, "love");
  const PartialPlan p1 = OneScanPlan(q1);
  const PartialPlan p2 = ThreeWayPlan(q2);

  StoreOptions opt;
  opt.dir = tmp.path();
  opt.snapshot_every = 0;  // WAL only.
  std::vector<TypeView> expected;
  uint64_t wal_records = 0;
  {
    ExperienceStore a(opt);
    ASSERT_TRUE(a.Open().ok());
    DriveScript(&a, q1, p1, q2, p2);
    ASSERT_TRUE(a.Sync().ok());
    expected = a.View();
    wal_records = a.stats().wal_records;
  }

  ExperienceStore b(opt);
  const util::Status s = b.Open();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(b.recovery().snapshot_loaded);
  EXPECT_EQ(b.recovery().wal_frames_seen, wal_records);
  EXPECT_EQ(b.recovery().wal_frames_replayed, wal_records);
  ExpectViewsEqual(b.View(), expected, "wal replay");

  // Replay is a state-machine re-run: the recovered store keeps serving with
  // identical decisions (q1 was drift-demoted, so its pin survives restart).
  const Decision d = b.Decide(q1);
  EXPECT_TRUE(d.use_pinned);
  EXPECT_EQ(d.pinned.Hash(), p1.Hash());
  EXPECT_NEAR(b.CorrectionFor(q1, 1), 7.0, 1e-9);
  EXPECT_NEAR(b.CorrectionFor(q2, 3), 0.2, 1e-9);
}

TEST_F(StoreFixture, SnapshotRoundTripWithLsnGatedTail) {
  TempDir tmp;
  const Query q1 = SingleRel(1, 1990);
  const Query q2 = ThreeWay(2, "love");
  const PartialPlan p1 = OneScanPlan(q1);
  const PartialPlan p2 = ThreeWayPlan(q2);

  StoreOptions opt;
  opt.dir = tmp.path();
  opt.snapshot_every = 0;
  std::vector<TypeView> expected;
  uint64_t post_snapshot_frames = 0;
  {
    ExperienceStore a(opt);
    ASSERT_TRUE(a.Open().ok());
    DriveScript(&a, q1, p1, q2, p2);
    ASSERT_TRUE(a.Snapshot().ok());
    const uint64_t before = a.stats().wal_records;
    // Post-snapshot tail: only these frames should replay on reopen.
    for (int i = 0; i < 4; ++i) {
      a.RecordServe(q2, p2, 44.0 + i, /*from_search=*/true);
    }
    post_snapshot_frames = a.stats().wal_records - before;
    ASSERT_TRUE(a.Sync().ok());
    expected = a.View();
    EXPECT_EQ(a.stats().snapshots, 1u);
  }

  ExperienceStore b(opt);
  ASSERT_TRUE(b.Open().ok());
  EXPECT_TRUE(b.recovery().snapshot_loaded);
  EXPECT_EQ(b.recovery().snapshot_types, 2u);
  EXPECT_EQ(b.recovery().wal_frames_replayed, post_snapshot_frames);
  ExpectViewsEqual(b.View(), expected, "snapshot + tail");
}

TEST_F(StoreFixture, StaleWalFramesBehindSnapshotLsnAreSkipped) {
  // Crash window: snapshot rename landed but the WAL reset did not. The old
  // WAL's frames are all folded into the snapshot already; the LSN gate must
  // skip every one of them instead of double-applying (EWMA updates are not
  // idempotent, so a single double-applied frame would diverge the state).
  TempDir tmp;
  const Query q1 = SingleRel(1, 1990);
  const Query q2 = ThreeWay(2, "love");
  const PartialPlan p1 = OneScanPlan(q1);
  const PartialPlan p2 = ThreeWayPlan(q2);

  StoreOptions opt;
  opt.dir = tmp.path();
  opt.snapshot_every = 0;
  std::vector<uint8_t> pre_snapshot_wal;
  std::vector<TypeView> expected;
  {
    ExperienceStore a(opt);
    ASSERT_TRUE(a.Open().ok());
    DriveScript(&a, q1, p1, q2, p2);
    ASSERT_TRUE(a.Sync().ok());
    ASSERT_TRUE(ReadFileBytes(a.wal_path(), &pre_snapshot_wal).ok());
    ASSERT_TRUE(a.Snapshot().ok());  // Publishes snapshot, resets the WAL.
    expected = a.View();
  }
  // Emulate the crash: restore the pre-snapshot WAL over the reset one.
  WriteRawFile(tmp.path() + "/wal.log", pre_snapshot_wal);

  ExperienceStore b(opt);
  ASSERT_TRUE(b.Open().ok());
  EXPECT_TRUE(b.recovery().snapshot_loaded);
  EXPECT_GT(b.recovery().wal_frames_seen, 0u);
  EXPECT_EQ(b.recovery().wal_frames_replayed, 0u);  // All LSN-gated.
  ExpectViewsEqual(b.View(), expected, "lsn gate");
}

// ---- Kill-point sweep (the crash-safety acceptance test) --------------------

TEST_F(StoreFixture, KillPointSweepLosesOnlyTheTornTail) {
  TempDir master;
  const Query q1 = SingleRel(1, 1990);
  const Query q2 = ThreeWay(2, "love");
  const PartialPlan p1 = OneScanPlan(q1);
  const PartialPlan p2 = ThreeWayPlan(q2);

  // 1. Produce the canonical WAL and capture the in-memory reference state
  //    at every frame count that ends a store call (an improving serve emits
  //    two frames atomically from the caller's view, so interior counts have
  //    no call-boundary reference — they are covered by the frame-count and
  //    boundary-equivalence asserts instead).
  StoreOptions opt;
  opt.dir = master.path();
  opt.snapshot_every = 0;
  std::map<uint64_t, std::vector<TypeView>> reference;
  std::vector<uint8_t> wal;
  {
    ExperienceStore a(opt);
    ASSERT_TRUE(a.Open().ok());
    reference[0] = a.View();
    const auto checkpoint = [&] { reference[a.stats().wal_records] = a.View(); };
    for (int i = 0; i < 8; ++i) {
      a.RecordServe(q1, p1, 10.0 + 0.25 * i, true);
      checkpoint();
    }
    a.RecordCardCorrection(q1, 1, 100.0, 700.0);
    checkpoint();
    for (int i = 0; i < 5; ++i) {
      a.RecordServe(q2, p2, 40.0 + i, true);
      checkpoint();
    }
    a.RecordServe(q1, p1, 120.0, true);
    checkpoint();
    for (int i = 0; i < 3; ++i) {
      a.RecordServe(q1, p1, 10.0, false);
      checkpoint();
    }
    ASSERT_TRUE(a.Sync().ok());
    ASSERT_TRUE(ReadFileBytes(a.wal_path(), &wal).ok());
  }

  // 2. Frame boundaries from the canonical bytes.
  std::vector<uint64_t> boundaries = {8};  // Past the file header.
  {
    uint64_t off = 8;
    while (off + 24 <= wal.size()) {
      uint32_t len = 0;
      std::memcpy(&len, wal.data() + off, 4);
      off += 24 + len;
      ASSERT_LE(off, wal.size());
      boundaries.push_back(off);
    }
    ASSERT_EQ(off, wal.size());
  }
  ASSERT_EQ(boundaries.size(), reference.rbegin()->first + 1);

  // 3. Kill at every frame boundary AND at mid-record offsets inside every
  //    frame. Recovery must load exactly the complete-frame prefix: kOk (a
  //    torn tail is crash debris, not corruption), frames_replayed == k, and
  //    state equal to the pre-crash reference at k frames.
  TempDir scratch;
  StoreOptions sopt;
  sopt.dir = scratch.path();
  sopt.snapshot_every = 0;
  size_t sweeps = 0;
  for (size_t k = 0; k + 1 < boundaries.size(); ++k) {
    std::vector<uint64_t> cuts = {boundaries[k]};
    const uint64_t frame_len = boundaries[k + 1] - boundaries[k];
    cuts.push_back(boundaries[k] + 1);               // Torn length field.
    cuts.push_back(boundaries[k] + 17);              // Torn frame header.
    cuts.push_back(boundaries[k] + frame_len / 2);   // Torn payload.
    cuts.push_back(boundaries[k] + frame_len - 1);   // One byte short.
    for (const uint64_t cut : cuts) {
      WriteRawFile(scratch.path() + "/wal.log",
                   std::vector<uint8_t>(wal.begin(), wal.begin() + cut));
      ExperienceStore b(sopt);
      const util::Status s = b.Open();
      EXPECT_TRUE(s.ok()) << "cut at " << cut << ": " << s.ToString();
      EXPECT_EQ(b.recovery().wal_frames_replayed, k) << "cut at " << cut;
      EXPECT_FALSE(b.recovery().wal_corrupt) << "cut at " << cut;
      const auto it = reference.find(k);
      if (it != reference.end()) {
        ExpectViewsEqual(b.View(), it->second,
                         "cut at " + std::to_string(cut));
      }
      ++sweeps;
    }
  }
  // Cut inside the 8-byte header: a fresh (empty) store, not an error.
  WriteRawFile(scratch.path() + "/wal.log",
               std::vector<uint8_t>(wal.begin(), wal.begin() + 3));
  ExperienceStore b(sopt);
  EXPECT_TRUE(b.Open().ok());
  EXPECT_EQ(b.NumTypes(), 0u);
  EXPECT_GT(sweeps, 60u);  // The sweep actually swept.

  // 4. Full file: everything replays.
  WriteRawFile(scratch.path() + "/wal.log", wal);
  ExperienceStore full(sopt);
  ASSERT_TRUE(full.Open().ok());
  ExpectViewsEqual(full.View(), reference.rbegin()->second, "full file");
}

TEST_F(StoreFixture, BitFlipsAreDetectedNeverSilentlyLoaded) {
  TempDir tmp;
  const Query q1 = SingleRel(1, 1990);
  const Query q2 = ThreeWay(2, "love");
  const PartialPlan p1 = OneScanPlan(q1);
  const PartialPlan p2 = ThreeWayPlan(q2);
  StoreOptions opt;
  opt.dir = tmp.path();
  opt.snapshot_every = 0;
  {
    ExperienceStore a(opt);
    ASSERT_TRUE(a.Open().ok());
    DriveScript(&a, q1, p1, q2, p2);
    ASSERT_TRUE(a.Sync().ok());
  }

  // WAL bit rot: kDataLoss reported, valid prefix mounted, flag set.
  std::vector<uint8_t> wal;
  ASSERT_TRUE(ReadFileBytes(tmp.path() + "/wal.log", &wal).ok());
  std::vector<uint8_t> flipped = wal;
  flipped[flipped.size() / 2] ^= 0x01;
  WriteRawFile(tmp.path() + "/wal.log", flipped);
  {
    ExperienceStore b(opt);
    const util::Status s = b.Open();
    EXPECT_EQ(s.code(), util::Status::Code::kDataLoss);
    EXPECT_TRUE(b.recovery().wal_corrupt);
    EXPECT_LT(b.recovery().wal_frames_replayed, b.recovery().wal_frames_seen +
                                                    20);  // Prefix only.
  }

  // Snapshot bit rot: also kDataLoss; the store must fall back to the WAL
  // tail rather than load corrupted type records.
  WriteRawFile(tmp.path() + "/wal.log", wal);  // Restore a clean WAL.
  {
    ExperienceStore a(opt);
    ASSERT_TRUE(a.Open().ok());
    ASSERT_TRUE(a.Snapshot().ok());
    a.RecordServe(q2, p2, 44.0, true);  // One post-snapshot frame.
    ASSERT_TRUE(a.Sync().ok());
  }
  std::vector<uint8_t> snap;
  ASSERT_TRUE(ReadFileBytes(tmp.path() + "/snapshot.bin", &snap).ok());
  snap[snap.size() / 3] ^= 0x10;
  WriteRawFile(tmp.path() + "/snapshot.bin", snap);
  {
    ExperienceStore b(opt);
    const util::Status s = b.Open();
    EXPECT_EQ(s.code(), util::Status::Code::kDataLoss);
    EXPECT_TRUE(b.recovery().snapshot_corrupt);
    EXPECT_FALSE(b.recovery().snapshot_loaded);
    // Degraded but consistent: only the post-snapshot WAL tail is state.
    EXPECT_EQ(b.recovery().wal_frames_replayed, b.recovery().wal_frames_seen);
    EXPECT_EQ(b.NumTypes(), 1u);
    TypeView v;
    ASSERT_TRUE(b.ViewOf(q2.type_hash, &v));
    EXPECT_EQ(v.serves, 1u);
  }
}

// ---- Crash emulation through the fault injector -----------------------------

TEST_F(StoreFixture, CrashBudgetEqualsFileTruncationAtThatByte) {
  // The injector's byte odometer emulates a kill at byte c of the store's
  // cumulative write stream. The contract: recovering a store that "crashed"
  // at budget c is byte-for-byte the same as recovering the canonical WAL
  // truncated at offset c.
  const Query q1 = SingleRel(1, 1990);
  const Query q2 = ThreeWay(2, "love");
  const PartialPlan p1 = OneScanPlan(q1);
  const PartialPlan p2 = ThreeWayPlan(q2);

  TempDir canon_dir;
  StoreOptions canon_opt;
  canon_opt.dir = canon_dir.path();
  canon_opt.snapshot_every = 0;
  std::vector<uint8_t> wal;
  size_t full_types = 0;
  {
    ExperienceStore a(canon_opt);
    ASSERT_TRUE(a.Open().ok());
    DriveScript(&a, q1, p1, q2, p2);
    ASSERT_TRUE(a.Sync().ok());
    full_types = a.NumTypes();
    ASSERT_TRUE(ReadFileBytes(a.wal_path(), &wal).ok());
  }

  for (const uint64_t budget :
       {uint64_t{3}, uint64_t{8}, uint64_t{64}, uint64_t{151},
        uint64_t{wal.size() / 2}, uint64_t{wal.size() - 7}}) {
    // Crashed run: same script, injector cuts the stream at `budget`.
    TempDir crash_dir;
    StoreOptions copt;
    copt.dir = crash_dir.path();
    copt.snapshot_every = 0;
    util::FaultInjectorConfig fcfg;
    fcfg.enabled = true;
    fcfg.io_truncate_at = static_cast<int64_t>(budget);
    util::FaultInjector injector(fcfg);
    std::vector<TypeView> live_views;
    {
      ExperienceStore c(copt);
      c.SetFaultInjector(&injector);
      ASSERT_TRUE(c.Open().ok());
      DriveScript(&c, q1, p1, q2, p2);
      c.Sync();  // Silent no-op past the kill byte.
      // The emulated process's MEMORY is unaffected by the kill — it keeps
      // serving everything until it actually exits.
      EXPECT_EQ(c.NumTypes(), full_types);
      live_views = c.View();
    }
    {
      std::vector<uint8_t> disk;
      ASSERT_TRUE(
          ReadFileBytes(crash_dir.path() + "/wal.log", &disk).ok());
      EXPECT_EQ(disk.size(), std::min<uint64_t>(budget, wal.size()))
          << "budget " << budget;
      EXPECT_TRUE(std::equal(disk.begin(), disk.end(), wal.begin()))
          << "budget " << budget;
    }

    // Reference: the canonical WAL truncated at the same byte.
    TempDir ref_dir;
    StoreOptions ropt;
    ropt.dir = ref_dir.path();
    ropt.snapshot_every = 0;
    WriteRawFile(ref_dir.path() + "/wal.log",
                 std::vector<uint8_t>(
                     wal.begin(),
                     wal.begin() + std::min<uint64_t>(budget, wal.size())));

    ExperienceStore recovered(copt);
    ExperienceStore reference(ropt);
    ASSERT_TRUE(recovered.Open().ok()) << "budget " << budget;
    ASSERT_TRUE(reference.Open().ok()) << "budget " << budget;
    ExpectViewsEqual(recovered.View(), reference.View(),
                     "budget " + std::to_string(budget));
    EXPECT_EQ(recovered.recovery().wal_frames_replayed,
              reference.recovery().wal_frames_replayed);
  }
}

TEST_F(StoreFixture, CrashDuringSnapshotPublishKeepsWalAuthoritative) {
  TempDir tmp;
  const Query q1 = SingleRel(1, 1990);
  const Query q2 = ThreeWay(2, "love");
  const PartialPlan p1 = OneScanPlan(q1);
  const PartialPlan p2 = ThreeWayPlan(q2);
  StoreOptions opt;
  opt.dir = tmp.path();
  opt.snapshot_every = 0;

  std::vector<TypeView> expected;
  {
    ExperienceStore a(opt);
    ASSERT_TRUE(a.Open().ok());
    DriveScript(&a, q1, p1, q2, p2);
    ASSERT_TRUE(a.Sync().ok());
    expected = a.View();

    // Kill the process a few bytes into the snapshot tmp write (the injector
    // attaches with a fresh byte odometer, so the budget counts only writes
    // from here on): the rename never happens, and — critically — the WAL
    // must NOT be reset, because its frames are still the only durable copy
    // of the state.
    util::FaultInjectorConfig fcfg;
    fcfg.enabled = true;
    fcfg.io_truncate_at = 40;
    util::FaultInjector injector(fcfg);
    a.SetFaultInjector(&injector);
    EXPECT_TRUE(a.Snapshot().ok());  // The dead process never saw an error.
    EXPECT_EQ(a.stats().snapshots, 0u);
  }

  struct stat st;
  EXPECT_NE(::stat((tmp.path() + "/snapshot.bin").c_str(), &st), 0);
  ExperienceStore b(opt);
  ASSERT_TRUE(b.Open().ok());
  EXPECT_FALSE(b.recovery().snapshot_loaded);
  ExpectViewsEqual(b.View(), expected, "crash mid-snapshot");
}

TEST_F(StoreFixture, InjectedIoFaultsDegradeToValidPrefixNeverCorruption) {
  // Short writes and EIOs on every WAL append path: whatever lands on disk
  // must recover as a clean prefix of the logical record stream (kOk — torn
  // bytes are truncated away by the writer's reset), matching the in-memory
  // reference at that frame count.
  const Query q1 = SingleRel(1, 1990);
  const Query q2 = ThreeWay(2, "love");
  const PartialPlan p1 = OneScanPlan(q1);
  const PartialPlan p2 = ThreeWayPlan(q2);

  for (const uint64_t seed : {3u, 11u, 77u}) {
    TempDir tmp;
    StoreOptions opt;
    opt.dir = tmp.path();
    opt.snapshot_every = 0;
    util::FaultInjectorConfig fcfg;
    fcfg.enabled = true;
    fcfg.seed = seed;
    fcfg.io_short_write_p = 0.2;
    fcfg.io_failure_p = 0.2;
    util::FaultInjector injector(fcfg);

    std::map<uint64_t, std::vector<TypeView>> reference;
    uint64_t final_records = 0;
    {
      ExperienceStore a(opt);
      ASSERT_TRUE(a.Open().ok());
      // Attach after Open: an injected EIO on the fresh WAL header would be
      // a (correctly reported) startup failure, not the append-path
      // degradation this test is about.
      a.SetFaultInjector(&injector);
      reference[0] = a.View();
      // Checkpoint the in-memory state only when the call's expected frames
      // ALL landed (an improving serve emits observation + best-plan): a
      // partial emission or a degraded append means this frame count is not
      // a call-boundary state of the on-disk stream, so it has no reference.
      const auto step = [&](const Query& q, const PartialPlan& p, double lat,
                            bool search, uint64_t expect_frames) {
        const uint64_t before = a.stats().wal_records;
        a.RecordServe(q, p, lat, search);
        const uint64_t after = a.stats().wal_records;
        if (after == before + expect_frames) reference.emplace(after, a.View());
      };
      for (int i = 0; i < 10; ++i) {
        step(q1, p1, 10.0 + 0.25 * i, true, i == 0 ? 2 : 1);
      }
      for (int i = 0; i < 10; ++i) {
        step(q2, p2, 40.0 + i, true, i == 0 ? 2 : 1);
      }
      for (int i = 0; i < 10; ++i) step(q1, p1, 11.0, false, 1);
      a.Sync();
      final_records = a.stats().wal_records;
    }
    EXPECT_GT(injector.io_failures() + injector.io_short_writes(), 0u)
        << "seed " << seed << " exercised nothing";

    ExperienceStore b(opt);
    const util::Status s = b.Open();
    EXPECT_TRUE(s.ok()) << "seed " << seed << ": " << s.ToString();
    EXPECT_FALSE(b.recovery().wal_corrupt) << "seed " << seed;
    const uint64_t replayed = b.recovery().wal_frames_replayed;
    EXPECT_LE(replayed, final_records);
    const auto it = reference.find(replayed);
    if (it != reference.end()) {
      ExpectViewsEqual(b.View(), it->second, "faults seed " +
                                                 std::to_string(seed));
    }
  }
}

TEST_F(StoreFixture, AutomaticSnapshotTriggersAtThreshold) {
  TempDir tmp;
  const Query q1 = SingleRel(1, 1990);
  const PartialPlan p1 = OneScanPlan(q1);
  StoreOptions opt;
  opt.dir = tmp.path();
  opt.snapshot_every = 8;
  {
    ExperienceStore a(opt);
    ASSERT_TRUE(a.Open().ok());
    for (int i = 0; i < 12; ++i) {
      a.RecordServe(q1, p1, 10.0, /*from_search=*/i == 0);
      ASSERT_TRUE(a.Sync().ok());
    }
    EXPECT_GE(a.stats().snapshots, 1u);
  }
  ExperienceStore b(opt);
  ASSERT_TRUE(b.Open().ok());
  EXPECT_TRUE(b.recovery().snapshot_loaded);
  TypeView v;
  ASSERT_TRUE(b.ViewOf(q1.type_hash, &v));
  EXPECT_EQ(v.serves, 12u);
}

// ---- FromEnv I/O knobs (satellite: fault-injector env plumbing) -------------

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(FaultInjectorIoEnvTest, FromEnvParsesIoVariables) {
  ScopedEnv e1("NEO_FAULT_INJECT", "1");
  ScopedEnv e2("NEO_FAULT_IO_SHORTWRITE_P", "0.25");
  ScopedEnv e3("NEO_FAULT_IO_FAIL_P", "0.5");
  ScopedEnv e4("NEO_FAULT_IO_TRUNCATE_AT", "4096");
  const util::FaultInjectorConfig cfg = util::FaultInjectorConfig::FromEnv();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_DOUBLE_EQ(cfg.io_short_write_p, 0.25);
  EXPECT_DOUBLE_EQ(cfg.io_failure_p, 0.5);
  EXPECT_EQ(cfg.io_truncate_at, 4096);
}

TEST(FaultInjectorIoEnvTest, FromEnvIoDefaultsAreModerateAndTruncationOff) {
  ScopedEnv e1("NEO_FAULT_INJECT", "1");
  ScopedEnv e2("NEO_FAULT_IO_SHORTWRITE_P", nullptr);
  ScopedEnv e3("NEO_FAULT_IO_FAIL_P", nullptr);
  ScopedEnv e4("NEO_FAULT_IO_TRUNCATE_AT", nullptr);
  const util::FaultInjectorConfig cfg = util::FaultInjectorConfig::FromEnv();
  EXPECT_DOUBLE_EQ(cfg.io_short_write_p, 0.05);
  EXPECT_DOUBLE_EQ(cfg.io_failure_p, 0.02);
  EXPECT_EQ(cfg.io_truncate_at, -1);
}

TEST(FaultInjectorIoTest, ConsumeIoBudgetCutsAtTheExactByte) {
  util::FaultInjectorConfig cfg;
  cfg.enabled = true;
  cfg.io_truncate_at = 100;
  util::FaultInjector injector(cfg);
  EXPECT_EQ(injector.ConsumeIoBudget(60), 60u);
  EXPECT_EQ(injector.ConsumeIoBudget(60), 40u);  // Budget cut mid-write.
  EXPECT_EQ(injector.ConsumeIoBudget(60), 0u);   // Dead past the kill byte.
  // Disabled or unlimited injectors never cut.
  util::FaultInjector off;
  EXPECT_EQ(off.ConsumeIoBudget(1 << 20), static_cast<size_t>(1 << 20));
}

TEST(FaultInjectorIoTest, ShortWritesAreStrictPrefixesAndDeterministic) {
  util::FaultInjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = 9;
  cfg.io_short_write_p = 0.5;
  util::FaultInjector a(cfg);
  util::FaultInjector b(cfg);
  size_t shortened = 0;
  for (int i = 0; i < 64; ++i) {
    const size_t la = a.PerturbWriteLength(7, 100);
    const size_t lb = b.PerturbWriteLength(7, 100);
    EXPECT_EQ(la, lb);  // Same seed, same stream: same schedule.
    EXPECT_LE(la, 100u);
    if (la < 100) ++shortened;
  }
  EXPECT_GT(shortened, 0u);
  EXPECT_EQ(a.io_short_writes(), shortened);
}

}  // namespace
}  // namespace neo::store
