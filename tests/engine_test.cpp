// Tests for the execution-engine substrate: predicate evaluation, the
// true-cardinality oracle (validated against brute-force nested loops), and
// the latency model's physical behaviors.
#include <gtest/gtest.h>

#include "src/datagen/imdb_gen.h"
#include "src/engine/cardinality_oracle.h"
#include "src/engine/execution_engine.h"
#include "src/engine/latency_model.h"
#include "src/query/builder.h"

namespace neo::engine {
namespace {

using plan::JoinOp;
using plan::MakeJoin;
using plan::MakeScan;
using plan::PartialPlan;
using plan::ScanOp;
using query::PredOp;
using query::Query;
using query::QueryBuilder;

class EngineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GenOptions opt;
    opt.scale = 0.04;  // ~300 movies: small enough for brute force checks.
    ds_ = new datagen::Dataset(datagen::GenerateImdb(opt));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  static datagen::Dataset* ds_;
};

datagen::Dataset* EngineFixture::ds_ = nullptr;

/// Brute-force count of a two-table equi-join with predicates.
double BruteForceJoin(const storage::Database& db, const catalog::Schema& schema,
                      const Query& q, const std::string& ta, const std::string& tb) {
  const int ida = schema.TableId(ta);
  const int idb = schema.TableId(tb);
  const Selection sa = EvaluatePredicates(db, schema, q, ida);
  const Selection sb = EvaluatePredicates(db, schema, q, idb);
  const auto edges = q.JoinsBetween(ida, idb);
  const storage::Table& a = db.table(ta);
  const storage::Table& b = db.table(tb);
  double count = 0;
  for (size_t i = 0; i < a.num_rows(); ++i) {
    if (!sa.mask[i]) continue;
    for (size_t j = 0; j < b.num_rows(); ++j) {
      if (!sb.mask[j]) continue;
      bool all = true;
      for (const auto& e : edges) {
        const int ca = e.left_table == ida ? e.left_column : e.right_column;
        const int cb = e.left_table == ida ? e.right_column : e.left_column;
        if (a.column(static_cast<size_t>(ca)).CodeAt(i) !=
            b.column(static_cast<size_t>(cb)).CodeAt(j)) {
          all = false;
          break;
        }
      }
      if (all) count += 1;
    }
  }
  return count;
}

TEST_F(EngineFixture, PredicateEvalEquality) {
  QueryBuilder b(ds_->schema, *ds_->db, "q");
  b.Rel("info_type").PredStr("info_type", "info", PredOp::kEq, "genres");
  const Query q = b.Build();
  const Selection sel =
      EvaluatePredicates(*ds_->db, ds_->schema, q, ds_->schema.TableId("info_type"));
  EXPECT_EQ(sel.count, 1u);
}

TEST_F(EngineFixture, PredicateEvalContains) {
  QueryBuilder b(ds_->schema, *ds_->db, "q");
  b.Rel("keyword").PredStr("keyword", "keyword", PredOp::kContains, "love");
  const Query q = b.Build();
  const Selection sel =
      EvaluatePredicates(*ds_->db, ds_->schema, q, ds_->schema.TableId("keyword"));
  EXPECT_GT(sel.count, 0u);
  // Every matched row really contains the needle.
  const storage::Table& t = ds_->db->table("keyword");
  const storage::Column& col = t.ColumnByName("keyword");
  for (size_t row = 0; row < sel.mask.size(); ++row) {
    if (sel.mask[row]) {
      EXPECT_NE(col.StringAt(row).find("love"), std::string::npos);
    }
  }
}

TEST_F(EngineFixture, PredicateEvalRange) {
  QueryBuilder b(ds_->schema, *ds_->db, "q");
  b.Rel("title")
      .Pred("title", "production_year", PredOp::kGe, 1990)
      .Pred("title", "production_year", PredOp::kLe, 1999);
  const Query q = b.Build();
  const Selection sel =
      EvaluatePredicates(*ds_->db, ds_->schema, q, ds_->schema.TableId("title"));
  const storage::Column& year = ds_->db->table("title").ColumnByName("production_year");
  size_t expected = 0;
  for (size_t r = 0; r < year.size(); ++r) {
    if (year.CodeAt(r) >= 1990 && year.CodeAt(r) <= 1999) ++expected;
  }
  EXPECT_EQ(sel.count, expected);
}

TEST_F(EngineFixture, OracleMatchesBruteForceTwoWay) {
  QueryBuilder b(ds_->schema, *ds_->db, "q");
  b.JoinFk("movie_keyword", "keyword")
      .PredStr("keyword", "keyword", PredOp::kContains, "love");
  Query q = b.Build();
  q.id = 900;
  CardinalityOracle oracle(ds_->schema, *ds_->db);
  const double expected =
      BruteForceJoin(*ds_->db, ds_->schema, q, "movie_keyword", "keyword");
  EXPECT_DOUBLE_EQ(oracle.Cardinality(q, 0b11), expected);
}

TEST_F(EngineFixture, OracleOrderIndependence) {
  QueryBuilder b(ds_->schema, *ds_->db, "q");
  b.JoinFk("movie_info", "title")
      .JoinFk("movie_info", "info_type")
      .JoinFk("movie_keyword", "title")
      .JoinFk("movie_keyword", "keyword")
      .PredStr("info_type", "info", PredOp::kEq, "genres")
      .PredStr("movie_info", "info", PredOp::kEq, "romance")
      .PredStr("keyword", "keyword", PredOp::kContains, "love");
  Query q = b.Build();
  q.id = 901;
  // Two oracles must agree; also full-mask value must not depend on how we
  // warm the cache (subset-first vs full-first).
  CardinalityOracle o1(ds_->schema, *ds_->db);
  CardinalityOracle o2(ds_->schema, *ds_->db);
  const uint64_t full = (1ULL << q.num_relations()) - 1;
  const double direct = o1.Cardinality(q, full);
  for (size_t i = 0; i < q.num_relations(); ++i) {
    o2.Cardinality(q, 1ULL << i);
  }
  EXPECT_DOUBLE_EQ(o2.Cardinality(q, full), direct);
  EXPECT_GT(direct, 0.0);
}

TEST_F(EngineFixture, OracleCorrelationVisible) {
  // Aligned genre/keyword pair should have much larger cardinality than a
  // cross pair (the Table 2 property of the generated data).
  auto count_pair = [&](const std::string& genre, const std::string& stem, int id) {
    QueryBuilder b(ds_->schema, *ds_->db, "q");
    b.JoinFk("movie_info", "title")
        .JoinFk("movie_info", "info_type")
        .JoinFk("movie_keyword", "title")
        .JoinFk("movie_keyword", "keyword")
        .PredStr("info_type", "info", PredOp::kEq, "genres")
        .PredStr("movie_info", "info", PredOp::kEq, genre)
        .PredStr("keyword", "keyword", PredOp::kContains, stem);
    Query q = b.Build();
    q.id = id;
    CardinalityOracle oracle(ds_->schema, *ds_->db);
    return oracle.Cardinality(q, (1ULL << q.num_relations()) - 1);
  };
  const double aligned = count_pair("romance", "love", 902);
  const double cross = count_pair("horror", "love", 903);
  EXPECT_GT(aligned, cross * 2.0);
}

TEST_F(EngineFixture, OracleSingleRelationIsFilteredCount) {
  QueryBuilder b(ds_->schema, *ds_->db, "q");
  b.JoinFk("cast_info", "name").Pred("name", "gender", PredOp::kEq, 0);
  Query q = b.Build();
  q.id = 904;
  CardinalityOracle oracle(ds_->schema, *ds_->db);
  const int name_pos = q.RelationIndex(ds_->schema.TableId("name"));
  const double card = oracle.Cardinality(q, 1ULL << name_pos);
  const Selection sel =
      EvaluatePredicates(*ds_->db, ds_->schema, q, ds_->schema.TableId("name"));
  EXPECT_DOUBLE_EQ(card, static_cast<double>(sel.count));
}

// ---- Latency model ------------------------------------------------------

Query MakeTwoWayQuery(const datagen::Dataset& ds, int id) {
  QueryBuilder b(ds.schema, *ds.db, "two-way");
  b.JoinFk("movie_keyword", "keyword")
      .PredStr("keyword", "keyword", PredOp::kContains, "love");
  Query q = b.Build();
  q.id = id;
  return q;
}

TEST_F(EngineFixture, LatencyIndexNljBeatsNaiveLoopForSelectiveOuter) {
  Query q = MakeTwoWayQuery(*ds_, 905);
  CardinalityOracle oracle(ds_->schema, *ds_->db);
  LatencyModel model(GetEngineProfile(EngineKind::kPostgres), &oracle);
  const int kw = ds_->schema.TableId("keyword");
  const int mk = ds_->schema.TableId("movie_keyword");
  const uint64_t kw_bit = 1ULL << q.RelationIndex(kw);
  const uint64_t mk_bit = 1ULL << q.RelationIndex(mk);

  PartialPlan index_nlj;
  index_nlj.query = &q;
  index_nlj.roots.push_back(MakeJoin(JoinOp::kLoop, MakeScan(ScanOp::kTable, kw, kw_bit),
                                     MakeScan(ScanOp::kIndex, mk, mk_bit)));
  PartialPlan naive;
  naive.query = &q;
  naive.roots.push_back(MakeJoin(JoinOp::kLoop, MakeScan(ScanOp::kTable, kw, kw_bit),
                                 MakeScan(ScanOp::kTable, mk, mk_bit)));
  const double t_index = model.Execute(q, index_nlj).latency_ms;
  const double t_naive = model.Execute(q, naive).latency_ms;
  EXPECT_LT(t_index, t_naive / 5.0);  // Index NLJ must be far cheaper.
}

TEST_F(EngineFixture, LatencyHashJoinPrefersSmallBuildSide) {
  Query q = MakeTwoWayQuery(*ds_, 906);
  CardinalityOracle oracle(ds_->schema, *ds_->db);
  LatencyModel model(GetEngineProfile(EngineKind::kPostgres), &oracle);
  const int kw = ds_->schema.TableId("keyword");
  const int mk = ds_->schema.TableId("movie_keyword");
  const uint64_t kw_bit = 1ULL << q.RelationIndex(kw);
  const uint64_t mk_bit = 1ULL << q.RelationIndex(mk);

  // keyword (small, filtered) as build vs movie_keyword (large) as build.
  PartialPlan small_build;
  small_build.query = &q;
  small_build.roots.push_back(
      MakeJoin(JoinOp::kHash, MakeScan(ScanOp::kTable, mk, mk_bit),
               MakeScan(ScanOp::kTable, kw, kw_bit)));
  PartialPlan big_build;
  big_build.query = &q;
  big_build.roots.push_back(
      MakeJoin(JoinOp::kHash, MakeScan(ScanOp::kTable, kw, kw_bit),
               MakeScan(ScanOp::kTable, mk, mk_bit)));
  EXPECT_LT(model.Execute(q, small_build).latency_ms,
            model.Execute(q, big_build).latency_ms);
}

TEST_F(EngineFixture, LatencyMergeJoinCheaperWhenInputSorted) {
  Query q = MakeTwoWayQuery(*ds_, 907);
  CardinalityOracle oracle(ds_->schema, *ds_->db);
  LatencyModel model(GetEngineProfile(EngineKind::kPostgres), &oracle);
  const int kw = ds_->schema.TableId("keyword");
  const int mk = ds_->schema.TableId("movie_keyword");
  const uint64_t kw_bit = 1ULL << q.RelationIndex(kw);
  const uint64_t mk_bit = 1ULL << q.RelationIndex(mk);

  // Index scan on movie_keyword.keyword_id delivers sorted input for the
  // merge; table scan does not and must sort.
  PartialPlan sorted_in;
  sorted_in.query = &q;
  sorted_in.roots.push_back(
      MakeJoin(JoinOp::kMerge, MakeScan(ScanOp::kTable, kw, kw_bit),
               MakeScan(ScanOp::kIndex, mk, mk_bit)));
  PartialPlan unsorted_in;
  unsorted_in.query = &q;
  unsorted_in.roots.push_back(
      MakeJoin(JoinOp::kMerge, MakeScan(ScanOp::kTable, kw, kw_bit),
               MakeScan(ScanOp::kTable, mk, mk_bit)));
  const NodeExec sorted_exec = model.EvaluateNode(q, *sorted_in.roots[0]);
  const NodeExec unsorted_exec = model.EvaluateNode(q, *unsorted_in.roots[0]);
  EXPECT_LT(sorted_exec.work, unsorted_exec.work);
}

TEST_F(EngineFixture, LatencyDeterministicAndCached) {
  Query q = MakeTwoWayQuery(*ds_, 908);
  ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  const int kw = ds_->schema.TableId("keyword");
  const int mk = ds_->schema.TableId("movie_keyword");
  PartialPlan p;
  p.query = &q;
  p.roots.push_back(MakeJoin(
      JoinOp::kHash, MakeScan(ScanOp::kTable, mk, 1ULL << q.RelationIndex(mk)),
      MakeScan(ScanOp::kTable, kw, 1ULL << q.RelationIndex(kw))));
  const double t1 = engine.ExecutePlan(q, p);
  const double t2 = engine.ExecutePlan(q, p);
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_EQ(engine.num_executions(), 2u);
  EXPECT_EQ(engine.num_distinct_plans(), 1u);
  EXPECT_NEAR(engine.simulated_execution_ms(), t1 + t2, 1e-9);
}

TEST_F(EngineFixture, EnginesDifferInLatency) {
  Query q = MakeTwoWayQuery(*ds_, 909);
  const int kw = ds_->schema.TableId("keyword");
  const int mk = ds_->schema.TableId("movie_keyword");
  PartialPlan p;
  p.query = &q;
  p.roots.push_back(MakeJoin(
      JoinOp::kHash, MakeScan(ScanOp::kTable, mk, 1ULL << q.RelationIndex(mk)),
      MakeScan(ScanOp::kTable, kw, 1ULL << q.RelationIndex(kw))));
  ExecutionEngine pg(ds_->schema, *ds_->db, EngineKind::kPostgres);
  ExecutionEngine lite(ds_->schema, *ds_->db, EngineKind::kSqlite);
  ExecutionEngine mssql(ds_->schema, *ds_->db, EngineKind::kMssql);
  const double t_pg = pg.ExecutePlan(q, p);
  const double t_lite = lite.ExecutePlan(q, p);
  const double t_mssql = mssql.ExecutePlan(q, p);
  EXPECT_NE(t_pg, t_lite);
  // The commercial engine is faster on the same hash-join plan.
  EXPECT_LT(t_mssql, t_pg);
  // SQLite's weak hash join is slower.
  EXPECT_GT(t_lite, t_pg);
}

TEST_F(EngineFixture, IndexScanUsableRules) {
  QueryBuilder b(ds_->schema, *ds_->db, "q");
  b.JoinFk("movie_keyword", "keyword");
  const Query q = b.Build();
  // movie_keyword.keyword_id is indexed -> usable; keyword has PK index on
  // id which is a join column -> usable.
  EXPECT_TRUE(IndexScanUsable(ds_->schema, q, ds_->schema.TableId("movie_keyword")));
  EXPECT_TRUE(IndexScanUsable(ds_->schema, q, ds_->schema.TableId("keyword")));

  QueryBuilder b2(ds_->schema, *ds_->db, "q2");
  b2.Rel("name").Pred("name", "gender", PredOp::kEq, 1);
  const Query q2 = b2.Build();
  // gender is not indexed and there are no joins.
  EXPECT_FALSE(IndexScanUsable(ds_->schema, q2, ds_->schema.TableId("name")));
}

}  // namespace
}  // namespace neo::engine
