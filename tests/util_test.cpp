#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "src/util/arena.h"
#include "src/util/flat_hash_set.h"
#include "src/util/latency_histogram.h"
#include "src/util/lru_map.h"
#include "src/util/rng.h"
#include "src/util/sharded_lru.h"
#include "src/util/status.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"

namespace neo::util {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit.
}

TEST(RngTest, GaussianMoments) {
  Rng rng(3);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ForkIndependentOfParentDraws) {
  Rng a(9);
  Rng fork1 = a.Fork(5);
  a.Next();
  a.Next();
  Rng b(9);
  Rng fork2 = b.Fork(5);
  EXPECT_EQ(fork1.Next(), fork2.Next());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(4);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWeightedRespectsWeights) {
  Rng rng(5);
  std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.SampleWeighted(w), 1u);
}

TEST(ZipfTest, SkewZeroIsUniformish) {
  Rng rng(6);
  Zipf z(10, 0.0, 0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) counts[z.Sample(rng)]++;
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(ZipfTest, HighSkewConcentrates) {
  Rng rng(7);
  Zipf z(100, 1.5, 0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) counts[z.Sample(rng)]++;
  // Rank 0 should dominate rank 50 heavily.
  EXPECT_GT(counts[0], counts[50] * 20);
}

TEST(ZipfTest, ShuffledPermutationStillCoversDomain) {
  Rng rng(8);
  Zipf z(16, 1.0, 77);
  std::set<size_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(z.Sample(rng));
  EXPECT_GT(seen.size(), 12u);
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(s.ToString().find("bad"), std::string::npos);
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ContainsAndLower) {
  EXPECT_TRUE(Contains("hello world", "lo w"));
  EXPECT_FALSE(Contains("hello", "z"));
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
}

TEST(ArenaTest, PointerStabilityAndAlignmentWithinOneRequest) {
  Arena a;
  // Force several chained blocks; earlier pointers must stay valid and
  // hold their bytes (no block is ever reallocated mid-request).
  std::vector<std::pair<char*, size_t>> chunks;
  for (size_t i = 0; i < 8; ++i) {
    const size_t bytes = 3000 + i * 977;
    char* p = static_cast<char*>(a.Allocate(bytes));
    std::fill(p, p + bytes, static_cast<char>('a' + i));
    chunks.push_back({p, bytes});
  }
  for (size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first[0], static_cast<char>('a' + i));
    EXPECT_EQ(chunks[i].first[chunks[i].second - 1], static_cast<char>('a' + i));
  }
  double* d = a.AllocateArray<double>(5);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double), 0u);
  float* f = static_cast<float*>(a.Allocate(4, 64));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(f) % 64, 0u);
}

TEST(ArenaTest, ResetCoalescesToOneHighWaterBlockThenNeverAllocates) {
  Arena a;
  auto request = [&] {  // ~20 KiB across several allocations.
    for (int i = 0; i < 5; ++i) a.Allocate(4000);
  };
  request();
  EXPECT_GE(a.peak_bytes(), 20000u);
  const size_t peak_after_warmup = a.peak_bytes();

  // The first Reset coalesces the chain into one block >= the high-water
  // mark; identical requests are then served with ZERO new heap blocks.
  a.Reset();
  EXPECT_GE(a.capacity_bytes(), peak_after_warmup);
  const uint64_t blocks_after_coalesce = a.heap_blocks();
  for (int round = 0; round < 10; ++round) {
    request();
    a.Reset();
  }
  EXPECT_EQ(a.heap_blocks(), blocks_after_coalesce);
  EXPECT_EQ(a.peak_bytes(), peak_after_warmup);

  // Outgrowing the previous peak chains a new block (pointer stability),
  // and the NEXT Reset re-coalesces to the new high-water mark.
  a.Allocate(2 * peak_after_warmup);
  EXPECT_GT(a.heap_blocks(), blocks_after_coalesce);
  a.Reset();
  EXPECT_GE(a.capacity_bytes(), 2 * peak_after_warmup);
  const uint64_t blocks_after_regrow = a.heap_blocks();
  a.Allocate(2 * peak_after_warmup);
  a.Reset();
  EXPECT_EQ(a.heap_blocks(), blocks_after_regrow);
}

TEST(ArenaTest, MoveTransfersStorage) {
  Arena a;
  char* p = static_cast<char*>(a.Allocate(100));
  p[0] = 'x';
  const size_t peak = a.peak_bytes();
  Arena b = std::move(a);
  EXPECT_EQ(p[0], 'x');  // Storage ownership moved, bytes intact.
  EXPECT_EQ(b.peak_bytes(), peak);
}

TEST(FlatHashSet64Test, InsertContainsAndDuplicates) {
  FlatHashSet64 s;
  EXPECT_FALSE(s.Contains(42));
  EXPECT_TRUE(s.Insert(42));
  EXPECT_FALSE(s.Insert(42));
  EXPECT_TRUE(s.Contains(42));
  EXPECT_EQ(s.size(), 1u);
  // Key 0 is valid despite doubling as the empty-slot sentinel.
  EXPECT_FALSE(s.Contains(0));
  EXPECT_TRUE(s.Insert(0));
  EXPECT_FALSE(s.Insert(0));
  EXPECT_TRUE(s.Contains(0));
  EXPECT_EQ(s.size(), 2u);
}

TEST(FlatHashSet64Test, GrowthPreservesMembershipAndClearKeepsCapacity) {
  FlatHashSet64 s;
  Rng rng(5);
  std::set<uint64_t> ref;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t k = rng.Next();
    EXPECT_EQ(s.Insert(k), ref.insert(k).second) << "key " << k;
  }
  EXPECT_EQ(s.size(), ref.size());
  for (uint64_t k : ref) EXPECT_TRUE(s.Contains(k));
  // Linear probing must also report absence correctly.
  for (int i = 0; i < 1000; ++i) {
    const uint64_t k = rng.Next();
    EXPECT_EQ(s.Contains(k), ref.count(k) != 0);
  }
  const size_t cap = s.Capacity();
  s.Clear();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.Capacity(), cap);  // Clear never frees the slot array.
  for (uint64_t k : ref) EXPECT_FALSE(s.Contains(k));
  EXPECT_TRUE(s.Insert(123));
  EXPECT_EQ(s.size(), 1u);
}

TEST(HashTest, MixAndCombineStable) {
  EXPECT_EQ(Mix64(123), Mix64(123));
  EXPECT_NE(Mix64(123), Mix64(124));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(LruMapTest, FindMissesOnEmptyAndAfterClear) {
  LruMap<uint64_t, float> m;
  m.Clear(4);
  EXPECT_EQ(m.Find(1), nullptr);
  EXPECT_FALSE(m.Insert(1, 1.5f));
  ASSERT_NE(m.Find(1), nullptr);
  m.Clear(4);
  EXPECT_EQ(m.Find(1), nullptr);
  EXPECT_EQ(m.size(), 0u);
}

TEST(LruMapTest, EvictsLeastRecentlyUsedPastCap) {
  LruMap<int, int> m;
  m.Clear(3);
  EXPECT_FALSE(m.Insert(1, 10));
  EXPECT_FALSE(m.Insert(2, 20));
  EXPECT_FALSE(m.Insert(3, 30));
  EXPECT_TRUE(m.Insert(4, 40));  // Evicts 1 (least recently used).
  EXPECT_EQ(m.Find(1), nullptr);
  EXPECT_EQ(m.size(), 3u);
  ASSERT_NE(m.Find(2), nullptr);
  EXPECT_EQ(*m.Find(2), 20);
}

TEST(LruMapTest, FindTouchesRecency) {
  LruMap<int, int> m;
  m.Clear(2);
  m.Insert(1, 10);
  m.Insert(2, 20);
  ASSERT_NE(m.Find(1), nullptr);  // 1 becomes most recent; 2 is now LRU.
  EXPECT_TRUE(m.Insert(3, 30));   // Evicts 2, not 1.
  EXPECT_NE(m.Find(1), nullptr);
  EXPECT_EQ(m.Find(2), nullptr);
  EXPECT_NE(m.Find(3), nullptr);
}

TEST(LruMapTest, InsertOverwritesExistingKeyWithoutEviction) {
  LruMap<int, int> m;
  m.Clear(2);
  m.Insert(1, 10);
  m.Insert(2, 20);
  EXPECT_FALSE(m.Insert(1, 11));  // Overwrite: no eviction, touches 1.
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(*m.Find(1), 11);
  EXPECT_TRUE(m.Insert(3, 30));  // 2 is LRU now (1 was touched by overwrite).
  EXPECT_EQ(m.Find(2), nullptr);
  EXPECT_NE(m.Find(1), nullptr);
}

TEST(LruMapTest, CapZeroIsUnbounded) {
  LruMap<int, int> m;
  m.Clear(0);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(m.Insert(i, i));
  EXPECT_EQ(m.size(), 1000u);
  for (int i = 0; i < 1000; ++i) ASSERT_NE(m.Find(i), nullptr);
}

TEST(LruMapTest, ValuePointersStableAcrossFindsAndInserts) {
  // The activation cache holds Find() pointers across further Finds and
  // non-evicting Inserts within one batch; they must stay valid.
  LruMap<int, std::vector<float>> m;
  m.Clear(0);
  m.Insert(1, {1.0f, 2.0f});
  const std::vector<float>* p = m.Find(1);
  ASSERT_NE(p, nullptr);
  const float* data = p->data();
  for (int i = 2; i < 200; ++i) m.Insert(i, {static_cast<float>(i)});
  for (int i = 2; i < 200; ++i) ASSERT_NE(m.Find(i), nullptr);
  EXPECT_EQ(m.Find(1)->data(), data);
  EXPECT_FLOAT_EQ((*m.Find(1))[1], 2.0f);
}

TEST(LruMapTest, MoveTransfersEntries) {
  LruMap<int, int> a;
  a.Clear(8);
  a.Insert(1, 10);
  LruMap<int, int> b = std::move(a);
  ASSERT_NE(b.Find(1), nullptr);
  EXPECT_EQ(*b.Find(1), 10);
  EXPECT_EQ(b.capacity(), 8u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const int64_t n = 10000;
  std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, n, /*max_participants=*/8, /*grain=*/7,
                   [&](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) {
                       hits[static_cast<size_t>(i)].fetch_add(1);
                     }
                   });
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleParticipantRunsInline) {
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 100, /*max_participants=*/1, /*grain=*/0,
                   [&](int64_t lo, int64_t hi) {
                     EXPECT_EQ(std::this_thread::get_id(), caller);
                     EXPECT_EQ(lo, 0);
                     EXPECT_EQ(hi, 100);
                     calls.fetch_add(1);
                   });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, MoreShardsThanWorkersStillCompletes) {
  // Shard count follows max_participants, not the worker count: the caller
  // (plus any workers) steals through every shard. ThreadPool(0) makes the
  // caller the only participant, exercising the steal loop deterministically.
  ThreadPool pool(0);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 1000, /*max_participants=*/8, /*grain=*/3,
                   [&](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
                   });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 8, /*max_participants=*/4, /*grain=*/1,
                   [&](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) {
                       pool.ParallelFor(0, 100, /*max_participants=*/4, /*grain=*/10,
                                        [&](int64_t jlo, int64_t jhi) {
                                          total.fetch_add(jhi - jlo);
                                        });
                     }
                   });
  EXPECT_EQ(total.load(), 8 * 100);
}

TEST(ThreadPoolTest, UnevenWorkIsStolen) {
  // One shard carries almost all the work; stealing must still finish it.
  ThreadPool pool(3);
  std::atomic<int> slow_done{0};
  pool.ParallelFor(0, 64, /*max_participants=*/4, /*grain=*/1,
                   [&](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) {
                       if (i < 8) {
                         // Simulated heavy items in the first shard.
                         volatile double x = 0.0;
                         for (int k = 0; k < 20000; ++k) x += std::sqrt(k + 1.0);
                         (void)x;
                       }
                       slow_done.fetch_add(1);
                     }
                   });
  EXPECT_EQ(slow_done.load(), 64);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int64_t> count{0};
  ThreadPool::Global().ParallelFor(0, 256, /*max_participants=*/4, /*grain=*/0,
                                   [&](int64_t lo, int64_t hi) {
                                     count.fetch_add(hi - lo);
                                   });
  EXPECT_EQ(count.load(), 256);
  EXPECT_GE(ThreadPool::Global().parallelism(), 1);
}

TEST(LatencyHistogramTest, ExactAggregatesAndBoundedPercentiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0.0);

  std::vector<double> samples;
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) samples.push_back(rng.NextUniform(0.01, 250.0));
  double sum = 0.0, mn = samples[0], mx = samples[0];
  for (double s : samples) {
    h.Record(s);
    sum += s;
    mn = std::min(mn, s);
    mx = std::max(mx, s);
  }
  EXPECT_EQ(h.count(), samples.size());
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  EXPECT_DOUBLE_EQ(h.min(), mn);
  EXPECT_DOUBLE_EQ(h.max(), mx);
  EXPECT_DOUBLE_EQ(h.mean(), sum / static_cast<double>(samples.size()));
  // p100 clamps to the exact observed max; p0 reports the min's bucket.
  EXPECT_DOUBLE_EQ(h.Percentile(100), mx);
  constexpr double kBucketWidth = 1.0746;  // 10^(1/32), ~7.46%.
  EXPECT_GE(h.Percentile(0), mn);
  EXPECT_LE(h.Percentile(0), mn * kBucketWidth);

  // Quantiles are within one bucket width of the true sample quantile, on
  // the upper side (bucket upper edge).
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {50.0, 95.0, 99.0}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    const double truth = sorted[rank - 1];
    const double est = h.Percentile(p);
    EXPECT_GE(est, truth) << "p" << p;
    EXPECT_LE(est, truth * kBucketWidth) << "p" << p;
  }
}

TEST(LatencyHistogramTest, PercentilesAreMonotoneAndClamped) {
  LatencyHistogram h;
  for (double v : {0.5, 1.0, 2.0, 4.0, 8.0}) h.Record(v);
  double prev = h.Percentile(0);
  for (double p = 5; p <= 100; p += 5) {
    const double cur = h.Percentile(p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_LE(h.Percentile(100), h.max());
  EXPECT_GE(h.Percentile(0), h.min());
}

TEST(LatencyHistogramTest, UnderflowOverflowAndNaNAreCaptured) {
  LatencyHistogram h;
  h.Record(1e-9);  // Below kMinTracked -> underflow bucket.
  h.Record(1e9);   // Above the decade range -> overflow bucket.
  EXPECT_EQ(h.count(), 2u);
  // The overflow-bucket quantile clamps to the exact max.
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1e9);
  EXPECT_DOUBLE_EQ(h.min(), 1e-9);
  EXPECT_EQ(LatencyHistogram::BucketIndex(std::nan("")), 0);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1e9),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogramTest, MergeEqualsCombinedRecording) {
  // The per-thread-then-Merge aggregation contract: a merged histogram is
  // indistinguishable from one fed the concatenated samples.
  LatencyHistogram a, b, combined;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.NextUniform(0.002, 5000.0);
    ((i % 2 == 0) ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  // Sums accumulate in different orders (per-thread then merged), so compare
  // to rounding, not bitwise.
  EXPECT_NEAR(a.sum(), combined.sum(), 1e-9 * combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (double p = 0; p <= 100; p += 2.5) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), combined.Percentile(p)) << "p" << p;
  }
}

TEST(ShardedLruMapTest, InsertLookupAndExactCounters) {
  ShardedLruMap<uint64_t, int> map(/*cap=*/1024, /*shards=*/4);
  EXPECT_EQ(map.num_shards(), 4);
  int out = 0;
  EXPECT_FALSE(map.Lookup(7, &out));
  EXPECT_FALSE(map.Insert(7, 42));
  EXPECT_TRUE(map.Lookup(7, &out));
  EXPECT_EQ(out, 42);
  // Overwrite touches, not duplicates.
  map.Insert(7, 43);
  EXPECT_TRUE(map.Lookup(7, &out));
  EXPECT_EQ(out, 43);
  const ShardedLruStats s = map.TotalStats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(ShardedLruMapTest, ShardsRoundUpToPowerOfTwo) {
  ShardedLruMap<uint64_t, int> map(/*cap=*/16, /*shards=*/5);
  EXPECT_EQ(map.num_shards(), 8);
}

TEST(ShardedLruMapTest, CapacitySplitsAcrossShardsAndEvicts) {
  // One shard: global exact LRU, so the eviction order is fully pinned.
  ShardedLruMap<uint64_t, int> map(/*cap=*/2, /*shards=*/1);
  map.Insert(1, 1);
  map.Insert(2, 2);
  EXPECT_TRUE(map.Insert(3, 3));  // Evicts key 1 (least recent).
  int out = 0;
  EXPECT_FALSE(map.Lookup(1, &out));
  EXPECT_TRUE(map.Lookup(2, &out));
  EXPECT_TRUE(map.Lookup(3, &out));
  const ShardedLruStats s = map.TotalStats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);

  // Clear re-splits the cap and zeroes the counters.
  map.Clear(/*cap=*/8);
  EXPECT_FALSE(map.Lookup(2, &out));
  const ShardedLruStats cleared = map.TotalStats();
  EXPECT_EQ(cleared.entries, 0u);
  EXPECT_EQ(cleared.evictions, 0u);
  EXPECT_EQ(cleared.hits, 0u);
}

TEST(ShardedLruMapTest, VisitCopiesOutUnderTheLock) {
  ShardedLruMap<uint64_t, std::vector<int>> map(/*cap=*/64, /*shards=*/2);
  map.Insert(5, {1, 2, 3});
  std::vector<int> copy;
  EXPECT_TRUE(map.Visit(5, [&](const std::vector<int>& v) { copy = v; }));
  EXPECT_EQ(copy, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(map.Visit(6, [&](const std::vector<int>&) { ADD_FAILURE(); }));
}

TEST(ShardedLruMapTest, ConcurrentMixedUseKeepsCountsConsistent) {
  ShardedLruMap<uint64_t, uint64_t> map(/*cap=*/256, /*shards=*/8);
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::atomic<int> wrong_values{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kOps; ++i) {
        const uint64_t key = rng.Next() % 512;
        uint64_t out = 0;
        if (map.Lookup(key, &out)) {
          // Values are pure functions of the key; a torn/stale read would
          // surface here (and as a tsan report in the sanitizer arm).
          if (out != key * 3) wrong_values.fetch_add(1);
        } else {
          map.Insert(key, key * 3);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong_values.load(), 0);
  const ShardedLruStats s = map.TotalStats();
  EXPECT_EQ(s.hits + s.misses, static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_LE(s.entries, 256u);
}

}  // namespace
}  // namespace neo::util
