#include <gtest/gtest.h>

#include "src/datagen/corp_gen.h"
#include "src/datagen/imdb_gen.h"
#include "src/datagen/tpch_gen.h"
#include "src/query/corp_workload.h"
#include "src/query/job_workload.h"
#include "src/query/tpch_workload.h"

namespace neo::datagen {
namespace {

TEST(ImdbGenTest, SchemaAndVolumes) {
  GenOptions opt;
  opt.scale = 0.05;
  ImdbGenStats stats;
  Dataset ds = GenerateImdb(opt, &stats);
  EXPECT_EQ(ds.schema.num_tables(), 9);
  EXPECT_GT(ds.db->table("title").num_rows(), 100u);
  EXPECT_GT(ds.db->table("movie_keyword").num_rows(),
            ds.db->table("title").num_rows());
  EXPECT_EQ(ds.db->table("info_type").num_rows(), 4u);
  EXPECT_GT(stats.num_keywords, 0);
  // FK integrity: every movie_keyword.movie_id exists in title.
  const auto& mk = ds.db->table("movie_keyword").ColumnByName("movie_id");
  const size_t n_title = ds.db->table("title").num_rows();
  for (size_t r = 0; r < mk.size(); ++r) {
    ASSERT_GE(mk.CodeAt(r), 0);
    ASSERT_LT(mk.CodeAt(r), static_cast<int64_t>(n_title));
  }
}

TEST(ImdbGenTest, Deterministic) {
  GenOptions opt;
  opt.scale = 0.03;
  Dataset a = GenerateImdb(opt);
  Dataset b = GenerateImdb(opt);
  EXPECT_EQ(a.db->table("cast_info").num_rows(), b.db->table("cast_info").num_rows());
  const auto& ca = a.db->table("cast_info").ColumnByName("person_id");
  const auto& cb = b.db->table("cast_info").ColumnByName("person_id");
  EXPECT_EQ(ca.codes(), cb.codes());
}

TEST(ImdbGenTest, AllKeywordStemsPresent) {
  GenOptions opt;
  opt.scale = 0.02;
  Dataset ds = GenerateImdb(opt);
  const auto& kw = ds.db->table("keyword").ColumnByName("keyword");
  for (int g = 0; g < static_cast<int>(ImdbGenreNames().size()); ++g) {
    for (const auto& stem : ImdbKeywordStems(g)) {
      EXPECT_FALSE(kw.CodesContaining(stem).empty()) << stem;
    }
  }
}

TEST(ImdbGenTest, IndexesBuilt) {
  GenOptions opt;
  opt.scale = 0.02;
  Dataset ds = GenerateImdb(opt);
  EXPECT_TRUE(ds.db->table("movie_keyword").HasIndex("movie_id"));
  EXPECT_TRUE(ds.db->table("movie_keyword").HasIndex("keyword_id"));
  EXPECT_TRUE(ds.db->table("title").HasIndex("id"));  // PK
}

TEST(TpchGenTest, SchemaAndUniformity) {
  GenOptions opt;
  opt.scale = 0.1;
  Dataset ds = GenerateTpch(opt);
  EXPECT_EQ(ds.schema.num_tables(), 8);
  EXPECT_EQ(ds.db->table("region").num_rows(), 5u);
  EXPECT_EQ(ds.db->table("nation").num_rows(), 25u);
  EXPECT_GT(ds.db->table("lineitem").num_rows(), ds.db->table("orders").num_rows());
  // l_quantity should be near-uniform over [1, 50].
  const auto& qty = ds.db->table("lineitem").ColumnByName("l_quantity");
  std::vector<int> counts(51, 0);
  for (size_t r = 0; r < qty.size(); ++r) counts[static_cast<size_t>(qty.CodeAt(r))]++;
  const double expected = static_cast<double>(qty.size()) / 50.0;
  for (int v = 1; v <= 50; ++v) {
    EXPECT_NEAR(counts[static_cast<size_t>(v)], expected, expected * 0.5);
  }
}

TEST(CorpGenTest, StarSchemaAndSkew) {
  GenOptions opt;
  opt.scale = 0.1;
  Dataset ds = GenerateCorp(opt);
  EXPECT_EQ(ds.schema.num_tables(), 6);
  const auto& user = ds.db->table("fact_events").ColumnByName("user_id");
  // Zipf skew: the hottest user appears far more than average.
  std::unordered_map<int64_t, int> counts;
  for (size_t r = 0; r < user.size(); ++r) counts[user.CodeAt(r)]++;
  int max_count = 0;
  for (const auto& [k, v] : counts) max_count = std::max(max_count, v);
  const double avg =
      static_cast<double>(user.size()) / static_cast<double>(counts.size());
  EXPECT_GT(max_count, avg * 10);
}

// ---- Workloads -----------------------------------------------------------

class WorkloadFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GenOptions opt;
    opt.scale = 0.05;
    imdb_ = new Dataset(GenerateImdb(opt));
    tpch_ = new Dataset(GenerateTpch(opt));
    corp_ = new Dataset(GenerateCorp(opt));
  }
  static void TearDownTestSuite() {
    delete imdb_;
    delete tpch_;
    delete corp_;
  }
  static Dataset* imdb_;
  static Dataset* tpch_;
  static Dataset* corp_;
};

Dataset* WorkloadFixture::imdb_ = nullptr;
Dataset* WorkloadFixture::tpch_ = nullptr;
Dataset* WorkloadFixture::corp_ = nullptr;

TEST_F(WorkloadFixture, JobWorkloadShape) {
  const auto wl = query::MakeJobWorkload(imdb_->schema, *imdb_->db);
  EXPECT_EQ(wl.size(), 132u);  // 33 families x 4 variants.
  size_t max_rels = 0;
  for (const auto& q : wl.queries()) {
    EXPECT_GE(q.num_relations(), 2u);
    EXPECT_GE(q.num_joins(), q.num_relations() - 1);
    max_rels = std::max(max_rels, q.num_relations());
  }
  EXPECT_EQ(max_rels, 9u);  // The full star: title + 4 arms.
}

TEST_F(WorkloadFixture, JobSplitDeterministicAndDisjoint) {
  const auto wl = query::MakeJobWorkload(imdb_->schema, *imdb_->db);
  const auto s1 = wl.Split(0.8, 99);
  const auto s2 = wl.Split(0.8, 99);
  ASSERT_EQ(s1.train.size(), s2.train.size());
  EXPECT_EQ(s1.train.size(), 106u);
  EXPECT_EQ(s1.test.size(), 26u);
  for (size_t i = 0; i < s1.train.size(); ++i) {
    EXPECT_EQ(s1.train[i]->id, s2.train[i]->id);
  }
  std::set<int> train_ids;
  for (auto* q : s1.train) train_ids.insert(q->id);
  for (auto* q : s1.test) EXPECT_EQ(train_ids.count(q->id), 0u);
}

TEST_F(WorkloadFixture, ExtJobDistinctFromJob) {
  const auto job = query::MakeJobWorkload(imdb_->schema, *imdb_->db);
  const auto ext = query::MakeExtJobWorkload(imdb_->schema, *imdb_->db);
  EXPECT_EQ(ext.size(), 24u);
  // No Ext-JOB query shares its SQL with any JOB query.
  std::set<std::string> job_sql;
  for (const auto& q : job.queries()) job_sql.insert(q.ToSql(imdb_->schema));
  for (const auto& q : ext.queries()) {
    EXPECT_EQ(job_sql.count(q.ToSql(imdb_->schema)), 0u) << q.name;
  }
}

TEST_F(WorkloadFixture, TpchWorkloadTemplateSplit) {
  const auto wl = query::MakeTpchWorkload(tpch_->schema, *tpch_->db, 7, 5);
  EXPECT_EQ(wl.size(), 110u);  // 22 templates x 5.
  const auto split = query::SplitByTemplate(wl, 4, 13);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.train.size(), 90u);
  // No template crosses the split.
  auto tmpl = [](const std::string& n) { return n.substr(0, n.rfind('_')); };
  std::set<std::string> train_tmpl, test_tmpl;
  for (auto* q : split.train) train_tmpl.insert(tmpl(q->name));
  for (auto* q : split.test) test_tmpl.insert(tmpl(q->name));
  for (const auto& t : test_tmpl) EXPECT_EQ(train_tmpl.count(t), 0u);
}

TEST_F(WorkloadFixture, CorpWorkloadShape) {
  const auto wl = query::MakeCorpWorkload(corp_->schema, *corp_->db);
  EXPECT_EQ(wl.size(), 120u);
  for (const auto& q : wl.queries()) {
    EXPECT_GE(q.num_relations(), 2u);
    EXPECT_LE(q.num_relations(), 6u);
  }
}

TEST_F(WorkloadFixture, AllQueriesConnected) {
  for (const auto* ds : {imdb_, tpch_, corp_}) {
    (void)ds;
  }
  const auto job = query::MakeJobWorkload(imdb_->schema, *imdb_->db);
  for (const auto& q : job.queries()) {
    EXPECT_TRUE(q.SubsetConnected((1ULL << q.num_relations()) - 1)) << q.name;
  }
}

}  // namespace
}  // namespace neo::datagen
