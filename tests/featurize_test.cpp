// Featurization tests: paper §3.2 invariants (adjacency encoding, scan-bit
// union, unspecified = table|index), encoding variants, cardinality channel.
#include <gtest/gtest.h>

#include "src/datagen/imdb_gen.h"
#include "src/featurize/featurizer.h"
#include "src/query/builder.h"

namespace neo::featurize {
namespace {

using plan::JoinOp;
using plan::MakeJoin;
using plan::MakeScan;
using plan::PartialPlan;
using plan::ScanOp;
using query::PredOp;
using query::Query;
using query::QueryBuilder;

class FeaturizeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GenOptions opt;
    opt.scale = 0.04;
    ds_ = new datagen::Dataset(datagen::GenerateImdb(opt));
    stats_ = new catalog::Statistics(ds_->schema, *ds_->db);
    hist_ = new optim::HistogramEstimator(ds_->schema, *stats_, *ds_->db);
  }
  static void TearDownTestSuite() {
    delete hist_;
    delete stats_;
    delete ds_;
  }
  static Query ThreeWay(int id) {
    QueryBuilder b(ds_->schema, *ds_->db, "q");
    b.JoinFk("movie_keyword", "title")
        .JoinFk("movie_keyword", "keyword")
        .PredStr("keyword", "keyword", PredOp::kContains, "love")
        .Pred("title", "production_year", PredOp::kGe, 1990);
    Query q = b.Build();
    q.id = id;
    return q;
  }
  static datagen::Dataset* ds_;
  static catalog::Statistics* stats_;
  static optim::HistogramEstimator* hist_;
};

datagen::Dataset* FeaturizeFixture::ds_ = nullptr;
catalog::Statistics* FeaturizeFixture::stats_ = nullptr;
optim::HistogramEstimator* FeaturizeFixture::hist_ = nullptr;

TEST_F(FeaturizeFixture, DimsFor1Hot) {
  Featurizer f(ds_->schema, *ds_->db, {});
  const int t = ds_->schema.num_tables();
  EXPECT_EQ(f.query_dim(), t * (t - 1) / 2 + ds_->schema.num_columns());
  EXPECT_EQ(f.plan_dim(), 3 + 2 * t);
}

TEST_F(FeaturizeFixture, QueryEncodingAdjacencyAndPredicates) {
  Featurizer f(ds_->schema, *ds_->db, {});
  const Query q = ThreeWay(1);
  const nn::Matrix enc = f.EncodeQuery(q);

  // Exactly two join edges set in the adjacency part.
  const int t = ds_->schema.num_tables();
  const int adj = t * (t - 1) / 2;
  float adj_sum = 0;
  for (int i = 0; i < adj; ++i) adj_sum += enc.At(0, i);
  EXPECT_FLOAT_EQ(adj_sum, 2.0f);

  // Predicate slots: exactly the two predicated columns are hot.
  const int kw_gid = ds_->schema.GlobalColumnId("keyword", "keyword");
  const int year_gid = ds_->schema.GlobalColumnId("title", "production_year");
  float pred_sum = 0;
  for (int i = adj; i < f.query_dim(); ++i) pred_sum += enc.At(0, i);
  EXPECT_FLOAT_EQ(pred_sum, 2.0f);
  EXPECT_FLOAT_EQ(enc.At(0, adj + kw_gid), 1.0f);
  EXPECT_FLOAT_EQ(enc.At(0, adj + year_gid), 1.0f);
}

TEST_F(FeaturizeFixture, HistogramEncodingUsesSelectivities) {
  FeaturizerConfig cfg;
  cfg.encoding = PredicateEncoding::kHistogram;
  Featurizer f(ds_->schema, *ds_->db, cfg, hist_);
  const Query q = ThreeWay(2);
  const nn::Matrix enc = f.EncodeQuery(q);
  const int t = ds_->schema.num_tables();
  const int adj = t * (t - 1) / 2;
  const int year_gid = ds_->schema.GlobalColumnId("title", "production_year");
  const float sel = enc.At(0, adj + year_gid);
  EXPECT_GT(sel, 0.0f);
  EXPECT_LT(sel, 1.0f);  // A real selectivity, not a 1-hot bit.
}

TEST_F(FeaturizeFixture, PlanEncodingScanBitsPerPaper) {
  Featurizer f(ds_->schema, *ds_->db, {});
  const Query q = ThreeWay(3);
  PartialPlan p = PartialPlan::Initial(q);

  nn::TreeStructure tree;
  nn::Matrix feats;
  f.EncodePlan(q, p, &tree, &feats);
  ASSERT_EQ(feats.rows(), 3);
  // Unspecified scans: both table and index bits set (paper §3.2).
  for (int i = 0; i < 3; ++i) {
    const plan::PlanNode& leaf = *p.roots[static_cast<size_t>(i)];
    const float* row = feats.Row(i);
    EXPECT_FLOAT_EQ(row[3 + 2 * leaf.table_id], 1.0f);
    EXPECT_FLOAT_EQ(row[3 + 2 * leaf.table_id + 1], 1.0f);
    // No join bits on leaves.
    EXPECT_FLOAT_EQ(row[0] + row[1] + row[2], 0.0f);
  }
}

TEST_F(FeaturizeFixture, PlanEncodingInternalUnion) {
  Featurizer f(ds_->schema, *ds_->db, {});
  const Query q = ThreeWay(4);
  const int mk = ds_->schema.TableId("movie_keyword");
  const int kw = ds_->schema.TableId("keyword");
  const int ti = ds_->schema.TableId("title");
  auto join = MakeJoin(
      JoinOp::kMerge,
      MakeScan(ScanOp::kTable, ti, 1ULL << q.RelationIndex(ti)),
      MakeJoin(JoinOp::kLoop, MakeScan(ScanOp::kTable, kw, 1ULL << q.RelationIndex(kw)),
               MakeScan(ScanOp::kIndex, mk, 1ULL << q.RelationIndex(mk))));
  PartialPlan p;
  p.query = &q;
  p.roots = {join};

  nn::TreeStructure tree;
  nn::Matrix feats;
  f.EncodePlan(q, p, &tree, &feats);
  ASSERT_EQ(feats.rows(), 5);
  // Root (index 0, pre-order): merge join bit + union of all three scans.
  const float* root = feats.Row(0);
  EXPECT_FLOAT_EQ(root[static_cast<int>(JoinOp::kMerge)], 1.0f);
  EXPECT_FLOAT_EQ(root[3 + 2 * ti], 1.0f);      // title table bit
  EXPECT_FLOAT_EQ(root[3 + 2 * kw], 1.0f);      // keyword table bit
  EXPECT_FLOAT_EQ(root[3 + 2 * mk + 1], 1.0f);  // movie_keyword index bit
  EXPECT_FLOAT_EQ(root[3 + 2 * mk], 0.0f);      // not a table scan
  // Tree structure: root children are rows 1 (title leaf) and 2 (loop join).
  EXPECT_EQ(tree.left[0], 1);
  EXPECT_EQ(tree.right[0], 2);
  EXPECT_EQ(tree.left[1], -1);
  EXPECT_EQ(tree.left[2], 3);
  EXPECT_EQ(tree.right[2], 4);
}

TEST_F(FeaturizeFixture, ForestEncodesMultipleRoots) {
  Featurizer f(ds_->schema, *ds_->db, {});
  const Query q = ThreeWay(5);
  const PartialPlan p = PartialPlan::Initial(q);
  nn::TreeStructure tree;
  nn::Matrix feats;
  f.EncodePlan(q, p, &tree, &feats);
  // Three disconnected roots -> all children -1.
  for (size_t i = 0; i < tree.NumNodes(); ++i) {
    EXPECT_EQ(tree.left[i], -1);
    EXPECT_EQ(tree.right[i], -1);
  }
}

TEST_F(FeaturizeFixture, EncodePlanBatchEmitsSubtreeFingerprints) {
  // node_fp rows must align with the packed feature rows (pre-order per
  // plan), equal the plan nodes' subtree_fp, and — the activation-cache
  // contract — agree exactly on the subtrees a parent and its one-leaf-delta
  // child share while differing on the changed node.
  Featurizer f(ds_->schema, *ds_->db, {});
  const Query q = ThreeWay(7);
  const PartialPlan parent = PartialPlan::Initial(q);  // 3 unspecified roots.
  PartialPlan child = parent;
  child.roots[0] = MakeScan(ScanOp::kTable, parent.roots[0]->table_id,
                            parent.roots[0]->rel_mask);
  nn::PlanBatch batch;
  f.EncodePlanBatch(q, {&parent, &child}, &batch);
  ASSERT_EQ(batch.node_fp.size(), batch.forest.NumNodes());
  ASSERT_EQ(batch.node_fp.size(), 6u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(batch.node_fp[static_cast<size_t>(i)], parent.roots[static_cast<size_t>(i)]->subtree_fp);
    EXPECT_EQ(batch.node_fp[static_cast<size_t>(3 + i)], child.roots[static_cast<size_t>(i)]->subtree_fp);
  }
  EXPECT_NE(batch.node_fp[0], batch.node_fp[3]);  // The specified leaf.
  EXPECT_EQ(batch.node_fp[1], batch.node_fp[4]);  // Untouched roots.
  EXPECT_EQ(batch.node_fp[2], batch.node_fp[5]);
  // Same table at different relation positions (different rel_mask) must NOT
  // share a fingerprint: the cardinality channel keys off rel_mask.
  const auto a = MakeScan(ScanOp::kTable, parent.roots[0]->table_id, 1ULL << 0);
  const auto b = MakeScan(ScanOp::kTable, parent.roots[0]->table_id, 1ULL << 1);
  EXPECT_NE(a->subtree_fp, b->subtree_fp);
  EXPECT_EQ(a->hash, b->hash);  // The structural hash deliberately ignores it.
}

TEST_F(FeaturizeFixture, CardChannelAddsDimensionAndReactsToError) {
  engine::CardinalityOracle oracle(ds_->schema, *ds_->db);
  FeaturizerConfig cfg;
  cfg.card_channel = CardChannel::kTrue;
  Featurizer f(ds_->schema, *ds_->db, cfg, hist_, nullptr, &oracle);
  EXPECT_EQ(f.plan_dim(), 3 + 2 * ds_->schema.num_tables() + 1);

  const Query q = ThreeWay(6);
  const PartialPlan p = PartialPlan::Initial(q);
  nn::TreeStructure tree;
  nn::Matrix feats;
  f.EncodePlan(q, p, &tree, &feats);
  const int card_col = f.plan_dim() - 1;
  EXPECT_GT(feats.At(0, card_col), 0.0f);

  // With injected error the channel changes.
  FeaturizerConfig cfg_err = cfg;
  cfg_err.card_error_orders = 2.0;
  Featurizer f_err(ds_->schema, *ds_->db, cfg_err, hist_, nullptr, &oracle);
  nn::Matrix feats_err;
  nn::TreeStructure tree_err;
  f_err.EncodePlan(q, p, &tree_err, &feats_err);
  EXPECT_NE(feats.At(0, card_col), feats_err.At(0, card_col));
}

TEST_F(FeaturizeFixture, RVectorEncodingPopulatesEmbedding) {
  embedding::RowEmbeddingOptions ropt;
  ropt.mode = embedding::RowEmbeddingMode::kJoins;
  ropt.w2v.dim = 8;
  ropt.w2v.epochs = 1;
  embedding::RowEmbedding rvec(ds_->schema, *ds_->db, ropt);

  FeaturizerConfig cfg;
  cfg.encoding = PredicateEncoding::kRVector;
  Featurizer f(ds_->schema, *ds_->db, cfg, nullptr, &rvec);

  const Query q = ThreeWay(7);
  const nn::Matrix enc = f.EncodeQuery(q);
  const int t = ds_->schema.num_tables();
  const int adj = t * (t - 1) / 2;
  const int per_col = query::kNumPredOps + 1 + 8 + 1;
  EXPECT_EQ(f.query_dim(), adj + ds_->schema.num_columns() * per_col);

  // The keyword column slot: Contains op bit set, matched-count > 0.
  const int kw_gid = ds_->schema.GlobalColumnId("keyword", "keyword");
  const float* slot = enc.Row(0) + adj + kw_gid * per_col;
  EXPECT_FLOAT_EQ(slot[static_cast<int>(PredOp::kContains)], 1.0f);
  EXPECT_GT(slot[query::kNumPredOps], 0.0f);  // log1p(matched count)
  // Embedding portion non-zero.
  float mag = 0;
  for (int d = 0; d < 8; ++d) {
    mag += std::fabs(slot[query::kNumPredOps + 1 + d]);
  }
  EXPECT_GT(mag, 0.0f);
  // Un-predicated column slots stay zero.
  const int gender_gid = ds_->schema.GlobalColumnId("name", "gender");
  const float* empty_slot = enc.Row(0) + adj + gender_gid * per_col;
  for (int i = 0; i < per_col; ++i) EXPECT_EQ(empty_slot[i], 0.0f);
}

}  // namespace
}  // namespace neo::featurize
