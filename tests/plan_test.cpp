#include <gtest/gtest.h>

#include <set>

#include "src/datagen/imdb_gen.h"
#include "src/plan/plan.h"
#include "src/query/builder.h"

namespace neo::plan {
namespace {

using query::PredOp;
using query::Query;
using query::QueryBuilder;

class PlanFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GenOptions opt;
    opt.scale = 0.02;
    ds_ = new datagen::Dataset(datagen::GenerateImdb(opt));
  }
  static void TearDownTestSuite() {
    delete ds_;
    ds_ = nullptr;
  }
  Query ThreeWay() const {
    QueryBuilder b(ds_->schema, *ds_->db, "q3");
    b.JoinFk("movie_keyword", "title").JoinFk("movie_keyword", "keyword");
    Query q = b.Build();
    q.id = 1;
    return q;
  }
  static datagen::Dataset* ds_;
};

datagen::Dataset* PlanFixture::ds_ = nullptr;

TEST_F(PlanFixture, InitialStateShape) {
  const Query q = ThreeWay();
  const PartialPlan p = PartialPlan::Initial(q);
  EXPECT_EQ(p.roots.size(), 3u);
  EXPECT_EQ(p.NumUnspecified(), 3u);
  EXPECT_FALSE(p.IsComplete());
  EXPECT_EQ(p.CoveredMask(), 0b111u);
}

TEST_F(PlanFixture, MakeJoinAggregatesMasks) {
  const Query q = ThreeWay();
  auto a = MakeScan(ScanOp::kTable, q.relations[0], 0b001);
  auto b = MakeScan(ScanOp::kUnspecified, q.relations[1], 0b010);
  auto j = MakeJoin(JoinOp::kMerge, a, b);
  EXPECT_EQ(j->rel_mask, 0b011u);
  EXPECT_EQ(j->num_unspecified, 1);
  EXPECT_EQ(j->NumNodes(), 3u);
}

TEST_F(PlanFixture, HashDistinguishesOperators) {
  const Query q = ThreeWay();
  auto a = MakeScan(ScanOp::kTable, q.relations[0], 0b001);
  auto b = MakeScan(ScanOp::kTable, q.relations[1], 0b010);
  auto hj = MakeJoin(JoinOp::kHash, a, b);
  auto mj = MakeJoin(JoinOp::kMerge, a, b);
  auto flipped = MakeJoin(JoinOp::kHash, b, a);
  EXPECT_NE(hj->hash, mj->hash);
  EXPECT_NE(hj->hash, flipped->hash);  // Orientation matters (build side).
}

TEST_F(PlanFixture, ForestHashOrderIndependent) {
  const Query q = ThreeWay();
  PartialPlan p1, p2;
  p1.query = &q;
  p2.query = &q;
  auto a = MakeScan(ScanOp::kTable, q.relations[0], 0b001);
  auto b = MakeScan(ScanOp::kIndex, q.relations[1], 0b010);
  p1.roots = {a, b};
  p2.roots = {b, a};
  EXPECT_EQ(p1.Hash(), p2.Hash());
}

TEST_F(PlanFixture, ScanSpecializationChangesHash) {
  const Query q = ThreeWay();
  auto u = MakeScan(ScanOp::kUnspecified, q.relations[0], 0b001);
  auto t = MakeScan(ScanOp::kTable, q.relations[0], 0b001);
  auto i = MakeScan(ScanOp::kIndex, q.relations[0], 0b001);
  EXPECT_NE(u->hash, t->hash);
  EXPECT_NE(t->hash, i->hash);
}

TEST_F(PlanFixture, DecomposeForTrainingStates) {
  const Query q = ThreeWay();
  // Complete plan: HJ(MJ(T(r0), I(r1)), T(r2)).
  auto mj = MakeJoin(JoinOp::kMerge, MakeScan(ScanOp::kTable, q.relations[0], 0b001),
                     MakeScan(ScanOp::kIndex, q.relations[1], 0b010));
  auto hj = MakeJoin(JoinOp::kHash, mj, MakeScan(ScanOp::kTable, q.relations[2], 0b100));
  PartialPlan complete;
  complete.query = &q;
  complete.roots = {hj};
  ASSERT_TRUE(complete.IsComplete());

  const auto states = DecomposeForTraining(complete);
  // 5 subtrees + the initial state.
  EXPECT_EQ(states.size(), 6u);
  // Every relation must stay covered in every state.
  for (const auto& s : states) {
    EXPECT_EQ(s.CoveredMask(), 0b111u);
    EXPECT_TRUE(IsSubplanOf(s, complete));
  }
  // States must be distinct.
  std::set<uint64_t> hashes;
  for (const auto& s : states) hashes.insert(s.Hash());
  EXPECT_EQ(hashes.size(), states.size());
}

TEST_F(PlanFixture, IsSubplanOfRespectsOperators) {
  const Query q = ThreeWay();
  auto mj = MakeJoin(JoinOp::kMerge, MakeScan(ScanOp::kTable, q.relations[0], 0b001),
                     MakeScan(ScanOp::kIndex, q.relations[1], 0b010));
  auto full_root =
      MakeJoin(JoinOp::kHash, mj, MakeScan(ScanOp::kTable, q.relations[2], 0b100));
  PartialPlan full;
  full.query = &q;
  full.roots = {full_root};

  // Same shape but a hash join where full has a merge join: not a subplan.
  PartialPlan wrong_op;
  wrong_op.query = &q;
  wrong_op.roots = {
      MakeJoin(JoinOp::kHash, MakeScan(ScanOp::kTable, q.relations[0], 0b001),
               MakeScan(ScanOp::kIndex, q.relations[1], 0b010)),
      MakeScan(ScanOp::kUnspecified, q.relations[2], 0b100)};
  EXPECT_FALSE(IsSubplanOf(wrong_op, full));

  // Unspecified scans specialize to any scan type.
  PartialPlan unspec;
  unspec.query = &q;
  unspec.roots = {
      MakeJoin(JoinOp::kMerge, MakeScan(ScanOp::kUnspecified, q.relations[0], 0b001),
               MakeScan(ScanOp::kUnspecified, q.relations[1], 0b010)),
      MakeScan(ScanOp::kUnspecified, q.relations[2], 0b100)};
  EXPECT_TRUE(IsSubplanOf(unspec, full));
}

TEST_F(PlanFixture, ToStringRendersPaperNotation) {
  const Query q = ThreeWay();
  PartialPlan p = PartialPlan::Initial(q);
  const std::string s = p.ToString(ds_->schema);
  EXPECT_NE(s.find("U("), std::string::npos);
  EXPECT_NE(s.find("keyword"), std::string::npos);
}

// ---- Query IR tests -----------------------------------------------------

TEST_F(PlanFixture, QueryConnectivity) {
  const Query q = ThreeWay();
  EXPECT_TRUE(q.SubsetConnected(0b111));
  // movie_keyword connects title and keyword; title+keyword alone are not
  // directly joined.
  const int mk_pos = q.RelationIndex(ds_->schema.TableId("movie_keyword"));
  const uint64_t mk_bit = 1ULL << mk_pos;
  EXPECT_TRUE(q.SubsetConnected(mk_bit | (mk_bit == 1 ? 0b010 : 0b001)));
  EXPECT_FALSE(q.SubsetConnected(0b111 & ~mk_bit));
}

TEST_F(PlanFixture, QueryMasksJoinable) {
  const Query q = ThreeWay();
  const int mk_pos = q.RelationIndex(ds_->schema.TableId("movie_keyword"));
  const uint64_t mk_bit = 1ULL << mk_pos;
  const uint64_t others = 0b111 & ~mk_bit;
  EXPECT_TRUE(q.MasksJoinable(mk_bit, others));
  // title and keyword are not directly joinable.
  const uint64_t t_bit = others & (others - 1) ? (others & ~(others & (others - 1))) : others;
  const uint64_t k_bit = others & ~t_bit;
  if (t_bit && k_bit) EXPECT_FALSE(q.MasksJoinable(t_bit, k_bit));
}

TEST_F(PlanFixture, QuerySqlRendering) {
  QueryBuilder b(ds_->schema, *ds_->db, "render");
  b.JoinFk("movie_keyword", "keyword")
      .PredStr("keyword", "keyword", PredOp::kContains, "love")
      .Pred("movie_keyword", "movie_id", PredOp::kGe, 10);
  const Query q = b.Build();
  const std::string sql = q.ToSql(ds_->schema);
  EXPECT_NE(sql.find("SELECT count(*)"), std::string::npos);
  EXPECT_NE(sql.find("keyword.keyword LIKE '%love%'"), std::string::npos);
  EXPECT_NE(sql.find("movie_keyword.movie_id >= 10"), std::string::npos);
}

}  // namespace
}  // namespace neo::plan
