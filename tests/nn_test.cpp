// Neural network library tests: numerical gradient checks for every layer
// (Linear, LayerNorm, TreeConv), the paper's Figure 6 tree-convolution
// examples, Adam convergence, and value-network overfitting.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>

#include "src/nn/value_network.h"

namespace neo::nn {
namespace {

Matrix RandomMatrix(int rows, int cols, util::Rng& rng, double scale = 1.0) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.Size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextUniform(-scale, scale));
  }
  return m;
}

/// Weighted-sum loss of a layer output: L = sum(out .* weights). Its exact
/// output gradient is `weights`, enabling simple numeric checks.
double WeightedLoss(const Matrix& out, const Matrix& weights) {
  double loss = 0;
  for (size_t i = 0; i < out.Size(); ++i) {
    loss += static_cast<double>(out.data()[i]) * weights.data()[i];
  }
  return loss;
}

/// Checks analytic parameter gradients against central differences.
void CheckParamGradients(Layer& layer, const Matrix& input, double tol = 2e-2) {
  util::Rng rng(99);
  Matrix out = layer.Forward(input);
  const Matrix loss_w = RandomMatrix(out.rows(), out.cols(), rng);

  std::vector<Param*> params;
  layer.CollectParams(&params);
  for (Param* p : params) p->ZeroGrad();
  layer.Forward(input);
  layer.Backward(loss_w);

  const float eps = 1e-3f;
  for (Param* p : params) {
    for (size_t i = 0; i < p->value.Size(); i += std::max<size_t>(1, p->value.Size() / 17)) {
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      const double lp = WeightedLoss(layer.Forward(input), loss_w);
      p->value.data()[i] = orig - eps;
      const double lm = WeightedLoss(layer.Forward(input), loss_w);
      p->value.data()[i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double analytic = p->grad.data()[i];
      EXPECT_NEAR(analytic, numeric, tol * std::max(1.0, std::fabs(numeric)))
          << "param index " << i;
    }
  }
}

/// Checks analytic input gradients against central differences.
void CheckInputGradients(Layer& layer, Matrix input, double tol = 2e-2) {
  util::Rng rng(98);
  Matrix out = layer.Forward(input);
  const Matrix loss_w = RandomMatrix(out.rows(), out.cols(), rng);
  std::vector<Param*> params;
  layer.CollectParams(&params);
  for (Param* p : params) p->ZeroGrad();
  layer.Forward(input);
  const Matrix grad_in = layer.Backward(loss_w);

  const float eps = 1e-3f;
  for (size_t i = 0; i < input.Size(); i += std::max<size_t>(1, input.Size() / 13)) {
    const float orig = input.data()[i];
    input.data()[i] = orig + eps;
    const double lp = WeightedLoss(layer.Forward(input), loss_w);
    input.data()[i] = orig - eps;
    const double lm = WeightedLoss(layer.Forward(input), loss_w);
    input.data()[i] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grad_in.data()[i], numeric, tol * std::max(1.0, std::fabs(numeric)));
  }
}

TEST(MatrixTest, MatMulHandChecked) {
  Matrix a(2, 3), b(3, 2);
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  Matrix c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154);
}

TEST(MatrixTest, TransposedVariantsAgree) {
  util::Rng rng(1);
  Matrix a = RandomMatrix(4, 5, rng);
  Matrix b = RandomMatrix(5, 3, rng);
  const Matrix ref = MatMul(a, b);
  // MatMulTransposeB(a, b^T) == a b.
  Matrix bt(3, 5);
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 3; ++c) bt.At(c, r) = b.At(r, c);
  }
  const Matrix viaB = MatMulTransposeB(a, bt);
  for (size_t i = 0; i < ref.Size(); ++i) {
    EXPECT_NEAR(ref.data()[i], viaB.data()[i], 1e-5);
  }
  // MatMulTransposeA(a^T, b) == a b.
  Matrix at(5, 4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 5; ++c) at.At(c, r) = a.At(r, c);
  }
  const Matrix viaA = MatMulTransposeA(at, b);
  for (size_t i = 0; i < ref.Size(); ++i) {
    EXPECT_NEAR(ref.data()[i], viaA.data()[i], 1e-5);
  }
}

TEST(MatrixTest, BlockedKernelsMatchNaiveOnOddShapes) {
  // Shapes straddle the kernel chunk boundaries (non-multiples of the 16-wide
  // column chunks and 4-way k-chains, degenerate dims). The optimized kernels
  // use a fixed internal summation order that may differ from the reference
  // triple loop by accumulation-order ulps, hence the relative tolerance.
  const int shapes[][3] = {{1, 1, 1},   {3, 5, 7},    {17, 129, 31},
                           {65, 64, 130}, {127, 1, 63}, {2, 200, 2},
                           {130, 131, 129}};
  util::Rng rng(42);
  const auto expect_close = [](const Matrix& ref, const Matrix& fast, int n,
                               int k, int m) {
    ASSERT_EQ(ref.rows(), fast.rows());
    ASSERT_EQ(ref.cols(), fast.cols());
    for (size_t i = 0; i < ref.Size(); ++i) {
      const double tol =
          1e-5 * std::max(1.0, static_cast<double>(std::fabs(ref.data()[i])));
      ASSERT_NEAR(ref.data()[i], fast.data()[i], tol) << n << "x" << k << "x" << m;
    }
  };
  for (const auto& s : shapes) {
    const int n = s[0], k = s[1], m = s[2];
    const Matrix a = RandomMatrix(n, k, rng);
    const Matrix b = RandomMatrix(k, m, rng);
    expect_close(MatMulNaive(a, b), MatMul(a, b), n, k, m);
    const Matrix bt = RandomMatrix(m, k, rng);
    expect_close(MatMulTransposeBNaive(a, bt), MatMulTransposeB(a, bt), n, k, m);
    const Matrix at = RandomMatrix(k, n, rng);
    const Matrix bA = RandomMatrix(k, m, rng);
    expect_close(MatMulTransposeANaive(at, bA), MatMulTransposeA(at, bA), n, k, m);
  }
}

TEST(MatrixTest, MatMulRowResultsIndependentOfBatchRows) {
  // The kernel's summation order is a function of (k, m) only: a given input
  // row must produce bit-identical outputs whether it is multiplied alone or
  // stacked with other rows. Batched plan scoring relies on this.
  util::Rng rng(43);
  const int k = 159, m = 32;
  const Matrix big = RandomMatrix(37, k, rng);
  const Matrix w = RandomMatrix(k, m, rng);
  const Matrix all = MatMul(big, w);
  for (int r = 0; r < big.rows(); r += 7) {
    Matrix row(1, k);
    std::copy(big.Row(r), big.Row(r) + k, row.Row(0));
    const Matrix single = MatMul(row, w);
    for (int c = 0; c < m; ++c) {
      ASSERT_EQ(all.At(r, c), single.At(0, c)) << "row " << r;
    }
  }
}

TEST(MatrixTest, ParallelKernelsBitIdenticalToSerial) {
  // The kernels partition output rows only; every output element is computed
  // by the same serial inner loop, so any ComputeThreads() degree must give
  // bit-identical results (this is what makes parallel search and training
  // deterministic). Shapes include non-multiples of every block size.
  util::Rng rng(44);
  const int shapes[][3] = {{3, 5, 7}, {65, 64, 130}, {130, 131, 129}, {2, 200, 2}};
  for (const auto& s : shapes) {
    const int n = s[0], k = s[1], m = s[2];
    const Matrix a = RandomMatrix(n, k, rng);
    const Matrix b = RandomMatrix(k, m, rng);
    const Matrix bt = RandomMatrix(m, k, rng);
    const Matrix at = RandomMatrix(k, n, rng);
    const Matrix bA = RandomMatrix(k, m, rng);
    const Matrix serial = MatMul(a, b);
    const Matrix serial_tb = MatMulTransposeB(a, bt);
    const Matrix serial_ta = MatMulTransposeA(at, bA);
    for (int threads : {2, 3, 8}) {
      ComputeThreadsScope scope(threads);
      const Matrix par = MatMul(a, b);
      const Matrix par_tb = MatMulTransposeB(a, bt);
      const Matrix par_ta = MatMulTransposeA(at, bA);
      for (size_t i = 0; i < serial.Size(); ++i) {
        ASSERT_EQ(serial.data()[i], par.data()[i]) << threads << " threads";
      }
      for (size_t i = 0; i < serial_tb.Size(); ++i) {
        ASSERT_EQ(serial_tb.data()[i], par_tb.data()[i]) << threads << " threads";
      }
      for (size_t i = 0; i < serial_ta.Size(); ++i) {
        ASSERT_EQ(serial_ta.data()[i], par_ta.data()[i]) << threads << " threads";
      }
    }
  }
}

TEST(MatrixSimdTest, DispatchReportsValidArm) {
  EXPECT_TRUE(KernelIsaAvailable(KernelIsa::kPortable));
  EXPECT_TRUE(KernelIsaAvailable(ActiveKernelIsa()));
  EXPECT_TRUE(KernelIsaAvailable(BestKernelIsa()));
  EXPECT_STREQ(KernelArchString(), KernelIsaName(ActiveKernelIsa()));
  const KernelIsa before = ActiveKernelIsa();
  {
    KernelIsaScope scope(KernelIsa::kPortable);
    EXPECT_EQ(ActiveKernelIsa(), KernelIsa::kPortable);
    EXPECT_STREQ(KernelArchString(), "portable");
  }
  EXPECT_EQ(ActiveKernelIsa(), before);
}

TEST(MatrixSimdTest, SimdKernelsMatchPortableOnOddShapes) {
  // SIMD arms use fused multiply-add and a different (single-chain) summation
  // order than the portable kernel, so cross-arm parity is at relative
  // tolerance, not bitwise. Shapes cover every panel-tail width class
  // (m % 16 in {0,1,15}), row-tile tails (n % 6), tiny and degenerate dims,
  // and the conv/backward shapes the network actually runs.
  const int shapes[][3] = {{1, 1, 1},     {5, 3, 15},    {6, 53, 64},
                           {7, 21, 64},   {13, 64, 32},  {19, 32, 16},
                           {37, 159, 64}, {64, 64, 33},  {65, 31, 17},
                           {127, 2, 16},  {130, 131, 129}, {2, 200, 47}};
  util::Rng rng(47);
  const auto expect_close = [](const Matrix& ref, const Matrix& got,
                               const char* what, int n, int k, int m) {
    ASSERT_EQ(ref.rows(), got.rows());
    ASSERT_EQ(ref.cols(), got.cols());
    for (size_t i = 0; i < ref.Size(); ++i) {
      const double tol =
          1e-5 * std::max(1.0, static_cast<double>(std::fabs(ref.data()[i])));
      ASSERT_NEAR(ref.data()[i], got.data()[i], tol)
          << what << " " << n << "x" << k << "x" << m;
    }
  };
  for (const auto& s : shapes) {
    const int n = s[0], k = s[1], m = s[2];
    const Matrix a = RandomMatrix(n, k, rng);
    const Matrix b = RandomMatrix(k, m, rng);
    const Matrix bt = RandomMatrix(m, k, rng);
    const Matrix at = RandomMatrix(k, n, rng);
    const Matrix bA = RandomMatrix(k, m, rng);
    Matrix ref, ref_tb, ref_ta;
    {
      KernelIsaScope scope(KernelIsa::kPortable);
      ref = MatMul(a, b);
      ref_tb = MatMulTransposeB(a, bt);
      ref_ta = MatMulTransposeA(at, bA);
    }
    for (KernelIsa isa : AvailableKernelIsas()) {
      if (isa == KernelIsa::kPortable) continue;
      KernelIsaScope scope(isa);
      expect_close(ref, MatMul(a, b), KernelIsaName(isa), n, k, m);
      expect_close(ref_tb, MatMulTransposeB(a, bt), KernelIsaName(isa), n, k, m);
      expect_close(ref_ta, MatMulTransposeA(at, bA), KernelIsaName(isa), n, k, m);
    }
  }
}

TEST(MatrixSimdTest, KernelsBitIdenticalAcrossThreadsPerArm) {
  // Within one dispatch arm, the summation order is a fixed function of the
  // shape, so every thread count must reproduce the serial result bitwise —
  // for every arm, not just the portable one the pre-dispatch test covers.
  util::Rng rng(48);
  const int shapes[][3] = {{5, 3, 15}, {45, 53, 64}, {130, 131, 129}, {64, 200, 2}};
  for (KernelIsa isa : AvailableKernelIsas()) {
    KernelIsaScope isa_scope(isa);
    for (const auto& s : shapes) {
      const int n = s[0], k = s[1], m = s[2];
      const Matrix a = RandomMatrix(n, k, rng);
      const Matrix b = RandomMatrix(k, m, rng);
      const Matrix bt = RandomMatrix(m, k, rng);
      const Matrix at = RandomMatrix(k, n, rng);
      const Matrix bA = RandomMatrix(k, m, rng);
      const Matrix serial = MatMul(a, b);
      const Matrix serial_tb = MatMulTransposeB(a, bt);
      const Matrix serial_ta = MatMulTransposeA(at, bA);
      for (int threads : {2, 8}) {
        ComputeThreadsScope scope(threads);
        const Matrix par = MatMul(a, b);
        const Matrix par_tb = MatMulTransposeB(a, bt);
        const Matrix par_ta = MatMulTransposeA(at, bA);
        for (size_t i = 0; i < serial.Size(); ++i) {
          ASSERT_EQ(serial.data()[i], par.data()[i])
              << KernelIsaName(isa) << " " << threads << " threads";
        }
        for (size_t i = 0; i < serial_tb.Size(); ++i) {
          ASSERT_EQ(serial_tb.data()[i], par_tb.data()[i])
              << KernelIsaName(isa) << " " << threads << " threads";
        }
        for (size_t i = 0; i < serial_ta.Size(); ++i) {
          ASSERT_EQ(serial_ta.data()[i], par_ta.data()[i])
              << KernelIsaName(isa) << " " << threads << " threads";
        }
      }
    }
  }
}

TEST(MatrixSimdTest, RowSubsetsBitIdenticalPerArm) {
  // Arbitrary row subsets must reproduce the full product's rows bitwise in
  // every arm: the incremental search path multiplies gathered row subsets
  // (dirty spines) and relies on position-independence regardless of where a
  // row lands relative to the 6-row register tiles.
  util::Rng rng(49);
  const int n = 45, k = 53, m = 64;
  const Matrix a = RandomMatrix(n, k, rng);
  const Matrix b = RandomMatrix(k, m, rng);
  const std::vector<std::vector<int>> subsets = {
      {0}, {44}, {3, 7, 11}, {0, 1, 2, 3, 4, 5, 6}, {5, 12, 19, 26, 33, 40},
      {44, 43, 42, 41, 40, 39, 38, 37, 36, 35, 34}};
  for (KernelIsa isa : AvailableKernelIsas()) {
    KernelIsaScope scope(isa);
    const Matrix full = MatMul(a, b);
    for (const auto& subset : subsets) {
      Matrix gathered(static_cast<int>(subset.size()), k);
      for (size_t r = 0; r < subset.size(); ++r) {
        std::copy(a.Row(subset[r]), a.Row(subset[r]) + k,
                  gathered.Row(static_cast<int>(r)));
      }
      const Matrix partial = MatMul(gathered, b);
      for (size_t r = 0; r < subset.size(); ++r) {
        for (int c = 0; c < m; ++c) {
          ASSERT_EQ(full.At(subset[r], c), partial.At(static_cast<int>(r), c))
              << KernelIsaName(isa) << " row " << subset[r];
        }
      }
    }
  }
}

TEST(MatrixSimdTest, PackedMatMulBitIdenticalToUnpacked) {
  // PackedB only pre-computes the panel layout MatMul builds per call, so
  // MatMulPacked must be bit-identical to MatMul under every arm (TreeConv
  // and Linear inference weights depend on this being a pure perf change).
  util::Rng rng(50);
  const int shapes[][3] = {{1, 32, 64}, {9, 21, 64}, {45, 53, 64}, {33, 64, 17}};
  for (const auto& s : shapes) {
    const int n = s[0], k = s[1], m = s[2];
    const Matrix a = RandomMatrix(n, k, rng);
    const Matrix b = RandomMatrix(k, m, rng);
    const PackedB packed(b);
    EXPECT_EQ(packed.rows(), k);
    EXPECT_EQ(packed.cols(), m);
    for (KernelIsa isa : AvailableKernelIsas()) {
      KernelIsaScope scope(isa);
      const Matrix plain = MatMul(a, b);
      const Matrix via_packed = MatMulPacked(a, packed);
      for (size_t i = 0; i < plain.Size(); ++i) {
        ASSERT_EQ(plain.data()[i], via_packed.data()[i]) << KernelIsaName(isa);
      }
    }
    // Reference mode routes MatMulPacked through the naive kernel too.
    SetUseReferenceKernels(true);
    const Matrix ref = MatMul(a, b);
    const Matrix ref_packed = MatMulPacked(a, packed);
    SetUseReferenceKernels(false);
    for (size_t i = 0; i < ref.Size(); ++i) {
      ASSERT_EQ(ref.data()[i], ref_packed.data()[i]);
    }
  }
}

TEST(MatrixSimdTest, TransposeAIntoMatchesNaiveOnOddShapes) {
  // The scatter-add transpose-A variant accumulates into a pre-filled raw
  // block; out must equal init + a^T b within accumulation-order ulps under
  // every arm. Shapes straddle both internal strategies (m below/above the
  // per-arm transpose thresholds of 48 and 160) plus ragged/degenerate dims.
  const int shapes[][3] = {{1, 1, 1},    {7, 3, 5},     {40, 5, 33},
                           {70, 53, 64}, {100, 31, 17}, {65, 7, 200},
                           {33, 129, 48}, {13, 64, 161}};
  util::Rng rng(51);
  for (const auto& s : shapes) {
    const int n = s[0], k = s[1], m = s[2];
    const Matrix a = RandomMatrix(n, k, rng);
    const Matrix b = RandomMatrix(n, m, rng);
    const Matrix init = RandomMatrix(k, m, rng);
    Matrix expect = init;
    MatMulTransposeAIntoNaive(a, b, expect.data());
    for (KernelIsa isa : AvailableKernelIsas()) {
      KernelIsaScope scope(isa);
      Matrix out = init;
      MatMulTransposeAInto(a, b, out.data());
      for (size_t i = 0; i < expect.Size(); ++i) {
        const double tol = 1e-4 * std::max(1.0, static_cast<double>(
                                                    std::fabs(expect.data()[i])));
        ASSERT_NEAR(expect.data()[i], out.data()[i], tol)
            << KernelIsaName(isa) << " " << n << "x" << k << "x" << m;
      }
    }
  }
}

TEST(MatrixSimdTest, TransposeAIntoZeroRowsAreExactNoOps) {
  // The contract the sparse training conv is built on: interleaving all-zero
  // `a` rows (with arbitrary matching `b` rows) into the reduction must not
  // change a single output bit, in any arm, for either internal strategy.
  // This is why the strategy choice ignores n and why the portable
  // accumulate path uses a single summation chain.
  util::Rng rng(52);
  for (const int m : {5, 17, 48, 64, 160, 200}) {
    const int k = 21, n = 47;
    std::vector<int> keep;
    for (int r = 0; r < n; ++r) {
      // Rows 0, 5, 10, ... and the last few stay zero.
      const bool zero_row = (r % 5 == 0) || r >= n - 3;
      if (!zero_row) keep.push_back(r);
    }
    const int present = static_cast<int>(keep.size());
    // Dense operands with zero a-rows scattered at the front/middle/end.
    Matrix a_dense(n, k), b_dense = RandomMatrix(n, m, rng);
    Matrix a_sparse(present, k), b_sparse(present, m);
    for (size_t t = 0; t < keep.size(); ++t) {
      const Matrix row = RandomMatrix(1, k, rng);
      std::copy(row.data(), row.data() + k, a_dense.Row(keep[t]));
      std::copy(row.data(), row.data() + k, a_sparse.Row(static_cast<int>(t)));
      std::copy(b_dense.Row(keep[t]), b_dense.Row(keep[t]) + m,
                b_sparse.Row(static_cast<int>(t)));
    }
    const Matrix init = RandomMatrix(k, m, rng);
    for (KernelIsa isa : AvailableKernelIsas()) {
      KernelIsaScope scope(isa);
      Matrix dense = init, sparse = init;
      MatMulTransposeAInto(a_dense, b_dense, dense.data());
      MatMulTransposeAInto(a_sparse, b_sparse, sparse.data());
      for (size_t i = 0; i < dense.Size(); ++i) {
        ASSERT_EQ(dense.data()[i], sparse.data()[i])
            << KernelIsaName(isa) << " m=" << m;
      }
    }
  }
}

TEST(MatrixSimdTest, GatherVariantsBitIdenticalToMaterialized) {
  // The zero-copy gather GEMMs read A (and the TA variant's B) rows through
  // an index list inside the kernels; they must match multiplying the
  // materialized gather BITWISE under every arm (the sparse training conv's
  // results may not depend on which mechanism gathered the rows).
  util::Rng rng(54);
  const int n = 61, k = 21, m = 34;
  const Matrix a = RandomMatrix(n, k, rng);
  const Matrix b = RandomMatrix(n, m, rng);
  const Matrix w = RandomMatrix(k, m, rng);
  const Matrix wt = RandomMatrix(17, m, rng);  // (17 x m) block for b^T.
  // Index lists with repeats, out-of-order entries, and a singleton.
  const std::vector<std::vector<int>> row_sets = {
      {0}, {5, 3, 3, 60, 17}, {7, 7, 7, 7, 7, 7, 7},
      {60, 59, 58, 0, 1, 2, 30, 31, 32, 33, 34, 35, 36}};
  for (KernelIsa isa : AvailableKernelIsas()) {
    KernelIsaScope scope(isa);
    for (const auto& rows : row_sets) {
      const int nr = static_cast<int>(rows.size());
      Matrix ga(nr, k), gb(nr, m);
      for (int r = 0; r < nr; ++r) {
        std::copy(a.Row(rows[r]), a.Row(rows[r]) + k, ga.Row(r));
        std::copy(b.Row(rows[r]), b.Row(rows[r]) + m, gb.Row(r));
      }
      Matrix want, got;
      MatMulBlockInto(ga, w.data(), k, m, &want);
      MatMulGatherBlockInto(a, rows.data(), nr, w.data(), k, m, &got);
      ASSERT_EQ(want.rows(), got.rows());
      for (size_t i = 0; i < want.Size(); ++i) {
        ASSERT_EQ(want.data()[i], got.data()[i]) << KernelIsaName(isa);
      }
      // a = gathered b rows (nr x m); wt is a (17 x m) block -> out (nr x 17).
      Matrix want_tb, got_tb;
      MatMulTransposeBBlockInto(gb, wt.data(), 17, &want_tb);
      ASSERT_EQ(want_tb.rows(), nr);
      MatMulGatherTransposeBBlockInto(b, rows.data(), nr, wt.data(), 17, &got_tb);
      for (size_t i = 0; i < want_tb.Size(); ++i) {
        ASSERT_EQ(want_tb.data()[i], got_tb.data()[i]) << KernelIsaName(isa);
      }
      const Matrix init = RandomMatrix(k, m, rng);
      Matrix want_ta = init, got_ta = init;
      MatMulTransposeAInto(ga, gb, want_ta.data());
      MatMulGatherTransposeAInto(a, rows.data(), b, rows.data(), nr,
                                 got_ta.data());
      for (size_t i = 0; i < want_ta.Size(); ++i) {
        ASSERT_EQ(want_ta.data()[i], got_ta.data()[i]) << KernelIsaName(isa);
      }
    }
  }
}

TEST(MatrixSimdTest, BlockVariantsBitIdenticalToMatrixEntryPoints) {
  // MatMulBlock / MatMulTransposeBBlock take raw pointers into a larger
  // stacked weight; multiplying a row range through them must equal the
  // Matrix-typed entry points bitwise (same kernels, same packing).
  util::Rng rng(53);
  const int n = 23, k = 19, m = 34;
  const Matrix a = RandomMatrix(n, k, rng);
  const Matrix stacked = RandomMatrix(3 * k, m, rng);  // Three (k x m) blocks.
  const Matrix at = RandomMatrix(n, m, rng);           // For the b^T variant.
  const Matrix stacked_t = RandomMatrix(3 * k, m, rng);
  for (KernelIsa isa : AvailableKernelIsas()) {
    KernelIsaScope scope(isa);
    for (int blk = 0; blk < 3; ++blk) {
      Matrix block(k, m), block_t(k, m);
      for (int r = 0; r < k; ++r) {
        std::copy(stacked.Row(blk * k + r), stacked.Row(blk * k + r) + m, block.Row(r));
        std::copy(stacked_t.Row(blk * k + r), stacked_t.Row(blk * k + r) + m,
                  block_t.Row(r));
      }
      const Matrix want = MatMul(a, block);
      const Matrix got = MatMulBlock(a, stacked.Row(blk * k), k, m);
      ASSERT_EQ(want.rows(), got.rows());
      for (size_t i = 0; i < want.Size(); ++i) {
        ASSERT_EQ(want.data()[i], got.data()[i]) << KernelIsaName(isa);
      }
      const Matrix want_tb = MatMulTransposeB(at, block_t);
      const Matrix got_tb = MatMulTransposeBBlock(at, stacked_t.Row(blk * k), k);
      for (size_t i = 0; i < want_tb.Size(); ++i) {
        ASSERT_EQ(want_tb.data()[i], got_tb.data()[i]) << KernelIsaName(isa);
      }
    }
  }
}

TEST(LinearTest, GradientsMatchNumeric) {
  util::Rng rng(2);
  Linear layer(6, 4, rng);
  const Matrix x = RandomMatrix(5, 6, rng);
  CheckParamGradients(layer, x);
  CheckInputGradients(layer, x);
}

TEST(LeakyReLUTest, ForwardAndGradient) {
  LeakyReLU layer(0.1f);
  Matrix x(1, 4);
  x.At(0, 0) = -2;
  x.At(0, 1) = 3;
  x.At(0, 2) = 0;
  x.At(0, 3) = -0.5;
  Matrix y = layer.Forward(x);
  EXPECT_FLOAT_EQ(y.At(0, 0), -0.2f);
  EXPECT_FLOAT_EQ(y.At(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(y.At(0, 3), -0.05f);
  util::Rng rng(3);
  CheckInputGradients(layer, RandomMatrix(3, 7, rng));
}

TEST(LayerNormTest, NormalizesAndGradients) {
  LayerNorm layer(8);
  util::Rng rng(4);
  Matrix x = RandomMatrix(3, 8, rng, 5.0);
  Matrix y = layer.Forward(x);
  // With unit gain and zero bias, each row has ~zero mean / unit variance.
  for (int r = 0; r < y.rows(); ++r) {
    float mean = 0, var = 0;
    for (int c = 0; c < 8; ++c) mean += y.At(r, c);
    mean /= 8;
    for (int c = 0; c < 8; ++c) var += (y.At(r, c) - mean) * (y.At(r, c) - mean);
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
  CheckParamGradients(layer, x);
  CheckInputGradients(layer, x);
}

TEST(SequentialTest, ComposesAndBackprops) {
  util::Rng rng(5);
  Sequential seq;
  seq.Add(std::make_unique<Linear>(5, 8, rng));
  seq.Add(std::make_unique<LeakyReLU>());
  seq.Add(std::make_unique<Linear>(8, 2, rng));
  const Matrix x = RandomMatrix(4, 5, rng);
  CheckParamGradients(seq, x);
  CheckInputGradients(seq, x);
}

// ---- Tree convolution ----------------------------------------------------

/// Paper Figure 6, Example 1: a filter with {1,-1} in the first two feature
/// positions of all three weight vectors detects "merge join on top of merge
/// join". Features: [is_merge, is_hash, A, B, C].
TEST(TreeConvTest, PaperFigure6Example1) {
  util::Rng rng(6);
  TreeConv conv(5, 1, rng);
  std::vector<Param*> params;
  conv.CollectParams(&params);
  // Set e_p = e_l = e_r = [1,-1,0,0,0], bias 0.
  params[0]->value.Zero();
  for (int part = 0; part < 3; ++part) {
    params[0]->value.At(part * 5 + 0, 0) = 1.0f;
    params[0]->value.At(part * 5 + 1, 0) = -1.0f;
  }
  params[1]->value.Zero();

  // Tree 1: MJ(MJ(A,B), C) -- nodes: 0=root MJ, 1=inner MJ, 2=A, 3=B, 4=C.
  TreeStructure t;
  t.left = {1, 2, -1, -1, -1};
  t.right = {4, 3, -1, -1, -1};
  Matrix x(5, 5);
  auto set_node = [&](int i, float mj, float hj, float a, float b, float c) {
    x.At(i, 0) = mj; x.At(i, 1) = hj; x.At(i, 2) = a; x.At(i, 3) = b; x.At(i, 4) = c;
  };
  set_node(0, 1, 0, 1, 1, 1);  // root merge join
  set_node(1, 1, 0, 1, 1, 0);  // inner merge join
  set_node(2, 0, 0, 1, 0, 0);  // A
  set_node(3, 0, 0, 0, 1, 0);  // B
  set_node(4, 0, 0, 0, 0, 1);  // C
  Matrix y = conv.Forward(t, x);
  EXPECT_FLOAT_EQ(y.At(0, 0), 2.0f);  // MJ over MJ -> output 2 (paper value).

  // Tree 2: HJ(MJ(A,B), C): root becomes hash join.
  set_node(0, 0, 1, 1, 1, 1);
  y = conv.Forward(t, x);
  EXPECT_FLOAT_EQ(y.At(0, 0), 0.0f);  // paper value: 0.
}

TEST(TreeConvTest, OutputStructureIsomorphic) {
  util::Rng rng(7);
  TreeConv conv(4, 6, rng);
  TreeStructure t;
  t.left = {1, -1, -1};
  t.right = {2, -1, -1};
  const Matrix x = RandomMatrix(3, 4, rng);
  const Matrix y = conv.Forward(t, x);
  EXPECT_EQ(y.rows(), 3);
  EXPECT_EQ(y.cols(), 6);
}

TEST(TreeConvTest, GradientsMatchNumeric) {
  util::Rng rng(8);
  TreeConv conv(3, 4, rng);
  TreeStructure t;
  // Forest: a 3-node tree + a lone leaf.
  t.left = {1, -1, -1, -1};
  t.right = {2, -1, -1, -1};
  Matrix x = RandomMatrix(4, 3, rng);
  Matrix loss_w = RandomMatrix(4, 4, rng);

  std::vector<Param*> params;
  conv.CollectParams(&params);
  for (Param* p : params) p->ZeroGrad();
  conv.Forward(t, x);
  const Matrix grad_in = conv.Backward(t, x, loss_w);

  const float eps = 1e-3f;
  // Parameter gradients.
  for (Param* p : params) {
    for (size_t i = 0; i < p->value.Size(); ++i) {
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      const double lp = WeightedLoss(conv.Forward(t, x), loss_w);
      p->value.data()[i] = orig - eps;
      const double lm = WeightedLoss(conv.Forward(t, x), loss_w);
      p->value.data()[i] = orig;
      EXPECT_NEAR(p->grad.data()[i], (lp - lm) / (2 * eps), 2e-2);
    }
  }
  // Input gradients (children feed multiple triangles).
  for (size_t i = 0; i < x.Size(); ++i) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double lp = WeightedLoss(conv.Forward(t, x), loss_w);
    x.data()[i] = orig - eps;
    const double lm = WeightedLoss(conv.Forward(t, x), loss_w);
    x.data()[i] = orig;
    EXPECT_NEAR(grad_in.data()[i], (lp - lm) / (2 * eps), 2e-2);
  }
}

TEST(TreeConvTest, ForwardInferenceMatchesDenseForward) {
  util::Rng rng(9);
  TreeConv conv(5, 8, rng);
  conv.RefreshInferenceWeights();
  // Forest covering every child shape: full node, left-only, right-only,
  // leaves, and a lone single-node tree.
  TreeStructure t;
  t.left = {1, 3, -1, -1, -1, -1};
  t.right = {2, -1, -1, -1, 5, -1};
  const Matrix x = RandomMatrix(6, 5, rng);
  const Matrix dense = conv.Forward(t, x);
  const Matrix fast = conv.ForwardInference(t, x);
  ASSERT_EQ(dense.rows(), fast.rows());
  ASSERT_EQ(dense.cols(), fast.cols());
  for (size_t i = 0; i < dense.Size(); ++i) {
    EXPECT_NEAR(dense.data()[i], fast.data()[i], 1e-5);
  }
}

TEST(TreeConvTest, SharedSuffixInferenceMatchesDenseForward) {
  // A layer declared with a 3-channel shared suffix must match the dense
  // forward over the concatenated [varying ; suffix] input.
  util::Rng rng(10);
  const int varying = 4, suffix_dim = 3, cin = varying + suffix_dim;
  TreeConv conv(cin, 6, rng, suffix_dim);
  conv.RefreshInferenceWeights();
  TreeStructure t;
  t.left = {1, 3, -1, -1, -1};
  t.right = {2, -1, -1, -1, -1};
  const Matrix x = RandomMatrix(5, varying, rng);
  const Matrix suffix = RandomMatrix(1, suffix_dim, rng);
  Matrix full(5, cin);
  for (int i = 0; i < 5; ++i) {
    std::copy(x.Row(i), x.Row(i) + varying, full.Row(i));
    std::copy(suffix.Row(0), suffix.Row(0) + suffix_dim, full.Row(i) + varying);
  }
  const Matrix dense = conv.Forward(t, full);
  const Matrix fast = conv.ForwardInference(t, x, &suffix);
  ASSERT_EQ(dense.rows(), fast.rows());
  ASSERT_EQ(dense.cols(), fast.cols());
  for (size_t i = 0; i < dense.Size(); ++i) {
    EXPECT_NEAR(dense.data()[i], fast.data()[i], 1e-5);
  }
}

TEST(TreeConvTest, ForwardInferenceRowsBitIdenticalToFullPass) {
  // The incremental path computes a subset of output rows; they must equal
  // the full ForwardInference rows BITWISE (the activation cache mixes rows
  // from both paths into one matrix).
  util::Rng rng(11);
  TreeConv conv(5, 8, rng);
  conv.RefreshInferenceWeights();
  TreeStructure t;
  t.left = {1, 3, -1, -1, -1, -1};
  t.right = {2, -1, -1, -1, 5, -1};
  const Matrix x = RandomMatrix(6, 5, rng);
  const Matrix full = conv.ForwardInference(t, x);
  for (const std::vector<int>& rows :
       {std::vector<int>{0}, std::vector<int>{0, 1, 4}, std::vector<int>{2, 3, 5},
        std::vector<int>{0, 1, 2, 3, 4, 5}, std::vector<int>{}}) {
    Matrix y(6, 8);
    for (int i = 0; i < 6; ++i) {
      std::copy(full.Row(i), full.Row(i) + 8, y.Row(i));  // "Cached" rows.
    }
    for (const int r : rows) std::fill(y.Row(r), y.Row(r) + 8, -123.0f);
    conv.ForwardInferenceRows(t, x, rows, nullptr, nullptr, &y);
    for (size_t i = 0; i < full.Size(); ++i) {
      ASSERT_EQ(full.data()[i], y.data()[i]) << "rows subset size " << rows.size();
    }
  }
}

TEST(TreeConvTest, ForwardInferenceRowsSharedSuffixBitIdentical) {
  util::Rng rng(12);
  const int varying = 4, suffix_dim = 3;
  TreeConv conv(varying + suffix_dim, 6, rng, suffix_dim);
  conv.RefreshInferenceWeights();
  TreeStructure t;
  t.left = {1, 3, -1, -1, -1};
  t.right = {2, -1, -1, 4, -1};
  const Matrix x = RandomMatrix(5, varying, rng);
  const Matrix suffix = RandomMatrix(1, suffix_dim, rng);
  const Matrix full = conv.ForwardInference(t, x, &suffix);
  Matrix y(5, 6);
  for (int i = 0; i < 5; ++i) std::copy(full.Row(i), full.Row(i) + 6, y.Row(i));
  const std::vector<int> rows = {0, 3};
  for (const int r : rows) std::fill(y.Row(r), y.Row(r) + 6, -123.0f);
  conv.ForwardInferenceRows(t, x, rows, &suffix, nullptr, &y);
  for (size_t i = 0; i < full.Size(); ++i) ASSERT_EQ(full.data()[i], y.data()[i]);
}

/// RAII restore for the process-wide sparse-training-conv flag.
class SparseTrainingScope {
 public:
  explicit SparseTrainingScope(bool sparse) : prev_(SparseTrainingConv()) {
    SetSparseTrainingConv(sparse);
  }
  ~SparseTrainingScope() { SetSparseTrainingConv(prev_); }

 private:
  bool prev_;
};

TEST(TreeConvTest, SparseBackwardGradientsMatchNumeric) {
  // Numeric-gradient check through the sparse block backward on a forest
  // covering every child shape: both-children, left-only, right-only,
  // leaves, and a lone single-node tree.
  SparseTrainingScope sparse_scope(true);
  util::Rng rng(13);
  TreeConv conv(3, 4, rng);
  TreeStructure t;
  t.left = {1, 3, -1, -1, -1, 6, -1};
  t.right = {2, -1, -1, 4, -1, -1, -1};
  Matrix x = RandomMatrix(7, 3, rng);
  Matrix loss_w = RandomMatrix(7, 4, rng);

  std::vector<Param*> params;
  conv.CollectParams(&params);
  for (Param* p : params) p->ZeroGrad();
  conv.Forward(t, x);
  const Matrix grad_in = conv.Backward(t, x, loss_w);

  const float eps = 1e-3f;
  for (Param* p : params) {
    for (size_t i = 0; i < p->value.Size(); ++i) {
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      const double lp = WeightedLoss(conv.Forward(t, x), loss_w);
      p->value.data()[i] = orig - eps;
      const double lm = WeightedLoss(conv.Forward(t, x), loss_w);
      p->value.data()[i] = orig;
      EXPECT_NEAR(p->grad.data()[i], (lp - lm) / (2 * eps), 2e-2)
          << "param index " << i;
    }
  }
  for (size_t i = 0; i < x.Size(); ++i) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double lp = WeightedLoss(conv.Forward(t, x), loss_w);
    x.data()[i] = orig - eps;
    const double lm = WeightedLoss(conv.Forward(t, x), loss_w);
    x.data()[i] = orig;
    EXPECT_NEAR(grad_in.data()[i], (lp - lm) / (2 * eps), 2e-2) << "input " << i;
  }
}

TEST(TreeConvTest, SparseAndDenseTrainingBitIdentical) {
  // The dense fallback is the same block code gathering zero rows for absent
  // children; zero rows are exact no-ops in every kernel, so forward output,
  // weight/bias gradients, and input gradients must agree BITWISE with the
  // sparse path under every dispatch arm.
  util::Rng rng_tree(14);
  TreeStructure t;
  t.left = {1, 3, -1, -1, -1, 6, -1, -1};
  t.right = {2, -1, -1, 4, -1, -1, -1, 7};
  const Matrix x = RandomMatrix(8, 5, rng_tree);
  const Matrix loss_w = RandomMatrix(8, 6, rng_tree);
  for (KernelIsa isa : AvailableKernelIsas()) {
    KernelIsaScope isa_scope(isa);
    util::Rng rng_a(15), rng_b(15);
    TreeConv sparse_conv(5, 6, rng_a), dense_conv(5, 6, rng_b);
    Matrix y_sparse, y_dense, gin_sparse, gin_dense;
    {
      SparseTrainingScope scope(true);
      y_sparse = sparse_conv.Forward(t, x);
      gin_sparse = sparse_conv.Backward(t, x, loss_w);
    }
    {
      SparseTrainingScope scope(false);
      y_dense = dense_conv.Forward(t, x);
      gin_dense = dense_conv.Backward(t, x, loss_w);
    }
    for (size_t i = 0; i < y_sparse.Size(); ++i) {
      ASSERT_EQ(y_sparse.data()[i], y_dense.data()[i])
          << KernelIsaName(isa) << " forward " << i;
    }
    for (size_t i = 0; i < gin_sparse.Size(); ++i) {
      ASSERT_EQ(gin_sparse.data()[i], gin_dense.data()[i])
          << KernelIsaName(isa) << " grad_in " << i;
    }
    std::vector<Param*> ps, pd;
    sparse_conv.CollectParams(&ps);
    dense_conv.CollectParams(&pd);
    for (size_t p = 0; p < ps.size(); ++p) {
      for (size_t i = 0; i < ps[p]->grad.Size(); ++i) {
        ASSERT_EQ(ps[p]->grad.data()[i], pd[p]->grad.data()[i])
            << KernelIsaName(isa) << " param " << p << " grad " << i;
      }
    }
    // Sparse mode must actually have skipped the absent-child rows.
    EXPECT_GT(sparse_conv.train_stats().rows_skipped, 0u);
    EXPECT_EQ(dense_conv.train_stats().rows_skipped, 0u);
    EXPECT_LT(sparse_conv.train_stats().forward_madds,
              dense_conv.train_stats().forward_madds);
  }
}

TEST(TreeConvTest, TrainingForwardMatchesInferenceForward) {
  // The block training forward and ForwardInference compute the same math
  // over the same blocks (training from live weights, inference from the
  // packed split); they may differ only by packing-free vs packed GEMM,
  // which is bit-identical, so outputs should agree to ulps.
  util::Rng rng(16);
  TreeConv conv(5, 8, rng);
  conv.RefreshInferenceWeights();
  TreeStructure t;
  t.left = {1, 3, -1, -1, -1, -1};
  t.right = {2, -1, -1, -1, 5, -1};
  const Matrix x = RandomMatrix(6, 5, rng);
  SparseTrainingScope scope(true);
  const Matrix train = conv.Forward(t, x);
  const Matrix infer = conv.ForwardInference(t, x);
  for (size_t i = 0; i < train.Size(); ++i) {
    ASSERT_EQ(train.data()[i], infer.data()[i]) << i;
  }
}

TEST(TreeConvTest, FusedEpilogueBitIdenticalToUnfusedReference) {
  // The fused scatter epilogue (bias + suffix projections + side
  // contributions + leaky-ReLU written in ONE pass) must be bitwise equal to
  // an unfused reference that runs the same GEMMs as separate passes and then
  // applies the adds element-by-element in the documented order: GEMM value,
  // + bias, + self suffix, [+ left contrib, + left suffix], [+ right contrib,
  // + right suffix], activation last. Swept over every dispatch arm and
  // thread count — the epilogue contains only adds, so no arm may contract
  // any step into an FMA.
  if (UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const int varying = 4, s = 3, cin = varying + s, cout = 6, n = 6;
  const float alpha = 0.01f;
  // Forest covering every child shape: both children, left-only, right-only,
  // and leaves.
  TreeStructure t;
  t.left = {1, 3, -1, -1, -1, -1};
  t.right = {2, -1, -1, -1, 5, -1};
  util::Rng rng_x(41);
  const Matrix x = RandomMatrix(n, varying, rng_x);
  const Matrix suffix = RandomMatrix(1, s, rng_x);

  for (KernelIsa isa : AvailableKernelIsas()) {
    KernelIsaScope isa_scope(isa);
    util::Rng rng(42);
    TreeConv conv(cin, cout, rng, s);
    conv.RefreshInferenceWeights();

    std::vector<Param*> params;
    conv.CollectParams(&params);
    const Matrix& W = params[0]->value;  // (3*cin x cout) stacked blocks.
    const float* bias = params[1]->value.Row(0);
    auto block = [&](int blk, int row0, int nrows) {
      Matrix m(nrows, cout);
      for (int r = 0; r < nrows; ++r) {
        std::copy(W.Row(blk * cin + row0 + r),
                  W.Row(blk * cin + row0 + r) + cout, m.Row(r));
      }
      return m;
    };
    std::vector<int> lpar, lch, rpar, rch;
    for (int i = 0; i < n; ++i) {
      if (t.left[i] >= 0) { lpar.push_back(i); lch.push_back(t.left[i]); }
      if (t.right[i] >= 0) { rpar.push_back(i); rch.push_back(t.right[i]); }
    }
    auto gather = [&](const std::vector<int>& ch) {
      Matrix g(static_cast<int>(ch.size()), varying);
      for (size_t r = 0; r < ch.size(); ++r) {
        std::copy(x.Row(ch[r]), x.Row(ch[r]) + varying,
                  g.Row(static_cast<int>(r)));
      }
      return g;
    };
    // Unfused passes. MatMul rows are position-independent and the packed /
    // block / gather GEMM variants are bit-identical to these entry points,
    // so any difference below can only come from the epilogue fusion.
    const Matrix self = MatMul(x, block(0, 0, varying));
    const Matrix lcontrib = MatMul(gather(lch), block(1, 0, varying));
    const Matrix rcontrib = MatMul(gather(rch), block(2, 0, varying));
    const Matrix ps = MatMul(suffix, block(0, varying, s));
    const Matrix pl = MatMul(suffix, block(1, varying, s));
    const Matrix pr = MatMul(suffix, block(2, varying, s));
    Matrix ref(n, cout);
    size_t lc = 0, rc = 0;
    for (int i = 0; i < n; ++i) {
      const bool has_l = lc < lpar.size() && lpar[lc] == i;
      const bool has_r = rc < rpar.size() && rpar[rc] == i;
      for (int c = 0; c < cout; ++c) {
        float v = self.At(i, c) + bias[c];
        v += ps.At(0, c);
        if (has_l) {
          v += lcontrib.At(static_cast<int>(lc), c);
          v += pl.At(0, c);
        }
        if (has_r) {
          v += rcontrib.At(static_cast<int>(rc), c);
          v += pr.At(0, c);
        }
        if (v < 0.0f) v *= alpha;
        ref.At(i, c) = v;
      }
      if (has_l) ++lc;
      if (has_r) ++rc;
    }

    const TreeGather tg = TreeGather::Build(t);
    for (int threads : {1, 2, 8}) {
      ComputeThreadsScope tscope(threads);
      TreeConv::Scratch scratch;
      Matrix y;
      conv.ForwardInferenceInto(t, x, &suffix, &scratch, alpha, &y);
      ASSERT_EQ(y.rows(), n);
      ASSERT_EQ(y.cols(), cout);
      for (size_t i = 0; i < ref.Size(); ++i) {
        ASSERT_EQ(ref.data()[i], y.data()[i])
            << KernelIsaName(isa) << " threads " << threads << " infer elt " << i;
      }
      // The training forward shares the fused-epilogue contract (same op
      // order, live weights instead of the packed split).
      SparseTrainingScope sparse(true);
      TreeConv::TrainScratch ts;
      Matrix yt;
      conv.ForwardTrain(t, x, &suffix, nullptr, tg, &ts, alpha, &yt);
      for (size_t i = 0; i < ref.Size(); ++i) {
        ASSERT_EQ(ref.data()[i], yt.data()[i])
            << KernelIsaName(isa) << " threads " << threads << " train elt " << i;
      }
    }
  }
}

TEST(SequentialTest, FusedTripleInferenceBitIdenticalToUnfusedLayers) {
  // Sequential::ForwardInferenceInto collapses every (Linear, LayerNorm,
  // LeakyReLU) triple into GEMM + one per-row epilogue; the results must be
  // bitwise equal to running the three layers' own inference passes
  // separately, under every dispatch arm and thread count.
  if (UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const int in = 9, hidden = 12, out = 5, batch = 7;
  for (KernelIsa isa : AvailableKernelIsas()) {
    KernelIsaScope isa_scope(isa);
    util::Rng rng(43);
    auto l1 = std::make_unique<Linear>(in, hidden, rng);
    auto l2 = std::make_unique<LayerNorm>(hidden);
    auto l3 = std::make_unique<LeakyReLU>();
    auto l4 = std::make_unique<Linear>(hidden, out, rng);
    Linear* l1p = l1.get();
    LayerNorm* l2p = l2.get();
    LeakyReLU* l3p = l3.get();
    Linear* l4p = l4.get();
    // Randomize the norm's gain/bias so the normalize/scale/shift step has
    // teeth (the defaults are identity-ish).
    std::vector<Param*> norm_params;
    l2p->CollectParams(&norm_params);
    for (Param* p : norm_params) {
      for (size_t i = 0; i < p->value.Size(); ++i) {
        p->value.data()[i] = static_cast<float>(rng.NextUniform(-1, 1));
      }
    }
    Sequential seq;
    seq.Add(std::move(l1));
    seq.Add(std::move(l2));
    seq.Add(std::move(l3));
    seq.Add(std::move(l4));
    seq.RefreshInferenceWeights();

    const Matrix x = RandomMatrix(batch, in, rng);
    const Matrix ref = l4p->ForwardInference(
        l3p->ForwardInference(l2p->ForwardInference(l1p->ForwardInference(x))));
    for (int threads : {1, 2, 8}) {
      ComputeThreadsScope tscope(threads);
      PipelineScratch scratch;
      Matrix y;
      seq.ForwardInferenceInto(x, &scratch, &y);
      ASSERT_EQ(y.rows(), ref.rows());
      ASSERT_EQ(y.cols(), ref.cols());
      for (size_t i = 0; i < ref.Size(); ++i) {
        ASSERT_EQ(ref.data()[i], y.data()[i])
            << KernelIsaName(isa) << " threads " << threads << " elt " << i;
      }
    }
  }
}

TEST(DynamicPoolingTest, MaxAndGradRouting) {
  DynamicPooling pool;
  Matrix x(3, 2);
  x.At(0, 0) = 1; x.At(0, 1) = 9;
  x.At(1, 0) = 5; x.At(1, 1) = 2;
  x.At(2, 0) = 3; x.At(2, 1) = 4;
  Matrix y = pool.Forward(x);
  EXPECT_FLOAT_EQ(y.At(0, 0), 5);
  EXPECT_FLOAT_EQ(y.At(0, 1), 9);
  Matrix g(1, 2);
  g.At(0, 0) = 0.5f;
  g.At(0, 1) = -2.0f;
  Matrix gi = pool.Backward(g);
  EXPECT_FLOAT_EQ(gi.At(1, 0), 0.5f);
  EXPECT_FLOAT_EQ(gi.At(0, 1), -2.0f);
  EXPECT_FLOAT_EQ(gi.At(2, 0), 0.0f);
  EXPECT_FLOAT_EQ(gi.At(2, 1), 0.0f);
}

TEST(DynamicPoolingTest, SegmentedMatchesPerSegment) {
  util::Rng rng(77);
  const Matrix x = RandomMatrix(10, 6, rng);
  const std::vector<int> offsets = {0, 1, 4, 10};  // Segments of 1, 3, 6 rows.
  DynamicPooling pool;
  const Matrix y = pool.Forward(x, offsets);
  ASSERT_EQ(y.rows(), 3);
  ASSERT_EQ(y.cols(), 6);
  for (int s = 0; s < 3; ++s) {
    DynamicPooling single;
    Matrix seg(offsets[s + 1] - offsets[s], 6);
    for (int r = 0; r < seg.rows(); ++r) {
      std::copy(x.Row(offsets[s] + r), x.Row(offsets[s] + r) + 6, seg.Row(r));
    }
    const Matrix expect = single.Forward(seg);
    for (int c = 0; c < 6; ++c) EXPECT_EQ(y.At(s, c), expect.At(0, c));
  }
  // Backward routes each segment's gradient to that segment's argmax rows.
  Matrix g(3, 6);
  for (size_t i = 0; i < g.Size(); ++i) g.data()[i] = static_cast<float>(i + 1);
  const Matrix gi = pool.Backward(g);
  ASSERT_EQ(gi.rows(), 10);
  for (int c = 0; c < 6; ++c) {
    // Segment 0 has a single row; its gradient lands on row 0.
    EXPECT_EQ(gi.At(0, c), g.At(0, c));
  }
  double total_in = 0, total_out = 0;
  for (size_t i = 0; i < g.Size(); ++i) total_in += g.data()[i];
  for (size_t i = 0; i < gi.Size(); ++i) total_out += gi.data()[i];
  EXPECT_DOUBLE_EQ(total_in, total_out);  // Max-pool backward conserves mass.
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize ||w - target||^2 with gradients fed manually.
  Param w;
  w.value = Matrix(1, 4);
  w.grad = Matrix(1, 4);
  const float target[] = {1.0f, -2.0f, 0.5f, 3.0f};
  AdamOptions opt;
  opt.lr = 0.05f;
  Adam adam({&w}, opt);
  for (int step = 0; step < 500; ++step) {
    for (int i = 0; i < 4; ++i) {
      w.grad.At(0, i) = 2.0f * (w.value.At(0, i) - target[i]);
    }
    adam.Step();
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(w.value.At(0, i), target[i], 1e-2);
  EXPECT_EQ(adam.steps(), 500);
}

TEST(AdamTest, GradClipBoundsUpdate) {
  Param w;
  w.value = Matrix(1, 1);
  w.grad = Matrix(1, 1);
  AdamOptions opt;
  opt.lr = 0.1f;
  opt.grad_clip = 1.0f;
  Adam adam({&w}, opt);
  w.grad.At(0, 0) = 1e6f;  // Huge gradient must be clipped.
  adam.Step();
  EXPECT_LT(std::fabs(w.value.At(0, 0)), 0.2f);
}

// ---- Value network -------------------------------------------------------

PlanSample MakeSample(util::Rng& rng, int query_dim, int plan_dim, int nodes) {
  PlanSample s;
  s.query_vec = RandomMatrix(1, query_dim, rng);
  s.node_features = RandomMatrix(nodes, plan_dim, rng);
  // Left-deep chain structure.
  s.tree.left.assign(static_cast<size_t>(nodes), -1);
  s.tree.right.assign(static_cast<size_t>(nodes), -1);
  for (int i = 0; i + 2 < nodes; i += 2) {
    s.tree.left[static_cast<size_t>(i)] = i + 1;
    s.tree.right[static_cast<size_t>(i)] = i + 2;
  }
  return s;
}

ValueNetConfig SmallConfig() {
  ValueNetConfig cfg;
  cfg.query_dim = 10;
  cfg.plan_dim = 7;
  cfg.query_fc = {16, 8};
  cfg.tree_channels = {12, 8};
  cfg.head_fc = {8};
  cfg.adam.lr = 3e-3f;
  return cfg;
}

TEST(ValueNetworkTest, PredictConsistentWithEmbeddingPath) {
  ValueNetwork net(SmallConfig());
  util::Rng rng(11);
  const PlanSample s = MakeSample(rng, 10, 7, 5);
  const float direct = net.Predict(s);
  const Matrix embed = net.EmbedQuery(s.query_vec);
  const float via_embed = net.PredictWithEmbedding(embed, s.tree, s.node_features);
  EXPECT_FLOAT_EQ(direct, via_embed);
}

TEST(ValueNetworkTest, DeterministicInit) {
  ValueNetwork a(SmallConfig()), b(SmallConfig());
  util::Rng rng(12);
  const PlanSample s = MakeSample(rng, 10, 7, 7);
  EXPECT_FLOAT_EQ(a.Predict(s), b.Predict(s));
}

TEST(ValueNetworkTest, OverfitsTinyDataset) {
  ValueNetwork net(SmallConfig());
  util::Rng rng(13);
  std::vector<PlanSample> samples;
  std::vector<float> targets;
  for (int i = 0; i < 8; ++i) {
    samples.push_back(MakeSample(rng, 10, 7, 3 + i % 4));
    targets.push_back(static_cast<float>(rng.NextUniform(-1, 1)));
  }
  std::vector<const PlanSample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);

  float first_loss = 0, last_loss = 0;
  for (int epoch = 0; epoch < 400; ++epoch) {
    const float loss = net.TrainBatch(ptrs, targets);
    if (epoch == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.05f);
  EXPECT_LT(last_loss, 0.02f);
}

TEST(ValueNetworkTest, VersionBumpsOnTraining) {
  ValueNetwork net(SmallConfig());
  util::Rng rng(14);
  const PlanSample s = MakeSample(rng, 10, 7, 3);
  EXPECT_EQ(net.version(), 0u);
  net.TrainBatch({&s}, {0.5f});
  EXPECT_EQ(net.version(), 1u);
}

TEST(ValueNetworkTest, HandlesSingleNodeForest) {
  ValueNetwork net(SmallConfig());
  util::Rng rng(15);
  PlanSample s = MakeSample(rng, 10, 7, 1);
  EXPECT_TRUE(std::isfinite(net.Predict(s)));
}

/// Random tree over `nodes` nodes: each node past the root attaches to a
/// random earlier node with a free child slot, so the batch contains nodes
/// with zero, one (left-only or right-only), and two children.
PlanSample MakeRandomTreeSample(util::Rng& rng, int query_dim, int plan_dim,
                                int nodes) {
  PlanSample s;
  s.query_vec = RandomMatrix(1, query_dim, rng);
  s.node_features = RandomMatrix(nodes, plan_dim, rng);
  s.tree.left.assign(static_cast<size_t>(nodes), -1);
  s.tree.right.assign(static_cast<size_t>(nodes), -1);
  for (int i = 1; i < nodes; ++i) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const int parent = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(i)));
      const bool go_left = rng.NextBool();
      int& slot = go_left ? s.tree.left[static_cast<size_t>(parent)]
                          : s.tree.right[static_cast<size_t>(parent)];
      if (slot == -1) {
        slot = i;
        break;
      }
    }
  }
  return s;
}

TEST(ValueNetworkTest, PredictBatchMatchesPerSamplePrediction) {
  ValueNetwork net(SmallConfig());
  util::Rng rng(16);
  // Mixed forest sizes: single-node trees, a two-node tree (one empty child
  // slot on the root), random shapes, and a larger chain.
  std::vector<PlanSample> samples;
  for (int nodes : {1, 2, 5, 1, 9, 17, 3}) {
    samples.push_back(MakeRandomTreeSample(rng, 10, 7, nodes));
  }
  std::vector<const PlanSample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);

  const Matrix embed = net.EmbedQuery(samples[0].query_vec);
  const std::vector<float> batched = net.PredictBatch(embed, ptrs);
  ASSERT_EQ(batched.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    const float single =
        net.PredictWithEmbedding(embed, samples[i].tree, samples[i].node_features);
    EXPECT_NEAR(batched[i], single, 1e-5) << "sample " << i;
    const float direct = net.Predict(samples[i]);  // Per-sample query stack.
    // Same query vector for all samples would be the search scenario; here
    // each sample has its own query_vec, so only compare the shared-embedding
    // paths. Predict must stay consistent with itself.
    EXPECT_TRUE(std::isfinite(direct));
  }
}

TEST(ValueNetworkTest, PackedTrainingFirstLossMatchesPerSample) {
  // Packing the minibatch into one forest must not change the forward pass:
  // every kernel is row-independent, so the first TrainBatch call (before
  // weights diverge by gradient-summation-order ulps) reports a bit-identical
  // loss on both paths, and both paths keep learning.
  ValueNetwork packed_net(SmallConfig());
  ValueNetwork loop_net(SmallConfig());
  loop_net.SetBatchedTraining(false);
  util::Rng rng(18);
  std::vector<PlanSample> samples;
  std::vector<float> targets;
  for (int i = 0; i < 12; ++i) {
    samples.push_back(MakeRandomTreeSample(rng, 10, 7, 1 + i % 7));
    targets.push_back(static_cast<float>(rng.NextUniform(-1, 1)));
  }
  std::vector<const PlanSample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);

  const float packed_first = packed_net.TrainBatch(ptrs, targets);
  const float loop_first = loop_net.TrainBatch(ptrs, targets);
  EXPECT_EQ(packed_first, loop_first);

  float packed_last = packed_first, loop_last = loop_first;
  for (int step = 0; step < 200; ++step) {
    packed_last = packed_net.TrainBatch(ptrs, targets);
    loop_last = loop_net.TrainBatch(ptrs, targets);
  }
  EXPECT_LT(packed_last, packed_first * 0.5f);
  EXPECT_NEAR(packed_last, loop_last, 1e-3);
}

TEST(ValueNetworkTest, TrainBatchLossBitIdenticalAcrossThreadCounts) {
  // The issue's training determinism contract: loss curves are reproducible
  // at any thread count because every parallel loop partitions outputs, never
  // reductions. Train three identically-seeded nets at 1/2/8 threads and
  // require bit-equal losses at every step.
  util::Rng rng(19);
  std::vector<PlanSample> samples;
  std::vector<float> targets;
  for (int i = 0; i < 16; ++i) {
    samples.push_back(MakeRandomTreeSample(rng, 10, 7, 2 + i % 6));
    targets.push_back(static_cast<float>(rng.NextUniform(-1, 1)));
  }
  std::vector<const PlanSample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);

  std::vector<std::vector<float>> curves;
  for (int threads : {1, 2, 8}) {
    ValueNetwork net(SmallConfig());
    ComputeThreadsScope scope(threads);
    std::vector<float> curve;
    for (int step = 0; step < 8; ++step) curve.push_back(net.TrainBatch(ptrs, targets));
    curves.push_back(std::move(curve));
  }
  for (size_t t = 1; t < curves.size(); ++t) {
    for (size_t s = 0; s < curves[0].size(); ++s) {
      ASSERT_EQ(curves[0][s], curves[t][s]) << "thread arm " << t << " step " << s;
    }
  }
}

TEST(ValueNetworkTest, SparseVsDenseTrainingLossCurvesBitIdentical) {
  // The acceptance contract of the sparse training conv: loss curves from
  // the sparse (skip absent children) and dense (zero-padded) paths are
  // bit-identical — first step and every later step — across thread counts
  // 1/2/8 and under both the forced-portable and the dispatched arm.
  util::Rng rng(23);
  std::vector<PlanSample> samples;
  std::vector<float> targets;
  for (int i = 0; i < 16; ++i) {
    samples.push_back(MakeRandomTreeSample(rng, 10, 7, 1 + i % 8));
    targets.push_back(static_cast<float>(rng.NextUniform(-1, 1)));
  }
  std::vector<const PlanSample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);

  const auto curve = [&](bool sparse, int threads) {
    SparseTrainingScope mode(sparse);
    ComputeThreadsScope scope(threads);
    ValueNetwork net(SmallConfig());
    std::vector<float> losses;
    for (int step = 0; step < 6; ++step) {
      losses.push_back(net.TrainBatch(ptrs, targets));
    }
    return losses;
  };
  for (KernelIsa isa : AvailableKernelIsas()) {
    KernelIsaScope isa_scope(isa);
    for (int threads : {1, 2, 8}) {
      const std::vector<float> sparse = curve(true, threads);
      const std::vector<float> dense = curve(false, threads);
      ASSERT_EQ(sparse.size(), dense.size());
      for (size_t s = 0; s < sparse.size(); ++s) {
        ASSERT_EQ(sparse[s], dense[s])
            << KernelIsaName(isa) << " threads " << threads << " step " << s;
      }
      EXPECT_LT(sparse.back(), sparse.front());  // Still learning.
    }
  }
}

TEST(ValueNetworkTest, PerSampleTrainingBitIdenticalSparseVsDense) {
  // The per-sample fallback routes through the same block kernels, so its
  // loss curve obeys the same sparse/dense bit-identity.
  util::Rng rng(24);
  std::vector<PlanSample> samples;
  std::vector<float> targets;
  for (int i = 0; i < 8; ++i) {
    samples.push_back(MakeRandomTreeSample(rng, 10, 7, 1 + i % 6));
    targets.push_back(static_cast<float>(rng.NextUniform(-1, 1)));
  }
  std::vector<const PlanSample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);
  const auto curve = [&](bool sparse) {
    SparseTrainingScope mode(sparse);
    ValueNetwork net(SmallConfig());
    net.SetBatchedTraining(false);
    std::vector<float> losses;
    for (int step = 0; step < 4; ++step) losses.push_back(net.TrainBatch(ptrs, targets));
    return losses;
  };
  const std::vector<float> sparse = curve(true);
  const std::vector<float> dense = curve(false);
  for (size_t s = 0; s < sparse.size(); ++s) ASSERT_EQ(sparse[s], dense[s]);
}

TEST(ValueNetworkTest, TrainingReleasesScratchAndTracksPeak) {
  // Training scratch is RETAINED by default (zero-alloc steady state); with
  // retention off, batch-sized layer caches must not survive the step, and
  // either way the peak accounting observed the forward's activations.
  ValueNetwork net(SmallConfig());
  net.SetRetainTrainingScratch(false);
  util::Rng rng(25);
  std::vector<PlanSample> samples;
  std::vector<float> targets;
  for (int i = 0; i < 8; ++i) {
    samples.push_back(MakeRandomTreeSample(rng, 10, 7, 3 + i % 5));
    targets.push_back(0.25f);
  }
  std::vector<const PlanSample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);
  EXPECT_EQ(net.peak_training_scratch_bytes(), 0u);
  net.TrainBatch(ptrs, targets);
  EXPECT_EQ(net.current_training_scratch_bytes(), 0u);
  EXPECT_GT(net.peak_training_scratch_bytes(), 0u);
  // Conv train stats accumulated and reset cleanly.
  const auto stats = net.ConvTrainStats();
  ASSERT_EQ(stats.size(), SmallConfig().tree_channels.size());
  EXPECT_GT(stats[0].forward_madds, 0u);
  EXPECT_GT(stats[0].backward_madds, 0u);
  net.ResetConvTrainStats();
  EXPECT_EQ(net.ConvTrainStats()[0].forward_madds, 0u);
}

TEST(AdamTest, FusedUpdateBitIdenticalAcrossArmsAndThreads) {
  // The fused kernel's per-element op sequence is the same correctly-rounded
  // fma/mul/div/sqrt chain in every arm and in the scalar tails, so the
  // updated parameters must match bitwise across dispatch arms, thread
  // counts, and (via odd sizes) vector/tail splits.
  util::Rng rng(26);
  const int count = 10007;  // Odd: exercises every tail path.
  const Matrix w0 = RandomMatrix(1, count, rng);
  const Matrix g0 = RandomMatrix(1, count, rng);
  AdamOptions opt;
  opt.weight_decay = 0.01f;
  opt.grad_clip = 0.0f;  // Isolate the fused update from the clip reduction.

  const auto run = [&](KernelIsa isa, int threads) {
    KernelIsaScope isa_scope(isa);
    ComputeThreadsScope scope(threads);
    Param p;
    p.value = w0;
    p.grad = g0;
    Adam adam({&p}, opt);
    adam.Step();
    // Second step exercises nonzero m/v state.
    p.grad = g0;
    adam.Step();
    return p.value;
  };
  const Matrix ref = run(KernelIsa::kPortable, 1);
  for (KernelIsa isa : AvailableKernelIsas()) {
    for (int threads : {1, 2, 8}) {
      const Matrix got = run(isa, threads);
      for (size_t i = 0; i < ref.Size(); ++i) {
        ASSERT_EQ(ref.data()[i], got.data()[i])
            << KernelIsaName(isa) << " threads " << threads << " elem " << i;
      }
    }
  }
}

TEST(ValueNetworkTest, TrainBatchSpanOverloadMatchesVector) {
  ValueNetwork a(SmallConfig()), b(SmallConfig());
  util::Rng rng(20);
  std::vector<PlanSample> samples;
  std::vector<float> targets;
  for (int i = 0; i < 6; ++i) {
    samples.push_back(MakeSample(rng, 10, 7, 3 + i));
    targets.push_back(static_cast<float>(rng.NextUniform(-1, 1)));
  }
  std::vector<const PlanSample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);
  const float via_vector = a.TrainBatch(ptrs, targets);
  const float via_span = b.TrainBatch(ptrs.data(), targets.data(), ptrs.size());
  EXPECT_EQ(via_vector, via_span);
}

TEST(ValueNetworkTest, PredictBatchBitIdenticalAcrossThreadCounts) {
  ValueNetwork net(SmallConfig());
  util::Rng rng(21);
  std::vector<PlanSample> samples;
  for (int nodes : {1, 4, 9, 17, 2, 33}) {
    samples.push_back(MakeRandomTreeSample(rng, 10, 7, nodes));
  }
  std::vector<const PlanSample*> ptrs;
  for (const auto& s : samples) ptrs.push_back(&s);
  const Matrix embed = net.EmbedQuery(samples[0].query_vec);
  const std::vector<float> serial = net.PredictBatch(embed, ptrs);
  for (int threads : {2, 8}) {
    ComputeThreadsScope scope(threads);
    const std::vector<float> par = net.PredictBatch(embed, ptrs);
    ASSERT_EQ(par.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i], par[i]) << threads << " threads, sample " << i;
    }
  }
}

TEST(ValueNetworkTest, ConcurrentPredictionMatchesSerial) {
  // Thread-safety of the inference path: N threads scoring with their own
  // InferenceContext against one shared network must reproduce the serial
  // scores exactly (the episode planner relies on this).
  ValueNetwork net(SmallConfig());
  util::Rng rng(22);
  std::vector<PlanSample> samples;
  for (int i = 0; i < 24; ++i) {
    samples.push_back(MakeRandomTreeSample(rng, 10, 7, 1 + i % 9));
  }
  const Matrix embed = net.EmbedQuery(samples[0].query_vec);
  std::vector<float> serial;
  for (const auto& s : samples) {
    serial.push_back(net.PredictWithEmbedding(embed, s.tree, s.node_features));
  }
  std::vector<float> parallel(samples.size(), 0.0f);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      ValueNetwork::InferenceContext ctx;
      for (size_t i = static_cast<size_t>(t); i < samples.size(); i += 4) {
        parallel[i] = net.PredictWithEmbedding(embed, samples[i].tree,
                                               samples[i].node_features, &ctx);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (size_t i = 0; i < samples.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "sample " << i;
  }
}

TEST(ValueNetworkTest, IncrementalPredictBatchBitIdenticalToFullPass) {
  // Activation reuse round trip: (1) a batch scored with every row dirty and
  // stored must match the plain pass bitwise; (2) re-scoring the same trees
  // with every row served from the stored activations must too; (3) a mixed
  // batch (one tree cached, one new tree dirty) must as well — the search's
  // parent/child scenario.
  ValueNetwork net(SmallConfig());
  util::Rng rng(23);
  PlanSample a = MakeRandomTreeSample(rng, 10, 7, 9);
  PlanSample b = MakeRandomTreeSample(rng, 10, 7, 5);
  PlanSample c = MakeRandomTreeSample(rng, 10, 7, 13);
  const Matrix embed = net.EmbedQuery(a.query_vec);
  const size_t entry = static_cast<size_t>(net.TotalConvChannels());

  const std::vector<float> ref_ab = net.PredictBatch(embed, {&a, &b});
  const std::vector<float> ref_ac = net.PredictBatch(embed, {&a, &c});

  // (1) All dirty, all stored.
  const PlanBatch ab = PackPlanBatch({&a, &b});
  const size_t n_ab = ab.forest.NumNodes();
  std::vector<float> slab(n_ab * entry, 0.0f);
  ActivationReuse reuse;
  reuse.cached.assign(n_ab, nullptr);
  reuse.store.assign(n_ab, nullptr);
  for (size_t i = 0; i < n_ab; ++i) reuse.store[i] = slab.data() + i * entry;
  const std::vector<float> dirty = net.PredictBatch(embed, ab, nullptr, &reuse);
  ASSERT_EQ(dirty.size(), ref_ab.size());
  for (size_t i = 0; i < ref_ab.size(); ++i) ASSERT_EQ(dirty[i], ref_ab[i]);

  // (2) All served from cache.
  reuse.store.assign(n_ab, nullptr);
  for (size_t i = 0; i < n_ab; ++i) reuse.cached[i] = slab.data() + i * entry;
  const std::vector<float> cached = net.PredictBatch(embed, ab, nullptr, &reuse);
  for (size_t i = 0; i < ref_ab.size(); ++i) ASSERT_EQ(cached[i], ref_ab[i]);

  // (3) Mixed: tree a's rows (the packed prefix) cached, tree c's dirty.
  const PlanBatch ac = PackPlanBatch({&a, &c});
  const size_t n_ac = ac.forest.NumNodes();
  const size_t n_a = a.tree.NumNodes();
  reuse.cached.assign(n_ac, nullptr);
  reuse.store.assign(n_ac, nullptr);
  for (size_t i = 0; i < n_a; ++i) reuse.cached[i] = slab.data() + i * entry;
  const std::vector<float> mixed = net.PredictBatch(embed, ac, nullptr, &reuse);
  ASSERT_EQ(mixed.size(), ref_ac.size());
  for (size_t i = 0; i < ref_ac.size(); ++i) ASSERT_EQ(mixed[i], ref_ac[i]);
}

TEST(ValueNetworkTest, IncrementalPredictBatchBitIdenticalAcrossThreadCounts) {
  // The dirty-row GEMMs partition over the pool like the full pass; scores
  // must not depend on the degree.
  ValueNetwork net(SmallConfig());
  util::Rng rng(24);
  PlanSample a = MakeRandomTreeSample(rng, 10, 7, 21);
  PlanSample b = MakeRandomTreeSample(rng, 10, 7, 17);
  const Matrix embed = net.EmbedQuery(a.query_vec);
  const size_t entry = static_cast<size_t>(net.TotalConvChannels());
  const PlanBatch batch = PackPlanBatch({&a, &b});
  const size_t n = batch.forest.NumNodes();
  std::vector<float> slab(n * entry, 0.0f);
  auto run = [&](int threads, bool cached_pass) {
    ComputeThreadsScope scope(threads);
    ActivationReuse reuse;
    reuse.cached.assign(n, nullptr);
    reuse.store.assign(n, nullptr);
    for (size_t i = 0; i < n; ++i) {
      // Alternate cached/dirty rows on the cached pass (cached rows come from
      // the serial all-dirty pass; parent trees always leave a mix).
      if (cached_pass && i % 2 == 0) {
        reuse.cached[i] = slab.data() + i * entry;
      } else {
        reuse.store[i] = slab.data() + i * entry;
      }
    }
    return net.PredictBatch(embed, batch, nullptr, &reuse);
  };
  const std::vector<float> serial = run(1, false);  // Fills the slab.
  for (int threads : {1, 2, 8}) {
    const std::vector<float> mixed = run(threads, true);
    ASSERT_EQ(mixed.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i], mixed[i]) << threads << " threads, plan " << i;
    }
  }
}

TEST(ValueNetworkTest, PredictBatchEmptyAndSingleton) {
  ValueNetwork net(SmallConfig());
  util::Rng rng(17);
  const PlanSample s = MakeSample(rng, 10, 7, 5);
  const Matrix embed = net.EmbedQuery(s.query_vec);
  EXPECT_TRUE(net.PredictBatch(embed, std::vector<const PlanSample*>{}).empty());
  const std::vector<float> one = net.PredictBatch(embed, {&s});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_NEAR(one[0], net.PredictWithEmbedding(embed, s.tree, s.node_features), 1e-5);
}

}  // namespace
}  // namespace neo::nn
