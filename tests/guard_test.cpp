// Guardrail tests: watchdog deadlines, the per-query circuit breaker, the
// model-health monitor's snapshot/rollback, deterministic fault injection,
// and the bounded-worst-case acceptance contract (guarded workload latency
// stays within the watchdog factor of the expert baseline while an unguarded
// run under the same faults demonstrably regresses).
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "src/core/neo.h"
#include "src/datagen/imdb_gen.h"
#include "src/query/builder.h"
#include "src/query/job_workload.h"

namespace neo::core {
namespace {

using engine::EngineKind;
using query::PredOp;
using query::Query;
using query::QueryBuilder;

class GuardFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GenOptions opt;
    opt.scale = 0.05;
    ds_ = new datagen::Dataset(datagen::GenerateImdb(opt));
    featurizer_ = new featurize::Featurizer(ds_->schema, *ds_->db, {});
  }
  static void TearDownTestSuite() {
    delete featurizer_;
    delete ds_;
  }
  static Query ThreeWay(int id) {
    QueryBuilder b(ds_->schema, *ds_->db, "gq3");
    b.JoinFk("movie_keyword", "title")
        .JoinFk("movie_keyword", "keyword")
        .PredStr("keyword", "keyword", PredOp::kContains, "love");
    Query q = b.Build();
    q.id = id;
    return q;
  }
  static NeoConfig SmallConfig(uint64_t seed = 7) {
    NeoConfig cfg;
    cfg.net.query_fc = {64, 32};
    cfg.net.tree_channels = {32, 16};
    cfg.net.head_fc = {16};
    cfg.net.adam.lr = 1e-3f;
    cfg.epochs_per_episode = 4;
    cfg.batch_size = 32;
    cfg.search.max_expansions = 60;
    cfg.seed = seed;
    return cfg;
  }
  static datagen::Dataset* ds_;
  static featurize::Featurizer* featurizer_;
};

datagen::Dataset* GuardFixture::ds_ = nullptr;
featurize::Featurizer* GuardFixture::featurizer_ = nullptr;

// ---- Circuit breaker state machine (pure unit tests) -----------------------

CircuitBreakerOptions BreakerOpts(int trip_after = 3, int cooldown = 2,
                                  int max_cooldown = 8) {
  CircuitBreakerOptions opt;
  opt.enabled = true;
  opt.trip_after = trip_after;
  opt.regression_factor = 1.5;
  opt.initial_cooldown = cooldown;
  opt.max_cooldown = max_cooldown;
  return opt;
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveRegressions) {
  CircuitBreaker b(BreakerOpts(/*trip_after=*/3));
  const uint64_t fp = 101;
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(b.AllowLearned(fp));
    b.RecordLearnedOutcome(fp, /*regressed=*/true);
    EXPECT_EQ(b.StateOf(fp), CircuitBreaker::State::kClosed);
  }
  EXPECT_TRUE(b.AllowLearned(fp));
  b.RecordLearnedOutcome(fp, /*regressed=*/true);
  EXPECT_EQ(b.StateOf(fp), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.stats().trips, 1u);
  EXPECT_FALSE(b.AllowLearned(fp));  // Open: fallback serve.
  EXPECT_EQ(b.stats().fallback_serves, 1u);
}

TEST(CircuitBreakerTest, NonRegressionResetsConsecutiveCounter) {
  CircuitBreaker b(BreakerOpts(/*trip_after=*/2));
  const uint64_t fp = 7;
  b.RecordLearnedOutcome(fp, true);
  b.RecordLearnedOutcome(fp, false);  // Resets the streak.
  b.RecordLearnedOutcome(fp, true);
  EXPECT_EQ(b.StateOf(fp), CircuitBreaker::State::kClosed);
  b.RecordLearnedOutcome(fp, true);
  EXPECT_EQ(b.StateOf(fp), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, CooldownProbeAndRecovery) {
  CircuitBreaker b(BreakerOpts(/*trip_after=*/1, /*cooldown=*/2));
  const uint64_t fp = 9;
  b.RecordLearnedOutcome(fp, true);  // Trips immediately.
  ASSERT_EQ(b.StateOf(fp), CircuitBreaker::State::kOpen);
  // Two fallback serves, then the half-open probe.
  EXPECT_FALSE(b.AllowLearned(fp));
  EXPECT_FALSE(b.AllowLearned(fp));
  EXPECT_TRUE(b.AllowLearned(fp));
  EXPECT_EQ(b.StateOf(fp), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(b.stats().probes, 1u);
  // Winning probe closes the breaker and resets the backoff.
  b.RecordLearnedOutcome(fp, false);
  EXPECT_EQ(b.StateOf(fp), CircuitBreaker::State::kClosed);
  EXPECT_EQ(b.stats().recoveries, 1u);
  EXPECT_TRUE(b.AllowLearned(fp));
}

TEST(CircuitBreakerTest, FailedProbesBackOffExponentiallyWithCap) {
  CircuitBreaker b(BreakerOpts(/*trip_after=*/1, /*cooldown=*/1, /*max_cooldown=*/4));
  const uint64_t fp = 5;
  b.RecordLearnedOutcome(fp, true);  // Open, cooldown 1.
  // Each failed probe doubles the cooldown: 1 -> 2 -> 4 -> 4 (capped).
  for (const int expected_cooldown : {1, 2, 4, 4, 4}) {
    for (int i = 0; i < expected_cooldown; ++i) {
      EXPECT_FALSE(b.AllowLearned(fp)) << "cooldown " << expected_cooldown;
    }
    EXPECT_TRUE(b.AllowLearned(fp));  // The probe.
    b.RecordLearnedOutcome(fp, true);  // Probe loses.
    EXPECT_EQ(b.StateOf(fp), CircuitBreaker::State::kOpen);
  }
  EXPECT_EQ(b.stats().trips, 1u);
  EXPECT_EQ(b.stats().reopens, 5u);
}

TEST(CircuitBreakerTest, FingerprintsAreIsolated) {
  CircuitBreaker b(BreakerOpts(/*trip_after=*/1));
  b.RecordLearnedOutcome(1, true);
  EXPECT_EQ(b.StateOf(1), CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.StateOf(2), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.AllowLearned(2));
  EXPECT_EQ(b.num_tracked(), 2u);
}

TEST(CircuitBreakerTest, DisabledAlwaysServesLearned) {
  CircuitBreaker b;  // Default options: disabled.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(b.AllowLearned(3));
    b.RecordLearnedOutcome(3, true);
  }
  EXPECT_EQ(b.StateOf(3), CircuitBreaker::State::kClosed);
  EXPECT_EQ(b.stats().trips, 0u);
}

// ---- Fault injector --------------------------------------------------------

util::FaultInjectorConfig InjectorConfig(uint64_t seed) {
  util::FaultInjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = seed;
  cfg.latency_spike_p = 0.3;
  cfg.latency_spike_factor = 10.0;
  cfg.exec_failure_p = 0.2;
  cfg.weight_corruption_p = 0.5;
  return cfg;
}

TEST(FaultInjectorTest, DrawsAreDeterministicReplays) {
  util::FaultInjector a(InjectorConfig(99));
  util::FaultInjector b(InjectorConfig(99));
  for (int i = 0; i < 200; ++i) {
    const uint64_t key = static_cast<uint64_t>(i % 7);
    EXPECT_EQ(a.PerturbLatency(key, 10.0), b.PerturbLatency(key, 10.0)) << i;
    EXPECT_EQ(a.DrawExecutionFailure(key), b.DrawExecutionFailure(key)) << i;
    EXPECT_EQ(a.DrawWeightCorruption(key), b.DrawWeightCorruption(key)) << i;
  }
  EXPECT_EQ(a.latency_spikes(), b.latency_spikes());
  EXPECT_EQ(a.execution_failures(), b.execution_failures());
  EXPECT_EQ(a.weight_corruptions(), b.weight_corruptions());
  EXPECT_GT(a.latency_spikes(), 0u);
  EXPECT_GT(a.execution_failures(), 0u);
  EXPECT_GT(a.weight_corruptions(), 0u);
}

TEST(FaultInjectorTest, PerKeyScheduleIndependentOfInterleaving) {
  // Key k's i-th draw must not depend on draws of other keys in between:
  // injection schedules replay per plan, whatever the serve order.
  util::FaultInjector grouped(InjectorConfig(4));
  std::vector<bool> grouped_draws;
  for (uint64_t key : {1ULL, 2ULL}) {
    for (int i = 0; i < 20; ++i) grouped_draws.push_back(grouped.DrawExecutionFailure(key));
  }
  util::FaultInjector interleaved(InjectorConfig(4));
  std::vector<bool> key1, key2;
  for (int i = 0; i < 20; ++i) {
    key2.push_back(interleaved.DrawExecutionFailure(2));
    key1.push_back(interleaved.DrawExecutionFailure(1));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(key1[i], grouped_draws[i]) << i;
    EXPECT_EQ(key2[i], grouped_draws[20 + i]) << i;
  }
}

TEST(FaultInjectorTest, DisabledInjectsNothing) {
  util::FaultInjectorConfig cfg = InjectorConfig(1);
  cfg.enabled = false;
  util::FaultInjector inj(cfg);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(inj.PerturbLatency(3, 5.0), 5.0);
    EXPECT_FALSE(inj.DrawExecutionFailure(3));
    EXPECT_FALSE(inj.DrawWeightCorruption(3));
  }
  EXPECT_EQ(inj.latency_spikes(), 0u);
}

/// Scoped setenv that restores the previous value on destruction, so this
/// suite can run inside the CI fault arm (which itself sets NEO_FAULT_*)
/// without clobbering the arm's environment for later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(FaultInjectorTest, FromEnvParsesVariables) {
  ScopedEnv e1("NEO_FAULT_INJECT", "1");
  ScopedEnv e2("NEO_FAULT_SEED", "1234");
  ScopedEnv e3("NEO_FAULT_SPIKE_P", "0.5");
  ScopedEnv e4("NEO_FAULT_SPIKE_FACTOR", "25");
  ScopedEnv e5("NEO_FAULT_FAIL_P", "0.125");
  ScopedEnv e6("NEO_FAULT_CORRUPT_P", "0.75");
  const util::FaultInjectorConfig cfg = util::FaultInjectorConfig::FromEnv();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.seed, 1234u);
  EXPECT_DOUBLE_EQ(cfg.latency_spike_p, 0.5);
  EXPECT_DOUBLE_EQ(cfg.latency_spike_factor, 25.0);
  EXPECT_DOUBLE_EQ(cfg.exec_failure_p, 0.125);
  EXPECT_DOUBLE_EQ(cfg.weight_corruption_p, 0.75);
}

TEST(FaultInjectorTest, FromEnvDisabledByDefaultAndByZero) {
  {
    ScopedEnv e("NEO_FAULT_INJECT", nullptr);
    EXPECT_FALSE(util::FaultInjectorConfig::FromEnv().enabled);
  }
  {
    ScopedEnv e("NEO_FAULT_INJECT", "0");
    EXPECT_FALSE(util::FaultInjectorConfig::FromEnv().enabled);
  }
}

// ---- Engine watchdog + bounded latency cache -------------------------------

TEST_F(GuardFixture, WatchdogClipsLatencyAndReportsTimeout) {
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  auto native = optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
  const Query q = ThreeWay(300);
  const plan::PartialPlan plan = native.optimizer->Optimize(q);
  const double full = engine.ExecutePlan(q, plan);
  ASSERT_GT(full, 0.0);

  engine::ExecutionEngine fresh(ds_->schema, *ds_->db, EngineKind::kPostgres);
  const engine::ExecutionResult r = fresh.ExecutePlanGuarded(q, plan, full * 0.5);
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.status.code(), util::Status::Code::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(r.latency_ms, full * 0.5);
  EXPECT_DOUBLE_EQ(r.model_latency_ms, full);
  // The killed execution accrues only the deadline's worth of simulated time.
  EXPECT_DOUBLE_EQ(fresh.simulated_execution_ms(), full * 0.5);
  EXPECT_EQ(fresh.num_timeouts(), 1u);
}

TEST_F(GuardFixture, NoDeadlineMatchesUnguardedExecute) {
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  auto native = optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
  const Query q = ThreeWay(301);
  const plan::PartialPlan plan = native.optimizer->Optimize(q);
  const double plain = engine.ExecutePlan(q, plan);
  const engine::ExecutionResult r = engine.ExecutePlanGuarded(q, plan, 0.0);
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(r.status.ok());
  EXPECT_DOUBLE_EQ(r.latency_ms, plain);
  // A generous deadline also leaves the result untouched.
  const engine::ExecutionResult r2 = engine.ExecutePlanGuarded(q, plan, plain * 100);
  EXPECT_FALSE(r2.timed_out);
  EXPECT_DOUBLE_EQ(r2.latency_ms, plain);
  EXPECT_EQ(engine.num_timeouts(), 0u);
}

TEST_F(GuardFixture, InjectedSpikeTriggersWatchdog) {
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  auto native = optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
  const Query q = ThreeWay(302);
  const plan::PartialPlan plan = native.optimizer->Optimize(q);
  const double base = engine.ExecutePlan(q, plan);

  util::FaultInjectorConfig cfg;
  cfg.enabled = true;
  cfg.seed = 11;
  cfg.latency_spike_p = 1.0;  // Every execution spikes.
  cfg.latency_spike_factor = 50.0;
  util::FaultInjector injector(cfg);
  engine.SetFaultInjector(&injector);
  // Deadline 2x the honest latency: only the spike can breach it.
  const engine::ExecutionResult r = engine.ExecutePlanGuarded(q, plan, base * 2.0);
  EXPECT_TRUE(r.timed_out);
  EXPECT_DOUBLE_EQ(r.latency_ms, base * 2.0);
  EXPECT_DOUBLE_EQ(r.model_latency_ms, base * 50.0);
  EXPECT_EQ(injector.latency_spikes(), 1u);
  engine.SetFaultInjector(nullptr);
}

TEST_F(GuardFixture, LatencyCacheIsBoundedAndRecomputesDeterministically) {
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  auto native = optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
  const auto wl = query::MakeJobWorkload(ds_->schema, *ds_->db);
  const Query& qa = wl.query(0);
  const Query& qb = wl.query(1);
  const plan::PartialPlan pa = native.optimizer->Optimize(qa);
  const plan::PartialPlan pb = native.optimizer->Optimize(qb);

  engine.SetLatencyCacheCap(1);  // Room for a single memoized plan.
  const double a1 = engine.ExecutePlan(qa, pa);  // Miss.
  const double b1 = engine.ExecutePlan(qb, pb);  // Miss, evicts a.
  const double a2 = engine.ExecutePlan(qa, pa);  // Miss again (was evicted).
  EXPECT_EQ(engine.latency_cache_hits(), 0u);
  EXPECT_EQ(engine.latency_cache_misses(), 3u);
  EXPECT_EQ(engine.latency_cache_evictions(), 2u);
  EXPECT_EQ(engine.num_distinct_plans(), 1u);
  // The model is deterministic: eviction costs recomputation, never drift.
  EXPECT_DOUBLE_EQ(a1, a2);
  EXPECT_NE(a1, b1);

  // Re-executing the resident plan hits.
  engine.ExecutePlan(qa, pa);
  EXPECT_EQ(engine.latency_cache_hits(), 1u);
}

TEST_F(GuardFixture, DefaultLatencyCacheCapIsLarge) {
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  EXPECT_EQ(engine::ExecutionEngine::kDefaultLatencyCacheCap, size_t{1} << 20);
  EXPECT_EQ(engine.latency_cache_evictions(), 0u);
}

// ---- NeoConfig::latency_clip_ms (satellite coverage) -----------------------

TEST_F(GuardFixture, LatencyClipOffByDefault) {
  EXPECT_EQ(NeoConfig().latency_clip_ms, 0.0);
  // With the default config, experience records the unclipped latency.
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  Neo neo(featurizer_, &engine, SmallConfig());
  auto native = optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
  const Query q = ThreeWay(310);
  neo.Bootstrap({&q}, native.optimizer.get());
  EXPECT_DOUBLE_EQ(neo.experience().BestCost(q.id), neo.Baseline(q.id));
}

TEST_F(GuardFixture, LatencyClipClampsExperienceCosts) {
  engine::ExecutionEngine probe(ds_->schema, *ds_->db, EngineKind::kPostgres);
  auto native = optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
  const Query q = ThreeWay(311);
  const double full = probe.ExecutePlan(q, native.optimizer->Optimize(q));

  NeoConfig cfg = SmallConfig();
  cfg.latency_clip_ms = full * 0.5;
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  Neo neo(featurizer_, &engine, cfg);
  neo.Bootstrap({&q}, native.optimizer.get());
  // The baseline keeps the true latency; the experience label is clipped.
  EXPECT_DOUBLE_EQ(neo.Baseline(q.id), full);
  EXPECT_DOUBLE_EQ(neo.experience().BestCost(q.id), full * 0.5);
}

TEST_F(GuardFixture, WatchdogObservationComposesWithLatencyClip) {
  // Watchdog first (the execution is killed at the deadline, so the deadline
  // IS the observation), then latency_clip_ms clips the experience label.
  auto native = optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
  const Query q = ThreeWay(312);

  NeoConfig cfg = SmallConfig();
  cfg.guards.watchdog.deadline_ms = 1e-5;  // Everything times out.
  cfg.latency_clip_ms = 0.5e-5;            // Clip below the deadline.
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  Neo neo(featurizer_, &engine, cfg);
  ASSERT_TRUE(neo.GuardsActive());
  neo.Bootstrap({&q}, native.optimizer.get());
  const double served = neo.ExecuteAndLearn(q);
  EXPECT_DOUBLE_EQ(served, 1e-5);  // Incurred latency = deadline.
  EXPECT_GE(neo.guard_stats().timeouts, 1);
  // Experience saw CostOf(min(latency, deadline)) = the clip.
  EXPECT_DOUBLE_EQ(neo.experience().BestCost(q.id), 0.5e-5);
}

// ---- Model health monitor --------------------------------------------------

nn::ValueNetConfig TinyNetConfig(uint64_t seed) {
  nn::ValueNetConfig cfg;
  cfg.query_dim = 12;
  cfg.plan_dim = 9;
  cfg.query_fc = {16, 8};
  cfg.tree_channels = {12, 8};
  cfg.head_fc = {8};
  cfg.seed = seed;
  return cfg;
}

nn::PlanSample TinySample(util::Rng& rng) {
  nn::PlanSample s;
  s.query_vec = nn::Matrix(1, 12);
  s.node_features = nn::Matrix(5, 9);
  for (size_t i = 0; i < s.query_vec.Size(); ++i) {
    s.query_vec.data()[i] = static_cast<float>(rng.NextUniform(-1, 1));
  }
  for (size_t i = 0; i < s.node_features.Size(); ++i) {
    s.node_features.data()[i] = static_cast<float>(rng.NextUniform(-1, 1));
  }
  s.tree.left = {1, -1, -1, -1, -1};
  s.tree.right = {2, -1, -1, -1, -1};
  return s;
}

nn::ModelHealthOptions HealthOpts() {
  nn::ModelHealthOptions opt;
  opt.enabled = true;
  opt.snapshot_ring = 2;
  return opt;
}

TEST(ModelHealthTest, PoisonedWeightsRollBackBitwise) {
  nn::ValueNetwork net(TinyNetConfig(5));
  util::Rng rng(6);
  const nn::PlanSample s = TinySample(rng);
  for (int i = 0; i < 10; ++i) net.TrainBatch({&s}, {0.7f});

  nn::ModelHealthMonitor monitor(HealthOpts());
  ASSERT_EQ(monitor.Observe(&net, 0.5), nn::ModelHealthMonitor::Verdict::kHealthy);
  EXPECT_EQ(monitor.snapshots_taken(), 1);
  const float healthy_pred = net.Predict(s);
  const uint64_t healthy_version = net.version();

  net.DebugPoisonWeights(/*key=*/17);
  ASSERT_TRUE(net.HasNonFiniteParams());
  EXPECT_GT(net.version(), healthy_version);  // Poison bumps like any mutation.

  const auto verdict = monitor.Observe(&net, 0.5);
  EXPECT_EQ(verdict, nn::ModelHealthMonitor::Verdict::kNonFiniteWeights);
  EXPECT_EQ(monitor.rollbacks(), 1);
  EXPECT_FALSE(net.HasNonFiniteParams());
  // Rollback restores the snapshot's weights exactly...
  EXPECT_EQ(net.Predict(s), healthy_pred);
  // ...under a NEW version, so weight-derived caches invalidate.
  EXPECT_GT(net.version(), healthy_version + 1);
}

TEST(ModelHealthTest, NonFiniteLossDetected) {
  nn::ValueNetwork net(TinyNetConfig(5));
  nn::ModelHealthMonitor monitor(HealthOpts());
  ASSERT_EQ(monitor.Observe(&net, 0.4), nn::ModelHealthMonitor::Verdict::kHealthy);
  const auto verdict =
      monitor.Observe(&net, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(verdict, nn::ModelHealthMonitor::Verdict::kNonFiniteLoss);
  EXPECT_EQ(monitor.rollbacks(), 1);
}

TEST(ModelHealthTest, LossDivergenceUsesMedianWindow) {
  nn::ValueNetwork net(TinyNetConfig(5));
  nn::ModelHealthOptions opt = HealthOpts();
  opt.loss_divergence_factor = 10.0;
  opt.loss_window = 4;
  nn::ModelHealthMonitor monitor(opt);
  // Window not yet full: even a big loss passes (no operating band yet).
  EXPECT_EQ(monitor.Observe(&net, 50.0), nn::ModelHealthMonitor::Verdict::kHealthy);
  for (double loss : {1.0, 1.2, 0.9, 1.1}) {
    EXPECT_EQ(monitor.Observe(&net, loss), nn::ModelHealthMonitor::Verdict::kHealthy);
  }
  // Median of the window is ~1.1 (the 50.0 rolled out); 50 > 10 x median.
  EXPECT_EQ(monitor.Observe(&net, 50.0),
            nn::ModelHealthMonitor::Verdict::kLossDiverged);
  EXPECT_EQ(monitor.rollbacks(), 1);
  // A normal loss is healthy again after the rollback.
  EXPECT_EQ(monitor.Observe(&net, 1.0), nn::ModelHealthMonitor::Verdict::kHealthy);
}

TEST(ModelHealthTest, DisabledIsNoOp) {
  nn::ValueNetwork net(TinyNetConfig(5));
  nn::ModelHealthMonitor monitor;  // Default: disabled.
  EXPECT_EQ(monitor.Observe(&net, std::numeric_limits<double>::quiet_NaN()),
            nn::ModelHealthMonitor::Verdict::kHealthy);
  EXPECT_EQ(monitor.snapshots_taken(), 0);
  EXPECT_EQ(monitor.rollbacks(), 0);
}

TEST(ModelHealthTest, FirstRetrainDivergenceHasNothingToRestore) {
  nn::ValueNetwork net(TinyNetConfig(5));
  nn::ModelHealthMonitor monitor(HealthOpts());
  net.DebugPoisonWeights(3);
  EXPECT_EQ(monitor.Observe(&net, 0.5),
            nn::ModelHealthMonitor::Verdict::kNonFiniteWeights);
  EXPECT_EQ(monitor.rollbacks(), 0);  // Ring was empty.
  EXPECT_TRUE(net.HasNonFiniteParams());
}

TEST_F(GuardFixture, RetrainCorruptionRollsBackAndInvalidatesSearchCache) {
  auto native = optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
  NeoConfig cfg = SmallConfig();
  cfg.guards.health.enabled = true;
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  Neo neo(featurizer_, &engine, cfg);
  const Query q = ThreeWay(320);
  neo.Bootstrap({&q}, native.optimizer.get());
  neo.Retrain();  // Healthy: takes the last-good snapshot.
  ASSERT_TRUE(neo.health().has_snapshot());

  // Warm the search's score cache so invalidation is observable.
  SearchOptions opt;
  opt.max_expansions = 20;
  const SearchResult warm = neo.search().FindPlan(q, opt);
  EXPECT_GT(warm.evaluations, 0u);

  util::FaultInjectorConfig fcfg;
  fcfg.enabled = true;
  fcfg.seed = 13;
  fcfg.weight_corruption_p = 1.0;  // This retrain's step corrupts.
  util::FaultInjector injector(fcfg);
  neo.SetFaultInjector(&injector);
  neo.Retrain();
  neo.SetFaultInjector(nullptr);
  EXPECT_EQ(injector.weight_corruptions(), 1u);
  EXPECT_EQ(neo.guard_stats().health_rollbacks, 1);
  EXPECT_FALSE(neo.net().HasNonFiniteParams());

  // The rollback bumped the net version: the repeat search re-evaluates
  // instead of serving score-cache entries from the corrupted-then-restored
  // weight history.
  const SearchResult after = neo.search().FindPlan(q, opt);
  EXPECT_GT(after.evaluations, 0u);
  EXPECT_TRUE(after.plan.IsComplete());
}

// ---- Guards-off parity and inert-guard overhead ----------------------------

TEST_F(GuardFixture, InertGuardsMatchGuardsOffBitwise) {
  // Enabled-but-never-firing guards take the guarded serve path; episode
  // outcomes must still be bit-identical to the guards-off fast path (which
  // is the pre-guardrail code). This pins the guarded path's accounting:
  // same plans, same latencies, same experience.
  const auto wl = query::MakeJobWorkload(ds_->schema, *ds_->db);
  std::vector<const Query*> train;
  for (size_t i = 0; i < wl.size(); i += 19) train.push_back(&wl.query(i));
  ASSERT_GE(train.size(), 5u);

  auto run = [&](bool inert_guards) {
    engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
    auto native =
        optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
    NeoConfig cfg = SmallConfig();
    cfg.search.max_expansions = 20;
    if (inert_guards) {
      cfg.guards.watchdog.deadline_ms = 1e18;
      cfg.guards.breaker.enabled = true;
      cfg.guards.breaker.regression_factor = 1e18;
      cfg.guards.health.enabled = true;
    }
    Neo neo(featurizer_, &engine, cfg);
    EXPECT_EQ(neo.GuardsActive(), inert_guards);
    neo.Bootstrap(train, native.optimizer.get());
    std::vector<EpisodeStats> stats;
    for (int e = 0; e < 2; ++e) stats.push_back(neo.RunEpisode(train));
    return stats;
  };
  const auto off = run(false);
  const auto inert = run(true);
  ASSERT_EQ(off.size(), inert.size());
  for (size_t e = 0; e < off.size(); ++e) {
    EXPECT_EQ(off[e].train_total_latency_ms, inert[e].train_total_latency_ms)
        << "episode " << e;
    EXPECT_EQ(off[e].retrain_loss, inert[e].retrain_loss) << "episode " << e;
    EXPECT_EQ(off[e].experience_states, inert[e].experience_states);
  }
}

TEST_F(GuardFixture, GuardedEpisodesBitIdenticalAcrossThreadCounts) {
  // Guardrails decide serves in the serial execution phase, so the parallel-
  // episode determinism contract must survive with every guard armed and
  // actually firing (tight watchdog + tripping breaker).
  const auto wl = query::MakeJobWorkload(ds_->schema, *ds_->db);
  std::vector<const Query*> train;
  for (size_t i = 0; i < wl.size(); i += 19) train.push_back(&wl.query(i));

  auto run = [&](int threads) {
    engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
    auto native =
        optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
    NeoConfig cfg = SmallConfig();
    cfg.threads = threads;
    cfg.search.max_expansions = 20;
    cfg.guards.watchdog.baseline_factor = 1.01;  // Hair-trigger watchdog.
    cfg.guards.breaker.enabled = true;
    cfg.guards.breaker.trip_after = 1;
    cfg.guards.breaker.regression_factor = 1.0;
    cfg.guards.health.enabled = true;
    Neo neo(featurizer_, &engine, cfg);
    neo.Bootstrap(train, native.optimizer.get());
    std::vector<EpisodeStats> stats;
    for (int e = 0; e < 2; ++e) stats.push_back(neo.RunEpisode(train));
    return std::make_pair(stats, neo.guard_stats());
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  for (size_t e = 0; e < serial.first.size(); ++e) {
    EXPECT_EQ(serial.first[e].train_total_latency_ms,
              parallel.first[e].train_total_latency_ms)
        << "episode " << e;
    EXPECT_EQ(serial.first[e].experience_states, parallel.first[e].experience_states);
  }
  EXPECT_EQ(serial.second.fallback_serves, parallel.second.fallback_serves);
  EXPECT_EQ(serial.second.timeouts, parallel.second.timeouts);
  EXPECT_EQ(serial.second.breaker_trips, parallel.second.breaker_trips);
  EXPECT_EQ(serial.second.learned_serves, parallel.second.learned_serves);
}

// ---- Bounded worst case under fault injection (acceptance) -----------------

TEST_F(GuardFixture, GuardedWorkloadBoundedWhileUnguardedRegresses) {
  // The PR's acceptance contract. Under injected latency spikes and
  // execution failures:
  //   - unguarded total workload latency demonstrably regresses vs the
  //     expert baseline (spikes flow straight through), while
  //   - guarded total latency stays within the watchdog factor of the expert
  //     baseline — structurally: every guarded serve (learned or fallback)
  //     is clipped at baseline_factor x the query's expert baseline.
  // Fault params are fixed; the seed follows NEO_FAULT_SEED when the CI
  // fault arm sets it, so the matrix exercises several schedules.
  util::FaultInjectorConfig fcfg;
  fcfg.enabled = true;
  fcfg.seed = 42;
  if (const char* env_seed = std::getenv("NEO_FAULT_SEED")) {
    fcfg.seed = static_cast<uint64_t>(std::strtoull(env_seed, nullptr, 10));
  }
  fcfg.latency_spike_p = 0.25;
  fcfg.latency_spike_factor = 40.0;
  fcfg.exec_failure_p = 0.05;

  const auto wl = query::MakeJobWorkload(ds_->schema, *ds_->db);
  std::vector<const Query*> train;
  for (size_t i = 0; i < wl.size(); i += 7) train.push_back(&wl.query(i));
  ASSERT_GE(train.size(), 15u);
  constexpr int kEpisodes = 3;
  constexpr double kWatchdogFactor = 2.0;

  // Clean expert baseline for one pass over the workload.
  double expert_pass = 0.0;
  {
    engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
    auto native =
        optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
    for (const Query* q : train) {
      expert_pass += engine.ExecutePlan(*q, native.optimizer->Optimize(*q));
    }
  }
  ASSERT_GT(expert_pass, 0.0);
  const double expert_total = expert_pass * kEpisodes;

  auto run_arm = [&](bool guarded) {
    engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
    auto native =
        optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
    NeoConfig cfg = SmallConfig();
    cfg.search.max_expansions = 20;
    if (guarded) {
      cfg.guards.watchdog.baseline_factor = kWatchdogFactor;
      cfg.guards.breaker.enabled = true;
      cfg.guards.breaker.trip_after = 1;
      cfg.guards.breaker.regression_factor = 1.5;
      cfg.guards.breaker.initial_cooldown = 1;
      cfg.guards.health.enabled = true;
    }
    Neo neo(featurizer_, &engine, cfg);
    // Bootstrap runs fault-free (baselines must be honest expert latencies);
    // faults arm for the serving episodes.
    neo.Bootstrap(train, native.optimizer.get());
    util::FaultInjector injector(fcfg);
    engine.SetFaultInjector(&injector);
    double total = 0.0;
    for (int e = 0; e < kEpisodes; ++e) {
      total += neo.RunEpisode(train).train_total_latency_ms;
    }
    engine.SetFaultInjector(nullptr);
    return std::make_pair(total, neo.guard_stats());
  };

  const auto unguarded = run_arm(false);
  const auto guarded = run_arm(true);

  // Unguarded: spikes (expected multiplier ~1 + 0.25 * 39) blow the total
  // far past the expert baseline.
  EXPECT_GT(unguarded.first, 2.5 * expert_total);
  EXPECT_EQ(unguarded.second.timeouts, 0);
  EXPECT_EQ(unguarded.second.fallback_serves, 0);

  // Guarded: structurally bounded — every serve clipped at
  // kWatchdogFactor x its query's baseline.
  EXPECT_LE(guarded.first, kWatchdogFactor * expert_total * (1.0 + 1e-9));
  EXPECT_LT(guarded.first, unguarded.first);
  // The guardrails actually engaged.
  EXPECT_GE(guarded.second.timeouts, 1);
  EXPECT_GE(guarded.second.breaker_trips, 1);
  EXPECT_GE(guarded.second.fallback_serves, 1);
}

}  // namespace
}  // namespace neo::core
