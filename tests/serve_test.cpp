// Serving-core tests: cross-query coalesced inference bit-identity, the
// single-client serving == inline-loop parity contract, shared-cache
// exactness under concurrency, RCU generation invalidation, retraining
// overlapped with serving, the engine memo's concurrent counter exactness,
// and the guarded-serve latency bound under fault injection. The asan/tsan
// CI arms run this whole file, so every test doubles as a race probe.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/neo.h"
#include "src/datagen/imdb_gen.h"
#include "src/query/builder.h"
#include "src/query/job_workload.h"
#include "src/serve/serving_core.h"

namespace neo::serve {
namespace {

using core::Neo;
using core::NeoConfig;
using engine::EngineKind;
using query::PredOp;
using query::Query;
using query::QueryBuilder;

class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GenOptions opt;
    opt.scale = 0.05;
    ds_ = new datagen::Dataset(datagen::GenerateImdb(opt));
    featurizer_ = new featurize::Featurizer(ds_->schema, *ds_->db, {});
    wl_ = new query::Workload(query::MakeJobWorkload(ds_->schema, *ds_->db));
  }
  static void TearDownTestSuite() {
    delete wl_;
    delete featurizer_;
    delete ds_;
  }

  static NeoConfig SmallConfig(uint64_t seed = 7) {
    NeoConfig cfg;
    cfg.net.query_fc = {64, 32};
    cfg.net.tree_channels = {32, 16};
    cfg.net.head_fc = {16};
    cfg.net.adam.lr = 1e-3f;
    cfg.epochs_per_episode = 4;
    cfg.batch_size = 32;
    cfg.search.max_expansions = 40;
    cfg.seed = seed;
    return cfg;
  }

  /// A small spread of workload queries (every 19th JOB variant).
  static std::vector<const Query*> TrainSet() {
    std::vector<const Query*> train;
    for (size_t i = 0; i < wl_->size(); i += 19) train.push_back(&wl_->query(i));
    return train;
  }

  /// A bootstrapped Neo plus its private engine — twin rigs built from the
  /// same config are bit-identical (same net seed, same expert baselines).
  struct Rig {
    std::unique_ptr<engine::ExecutionEngine> engine;
    std::unique_ptr<Neo> neo;
  };
  static Rig MakeRig(const std::vector<const Query*>& train, const NeoConfig& cfg) {
    Rig r;
    r.engine = std::make_unique<engine::ExecutionEngine>(ds_->schema, *ds_->db,
                                                         EngineKind::kPostgres);
    r.neo = std::make_unique<Neo>(featurizer_, r.engine.get(), cfg);
    auto native =
        optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
    r.neo->Bootstrap(train, native.optimizer.get());
    return r;
  }

  static datagen::Dataset* ds_;
  static featurize::Featurizer* featurizer_;
  static query::Workload* wl_;
};

datagen::Dataset* ServeFixture::ds_ = nullptr;
featurize::Featurizer* ServeFixture::featurizer_ = nullptr;
query::Workload* ServeFixture::wl_ = nullptr;

// ---- Cross-query coalesced inference (PredictBatchMulti) -------------------

TEST_F(ServeFixture, PredictBatchMultiBitwiseEqualsSoloPredictBatch) {
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  nn::ValueNetConfig cfg;
  cfg.query_dim = featurizer_->query_dim();
  cfg.plan_dim = featurizer_->plan_dim();
  cfg.query_fc = {32, 16};
  cfg.tree_channels = {16, 8};
  cfg.head_fc = {8};
  cfg.seed = 3;
  nn::ValueNetwork net(cfg);
  core::PlanSearch helper(featurizer_, &net);

  // Three distinct queries, each contributing one expansion round's worth of
  // candidate plans (the exact batch shape serving coalesces).
  const std::vector<const Query*> queries = {&wl_->query(0), &wl_->query(19),
                                             &wl_->query(38)};
  std::vector<nn::Matrix> embeds;
  std::vector<nn::PlanBatch> batches;
  std::vector<std::vector<plan::PartialPlan>> children(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = *queries[i];
    children[i] = helper.Children(q, plan::PartialPlan::Initial(q));
    ASSERT_GT(children[i].size(), 1u) << "query " << i;
    std::vector<const plan::PartialPlan*> ptrs;
    for (const plan::PartialPlan& p : children[i]) ptrs.push_back(&p);
    nn::PlanBatch batch;
    featurizer_->EncodePlanBatch(q, ptrs, &batch);
    batches.push_back(std::move(batch));
    embeds.push_back(net.EmbedQuery(featurizer_->EncodeQuery(q)));
  }

  nn::ValueNetwork::InferenceContext solo_ctx;
  std::vector<float> expected;
  for (size_t i = 0; i < queries.size(); ++i) {
    const std::vector<float> scores =
        net.PredictBatch(embeds[i], batches[i], &solo_ctx);
    expected.insert(expected.end(), scores.begin(), scores.end());
  }

  std::vector<nn::MultiPredictItem> items;
  for (size_t i = 0; i < queries.size(); ++i) {
    items.push_back({&embeds[i], &batches[i], nullptr});
  }
  nn::ValueNetwork::InferenceContext multi_ctx;
  const std::vector<float> merged =
      net.PredictBatchMulti(items.data(), items.size(), &multi_ctx);
  ASSERT_EQ(merged.size(), expected.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i], expected[i]) << "row " << i;  // Bitwise.
  }

  // n == 1 delegates to the plain batched path.
  const std::vector<float> one =
      net.PredictBatchMulti(items.data(), 1, &multi_ctx);
  const std::vector<float> direct = net.PredictBatch(embeds[0], batches[0], &solo_ctx);
  ASSERT_EQ(one.size(), direct.size());
  for (size_t i = 0; i < one.size(); ++i) EXPECT_EQ(one[i], direct[i]);
}

TEST_F(ServeFixture, CoalescerIsBitTransparentUnderConcurrency) {
  // Hammer one BatchCoalescer from four threads; whatever merge pattern the
  // scheduler produces, every returned score vector must be bitwise equal to
  // the direct PredictBatch of the same request.
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  nn::ValueNetConfig cfg;
  cfg.query_dim = featurizer_->query_dim();
  cfg.plan_dim = featurizer_->plan_dim();
  cfg.query_fc = {32, 16};
  cfg.tree_channels = {16, 8};
  cfg.head_fc = {8};
  cfg.seed = 5;
  nn::ValueNetwork net(cfg);
  core::PlanSearch helper(featurizer_, &net);

  constexpr int kThreads = 4;
  constexpr int kIters = 50;
  std::vector<const Query*> queries;
  for (int t = 0; t < kThreads; ++t) queries.push_back(&wl_->query(static_cast<size_t>(t) * 7));

  // Per-thread request + its solo reference, computed up front.
  std::vector<nn::Matrix> embeds;
  std::vector<nn::PlanBatch> batches;
  std::vector<std::vector<plan::PartialPlan>> children(queries.size());
  std::vector<std::vector<float>> reference;
  {
    nn::ValueNetwork::InferenceContext ctx;
    for (size_t i = 0; i < queries.size(); ++i) {
      const Query& q = *queries[i];
      children[i] = helper.Children(q, plan::PartialPlan::Initial(q));
      std::vector<const plan::PartialPlan*> ptrs;
      for (const plan::PartialPlan& p : children[i]) ptrs.push_back(&p);
      nn::PlanBatch batch;
      featurizer_->EncodePlanBatch(q, ptrs, &batch);
      batches.push_back(std::move(batch));
      embeds.push_back(net.EmbedQuery(featurizer_->EncodeQuery(q)));
      reference.push_back(net.PredictBatch(embeds[i], batches[i], &ctx));
    }
  }

  BatchCoalescer::Options copt;
  copt.max_merge = kThreads;
  copt.window_us = 500;
  BatchCoalescer coalescer(copt);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      nn::ValueNetwork::InferenceContext ctx;
      coalescer.BeginSearch();
      for (int i = 0; i < kIters; ++i) {
        const std::vector<float> got = coalescer.ScoreBatch(
            &net, embeds[static_cast<size_t>(t)], batches[static_cast<size_t>(t)],
            nullptr, &ctx);
        if (got != reference[static_cast<size_t>(t)]) mismatches.fetch_add(1);
      }
      coalescer.EndSearch();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Every call is accounted exactly once: directly or as a merged member.
  const BatchCoalescer::Stats s = coalescer.stats();
  EXPECT_EQ(s.direct_calls + s.merged_requests,
            static_cast<uint64_t>(kThreads) * kIters);
}

// ---- Single-client parity (the acceptance contract) ------------------------

TEST_F(ServeFixture, SingleClientServingBitIdenticalToInlineGuardedLoop) {
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  ASSERT_GE(train.size(), 5u);
  NeoConfig cfg = SmallConfig();
  cfg.guards.watchdog.baseline_factor = 4.0;
  cfg.guards.breaker.enabled = true;
  cfg.guards.health.enabled = true;

  // Twin A: the pre-serving inline loop (plan + guarded execute + learn).
  Rig a = MakeRig(train, cfg);
  ASSERT_TRUE(a.neo->GuardsActive());
  std::vector<double> inline_lat;
  for (int pass = 0; pass < 2; ++pass) {
    for (const Query* q : train) inline_lat.push_back(a.neo->ExecuteAndLearn(*q));
  }

  // Twin B: the same requests through a single-worker serving core (RCU
  // snapshot + shared caches + coalescer installed, all of which must be
  // transparent).
  Rig b = MakeRig(train, cfg);
  std::vector<double> served_lat;
  {
    ServingOptions sopt;
    sopt.workers = 1;
    sopt.search = cfg.search;
    ServingCore core(b.neo.get(), sopt);
    for (int pass = 0; pass < 2; ++pass) {
      for (const Query* q : train) {
        served_lat.push_back(core.ServeSync(*q, /*learn=*/true).latency_ms);
      }
    }
  }

  ASSERT_EQ(inline_lat.size(), served_lat.size());
  for (size_t i = 0; i < inline_lat.size(); ++i) {
    EXPECT_EQ(inline_lat[i], served_lat[i]) << "request " << i;  // Bitwise.
  }
  EXPECT_EQ(a.neo->experience().NumStates(), b.neo->experience().NumStates());
  for (const Query* q : train) {
    EXPECT_EQ(a.neo->experience().BestCost(q->id), b.neo->experience().BestCost(q->id));
  }
  const core::GuardStats ga = a.neo->guard_stats();
  const core::GuardStats gb = b.neo->guard_stats();
  EXPECT_EQ(ga.learned_serves, gb.learned_serves);
  EXPECT_EQ(ga.fallback_serves, gb.fallback_serves);
  EXPECT_EQ(ga.timeouts, gb.timeouts);
  EXPECT_EQ(a.engine->num_executions(), b.engine->num_executions());
}

// ---- Concurrent serving matches the serial reference -----------------------

TEST_F(ServeFixture, ConcurrentServingMatchesSerialReference) {
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  const NeoConfig cfg = SmallConfig();

  // Serial reference on twin A: plan + guarded serve, no learning — so the
  // per-query outcome is order-independent and comparable request-by-request.
  Rig a = MakeRig(train, cfg);
  std::map<int, std::pair<double, uint64_t>> expected;  // id -> (latency, hash)
  for (const Query* q : train) {
    const core::SearchResult r = a.neo->search().FindPlan(*q, cfg.search);
    const double lat = a.neo->Serve(*q, r.plan, /*learn=*/false);
    expected[q->id] = {lat, r.plan.Hash()};
  }

  Rig b = MakeRig(train, cfg);
  ServingOptions sopt;
  sopt.workers = 4;
  sopt.search = cfg.search;
  ServingCore core(b.neo.get(), sopt);
  constexpr int kPasses = 4;
  std::vector<std::pair<const Query*, std::future<ServeResult>>> inflight;
  for (int pass = 0; pass < kPasses; ++pass) {
    for (const Query* q : train) {
      inflight.emplace_back(q, core.Submit(*q, /*learn=*/false));
    }
  }
  for (auto& [q, fut] : inflight) {
    const ServeResult r = fut.get();
    const auto& [lat, hash] = expected.at(q->id);
    EXPECT_EQ(r.latency_ms, lat) << "query " << q->id;   // Bitwise.
    EXPECT_EQ(r.plan_hash, hash) << "query " << q->id;
    EXPECT_EQ(r.generation, 1u);
    EXPECT_GE(r.total_ms, r.plan_ms);
  }

  const ServingStats stats = core.stats();
  EXPECT_EQ(stats.requests, train.size() * kPasses);
  EXPECT_EQ(stats.total_latency.count(), train.size() * kPasses);
  EXPECT_EQ(stats.generation, 1u);
  // Repeat passes of identical queries must hit the shared score cache.
  EXPECT_GT(stats.score_cache.hits, 0u);
}

// ---- Shared caches ---------------------------------------------------------

TEST_F(ServeFixture, SharedCachesStayExactAcrossConcurrentSameQuerySearches) {
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  const NeoConfig cfg = SmallConfig();
  const Query& q = *train[0];

  // Isolated reference: a fresh search with private caches on the primary net.
  Rig ref = MakeRig(train, cfg);
  core::PlanSearch isolated(featurizer_, &ref.neo->net());
  const core::SearchResult solo = isolated.FindPlan(q, cfg.search);

  Rig b = MakeRig(train, cfg);
  ServingOptions sopt;
  sopt.workers = 2;
  sopt.search = cfg.search;
  ServingCore core(b.neo.get(), sopt);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(core.Submit(q, /*learn=*/false));
  for (std::future<ServeResult>& f : futures) {
    const ServeResult r = f.get();
    EXPECT_EQ(r.plan_hash, solo.plan.Hash());
    EXPECT_EQ(r.predicted_cost, solo.predicted_cost);  // Bitwise.
  }
  // By the later requests the shared score cache is warm (two workers, so
  // request 16 starts after >= 14 finished inserting).
  EXPECT_GT(core.stats().score_cache.hits, 0u);
}

TEST_F(ServeFixture, PublishedGenerationInvalidatesWithoutStaleScores) {
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  const NeoConfig cfg = SmallConfig();
  const Query& q = *train[1];

  Rig b = MakeRig(train, cfg);
  ServingOptions sopt;
  sopt.workers = 1;
  sopt.search = cfg.search;
  ServingCore core(b.neo.get(), sopt);

  const ServeResult before = core.ServeSync(q, /*learn=*/false);
  EXPECT_EQ(before.generation, 1u);

  // Retrain mutates the weights; the publish swaps serving onto them.
  core.RetrainAndPublish();
  const ServeResult after = core.ServeSync(q, /*learn=*/false);
  EXPECT_EQ(after.generation, 2u);

  // A fresh isolated search on the retrained primary net is the no-stale
  // oracle: if any generation-1 shared-cache entry leaked into the second
  // serve, its plan/score could not match this one bitwise.
  core::PlanSearch isolated(featurizer_, &b.neo->net());
  const core::SearchResult fresh = isolated.FindPlan(q, cfg.search);
  EXPECT_EQ(after.plan_hash, fresh.plan.Hash());
  EXPECT_EQ(after.predicted_cost, fresh.predicted_cost);  // Bitwise.
}

TEST_F(ServeFixture, LeafTierServesRepeatSearchesWithoutChangingOutcomes) {
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  const NeoConfig cfg = SmallConfig();
  const Query& q = *train[0];
  Rig b = MakeRig(train, cfg);

  // Oracle: a fresh private-cache search on the same net.
  core::PlanSearch isolated(featurizer_, &b.neo->net());
  const core::SearchResult solo = isolated.FindPlan(q, cfg.search);

  // Tiny score/activation caps force every search to re-score through the
  // activation tiers with nothing retained in the main shared tier, so
  // small-subtree rows can only be served by the leaf tier.
  core::SharedSearchCaches caches(/*score_cap=*/1, /*activation_cap=*/1,
                                  /*shards=*/1, /*leaf_cap=*/1 << 16);
  core::PlanSearch first_search(featurizer_, &b.neo->net());
  first_search.SetSharedCaches(&caches, /*generation=*/1);
  const core::SearchResult first = first_search.FindPlan(q, cfg.search);
  EXPECT_EQ(first.plan.Hash(), solo.plan.Hash());
  EXPECT_EQ(first.predicted_cost, solo.predicted_cost);  // Bitwise.

  // A different search instance over the same query (same embedding bits,
  // same weights, same generation) must be served leaf rows the first search
  // already paid for — and still land on the bit-identical result.
  const uint64_t hits_before = caches.leaf_activations.TotalStats().hits;
  core::PlanSearch second_search(featurizer_, &b.neo->net());
  second_search.SetSharedCaches(&caches, /*generation=*/1);
  const core::SearchResult second = second_search.FindPlan(q, cfg.search);
  EXPECT_GT(second.leaf_tier_hits, 0u);
  EXPECT_GT(caches.leaf_activations.TotalStats().hits, hits_before);
  EXPECT_EQ(second.plan.Hash(), solo.plan.Hash());
  EXPECT_EQ(second.predicted_cost, solo.predicted_cost);  // Bitwise.

  // Version invalidation: retraining bumps the net version, so the warm
  // leaf entries (salted with the old version + embedding bits) must never
  // be served again. A fresh isolated search on the retrained net is the
  // no-stale oracle — one stale activation row would shift its scores.
  b.neo->Retrain();
  core::PlanSearch post_search(featurizer_, &b.neo->net());
  post_search.SetSharedCaches(&caches, /*generation=*/1);
  const core::SearchResult post = post_search.FindPlan(q, cfg.search);
  core::PlanSearch oracle(featurizer_, &b.neo->net());
  const core::SearchResult fresh = oracle.FindPlan(q, cfg.search);
  EXPECT_EQ(post.plan.Hash(), fresh.plan.Hash());
  EXPECT_EQ(post.predicted_cost, fresh.predicted_cost);  // Bitwise.
}

TEST_F(ServeFixture, LeafTierStatsSurfaceThroughServingCore) {
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  const NeoConfig cfg = SmallConfig();
  const Query& q = *train[0];

  // Shrink the main shared activation tier to nothing while keeping a real
  // leaf tier, so leaf-tier traffic is guaranteed and must show up in the
  // serving stats.
  Rig b = MakeRig(train, cfg);
  ServingOptions sopt;
  sopt.workers = 1;
  sopt.search = cfg.search;
  sopt.shared_score_cap = 1;
  sopt.shared_activation_cap = 1;
  sopt.shared_leaf_cap = 1 << 16;
  ServingCore core(b.neo.get(), sopt);

  const ServeResult r1 = core.ServeSync(q, /*learn=*/false);
  const ServeResult r2 = core.ServeSync(q, /*learn=*/false);
  EXPECT_EQ(r1.plan_hash, r2.plan_hash);
  EXPECT_EQ(r1.predicted_cost, r2.predicted_cost);  // Bitwise.
  const ServingStats stats = core.stats();
  EXPECT_GT(stats.leaf_tier_hits, 0u);
  EXPECT_GT(stats.leaf_cache.hits, 0u);
  EXPECT_GT(stats.leaf_cache.entries, 0u);

  // Generation invalidation: the publish bumps the RCU generation (new leaf
  // salt), so post-publish serves must match a fresh isolated search on the
  // retrained primary net bitwise — no stale generation-1 leaf rows.
  core.RetrainAndPublish();
  const ServeResult after = core.ServeSync(q, /*learn=*/false);
  core::PlanSearch isolated(featurizer_, &b.neo->net());
  const core::SearchResult fresh = isolated.FindPlan(q, cfg.search);
  EXPECT_EQ(after.plan_hash, fresh.plan.Hash());
  EXPECT_EQ(after.predicted_cost, fresh.predicted_cost);  // Bitwise.
}

// ---- Retraining overlapped with serving ------------------------------------

TEST_F(ServeFixture, RetrainRunsConcurrentlyWithServing) {
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  const NeoConfig cfg = SmallConfig();
  Rig b = MakeRig(train, cfg);
  ServingOptions sopt;
  sopt.workers = 2;
  sopt.search = cfg.search;
  ServingCore core(b.neo.get(), sopt);

  std::atomic<bool> stop{false};
  std::atomic<int> served{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      size_t i = static_cast<size_t>(c);
      while (!stop.load(std::memory_order_relaxed)) {
        const ServeResult r =
            core.ServeSync(*train[i % train.size()], /*learn=*/true);
        EXPECT_GT(r.latency_ms, 0.0);
        served.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }
  // Two background retrain+publish cycles while the clients hammer away.
  // The tsan CI arm turns any serving/retraining race into a failure here.
  for (int r = 0; r < 2; ++r) core.RetrainAndPublish();
  stop.store(true);
  for (std::thread& t : clients) t.join();
  core.Drain();

  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(core.stats().generation, 3u);  // Ctor publish + two retrains.
}

// ---- Engine memo exactness under concurrency (satellite a) -----------------

TEST_F(ServeFixture, EngineMemoCountersExactUnderConcurrentExecutes) {
  auto native =
      optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
  const std::vector<const Query*> train = TrainSet();
  constexpr int kPlans = 4;
  std::vector<const Query*> queries(train.begin(), train.begin() + kPlans);
  std::vector<plan::PartialPlan> plans;
  std::vector<double> serial;
  {
    engine::ExecutionEngine probe(ds_->schema, *ds_->db, EngineKind::kPostgres);
    for (const Query* q : queries) {
      plans.push_back(native.optimizer->Optimize(*q));
      serial.push_back(probe.ExecutePlan(*q, plans.back()));
    }
  }

  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  constexpr int kThreads = 8;
  constexpr int kIters = 50;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        for (int p = 0; p < kPlans; ++p) {
          const double lat =
              engine.ExecutePlan(*queries[static_cast<size_t>(p)],
                                 plans[static_cast<size_t>(p)]);
          if (lat != serial[static_cast<size_t>(p)]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  const size_t total = static_cast<size_t>(kThreads) * kIters * kPlans;
  EXPECT_EQ(engine.num_executions(), total);
  // The whole-body lock makes the memo probe-or-compute atomic: each plan
  // misses exactly once, every other execution hits.
  EXPECT_EQ(engine.latency_cache_misses(), static_cast<size_t>(kPlans));
  EXPECT_EQ(engine.latency_cache_hits(), total - kPlans);
  EXPECT_EQ(engine.latency_cache_evictions(), 0u);
  EXPECT_EQ(engine.num_distinct_plans(), static_cast<size_t>(kPlans));
}

// ---- Guarded bound under faults, concurrently (faults-arm coverage) --------

TEST_F(ServeFixture, ConcurrentGuardedServesStayWithinWatchdogBound) {
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  constexpr double kFactor = 2.0;
  NeoConfig cfg = SmallConfig();
  cfg.guards.watchdog.baseline_factor = kFactor;
  cfg.guards.breaker.enabled = true;
  cfg.guards.breaker.trip_after = 1;

  Rig b = MakeRig(train, cfg);
  util::FaultInjectorConfig fcfg;
  fcfg.enabled = true;
  fcfg.seed = 23;
  fcfg.latency_spike_p = 0.3;
  fcfg.latency_spike_factor = 40.0;
  util::FaultInjector injector(fcfg);
  b.engine->SetFaultInjector(&injector);

  {
    ServingOptions sopt;
    sopt.workers = 4;
    sopt.search = cfg.search;
    ServingCore core(b.neo.get(), sopt);
    std::vector<std::pair<const Query*, std::future<ServeResult>>> inflight;
    for (int pass = 0; pass < 4; ++pass) {
      for (const Query* q : train) {
        inflight.emplace_back(q, core.Submit(*q, /*learn=*/true));
      }
    }
    for (auto& [q, fut] : inflight) {
      const ServeResult r = fut.get();
      // Structural bound: learned or fallback, every serve is clipped at
      // kFactor x the query's expert baseline, faults notwithstanding.
      EXPECT_LE(r.latency_ms, kFactor * b.neo->Baseline(q->id) * (1.0 + 1e-9))
          << "query " << q->id;
    }
    EXPECT_GE(b.neo->guard_stats().timeouts, 1);
  }
  b.engine->SetFaultInjector(nullptr);
}

// ---- Experience-store integration ------------------------------------------

namespace {
/// Scratch dir for durable-store serving tests (mirrors store_test's helper).
class StoreTempDir {
 public:
  StoreTempDir() {
    char buf[] = "/tmp/neo_serve_store_XXXXXX";
    const char* p = ::mkdtemp(buf);
    EXPECT_NE(p, nullptr);
    path_ = p != nullptr ? p : "/tmp";
  }
  ~StoreTempDir() {
    for (const char* f : {"/wal.log", "/snapshot.bin", "/snapshot.bin.tmp"}) {
      ::unlink((path_ + f).c_str());
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};
}  // namespace

TEST_F(ServeFixture, StoreObserveOnlyServingIsBitIdenticalToStoreless) {
  // A store in learn mode (the steady state for fresh types) observes every
  // serve but never redirects one: serving with it attached must be bitwise
  // the storeless path. This is the store-disabled parity contract from the
  // other side.
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  const NeoConfig cfg = SmallConfig();

  Rig a = MakeRig(train, cfg);
  std::vector<double> plain_lat;
  {
    ServingOptions sopt;
    sopt.workers = 1;
    sopt.search = cfg.search;
    ServingCore core(a.neo.get(), sopt);
    for (int pass = 0; pass < 2; ++pass) {
      for (const Query* q : train) {
        plain_lat.push_back(core.ServeSync(*q, /*learn=*/true).latency_ms);
      }
    }
    EXPECT_FALSE(core.stats().store_attached);
  }

  Rig b = MakeRig(train, cfg);
  store::ExperienceStore store{store::StoreOptions{}};  // In-memory.
  ASSERT_TRUE(store.Open().ok());
  {
    ServingOptions sopt;
    sopt.workers = 1;
    sopt.search = cfg.search;
    sopt.store = &store;
    ServingCore core(b.neo.get(), sopt);
    for (size_t i = 0; i < plain_lat.size(); ++i) {
      const Query& q = *train[i % train.size()];
      const ServeResult r = core.ServeSync(q, /*learn=*/true);
      EXPECT_EQ(r.latency_ms, plain_lat[i]) << "request " << i;  // Bitwise.
      EXPECT_FALSE(r.served_from_store);
    }
    const ServingStats stats = core.stats();
    EXPECT_TRUE(stats.store_attached);
    EXPECT_EQ(stats.store_types_tracked, train.size());
    EXPECT_EQ(stats.store_pinned_serves, 0u);
  }
  // Every serve was observed even though none was redirected.
  EXPECT_EQ(store.stats().observations, plain_lat.size());
}

TEST_F(ServeFixture, ExploitModeServesPinnedPlanWithoutSearch) {
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  const NeoConfig cfg = SmallConfig();
  const Query& q = *train[0];

  Rig b = MakeRig(train, cfg);
  store::ExperienceStore store{store::StoreOptions{}};
  ASSERT_TRUE(store.Open().ok());
  ServingOptions sopt;
  sopt.workers = 1;
  sopt.search = cfg.search;
  sopt.store = &store;
  ServingCore core(b.neo.get(), sopt);

  // First serve goes through search and captures the type's best plan.
  const ServeResult learned = core.ServeSync(q, /*learn=*/true);
  EXPECT_FALSE(learned.served_from_store);
  store::TypeView v;
  ASSERT_TRUE(store.ViewOf(q.type_hash, &v));
  ASSERT_TRUE(v.has_best);
  EXPECT_EQ(v.best_plan_hash, learned.plan_hash);

  // Operator pins the type: subsequent serves skip search entirely and
  // execute the best-known plan at the identical memoized latency.
  ASSERT_TRUE(store.SetMode(q.type_hash, store::TypeMode::kExploit).ok());
  const ServeResult pinned = core.ServeSync(q, /*learn=*/true);
  EXPECT_TRUE(pinned.served_from_store);
  EXPECT_EQ(pinned.plan_hash, learned.plan_hash);
  EXPECT_EQ(pinned.latency_ms, learned.latency_ms);  // Bitwise (memoized).
  EXPECT_EQ(pinned.plan_ms, 0.0);                    // No search ran.
  EXPECT_EQ(static_cast<double>(pinned.predicted_cost),
            static_cast<double>(static_cast<float>(v.best_latency_ms)));

  const ServingStats stats = core.stats();
  EXPECT_TRUE(stats.store_attached);
  EXPECT_EQ(stats.store_pinned_serves, 1u);
  EXPECT_GE(stats.store_exploit_serves, 1u);
  EXPECT_GE(stats.store_mode_transitions, 1u);
  EXPECT_GE(stats.store_types_tracked, 1u);
}

TEST_F(ServeFixture, StopUnderLoadDrainsInFlightAndMakesObservationsDurable) {
  // Graceful-shutdown contract: Stop() accepts no new work but finishes every
  // queued + in-flight request and flushes the store WAL before joining, so a
  // restart recovers ALL accepted observations.
  if (nn::UseReferenceKernels()) GTEST_SKIP() << "requires fast kernels";
  const std::vector<const Query*> train = TrainSet();
  const NeoConfig cfg = SmallConfig();
  StoreTempDir tmp;
  store::StoreOptions stopt;
  stopt.dir = tmp.path();

  Rig b = MakeRig(train, cfg);
  size_t submitted = 0;
  {
    store::ExperienceStore store(stopt);
    ASSERT_TRUE(store.Open().ok());
    ServingOptions sopt;
    sopt.workers = 4;
    sopt.search = cfg.search;
    sopt.store = &store;
    sopt.store_sync_every = 1 << 20;  // Force Stop() to pay the final sync.
    ServingCore core(b.neo.get(), sopt);
    std::vector<std::future<ServeResult>> inflight;
    for (int pass = 0; pass < 4; ++pass) {
      for (const Query* q : train) {
        inflight.push_back(core.Submit(*q, /*learn=*/true));
        ++submitted;
      }
    }
    core.Stop();  // While most of the queue is still pending.
    for (std::future<ServeResult>& f : inflight) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
      EXPECT_GT(f.get().latency_ms, 0.0);
    }
    EXPECT_EQ(store.stats().observations, submitted);
  }

  // Restart: every accepted request's observation is in the recovered state.
  store::ExperienceStore reopened(stopt);
  const util::Status s = reopened.Open();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(reopened.NumTypes(), train.size());
  uint64_t recovered_serves = 0;
  for (const store::TypeView& v : reopened.View()) recovered_serves += v.serves;
  EXPECT_EQ(recovered_serves, submitted);
}

}  // namespace
}  // namespace neo::serve
