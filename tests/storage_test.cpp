#include <gtest/gtest.h>

#include "src/storage/table.h"

namespace neo::storage {
namespace {

TEST(ColumnTest, IntAppendAndRead) {
  Column c("x", ColumnType::kInt);
  c.AppendInt(5);
  c.AppendInt(-7);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.CodeAt(0), 5);
  EXPECT_EQ(c.CodeAt(1), -7);
}

TEST(ColumnTest, StringDictionaryInterning) {
  Column c("s", ColumnType::kString);
  c.AppendString("apple");
  c.AppendString("banana");
  c.AppendString("apple");
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.dictionary_size(), 2u);
  EXPECT_EQ(c.CodeAt(0), c.CodeAt(2));
  EXPECT_EQ(c.StringAt(1), "banana");
  EXPECT_EQ(c.LookupString("apple"), c.CodeAt(0));
  EXPECT_EQ(c.LookupString("missing"), -1);
}

TEST(ColumnTest, CodesContaining) {
  Column c("s", ColumnType::kString);
  c.AppendString("love-001");
  c.AppendString("fight-002");
  c.AppendString("lovely-003");
  const auto codes = c.CodesContaining("love");
  EXPECT_EQ(codes.size(), 2u);
}

TEST(IndexTest, EqualityLookup) {
  Column c("k", ColumnType::kInt);
  for (int64_t v : {3, 1, 3, 2, 3, 1}) c.AppendInt(v);
  Index idx("k", c);
  EXPECT_EQ(idx.CountEqual(3), 3u);
  EXPECT_EQ(idx.CountEqual(1), 2u);
  EXPECT_EQ(idx.CountEqual(99), 0u);
  const auto rows = idx.LookupEqual(3);
  EXPECT_EQ(rows.size(), 3u);
  // Sorted by row within equal codes.
  EXPECT_EQ(rows[0], 0u);
  EXPECT_EQ(rows[1], 2u);
  EXPECT_EQ(rows[2], 4u);
}

TEST(IndexTest, RangeCount) {
  Column c("k", ColumnType::kInt);
  for (int64_t v = 0; v < 100; ++v) c.AppendInt(v);
  Index idx("k", c);
  EXPECT_EQ(idx.CountRange(10, 19), 10u);
  EXPECT_EQ(idx.CountRange(-5, 4), 5u);
  EXPECT_EQ(idx.CountRange(95, 200), 5u);
  EXPECT_EQ(idx.CountRange(50, 50), 1u);
}

TEST(TableTest, ColumnsAndSeal) {
  Table t("t");
  Column& a = t.AddColumn("a", ColumnType::kInt);
  Column& b = t.AddColumn("b", ColumnType::kString);
  for (int i = 0; i < 10; ++i) {
    a.AppendInt(i);
    b.AppendString(i % 2 ? "odd" : "even");
  }
  t.SealRows();
  EXPECT_EQ(t.num_rows(), 10u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.ColumnIndex("b"), 1);
  EXPECT_EQ(t.ColumnIndex("zzz"), -1);
  EXPECT_EQ(&t.ColumnByName("a"), &t.column(0));
}

TEST(TableTest, IndexBuildAndLookup) {
  Table t("t");
  Column& a = t.AddColumn("a", ColumnType::kInt);
  for (int i = 0; i < 20; ++i) a.AppendInt(i % 5);
  t.SealRows();
  EXPECT_FALSE(t.HasIndex("a"));
  t.BuildIndex("a");
  ASSERT_TRUE(t.HasIndex("a"));
  EXPECT_EQ(t.GetIndex("a")->CountEqual(2), 4u);
  EXPECT_EQ(t.indexed_columns(), std::vector<std::string>{"a"});
}

TEST(DatabaseTest, AddAndLookup) {
  Database db;
  Table& t = db.AddTable("movies");
  t.AddColumn("id", ColumnType::kInt).AppendInt(1);
  t.SealRows();
  EXPECT_TRUE(db.HasTable("movies"));
  EXPECT_FALSE(db.HasTable("nope"));
  EXPECT_EQ(db.table("movies").num_rows(), 1u);
  EXPECT_EQ(db.total_rows(), 1u);
  EXPECT_EQ(db.table_names(), std::vector<std::string>{"movies"});
}

}  // namespace
}  // namespace neo::storage
