// Core Neo tests: experience labeling, best-first search invariants, and the
// end-to-end learning loop (bootstrap -> episodes -> improvement).
#include <gtest/gtest.h>

#include <unordered_map>

#include "src/core/neo.h"
#include "src/datagen/imdb_gen.h"
#include "src/query/builder.h"
#include "src/query/job_workload.h"

namespace neo::core {
namespace {

using engine::EngineKind;
using query::PredOp;
using query::Query;
using query::QueryBuilder;

class CoreFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GenOptions opt;
    opt.scale = 0.05;
    ds_ = new datagen::Dataset(datagen::GenerateImdb(opt));
    featurizer_ = new featurize::Featurizer(ds_->schema, *ds_->db, {});
  }
  static void TearDownTestSuite() {
    delete featurizer_;
    delete ds_;
  }
  static Query ThreeWay(int id) {
    QueryBuilder b(ds_->schema, *ds_->db, "q3");
    b.JoinFk("movie_keyword", "title")
        .JoinFk("movie_keyword", "keyword")
        .PredStr("keyword", "keyword", PredOp::kContains, "love");
    Query q = b.Build();
    q.id = id;
    return q;
  }
  static NeoConfig SmallConfig(uint64_t seed = 7) {
    NeoConfig cfg;
    cfg.net.query_fc = {64, 32};
    cfg.net.tree_channels = {32, 16};
    cfg.net.head_fc = {16};
    cfg.net.adam.lr = 1e-3f;
    cfg.epochs_per_episode = 4;
    cfg.batch_size = 32;
    cfg.search.max_expansions = 60;
    cfg.seed = seed;
    return cfg;
  }
  static datagen::Dataset* ds_;
  static featurize::Featurizer* featurizer_;
};

datagen::Dataset* CoreFixture::ds_ = nullptr;
featurize::Featurizer* CoreFixture::featurizer_ = nullptr;

/// The kernel dispatch arms the parity suites run under: the forced-portable
/// fallback plus the dispatched (best) SIMD arm when the machine has one.
/// Within an arm results must be bit-identical; across arms they differ by
/// FMA/accumulation-order ulps (SearchPlansIdenticalAcrossKernelArms covers
/// that comparison).
std::vector<nn::KernelIsa> KernelArmsToTest() {
  std::vector<nn::KernelIsa> arms = {nn::KernelIsa::kPortable};
  if (nn::BestKernelIsa() != nn::KernelIsa::kPortable) {
    arms.push_back(nn::BestKernelIsa());
  }
  return arms;
}

TEST_F(CoreFixture, ExperienceLabelsAreMinOverContainingPlans) {
  Experience exp(featurizer_);
  const Query q = ThreeWay(50);
  const int mk = ds_->schema.TableId("movie_keyword");
  const int kw = ds_->schema.TableId("keyword");
  const int ti = ds_->schema.TableId("title");
  auto scan = [&](int table) {
    return plan::MakeScan(plan::ScanOp::kTable, table,
                          1ULL << q.RelationIndex(table));
  };
  // Two complete plans sharing the initial state; different costs.
  plan::PartialPlan p1;
  p1.query = &q;
  p1.roots = {plan::MakeJoin(plan::JoinOp::kHash,
                             plan::MakeJoin(plan::JoinOp::kHash, scan(mk), scan(kw)),
                             scan(ti))};
  plan::PartialPlan p2;
  p2.query = &q;
  p2.roots = {plan::MakeJoin(plan::JoinOp::kMerge,
                             plan::MakeJoin(plan::JoinOp::kHash, scan(mk), scan(kw)),
                             scan(ti))};
  exp.AddCompletePlan(q, p1, 100.0);
  exp.AddCompletePlan(q, p2, 40.0);
  EXPECT_DOUBLE_EQ(exp.BestCost(q.id), 40.0);
  EXPECT_EQ(exp.NumCompletePlans(), 2u);
  // Shared states (initial + shared subtrees) were deduplicated.
  // p1 contributes 6 states (5 subtrees + initial), p2 shares 4 of them
  // (scan-leaf states, the inner join state, initial) and adds 2.
  EXPECT_LT(exp.NumStates(), 12u);

  util::Rng rng(1);
  const auto view = exp.Sample(100, rng);
  EXPECT_EQ(view.samples.size(), exp.NumStates());
  // All targets finite and standardized-ish.
  for (float t : view.targets) EXPECT_TRUE(std::isfinite(t));
}

TEST_F(CoreFixture, SearchChildrenRespectSubplanRelation) {
  NeoConfig cfg = SmallConfig();
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  Neo neo(featurizer_, &engine, cfg);
  const Query q = ThreeWay(51);
  const plan::PartialPlan initial = plan::PartialPlan::Initial(q);
  const auto children = neo.search().Children(q, initial);
  ASSERT_FALSE(children.empty());
  for (const auto& child : children) {
    EXPECT_TRUE(plan::IsSubplanOf(initial, child));
    EXPECT_EQ(child.CoveredMask(), initial.CoveredMask());
    // Either a scan was specified (same root count) or two roots joined.
    EXPECT_TRUE(child.roots.size() == initial.roots.size() ||
                child.roots.size() + 1 == initial.roots.size());
  }
}

TEST_F(CoreFixture, SearchFindsCompleteValidPlan) {
  NeoConfig cfg = SmallConfig();
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  Neo neo(featurizer_, &engine, cfg);
  const Query q = ThreeWay(52);
  const SearchResult result = neo.Plan(q);
  EXPECT_TRUE(result.plan.IsComplete());
  EXPECT_EQ(result.plan.CoveredMask(), (1ULL << q.num_relations()) - 1);
  EXPECT_GT(result.evaluations, 0u);
}

TEST_F(CoreFixture, GreedyModeCompletesWithoutHeapSearch) {
  NeoConfig cfg = SmallConfig();
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  Neo neo(featurizer_, &engine, cfg);
  const Query q = ThreeWay(53);
  const SearchResult result = neo.search().GreedyPlan(q);
  EXPECT_TRUE(result.plan.IsComplete());
  EXPECT_TRUE(result.hurried);
  EXPECT_EQ(result.expansions, 0);
}

TEST_F(CoreFixture, BatchedSearchMatchesUnbatched) {
  // Batched child scoring (PredictBatch over a packed forest) is bit-exact
  // with the per-candidate path, so identical SearchOptions must return the
  // same plan with the same predicted cost. Two independent Neo instances
  // with the same seed avoid score-cache cross-talk between the two runs.
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  Neo neo_batched(featurizer_, &engine, SmallConfig());
  Neo neo_unbatched(featurizer_, &engine, SmallConfig());
  const Query q = ThreeWay(57);

  SearchOptions batched;
  batched.max_expansions = 40;
  SearchOptions unbatched = batched;
  unbatched.batched = false;

  const SearchResult rb = neo_batched.search().FindPlan(q, batched);
  const SearchResult ru = neo_unbatched.search().FindPlan(q, unbatched);
  EXPECT_EQ(rb.plan.Hash(), ru.plan.Hash());
  EXPECT_EQ(rb.expansions, ru.expansions);
  EXPECT_EQ(rb.evaluations, ru.evaluations);
  EXPECT_FLOAT_EQ(rb.predicted_cost, ru.predicted_cost);
  EXPECT_EQ(rb.plan.ToString(ds_->schema), ru.plan.ToString(ds_->schema));
}

TEST_F(CoreFixture, SearchBitIdenticalAcrossThreadCounts) {
  // The issue's search determinism contract: SearchOptions::threads only
  // changes how GEMM rows are partitioned, never which plans are scored or
  // what scores they get, so the whole SearchResult must be bit-identical
  // for threads in {1, 2, 8} (with speculation both 1 and 4).
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  const auto wl = query::MakeJobWorkload(ds_->schema, *ds_->db);
  const Query& q = wl.query(60);  // A JOB query (5 relations).
  for (int speculation : {1, 4}) {
    SearchResult baseline;
    bool have_baseline = false;
    for (int threads : {1, 2, 8}) {
      Neo neo(featurizer_, &engine, SmallConfig());
      SearchOptions opt;
      opt.max_expansions = 30;
      opt.speculation = speculation;
      opt.threads = threads;
      const SearchResult r = neo.search().FindPlan(q, opt);
      EXPECT_TRUE(r.plan.IsComplete());
      if (!have_baseline) {
        baseline = r;
        have_baseline = true;
        continue;
      }
      EXPECT_EQ(r.plan.Hash(), baseline.plan.Hash())
          << "speculation " << speculation << " threads " << threads;
      EXPECT_EQ(r.predicted_cost, baseline.predicted_cost);
      EXPECT_EQ(r.expansions, baseline.expansions);
      EXPECT_EQ(r.evaluations, baseline.evaluations);
      EXPECT_EQ(r.cache_hits, baseline.cache_hits);
    }
  }
}

TEST_F(CoreFixture, SpeculativeSearchStillFindsCompletePlans) {
  // speculation > 1 explores a wider frontier per round but must preserve
  // search invariants: complete valid plans, and with speculation == 1 the
  // restructured loop reproduces the classic serial search (covered by
  // BatchedSearchMatchesUnbatched staying green).
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  Neo neo(featurizer_, &engine, SmallConfig());
  const Query q = ThreeWay(61);
  SearchOptions opt;
  opt.max_expansions = 40;
  opt.speculation = 8;
  const SearchResult r = neo.search().FindPlan(q, opt);
  EXPECT_TRUE(r.plan.IsComplete());
  EXPECT_EQ(r.plan.CoveredMask(), (1ULL << q.num_relations()) - 1);
  EXPECT_GT(r.evaluations, 0u);
}

TEST_F(CoreFixture, IncrementalSearchBitIdenticalAcrossToggleAndThreads) {
  // The activation cache must change no search outcome: SearchResult is
  // bit-identical with incremental on/off, at threads 1/2/8, and the
  // incremental runs must actually reuse activations. The whole suite runs
  // once per kernel dispatch arm (forced-portable and dispatched SIMD), with
  // a separate baseline per arm — bit-identity is a within-arm contract.
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  const auto wl = query::MakeJobWorkload(ds_->schema, *ds_->db);
  const Query& q = wl.query(60);  // A JOB query (5 relations).
  for (const nn::KernelIsa arm : KernelArmsToTest()) {
    nn::KernelIsaScope isa_scope(arm);
    SearchResult baseline;
    bool have_baseline = false;
    for (const bool incremental : {false, true}) {
      for (const int threads : {1, 2, 8}) {
        Neo neo(featurizer_, &engine, SmallConfig());
        SearchOptions opt;
        opt.max_expansions = 30;
        opt.incremental = incremental;
        opt.threads = threads;
        const SearchResult r = neo.search().FindPlan(q, opt);
        EXPECT_TRUE(r.plan.IsComplete());
        if (incremental) {
          EXPECT_GT(r.activation_hits, 0u);
          // Children share all but a spine with their parent; after the first
          // expansion the cache serves far more rows than are recomputed.
          EXPECT_GT(r.rows_reused, r.rows_recomputed);
        } else {
          EXPECT_EQ(r.activation_hits, 0u);
          EXPECT_EQ(r.rows_recomputed, 0u);
          EXPECT_EQ(r.rows_reused, 0u);
        }
        if (!have_baseline) {
          baseline = r;
          have_baseline = true;
          continue;
        }
        EXPECT_EQ(r.plan.Hash(), baseline.plan.Hash())
            << nn::KernelIsaName(arm) << " incremental " << incremental
            << " threads " << threads;
        EXPECT_EQ(r.predicted_cost, baseline.predicted_cost);
        EXPECT_EQ(r.expansions, baseline.expansions);
        EXPECT_EQ(r.evaluations, baseline.evaluations);
        EXPECT_EQ(r.cache_hits, baseline.cache_hits);
        EXPECT_EQ(r.plan.ToString(ds_->schema), baseline.plan.ToString(ds_->schema));
      }
    }
  }
}

TEST_F(CoreFixture, ReusedSearchInstanceBitIdenticalToFreshAcrossRequests) {
  // The zero-alloc steady state reuses everything across FindPlan calls on
  // one instance: the state arena, heap, visited set, score/activation
  // scratch, and the activation slab arena (Reset to one high-water block).
  // None of that reuse may change any outcome: every request on the warmed
  // instance must be bit-identical to the same request on a brand-new
  // PlanSearch. Queries alternate so the per-query caches re-salt and clear
  // between requests, forcing full recomputation through reused buffers.
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  const auto wl = query::MakeJobWorkload(ds_->schema, *ds_->db);
  Neo neo(featurizer_, &engine, SmallConfig());
  SearchOptions opt;
  opt.max_expansions = 30;
  const std::vector<const Query*> rotation = {&wl.query(0), &wl.query(30),
                                              &wl.query(60)};
  for (int round = 0; round < 3; ++round) {
    for (size_t qi = 0; qi < rotation.size(); ++qi) {
      const Query& q = *rotation[qi];
      const SearchResult reused = neo.search().FindPlan(q, opt);
      PlanSearch fresh(featurizer_, &neo.net());
      const SearchResult baseline = fresh.FindPlan(q, opt);
      ASSERT_EQ(reused.plan.Hash(), baseline.plan.Hash())
          << "round " << round << " query " << qi;
      ASSERT_EQ(reused.predicted_cost, baseline.predicted_cost);  // Bitwise.
      ASSERT_EQ(reused.expansions, baseline.expansions);
      ASSERT_EQ(reused.evaluations, baseline.evaluations);
      ASSERT_EQ(reused.plan.ToString(ds_->schema),
                baseline.plan.ToString(ds_->schema));
    }
  }
  // The reused instance's slab arena actually saw work (and therefore the
  // rounds above exercised high-water reuse, not an empty arena).
  EXPECT_GT(neo.search().activation_slab_peak_bytes(), 0u);
}

TEST_F(CoreFixture, SearchPlansIdenticalAcrossKernelArms) {
  // SIMD-vs-portable acceptance: the arms differ by FMA/accumulation-order
  // ulps, so scores must agree within tolerance and the searched plan (and
  // the whole search trajectory) must come out identical on JOB queries.
  if (nn::BestKernelIsa() == nn::KernelIsa::kPortable) {
    GTEST_SKIP() << "no SIMD arm available on this machine";
  }
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  const auto wl = query::MakeJobWorkload(ds_->schema, *ds_->db);
  for (const size_t qi : {size_t{0}, size_t{30}, size_t{60}}) {
    const Query& q = wl.query(qi);
    auto run = [&](nn::KernelIsa arm) {
      nn::KernelIsaScope scope(arm);
      Neo neo(featurizer_, &engine, SmallConfig());
      SearchOptions opt;
      opt.max_expansions = 30;
      opt.incremental = true;
      return neo.search().FindPlan(q, opt);
    };
    const SearchResult portable = run(nn::KernelIsa::kPortable);
    const SearchResult simd = run(nn::BestKernelIsa());
    EXPECT_EQ(portable.plan.Hash(), simd.plan.Hash()) << "query " << qi;
    EXPECT_EQ(portable.plan.ToString(ds_->schema), simd.plan.ToString(ds_->schema));
    EXPECT_EQ(portable.expansions, simd.expansions);
    EXPECT_EQ(portable.evaluations, simd.evaluations);
    const double tol =
        1e-4 * std::max(1.0, std::fabs(static_cast<double>(portable.predicted_cost)));
    EXPECT_NEAR(portable.predicted_cost, simd.predicted_cost, tol) << "query " << qi;
  }
}

TEST_F(CoreFixture, IncrementalScoresBitIdenticalAlongParentChildChains) {
  // The PR-3 parity contract at the PredictBatch level: walk random
  // parent -> child chains (each step a one-leaf or one-join delta), score
  // every child set both plainly and through an activation cache carried
  // across steps, and require bitwise-equal scores — under every kernel
  // dispatch arm (the carried cache must not mix arms, so the Neo instance
  // and cache live inside the arm loop).
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  const auto wl = query::MakeJobWorkload(ds_->schema, *ds_->db);
  for (const nn::KernelIsa arm : KernelArmsToTest()) {
  nn::KernelIsaScope isa_scope(arm);
  Neo neo(featurizer_, &engine, SmallConfig());
  nn::ValueNetwork& net = neo.net();
  const size_t entry = static_cast<size_t>(net.TotalConvChannels());

  for (const uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Query& q = seed == 1 ? wl.query(60) : ThreeWay(70 + static_cast<int>(seed));
    const nn::Matrix embed = net.EmbedQuery(featurizer_->EncodeQuery(q));
    std::unordered_map<uint64_t, std::vector<float>> cache;
    util::Rng rng(seed);
    plan::PartialPlan state = plan::PartialPlan::Initial(q);
    size_t steps = 0;
    while (!state.IsComplete()) {
      const auto children = neo.search().Children(q, state);
      ASSERT_FALSE(children.empty());
      std::vector<const plan::PartialPlan*> ptrs;
      for (const auto& c : children) ptrs.push_back(&c);
      nn::PlanBatch batch;
      featurizer_->EncodePlanBatch(q, ptrs, &batch);
      const std::vector<float> plain = net.PredictBatch(embed, batch);

      const size_t n = batch.node_fp.size();
      std::vector<float> slab(n * entry, 0.0f);
      nn::ActivationReuse reuse;
      reuse.cached.assign(n, nullptr);
      reuse.store.assign(n, nullptr);
      for (size_t i = 0; i < n; ++i) {
        const auto it = cache.find(batch.node_fp[i]);
        if (it != cache.end()) {
          reuse.cached[i] = it->second.data();
        } else {
          reuse.store[i] = slab.data() + i * entry;
        }
      }
      const std::vector<float> incremental = net.PredictBatch(embed, batch, nullptr, &reuse);
      ASSERT_EQ(incremental.size(), plain.size());
      for (size_t i = 0; i < plain.size(); ++i) {
        ASSERT_EQ(plain[i], incremental[i])
            << "seed " << seed << " step " << steps << " child " << i;
      }
      for (size_t i = 0; i < n; ++i) {
        if (reuse.store[i] != nullptr) {
          cache.emplace(batch.node_fp[i],
                        std::vector<float>(reuse.store[i], reuse.store[i] + entry));
        }
      }
      state = children[rng.NextBounded(children.size())];
      ++steps;
    }
    EXPECT_GT(steps, 0u);
  }
  }  // arm loop
}

TEST_F(CoreFixture, ScoreCacheLruEvictsAndRecomputes) {
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  const auto wl = query::MakeJobWorkload(ds_->schema, *ds_->db);
  const Query& q = wl.query(60);
  SearchOptions opt;
  opt.max_expansions = 20;

  // Uncapped run: the reference plan, and a repeat search that is served
  // fully from cache.
  Neo uncapped(featurizer_, &engine, SmallConfig());
  const SearchResult ref = uncapped.search().FindPlan(q, opt);
  EXPECT_EQ(ref.cache_evictions, 0u);

  // Tiny cap: evictions must fire, the searched plan must not change (an
  // evicted entry is simply re-scored, and scoring is deterministic), and a
  // repeat search must recompute at least the evicted states.
  Neo capped(featurizer_, &engine, SmallConfig());
  SearchOptions small = opt;
  small.score_cache_cap = 16;
  const SearchResult first = capped.search().FindPlan(q, small);
  EXPECT_GT(first.cache_evictions, 0u);
  EXPECT_EQ(first.plan.Hash(), ref.plan.Hash());
  EXPECT_EQ(first.predicted_cost, ref.predicted_cost);

  const SearchResult second = capped.search().FindPlan(q, small);
  EXPECT_EQ(second.plan.Hash(), ref.plan.Hash());
  // With only 16 cache slots the repeat search cannot be served fully from
  // cache (contrast ScoreCacheServesRepeatSearches): evicted states really
  // are recomputed.
  EXPECT_GT(second.evaluations, 0u);
}

TEST_F(CoreFixture, ParallelEpisodeMatchesSerialEpisode) {
  // RunEpisode with threads > 1 plans concurrently but executes and learns
  // serially in the shuffled order, so episode statistics that do not
  // involve wall time must match the serial run exactly.
  const auto wl = query::MakeJobWorkload(ds_->schema, *ds_->db);
  std::vector<const Query*> train;
  for (size_t i = 0; i < wl.size(); i += 17) train.push_back(&wl.query(i));
  ASSERT_GE(train.size(), 6u);

  auto run = [&](int threads) {
    engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
    auto native =
        optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
    NeoConfig cfg = SmallConfig();
    cfg.threads = threads;
    cfg.search.max_expansions = 20;
    Neo neo(featurizer_, &engine, cfg);
    neo.Bootstrap(train, native.optimizer.get());
    std::vector<EpisodeStats> stats;
    for (int e = 0; e < 2; ++e) stats.push_back(neo.RunEpisode(train));
    return stats;
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t e = 0; e < serial.size(); ++e) {
    EXPECT_EQ(serial[e].train_total_latency_ms, parallel[e].train_total_latency_ms)
        << "episode " << e;
    EXPECT_EQ(serial[e].retrain_loss, parallel[e].retrain_loss) << "episode " << e;
    EXPECT_EQ(serial[e].experience_states, parallel[e].experience_states);
  }
}

TEST_F(CoreFixture, ScoreCacheServesRepeatSearches) {
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  Neo neo(featurizer_, &engine, SmallConfig());
  const Query q = ThreeWay(58);
  SearchOptions opt;
  opt.max_expansions = 20;

  const SearchResult first = neo.search().FindPlan(q, opt);
  EXPECT_GT(first.evaluations, 0u);
  // Re-searching the same query under the same network: every state the
  // first pass scored comes out of the cache, not a fresh forward pass.
  const SearchResult second = neo.search().FindPlan(q, opt);
  EXPECT_EQ(second.plan.Hash(), first.plan.Hash());
  EXPECT_EQ(second.evaluations, 0u);
  EXPECT_GT(second.cache_hits, 0u);

  // Training bumps the network version, which must invalidate the cache.
  const plan::PartialPlan complete = first.plan;
  neo.experience().AddCompletePlan(q, complete, 25.0);
  neo.Retrain();
  const SearchResult after_train = neo.search().FindPlan(q, opt);
  EXPECT_GT(after_train.evaluations, 0u);
}

TEST_F(CoreFixture, HurryUpReusesBestFirstScores) {
  // A tiny expansion budget forces hurry-up completion; the greedy descent
  // starts from the last popped state, whose children the best-first phase
  // already scored, so the descent's first step must be all cache hits.
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  Neo neo(featurizer_, &engine, SmallConfig());
  const Query q = ThreeWay(59);
  SearchOptions opt;
  opt.max_expansions = 2;
  opt.early_stop = false;
  const SearchResult r = neo.search().FindPlan(q, opt);
  EXPECT_TRUE(r.plan.IsComplete());
  // Two expansions cannot complete a 3-relation plan, so hurry-up must fire.
  ASSERT_TRUE(r.hurried);
  EXPECT_GT(r.cache_hits, 0u);
}

TEST_F(CoreFixture, SearchMoreBudgetNeverWorsePrediction) {
  // Anytime property under a fixed network: a larger expansion budget never
  // returns a plan with a worse predicted cost.
  NeoConfig cfg = SmallConfig();
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  Neo neo(featurizer_, &engine, cfg);
  const auto wl = query::MakeJobWorkload(ds_->schema, *ds_->db);

  // Give the net some signal first so scores are not all ~equal.
  auto native = optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
  std::vector<const Query*> boot;
  for (size_t i = 0; i < wl.size(); i += 23) boot.push_back(&wl.query(i));
  neo.Bootstrap(boot, native.optimizer.get());
  neo.Retrain();

  const Query q = ThreeWay(54);
  SearchOptions small;
  small.max_expansions = 10;
  small.early_stop = false;
  SearchOptions big = small;
  big.max_expansions = 80;
  const SearchResult r_small = neo.search().FindPlan(q, small);
  const SearchResult r_big = neo.search().FindPlan(q, big);
  if (!r_small.hurried && !r_big.hurried) {
    EXPECT_LE(r_big.predicted_cost, r_small.predicted_cost + 1e-5f);
  }
}

TEST_F(CoreFixture, BootstrapSeedsExperienceAndBaselines) {
  NeoConfig cfg = SmallConfig();
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  Neo neo(featurizer_, &engine, cfg);
  auto native = optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
  const Query q = ThreeWay(55);
  neo.Bootstrap({&q}, native.optimizer.get());
  EXPECT_EQ(neo.experience().NumCompletePlans(), 1u);
  EXPECT_GT(neo.experience().NumStates(), 3u);
  EXPECT_GT(neo.Baseline(q.id), 0.0);
  EXPECT_LT(neo.experience().BestCost(q.id),
            std::numeric_limits<double>::infinity());
}

TEST_F(CoreFixture, RelativeCostFunctionNormalizesByBaseline) {
  NeoConfig cfg = SmallConfig();
  cfg.cost_function = CostFunction::kRelative;
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  Neo neo(featurizer_, &engine, cfg);
  auto native = optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
  const Query q = ThreeWay(56);
  neo.Bootstrap({&q}, native.optimizer.get());
  // The bootstrap plan's relative cost is exactly 1.
  EXPECT_NEAR(neo.experience().BestCost(q.id), 1.0, 1e-9);
}

TEST_F(CoreFixture, EndToEndLearningImprovesOverBootstrap) {
  // The headline behavior (paper §6.2-6.3): within a dozen episodes Neo's
  // best episode approaches the expert on the training workload (the
  // learning-curve shape: starts well above, converges toward / below the
  // bootstrap optimizer). Individual seeds oscillate (§6.3.1), so two seeds
  // are allowed before declaring failure.
  const auto wl = query::MakeJobWorkload(ds_->schema, *ds_->db);
  std::vector<const Query*> train;
  for (size_t i = 0; i < wl.size(); i += 6) train.push_back(&wl.query(i));
  ASSERT_GE(train.size(), 20u);

  auto run_with_seed = [&](uint64_t seed, double* best_vs_expert,
                           double* best_vs_first) {
    engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
    auto native =
        optim::MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
    Neo neo(featurizer_, &engine, SmallConfig(seed));
    double expert_total = 0.0;
    for (const Query* q : train) {
      expert_total += engine.ExecutePlan(*q, native.optimizer->Optimize(*q));
    }
    neo.Bootstrap(train, native.optimizer.get());
    double first_episode = 0.0, best_episode = 1e300;
    for (int e = 0; e < 12; ++e) {
      const EpisodeStats stats = neo.RunEpisode(train);
      if (e == 0) first_episode = stats.train_total_latency_ms;
      best_episode = std::min(best_episode, stats.train_total_latency_ms);
    }
    *best_vs_expert = best_episode / expert_total;
    *best_vs_first = best_episode / first_episode;
  };

  double vs_expert = 0.0, vs_first = 0.0;
  run_with_seed(11, &vs_expert, &vs_first);
  if (vs_expert >= 1.3) {
    double vs_expert2 = 0.0, vs_first2 = 0.0;
    run_with_seed(13, &vs_expert2, &vs_first2);
    vs_expert = std::min(vs_expert, vs_expert2);
    vs_first = std::min(vs_first, vs_first2);
  }
  EXPECT_LT(vs_expert, 1.3);
  EXPECT_LT(vs_first, 0.8);
}

}  // namespace
}  // namespace neo::core
