#include <gtest/gtest.h>

#include "src/catalog/histogram.h"
#include "src/catalog/schema.h"
#include "src/catalog/statistics.h"
#include "src/datagen/imdb_gen.h"

namespace neo::catalog {
namespace {

using storage::ColumnType;

TEST(SchemaTest, GlobalColumnIds) {
  Schema s;
  s.AddTable("a", {{"x", ColumnType::kInt}, {"y", ColumnType::kInt}}, "x");
  s.AddTable("b", {{"z", ColumnType::kInt}}, "z");
  EXPECT_EQ(s.num_tables(), 2);
  EXPECT_EQ(s.num_columns(), 3);
  EXPECT_EQ(s.GlobalColumnId("a", "x"), 0);
  EXPECT_EQ(s.GlobalColumnId("a", "y"), 1);
  EXPECT_EQ(s.GlobalColumnId("b", "z"), 2);
  EXPECT_EQ(s.GlobalColumnId("b", "missing"), -1);
  EXPECT_EQ(s.QualifiedName(1), "a.y");
  EXPECT_EQ(s.ColumnByGlobalId(2).table_id, 1);
}

TEST(SchemaTest, ForeignKeysAndJoinEdges) {
  Schema s;
  s.AddTable("fact", {{"id", ColumnType::kInt}, {"dim_id", ColumnType::kInt}}, "id");
  s.AddTable("dim", {{"id", ColumnType::kInt}}, "id");
  s.AddForeignKey("fact", "dim_id", "dim", "id");
  ForeignKey fk;
  EXPECT_TRUE(s.FindJoinEdge(0, 1, &fk));
  EXPECT_TRUE(s.FindJoinEdge(1, 0, &fk));
  EXPECT_EQ(fk.from_table, 0);
  EXPECT_EQ(fk.to_table, 1);
  EXPECT_EQ(s.ForeignKeysOf(0).size(), 1u);
  EXPECT_FALSE(s.FindJoinEdge(0, 0, nullptr));
}

TEST(SchemaTest, MarkIndexed) {
  Schema s;
  s.AddTable("t", {{"a", ColumnType::kInt}}, "");
  EXPECT_FALSE(s.table(0).columns[0].indexed);
  s.MarkIndexed("t", "a");
  EXPECT_TRUE(s.table(0).columns[0].indexed);
}

TEST(HistogramTest, ExactOnMcvs) {
  // A heavily repeated value must be estimated exactly (MCV list).
  std::vector<int64_t> codes;
  for (int i = 0; i < 900; ++i) codes.push_back(7);
  for (int i = 0; i < 100; ++i) codes.push_back(i + 100);
  Histogram h(codes, 16, 8);
  EXPECT_NEAR(h.SelectivityEq(7), 0.9, 1e-9);
  EXPECT_EQ(h.total_rows(), 1000u);
  EXPECT_EQ(h.num_distinct(), 101u);
}

TEST(HistogramTest, UniformEqualitySelectivity) {
  std::vector<int64_t> codes;
  for (int v = 0; v < 100; ++v) {
    for (int i = 0; i < 10; ++i) codes.push_back(v);
  }
  Histogram h(codes, 16, 0);
  // Every value has true selectivity 0.01; equi-depth should be close.
  EXPECT_NEAR(h.SelectivityEq(50), 0.01, 0.005);
}

TEST(HistogramTest, RangeSelectivity) {
  std::vector<int64_t> codes;
  for (int v = 0; v < 1000; ++v) codes.push_back(v);
  Histogram h(codes, 32, 0);
  EXPECT_NEAR(h.SelectivityRange(0, 499), 0.5, 0.05);
  EXPECT_NEAR(h.SelectivityRange(900, 999), 0.1, 0.05);
  EXPECT_NEAR(h.SelectivityRange(0, 999), 1.0, 0.01);
  EXPECT_EQ(h.SelectivityRange(5, 4), 0.0);
}

TEST(HistogramTest, EmptyColumn) {
  Histogram h(std::vector<int64_t>{}, 8, 4);
  EXPECT_EQ(h.SelectivityEq(1), 0.0);
  EXPECT_EQ(h.SelectivityRange(0, 10), 0.0);
  EXPECT_EQ(h.total_rows(), 0u);
}

TEST(HistogramTest, SelectivityBounds) {
  std::vector<int64_t> codes;
  for (int v = 0; v < 100; ++v) codes.push_back(v % 13);
  Histogram h(codes, 4, 2);
  for (int64_t v = -5; v < 20; ++v) {
    const double s = h.SelectivityEq(v);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(StatisticsTest, BuildsOverImdb) {
  datagen::GenOptions opt;
  opt.scale = 0.05;
  auto ds = datagen::GenerateImdb(opt);
  Statistics stats(ds.schema, *ds.db, 16, 8, 100, 7);
  const int title = ds.schema.TableId("title");
  EXPECT_EQ(stats.table_rows(title), ds.db->table("title").num_rows());
  EXPECT_EQ(stats.sample_rows(title).size(),
            std::min<size_t>(100, ds.db->table("title").num_rows()));
  // production_year histogram should cover a plausible range.
  const int year_col = ds.schema.TableByName("title").ColumnIndex("production_year");
  const auto& h = stats.histogram(title, year_col);
  EXPECT_GE(h.min_code(), 1900);
  EXPECT_LE(h.max_code(), 2025);
  EXPECT_NEAR(h.SelectivityRange(INT64_MIN, INT64_MAX), 1.0, 0.01);
}

TEST(StatisticsTest, SampleDeterministic) {
  datagen::GenOptions opt;
  opt.scale = 0.05;
  auto ds = datagen::GenerateImdb(opt);
  Statistics s1(ds.schema, *ds.db, 16, 8, 50, 7);
  Statistics s2(ds.schema, *ds.db, 16, 8, 50, 7);
  EXPECT_EQ(s1.sample_rows(0), s2.sample_rows(0));
}

}  // namespace
}  // namespace neo::catalog
