// Tests for the classical optimizer stack: estimators, cost model, DP /
// greedy / random optimizers, and the expected quality ordering between the
// emulated native optimizers.
#include <gtest/gtest.h>

#include <cmath>

#include "src/datagen/imdb_gen.h"
#include "src/engine/execution_engine.h"
#include "src/optim/optimizer.h"
#include "src/query/builder.h"
#include "src/query/job_workload.h"

namespace neo::optim {
namespace {

using engine::EngineKind;
using query::PredOp;
using query::Query;
using query::QueryBuilder;

class OptimFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GenOptions opt;
    opt.scale = 0.08;
    ds_ = new datagen::Dataset(datagen::GenerateImdb(opt));
    stats_ = new catalog::Statistics(ds_->schema, *ds_->db);
  }
  static void TearDownTestSuite() {
    delete stats_;
    delete ds_;
  }

  /// A 5-way query with a correlated keyword/genre pair (the paper's Fig. 8
  /// example query shape).
  static Query CorrelatedQuery(int id, const std::string& genre,
                               const std::string& stem) {
    QueryBuilder b(ds_->schema, *ds_->db, "fig8");
    b.JoinFk("movie_info", "title")
        .JoinFk("movie_info", "info_type")
        .JoinFk("movie_keyword", "title")
        .JoinFk("movie_keyword", "keyword")
        .PredStr("info_type", "info", PredOp::kEq, "genres")
        .PredStr("movie_info", "info", PredOp::kEq, genre)
        .PredStr("keyword", "keyword", PredOp::kContains, stem);
    Query q = b.Build();
    q.id = id;
    return q;
  }

  static datagen::Dataset* ds_;
  static catalog::Statistics* stats_;
};

datagen::Dataset* OptimFixture::ds_ = nullptr;
catalog::Statistics* OptimFixture::stats_ = nullptr;

TEST_F(OptimFixture, HistogramEstimatorBasics) {
  HistogramEstimator est(ds_->schema, *stats_, *ds_->db);
  QueryBuilder b(ds_->schema, *ds_->db, "q");
  b.Rel("title").Pred("title", "production_year", PredOp::kGe, 2000);
  Query q = b.Build();
  q.id = 1;
  const double base = est.EstimateBase(q, ds_->schema.TableId("title"));
  const double rows = est.TableRows(ds_->schema.TableId("title"));
  EXPECT_GT(base, 0.0);
  EXPECT_LT(base, rows);
}

TEST_F(OptimFixture, HistogramUnderestimatesCorrelatedJoin) {
  // The independence assumption must *underestimate* the aligned
  // genre/keyword pair (the JOB pathology that motivates Neo).
  HistogramEstimator est(ds_->schema, *stats_, *ds_->db);
  engine::CardinalityOracle oracle(ds_->schema, *ds_->db);
  Query q = CorrelatedQuery(2, "romance", "love");
  const uint64_t full = (1ULL << q.num_relations()) - 1;
  const double truth = oracle.Cardinality(q, full);
  const double est_card = est.EstimateSubset(q, full);
  ASSERT_GT(truth, 0.0);
  EXPECT_LT(est_card, truth);
}

TEST_F(OptimFixture, SamplingBeatsHistogramOnConjunction) {
  // Two correlated predicates on the same table (rating bucket + budget
  // bucket are both popularity/genre driven): sampling evaluates the
  // conjunction on real rows and should have lower log error on average.
  SamplingEstimator samp(ds_->schema, *stats_, *ds_->db);
  HistogramEstimator hist(ds_->schema, *stats_, *ds_->db);
  engine::CardinalityOracle oracle(ds_->schema, *ds_->db);

  double hist_err = 0.0, samp_err = 0.0;
  int trials = 0;
  for (int year = 1960; year <= 2000; year += 10) {
    QueryBuilder b(ds_->schema, *ds_->db, "conj");
    b.Rel("title")
        .Pred("title", "production_year", PredOp::kGe, year)
        .Pred("title", "production_year", PredOp::kLe, year + 5)
        .Pred("title", "popularity", PredOp::kLe, 2);
    Query q = b.Build();
    q.id = 100 + year;
    const int tid = ds_->schema.TableId("title");
    const double truth = std::max(1.0, oracle.BaseCardinality(q, tid));
    hist_err += std::fabs(std::log10(std::max(1.0, hist.EstimateBase(q, tid)) / truth));
    samp_err += std::fabs(std::log10(std::max(1.0, samp.EstimateBase(q, tid)) / truth));
    ++trials;
  }
  EXPECT_LE(samp_err, hist_err * 1.05) << "avg over " << trials << " queries";
}

TEST_F(OptimFixture, TrueEstimatorMatchesOracle) {
  engine::CardinalityOracle oracle(ds_->schema, *ds_->db);
  TrueCardEstimator est(&oracle);
  Query q = CorrelatedQuery(3, "action", "fight");
  const uint64_t full = (1ULL << q.num_relations()) - 1;
  EXPECT_DOUBLE_EQ(est.EstimateSubset(q, full), oracle.Cardinality(q, full));
}

TEST_F(OptimFixture, ErrorInjectionMagnitude) {
  engine::CardinalityOracle oracle(ds_->schema, *ds_->db);
  TrueCardEstimator inner(&oracle);
  ErrorInjectingEstimator err2(&inner, 2.0);
  Query q = CorrelatedQuery(4, "romance", "love");
  const uint64_t full = (1ULL << q.num_relations()) - 1;
  const double truth = inner.EstimateSubset(q, full);
  const double injected = err2.EstimateSubset(q, full);
  const double ratio = injected / truth;
  EXPECT_TRUE(std::fabs(ratio - 100.0) < 1e-6 || std::fabs(ratio - 0.01) < 1e-8);
  // Deterministic.
  EXPECT_DOUBLE_EQ(err2.EstimateSubset(q, full), injected);
  // Zero error is identity.
  ErrorInjectingEstimator err0(&inner, 0.0);
  EXPECT_DOUBLE_EQ(err0.EstimateSubset(q, full), truth);
}

TEST_F(OptimFixture, DpProducesCompleteValidPlans) {
  auto native = MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
  const auto wl = query::MakeJobWorkload(ds_->schema, *ds_->db);
  for (size_t i = 0; i < wl.size(); i += 17) {
    const Query& q = wl.query(i);
    const plan::PartialPlan p = native.optimizer->Optimize(q);
    EXPECT_TRUE(p.IsComplete()) << q.name;
    EXPECT_EQ(p.CoveredMask(), (1ULL << q.num_relations()) - 1) << q.name;
  }
}

TEST_F(OptimFixture, DpBeatsRandomOnAverage) {
  auto native = MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
  RandomOptimizer random(ds_->schema, 5);
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  const auto wl = query::MakeJobWorkload(ds_->schema, *ds_->db);
  double dp_total = 0.0, random_total = 0.0;
  for (size_t i = 0; i < wl.size(); i += 11) {
    const Query& q = wl.query(i);
    dp_total += engine.ExecutePlan(q, native.optimizer->Optimize(q));
    random_total += engine.ExecutePlan(q, random.Optimize(q));
  }
  EXPECT_LT(dp_total, random_total);
}

TEST_F(OptimFixture, GreedyProducesLeftDeepPlans) {
  auto native = MakeNativeOptimizer(EngineKind::kSqlite, ds_->schema, *ds_->db);
  const Query q = CorrelatedQuery(5, "horror", "ghost");
  const plan::PartialPlan p = native.optimizer->Optimize(q);
  ASSERT_TRUE(p.IsComplete());
  // Left-deep: every right child is a leaf.
  const plan::PlanNode* node = p.roots[0].get();
  while (node->is_join) {
    EXPECT_FALSE(node->right->is_join);
    node = node->left.get();
  }
}

TEST_F(OptimFixture, RandomOptimizerDeterministicPerSeed) {
  const Query q = CorrelatedQuery(6, "comedy", "joke");
  RandomOptimizer r1(ds_->schema, 42), r2(ds_->schema, 42), r3(ds_->schema, 43);
  EXPECT_EQ(r1.Optimize(q).Hash(), r2.Optimize(q).Hash());
  // A different seed should usually differ (not guaranteed, but 5-way plans
  // have a large space; check across two queries).
  const Query q2 = CorrelatedQuery(7, "scifi", "robot");
  const bool same = r1.Optimize(q2).Hash() == r3.Optimize(q2).Hash();
  EXPECT_FALSE(same && r1.Optimize(q).Hash() == r3.Optimize(q).Hash());
}

TEST_F(OptimFixture, TrueCardDpNoWorseThanHistogramDp) {
  // With exact cardinalities the same DP should find plans at least as good
  // on average (paper §6.4.3 motivation).
  auto pg = MakeNativeOptimizer(EngineKind::kPostgres, ds_->schema, *ds_->db);
  engine::ExecutionEngine engine(ds_->schema, *ds_->db, EngineKind::kPostgres);
  TrueCardEstimator true_est(&engine.oracle());
  CostModel true_cost(ds_->schema, engine::GetEngineProfile(EngineKind::kPostgres),
                      &true_est);
  DpOptimizer true_dp(ds_->schema, &true_cost);

  const auto wl = query::MakeJobWorkload(ds_->schema, *ds_->db);
  double hist_total = 0.0, true_total = 0.0;
  for (size_t i = 0; i < wl.size(); i += 7) {
    const Query& q = wl.query(i);
    hist_total += engine.ExecutePlan(q, pg.optimizer->Optimize(q));
    true_total += engine.ExecutePlan(q, true_dp.Optimize(q));
  }
  EXPECT_LT(true_total, hist_total * 1.1);
}

}  // namespace
}  // namespace neo::optim
