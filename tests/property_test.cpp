// Parameterized property tests (TEST_P) sweeping queries from all three
// workloads. These check the DESIGN.md §4 invariants on every query shape
// the system generates, not just hand-picked cases:
//   - classical optimizers emit complete plans whose every join subtree is
//     a connected subgraph of the query's join graph;
//   - the latency model is positive, deterministic, and agrees across
//     engines on relative plan orderings only where expected;
//   - the cardinality oracle is deterministic and join-order independent;
//   - plan encodings satisfy the §3.2 union/one-hot structure;
//   - search children preserve the subplan relation and cover masks.
#include <gtest/gtest.h>

#include "src/core/neo.h"
#include "src/datagen/corp_gen.h"
#include "src/datagen/imdb_gen.h"
#include "src/datagen/tpch_gen.h"
#include "src/query/corp_workload.h"
#include "src/query/job_workload.h"
#include "src/query/tpch_workload.h"

namespace neo {
namespace {

struct WorkloadCase {
  const char* name;
  int query_stride;
};

class WorkloadPropertyTest : public ::testing::TestWithParam<WorkloadCase> {
 protected:
  struct Bundle {
    datagen::Dataset ds;
    query::Workload wl{"none"};
  };

  static Bundle* GetBundle(const std::string& name) {
    static std::map<std::string, std::unique_ptr<Bundle>> cache;
    auto it = cache.find(name);
    if (it != cache.end()) return it->second.get();
    auto bundle = std::make_unique<Bundle>();
    datagen::GenOptions opt;
    opt.scale = 0.04;
    if (name == "job") {
      bundle->ds = datagen::GenerateImdb(opt);
      bundle->wl = query::MakeJobWorkload(bundle->ds.schema, *bundle->ds.db);
    } else if (name == "extjob") {
      bundle->ds = datagen::GenerateImdb(opt);
      bundle->wl = query::MakeExtJobWorkload(bundle->ds.schema, *bundle->ds.db);
    } else if (name == "tpch") {
      bundle->ds = datagen::GenerateTpch(opt);
      bundle->wl = query::MakeTpchWorkload(bundle->ds.schema, *bundle->ds.db);
    } else {
      bundle->ds = datagen::GenerateCorp(opt);
      bundle->wl = query::MakeCorpWorkload(bundle->ds.schema, *bundle->ds.db);
    }
    return cache.emplace(name, std::move(bundle)).first->second.get();
  }

  std::vector<const query::Query*> SampledQueries() {
    Bundle* b = GetBundle(GetParam().name);
    std::vector<const query::Query*> out;
    for (size_t i = 0; i < b->wl.size();
         i += static_cast<size_t>(GetParam().query_stride)) {
      out.push_back(&b->wl.query(i));
    }
    return out;
  }
};

/// Every join subtree of a plan must cover a connected relation subset.
void CheckConnectedSubtrees(const query::Query& q, const plan::PlanNode& node) {
  if (!node.is_join) return;
  EXPECT_TRUE(q.SubsetConnected(node.rel_mask));
  CheckConnectedSubtrees(q, *node.left);
  CheckConnectedSubtrees(q, *node.right);
}

TEST_P(WorkloadPropertyTest, DpPlansAreValidAndConnected) {
  Bundle* b = GetBundle(GetParam().name);
  auto native = optim::MakeNativeOptimizer(engine::EngineKind::kPostgres,
                                           b->ds.schema, *b->ds.db);
  for (const query::Query* q : SampledQueries()) {
    const plan::PartialPlan p = native.optimizer->Optimize(*q);
    ASSERT_TRUE(p.IsComplete()) << q->name;
    EXPECT_EQ(p.CoveredMask(), (1ULL << q->num_relations()) - 1) << q->name;
    CheckConnectedSubtrees(*q, *p.roots[0]);
  }
}

TEST_P(WorkloadPropertyTest, GreedyPlansAreValid) {
  Bundle* b = GetBundle(GetParam().name);
  auto native =
      optim::MakeNativeOptimizer(engine::EngineKind::kSqlite, b->ds.schema, *b->ds.db);
  for (const query::Query* q : SampledQueries()) {
    const plan::PartialPlan p = native.optimizer->Optimize(*q);
    ASSERT_TRUE(p.IsComplete()) << q->name;
    CheckConnectedSubtrees(*q, *p.roots[0]);
  }
}

TEST_P(WorkloadPropertyTest, LatencyPositiveDeterministicOnAllEngines) {
  Bundle* b = GetBundle(GetParam().name);
  auto native = optim::MakeNativeOptimizer(engine::EngineKind::kPostgres,
                                           b->ds.schema, *b->ds.db);
  for (engine::EngineKind ek :
       {engine::EngineKind::kPostgres, engine::EngineKind::kSqlite,
        engine::EngineKind::kMssql, engine::EngineKind::kOracle}) {
    engine::ExecutionEngine e1(b->ds.schema, *b->ds.db, ek);
    engine::ExecutionEngine e2(b->ds.schema, *b->ds.db, ek);
    for (const query::Query* q : SampledQueries()) {
      const plan::PartialPlan p = native.optimizer->Optimize(*q);
      const double t1 = e1.ExecutePlan(*q, p);
      const double t2 = e2.ExecutePlan(*q, p);
      EXPECT_GT(t1, 0.0) << q->name;
      EXPECT_DOUBLE_EQ(t1, t2) << q->name;
    }
  }
}

TEST_P(WorkloadPropertyTest, OracleDeterministicAcrossInstances) {
  Bundle* b = GetBundle(GetParam().name);
  engine::CardinalityOracle o1(b->ds.schema, *b->ds.db);
  engine::CardinalityOracle o2(b->ds.schema, *b->ds.db);
  for (const query::Query* q : SampledQueries()) {
    const uint64_t full = (1ULL << q->num_relations()) - 1;
    EXPECT_DOUBLE_EQ(o1.Cardinality(*q, full), o2.Cardinality(*q, full)) << q->name;
    // Warm-cache re-read agrees.
    EXPECT_DOUBLE_EQ(o1.Cardinality(*q, full), o2.Cardinality(*q, full));
  }
}

TEST_P(WorkloadPropertyTest, PlanEncodingStructureInvariants) {
  Bundle* b = GetBundle(GetParam().name);
  featurize::Featurizer feat(b->ds.schema, *b->ds.db, {});
  auto native = optim::MakeNativeOptimizer(engine::EngineKind::kPostgres,
                                           b->ds.schema, *b->ds.db);
  const int t = b->ds.schema.num_tables();
  for (const query::Query* q : SampledQueries()) {
    const plan::PartialPlan p = native.optimizer->Optimize(*q);
    nn::TreeStructure tree;
    nn::Matrix feats;
    feat.EncodePlan(*q, p, &tree, &feats);
    ASSERT_EQ(static_cast<size_t>(feats.rows()), tree.NumNodes());
    for (int i = 0; i < feats.rows(); ++i) {
      const float* row = feats.Row(i);
      // At most one join-op bit.
      EXPECT_LE(row[0] + row[1] + row[2], 1.0f);
      const int l = tree.left[static_cast<size_t>(i)];
      const int r = tree.right[static_cast<size_t>(i)];
      ASSERT_EQ(l >= 0, r >= 0);  // Binary: both children or neither.
      if (l >= 0) {
        // Internal nodes: scan bits are the union of the children (§3.2).
        for (int c = 3; c < 3 + 2 * t; ++c) {
          EXPECT_FLOAT_EQ(row[c],
                          std::max(feats.At(l, c), feats.At(r, c)))
              << q->name << " channel " << c;
        }
      }
    }
  }
}

TEST_P(WorkloadPropertyTest, SearchChildrenPreserveSubplanRelation) {
  Bundle* b = GetBundle(GetParam().name);
  featurize::Featurizer feat(b->ds.schema, *b->ds.db, {});
  engine::ExecutionEngine engine(b->ds.schema, *b->ds.db,
                                 engine::EngineKind::kPostgres);
  core::NeoConfig cfg;
  cfg.net.query_fc = {16};
  cfg.net.tree_channels = {8};
  cfg.net.head_fc = {8};
  core::Neo neo(&feat, &engine, cfg);
  for (const query::Query* q : SampledQueries()) {
    const plan::PartialPlan initial = plan::PartialPlan::Initial(*q);
    // Walk two levels of children.
    const auto kids = neo.search().Children(*q, initial);
    ASSERT_FALSE(kids.empty()) << q->name;
    for (size_t i = 0; i < kids.size(); i += 3) {
      EXPECT_TRUE(plan::IsSubplanOf(initial, kids[i]));
      EXPECT_EQ(kids[i].CoveredMask(), initial.CoveredMask());
      const auto grandkids = neo.search().Children(*q, kids[i]);
      if (!kids[i].IsComplete()) ASSERT_FALSE(grandkids.empty());
      for (size_t g = 0; g < grandkids.size(); g += 5) {
        EXPECT_TRUE(plan::IsSubplanOf(kids[i], grandkids[g]));
      }
    }
  }
}

TEST_P(WorkloadPropertyTest, SearchProducesExecutablePlans) {
  Bundle* b = GetBundle(GetParam().name);
  featurize::Featurizer feat(b->ds.schema, *b->ds.db, {});
  engine::ExecutionEngine engine(b->ds.schema, *b->ds.db,
                                 engine::EngineKind::kPostgres);
  core::NeoConfig cfg;
  cfg.net.query_fc = {16};
  cfg.net.tree_channels = {8};
  cfg.net.head_fc = {8};
  cfg.search.max_expansions = 20;
  core::Neo neo(&feat, &engine, cfg);
  for (const query::Query* q : SampledQueries()) {
    const core::SearchResult r = neo.Plan(*q);
    ASSERT_TRUE(r.plan.IsComplete()) << q->name;
    CheckConnectedSubtrees(*q, *r.plan.roots[0]);
    EXPECT_GT(engine.ExecutePlan(*q, r.plan), 0.0) << q->name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadPropertyTest,
                         ::testing::Values(WorkloadCase{"job", 11},
                                           WorkloadCase{"extjob", 3},
                                           WorkloadCase{"tpch", 13},
                                           WorkloadCase{"corp", 17}),
                         [](const ::testing::TestParamInfo<WorkloadCase>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace neo
