// Tests for value-network weight persistence and EXPLAIN plan rendering.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>

#include "src/datagen/imdb_gen.h"
#include "src/engine/execution_engine.h"
#include "src/engine/explain.h"
#include "src/nn/value_network.h"
#include "src/optim/optimizer.h"
#include "src/query/builder.h"

namespace neo {
namespace {

nn::ValueNetConfig SmallConfig(uint64_t seed) {
  nn::ValueNetConfig cfg;
  cfg.query_dim = 12;
  cfg.plan_dim = 9;
  cfg.query_fc = {16, 8};
  cfg.tree_channels = {12, 8};
  cfg.head_fc = {8};
  cfg.seed = seed;
  return cfg;
}

nn::PlanSample MakeSample(util::Rng& rng) {
  nn::PlanSample s;
  s.query_vec = nn::Matrix(1, 12);
  s.node_features = nn::Matrix(5, 9);
  for (size_t i = 0; i < s.query_vec.Size(); ++i) {
    s.query_vec.data()[i] = static_cast<float>(rng.NextUniform(-1, 1));
  }
  for (size_t i = 0; i < s.node_features.Size(); ++i) {
    s.node_features.data()[i] = static_cast<float>(rng.NextUniform(-1, 1));
  }
  s.tree.left = {1, -1, -1, -1, -1};
  s.tree.right = {2, -1, -1, -1, -1};
  return s;
}

TEST(SerializeTest, RoundTripPreservesPredictions) {
  nn::ValueNetwork net(SmallConfig(5));
  util::Rng rng(6);
  // Perturb weights away from init by training a bit.
  const nn::PlanSample s = MakeSample(rng);
  for (int i = 0; i < 20; ++i) net.TrainBatch({&s}, {0.7f});

  const std::string path = ::testing::TempDir() + "/neo_weights.bin";
  ASSERT_TRUE(net.SaveWeights(path).ok());

  // Fresh network with different init seed: predictions differ before load,
  // match exactly after.
  nn::ValueNetwork other(SmallConfig(99));
  const float before = other.Predict(s);
  const uint64_t version_before = other.version();
  ASSERT_TRUE(other.LoadWeights(path).ok());
  EXPECT_GT(other.version(), version_before);
  const float after = other.Predict(s);
  EXPECT_NE(before, net.Predict(s));
  EXPECT_FLOAT_EQ(after, net.Predict(s));
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsArchitectureMismatch) {
  nn::ValueNetwork net(SmallConfig(5));
  const std::string path = ::testing::TempDir() + "/neo_weights2.bin";
  ASSERT_TRUE(net.SaveWeights(path).ok());

  nn::ValueNetConfig wide = SmallConfig(5);
  wide.tree_channels = {16, 8};  // Different width.
  nn::ValueNetwork other(wide);
  const util::Status status = other.LoadWeights(path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::Status::Code::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsMissingFile) {
  nn::ValueNetwork net(SmallConfig(5));
  const util::Status status = net.LoadWeights("/nonexistent/path/weights.bin");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::Status::Code::kNotFound);
}

TEST(SerializeTest, LoadDetectsTruncation) {
  nn::ValueNetwork net(SmallConfig(5));
  const std::string path = ::testing::TempDir() + "/neo_weights_trunc.bin";
  ASSERT_TRUE(net.SaveWeights(path).ok());

  // Chop the checkpoint short (drop the checksum plus some payload).
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(size, 64);
  ASSERT_EQ(truncate(path.c_str(), size - 32), 0);

  nn::ValueNetwork other(SmallConfig(5));
  const uint64_t version_before = other.version();
  const util::Status status = other.LoadWeights(path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::Status::Code::kDataLoss);
  // A partial read may have overwritten parameters: the version must bump
  // even on failure so weight-derived caches invalidate.
  EXPECT_GT(other.version(), version_before);
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadDetectsBitFlip) {
  nn::ValueNetwork net(SmallConfig(5));
  const std::string path = ::testing::TempDir() + "/neo_weights_flip.bin";
  ASSERT_TRUE(net.SaveWeights(path).ok());

  // Flip one bit in the middle of the payload; the trailing FNV-1a checksum
  // must catch it.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, size / 2, SEEK_SET);
  int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(byte ^ 0x10, f);
  std::fclose(f);

  nn::ValueNetwork other(SmallConfig(5));
  const util::Status status = other.LoadWeights(path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::Status::Code::kDataLoss);
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "/neo_weights_magic.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "not a neo checkpoint, definitely";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);

  nn::ValueNetwork net(SmallConfig(5));
  const util::Status status = net.LoadWeights(path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::Status::Code::kDataLoss);
  std::remove(path.c_str());
}

TEST(ExplainTest, RendersTreeWithCardinalities) {
  datagen::GenOptions opt;
  opt.scale = 0.03;
  datagen::Dataset ds = datagen::GenerateImdb(opt);
  query::QueryBuilder b(ds.schema, *ds.db, "explain");
  b.JoinFk("movie_keyword", "keyword")
      .PredStr("keyword", "keyword", query::PredOp::kContains, "love");
  query::Query q = b.Build();
  q.id = 77;

  engine::ExecutionEngine engine(ds.schema, *ds.db, engine::EngineKind::kPostgres);
  auto native =
      optim::MakeNativeOptimizer(engine::EngineKind::kPostgres, ds.schema, *ds.db);
  const plan::PartialPlan p = native.optimizer->Optimize(q);
  const std::string text = engine::ExplainPlan(q, p, engine.model());

  // Mentions both tables and a join operator, with cardinality annotations.
  EXPECT_NE(text.find("movie_keyword"), std::string::npos);
  EXPECT_NE(text.find("keyword"), std::string::npos);
  EXPECT_NE(text.find("Join"), std::string::npos);
  EXPECT_NE(text.find("out="), std::string::npos);
  EXPECT_NE(text.find("work="), std::string::npos);
  // Two levels of indentation (children indented under the join).
  EXPECT_NE(text.find("\n  "), std::string::npos);
}

}  // namespace
}  // namespace neo
