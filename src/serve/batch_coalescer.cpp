#include "src/serve/batch_coalescer.h"

#include <algorithm>
#include <chrono>

#include "src/util/status.h"

namespace neo::serve {

void BatchCoalescer::NoteArrival() {
  const int64_t now_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  const int64_t prev = last_arrival_us_.exchange(now_us, std::memory_order_relaxed);
  if (prev < 0 || now_us <= prev) return;
  // Cap one interval at 10x the max window: after an idle gap the EWMA should
  // recover within a few arrivals instead of remembering the gap for hundreds.
  const int64_t cap = static_cast<int64_t>(options_.window_us) * 10;
  const int64_t interval = std::min<int64_t>(now_us - prev, cap);
  const int64_t old = ewma_interval_us_.load(std::memory_order_relaxed);
  // Integer EWMA, alpha = 1/5: new = old + (sample - old) / 5.
  const int64_t next = old < 0 ? interval : old + (interval - old) / 5;
  ewma_interval_us_.store(next, std::memory_order_relaxed);
}

int BatchCoalescer::EffectiveWindowUs() const {
  if (!options_.adaptive_window) return options_.window_us;
  const int64_t ewma = ewma_interval_us_.load(std::memory_order_relaxed);
  if (ewma < 0) return options_.window_us;  // No signal yet: be permissive.
  if (ewma > options_.window_us) return options_.min_window_us;
  // Wait roughly two expected arrivals, bounded by [min, max].
  const int64_t want = 2 * ewma;
  return static_cast<int>(std::clamp<int64_t>(want, options_.min_window_us,
                                              options_.window_us));
}

std::vector<float> BatchCoalescer::ScoreBatch(
    nn::ValueNetwork* net, const nn::Matrix& query_embedding,
    const nn::PlanBatch& batch, const nn::ActivationReuse* reuse,
    nn::ValueNetwork::InferenceContext* ctx) {
  NoteArrival();
  // Solo fast path: with at most one search in flight nothing can join a
  // group, so the window would be pure added latency. The count is advisory
  // — a stale read only costs a missed merge or an empty window, never
  // correctness.
  if (active_searches_.load(std::memory_order_relaxed) <= 1) {
    direct_calls_.fetch_add(1, std::memory_order_relaxed);
    return net->PredictBatch(query_embedding, batch, ctx, reuse);
  }

  Pending self;
  self.item = {&query_embedding, &batch, reuse};
  std::shared_ptr<Group> group;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Group* open = open_.get();
    if (open != nullptr && !open->closed && open->net == net &&
        static_cast<int>(open->members.size()) < options_.max_merge) {
      // Join as a follower: park until the leader distributes our span.
      group = open_;
      group->members.push_back(&self);
      if (static_cast<int>(group->members.size()) >= options_.max_merge) {
        group->cv.notify_all();  // Group is full; wake the leader early.
      }
      group->cv.wait(lock, [&self] { return self.done; });
      return std::move(self.scores);
    }
    if (open != nullptr) {
      // An open group exists but is unjoinable (full, closing, or pinned to
      // a different RCU snapshot). Score directly rather than racing it.
      direct_calls_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      return net->PredictBatch(query_embedding, batch, ctx, reuse);
    }
    // Become the leader of a fresh group and hold the gather window.
    group = std::make_shared<Group>();
    group->net = net;
    group->members.push_back(&self);
    open_ = group;
    const int window_us = EffectiveWindowUs();
    last_window_us_.store(window_us, std::memory_order_relaxed);
    group->cv.wait_for(lock, std::chrono::microseconds(window_us),
                       [&] {
                         return static_cast<int>(group->members.size()) >=
                                options_.max_merge;
                       });
    group->closed = true;
    if (open_ == group) open_ = nullptr;
  }

  // Leader, lock released: score the closed member set. Followers are all
  // parked on group->cv, so their Pending slots (and the batches/reuse spans
  // they point to) are stable.
  if (group->members.size() == 1) {
    solo_groups_.fetch_add(1, std::memory_order_relaxed);
    direct_calls_.fetch_add(1, std::memory_order_relaxed);
    return net->PredictBatch(query_embedding, batch, ctx, reuse);
  }
  std::vector<nn::MultiPredictItem> items;
  items.reserve(group->members.size());
  for (const Pending* p : group->members) items.push_back(p->item);
  const std::vector<float> all =
      net->PredictBatchMulti(items.data(), items.size(), ctx);
  merged_groups_.fetch_add(1, std::memory_order_relaxed);
  merged_requests_.fetch_add(group->members.size(), std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t off = 0;
    for (Pending* p : group->members) {
      const size_t n = static_cast<size_t>(p->item.batch->size());
      p->scores.assign(all.begin() + static_cast<ptrdiff_t>(off),
                       all.begin() + static_cast<ptrdiff_t>(off + n));
      off += n;
      p->done = true;
    }
    NEO_CHECK(off == all.size());
  }
  group->cv.notify_all();
  return std::move(self.scores);
}

BatchCoalescer::Stats BatchCoalescer::stats() const {
  Stats s;
  s.direct_calls = direct_calls_.load(std::memory_order_relaxed);
  s.merged_groups = merged_groups_.load(std::memory_order_relaxed);
  s.merged_requests = merged_requests_.load(std::memory_order_relaxed);
  s.solo_groups = solo_groups_.load(std::memory_order_relaxed);
  s.ewma_interval_us = ewma_interval_us_.load(std::memory_order_relaxed);
  s.last_window_us = last_window_us_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace neo::serve
