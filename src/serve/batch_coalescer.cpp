#include "src/serve/batch_coalescer.h"

#include <chrono>

#include "src/util/status.h"

namespace neo::serve {

std::vector<float> BatchCoalescer::ScoreBatch(
    nn::ValueNetwork* net, const nn::Matrix& query_embedding,
    const nn::PlanBatch& batch, const nn::ActivationReuse* reuse,
    nn::ValueNetwork::InferenceContext* ctx) {
  // Solo fast path: with at most one search in flight nothing can join a
  // group, so the window would be pure added latency. The count is advisory
  // — a stale read only costs a missed merge or an empty window, never
  // correctness.
  if (active_searches_.load(std::memory_order_relaxed) <= 1) {
    direct_calls_.fetch_add(1, std::memory_order_relaxed);
    return net->PredictBatch(query_embedding, batch, ctx, reuse);
  }

  Pending self;
  self.item = {&query_embedding, &batch, reuse};
  std::shared_ptr<Group> group;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Group* open = open_.get();
    if (open != nullptr && !open->closed && open->net == net &&
        static_cast<int>(open->members.size()) < options_.max_merge) {
      // Join as a follower: park until the leader distributes our span.
      group = open_;
      group->members.push_back(&self);
      if (static_cast<int>(group->members.size()) >= options_.max_merge) {
        group->cv.notify_all();  // Group is full; wake the leader early.
      }
      group->cv.wait(lock, [&self] { return self.done; });
      return std::move(self.scores);
    }
    if (open != nullptr) {
      // An open group exists but is unjoinable (full, closing, or pinned to
      // a different RCU snapshot). Score directly rather than racing it.
      direct_calls_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      return net->PredictBatch(query_embedding, batch, ctx, reuse);
    }
    // Become the leader of a fresh group and hold the gather window.
    group = std::make_shared<Group>();
    group->net = net;
    group->members.push_back(&self);
    open_ = group;
    group->cv.wait_for(lock, std::chrono::microseconds(options_.window_us),
                       [&] {
                         return static_cast<int>(group->members.size()) >=
                                options_.max_merge;
                       });
    group->closed = true;
    if (open_ == group) open_ = nullptr;
  }

  // Leader, lock released: score the closed member set. Followers are all
  // parked on group->cv, so their Pending slots (and the batches/reuse spans
  // they point to) are stable.
  if (group->members.size() == 1) {
    solo_groups_.fetch_add(1, std::memory_order_relaxed);
    direct_calls_.fetch_add(1, std::memory_order_relaxed);
    return net->PredictBatch(query_embedding, batch, ctx, reuse);
  }
  std::vector<nn::MultiPredictItem> items;
  items.reserve(group->members.size());
  for (const Pending* p : group->members) items.push_back(p->item);
  const std::vector<float> all =
      net->PredictBatchMulti(items.data(), items.size(), ctx);
  merged_groups_.fetch_add(1, std::memory_order_relaxed);
  merged_requests_.fetch_add(group->members.size(), std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t off = 0;
    for (Pending* p : group->members) {
      const size_t n = static_cast<size_t>(p->item.batch->size());
      p->scores.assign(all.begin() + static_cast<ptrdiff_t>(off),
                       all.begin() + static_cast<ptrdiff_t>(off + n));
      off += n;
      p->done = true;
    }
    NEO_CHECK(off == all.size());
  }
  group->cv.notify_all();
  return std::move(self.scores);
}

BatchCoalescer::Stats BatchCoalescer::stats() const {
  Stats s;
  s.direct_calls = direct_calls_.load(std::memory_order_relaxed);
  s.merged_groups = merged_groups_.load(std::memory_order_relaxed);
  s.merged_requests = merged_requests_.load(std::memory_order_relaxed);
  s.solo_groups = solo_groups_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace neo::serve
