#include "src/serve/serving_core.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace neo::serve {

ServingCore::ServingCore(core::Neo* neo, ServingOptions options)
    : neo_(neo), options_(std::move(options)), rcu_(neo->net().config()) {
  NEO_CHECK_MSG(!nn::UseReferenceKernels(),
                "serving requires fast kernels (reference path is serial)");
  options_.workers = std::max(1, options_.workers);
  if (options_.shared_caches) {
    caches_ = std::make_unique<core::SharedSearchCaches>(
        options_.shared_score_cap, options_.shared_activation_cap,
        options_.cache_shards, options_.shared_leaf_cap);
  }
  if (options_.coalesce) {
    coalescer_ = std::make_unique<BatchCoalescer>(options_.coalescer);
  }
  if (options_.store != nullptr) {
    // Every serve through the choke point records into the store; Decide()
    // consultation happens in ServeOne before search.
    neo_->SetExperienceStore(options_.store);
  }
  if (options_.admission.enabled && options_.admission.ladder.enabled) {
    controller_ =
        std::make_unique<DegradationController>(options_.admission.ladder);
  }
  // Level-1 budget: a real search, just a cheaper one. Derived once so the
  // worker's per-request choice is a pointer pick, not a recompute.
  degraded_search_ = options_.search;
  const LadderOptions& ladder = options_.admission.ladder;
  if (degraded_search_.max_expansions > 0) {
    degraded_search_.max_expansions =
        std::max(1, degraded_search_.max_expansions /
                        std::max(1, ladder.l1_expansion_divisor));
  } else {
    degraded_search_.max_expansions = std::max(1, ladder.l1_unlimited_expansions);
  }
  degraded_search_.speculation =
      std::max(1, std::min(degraded_search_.speculation, ladder.l1_speculation));
  rcu_.Publish(neo_->net());
  searches_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    searches_.push_back(
        std::make_unique<core::PlanSearch>(&neo_->featurizer(), nullptr));
  }
  threads_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ServingCore::~ServingCore() { Stop(); }

void ServingCore::FailTask(Task&& task, util::Status status, int level) {
  ServeResult r;
  r.queue_ms = task.queued.ElapsedMs();
  r.status = std::move(status);
  r.ladder_level = level;
  task.promise.set_value(std::move(r));
}

std::future<ServeResult> ServingCore::Submit(const query::Query& query,
                                             bool learn,
                                             const SubmitOptions& submit) {
  const AdmissionOptions& adm = options_.admission;
  Task task;
  task.query = &query;
  task.learn = learn;
  task.deadline_ms = submit.deadline_ms > 0.0 ? submit.deadline_ms
                                              : adm.default_deadline_ms;
  task.priority = submit.priority;
  std::future<ServeResult> future = task.promise.get_future();
  // Tasks failed under the lock complete their futures after it drops.
  std::vector<Task> failed_expired;
  Task failed_victim;
  bool have_victim = false;
  util::Status reject;  // Ok = admitted.
  int level = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    ++requests_;
    task.seq = requests_;
    if (stopping_) {
      ++rejected_post_stop_;
      reject = util::Status::FailedPrecondition("Submit after Stop");
    } else if (adm.enabled) {
      level = controller_ != nullptr ? controller_->level() : 0;
      if (level >= 3) {
        // Level 3 admits nothing, so pickups — the controller's usual
        // observation source — stop once the queue drains, and the ladder
        // could never recover. Fold the shed arrival itself as an
        // observation (depth pressure only; it never waited), so an idle
        // system decays pressure and re-opens admission.
        level = controller_->Observe(/*queue_wait_ms=*/0.0,
                                     /*deadline_ms=*/0.0, queue_.size(),
                                     adm.queue_cap);
      }
      if (level >= 3) {
        // The ladder's terminal level: protect queued work by refusing new
        // work outright — the cheapest possible serve of this request.
        ++shed_admission_;
        reject = util::Status::ResourceExhausted("overload: shedding at admission");
      } else if (adm.queue_cap > 0 && queue_.size() >= adm.queue_cap) {
        if (adm.policy == ShedPolicy::kEvictExpiredFirst) {
          // Past-deadline queued requests can never be served in time;
          // evicting them first converts dead queue slots into live ones.
          for (auto it = queue_.begin(); it != queue_.end();) {
            if (it->deadline_ms > 0.0 &&
                it->queued.ElapsedMs() > it->deadline_ms) {
              ++expired_at_admission_;
              failed_expired.push_back(std::move(*it));
              it = queue_.erase(it);
            } else {
              ++it;
            }
          }
        }
        if (queue_.size() >= adm.queue_cap) {
          // Priority shed: a strictly higher-priority arrival evicts the
          // lowest-priority queued request; ties keep what is queued.
          auto victim = queue_.end();
          for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->priority < task.priority &&
                (victim == queue_.end() || it->priority < victim->priority)) {
              victim = it;
            }
          }
          if (victim != queue_.end()) {
            ++evicted_lower_priority_;
            failed_victim = std::move(*victim);
            have_victim = true;
            queue_.erase(victim);
          } else {
            ++shed_queue_full_;
            reject = util::Status::ResourceExhausted("overload: queue full");
          }
        }
      }
    }
    if (reject.ok()) {
      ++admitted_;
      queue_.push_back(std::move(task));
      queue_depth_hwm_ = std::max(queue_depth_hwm_, queue_.size());
    }
  }
  for (Task& t : failed_expired) {
    FailTask(std::move(t),
             util::Status::DeadlineExceeded("deadline passed while queued"),
             level);
  }
  if (have_victim) {
    FailTask(std::move(failed_victim),
             util::Status::ResourceExhausted(
                 "overload: evicted for a higher-priority arrival"),
             level);
  }
  if (!reject.ok()) {
    FailTask(std::move(task), std::move(reject), level);
    return future;
  }
  queue_cv_.notify_one();
  return future;
}

ServeResult ServingCore::ServeSync(const query::Query& query, bool learn) {
  return Submit(query, learn).get();
}

uint64_t ServingCore::PublishWeights() { return rcu_.Publish(neo_->net()); }

float ServingCore::RetrainAndPublish() {
  std::lock_guard<std::mutex> lock(retrain_mu_);
  // Retrain mutates only the primary network, which no worker reads — every
  // in-flight search scores on an RCU standby — so this blocks nothing.
  const float loss = neo_->Retrain();
  rcu_.Publish(neo_->net());
  return loss;
}

void ServingCore::Drain() {
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drain_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }
  // Every observation recorded so far is now in the WAL buffer; make it
  // durable before reporting the core idle.
  if (options_.store != nullptr) options_.store->Sync();
}

void ServingCore::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // Explicit shutdown ordering: (1) wait until queued AND in-flight requests
  // finish — workers only exit on an empty queue, but in-flight serves must
  // have *recorded* before the flush below; (2) flush the store WAL so no
  // accepted request's observation is lost; (3) join.
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drain_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }
  if (options_.store != nullptr) options_.store->Sync();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ServingCore::WorkerLoop(int worker_index) {
  core::PlanSearch& search = *searches_[static_cast<size_t>(worker_index)];
  const bool admission = options_.admission.enabled;
  for (;;) {
    Task task;
    int level = 0;
    bool expired = false;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Stopping and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      task.picked_wait_ms = task.queued.ElapsedMs();
      if (controller_ != nullptr) {
        // One pickup = one controller observation (under the queue mutex,
        // so the observation sequence is totally ordered).
        level = controller_->Observe(task.picked_wait_ms, task.deadline_ms,
                                     queue_.size(), options_.admission.queue_cap);
      }
      expired = admission && task.deadline_ms > 0.0 &&
                task.picked_wait_ms > task.deadline_ms;
      if (expired) {
        // The caller stopped waiting before we could start: drop without
        // executing. This is what makes queue_ms <= deadline structural for
        // every request that does execute.
        if (queue_.empty() && in_flight_ == 0) drain_cv_.notify_all();
      } else {
        ++in_flight_;
      }
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      queue_wait_hist_.Record(task.picked_wait_ms);
    }
    if (expired) {
      expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
      FailTask(std::move(task),
               util::Status::DeadlineExceeded("deadline passed while queued"),
               level);
      continue;
    }
    ServeResult result;
    // Crash containment: a throwing serve fails only this request's future;
    // the worker (and every other queued request) survives.
    try {
      util::FaultInjector* chaos = options_.fault_injector;
      if (chaos != nullptr) {
        const double stall_ms = chaos->DrawServeStall(task.seq);
        if (stall_ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(stall_ms));
        }
        if (chaos->DrawServeException(task.seq)) {
          throw std::runtime_error("injected poisoned request");
        }
      }
      result = ServeOne(search, task, level);
    } catch (const std::exception& e) {
      worker_exceptions_.fetch_add(1, std::memory_order_relaxed);
      result = ServeResult();
      result.queue_ms = task.picked_wait_ms;
      result.ladder_level = level;
      result.status = util::Status::Internal(e.what());
    } catch (...) {
      worker_exceptions_.fetch_add(1, std::memory_order_relaxed);
      result = ServeResult();
      result.queue_ms = task.picked_wait_ms;
      result.ladder_level = level;
      result.status = util::Status::Internal("unknown serve exception");
    }
    task.promise.set_value(std::move(result));
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drain_cv_.notify_all();
    }
  }
}

ServeResult ServingCore::ServeOne(core::PlanSearch& search, const Task& task,
                                  int level) {
  ServeResult out;
  out.queue_ms = task.picked_wait_ms;
  out.ladder_level = level;

  store::ExperienceStore* store = options_.store;
  if (store != nullptr) {
    store::Decision decision = store->Decide(*task.query);
    if (decision.use_pinned) {
      // Exploit/frozen type: serve the best-known plan, skip search. The
      // serve still flows through Neo's guarded choke point (watchdog,
      // breaker, experience, store recording) with from_search=false.
      out.served_from_store = true;
      out.store_probe = decision.is_probe;
      out.latency_ms = neo_->Serve(*task.query, decision.pinned, task.learn,
                                   /*from_search=*/false);
      out.predicted_cost = static_cast<float>(decision.pinned_latency_ms);
      out.plan_hash = decision.pinned.Hash();
      out.generation = rcu_.generation();
      out.total_ms = task.queued.ElapsedMs();
      store_pinned_serves_.fetch_add(1, std::memory_order_relaxed);
      MaybeSyncStore();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        total_hist_.Record(out.total_ms);
        plan_hist_.Record(out.plan_ms);
      }
      return out;
    }
  }

  if (level >= 2) {
    // Ladder level 2: no search. Serve the store's best-known plan, else
    // the query's bootstrap expert plan, through the guarded choke point
    // (from_search=false so the store's mode machine sees it as pinned).
    plan::PartialPlan pinned;
    double pinned_latency_ms = 0.0;
    bool have = store != nullptr &&
                store->BestPlanFor(*task.query, &pinned, &pinned_latency_ms);
    if (!have) {
      const plan::PartialPlan* fb = neo_->FallbackPlan(task.query->fingerprint);
      if (fb != nullptr) {
        pinned = *fb;  // cheap: shared_ptr roots
        pinned.query = task.query;
        pinned_latency_ms = neo_->Baseline(task.query->id);
        have = true;
      }
    }
    if (have) {
      out.degraded = true;
      out.latency_ms = neo_->Serve(*task.query, pinned, task.learn,
                                   /*from_search=*/false);
      out.predicted_cost = static_cast<float>(pinned_latency_ms);
      out.plan_hash = pinned.Hash();
      out.generation = rcu_.generation();
      out.total_ms = task.queued.ElapsedMs();
      degraded_pinned_serves_.fetch_add(1, std::memory_order_relaxed);
      MaybeSyncStore();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        total_hist_.Record(out.total_ms);
        plan_hist_.Record(out.plan_ms);
      }
      return out;
    }
    // No pinned plan known for this type: fall through to a reduced-budget
    // search — still strictly cheaper than full service.
  }

  const ModelRcu::Ref ref = rcu_.Acquire();
  NEO_CHECK(ref.net != nullptr);
  out.generation = ref.generation;
  // Rebind to this request's snapshot; the generation re-salts every
  // shared-cache key so entries from other snapshots are never served.
  search.Rebind(ref.net.get());
  search.SetSharedCaches(caches_.get(), ref.generation);
  search.SetBatchScorer(coalescer_.get());

  const bool reduced_budget = level >= 1;
  if (reduced_budget) {
    out.degraded = true;
    degraded_budget_serves_.fetch_add(1, std::memory_order_relaxed);
  }
  util::Stopwatch plan_watch;
  // RAII bracket so a throwing search (crash containment) never leaves the
  // coalescer's active count stuck.
  struct SearchBracket {
    BatchCoalescer* c;
    explicit SearchBracket(BatchCoalescer* coalescer) : c(coalescer) {
      if (c != nullptr) c->BeginSearch();
    }
    ~SearchBracket() {
      if (c != nullptr) c->EndSearch();
    }
  };
  core::SearchResult found;
  {
    SearchBracket bracket(coalescer_.get());
    found = search.FindPlan(*task.query,
                            reduced_budget ? degraded_search_ : options_.search);
  }
  out.plan_ms = plan_watch.ElapsedMs();

  out.latency_ms = neo_->Serve(*task.query, found.plan, task.learn);
  out.predicted_cost = found.predicted_cost;
  out.plan_hash = found.plan.Hash();
  out.total_ms = task.queued.ElapsedMs();
  leaf_tier_hits_.fetch_add(found.leaf_tier_hits, std::memory_order_relaxed);
  out.search = std::move(found);
  MaybeSyncStore();

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    total_hist_.Record(out.total_ms);
    plan_hist_.Record(out.plan_ms);
  }
  return out;
}

ServingStats ServingCore::stats() const {
  ServingStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.total_latency = total_hist_;
    s.plan_latency = plan_hist_;
    s.queue_wait = queue_wait_hist_;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    s.requests = requests_;
    s.admitted = admitted_;
    s.shed_admission = shed_admission_;
    s.shed_queue_full = shed_queue_full_;
    s.evicted_lower_priority = evicted_lower_priority_;
    s.expired_at_admission = expired_at_admission_;
    s.rejected_post_stop = rejected_post_stop_;
    s.queue_depth_hwm = queue_depth_hwm_;
    if (controller_ != nullptr) {
      s.ladder_level = controller_->level();
      s.ladder_transitions = controller_->transitions();
      s.ladder_level_entries = controller_->level_entries();
    }
  }
  s.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  s.degraded_budget_serves =
      degraded_budget_serves_.load(std::memory_order_relaxed);
  s.degraded_pinned_serves =
      degraded_pinned_serves_.load(std::memory_order_relaxed);
  s.worker_exceptions = worker_exceptions_.load(std::memory_order_relaxed);
  s.generation = rcu_.generation();
  if (coalescer_ != nullptr) s.coalescer = coalescer_->stats();
  if (caches_ != nullptr) {
    s.score_cache = caches_->scores.TotalStats();
    s.activation_cache = caches_->activations.TotalStats();
    s.leaf_cache = caches_->leaf_activations.TotalStats();
  }
  s.leaf_tier_hits = leaf_tier_hits_.load(std::memory_order_relaxed);
  if (options_.store != nullptr) {
    const store::StoreStats st = options_.store->stats();
    s.store_attached = true;
    s.store_types_tracked = options_.store->NumTypes();
    s.store_mode_transitions = st.mode_transitions;
    s.store_exploit_serves = st.exploit_serves;
    s.store_drift_demotions = st.drift_demotions;
    s.store_wal_records = st.wal_records;
    s.store_pinned_serves =
        store_pinned_serves_.load(std::memory_order_relaxed);
  }
  return s;
}

void ServingCore::MaybeSyncStore() {
  if (options_.store == nullptr || options_.store_sync_every <= 0) return;
  const uint64_t n = store_ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Amortized durability: one worker pays an fsync (and possibly a
  // snapshot) every store_sync_every requests; Drain()/Stop() cover the
  // tail.
  if (n % static_cast<uint64_t>(options_.store_sync_every) == 0) {
    options_.store->Sync();
  }
}

}  // namespace neo::serve
