#include "src/serve/serving_core.h"

#include <algorithm>
#include <utility>

#include "src/util/status.h"

namespace neo::serve {

ServingCore::ServingCore(core::Neo* neo, ServingOptions options)
    : neo_(neo), options_(std::move(options)), rcu_(neo->net().config()) {
  NEO_CHECK_MSG(!nn::UseReferenceKernels(),
                "serving requires fast kernels (reference path is serial)");
  options_.workers = std::max(1, options_.workers);
  if (options_.shared_caches) {
    caches_ = std::make_unique<core::SharedSearchCaches>(
        options_.shared_score_cap, options_.shared_activation_cap,
        options_.cache_shards, options_.shared_leaf_cap);
  }
  if (options_.coalesce) {
    coalescer_ = std::make_unique<BatchCoalescer>(options_.coalescer);
  }
  if (options_.store != nullptr) {
    // Every serve through the choke point records into the store; Decide()
    // consultation happens in ServeOne before search.
    neo_->SetExperienceStore(options_.store);
  }
  rcu_.Publish(neo_->net());
  searches_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    searches_.push_back(
        std::make_unique<core::PlanSearch>(&neo_->featurizer(), nullptr));
  }
  threads_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ServingCore::~ServingCore() { Stop(); }

std::future<ServeResult> ServingCore::Submit(const query::Query& query,
                                             bool learn) {
  Task task;
  task.query = &query;
  task.learn = learn;
  std::future<ServeResult> future = task.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    NEO_CHECK_MSG(!stopping_, "Submit after Stop");
    ++requests_;
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
  return future;
}

ServeResult ServingCore::ServeSync(const query::Query& query, bool learn) {
  return Submit(query, learn).get();
}

uint64_t ServingCore::PublishWeights() { return rcu_.Publish(neo_->net()); }

float ServingCore::RetrainAndPublish() {
  std::lock_guard<std::mutex> lock(retrain_mu_);
  // Retrain mutates only the primary network, which no worker reads — every
  // in-flight search scores on an RCU standby — so this blocks nothing.
  const float loss = neo_->Retrain();
  rcu_.Publish(neo_->net());
  return loss;
}

void ServingCore::Drain() {
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drain_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }
  // Every observation recorded so far is now in the WAL buffer; make it
  // durable before reporting the core idle.
  if (options_.store != nullptr) options_.store->Sync();
}

void ServingCore::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // Explicit shutdown ordering: (1) wait until queued AND in-flight requests
  // finish — workers only exit on an empty queue, but in-flight serves must
  // have *recorded* before the flush below; (2) flush the store WAL so no
  // accepted request's observation is lost; (3) join.
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drain_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }
  if (options_.store != nullptr) options_.store->Sync();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ServingCore::WorkerLoop(int worker_index) {
  core::PlanSearch& search = *searches_[static_cast<size_t>(worker_index)];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Stopping and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    ServeResult result = ServeOne(search, task);
    task.promise.set_value(std::move(result));
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drain_cv_.notify_all();
    }
  }
}

ServeResult ServingCore::ServeOne(core::PlanSearch& search, const Task& task) {
  ServeResult out;
  out.queue_ms = task.queued.ElapsedMs();

  store::ExperienceStore* store = options_.store;
  if (store != nullptr) {
    store::Decision decision = store->Decide(*task.query);
    if (decision.use_pinned) {
      // Exploit/frozen type: serve the best-known plan, skip search. The
      // serve still flows through Neo's guarded choke point (watchdog,
      // breaker, experience, store recording) with from_search=false.
      out.served_from_store = true;
      out.store_probe = decision.is_probe;
      out.latency_ms = neo_->Serve(*task.query, decision.pinned, task.learn,
                                   /*from_search=*/false);
      out.predicted_cost = static_cast<float>(decision.pinned_latency_ms);
      out.plan_hash = decision.pinned.Hash();
      out.generation = rcu_.generation();
      out.total_ms = task.queued.ElapsedMs();
      store_pinned_serves_.fetch_add(1, std::memory_order_relaxed);
      MaybeSyncStore();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        total_hist_.Record(out.total_ms);
        plan_hist_.Record(out.plan_ms);
      }
      return out;
    }
  }

  const ModelRcu::Ref ref = rcu_.Acquire();
  NEO_CHECK(ref.net != nullptr);
  out.generation = ref.generation;
  // Rebind to this request's snapshot; the generation re-salts every
  // shared-cache key so entries from other snapshots are never served.
  search.Rebind(ref.net.get());
  search.SetSharedCaches(caches_.get(), ref.generation);
  search.SetBatchScorer(coalescer_.get());

  util::Stopwatch plan_watch;
  if (coalescer_ != nullptr) coalescer_->BeginSearch();
  core::SearchResult found = search.FindPlan(*task.query, options_.search);
  if (coalescer_ != nullptr) coalescer_->EndSearch();
  out.plan_ms = plan_watch.ElapsedMs();

  out.latency_ms = neo_->Serve(*task.query, found.plan, task.learn);
  out.predicted_cost = found.predicted_cost;
  out.plan_hash = found.plan.Hash();
  out.total_ms = task.queued.ElapsedMs();
  leaf_tier_hits_.fetch_add(found.leaf_tier_hits, std::memory_order_relaxed);
  out.search = std::move(found);
  MaybeSyncStore();

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    total_hist_.Record(out.total_ms);
    plan_hist_.Record(out.plan_ms);
  }
  return out;
}

ServingStats ServingCore::stats() const {
  ServingStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.total_latency = total_hist_;
    s.plan_latency = plan_hist_;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    s.requests = requests_;
  }
  s.generation = rcu_.generation();
  if (coalescer_ != nullptr) s.coalescer = coalescer_->stats();
  if (caches_ != nullptr) {
    s.score_cache = caches_->scores.TotalStats();
    s.activation_cache = caches_->activations.TotalStats();
    s.leaf_cache = caches_->leaf_activations.TotalStats();
  }
  s.leaf_tier_hits = leaf_tier_hits_.load(std::memory_order_relaxed);
  if (options_.store != nullptr) {
    const store::StoreStats st = options_.store->stats();
    s.store_attached = true;
    s.store_types_tracked = options_.store->NumTypes();
    s.store_mode_transitions = st.mode_transitions;
    s.store_exploit_serves = st.exploit_serves;
    s.store_drift_demotions = st.drift_demotions;
    s.store_wal_records = st.wal_records;
    s.store_pinned_serves =
        store_pinned_serves_.load(std::memory_order_relaxed);
  }
  return s;
}

void ServingCore::MaybeSyncStore() {
  if (options_.store == nullptr || options_.store_sync_every <= 0) return;
  const uint64_t n = store_ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Amortized durability: one worker pays an fsync (and possibly a
  // snapshot) every store_sync_every requests; Drain()/Stop() cover the
  // tail.
  if (n % static_cast<uint64_t>(options_.store_sync_every) == 0) {
    options_.store->Sync();
  }
}

}  // namespace neo::serve
