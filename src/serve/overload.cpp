#include "src/serve/overload.h"

#include <algorithm>

namespace neo::serve {

int DegradationController::Observe(double queue_wait_ms, double deadline_ms,
                                   size_t depth, size_t cap) {
  if (!options_.enabled) return 0;
  double x = cap > 0 ? static_cast<double>(depth) / static_cast<double>(cap) : 0.0;
  if (deadline_ms > 0.0) x = std::max(x, queue_wait_ms / deadline_ms);
  x = std::min(x, options_.max_observation);
  pressure_ += options_.ewma_alpha * (x - pressure_);

  ++dwell_;
  if (dwell_ < options_.min_dwell) return level_;
  int target = level_;
  if (level_ < 3 && pressure_ >= options_.rise[static_cast<size_t>(level_)]) {
    target = level_ + 1;  // One step at a time: dwell re-arms per level.
  } else if (level_ > 0 &&
             pressure_ < options_.fall[static_cast<size_t>(level_ - 1)]) {
    target = level_ - 1;
  }
  if (target != level_) {
    level_ = target;
    dwell_ = 0;
    ++transitions_;
    ++entries_[static_cast<size_t>(target)];
  }
  return level_;
}

}  // namespace neo::serve
