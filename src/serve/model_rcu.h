// RCU-style (read-copy-update) weight snapshots for the serving core.
//
// Problem: a background Retrain mutates the primary ValueNetwork's weights
// in place, so serving searches must never read it mid-step — but stalling
// every in-flight search for the duration of a retrain is exactly the
// latency cliff a serving system cannot afford.
//
// Solution: serving never reads the primary network at all. ModelRcu keeps a
// pool of standby networks; Publish() captures the primary's weights
// (ValueNetwork::CaptureSnapshot), restores them into an idle standby, and
// atomically swaps it in as the current serving net with a fresh monotonic
// generation number. Readers Acquire() a shared_ptr to whatever net is
// current — a wait-free pointer load — and keep scoring on that snapshot for
// the whole request even if a newer generation publishes mid-search. The
// retrain thread therefore never blocks a serve, and a serve never observes
// half-written weights.
//
// Idle-standby reuse: a pool entry is reusable iff nothing outside the pool
// references it (use_count() == 1) and it is not the currently published
// net. A non-current net can only LOSE references (Acquire only hands out
// the current one), so the check cannot race into a restore-under-reader.
// The pool never shrinks: nets stay alive for the ModelRcu's lifetime, so a
// PlanSearch that was rebound to an old net between requests holds a valid
// (if stale) pointer until its next rebind.
//
// Generations vs versions: RestoreSnapshot bumps the standby's own weight
// version, but two different standbys can coincidentally carry equal version
// numbers while holding different weights. The generation — unique across
// publishes — is what shared caches must fold into their keys (see
// core::SharedSearchCaches).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "src/nn/value_network.h"

namespace neo::serve {

class ModelRcu {
 public:
  /// A reader's lease on one published snapshot. Holding the shared_ptr
  /// keeps the standby from being recycled by a later Publish.
  struct Ref {
    std::shared_ptr<nn::ValueNetwork> net;
    uint64_t generation = 0;
  };

  /// `config` must be the primary network's exact architecture (dims filled);
  /// standbys are constructed from it and RestoreSnapshot checks shapes.
  explicit ModelRcu(const nn::ValueNetConfig& config) : config_(config) {}

  /// Wait-free reader acquire of the current snapshot. Ref.net is null only
  /// before the first Publish.
  Ref Acquire() const;

  /// Snapshots `source`'s weights into an idle (or new) standby and makes it
  /// current. Serialized internally; returns the new generation. The caller
  /// must ensure `source` is not being trained during the capture (the
  /// retrain thread publishes after its own Retrain completes, so this holds
  /// by construction in the serving core).
  uint64_t Publish(const nn::ValueNetwork& source);

  uint64_t generation() const { return Acquire().generation; }
  /// Standby networks ever allocated (diagnostic; stabilizes at roughly
  /// 1 + max concurrent in-flight generations).
  size_t pool_size() const;

 private:
  struct Published {
    std::shared_ptr<nn::ValueNetwork> net;
    uint64_t generation = 0;
  };

  nn::ValueNetConfig config_;
  mutable std::mutex publish_mu_;  ///< Serializes Publish; guards pool_.
  /// Swapped via std::atomic_load/store so Acquire never takes publish_mu_.
  std::shared_ptr<const Published> current_;
  std::vector<std::shared_ptr<nn::ValueNetwork>> pool_;
  uint64_t generation_ = 0;  ///< Guarded by publish_mu_.
};

}  // namespace neo::serve
