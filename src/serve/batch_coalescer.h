// Cross-query batch coalescing for concurrent plan searches.
//
// A single search already batches one expansion round's candidates into one
// forest (ValueNetwork::PredictBatch), but serving-shaped workloads run many
// small searches concurrently, each issuing small GEMMs that underutilize
// the kernels. BatchCoalescer implements core::BatchScorer: the first
// concurrent caller of a scoring round becomes the group LEADER and holds a
// short gather window (Options::window_us); other searches that reach their
// own scoring call inside the window JOIN the group. The leader merges every
// member's (embedding, candidate forest, activation-reuse spans) into one
// ValueNetwork::PredictBatchMulti call — one GEMM per layer for the whole
// group — then distributes each member's score span and wakes it.
//
// Bit-transparency: grouping NEVER changes a score. PredictBatchMulti's
// per-row arithmetic is bitwise-identical to each member's solo
// PredictBatch (GEMM rows are position-independent; the per-query layer-0
// suffix projections are rows of one multi-row GEMM), so coalescing is
// purely a throughput optimization — any interleaving of joins, timeouts,
// and group sizes yields the same per-search results.
//
// Liveness: followers wait only on their leader, and the leader's window
// wait is bounded (wait_for), after which the group is closed and scored
// unconditionally — no circular waits, no unbounded blocking. A search that
// finds no open group (none yet, group full, group closed, or a different
// RCU net snapshot) scores directly; solo activity (<= 1 active search)
// bypasses the window entirely so an idle server adds zero latency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/search.h"

namespace neo::serve {

class BatchCoalescer : public core::BatchScorer {
 public:
  struct Options {
    int max_merge = 8;    ///< Max member searches per merged group.
    int window_us = 200;  ///< Leader's max gather window (microseconds).
    /// Scale the gather window to the observed arrival rate: a leader waits
    /// ~2x the EWMA inter-arrival interval (clamped to
    /// [min_window_us, window_us]) instead of the full window_us. Under a
    /// sparse trickle (EWMA > window_us) nothing would join anyway, so the
    /// window collapses to min_window_us. The solo (<=1 active search) fast
    /// path is unaffected — it never opens a window at all.
    bool adaptive_window = true;
    int min_window_us = 10;  ///< Floor for the adaptive gather window.
  };

  struct Stats {
    uint64_t direct_calls = 0;     ///< Scored directly (solo / no open group).
    uint64_t merged_groups = 0;    ///< Groups scored via PredictBatchMulti.
    uint64_t merged_requests = 0;  ///< Member calls inside merged groups.
    uint64_t solo_groups = 0;      ///< Groups whose window closed with 1 member.
    int64_t ewma_interval_us = -1;  ///< Arrival-interval EWMA (-1: no samples).
    int last_window_us = 0;         ///< Most recent leader gather window used.
  };

  explicit BatchCoalescer(Options options) : options_(options) {}

  /// Search-activity bracket: ServeOne calls Begin/EndSearch around FindPlan
  /// so ScoreBatch can skip the gather window when nothing could join.
  void BeginSearch() { active_searches_.fetch_add(1, std::memory_order_relaxed); }
  void EndSearch() { active_searches_.fetch_sub(1, std::memory_order_relaxed); }

  std::vector<float> ScoreBatch(nn::ValueNetwork* net,
                                const nn::Matrix& query_embedding,
                                const nn::PlanBatch& batch,
                                const nn::ActivationReuse* reuse,
                                nn::ValueNetwork::InferenceContext* ctx) override;

  Stats stats() const;

 private:
  /// One member's slot in a group; lives on the member's stack for the
  /// duration of its ScoreBatch call (the group holds raw pointers, valid
  /// because every member stays blocked until its `done` flips).
  struct Pending {
    nn::MultiPredictItem item;
    std::vector<float> scores;
    bool done = false;
  };

  struct Group {
    nn::ValueNetwork* net = nullptr;  ///< Members must share one snapshot.
    std::vector<Pending*> members;
    bool closed = false;
    std::condition_variable cv;  ///< Leader waits for fill; members for done.
  };

  /// Record a scoring-round arrival and fold its inter-arrival interval into
  /// the EWMA. Advisory (relaxed atomics): a torn/stale read only skews the
  /// window heuristic, never correctness.
  void NoteArrival();
  /// Gather window for a new leader, from the arrival-rate EWMA.
  int EffectiveWindowUs() const;

  Options options_;
  std::atomic<int> active_searches_{0};
  std::atomic<int64_t> last_arrival_us_{-1};    ///< steady_clock us of last arrival.
  std::atomic<int64_t> ewma_interval_us_{-1};   ///< EWMA of arrival intervals (us).
  std::atomic<int> last_window_us_{0};          ///< Last leader window actually used.
  std::mutex mu_;  ///< Guards open_ and all Group state.
  std::shared_ptr<Group> open_;
  std::atomic<uint64_t> direct_calls_{0};
  std::atomic<uint64_t> merged_groups_{0};
  std::atomic<uint64_t> merged_requests_{0};
  std::atomic<uint64_t> solo_groups_{0};
};

}  // namespace neo::serve
