#include "src/serve/model_rcu.h"

namespace neo::serve {

ModelRcu::Ref ModelRcu::Acquire() const {
  const std::shared_ptr<const Published> cur =
      std::atomic_load_explicit(&current_, std::memory_order_acquire);
  if (cur == nullptr) return {};
  return {cur->net, cur->generation};
}

uint64_t ModelRcu::Publish(const nn::ValueNetwork& source) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  nn::ValueNetwork::WeightSnapshot snap;
  source.CaptureSnapshot(&snap);

  const std::shared_ptr<const Published> cur = std::atomic_load(&current_);
  std::shared_ptr<nn::ValueNetwork> standby;
  for (const std::shared_ptr<nn::ValueNetwork>& net : pool_) {
    // Reusable: only the pool references it, and it is not the net readers
    // can still Acquire. A non-current net's use_count can only fall (see
    // the header notes), so this check is stable once true.
    if (net.use_count() == 1 && (cur == nullptr || net != cur->net)) {
      standby = net;
      break;
    }
  }
  if (standby == nullptr) {
    standby = std::make_shared<nn::ValueNetwork>(config_);
    pool_.push_back(standby);
  }
  // RestoreSnapshot bumps the standby's weight version and invalidates its
  // packed inference weights; the first inference on it re-syncs lazily.
  standby->RestoreSnapshot(snap);

  const uint64_t gen = ++generation_;
  auto next = std::make_shared<const Published>(Published{standby, gen});
  std::atomic_store_explicit(&current_, std::move(next),
                             std::memory_order_release);
  return gen;
}

size_t ModelRcu::pool_size() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return pool_.size();
}

}  // namespace neo::serve
