// Overload resilience for the serving core: deadline-aware admission control
// over a bounded request queue, and a graceful-degradation ladder driven by
// queue pressure.
//
// ============================ The ladder ===================================
//
//   level 0  full search            (the normal serving path)
//   level 1  reduced search budget  (SearchOptions::max_expansions divided by
//                                    l1_expansion_divisor, speculation capped
//                                    at l1_speculation — still a live search,
//                                    just a cheaper one)
//   level 2  no search              (serve the experience store's best-known
//                                    plan, else the query's bootstrap expert
//                                    plan; falls back to a level-1 search only
//                                    when neither exists)
//   level 3  shed at admission      (Submit returns a kResourceExhausted
//                                    future immediately; nothing is queued)
//
// ======================= The controller signal =============================
//
// The DegradationController is a pure state machine over an observation
// sequence. Each worker pickup contributes one observation (and, at level 3
// only, each shed arrival contributes a depth-only observation — level 3
// admits nothing, so without it the controller would starve of observations
// once the queue drained and could never recover):
//
//   x = max(queue_depth / queue_cap,  queue_wait_ms / deadline_ms)
//
// (the deadline term only when the request carries a deadline; x clamped to
// max_observation so one pathological wait cannot saturate the signal), and
// the controller folds it into an EWMA:
//
//   pressure += ewma_alpha * (x - pressure)
//
// Pressure ~0 means requests are picked up instantly into an empty queue;
// pressure ~1 means the queue is pinned at its cap and/or waits are eating
// the whole deadline budget.
//
// ====================== Hysteresis + determinism ===========================
//
// Transitions move ONE level at a time and only after min_dwell observations
// at the current level; rising uses rise[level] and falling uses
// fall[level-1], with fall[i] < rise[i] opening a hysteresis band so a
// pressure value sitting between the two thresholds never flaps the level.
//
// Determinism contract: the controller is a pure function of its observation
// sequence — replaying the same (wait, deadline, depth, cap) trace from a
// fresh controller reproduces the exact same level sequence, transition
// count, and per-level entry counts (tested). In live serving the
// observation sequence itself depends on scheduling, which is inherent to
// concurrent serving; what the contract buys is that overload behavior is
// unit-testable against recorded traces and identical across reruns of the
// same trace.
//
// Thread model: the controller is not internally synchronized — ServingCore
// calls Observe()/level() under its queue mutex.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace neo::serve {

/// How Submit makes room (or refuses to) when the bounded queue is full.
enum class ShedPolicy {
  /// Reject the arriving request (kResourceExhausted).
  kRejectNewest,
  /// First evict queued requests whose deadline already passed (their
  /// futures fail kDeadlineExceeded — they could never be served in time
  /// anyway); if the queue is still full, fall back to kRejectNewest.
  kEvictExpiredFirst,
};

/// Degradation-ladder tuning. See the file header for the level semantics.
struct LadderOptions {
  bool enabled = true;
  double ewma_alpha = 0.25;
  /// Pressure at or above rise[i] moves level i -> i+1.
  std::array<double, 3> rise = {0.5, 0.75, 0.92};
  /// Pressure below fall[i] moves level i+1 -> i. Keep fall[i] < rise[i].
  std::array<double, 3> fall = {0.3, 0.55, 0.8};
  /// Observations required at a level before the next transition may fire.
  int min_dwell = 4;
  /// Clamp on a single observation's pressure contribution.
  double max_observation = 2.0;
  /// Level-1 budget: full max_expansions / divisor (>= 1), speculation
  /// capped at l1_speculation. An unlimited (<= 0) full budget degrades to
  /// l1_unlimited_expansions.
  int l1_expansion_divisor = 4;
  int l1_speculation = 1;
  int l1_unlimited_expansions = 16;
};

/// Admission control for ServingCore. Disabled by default: with
/// enabled=false, Submit/serving is the literal pre-admission code path
/// (bit-identical — the parity contract, tested).
struct AdmissionOptions {
  bool enabled = false;
  /// Bounded queue capacity (queued, not in-flight). Submissions beyond it
  /// shed by `policy`.
  size_t queue_cap = 256;
  ShedPolicy policy = ShedPolicy::kEvictExpiredFirst;
  /// Deadline applied to requests submitted without one (0 = none). A
  /// request whose deadline expires while queued is dropped at worker
  /// pickup — counted, never executed.
  double default_deadline_ms = 0.0;
  LadderOptions ladder;
};

/// The queue-pressure -> ladder-level state machine (see file header).
class DegradationController {
 public:
  explicit DegradationController(const LadderOptions& options)
      : options_(options) {}

  /// Folds one worker-pickup observation and returns the level after it.
  /// `depth` is the queue depth after the pickup; `deadline_ms` <= 0 means
  /// the request carried no deadline.
  int Observe(double queue_wait_ms, double deadline_ms, size_t depth,
              size_t cap);

  int level() const { return level_; }
  double pressure() const { return pressure_; }
  uint64_t transitions() const { return transitions_; }
  /// Times each level was entered (entries[0] counts recoveries to full
  /// service, not the initial state).
  const std::array<uint64_t, 4>& level_entries() const { return entries_; }

 private:
  LadderOptions options_;
  double pressure_ = 0.0;
  int level_ = 0;
  int dwell_ = 0;  ///< Observations since the last transition.
  uint64_t transitions_ = 0;
  std::array<uint64_t, 4> entries_{};
};

}  // namespace neo::serve
