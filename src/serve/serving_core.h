// Optimizer-as-a-service: the concurrent serving front over Neo.
//
// ============================ Architecture =================================
//
//             Submit(query) ──► [ request queue (deque + cv) ]
//                                       │ pop
//             ┌─────────────────────────┼─────────────────────────┐
//         worker 0                  worker 1        ...       worker N-1
//        (dedicated std::thread, owns one core::PlanSearch)
//             │ 1. ModelRcu::Acquire()      — wait-free weight snapshot
//             │ 2. search.Rebind(snapshot)  — + shared-cache re-salt
//             │ 3. FindPlan()               — scoring may coalesce ──┐
//             │ 4. Neo::Serve()             — guarded execute/learn  │
//             ▼                                                      ▼
//        per-request ServeResult                    BatchCoalescer merges
//        (latency histograms record)                concurrent searches'
//                                                   candidate batches into
//                                                   one PredictBatchMulti
//
// The pieces and why they exist:
//
// 1. Request queue + worker threads. Requests enqueue without blocking and
//    drain through a fixed pool of workers, each owning one PlanSearch (its
//    inference scratch is never shared). Workers are dedicated std::threads
//    rather than util::ThreadPool tasks: the global pool is a fork-join
//    ParallelFor primitive, and the searches still FEED it — each scoring
//    round's GEMMs row-partition across the pool per SearchOptions::threads
//    — so request concurrency and kernel parallelism compose instead of
//    competing for one abstraction.
//
// 2. Cross-query batch coalescing (batch_coalescer.h). Concurrent searches'
//    small candidate batches merge into one multi-query forest per scoring
//    round — one GEMM per layer for the group — with per-score bits
//    IDENTICAL to uncoalesced serving (the determinism contract of
//    PredictBatchMulti / TreeConv::ForwardInferenceMulti).
//
// 3. Shared score/activation caches (core::SharedSearchCaches). The
//    per-search LRUs promote to process-global sharded maps, so repeat
//    queries hit scores cached by ANY worker and common subtrees share conv
//    activations across searches. Keys are salted with (query fp, net
//    version, kernel mode, RCU generation): invalidation is free — entries
//    of dead snapshots simply stop being probed and age out.
//
// 4. RCU weight snapshots (model_rcu.h). Background retraining mutates only
//    Neo's primary network; PublishWeights()/RetrainAndPublish() snapshot it
//    into a standby and atomically swap the serving pointer. In-flight
//    searches finish on the snapshot they acquired; retraining NEVER stalls
//    serving and serving never reads half-written weights.
//
// Determinism: a single-client (workers=1, coalescing moot) serving loop is
// bit-identical to calling FindPlan + ServeAndMaybeLearn inline on a twin
// Neo at the same published weights; multi-client runs produce the same
// per-request scores/plans whenever the cache/coalescing state they observe
// is value-equal (both caches only ever store bitwise-recomputable values).
//
// Ordering: guarded execution (breaker/watchdog/experience) is serialized
// inside Neo::Serve; the order concurrent requests reach it is scheduling-
// dependent, which is inherent to concurrent serving, not an artifact.
//
// ======================= Overload resilience ===============================
//
// ServingOptions::admission (see overload.h) arms three layers; with it
// disabled (the default) every one of them is bypassed and serving is the
// literal pre-admission code path (bit-identical, tested).
//
// 5. Deadline-aware admission control. Submit takes a per-request deadline
//    and priority (SubmitOptions); the queue is bounded at
//    admission.queue_cap. A full queue sheds by policy — kRejectNewest
//    rejects the arrival, kEvictExpiredFirst first evicts queued requests
//    whose deadline already passed (their futures fail kDeadlineExceeded)
//    and only then rejects; an arrival with strictly higher priority than
//    the lowest-priority queued request evicts that victim instead of being
//    rejected. Every shed/evicted/rejected submission completes its future
//    immediately with a non-ok util::Status (kResourceExhausted /
//    kDeadlineExceeded / kFailedPrecondition after Stop) — no future is
//    EVER abandoned, under any overload or shutdown sequence. Workers drop
//    queued requests whose deadline expired while waiting (counted as
//    expired_in_queue, never executed): an admitted-and-served request
//    therefore has queue_ms <= its deadline STRUCTURALLY, which is the
//    overload acceptance bound micro_serve verifies.
//
// 6. Graceful-degradation ladder (overload.h). A queue-pressure controller
//    (EWMA of queue depth / cap and queue wait / deadline headroom, folded
//    at every worker pickup — and at every shed arrival while at level 3,
//    which is what lets an idle system recover — under the queue mutex)
//    walks four levels with
//    per-level hysteresis bands and a min-dwell transition rate limit:
//      0 full search -> 1 reduced search budget (max_expansions /
//      l1_expansion_divisor, speculation capped) -> 2 no search (the
//      store's best-known plan, else the query's bootstrap expert plan) ->
//      3 shed at admission (kResourceExhausted).
//    Degraded serves still flow through Neo's guarded choke point
//    (from_search=false at level 2) and complete with ok status,
//    ServeResult::degraded=true, and the deciding level in
//    ServeResult::ladder_level. The controller is a pure function of its
//    observation trace — identical traces replay identical level sequences
//    (the determinism contract; see overload.h). Transitions and per-level
//    entries are counted in ServingStats. Follow-on: the background
//    superoptimization daemon (ROADMAP) must gate its re-search work on
//    ladder level 0 — spending idle-cycle budget while the ladder is
//    degrading live traffic would be self-defeating.
//
// 7. Worker crash containment. The serve body runs under a catch-all: a
//    throwing search/execution fails only that request's future
//    (kInternal + worker_exceptions counter) and the worker keeps serving.
//    Paired with util::FaultInjector's kServeException site (a "poisoned
//    request") and kServeStall site (slow-serve stalls) for chaos tests;
//    ServingOptions::fault_injector arms both.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/neo.h"
#include "src/serve/batch_coalescer.h"
#include "src/serve/model_rcu.h"
#include "src/serve/overload.h"
#include "src/store/experience_store.h"
#include "src/util/fault_injector.h"
#include "src/util/latency_histogram.h"
#include "src/util/sharded_lru.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"

namespace neo::serve {

struct ServingOptions {
  int workers = 2;  ///< Request worker threads (clamped to >= 1).
  bool coalesce = true;
  BatchCoalescer::Options coalescer;
  bool shared_caches = true;
  size_t shared_score_cap = 1 << 20;        ///< Entries, split across shards.
  size_t shared_activation_cap = 128 * 1024;
  /// Capacity of the cross-query leaf/low-order activation tier (entries).
  /// 0 defaults to shared_activation_cap. See SharedSearchCaches.
  size_t shared_leaf_cap = 0;
  int cache_shards = 16;
  core::SearchOptions search;
  /// Durable per-query-type experience store (see store/experience_store.h).
  /// Not owned; may be null (store-less serving is the literal unchanged
  /// path). The constructor attaches it to Neo's serve choke point; workers
  /// consult ExperienceStore::Decide before searching — an exploit/frozen
  /// type serves its pinned best plan and skips search entirely — and the
  /// WAL is fsynced every `store_sync_every` requests, on Drain(), and
  /// before workers join in Stop().
  store::ExperienceStore* store = nullptr;
  int store_sync_every = 64;
  /// Deadline-aware admission control + degradation ladder (overload.h).
  /// Disabled by default: serving is then the literal pre-admission path.
  AdmissionOptions admission;
  /// Arms the serving-side chaos sites (kServeStall / kServeException) for
  /// overload tests and the bench. Not owned; may be null (no injection).
  util::FaultInjector* fault_injector = nullptr;
};

/// Per-request admission parameters for Submit.
struct SubmitOptions {
  /// Wall-clock budget from Submit to worker pickup (0: none, or the
  /// admission default). A request past its deadline is dropped — at
  /// admission-time eviction or at worker pickup — with kDeadlineExceeded.
  double deadline_ms = 0.0;
  /// Shed order under a full queue: an arrival with strictly higher
  /// priority evicts the lowest-priority queued request instead of being
  /// rejected. Ties favor what is already queued.
  int priority = 0;
};

/// Everything one request observed, returned through the Submit future.
struct ServeResult {
  double latency_ms = 0.0;     ///< Executed (guarded) plan latency.
  float predicted_cost = 0.0f;
  uint64_t plan_hash = 0;
  double queue_ms = 0.0;       ///< Submit -> worker pickup.
  double plan_ms = 0.0;        ///< FindPlan wall time.
  double total_ms = 0.0;       ///< Submit -> serve complete.
  uint64_t generation = 0;     ///< RCU weight generation served under.
  /// True: the experience store pinned this serve (exploit/frozen mode) and
  /// no search ran; predicted_cost is the store's best-known latency.
  bool served_from_store = false;
  bool store_probe = false;    ///< This pinned serve was a drift probe.
  /// Ok: the request executed (possibly degraded). kResourceExhausted: shed
  /// at admission (ladder level 3 or full queue). kDeadlineExceeded: the
  /// deadline passed while queued — dropped, never executed.
  /// kFailedPrecondition: submitted after Stop. kInternal: the serve body
  /// threw (the worker survived). Non-ok results carry queue_ms/ladder_level
  /// best-effort and zeros elsewhere.
  util::Status status;
  int ladder_level = 0;  ///< Ladder level this request was decided at.
  bool degraded = false; ///< Served below full search (level 1 or 2).
  core::SearchResult search;
};

struct ServingStats {
  util::LatencyHistogram total_latency;  ///< Per-request total_ms.
  util::LatencyHistogram plan_latency;   ///< Per-request plan_ms.
  uint64_t requests = 0;
  uint64_t generation = 0;
  BatchCoalescer::Stats coalescer;
  util::ShardedLruStats score_cache;
  util::ShardedLruStats activation_cache;
  util::ShardedLruStats leaf_cache;   ///< Cross-query leaf activation tier.
  uint64_t leaf_tier_hits = 0;        ///< Rows served from the leaf tier.
  // Experience-store counters (zero when no store is attached), so mode
  // behavior is observable rather than inferred.
  bool store_attached = false;
  uint64_t store_types_tracked = 0;
  uint64_t store_mode_transitions = 0;
  uint64_t store_exploit_serves = 0;
  uint64_t store_drift_demotions = 0;
  uint64_t store_pinned_serves = 0;   ///< Serves this core answered pinned.
  uint64_t store_wal_records = 0;
  // Overload / admission counters. `requests` above counts every Submit;
  // the disjoint outcomes below account for each exactly once:
  //   requests == admitted + shed_admission + shed_queue_full
  //             + rejected_post_stop
  //   admitted == served (total_latency.count()) + expired_at_admission
  //             + expired_in_queue + evicted_lower_priority
  //             + worker_exceptions
  uint64_t admitted = 0;
  uint64_t shed_admission = 0;         ///< Shed at ladder level 3.
  uint64_t shed_queue_full = 0;        ///< Rejected: queue at cap.
  uint64_t evicted_lower_priority = 0; ///< Evicted for a higher-priority arrival.
  uint64_t expired_at_admission = 0;   ///< Past-deadline queued, evicted by policy.
  uint64_t expired_in_queue = 0;       ///< Dropped at pickup: deadline passed.
  uint64_t rejected_post_stop = 0;     ///< Submit after Stop.
  uint64_t degraded_budget_serves = 0; ///< Level-1 reduced-budget searches.
  uint64_t degraded_pinned_serves = 0; ///< Level-2 no-search serves.
  uint64_t worker_exceptions = 0;      ///< Serve bodies that threw (contained).
  size_t queue_depth_hwm = 0;          ///< Queue depth high-water mark.
  int ladder_level = 0;                ///< Current ladder level.
  uint64_t ladder_transitions = 0;
  std::array<uint64_t, 4> ladder_level_entries{};
  util::LatencyHistogram queue_wait;   ///< Submit -> pickup, every pickup.
};

class ServingCore {
 public:
  /// `neo` must be bootstrapped (baselines/fallbacks recorded) before
  /// serving starts and must outlive this object. The constructor publishes
  /// the primary network's current weights as generation 1 and starts the
  /// workers. Requires fast kernels (the reference-kernel path mutates
  /// shared layer state and is single-thread only).
  ServingCore(core::Neo* neo, ServingOptions options);
  ~ServingCore();

  ServingCore(const ServingCore&) = delete;
  ServingCore& operator=(const ServingCore&) = delete;

  /// Enqueues one request. `query` must stay alive until the future
  /// resolves. `learn` feeds the observation back into experience (under
  /// Neo's internal synchronization). The future ALWAYS resolves — served,
  /// degraded, shed, expired, or failed (see ServeResult::status); after
  /// Stop it resolves immediately with kFailedPrecondition.
  std::future<ServeResult> Submit(const query::Query& query, bool learn) {
    return Submit(query, learn, SubmitOptions{});
  }
  std::future<ServeResult> Submit(const query::Query& query, bool learn,
                                  const SubmitOptions& submit);

  /// Submit + wait.
  ServeResult ServeSync(const query::Query& query, bool learn);

  /// Snapshots the primary network's weights into the RCU as a new serving
  /// generation (e.g. after an external Retrain / weight load).
  uint64_t PublishWeights();

  /// Retrains Neo's primary network on current experience, then publishes
  /// the result. Safe to call from a background thread while requests are
  /// being served — serving keeps scoring on the previous generation until
  /// the publish lands. Returns the final minibatch loss.
  float RetrainAndPublish();

  /// Blocks until the queue is empty and no request is in flight, then
  /// flushes the experience-store WAL (every recorded observation is
  /// durable once Drain returns).
  void Drain();

  /// Graceful shutdown: stops intake, waits for queued + in-flight requests
  /// to finish, flushes the experience-store WAL, then joins the workers.
  /// Called by the destructor; idempotent.
  void Stop();

  ServingStats stats() const;

  core::Neo& neo() { return *neo_; }
  const ServingOptions& options() const { return options_; }

 private:
  struct Task {
    const query::Query* query = nullptr;
    bool learn = false;
    std::promise<ServeResult> promise;
    util::Stopwatch queued;  ///< Starts at Submit.
    double deadline_ms = 0.0;  ///< 0: no deadline.
    int priority = 0;
    uint64_t seq = 0;          ///< Submission sequence number (chaos keys).
    double picked_wait_ms = 0.0;  ///< Queue wait measured at worker pickup.
  };

  void WorkerLoop(int worker_index);
  ServeResult ServeOne(core::PlanSearch& search, const Task& task, int level);
  /// Completes a task's future with a non-ok status (shed/expired/failed).
  static void FailTask(Task&& task, util::Status status, int level);
  /// Pays the periodic store WAL fsync every store_sync_every requests.
  void MaybeSyncStore();

  core::Neo* neo_;
  ServingOptions options_;
  ModelRcu rcu_;
  std::unique_ptr<core::SharedSearchCaches> caches_;  ///< Null if disabled.
  std::unique_ptr<BatchCoalescer> coalescer_;         ///< Null if disabled.

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drain_cv_;
  std::deque<Task> queue_;
  int in_flight_ = 0;
  bool stopping_ = false;
  uint64_t requests_ = 0;
  // Admission accounting + ladder controller, all guarded by queue_mu_.
  uint64_t admitted_ = 0;
  uint64_t shed_admission_ = 0;
  uint64_t shed_queue_full_ = 0;
  uint64_t evicted_lower_priority_ = 0;
  uint64_t expired_at_admission_ = 0;
  uint64_t rejected_post_stop_ = 0;
  size_t queue_depth_hwm_ = 0;
  std::unique_ptr<DegradationController> controller_;  ///< Null if disabled.
  /// Level-1 search budget, derived from options_.search in the ctor.
  core::SearchOptions degraded_search_;

  std::mutex retrain_mu_;  ///< Serializes RetrainAndPublish callers.

  mutable std::mutex stats_mu_;
  util::LatencyHistogram total_hist_;
  util::LatencyHistogram plan_hist_;
  util::LatencyHistogram queue_wait_hist_;
  std::atomic<uint64_t> expired_in_queue_{0};
  std::atomic<uint64_t> degraded_budget_serves_{0};
  std::atomic<uint64_t> degraded_pinned_serves_{0};
  std::atomic<uint64_t> worker_exceptions_{0};
  std::atomic<uint64_t> leaf_tier_hits_{0};
  std::atomic<uint64_t> store_pinned_serves_{0};
  /// Requests since start, for the store_sync_every cadence.
  std::atomic<uint64_t> store_ops_{0};

  std::vector<std::unique_ptr<core::PlanSearch>> searches_;  ///< One per worker.
  std::vector<std::thread> threads_;
};

}  // namespace neo::serve
