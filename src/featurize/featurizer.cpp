#include "src/featurize/featurizer.h"

#include <cmath>
#include <functional>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace neo::featurize {

const char* PredicateEncodingName(PredicateEncoding e) {
  switch (e) {
    case PredicateEncoding::k1Hot: return "1-Hot";
    case PredicateEncoding::kHistogram: return "Histogram";
    case PredicateEncoding::kRVector: return "R-Vector";
  }
  return "?";
}

Featurizer::Featurizer(const catalog::Schema& schema, const storage::Database& db,
                       FeaturizerConfig config,
                       optim::CardinalityEstimator* hist_estimator,
                       const embedding::RowEmbedding* row_embedding,
                       engine::CardinalityOracle* oracle)
    : schema_(schema),
      db_(db),
      config_(config),
      hist_estimator_(hist_estimator),
      row_embedding_(row_embedding),
      oracle_(oracle) {
  const int t = schema.num_tables();
  adjacency_dim_ = t * (t - 1) / 2;
  switch (config_.encoding) {
    case PredicateEncoding::k1Hot:
      per_column_dim_ = 1;
      break;
    case PredicateEncoding::kHistogram:
      NEO_CHECK_MSG(hist_estimator_ != nullptr, "Histogram encoding needs estimator");
      per_column_dim_ = 1;
      break;
    case PredicateEncoding::kRVector:
      NEO_CHECK_MSG(row_embedding_ != nullptr, "R-Vector encoding needs embedding");
      // op one-hot + matched count + embedding + frequency (§5.1).
      per_column_dim_ = query::kNumPredOps + 1 + row_embedding_->dim() + 1;
      break;
  }
  query_dim_ = adjacency_dim_ + schema.num_columns() * per_column_dim_;
  plan_dim_ = plan::kNumJoinOps + 2 * t +
              (config_.card_channel == CardChannel::kNone ? 0 : 1);
  if (config_.card_channel == CardChannel::kEstimated) {
    NEO_CHECK_MSG(hist_estimator_ != nullptr, "estimated card channel needs estimator");
  }
  if (config_.card_channel == CardChannel::kTrue) {
    NEO_CHECK_MSG(oracle_ != nullptr, "true card channel needs oracle");
  }
}

nn::Matrix Featurizer::EncodeQuery(const query::Query& query) const {
  nn::Matrix out(1, query_dim_);
  float* v = out.Row(0);

  // Join-graph adjacency, upper triangle (paper Figure 3).
  const int t = schema_.num_tables();
  for (const query::JoinEdge& j : query.joins) {
    int a = j.left_table, b = j.right_table;
    if (a > b) std::swap(a, b);
    // Index of (a, b), a < b, in row-major upper-triangular order.
    const int idx = a * t - a * (a + 1) / 2 + (b - a - 1);
    v[idx] = 1.0f;
  }

  // Column-predicate vector.
  float* pred_base = v + adjacency_dim_;
  for (const query::Predicate& p : query.predicates) {
    const catalog::ColumnInfo& col =
        schema_.table(p.table_id).columns[static_cast<size_t>(p.column_idx)];
    float* slot = pred_base + col.global_id * per_column_dim_;
    switch (config_.encoding) {
      case PredicateEncoding::k1Hot:
        slot[0] = 1.0f;
        break;
      case PredicateEncoding::kHistogram: {
        const double sel =
            std::max(1e-6, hist_estimator_->EstimatePredicate(query, p));
        // Multiplicative accumulation across predicates on the same column
        // (e.g. year range); slots start at 0 => initialize to sel.
        slot[0] = slot[0] == 0.0f ? static_cast<float>(sel)
                                  : slot[0] * static_cast<float>(sel);
        break;
      }
      case PredicateEncoding::kRVector: {
        // Op one-hot (max-combined if several predicates share the column).
        slot[static_cast<int>(p.op)] = 1.0f;
        float* rest = slot + query::kNumPredOps;
        const storage::Column& column =
            db_.table(schema_.table(p.table_id).name)
                .column(static_cast<size_t>(p.column_idx));
        std::vector<int64_t> matched;
        if (p.op == query::PredOp::kContains) {
          matched = column.CodesContaining(p.value_str);
        } else {
          matched = {p.value_code};
        }
        rest[0] = std::log1p(static_cast<float>(matched.size()));
        std::vector<float> mean(static_cast<size_t>(row_embedding_->dim()));
        row_embedding_->MeanVectorFor(col.global_id, matched, mean.data());
        for (int d = 0; d < row_embedding_->dim(); ++d) {
          // Accumulate (predicates on the same column average below).
          rest[1 + d] += mean[static_cast<size_t>(d)];
        }
        int64_t count = 0;
        for (int64_t code : matched) count += row_embedding_->CountFor(col.global_id, code);
        rest[1 + row_embedding_->dim()] =
            std::log1p(static_cast<float>(count)) / 10.0f;
        break;
      }
    }
  }
  return out;
}

double Featurizer::CardFeature(const query::Query& query, uint64_t rel_mask) const {
  double card = 1.0;
  if (config_.card_channel == CardChannel::kEstimated) {
    card = hist_estimator_->EstimateSubset(query, rel_mask);
    if (card_corrections_ != nullptr) {
      // Observed-vs-estimated feedback from the experience store; 1.0 when
      // the store has nothing for this (type, subset), so the no-feedback
      // encoding is bit-identical to the correction-free path.
      card *= card_corrections_->CorrectionFor(query, rel_mask);
    }
  } else if (config_.card_channel == CardChannel::kTrue) {
    card = oracle_->Cardinality(query, rel_mask);
  }
  if (config_.card_error_orders > 0.0) {
    const uint64_t h = util::HashCombine(
        util::HashCombine(config_.card_error_seed, static_cast<uint64_t>(query.id)),
        rel_mask);
    const double sign = (h & 1) ? 1.0 : -1.0;
    card *= std::pow(10.0, sign * config_.card_error_orders);
  }
  // log10 compression into a roughly unit range.
  return std::log10(1.0 + std::max(0.0, card)) / 8.0;
}

void Featurizer::EncodeNode(const query::Query& query, const plan::PlanNode& node,
                            float* out) const {
  const int t = schema_.num_tables();
  if (node.is_join) {
    out[static_cast<int>(node.join_op)] = 1.0f;
  }
  // Scan bits: union over covered relations; per leaf semantics of §3.2.
  std::function<void(const plan::PlanNode&)> mark = [&](const plan::PlanNode& n) {
    if (n.is_join) {
      mark(*n.left);
      mark(*n.right);
      return;
    }
    float* bits = out + plan::kNumJoinOps + 2 * n.table_id;
    switch (n.scan_op) {
      case plan::ScanOp::kTable: bits[0] = 1.0f; break;
      case plan::ScanOp::kIndex: bits[1] = 1.0f; break;
      case plan::ScanOp::kUnspecified:
        bits[0] = 1.0f;
        bits[1] = 1.0f;
        break;
    }
  };
  mark(node);
  if (config_.card_channel != CardChannel::kNone) {
    out[plan::kNumJoinOps + 2 * t] = static_cast<float>(CardFeature(query, node.rel_mask));
  }
}

void Featurizer::AppendPlan(const query::Query& query, const plan::PartialPlan& plan,
                            int base, nn::TreeStructure* tree,
                            nn::Matrix* features, std::vector<uint64_t>* fps) const {
  // Pre-order flattening over all roots of the forest, at offset `base`.
  int next = base;
  std::function<int(const plan::PlanNode&)> visit = [&](const plan::PlanNode& node) {
    const int idx = next++;
    EncodeNode(query, node, features->Row(idx));
    if (fps != nullptr) (*fps)[static_cast<size_t>(idx)] = node.subtree_fp;
    if (node.is_join) {
      tree->left[static_cast<size_t>(idx)] = visit(*node.left);
      tree->right[static_cast<size_t>(idx)] = visit(*node.right);
    }
    return idx;
  };
  for (const auto& r : plan.roots) visit(*r);
}

void Featurizer::EncodePlan(const query::Query& query, const plan::PartialPlan& plan,
                            nn::TreeStructure* tree, nn::Matrix* features) const {
  size_t total_nodes = 0;
  for (const auto& r : plan.roots) total_nodes += r->NumNodes();
  tree->left.assign(total_nodes, -1);
  tree->right.assign(total_nodes, -1);
  *features = nn::Matrix(static_cast<int>(total_nodes), plan_dim_);
  AppendPlan(query, plan, 0, tree, features);
}

void Featurizer::EncodePlanBatch(const query::Query& query,
                                 const std::vector<const plan::PartialPlan*>& plans,
                                 nn::PlanBatch* batch) const {
  batch->tree_offsets.clear();
  batch->tree_offsets.reserve(plans.size() + 1);
  batch->tree_offsets.push_back(0);
  size_t total_nodes = 0;
  for (const plan::PartialPlan* p : plans) {
    for (const auto& r : p->roots) total_nodes += r->NumNodes();
    batch->tree_offsets.push_back(static_cast<int>(total_nodes));
  }
  batch->forest.left.assign(total_nodes, -1);
  batch->forest.right.assign(total_nodes, -1);
  batch->node_fp.assign(total_nodes, 0);
  // Reshape + Zero reuses the caller's backing store across batches (AppendPlan
  // writes only the nonzero feature slots, so rows must start zeroed).
  batch->node_features.Reshape(static_cast<int>(total_nodes), plan_dim_);
  batch->node_features.Zero();
  for (size_t i = 0; i < plans.size(); ++i) {
    AppendPlan(query, *plans[i], batch->tree_offsets[i], &batch->forest,
               &batch->node_features, &batch->node_fp);
  }
}

nn::PlanSample Featurizer::Encode(const query::Query& query,
                                  const plan::PartialPlan& plan) const {
  nn::PlanSample sample;
  sample.query_vec = EncodeQuery(query);
  EncodePlan(query, plan, &sample.tree, &sample.node_features);
  return sample;
}

}  // namespace neo::featurize
