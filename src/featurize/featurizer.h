// Query and plan featurization (paper §3.2 + §5.1).
//
// Query-level encoding = upper-triangular join-graph adjacency over all
// schema tables + a column-predicate vector in one of three variants:
//   k1Hot      - 1 if any predicate touches the column;
//   kHistogram - estimated selectivity of the column's predicates;
//   kRVector   - per column: [op one-hot | matched-value count | row-vector
//                embedding | value frequency], per the §5.1 construction.
//
// Plan-level encoding = one vector per tree node: |J| join-operator bits +
// 2|R| (table-scan, index-scan) bits per schema table. Unspecified scans set
// both bits; internal nodes take the union of their children (§3.2,
// Figure 4). An optional extra channel carries a (possibly error-injected)
// cardinality estimate per node — the Fig. 14 robustness experiment.
#pragma once

#include <memory>

#include "src/embedding/row_embedding.h"
#include "src/engine/cardinality_oracle.h"
#include "src/nn/value_network.h"
#include "src/optim/card_estimator.h"
#include "src/plan/plan.h"

namespace neo::featurize {

enum class PredicateEncoding { k1Hot, kHistogram, kRVector };
const char* PredicateEncodingName(PredicateEncoding e);

enum class CardChannel { kNone, kEstimated, kTrue };

/// Feedback interface for observed-vs-estimated cardinality corrections
/// (implemented by store::ExperienceStore). When attached, the kEstimated
/// cardinality channel multiplies the histogram estimate for (query type,
/// relation subset) by the learned correction factor. `epoch()` must advance
/// whenever any correction changes materially — it is folded into the plan
/// search's cache validity tuple so stale encodings become unreachable, the
/// same discipline as network version / kernel arm.
class CardCorrectionSource {
 public:
  virtual ~CardCorrectionSource() = default;
  /// Multiplicative correction for the estimator's output on this subset of
  /// `query` (1.0 = no information).
  virtual double CorrectionFor(const query::Query& query,
                               uint64_t rel_mask) const = 0;
  /// Monotonic version of the correction state.
  virtual uint64_t epoch() const = 0;
};

struct FeaturizerConfig {
  PredicateEncoding encoding = PredicateEncoding::k1Hot;
  CardChannel card_channel = CardChannel::kNone;
  /// Orders of magnitude of error injected into the cardinality channel at
  /// encoding time (Fig. 14); sign is deterministic per (query, subset).
  double card_error_orders = 0.0;
  uint64_t card_error_seed = 0xCA4DULL;
};

class Featurizer {
 public:
  /// `hist_estimator` is required for kHistogram (and kEstimated channel);
  /// `row_embedding` is required for kRVector; `oracle` for kTrue channel.
  Featurizer(const catalog::Schema& schema, const storage::Database& db,
             FeaturizerConfig config,
             optim::CardinalityEstimator* hist_estimator = nullptr,
             const embedding::RowEmbedding* row_embedding = nullptr,
             engine::CardinalityOracle* oracle = nullptr);

  int query_dim() const { return query_dim_; }
  int plan_dim() const { return plan_dim_; }
  const FeaturizerConfig& config() const { return config_; }
  const catalog::Schema& schema() const { return schema_; }
  optim::CardinalityEstimator* hist_estimator() const {
    return hist_estimator_;
  }

  /// Attaches (or detaches, nullptr) a correction feedback source for the
  /// kEstimated cardinality channel. Not owned. With no source attached —
  /// or a source with no data — encodings are bit-identical to before.
  void SetCardCorrections(const CardCorrectionSource* source) {
    card_corrections_ = source;
  }
  /// Version of the attached correction state, folded into search cache
  /// validity; 0 when no source is attached or the channel is off.
  uint64_t encoding_epoch() const {
    return (card_corrections_ != nullptr &&
            config_.card_channel == CardChannel::kEstimated)
               ? card_corrections_->epoch()
               : 0;
  }

  /// Query-level encoding (1 x query_dim).
  nn::Matrix EncodeQuery(const query::Query& query) const;

  /// Plan-level encoding: flattened forest + per-node features.
  void EncodePlan(const query::Query& query, const plan::PartialPlan& plan,
                  nn::TreeStructure* tree, nn::Matrix* features) const;

  /// Encodes several plans of one query into a single packed forest (child
  /// indices offset per plan, features stacked into one matrix) for
  /// ValueNetwork::PredictBatch. All plans append into shared buffers sized
  /// once up front. Also emits batch->node_fp — each packed row's subtree
  /// fingerprint — so the caller can decide which node rows are resident in
  /// its activation cache and which must be computed.
  void EncodePlanBatch(const query::Query& query,
                       const std::vector<const plan::PartialPlan*>& plans,
                       nn::PlanBatch* batch) const;

  /// Both encodings bundled as a network sample.
  nn::PlanSample Encode(const query::Query& query, const plan::PartialPlan& plan) const;

 private:
  void EncodeNode(const query::Query& query, const plan::PlanNode& node,
                  float* out) const;
  /// Appends one plan's trees at node offset `base` into shared buffers.
  /// `fps`, when non-null, receives each row's PlanNode::subtree_fp.
  void AppendPlan(const query::Query& query, const plan::PartialPlan& plan,
                  int base, nn::TreeStructure* tree, nn::Matrix* features,
                  std::vector<uint64_t>* fps = nullptr) const;
  double CardFeature(const query::Query& query, uint64_t rel_mask) const;

  const catalog::Schema& schema_;
  const storage::Database& db_;
  FeaturizerConfig config_;
  optim::CardinalityEstimator* hist_estimator_;
  const embedding::RowEmbedding* row_embedding_;
  engine::CardinalityOracle* oracle_;
  const CardCorrectionSource* card_corrections_ = nullptr;
  int query_dim_ = 0;
  int plan_dim_ = 0;
  int adjacency_dim_ = 0;
  int per_column_dim_ = 0;
};

}  // namespace neo::featurize
