// Log-bucketed latency histogram for the serving loop and micro_serve.
//
// Buckets grow geometrically (10^(1/32) per bucket, ~7.46% width), covering
// 1e-3 ms .. 1e5 ms in 256 buckets plus an underflow and an overflow bucket.
// Rank extraction is exact over the bucket counts: Percentile(p) walks the
// cumulative counts to the bucket holding the rank-ceil(p/100 * count) sample
// and returns that bucket's upper edge clamped into [min, max] — so the
// reported quantile is within one bucket width (<= 7.5%) of the true sample
// value, and p0/p100 are the exact observed min/max. Count, sum, min, and max
// are tracked exactly.
//
// Thread model: Record() is not synchronized — each thread owns its own
// histogram and the aggregator combines them with Merge() (bucket counts and
// the exact aggregates are all order-independent, so a merged histogram
// equals one built from the concatenated samples).
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace neo::util {

class LatencyHistogram {
 public:
  static constexpr int kBucketsPerDecade = 32;
  static constexpr int kDecades = 8;
  static constexpr double kMinTracked = 1e-3;  ///< ms; below -> underflow.
  /// Underflow + log range + overflow.
  static constexpr int kNumBuckets = kDecades * kBucketsPerDecade + 2;

  void Record(double ms) {
    ++buckets_[static_cast<size_t>(BucketIndex(ms))];
    ++count_;
    sum_ += ms;
    min_ = std::min(min_, ms);
    max_ = std::max(max_, ms);
  }

  /// Adds another histogram's samples into this one.
  void Merge(const LatencyHistogram& other) {
    for (int i = 0; i < kNumBuckets; ++i) {
      buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  /// Value at percentile p (0..100); 0 when empty. See the accuracy contract
  /// in the file header.
  double Percentile(double p) const {
    if (count_ == 0) return 0.0;
    const double clamped = std::min(100.0, std::max(0.0, p));
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(count_)));
    if (rank < 1) rank = 1;
    uint64_t cum = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      cum += buckets_[static_cast<size_t>(i)];
      if (cum >= rank) {
        return std::min(max_, std::max(min_, BucketUpperEdge(i)));
      }
    }
    return max_;
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Bucket of a value: 0 = underflow, kNumBuckets-1 = overflow.
  static int BucketIndex(double ms) {
    if (!(ms > kMinTracked)) return 0;  // Also catches NaN -> underflow.
    const int idx = 1 + static_cast<int>(std::floor(
                            std::log10(ms / kMinTracked) *
                            static_cast<double>(kBucketsPerDecade)));
    return std::min(idx, kNumBuckets - 1);
  }

  /// Upper edge of a bucket (inclusive side used by Percentile); +inf for the
  /// overflow bucket (Percentile clamps it to the exact max).
  static double BucketUpperEdge(int bucket) {
    if (bucket <= 0) return kMinTracked;
    if (bucket >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
    return kMinTracked *
           std::pow(10.0, static_cast<double>(bucket) /
                              static_cast<double>(kBucketsPerDecade));
  }

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace neo::util
