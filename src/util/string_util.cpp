#include "src/util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace neo::util {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::string ToLower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

}  // namespace neo::util
