#include "src/util/thread_pool.h"

#include <algorithm>

namespace neo::util {

ThreadPool::ThreadPool(int workers) {
  workers = std::max(0, workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(static_cast<int>(std::thread::hardware_concurrency()) - 1);
  return pool;
}

void ThreadPool::Participate(Job& job, size_t home) {
  const size_t n_shards = job.num_shards;
  size_t target = home < n_shards ? home : 0;
  for (;;) {
    Shard& shard = job.shards[target];
    const int64_t begin = shard.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (begin < shard.end) {
      const int64_t end = std::min(begin + job.grain, shard.end);
      (*job.fn)(begin, end);
      if (job.remaining.fetch_sub(end - begin, std::memory_order_acq_rel) ==
          end - begin) {
        // Last chunk done: wake a caller blocked in ParallelFor. The lock
        // pairs with the waiter's predicate check so the wake cannot be lost.
        std::lock_guard<std::mutex> lock(job.done_mu);
        job.done_cv.notify_all();
      }
      continue;
    }
    // Own shard drained: steal from the shard with the most work left.
    size_t best = n_shards;
    int64_t best_left = 0;
    for (size_t i = 0; i < n_shards; ++i) {
      const int64_t left =
          job.shards[i].end - job.shards[i].next.load(std::memory_order_relaxed);
      if (left > best_left) {
        best_left = left;
        best = i;
      }
    }
    if (best == n_shards) return;  // Every shard fully claimed.
    target = best;
  }
}

// True while some shard still has unclaimed indices. Distinct from
// `remaining` (claimed-but-running chunks): workers only join jobs they can
// actually claim work from, so drained jobs never spin them awake.
bool ThreadPool::JobHasUnclaimed(const Job& job) {
  for (size_t i = 0; i < job.num_shards; ++i) {
    const Shard& s = job.shards[i];
    if (s.next.load(std::memory_order_relaxed) < s.end) return true;
  }
  return false;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    size_t home = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        if (stop_) return true;
        for (const auto& j : active_) {
          if (j->participants.load(std::memory_order_relaxed) < j->max_participants &&
              JobHasUnclaimed(*j)) {
            return true;
          }
        }
        return false;
      });
      if (stop_) return;
      for (const auto& j : active_) {
        const int prev = j->participants.load(std::memory_order_relaxed);
        if (prev < j->max_participants && JobHasUnclaimed(*j)) {
          j->participants.fetch_add(1, std::memory_order_relaxed);
          job = j;
          home = static_cast<size_t>(prev) % j->num_shards;
          break;
        }
      }
    }
    if (job != nullptr) Participate(*job, home);
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int max_participants,
                             int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  const int parts =
      static_cast<int>(std::max<int64_t>(1, std::min<int64_t>(max_participants, n)));
  if (grain <= 0) grain = std::max<int64_t>(1, n / (static_cast<int64_t>(parts) * 4));
  // With no workers the caller would drain every shard itself anyway; skip
  // the job bookkeeping and run inline (same chunks would produce the same
  // values — output partitioning is what makes results thread-count-proof).
  if (parts <= 1 || n <= grain || workers_.empty()) {
    fn(begin, end);
    return;
  }

  auto job = std::make_shared<Job>();
  job->shards = std::make_unique<Shard[]>(static_cast<size_t>(parts));
  job->num_shards = static_cast<size_t>(parts);
  const int64_t per = n / parts;
  const int64_t extra = n % parts;
  int64_t cursor = begin;
  for (int s = 0; s < parts; ++s) {
    const int64_t len = per + (s < extra ? 1 : 0);
    job->shards[static_cast<size_t>(s)].next.store(cursor, std::memory_order_relaxed);
    job->shards[static_cast<size_t>(s)].end = cursor + len;
    cursor += len;
  }
  job->grain = grain;
  job->fn = &fn;
  job->remaining.store(n, std::memory_order_relaxed);
  job->participants.store(1, std::memory_order_relaxed);  // The caller.
  job->max_participants = parts;

  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.push_back(job);
  }
  cv_.notify_all();

  Participate(*job, 0);
  // Everything is claimed; briefly spin-yield for stragglers finishing their
  // final chunk (the common case resolves in microseconds), then block on
  // the job's condition variable so coarse-grained stragglers — e.g. a
  // worker still inside a multi-millisecond chunk — do not cost a core.
  // Waiting here cannot deadlock nested calls: the straggler owes no work to
  // this thread, and it signals done_cv when the last chunk completes.
  for (int spin = 0; spin < 256; ++spin) {
    if (job->remaining.load(std::memory_order_acquire) == 0) break;
    std::this_thread::yield();
  }
  if (job->remaining.load(std::memory_order_acquire) > 0) {
    std::unique_lock<std::mutex> lock(job->done_mu);
    job->done_cv.wait(lock, [&] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.erase(std::find(active_.begin(), active_.end(), job));
  }
}

}  // namespace neo::util
