// Wall-clock stopwatch used by the anytime search cutoff and the training-time
// accounting benches.
#pragma once

#include <chrono>

namespace neo::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds since construction/restart.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace neo::util
