// Small string helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace neo::util {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// True if `haystack` contains `needle` (case-sensitive).
bool Contains(const std::string& haystack, const std::string& needle);

/// Lower-cases ASCII.
std::string ToLower(std::string s);

}  // namespace neo::util
