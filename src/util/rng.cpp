#include "src/util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace neo::util {

double Rng::NextGaussian() {
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

size_t Rng::SampleWeighted(const std::vector<double>& weights) {
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) return NextBounded(weights.empty() ? 1 : weights.size());
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

Zipf::Zipf(size_t n, double skew, uint64_t shuffle_seed) {
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), 0);
  if (shuffle_seed != 0) {
    Rng rng(shuffle_seed);
    std::vector<uint32_t> tmp(perm_.begin(), perm_.end());
    rng.Shuffle(tmp);
    perm_.assign(tmp.begin(), tmp.end());
  }
}

size_t Zipf::Sample(Rng& rng) const {
  const double r = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
  size_t rank = static_cast<size_t>(it - cdf_.begin());
  if (rank >= perm_.size()) rank = perm_.size() - 1;
  return perm_[rank];
}

}  // namespace neo::util
