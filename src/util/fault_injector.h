// Deterministic fault injection for the guardrail subsystem (watchdog,
// circuit breaker, model-health rollback). The injector simulates the
// production failure modes a learned optimizer must survive — runaway plan
// executions (latency spikes), executions that die mid-flight, and training
// steps that corrupt the value network — without any real nondeterminism:
// every draw is a pure function of (seed, fault site, caller key, per-key
// occurrence index), so a run with a fixed seed replays the exact same fault
// schedule regardless of wall-clock, machine, or build. That makes guardrail
// behavior unit-testable and lets CI run the whole suite under injection at
// fixed seeds.
//
// Wiring: `ExecutionEngine::SetFaultInjector` arms latency spikes and
// execution failures; `Neo::SetFaultInjector` arms per-retrain weight
// corruption. Nothing injects by default — an injector must be constructed
// (explicitly, or from the NEO_FAULT_* environment via `FromEnv`) and
// attached. Draws are internally mutex-serialized so the serving core's
// guarded serves (engine draw sites) may overlap a background retrain (the
// weight-corruption site). Determinism is unchanged where it matters: a draw
// depends only on its per-(site, key) occurrence index, and any single
// site/key stream is still issued from one serialized phase (engine draws
// run under the engine's execution serialization; retrain draws are ordered
// by retrain index), so cross-thread interleaving across distinct streams
// cannot reorder any stream's occurrences.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "src/util/rng.h"

namespace neo::util {

struct FaultInjectorConfig {
  bool enabled = false;
  uint64_t seed = 42;
  /// Per-execution probability that the plan's latency is multiplied by
  /// `latency_spike_factor` (a runaway execution / interference spike).
  double latency_spike_p = 0.0;
  double latency_spike_factor = 1.0;
  /// Per-execution probability that the execution aborts mid-flight.
  double exec_failure_p = 0.0;
  /// Per-retrain probability that the optimizer step corrupts weights.
  double weight_corruption_p = 0.0;

  /// Parses the NEO_FAULT_* environment: NEO_FAULT_INJECT (enable, "0" off),
  /// NEO_FAULT_SEED, NEO_FAULT_SPIKE_P, NEO_FAULT_SPIKE_FACTOR,
  /// NEO_FAULT_FAIL_P, NEO_FAULT_CORRUPT_P. Unset numeric vars keep the
  /// defaults below (a moderate all-faults mix), so CI arms can toggle the
  /// whole harness with NEO_FAULT_INJECT=1 NEO_FAULT_SEED=<k> alone.
  static FaultInjectorConfig FromEnv();
};

class FaultInjector {
 public:
  /// Fault sites; part of every draw's hash key so the three fault streams
  /// are independent of each other.
  enum class Site : uint64_t {
    kLatencySpike = 0x11,
    kExecFailure = 0x22,
    kWeightCorruption = 0x33,
  };

  FaultInjector() = default;
  explicit FaultInjector(FaultInjectorConfig config) : config_(config) {}

  bool enabled() const { return config_.enabled; }
  const FaultInjectorConfig& config() const { return config_; }

  /// Returns the (possibly spiked) latency for one execution of the plan
  /// identified by `plan_key`. Repeat executions of the same key draw
  /// independently (occurrence-indexed), so spikes are transient.
  double PerturbLatency(uint64_t plan_key, double latency_ms);

  /// True if this execution of `plan_key` should abort.
  bool DrawExecutionFailure(uint64_t plan_key);

  /// True if the retrain identified by `step_key` should corrupt weights.
  bool DrawWeightCorruption(uint64_t step_key);

  size_t latency_spikes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spikes_;
  }
  size_t execution_failures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failures_;
  }
  size_t weight_corruptions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return corruptions_;
  }

 private:
  /// One deterministic Bernoulli draw: hash(seed, site, key, occurrence).
  /// Caller must hold mu_.
  bool Draw(Site site, uint64_t key, double p);

  FaultInjectorConfig config_;
  /// Serializes the occurrence map and counters (see the thread-safety notes
  /// in the file header).
  mutable std::mutex mu_;
  /// Per-(site, key) occurrence counters; draws depend on per-key call
  /// sequence only, never on interleaving across keys.
  std::unordered_map<uint64_t, uint32_t> occurrence_;
  size_t spikes_ = 0;
  size_t failures_ = 0;
  size_t corruptions_ = 0;
};

}  // namespace neo::util
