// Deterministic fault injection for the guardrail subsystem (watchdog,
// circuit breaker, model-health rollback). The injector simulates the
// production failure modes a learned optimizer must survive — runaway plan
// executions (latency spikes), executions that die mid-flight, and training
// steps that corrupt the value network — without any real nondeterminism:
// every draw is a pure function of (seed, fault site, caller key, per-key
// occurrence index), so a run with a fixed seed replays the exact same fault
// schedule regardless of wall-clock, machine, or build. That makes guardrail
// behavior unit-testable and lets CI run the whole suite under injection at
// fixed seeds.
//
// Wiring: `ExecutionEngine::SetFaultInjector` arms latency spikes and
// execution failures; `Neo::SetFaultInjector` arms per-retrain weight
// corruption; `store::ExperienceStore::SetFaultInjector` arms the file-I/O
// sites (short writes, write failures, crash-point truncation) that the
// durable experience store's WAL/snapshot recovery is exercised against.
// Nothing injects by default — an injector must be constructed
// (explicitly, or from the NEO_FAULT_* environment via `FromEnv`) and
// attached. Draws are internally mutex-serialized so the serving core's
// guarded serves (engine draw sites) may overlap a background retrain (the
// weight-corruption site). Determinism is unchanged where it matters: a draw
// depends only on its per-(site, key) occurrence index, and any single
// site/key stream is still issued from one serialized phase (engine draws
// run under the engine's execution serialization; retrain draws are ordered
// by retrain index), so cross-thread interleaving across distinct streams
// cannot reorder any stream's occurrences.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "src/util/rng.h"

namespace neo::util {

struct FaultInjectorConfig {
  bool enabled = false;
  uint64_t seed = 42;
  /// Per-execution probability that the plan's latency is multiplied by
  /// `latency_spike_factor` (a runaway execution / interference spike).
  double latency_spike_p = 0.0;
  double latency_spike_factor = 1.0;
  /// Per-execution probability that the execution aborts mid-flight.
  double exec_failure_p = 0.0;
  /// Per-retrain probability that the optimizer step corrupts weights.
  double weight_corruption_p = 0.0;
  /// Per-write probability that a store file write lands only a prefix of
  /// its bytes (torn record / torn snapshot).
  double io_short_write_p = 0.0;
  /// Per-write probability that a store file write fails outright (EIO).
  double io_failure_p = 0.0;
  /// Crash-point truncation: when >= 0, a writer that consults this budget
  /// silently drops every byte past this cumulative offset — emulating a
  /// process kill at that exact byte of the file's lifetime. -1 = off.
  int64_t io_truncate_at = -1;
  // Serving-overload sites (all off by default, including under FromEnv —
  // they fire only where the overload chaos harness arms them explicitly,
  // so the general faults CI arm stays byte-identical to its pre-overload
  // behavior).
  /// Per-arrival probability that a client begins a burst: the arrival is
  /// amplified into `burst_len` back-to-back submissions.
  double arrival_burst_p = 0.0;
  int arrival_burst_len = 8;
  /// Per-request probability that the serving worker stalls for
  /// `serve_stall_ms` before serving (an interference / slow-serve stall).
  double serve_stall_p = 0.0;
  double serve_stall_ms = 0.0;
  /// Per-request probability that the serve body throws (a poisoned
  /// request); the worker must contain it to that request's future.
  double serve_exception_p = 0.0;

  /// Parses the NEO_FAULT_* environment: NEO_FAULT_INJECT (enable, "0" off),
  /// NEO_FAULT_SEED, NEO_FAULT_SPIKE_P, NEO_FAULT_SPIKE_FACTOR,
  /// NEO_FAULT_FAIL_P, NEO_FAULT_CORRUPT_P, and the file-I/O sites
  /// NEO_FAULT_IO_SHORTWRITE_P, NEO_FAULT_IO_FAIL_P,
  /// NEO_FAULT_IO_TRUNCATE_AT. Unset numeric vars keep the defaults below
  /// (a moderate all-faults mix; truncation stays off), so CI arms can
  /// toggle the whole harness with NEO_FAULT_INJECT=1 NEO_FAULT_SEED=<k>
  /// alone. The serving-overload sites read NEO_FAULT_BURST_P,
  /// NEO_FAULT_BURST_LEN, NEO_FAULT_STALL_P, NEO_FAULT_STALL_MS, and
  /// NEO_FAULT_EXC_P but default to OFF (0) when unset — the overload chaos
  /// arm sets them explicitly.
  static FaultInjectorConfig FromEnv();
};

class FaultInjector {
 public:
  /// Fault sites; part of every draw's hash key so the three fault streams
  /// are independent of each other.
  enum class Site : uint64_t {
    kLatencySpike = 0x11,
    kExecFailure = 0x22,
    kWeightCorruption = 0x33,
    kIoShortWrite = 0x44,
    kIoFailure = 0x55,
    kArrivalBurst = 0x66,
    kServeStall = 0x77,
    kServeException = 0x88,
  };

  FaultInjector() = default;
  explicit FaultInjector(FaultInjectorConfig config) : config_(config) {}

  bool enabled() const { return config_.enabled; }
  const FaultInjectorConfig& config() const { return config_; }

  /// Returns the (possibly spiked) latency for one execution of the plan
  /// identified by `plan_key`. Repeat executions of the same key draw
  /// independently (occurrence-indexed), so spikes are transient.
  double PerturbLatency(uint64_t plan_key, double latency_ms);

  /// True if this execution of `plan_key` should abort.
  bool DrawExecutionFailure(uint64_t plan_key);

  /// True if the retrain identified by `step_key` should corrupt weights.
  bool DrawWeightCorruption(uint64_t step_key);

  /// True if this write to the file stream identified by `file_key` should
  /// fail outright (simulated EIO).
  bool DrawIoFailure(uint64_t file_key);

  /// Returns the number of bytes of an `intended`-byte write that actually
  /// land (a short write leaves a uniformly-drawn strict prefix; most writes
  /// land whole). Never returns `intended` when a short write fires on a
  /// write of >= 1 bytes.
  size_t PerturbWriteLength(uint64_t file_key, size_t intended);

  /// Crash-point byte budget for store writers (-1 = unlimited); see
  /// FaultInjectorConfig::io_truncate_at.
  int64_t io_truncate_at() const { return config_.io_truncate_at; }

  /// Number of extra back-to-back submissions this arrival of `client_key`
  /// should be amplified into (0 = no burst). Drives overload-harness
  /// arrival shaping; the draw stream is per-client occurrence-indexed.
  int DrawArrivalBurst(uint64_t client_key);

  /// Stall (ms) the worker should sleep before serving `request_key`
  /// (0 = none). Emulates a slow serve / interference stall.
  double DrawServeStall(uint64_t request_key);

  /// True if serving `request_key` should throw (a poisoned request).
  bool DrawServeException(uint64_t request_key);

  /// Advances the shared store-I/O byte odometer by `intended` and returns
  /// how many of those bytes land before the crash budget (io_truncate_at)
  /// runs out — `intended` when the budget is off or not yet reached, 0 once
  /// it is exhausted. Emulates a process kill at one exact byte of the
  /// store's cumulative write stream.
  size_t ConsumeIoBudget(size_t intended);

  size_t io_failures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return io_failures_;
  }
  size_t io_short_writes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return io_short_writes_;
  }

  size_t latency_spikes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spikes_;
  }
  size_t execution_failures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failures_;
  }
  size_t weight_corruptions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return corruptions_;
  }
  size_t arrival_bursts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bursts_;
  }
  size_t serve_stalls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stalls_;
  }
  size_t serve_exceptions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return serve_exceptions_;
  }

 private:
  /// One deterministic Bernoulli draw: hash(seed, site, key, occurrence).
  /// Caller must hold mu_.
  bool Draw(Site site, uint64_t key, double p);

  FaultInjectorConfig config_;
  /// Serializes the occurrence map and counters (see the thread-safety notes
  /// in the file header).
  mutable std::mutex mu_;
  /// Per-(site, key) occurrence counters; draws depend on per-key call
  /// sequence only, never on interleaving across keys.
  std::unordered_map<uint64_t, uint32_t> occurrence_;
  size_t spikes_ = 0;
  size_t failures_ = 0;
  size_t corruptions_ = 0;
  size_t io_failures_ = 0;
  size_t io_short_writes_ = 0;
  size_t bursts_ = 0;
  size_t stalls_ = 0;
  size_t serve_exceptions_ = 0;
  /// Cumulative bytes presented to ConsumeIoBudget (the crash-budget clock).
  uint64_t io_bytes_ = 0;
};

}  // namespace neo::util
