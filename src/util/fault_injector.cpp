#include "src/util/fault_injector.h"

#include <cstdlib>

namespace neo::util {

namespace {
double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}
}  // namespace

FaultInjectorConfig FaultInjectorConfig::FromEnv() {
  FaultInjectorConfig cfg;
  const char* inject = std::getenv("NEO_FAULT_INJECT");
  cfg.enabled = inject != nullptr && inject[0] != '\0' && inject[0] != '0';
  cfg.seed = static_cast<uint64_t>(EnvDouble("NEO_FAULT_SEED", 42));
  cfg.latency_spike_p = EnvDouble("NEO_FAULT_SPIKE_P", 0.25);
  cfg.latency_spike_factor = EnvDouble("NEO_FAULT_SPIKE_FACTOR", 40.0);
  cfg.exec_failure_p = EnvDouble("NEO_FAULT_FAIL_P", 0.05);
  cfg.weight_corruption_p = EnvDouble("NEO_FAULT_CORRUPT_P", 0.25);
  return cfg;
}

bool FaultInjector::Draw(Site site, uint64_t key, double p) {
  if (!config_.enabled || p <= 0.0) return false;
  const uint64_t site_key = HashCombine(static_cast<uint64_t>(site), key);
  const uint32_t occurrence = occurrence_[site_key]++;
  const uint64_t h =
      Mix64(HashCombine(HashCombine(config_.seed, site_key), occurrence));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < p;
}

double FaultInjector::PerturbLatency(uint64_t plan_key, double latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Draw(Site::kLatencySpike, plan_key, config_.latency_spike_p)) {
    return latency_ms;
  }
  ++spikes_;
  return latency_ms * config_.latency_spike_factor;
}

bool FaultInjector::DrawExecutionFailure(uint64_t plan_key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Draw(Site::kExecFailure, plan_key, config_.exec_failure_p)) return false;
  ++failures_;
  return true;
}

bool FaultInjector::DrawWeightCorruption(uint64_t step_key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Draw(Site::kWeightCorruption, step_key, config_.weight_corruption_p)) {
    return false;
  }
  ++corruptions_;
  return true;
}

}  // namespace neo::util
