#include "src/util/fault_injector.h"

#include <cstdlib>

namespace neo::util {

namespace {
double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}
}  // namespace

FaultInjectorConfig FaultInjectorConfig::FromEnv() {
  FaultInjectorConfig cfg;
  const char* inject = std::getenv("NEO_FAULT_INJECT");
  cfg.enabled = inject != nullptr && inject[0] != '\0' && inject[0] != '0';
  cfg.seed = static_cast<uint64_t>(EnvDouble("NEO_FAULT_SEED", 42));
  cfg.latency_spike_p = EnvDouble("NEO_FAULT_SPIKE_P", 0.25);
  cfg.latency_spike_factor = EnvDouble("NEO_FAULT_SPIKE_FACTOR", 40.0);
  cfg.exec_failure_p = EnvDouble("NEO_FAULT_FAIL_P", 0.05);
  cfg.weight_corruption_p = EnvDouble("NEO_FAULT_CORRUPT_P", 0.25);
  cfg.io_short_write_p = EnvDouble("NEO_FAULT_IO_SHORTWRITE_P", 0.05);
  cfg.io_failure_p = EnvDouble("NEO_FAULT_IO_FAIL_P", 0.02);
  cfg.io_truncate_at =
      static_cast<int64_t>(EnvDouble("NEO_FAULT_IO_TRUNCATE_AT", -1.0));
  // Overload sites default OFF (see the config notes): only the overload
  // chaos arm sets these, so the general faults arm is unaffected.
  cfg.arrival_burst_p = EnvDouble("NEO_FAULT_BURST_P", 0.0);
  cfg.arrival_burst_len = static_cast<int>(EnvDouble("NEO_FAULT_BURST_LEN", 8.0));
  cfg.serve_stall_p = EnvDouble("NEO_FAULT_STALL_P", 0.0);
  cfg.serve_stall_ms = EnvDouble("NEO_FAULT_STALL_MS", 0.0);
  cfg.serve_exception_p = EnvDouble("NEO_FAULT_EXC_P", 0.0);
  return cfg;
}

bool FaultInjector::Draw(Site site, uint64_t key, double p) {
  if (!config_.enabled || p <= 0.0) return false;
  const uint64_t site_key = HashCombine(static_cast<uint64_t>(site), key);
  const uint32_t occurrence = occurrence_[site_key]++;
  const uint64_t h =
      Mix64(HashCombine(HashCombine(config_.seed, site_key), occurrence));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < p;
}

double FaultInjector::PerturbLatency(uint64_t plan_key, double latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Draw(Site::kLatencySpike, plan_key, config_.latency_spike_p)) {
    return latency_ms;
  }
  ++spikes_;
  return latency_ms * config_.latency_spike_factor;
}

bool FaultInjector::DrawExecutionFailure(uint64_t plan_key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Draw(Site::kExecFailure, plan_key, config_.exec_failure_p)) return false;
  ++failures_;
  return true;
}

bool FaultInjector::DrawWeightCorruption(uint64_t step_key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Draw(Site::kWeightCorruption, step_key, config_.weight_corruption_p)) {
    return false;
  }
  ++corruptions_;
  return true;
}

bool FaultInjector::DrawIoFailure(uint64_t file_key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Draw(Site::kIoFailure, file_key, config_.io_failure_p)) return false;
  ++io_failures_;
  return true;
}

size_t FaultInjector::ConsumeIoBudget(size_t intended) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!config_.enabled || config_.io_truncate_at < 0) return intended;
  const uint64_t budget = static_cast<uint64_t>(config_.io_truncate_at);
  const uint64_t before = io_bytes_;
  io_bytes_ += intended;
  if (before >= budget) return 0;
  const uint64_t room = budget - before;
  return room >= intended ? intended : static_cast<size_t>(room);
}

int FaultInjector::DrawArrivalBurst(uint64_t client_key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Draw(Site::kArrivalBurst, client_key, config_.arrival_burst_p)) return 0;
  ++bursts_;
  return config_.arrival_burst_len > 0 ? config_.arrival_burst_len : 0;
}

double FaultInjector::DrawServeStall(uint64_t request_key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Draw(Site::kServeStall, request_key, config_.serve_stall_p)) return 0.0;
  ++stalls_;
  return config_.serve_stall_ms;
}

bool FaultInjector::DrawServeException(uint64_t request_key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Draw(Site::kServeException, request_key, config_.serve_exception_p)) {
    return false;
  }
  ++serve_exceptions_;
  return true;
}

size_t FaultInjector::PerturbWriteLength(uint64_t file_key, size_t intended) {
  std::lock_guard<std::mutex> lock(mu_);
  if (intended == 0 ||
      !Draw(Site::kIoShortWrite, file_key, config_.io_short_write_p)) {
    return intended;
  }
  ++io_short_writes_;
  // Landed-prefix length in [0, intended): reuse the deterministic draw
  // stream so the torn length replays with the schedule. Occurrence was
  // already consumed by Draw above; draw a fresh occurrence for the length.
  const uint64_t site_key =
      HashCombine(static_cast<uint64_t>(Site::kIoShortWrite) ^ 0x9e37, file_key);
  const uint32_t occurrence = occurrence_[site_key]++;
  const uint64_t h =
      Mix64(HashCombine(HashCombine(config_.seed, site_key), occurrence));
  return static_cast<size_t>(h % intended);
}

}  // namespace neo::util
