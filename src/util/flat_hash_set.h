// Open-addressing uint64 hash set with capacity reuse: the zero-steady-state
// -allocation replacement for the per-request `std::unordered_set<uint64_t>`
// dedup sets in plan search (visited states, activation-insert dedup).
//
// std::unordered_set allocates one node per insert, so a search that visits
// thousands of states performs thousands of heap allocations per request even
// when the set is cleared and reused. This set stores keys inline in a
// power-of-two slot array with linear probing; Clear() keeps the backing
// array, so after the high-water request the set never allocates again.
//
// Keys are expected to already be hashes (plan/subtree fingerprints); they
// are remixed with Mix64 so slot choice does not correlate with the caller's
// own hash structure. Key 0 is handled out of line (it is a valid key, but
// doubles as the empty-slot sentinel).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace neo::util {

class FlatHashSet64 {
 public:
  explicit FlatHashSet64(size_t expected = 0) {
    if (expected > 0) Reserve(expected);
  }

  /// Drops all keys, keeping the slot array (O(capacity) fill, zero allocs).
  void Clear() {
    std::fill(slots_.begin(), slots_.end(), uint64_t{0});
    has_zero_ = false;
    size_ = 0;
  }

  /// Inserts `key`; returns true iff it was not already present.
  bool Insert(uint64_t key) {
    if (key == 0) {
      const bool fresh = !has_zero_;
      has_zero_ = true;
      size_ += fresh ? 1 : 0;
      return fresh;
    }
    if ((size_ + 1) * 4 >= Capacity() * 3) Grow();
    size_t i = Mix64(key) & mask_;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask_;
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  bool Contains(uint64_t key) const {
    if (key == 0) return has_zero_;
    if (slots_.empty()) return false;
    size_t i = Mix64(key) & mask_;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  /// Pre-sizes the slot array for `n` keys (rounds up to keep load < 3/4).
  void Reserve(size_t n) {
    size_t want = 16;
    while (want * 3 < n * 4) want <<= 1;
    if (want > Capacity()) Rehash(want);
  }

  size_t size() const { return size_; }
  size_t Capacity() const { return slots_.size(); }

 private:
  void Grow() { Rehash(slots_.empty() ? 16 : slots_.size() * 2); }

  void Rehash(size_t new_cap) {
    std::vector<uint64_t> old;
    old.swap(slots_);
    slots_.assign(new_cap, 0);
    mask_ = new_cap - 1;
    for (uint64_t k : old) {
      if (k == 0) continue;
      size_t i = Mix64(k) & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = k;
    }
  }

  std::vector<uint64_t> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  bool has_zero_ = false;
};

}  // namespace neo::util
