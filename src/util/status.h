// Minimal Status/StatusOr error propagation (RocksDB-style), used on fallible
// public APIs. Internal invariant violations use NEO_CHECK instead.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace neo::util {

/// Result of a fallible operation. Cheap to copy when OK.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kFailedPrecondition,
    kInternal,
    kDeadlineExceeded,  ///< Execution watchdog cut the operation off.
    kAborted,           ///< Execution died mid-flight (e.g. injected failure).
    kDataLoss,          ///< Persistent data is truncated or corrupted.
    kResourceExhausted, ///< Admission control shed the request (queue full /
                        ///< overload ladder at its shedding level).
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(Code::kNotFound, std::move(msg)); }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(Code::kInternal, std::move(msg)); }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg) { return Status(Code::kAborted, std::move(msg)); }
  static Status DataLoss(std::string msg) { return Status(Code::kDataLoss, std::move(msg)); }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "UNKNOWN";
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kInvalidArgument: name = "INVALID_ARGUMENT"; break;
      case Code::kNotFound: name = "NOT_FOUND"; break;
      case Code::kFailedPrecondition: name = "FAILED_PRECONDITION"; break;
      case Code::kInternal: name = "INTERNAL"; break;
      case Code::kDeadlineExceeded: name = "DEADLINE_EXCEEDED"; break;
      case Code::kAborted: name = "ABORTED"; break;
      case Code::kDataLoss: name = "DATA_LOSS"; break;
      case Code::kResourceExhausted: name = "RESOURCE_EXHAUSTED"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}
  Code code_;
  std::string message_;
};

}  // namespace neo::util

/// Aborts the process with a message if `cond` is false. Used for programmer
/// invariants (never for user input validation).
#define NEO_CHECK(cond)                                                              \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::fprintf(stderr, "NEO_CHECK failed at %s:%d: %s\n", __FILE__, __LINE__,    \
                   #cond);                                                           \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)

#define NEO_CHECK_MSG(cond, msg)                                                     \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::fprintf(stderr, "NEO_CHECK failed at %s:%d: %s (%s)\n", __FILE__,         \
                   __LINE__, #cond, (msg));                                          \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)
