// Exact-LRU bounded map, extracted from PlanSearch's score cache so the
// score cache and the tree-conv activation cache share one implementation.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

namespace neo::util {

/// Exact least-recently-used map: Find() touches (moves to most-recent),
/// Insert() evicts the least-recently-used entry once past the capacity.
/// Move-only (the index holds list iterators, which a copy would leave
/// dangling). Value pointers returned by Find()/Insert() stay valid until
/// that entry is evicted or the map is cleared — Find's splice and Insert's
/// emplace never relocate other list nodes — so callers may hold pointers
/// into the map across further Finds, but must not Insert while dereferencing
/// them (an insert past the cap destroys the LRU entry).
template <typename K, typename V>
class LruMap {
 public:
  LruMap() = default;
  LruMap(LruMap&&) = default;
  LruMap& operator=(LruMap&&) = default;
  LruMap(const LruMap&) = delete;
  LruMap& operator=(const LruMap&) = delete;

  /// Drops all entries and sets the capacity; cap 0 = unbounded.
  void Clear(size_t cap) {
    order_.clear();
    index_.clear();
    cap_ = cap;
  }

  /// Returns the value (touched: now most recently used) or nullptr.
  V* Find(const K& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);  // Touch: move to front.
    return &it->second->second;
  }

  /// Inserts key -> value (overwriting and touching an existing entry).
  /// Returns true if the insert evicted the least-recently-used entry.
  bool Insert(const K& key, V value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return false;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    if (cap_ == 0 || index_.size() <= cap_) return false;
    index_.erase(order_.back().first);
    order_.pop_back();
    return true;
  }

  size_t size() const { return index_.size(); }
  size_t capacity() const { return cap_; }

 private:
  using Entry = std::pair<K, V>;
  std::list<Entry> order_;  ///< Front = most recently used.
  std::unordered_map<K, typename std::list<Entry>::iterator> index_;
  size_t cap_ = 0;
};

}  // namespace neo::util
