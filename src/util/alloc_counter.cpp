#include "src/util/alloc_counter.h"

#include <atomic>
#include <cstdlib>
#include <new>
#ifdef NEO_ALLOC_TRACE
#include <execinfo.h>
#include <unistd.h>
#endif

// The interposition must stay out of sanitizer builds: ASan/TSan interpose
// malloc themselves and replacing the C++ operators on top of them breaks
// their bookkeeping. NEO_NO_ALLOC_HOOK is the manual escape hatch.
#if !defined(NEO_NO_ALLOC_HOOK) && !defined(__SANITIZE_ADDRESS__) && \
    !defined(__SANITIZE_THREAD__)
#if defined(__has_feature)
#if !__has_feature(address_sanitizer) && !__has_feature(thread_sanitizer)
#define NEO_ALLOC_COUNTER 1
#endif
#else
#define NEO_ALLOC_COUNTER 1
#endif
#endif

namespace neo::util {
namespace {

// Constant-initialized / trivially-destructible state only: operator new runs
// during static init and teardown, so nothing here may have a dynamic
// constructor or destructor.
std::atomic<bool> g_armed{false};
std::atomic<uint64_t> g_region_allocs{0};
thread_local int t_region_depth = 0;

inline void NoteAlloc() {
  if (t_region_depth > 0 && g_armed.load(std::memory_order_relaxed)) {
    g_region_allocs.fetch_add(1, std::memory_order_relaxed);
#ifdef NEO_ALLOC_TRACE
    static thread_local bool tracing = false;
    if (!tracing && g_region_allocs.load(std::memory_order_relaxed) <= 40) {
      tracing = true;
      void* frames[16];
      const int n = backtrace(frames, 16);
      backtrace_symbols_fd(frames, n, 2);
      write(2, "----\n", 5);
      tracing = false;
    }
#endif
  }
}

}  // namespace

bool AllocCounterActive() {
#if defined(NEO_ALLOC_COUNTER)
  return true;
#else
  return false;
#endif
}

void ArmAllocCounter(bool on) { g_armed.store(on, std::memory_order_relaxed); }

void ResetRegionAllocs() {
  g_region_allocs.store(0, std::memory_order_relaxed);
}

uint64_t RegionAllocs() {
  return g_region_allocs.load(std::memory_order_relaxed);
}

AllocRegionScope::AllocRegionScope() { ++t_region_depth; }
AllocRegionScope::~AllocRegionScope() { --t_region_depth; }

}  // namespace neo::util

#if defined(NEO_ALLOC_COUNTER)

namespace {

void* CountedAlloc(std::size_t n) {
  void* p = std::malloc(n != 0 ? n : 1);
  if (p != nullptr) neo::util::NoteAlloc();
  return p;
}

void* CountedAlignedAlloc(std::size_t n, std::size_t align) {
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n != 0 ? n : 1) != 0) {
    return nullptr;
  }
  neo::util::NoteAlloc();
  return p;
}

}  // namespace

void* operator new(std::size_t n) {
  void* p = CountedAlloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) {
  void* p = CountedAlloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return CountedAlloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return CountedAlloc(n);
}
void* operator new(std::size_t n, std::align_val_t align) {
  void* p = CountedAlignedAlloc(n, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t align) {
  void* p = CountedAlignedAlloc(n, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t n, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t n, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // NEO_ALLOC_COUNTER
