// Steady-state heap-allocation counter: global operator new/delete
// interposition that counts allocations made inside explicitly marked
// regions (the NN evaluation path and whole training steps).
//
// The benches arm the counter after warmup and assert the marked regions
// perform ZERO heap allocations — the acceptance probe behind the
// `steady_state_heap_allocs` field in BENCH_train.json / BENCH_serve.json.
//
// Mechanics: src/util/alloc_counter.cpp replaces the global allocation
// operators (all C++17 forms) with thin malloc/free forwards that bump a
// process-global counter when BOTH (a) the counter is armed
// (ArmAllocCounter(true), a relaxed atomic — off by default, so production
// serving pays one relaxed load per region entry and nothing per
// allocation) and (b) the allocating thread is inside an AllocRegionScope.
// Region scopes nest and are placed in library code (ValueNetwork::TrainBatch,
// the PlanSearch scoring forward); they are inert until armed.
//
// The interposition is compiled out under AddressSanitizer / ThreadSanitizer
// (their allocators must own malloc) and under -DNEO_NO_ALLOC_HOOK;
// AllocCounterActive() reports whether counting is real so the benches can
// distinguish "zero allocations" from "counter unavailable".
#pragma once

#include <cstdint>

namespace neo::util {

/// True iff the operator-new interposition is compiled in (no sanitizers,
/// not NEO_NO_ALLOC_HOOK). When false the counters always read zero.
bool AllocCounterActive();

/// Globally enables/disables counting. Off by default.
void ArmAllocCounter(bool on);

/// Zeroes the global region-allocation counter.
void ResetRegionAllocs();

/// Allocations observed inside marked regions (all threads) while armed.
uint64_t RegionAllocs();

/// Marks the current thread as inside a counted region for the scope's
/// lifetime. Nestable; trivially cheap (one thread-local int).
class AllocRegionScope {
 public:
  AllocRegionScope();
  ~AllocRegionScope();
  AllocRegionScope(const AllocRegionScope&) = delete;
  AllocRegionScope& operator=(const AllocRegionScope&) = delete;
};

}  // namespace neo::util
