// Sharded, mutex-per-shard LRU map: the concurrency wrapper the serving
// core's shared score/activation caches use around util::LruMap.
//
// Each key hashes to one shard; a shard is an LruMap plus a mutex plus exact
// hit/miss/eviction counters. The capacity is split evenly across shards, so
// eviction is exact-LRU *per shard* (global recency order is approximated —
// acceptable for caches whose entries are bitwise-recomputable, which is the
// contract of every cache in this codebase). Values are always copied out
// under the shard lock (Visit runs the callback while holding it); callers
// never receive pointers into the map, so a concurrent insert/eviction can
// never invalidate a value in use — the property that makes the per-search
// activation cache promotable to a process-global one.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "src/util/lru_map.h"
#include "src/util/rng.h"

namespace neo::util {

/// Exact counter totals of one ShardedLruMap (shared by every instantiation
/// so aggregators can hold stats from differently-typed maps uniformly).
struct ShardedLruStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
};

template <typename K, typename V>
class ShardedLruMap {
 public:
  using Stats = ShardedLruStats;

  /// `cap` is the total entry bound split across shards (0 = unbounded);
  /// `shards` is rounded up to a power of two.
  explicit ShardedLruMap(size_t cap = 0, int shards = 16) {
    int n = 1;
    while (n < shards) n <<= 1;
    num_shards_ = static_cast<size_t>(n);
    shards_ = std::make_unique<Shard[]>(num_shards_);
    Clear(cap);
  }

  /// Drops all entries and re-splits `cap` across the shards.
  void Clear(size_t cap) {
    cap_ = cap;
    const size_t per_shard = cap == 0 ? 0 : std::max<size_t>(1, cap / num_shards_);
    for (size_t s = 0; s < num_shards_; ++s) {
      Shard& shard = shards_[s];
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.Clear(per_shard);
      shard.stats = Stats();
    }
  }

  /// Runs `fn(const V&)` under the shard lock if the key is present (touching
  /// the entry), returning presence. The callback must copy what it needs —
  /// the reference dies with the lock.
  template <typename Fn>
  bool Visit(const K& key, Fn&& fn) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (V* hit = shard.map.Find(key)) {
      ++shard.stats.hits;
      fn(static_cast<const V&>(*hit));
      return true;
    }
    ++shard.stats.misses;
    return false;
  }

  /// Copy-out convenience over Visit.
  bool Lookup(const K& key, V* out) {
    return Visit(key, [out](const V& v) { *out = v; });
  }

  /// Inserts (or overwrites + touches). Returns true if the shard evicted its
  /// least-recently-used entry.
  bool Insert(const K& key, V value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const bool evicted = shard.map.Insert(key, std::move(value));
    if (evicted) ++shard.stats.evictions;
    return evicted;
  }

  /// Exact counter totals summed across shards (takes every shard lock).
  Stats TotalStats() const {
    Stats total;
    for (size_t s = 0; s < num_shards_; ++s) {
      const Shard& shard = shards_[s];
      std::lock_guard<std::mutex> lock(shard.mu);
      total.hits += shard.stats.hits;
      total.misses += shard.stats.misses;
      total.evictions += shard.stats.evictions;
      total.entries += static_cast<uint64_t>(shard.map.size());
    }
    return total;
  }

  size_t capacity() const { return cap_; }
  int num_shards() const { return static_cast<int>(num_shards_); }

 private:
  struct Shard {
    mutable std::mutex mu;
    LruMap<K, V> map;
    Stats stats;
  };

  Shard& ShardFor(const K& key) {
    // Keys here are already hashes (plan/subtree fingerprints mixed with a
    // salt); remix so shard choice and the inner unordered_map's bucket
    // choice never correlate.
    const uint64_t h = Mix64(static_cast<uint64_t>(key));
    return shards_[static_cast<size_t>(h) & (num_shards_ - 1)];
  }

  std::unique_ptr<Shard[]> shards_;
  size_t num_shards_ = 0;
  size_t cap_ = 0;
};

}  // namespace neo::util
