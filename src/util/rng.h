// Deterministic pseudo-random number generation for all stochastic components.
//
// Every module that needs randomness (data generation, network initialization,
// word2vec negative sampling, search tie-breaking, engine noise) takes an
// explicit Rng so that a single seed makes an entire experiment reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace neo::util {

/// SplitMix64 step; used for seeding and as a cheap stateless hash-mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes a 64-bit value into a well-distributed hash (stateless).
inline uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

/// Combines two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (Mix64(b) + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// xoshiro256** PRNG. Fast, high quality, deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform float in [lo, hi).
  double NextUniform(double lo, double hi) { return lo + NextDouble() * (hi - lo); }

  /// Standard normal via Box-Muller (one value per call; no caching for
  /// determinism under interleaved use).
  double NextGaussian();

  /// Bernoulli trial.
  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (size_t i = v.size() - 1; i > 0; --i) {
      size_t j = NextBounded(i + 1);
      std::swap(v[i], v[j]);
    }
  }

  /// Samples an index from a (non-normalized, non-negative) weight vector.
  size_t SampleWeighted(const std::vector<double>& weights);

  /// Derives an independent child generator; changing the order of other
  /// draws on the parent does not perturb the child stream.
  Rng Fork(uint64_t stream_id) const {
    return Rng(HashCombine(HashCombine(s_[0], s_[3]), Mix64(stream_id)));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

/// Zipf-distributed integer sampler over {0, .., n-1}; rank 0 is the most
/// frequent. skew = 0 degenerates to uniform. Precomputes the CDF.
class Zipf {
 public:
  Zipf(size_t n, double skew, uint64_t shuffle_seed = 0);

  /// Draws one value. The mapping rank->value is a fixed permutation so that
  /// "hot" values are spread across the domain (controlled by shuffle_seed).
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  std::vector<uint32_t> perm_;
};

}  // namespace neo::util
