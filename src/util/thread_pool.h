// Work-stealing thread pool shared by every parallel hot path (GEMM row
// partitioning, batched training, concurrent episode planning).
//
// The only primitive is ParallelFor: the index range is split into
// `max_participants` contiguous shards, each with an atomic cursor. Every
// participant (the calling thread plus any idle workers) drains its own
// shard in grain-sized chunks, then steals from whichever shard has the most
// work left. Because each index is claimed exactly once and the callback's
// output for index i may depend only on i (never on which thread ran it or
// in what order), any computation expressed this way is bit-identical at any
// thread count — the determinism contract the NN kernels and search rely on.
//
// Nesting is safe: a worker executing a chunk may issue its own ParallelFor
// (the nested call's caller participates itself and never blocks a worker
// slot waiting), so episode-level parallelism can wrap GEMM-level
// parallelism without deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace neo::util {

class ThreadPool {
 public:
  /// Spawns `workers` background threads (clamped at >= 0). The pool's total
  /// parallelism is workers + 1: the thread calling ParallelFor always
  /// participates, so ThreadPool(0) degrades to serial inline execution.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads + the calling thread.
  int parallelism() const { return static_cast<int>(workers_.size()) + 1; }

  /// Process-wide pool, created on first use with hardware_concurrency() - 1
  /// workers. All library-internal parallelism routes through it so the
  /// process never oversubscribes cores, no matter how many layers nest.
  static ThreadPool& Global();

  /// Invokes fn(lo, hi) over disjoint subranges exactly covering
  /// [begin, end). `max_participants` bounds how many threads may join (and
  /// sets the shard count; <= 1 runs inline serially). `grain` is the max
  /// chunk size per claim (<= 0 picks a default). Blocks until every index
  /// has been processed. Safe to call from worker threads (nested jobs).
  void ParallelFor(int64_t begin, int64_t end, int max_participants, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

 private:
  struct Shard {
    std::atomic<int64_t> next{0};
    int64_t end = 0;
    // Pad to a cache line so shard cursors never false-share.
    char pad[64 - sizeof(std::atomic<int64_t>) - sizeof(int64_t)];
  };

  struct Job {
    std::unique_ptr<Shard[]> shards;  ///< Atomics are not movable, so no vector.
    size_t num_shards = 0;
    int64_t grain = 1;
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    std::atomic<int64_t> remaining{0};  ///< Items claimed-and-finished countdown.
    std::atomic<int> participants{0};   ///< Threads that joined (cap enforced).
    int max_participants = 1;
    std::mutex done_mu;                 ///< Guards the completion wakeup.
    std::condition_variable done_cv;    ///< Signaled when remaining hits 0.
  };

  void WorkerLoop();

  /// Claims chunks for `job` until no shard has work left: own shard first
  /// (`home`), then steal from the fullest shard.
  static void Participate(Job& job, size_t home);

  static bool JobHasUnclaimed(const Job& job);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::shared_ptr<Job>> active_;
  bool stop_ = false;
};

}  // namespace neo::util
