// Bump-pointer arena with high-water reuse: the steady-state allocator for
// per-request / per-step POD scratch.
//
// Contract: Allocate() hands out raw bytes from the current block; Reset()
// recycles everything at a request/step boundary. The first few
// requests grow the arena (heap blocks are chained), after which Reset()
// coalesces the chain into ONE block sized to the observed high-water mark —
// from then on every request is served from that single block and the arena
// performs zero heap allocations until a request exceeds the previous peak.
//
// Pointer-stability rules (documented here because callers build aliasing
// structures on top of arena memory):
//   - Pointers returned by Allocate() are valid until the next Reset(), and
//     ONLY until then. Never cache arena pointers across requests.
//   - Within one request, previously returned pointers are never moved or
//     invalidated by later Allocate() calls (a new block is chained instead
//     of reallocating an old one).
//   - The arena never constructs or destroys objects; it is for trivially-
//     destructible POD only (floats, ints, raw pointer tables).
//
// Not thread-safe: one arena per thread / per PlanSearch / per context.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace neo::util {

class Arena {
 public:
  explicit Arena(size_t initial_bytes = 0) {
    if (initial_bytes > 0) AddBlock(initial_bytes);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Returns `bytes` of storage aligned to `align` (power of two). Valid
  /// until the next Reset().
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    // Align the actual address, not the block-relative offset: block bases
    // come from operator new[] and only guarantee max_align_t.
    size_t offset = 0;
    if (!blocks_.empty()) {
      const uintptr_t base =
          reinterpret_cast<uintptr_t>(blocks_.back().data.get());
      offset = static_cast<size_t>(Align(base + cur_, align) - base);
    }
    if (blocks_.empty() || offset + bytes > blocks_.back().size) {
      // Chain a new block; never touch existing ones (pointer stability).
      // `align` extra bytes cover the worst-case base-misalignment pad.
      const size_t need = bytes + align;
      const size_t want = need > NextBlockSize() ? need : NextBlockSize();
      AddBlock(Align(want, alignof(std::max_align_t)));
      const uintptr_t base =
          reinterpret_cast<uintptr_t>(blocks_.back().data.get());
      offset = static_cast<size_t>(Align(base, align) - base);
    }
    char* p = blocks_.back().data.get() + offset;
    cur_ = offset + bytes;
    used_ = used_before_last_ + cur_;
    if (used_ > peak_) peak_ = used_;
    return p;
  }

  /// Typed convenience: `n` default-UNinitialized elements of trivially-
  /// destructible T.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible<T>::value,
                  "Arena storage is never destroyed");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Request/step boundary: recycles all storage. If the request chained
  /// more than one block (or outgrew the single block), the chain is
  /// coalesced into one block at the high-water size so the NEXT request is
  /// served alloc-free. All previously returned pointers die here.
  void Reset() {
    if (blocks_.size() != 1 || blocks_.back().size < peak_) {
      blocks_.clear();
      if (peak_ > 0) AddBlock(Align(peak_, alignof(std::max_align_t)));
    }
    cur_ = 0;
    used_ = 0;
    used_before_last_ = 0;
  }

  /// High-water mark of bytes live at once (across all Resets).
  size_t peak_bytes() const { return peak_; }
  /// Heap blocks ever requested from the system (stabilizes after warmup).
  uint64_t heap_blocks() const { return heap_blocks_; }
  /// Currently reserved backing storage.
  size_t capacity_bytes() const {
    size_t c = 0;
    for (const Block& b : blocks_) c += b.size;
    return c;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  static size_t Align(size_t v, size_t a) { return (v + a - 1) & ~(a - 1); }

  size_t NextBlockSize() const {
    const size_t base = blocks_.empty() ? kMinBlock : blocks_.back().size * 2;
    return base < kMinBlock ? kMinBlock : base;
  }

  void AddBlock(size_t size) {
    used_before_last_ = used_;
    Block b;
    b.data = std::make_unique<char[]>(size);
    b.size = size;
    blocks_.push_back(std::move(b));
    ++heap_blocks_;
    cur_ = 0;
  }

  static constexpr size_t kMinBlock = 4096;

  std::vector<Block> blocks_;
  size_t cur_ = 0;                ///< Bump offset within the last block.
  size_t used_ = 0;               ///< Bytes live this request.
  size_t used_before_last_ = 0;   ///< Bytes live in all but the last block.
  size_t peak_ = 0;
  uint64_t heap_blocks_ = 0;
};

}  // namespace neo::util
