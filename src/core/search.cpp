#include "src/core/search.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "src/engine/latency_model.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"

namespace neo::core {

namespace {

/// Path-copies `root`, replacing the (unique) node `target` with
/// `replacement`. Returns nullptr if `target` is not in this tree.
plan::NodeRef ReplaceNode(const plan::NodeRef& root, const plan::PlanNode* target,
                          const plan::NodeRef& replacement) {
  if (root.get() == target) return replacement;
  if (!root->is_join) return nullptr;
  if (plan::NodeRef l = ReplaceNode(root->left, target, replacement)) {
    return plan::MakeJoin(root->join_op, l, root->right);
  }
  if (plan::NodeRef r = ReplaceNode(root->right, target, replacement)) {
    return plan::MakeJoin(root->join_op, root->left, r);
  }
  return nullptr;
}

/// First unspecified leaf in pre-order (or nullptr).
const plan::PlanNode* FirstUnspecified(const plan::PlanNode& node) {
  if (!node.is_join) {
    return node.scan_op == plan::ScanOp::kUnspecified ? &node : nullptr;
  }
  if (node.num_unspecified == 0) return nullptr;
  if (const plan::PlanNode* l = FirstUnspecified(*node.left)) return l;
  return FirstUnspecified(*node.right);
}

}  // namespace

std::vector<plan::PartialPlan> PlanSearch::Children(
    const query::Query& query, const plan::PartialPlan& plan) const {
  // Children per the paper (§4.2): (a) turn an unspecified scan anywhere in
  // the forest into a table or index scan, (b) merge two roots with a join
  // operator (both orientations: left = probe/outer, right = build/inner).
  //
  // One deviation for tractability: only the *first* unspecified leaf (in
  // pre-order over the forest) may be specified at each step. Every complete
  // plan remains reachable (leaves can be specified in the forced order
  // before/after any join), but the 2^n duplicate intermediate states that
  // arbitrary specification orders generate are gone.
  std::vector<plan::PartialPlan> children;
  const catalog::Schema& schema = featurizer_->schema();
  const size_t n_roots = plan.roots.size();

  auto with_replaced_root = [&](size_t root_idx, plan::NodeRef new_root) {
    plan::PartialPlan child;
    child.query = plan.query;
    child.roots = plan.roots;
    child.roots[root_idx] = std::move(new_root);
    return child;
  };

  // (a) Specify the first unspecified leaf.
  for (size_t i = 0; i < n_roots; ++i) {
    const plan::PlanNode* leaf = FirstUnspecified(*plan.roots[i]);
    if (leaf == nullptr) continue;
    children.push_back(with_replaced_root(
        i, ReplaceNode(plan.roots[i], leaf,
                       plan::MakeScan(plan::ScanOp::kTable, leaf->table_id,
                                      leaf->rel_mask))));
    if (engine::IndexScanUsable(schema, query, leaf->table_id)) {
      children.push_back(with_replaced_root(
          i, ReplaceNode(plan.roots[i], leaf,
                         plan::MakeScan(plan::ScanOp::kIndex, leaf->table_id,
                                        leaf->rel_mask))));
    }
    break;  // Forced specification order: only the first leaf.
  }

  // (b) Join two roots (any specification state), both orientations.
  constexpr plan::JoinOp kOps[] = {plan::JoinOp::kHash, plan::JoinOp::kMerge,
                                   plan::JoinOp::kLoop};
  auto with_joined = [&](size_t a, size_t b, plan::JoinOp op) {
    plan::PartialPlan child;
    child.query = plan.query;
    child.roots.reserve(n_roots - 1);
    for (size_t i = 0; i < n_roots; ++i) {
      if (i == a || i == b) continue;
      child.roots.push_back(plan.roots[i]);
    }
    child.roots.push_back(plan::MakeJoin(op, plan.roots[a], plan.roots[b]));
    return child;
  };
  for (size_t a = 0; a < n_roots; ++a) {
    for (size_t b = 0; b < n_roots; ++b) {
      if (a == b) continue;
      if (!query.MasksJoinable(plan.roots[a]->rel_mask, plan.roots[b]->rel_mask)) {
        continue;
      }
      for (plan::JoinOp op : kOps) children.push_back(with_joined(a, b, op));
    }
  }
  return children;
}

SearchResult PlanSearch::GreedyPlan(const query::Query& query) {
  SearchOptions options;
  options.max_expansions = 0;  // Forces immediate hurry-up behavior.
  options.early_stop = false;
  return FindPlan(query, options);
}

float PlanSearch::Score(const query::Query& query, const nn::Matrix& query_embedding,
                        const plan::PartialPlan& plan, size_t* evals) {
  ++*evals;
  nn::TreeStructure tree;
  nn::Matrix features;
  featurizer_->EncodePlan(query, plan, &tree, &features);
  return net_->PredictWithEmbedding(query_embedding, tree, features);
}

SearchResult PlanSearch::FindPlan(const query::Query& query,
                                  const SearchOptions& options) {
  util::Stopwatch watch;
  SearchResult result;
  const nn::Matrix query_vec = featurizer_->EncodeQuery(query);
  const nn::Matrix embed = net_->EmbedQuery(query_vec);

  struct HeapEntry {
    float score;
    size_t idx;
    bool operator>(const HeapEntry& o) const { return score > o.score; }
  };
  std::vector<plan::PartialPlan> arena;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> heap;
  std::unordered_set<uint64_t> visited;

  plan::PartialPlan initial = plan::PartialPlan::Initial(query);
  visited.insert(initial.Hash());
  arena.push_back(initial);
  heap.push({Score(query, embed, initial, &result.evaluations), 0});

  bool have_complete = false;
  float best_complete_score = 0.0f;
  plan::PartialPlan best_complete;
  plan::PartialPlan last_popped = initial;

  auto out_of_time = [&] {
    return options.time_cutoff_ms > 0.0 && watch.ElapsedMs() >= options.time_cutoff_ms;
  };

  while (!heap.empty()) {
    if (options.max_expansions > 0 && result.expansions >= options.max_expansions) break;
    if (options.max_expansions == 0) break;  // Pure hurry-up mode.
    if (out_of_time()) break;
    const HeapEntry top = heap.top();
    if (options.early_stop && have_complete && top.score >= best_complete_score) break;
    heap.pop();
    const plan::PartialPlan current = arena[top.idx];
    last_popped = current;
    ++result.expansions;

    for (plan::PartialPlan& child : Children(query, current)) {
      const uint64_t h = child.Hash();
      if (!visited.insert(h).second) continue;
      const float score = Score(query, embed, child, &result.evaluations);
      if (child.IsComplete()) {
        if (!have_complete || score < best_complete_score) {
          have_complete = true;
          best_complete_score = score;
          best_complete = child;
        }
      } else {
        arena.push_back(std::move(child));
        heap.push({score, arena.size() - 1});
      }
    }
  }

  if (!have_complete) {
    // Hurry-up mode (§4.2): greedily descend from the most promising state.
    result.hurried = true;
    plan::PartialPlan current = last_popped;
    while (!current.IsComplete()) {
      std::vector<plan::PartialPlan> kids = Children(query, current);
      NEO_CHECK_MSG(!kids.empty(), "search: dead-end state");
      float best_score = 0.0f;
      size_t best_idx = 0;
      for (size_t i = 0; i < kids.size(); ++i) {
        const float s = Score(query, embed, kids[i], &result.evaluations);
        if (i == 0 || s < best_score) {
          best_score = s;
          best_idx = i;
        }
      }
      current = std::move(kids[best_idx]);
    }
    best_complete = current;
    best_complete_score = 0.0f;
    have_complete = true;
  }

  result.plan = best_complete;
  result.predicted_cost = best_complete_score;
  result.wall_ms = watch.ElapsedMs();
  return result;
}

}  // namespace neo::core
