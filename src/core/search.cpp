#include "src/core/search.h"

#include <algorithm>
#include <cstring>

#include "src/engine/latency_model.h"
#include "src/util/alloc_counter.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"

namespace neo::core {

namespace {

/// Path-copies `root`, replacing the (unique) node `target` with
/// `replacement`. Returns nullptr if `target` is not in this tree.
plan::NodeRef ReplaceNode(const plan::NodeRef& root, const plan::PlanNode* target,
                          const plan::NodeRef& replacement) {
  if (root.get() == target) return replacement;
  if (!root->is_join) return nullptr;
  if (plan::NodeRef l = ReplaceNode(root->left, target, replacement)) {
    return plan::MakeJoin(root->join_op, l, root->right);
  }
  if (plan::NodeRef r = ReplaceNode(root->right, target, replacement)) {
    return plan::MakeJoin(root->join_op, root->left, r);
  }
  return nullptr;
}

/// First unspecified leaf in pre-order (or nullptr).
const plan::PlanNode* FirstUnspecified(const plan::PlanNode& node) {
  if (!node.is_join) {
    return node.scan_op == plan::ScanOp::kUnspecified ? &node : nullptr;
  }
  if (node.num_unspecified == 0) return nullptr;
  if (const plan::PlanNode* l = FirstUnspecified(*node.left)) return l;
  return FirstUnspecified(*node.right);
}

/// Largest subtree (in packed-forest nodes) eligible for the shared leaf
/// tier: leaves and first-order joins — the rows every fresh search
/// recomputes in its first expansion rounds.
constexpr int kLeafTierMaxNodes = 3;

/// Kernel mode/ISA bits folded into every shared-cache salt; the low tag bit
/// keeps any salt from colliding with a raw fingerprint.
uint64_t KernelModeBits() {
  return (static_cast<uint64_t>(nn::ActiveKernelIsa()) << 2) |
         (nn::UseReferenceKernels() ? 2u : 0u) | 1u;
}

}  // namespace

void PlanSearch::ChildrenInto(const query::Query& query,
                              const plan::PartialPlan& plan,
                              std::vector<plan::PartialPlan>* out) const {
  // Children per the paper (§4.2): (a) turn an unspecified scan anywhere in
  // the forest into a table or index scan, (b) merge two roots with a join
  // operator (both orientations: left = probe/outer, right = build/inner).
  //
  // One deviation for tractability: only the *first* unspecified leaf (in
  // pre-order over the forest) may be specified at each step. Every complete
  // plan remains reachable (leaves can be specified in the forced order
  // before/after any join), but the 2^n duplicate intermediate states that
  // arbitrary specification orders generate are gone.
  out->clear();
  const catalog::Schema& schema = featurizer_->schema();
  const size_t n_roots = plan.roots.size();
  // Upper bound: 2 scan specializations per root + 3 join ops per ordered
  // root pair (only the first unspecified leaf is expanded, but reserving the
  // per-root bound keeps this allocation-free for every reachable state).
  out->reserve(2 * n_roots + 3 * n_roots * (n_roots - 1));

  auto with_replaced_root = [&](size_t root_idx, plan::NodeRef new_root) {
    plan::PartialPlan child;
    child.query = plan.query;
    child.roots = plan.roots;
    child.roots[root_idx] = std::move(new_root);
    return child;
  };

  // (a) Specify the first unspecified leaf.
  for (size_t i = 0; i < n_roots; ++i) {
    const plan::PlanNode* leaf = FirstUnspecified(*plan.roots[i]);
    if (leaf == nullptr) continue;
    out->push_back(with_replaced_root(
        i, ReplaceNode(plan.roots[i], leaf,
                       plan::MakeScan(plan::ScanOp::kTable, leaf->table_id,
                                      leaf->rel_mask))));
    if (engine::IndexScanUsable(schema, query, leaf->table_id)) {
      out->push_back(with_replaced_root(
          i, ReplaceNode(plan.roots[i], leaf,
                         plan::MakeScan(plan::ScanOp::kIndex, leaf->table_id,
                                        leaf->rel_mask))));
    }
    break;  // Forced specification order: only the first leaf.
  }

  // (b) Join two roots (any specification state), both orientations.
  constexpr plan::JoinOp kOps[] = {plan::JoinOp::kHash, plan::JoinOp::kMerge,
                                   plan::JoinOp::kLoop};
  auto with_joined = [&](size_t a, size_t b, plan::JoinOp op) {
    plan::PartialPlan child;
    child.query = plan.query;
    child.roots.reserve(n_roots - 1);
    for (size_t i = 0; i < n_roots; ++i) {
      if (i == a || i == b) continue;
      child.roots.push_back(plan.roots[i]);
    }
    child.roots.push_back(plan::MakeJoin(op, plan.roots[a], plan.roots[b]));
    return child;
  };
  for (size_t a = 0; a < n_roots; ++a) {
    for (size_t b = 0; b < n_roots; ++b) {
      if (a == b) continue;
      if (!query.MasksJoinable(plan.roots[a]->rel_mask, plan.roots[b]->rel_mask)) {
        continue;
      }
      for (plan::JoinOp op : kOps) out->push_back(with_joined(a, b, op));
    }
  }
}

std::vector<plan::PartialPlan> PlanSearch::Children(
    const query::Query& query, const plan::PartialPlan& plan) const {
  std::vector<plan::PartialPlan> children;
  ChildrenInto(query, plan, &children);
  return children;
}

SearchResult PlanSearch::GreedyPlan(const query::Query& query) {
  SearchOptions options;
  options.max_expansions = 0;  // Forces immediate hurry-up behavior.
  options.early_stop = false;
  return FindPlan(query, options);
}

void PlanSearch::SyncCache(const query::Query& query, const SearchOptions& options) {
  const size_t cap = options.score_cache_cap > 0
                         ? static_cast<size_t>(options.score_cache_cap)
                         : 0;
  const size_t act_cap = options.activation_cache_cap > 0
                             ? static_cast<size_t>(options.activation_cache_cap)
                             : 0;
  if (cache_valid_ && cache_query_fp_ == query.fingerprint &&
      cache_version_ == net_->version() &&
      cache_reference_mode_ == nn::UseReferenceKernels() &&
      cache_kernel_isa_ == nn::ActiveKernelIsa() &&
      cache_encoding_epoch_ == featurizer_->encoding_epoch() &&
      (shared_ != nullptr || (cache_cap_ == cap && act_cache_cap_ == act_cap))) {
    return;
  }
  if (shared_ == nullptr) {
    // A changed cap also rebuilds: re-capping a live LRU is not worth the
    // complexity for an option that changes between searches, not within one.
    // The activation cache shares the validity triple (its entries depend on
    // the query embedding and the weights exactly like scores do).
    score_cache_.Clear(cap);
    activation_cache_.Clear(act_cap);
    cache_cap_ = cap;
    act_cache_cap_ = act_cap;
  } else {
    // Shared mode: the global maps are never cleared; staleness is handled
    // by re-salting, so entries from other tuples are simply never probed.
    // The mode bits get a low tag bit so a (fp, version) pair can never
    // produce the same salt as a raw fingerprint.
    salt_ = util::Mix64(util::HashCombine(
        util::HashCombine(
            util::HashCombine(util::HashCombine(query.fingerprint,
                                                net_->version()),
                              KernelModeBits()),
            shared_generation_),
        featurizer_->encoding_epoch()));
  }
  cache_query_fp_ = query.fingerprint;
  cache_version_ = net_->version();
  cache_reference_mode_ = nn::UseReferenceKernels();
  cache_kernel_isa_ = nn::ActiveKernelIsa();
  cache_encoding_epoch_ = featurizer_->encoding_epoch();
  cache_valid_ = true;
}

float PlanSearch::ScoreUncached(const query::Query& query,
                                const nn::Matrix& query_embedding,
                                const plan::PartialPlan& plan, uint64_t hash,
                                SearchResult* result) {
  ++result->evaluations;
  nn::TreeStructure tree;
  nn::Matrix features;
  featurizer_->EncodePlan(query, plan, &tree, &features);
  const float score =
      net_->PredictWithEmbedding(query_embedding, tree, features, &net_ctx_);
  if (shared_ != nullptr) {
    if (shared_->scores.Insert(util::HashCombine(hash, salt_), score)) {
      ++result->cache_evictions;
    }
  } else if (score_cache_.Insert(hash, score)) {
    ++result->cache_evictions;
  }
  return score;
}

float PlanSearch::Score(const query::Query& query, const nn::Matrix& query_embedding,
                        const plan::PartialPlan& plan, const SearchOptions& options,
                        SearchResult* result) {
  SyncCache(query, options);
  const uint64_t h = plan.Hash();
  if (shared_ != nullptr) {
    float v = 0.0f;
    if (shared_->scores.Lookup(util::HashCombine(h, salt_), &v)) {
      ++result->cache_hits;
      return v;
    }
  } else if (const float* hit = score_cache_.Find(h)) {
    ++result->cache_hits;
    return *hit;
  }
  return ScoreUncached(query, query_embedding, plan, h, result);
}

void PlanSearch::ScoreAll(const query::Query& query,
                          const nn::Matrix& query_embedding,
                          const std::vector<plan::PartialPlan>& plans,
                          const std::vector<uint64_t>* hashes,
                          const SearchOptions& options, SearchResult* result,
                          std::vector<float>* out) {
  SyncCache(query, options);
  NEO_CHECK(hashes == nullptr || hashes->size() == plans.size());
  std::vector<float>& scores = *out;
  scores.assign(plans.size(), 0.0f);
  std::vector<const plan::PartialPlan*>& misses = miss_scratch_;
  std::vector<size_t>& miss_idx = miss_idx_scratch_;
  std::vector<uint64_t>& miss_hash = miss_hash_scratch_;
  misses.clear();
  miss_idx.clear();
  miss_hash.clear();
  misses.reserve(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    const uint64_t h = hashes != nullptr ? (*hashes)[i] : plans[i].Hash();
    bool hit = false;
    float v = 0.0f;
    if (shared_ != nullptr) {
      hit = shared_->scores.Lookup(util::HashCombine(h, salt_), &v);
    } else if (const float* p = score_cache_.Find(h)) {
      hit = true;
      v = *p;
    }
    if (hit) {
      ++result->cache_hits;
      scores[i] = v;
    } else {
      misses.push_back(&plans[i]);
      miss_idx.push_back(i);
      miss_hash.push_back(h);
    }
  }
  if (misses.empty()) return;

  if (options.batched) {
    result->evaluations += misses.size();
    featurizer_->EncodePlanBatch(query, misses, &batch_scratch_);

    // Incremental tree-conv inference: probe the activation cache per packed
    // node row, serve hits, and hand the network a store slab for the dirty
    // rows. Probing only touches (Find splices, never reallocates), and all
    // inserts happen after the forward pass, so the cached pointers the
    // network reads stay valid throughout.
    const bool use_act = options.incremental && !nn::UseReferenceKernels();
    const nn::ActivationReuse* reuse = nullptr;
    const size_t entry_floats = static_cast<size_t>(net_->TotalConvChannels());
    const bool leaf_tier = use_act && shared_ != nullptr && leaf_tier_enabled_;
    {
      // NN-eval region: the probe loops, slab writes, and the batched forward
      // are the steady-state hot section. With a warmed search instance the
      // whole block performs zero heap allocations (the slab arena resets to
      // one high-water block; every network buffer is capacity-reused) —
      // benches assert this via util::RegionAllocs. Cache population below
      // stays OUTSIDE the region: it is proportional to newly discovered
      // subtrees, not NN work, and vanishes as the caches warm.
      util::AllocRegionScope alloc_region;
      if (use_act) {
        const size_t n_rows = batch_scratch_.node_fp.size();
        reuse_scratch_.cached.assign(n_rows, nullptr);
        reuse_scratch_.store.assign(n_rows, nullptr);
        slab_arena_.Reset();
        size_t n_dirty = 0;
        if (shared_ != nullptr) {
          // Shared mode sizes the slab for EVERY row: hits are copied out of
          // the global map under the shard lock into this search's private
          // slab (a pointer into the map could be evicted out from under the
          // forward pass by a concurrent search), and dirty rows are computed
          // into their own slots for the post-forward inserts.
          if (leaf_tier) {
            // Packed-forest subtree sizes for the leaf-tier gate: pre-order
            // packing puts children at higher indices, so a descending scan
            // sees every child before its parent.
            subtree_size_scratch_.assign(n_rows, 1);
            for (size_t i = n_rows; i-- > 0;) {
              const int l = batch_scratch_.forest.left[i];
              const int r = batch_scratch_.forest.right[i];
              if (l >= 0) subtree_size_scratch_[i] += subtree_size_scratch_[static_cast<size_t>(l)];
              if (r >= 0) subtree_size_scratch_[i] += subtree_size_scratch_[static_cast<size_t>(r)];
            }
          }
          float* slab = slab_arena_.AllocateArray<float>(n_rows * entry_floats);
          for (size_t i = 0; i < n_rows; ++i) {
            float* slot = slab + i * entry_floats;
            const uint64_t fp = batch_scratch_.node_fp[i];
            bool hit = shared_->activations.Visit(
                util::HashCombine(fp, salt_), [slot](const std::vector<float>& v) {
                  std::copy(v.begin(), v.end(), slot);
                });
            if (!hit && leaf_tier &&
                subtree_size_scratch_[i] <= kLeafTierMaxNodes) {
              // Cross-request tier: rows another search (same embedding bits,
              // weights, kernel mode, generation) already computed.
              hit = shared_->leaf_activations.Visit(
                  util::HashCombine(fp, leaf_salt_),
                  [slot](const std::vector<float>& v) {
                    std::copy(v.begin(), v.end(), slot);
                  });
              if (hit) ++result->leaf_tier_hits;
            }
            if (hit) {
              reuse_scratch_.cached[i] = slot;
              ++result->activation_hits;
            } else {
              reuse_scratch_.store[i] = slot;
              ++n_dirty;
            }
          }
        } else {
          for (size_t i = 0; i < n_rows; ++i) {
            if (std::vector<float>* hit = activation_cache_.Find(batch_scratch_.node_fp[i])) {
              reuse_scratch_.cached[i] = hit->data();
              ++result->activation_hits;
            } else {
              ++n_dirty;
            }
          }
          float* slab = slab_arena_.AllocateArray<float>(n_dirty * entry_floats);
          size_t slot = 0;
          for (size_t i = 0; i < n_rows; ++i) {
            if (reuse_scratch_.cached[i] == nullptr) {
              reuse_scratch_.store[i] = slab + (slot++) * entry_floats;
            }
          }
        }
        const size_t layers = net_->config().tree_channels.size();
        result->rows_recomputed += n_dirty * layers;
        result->rows_reused += (n_rows - n_dirty) * layers;
        reuse = &reuse_scratch_;
      }

      if (scorer_ != nullptr) {
        predicted_scratch_ = scorer_->ScoreBatch(net_, query_embedding,
                                                 batch_scratch_, reuse, &net_ctx_);
      } else {
        net_->PredictBatchInto(query_embedding, batch_scratch_, &net_ctx_, reuse,
                               &predicted_scratch_);
      }
    }
    const std::vector<float>& predicted = predicted_scratch_;

    if (use_act) {
      // Populate the cache from the slab. Duplicate fingerprints within one
      // batch (sibling candidates share almost every subtree) insert once.
      // Shared-mode concurrent inserts of one fingerprint are idempotent:
      // the salt pins (query, version, kernel mode, generation), so both
      // writers computed bitwise-identical rows.
      act_seen_scratch_.Clear();
      for (size_t i = 0; i < batch_scratch_.node_fp.size(); ++i) {
        const float* src = reuse_scratch_.store[i];
        if (src == nullptr) continue;
        const uint64_t fp = batch_scratch_.node_fp[i];
        if (!act_seen_scratch_.Insert(fp)) continue;
        if (shared_ != nullptr) {
          shared_->activations.Insert(util::HashCombine(fp, salt_),
                                      std::vector<float>(src, src + entry_floats));
          if (leaf_tier && subtree_size_scratch_[i] <= kLeafTierMaxNodes) {
            shared_->leaf_activations.Insert(
                util::HashCombine(fp, leaf_salt_),
                std::vector<float>(src, src + entry_floats));
          }
        } else {
          activation_cache_.Insert(fp, std::vector<float>(src, src + entry_floats));
        }
      }
    }

    for (size_t m = 0; m < misses.size(); ++m) {
      scores[miss_idx[m]] = predicted[m];
      if (shared_ != nullptr) {
        if (shared_->scores.Insert(util::HashCombine(miss_hash[m], salt_),
                                   predicted[m])) {
          ++result->cache_evictions;
        }
      } else if (score_cache_.Insert(miss_hash[m], predicted[m])) {
        ++result->cache_evictions;
      }
    }
  } else {
    // Per-candidate fallback, reusing the hashes from the miss scan.
    for (size_t m = 0; m < misses.size(); ++m) {
      scores[miss_idx[m]] =
          ScoreUncached(query, query_embedding, *misses[m], miss_hash[m], result);
    }
  }
}

SearchResult PlanSearch::FindPlan(const query::Query& query,
                                  const SearchOptions& options) {
  util::Stopwatch watch;
  SearchResult result;
  // Kernel-level parallelism for every forward pass issued below. Output
  // rows are partitioned, never reductions, so any degree scores plans
  // bit-identically (see the parallelism model in search.h).
  nn::ComputeThreadsScope compute_scope(options.threads);
  const nn::Matrix query_vec = featurizer_->EncodeQuery(query);
  const nn::Matrix embed = net_->EmbedQuery(query_vec);

  // Shared leaf-tier salt for this search: the embedding's BIT PATTERN (the
  // activations' true query dependency) plus (version, kernel mode,
  // generation). Gated on a fingerprint-pure featurizer — with a cardinality
  // channel, node features depend on the query beyond subtree_fp and rows
  // must not cross queries.
  leaf_tier_enabled_ =
      shared_ != nullptr &&
      featurizer_->config().card_channel == featurize::CardChannel::kNone;
  if (leaf_tier_enabled_) {
    uint64_t ehash = 0x6c656166u;  // "leaf"
    const float* e = embed.Row(0);
    for (int c = 0; c < embed.cols(); ++c) {
      uint32_t bits;
      std::memcpy(&bits, &e[c], sizeof(bits));
      ehash = util::HashCombine(ehash, bits);
    }
    leaf_salt_ = util::Mix64(util::HashCombine(
        util::HashCombine(util::HashCombine(ehash, net_->version()),
                          KernelModeBits()),
        shared_generation_));
  }

  // Round state lives in members (capacity-reused across requests); heap_ is
  // an explicit push_heap/pop_heap min-heap — the same algorithm
  // std::priority_queue wraps, without a fresh backing vector per call.
  std::vector<plan::PartialPlan>& arena = state_arena_;
  arena.clear();
  heap_.clear();
  visited_.Clear();
  const auto heap_push = [this](float score, size_t idx) {
    heap_.push_back({score, idx});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<HeapEntry>());
  };

  plan::PartialPlan initial = plan::PartialPlan::Initial(query);
  visited_.Insert(initial.Hash());
  arena.push_back(initial);
  heap_push(Score(query, embed, initial, options, &result), 0);

  bool have_complete = false;
  float best_complete_score = 0.0f;
  plan::PartialPlan best_complete;
  size_t last_popped_idx = 0;

  auto out_of_time = [&] {
    return options.time_cutoff_ms > 0.0 && watch.ElapsedMs() >= options.time_cutoff_ms;
  };

  // Speculative multi-expansion: each round pops up to `speculation` states
  // and scores the merged, deduped child set in one batch. speculation == 1
  // reproduces the classic one-pop-per-round best-first loop exactly.
  const int speculation = std::max(1, options.speculation);
  round_states_.clear();
  round_states_.reserve(static_cast<size_t>(speculation));
  bool stop = false;
  while (!stop && !heap_.empty()) {
    if (options.max_expansions == 0) break;  // Pure hurry-up mode.
    round_states_.clear();
    while (static_cast<int>(round_states_.size()) < speculation && !heap_.empty()) {
      if (options.max_expansions > 0 && result.expansions >= options.max_expansions) {
        stop = true;
        break;
      }
      if (out_of_time()) {
        stop = true;
        break;
      }
      const HeapEntry top = heap_.front();
      if (options.early_stop && have_complete && top.score >= best_complete_score) {
        stop = true;
        break;
      }
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<HeapEntry>());
      heap_.pop_back();
      round_states_.push_back(top.idx);
      last_popped_idx = top.idx;
      ++result.expansions;
    }
    if (round_states_.empty()) break;

    // Children of every popped state, merged and deduped against `visited_`.
    // The hashes computed for dedup are reused for the score-cache probes.
    child_scratch_.clear();
    child_hash_scratch_.clear();
    for (const size_t state_idx : round_states_) {
      ChildrenInto(query, arena[state_idx], &round_child_scratch_);
      for (plan::PartialPlan& child : round_child_scratch_) {
        const uint64_t h = child.Hash();
        if (!visited_.Insert(h)) continue;
        child_scratch_.push_back(std::move(child));
        child_hash_scratch_.push_back(h);
      }
    }
    ScoreAll(query, embed, child_scratch_, &child_hash_scratch_, options,
             &result, &scores_scratch_);
    const std::vector<float>& scores = scores_scratch_;

    for (size_t i = 0; i < child_scratch_.size(); ++i) {
      plan::PartialPlan& child = child_scratch_[i];
      const float score = scores[i];
      if (child.IsComplete()) {
        if (!have_complete || score < best_complete_score) {
          have_complete = true;
          best_complete_score = score;
          best_complete = std::move(child);
        }
      } else {
        arena.push_back(std::move(child));
        heap_push(score, arena.size() - 1);
      }
    }
  }

  if (!have_complete) {
    // Hurry-up mode (§4.2): greedily descend from the most promising state.
    // Children the best-first phase already scored come out of the cache.
    result.hurried = true;
    plan::PartialPlan current = arena[last_popped_idx];
    while (!current.IsComplete()) {
      ChildrenInto(query, current, &child_scratch_);
      NEO_CHECK_MSG(!child_scratch_.empty(), "search: dead-end state");
      ScoreAll(query, embed, child_scratch_, /*hashes=*/nullptr, options,
               &result, &scores_scratch_);
      const std::vector<float>& scores = scores_scratch_;
      size_t best_idx = 0;
      for (size_t i = 1; i < scores.size(); ++i) {
        if (scores[i] < scores[best_idx]) best_idx = i;
      }
      current = std::move(child_scratch_[best_idx]);
      best_complete_score = scores[best_idx];  // Final step: returned plan's score.
    }
    best_complete = std::move(current);
    have_complete = true;
  }

  result.plan = best_complete;
  result.predicted_cost = best_complete_score;
  result.wall_ms = watch.ElapsedMs();
  return result;
}

}  // namespace neo::core
