// Per-query circuit breaker: the serving-side guardrail that guarantees a
// regression is never served indefinitely (paper §6.3.3's safety argument —
// a learned optimizer must survive its own mistakes; "Query Optimization in
// the Wild" makes the production case).
//
// One deterministic state machine per Query::fingerprint:
//
//             N consecutive regressions
//   CLOSED ------------------------------> OPEN
//     ^  \___ non-regression resets the      |  cooldown fallback serves
//     |       consecutive counter            v  (exponential backoff)
//     |                                   HALF-OPEN
//     |   probe wins                         |   probe regresses: cooldown
//     +--------------------------------------+   doubles (capped), re-OPEN
//
// CLOSED serves the learned plan and counts consecutive regressions (learned
// latency beyond `regression_factor` x the per-query expert baseline, or a
// failed/timed-out execution). After `trip_after` consecutive regressions
// the breaker trips OPEN: the expert/fallback plan is served for `cooldown`
// requests, then one HALF-OPEN probe re-admits the learned plan. A winning
// probe closes the breaker (and resets the backoff); a losing probe re-opens
// it with the cooldown doubled up to `max_cooldown`. All transitions are
// pure functions of the observed outcome sequence — no clocks, no
// randomness — so the machine is unit-testable and replayable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace neo::core {

struct CircuitBreakerOptions {
  bool enabled = false;
  /// Consecutive regressions (beyond regression_factor) that trip the
  /// breaker open.
  int trip_after = 3;
  /// A learned serve regresses when its incurred latency exceeds
  /// regression_factor * Baseline(query), or when the execution failed.
  double regression_factor = 1.5;
  /// Fallback serves before the first half-open probe after a trip.
  int initial_cooldown = 1;
  /// Exponential-backoff cap on the cooldown (doubles per failed probe).
  int max_cooldown = 16;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Stats {
    size_t trips = 0;            ///< Closed -> open transitions.
    size_t reopens = 0;          ///< Half-open probe lost; backoff doubled.
    size_t recoveries = 0;       ///< Half-open probe won; breaker closed.
    size_t fallback_serves = 0;  ///< Requests answered with the expert plan.
    size_t probes = 0;           ///< Half-open learned-plan probes issued.
  };

  CircuitBreaker() = default;
  explicit CircuitBreaker(CircuitBreakerOptions options) : options_(options) {}

  /// Serving decision for one request of `fp`. True: serve the learned plan
  /// (closed, or a half-open probe). False: serve the fallback plan (open;
  /// advances the cooldown countdown toward the next probe).
  bool AllowLearned(uint64_t fp);

  /// Reports the outcome of a learned serve that AllowLearned admitted.
  void RecordLearnedOutcome(uint64_t fp, bool regressed);

  State StateOf(uint64_t fp) const;
  const Stats& stats() const { return stats_; }
  const CircuitBreakerOptions& options() const { return options_; }
  size_t num_tracked() const { return entries_.size(); }
  void Reset() { entries_.clear(); stats_ = Stats(); }

 private:
  struct Entry {
    State state = State::kClosed;
    int consecutive_regressions = 0;
    int cooldown = 0;   ///< Current backoff length (fallback serves per cycle).
    int remaining = 0;  ///< Fallback serves left before the next probe.
  };

  CircuitBreakerOptions options_;
  std::unordered_map<uint64_t, Entry> entries_;
  Stats stats_;
};

}  // namespace neo::core
