// Neo's experience store (paper §2, §4): complete plans with observed
// latencies, decomposed into partial-plan training states labeled with the
// minimum cost of any experienced complete plan containing them:
//     M(P_i) ~ min{ C(P_f) | P_i subplan of P_f, P_f in experience }.
//
// States are deduplicated by (query, state-hash); each keeps the minimum
// cost seen, so repeated executions of similar plans tighten the labels.
// The cost C is pluggable (paper §6.4.4): absolute latency, or latency
// relative to a per-query baseline.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/featurize/featurizer.h"
#include "src/plan/plan.h"

namespace neo::core {

enum class CostFunction { kLatency, kRelative };
const char* CostFunctionName(CostFunction f);

class Experience {
 public:
  explicit Experience(const featurize::Featurizer* featurizer)
      : featurizer_(featurizer) {}

  /// Records a complete plan execution. `cost` is C(P_f) under the active
  /// cost function. Decomposes into training states immediately (encoding
  /// is deterministic, so states are featurized once).
  void AddCompletePlan(const query::Query& query, const plan::PartialPlan& plan,
                       double cost);

  /// Best (minimum) recorded cost of complete plans for a query; +inf if
  /// none.
  double BestCost(int query_id) const;

  struct TrainingBatchView {
    std::vector<const nn::PlanSample*> samples;
    std::vector<float> targets;  ///< Normalized.
  };

  /// Assembles a (subsampled, shuffled) training set. Targets are
  /// log1p-transformed and standardized; the transform parameters are
  /// refitted on the current store.
  TrainingBatchView Sample(size_t max_samples, util::Rng& rng);

  /// Normalizes a raw cost with the last-fitted transform (for diagnostics).
  float NormalizeCost(double cost) const;

  size_t NumStates() const { return states_.size(); }
  size_t NumCompletePlans() const { return num_complete_; }

 private:
  struct State {
    nn::PlanSample sample;
    double min_cost;
  };

  const featurize::Featurizer* featurizer_;
  std::unordered_map<uint64_t, State> states_;  ///< Key: (query, state hash).
  std::unordered_map<int, double> best_cost_;
  size_t num_complete_ = 0;
  double target_mean_ = 0.0;
  double target_std_ = 1.0;
};

}  // namespace neo::core
