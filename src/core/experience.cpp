#include "src/core/experience.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"

namespace neo::core {

const char* CostFunctionName(CostFunction f) {
  switch (f) {
    case CostFunction::kLatency: return "workload-latency";
    case CostFunction::kRelative: return "relative-to-baseline";
  }
  return "?";
}

void Experience::AddCompletePlan(const query::Query& query,
                                 const plan::PartialPlan& plan, double cost) {
  ++num_complete_;
  auto [bit, inserted] = best_cost_.emplace(query.id, cost);
  if (!inserted) bit->second = std::min(bit->second, cost);

  for (const plan::PartialPlan& state : plan::DecomposeForTraining(plan)) {
    const uint64_t key = util::HashCombine(query.fingerprint + 0x99ULL, state.Hash());
    auto it = states_.find(key);
    if (it != states_.end()) {
      it->second.min_cost = std::min(it->second.min_cost, cost);
      continue;
    }
    State s;
    s.sample = featurizer_->Encode(query, state);
    s.min_cost = cost;
    states_.emplace(key, std::move(s));
  }
}

double Experience::BestCost(int query_id) const {
  auto it = best_cost_.find(query_id);
  return it == best_cost_.end() ? std::numeric_limits<double>::infinity() : it->second;
}

namespace {
// Pure-log transform with a floor: preserves multiplicative structure (a
// plan 10x slower is a constant offset away) regardless of the absolute
// latency scale, unlike log1p which degenerates to linear for costs << 1.
constexpr double kCostFloor = 1e-6;
double TransformCost(double cost) { return std::log(std::max(kCostFloor, cost)); }
}  // namespace

float Experience::NormalizeCost(double cost) const {
  return static_cast<float>((TransformCost(cost) - target_mean_) / target_std_);
}

Experience::TrainingBatchView Experience::Sample(size_t max_samples, util::Rng& rng) {
  // Refit the target transform.
  double sum = 0.0, sum2 = 0.0;
  for (const auto& [key, state] : states_) {
    const double t = TransformCost(state.min_cost);
    sum += t;
    sum2 += t * t;
  }
  const double n = std::max<double>(1.0, static_cast<double>(states_.size()));
  target_mean_ = sum / n;
  target_std_ = std::sqrt(std::max(1e-8, sum2 / n - target_mean_ * target_mean_));

  std::vector<const State*> all;
  all.reserve(states_.size());
  for (const auto& [key, state] : states_) all.push_back(&state);
  rng.Shuffle(all);
  if (all.size() > max_samples) all.resize(max_samples);

  TrainingBatchView view;
  view.samples.reserve(all.size());
  view.targets.reserve(all.size());
  for (const State* s : all) {
    view.samples.push_back(&s->sample);
    view.targets.push_back(NormalizeCost(s->min_cost));
  }
  return view;
}

}  // namespace neo::core
