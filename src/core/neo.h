// Neo (Neural Optimizer): the end-to-end learned query optimizer of the
// paper, tying together featurization, the value network, DNN-guided search,
// the experience store, and the execution engine.
//
// Lifecycle (paper §2, Figure 1):
//   1. Bootstrap(queries, expert)  - "Expertise Collection": execute the
//      expert optimizer's plans, seed the experience store, record per-query
//      baselines (used by the relative cost function).
//   2. RunEpisode(queries)         - "Model Building + Plan Search + Model
//      Refinement": retrain the value network on experience, then for each
//      training query search a plan, execute it, and add the observed
//      latency back to experience (value iteration).
//   3. Plan / PlanAndExecute       - inference on arbitrary queries.
//
// Guardrails (serving robustness; see also circuit_breaker.h, model_health.h,
// util/fault_injector.h). A learned optimizer in the serving path needs a
// bounded worst case, not just a good average — one bad retrain or one
// mispredicted plan must not dominate workload latency. Three independent,
// individually-toggleable layers provide that bound:
//
//   1. Execution watchdog (GuardrailConfig::watchdog): every guarded serve
//      carries a deadline — an absolute ms budget and/or a multiple of the
//      query's recorded expert baseline, whichever is tighter. An execution
//      that exceeds it is reported as DEADLINE_EXCEEDED and incurs only the
//      deadline latency; the clipped observation still feeds experience (the
//      same semantics as NeoConfig::latency_clip_ms, applied at execution
//      time). The deadline applies to learned AND fallback serves, so total
//      guarded latency is structurally bounded by
//      baseline_factor x (expert workload latency), whatever faults occur.
//   2. Per-query circuit breaker (GuardrailConfig::breaker): after
//      `trip_after` consecutive regressed learned serves of one fingerprint,
//      the expert's bootstrap plan is served instead, with exponential-
//      backoff half-open probes to re-admit the learned plan once it
//      recovers. Deterministic state machine — see circuit_breaker.h.
//   3. Model-health monitor (GuardrailConfig::health): after each Retrain,
//      the network is screened for non-finite loss/weights and loss
//      divergence; unhealthy retrains roll back to the last-good snapshot
//      (weights + Adam moments), bumping the weight version so every
//      score/activation cache invalidates — see model_health.h.
//
// Determinism: guards change only *which* plan executes and *how* its
// latency is accounted, decided serially at execution time; the planning
// phase always searches the learned plan (even when a breaker is open), so
// episode results remain bit-identical at any thread count. With every
// guard disabled (the default) the serve path is the exact pre-guardrail
// code path — parity by construction.
#pragma once

#include <memory>
#include <mutex>

#include "src/core/circuit_breaker.h"
#include "src/core/experience.h"
#include "src/core/search.h"
#include "src/engine/execution_engine.h"
#include "src/nn/model_health.h"
#include "src/optim/optimizer.h"
#include "src/util/fault_injector.h"

namespace neo::store {
class ExperienceStore;
}

namespace neo::core {

/// Execution-watchdog deadlines (0 = that bound disabled).
struct WatchdogOptions {
  /// Absolute per-execution deadline in ms.
  double deadline_ms = 0.0;
  /// Deadline as a multiple of the query's recorded expert baseline; only
  /// applies to queries with a baseline (Bootstrap records one per query).
  /// When both bounds are set the tighter one wins.
  double baseline_factor = 0.0;
};

/// The three guardrail layers. All disabled by default; see the file-level
/// guardrail notes above.
struct GuardrailConfig {
  WatchdogOptions watchdog;
  CircuitBreakerOptions breaker;
  nn::ModelHealthOptions health;
};

/// Aggregate guardrail counters (local serve counters + breaker stats +
/// health-monitor rollbacks), for tests and the micro_guard bench.
struct GuardStats {
  int64_t learned_serves = 0;     ///< Guarded serves that ran the learned plan.
  int64_t fallback_serves = 0;    ///< Serves answered with the expert plan.
  int64_t timeouts = 0;           ///< Serves cut off by the watchdog.
  int64_t injected_failures = 0;  ///< Serves that died to an injected fault.
  int64_t breaker_trips = 0;
  int64_t breaker_reopens = 0;
  int64_t breaker_recoveries = 0;
  int64_t breaker_probes = 0;
  int64_t health_rollbacks = 0;
};

struct NeoConfig {
  CostFunction cost_function = CostFunction::kLatency;
  int epochs_per_episode = 2;
  int batch_size = 64;
  size_t max_train_samples = 3000;
  SearchOptions search;
  /// Episode/training parallelism degree (1 = fully serial). RunEpisode
  /// plans up to this many queries concurrently (one PlanSearch worker
  /// each); Retrain's packed TrainBatch partitions its GEMM rows this wide.
  /// Results are identical at any setting: planning happens against a
  /// frozen network and execution + experience updates run serially in the
  /// shuffled query order afterwards.
  int threads = 1;
  /// Latency clipping applied when adding experience (0 = off). Used by the
  /// no-demonstration experiment (§6.3.3): clipping destroys the reward
  /// signal beyond the timeout.
  double latency_clip_ms = 0.0;
  /// Serving guardrails (watchdog / breaker / health). All off by default;
  /// see the guardrail notes at the top of this file.
  GuardrailConfig guards;
  nn::ValueNetConfig net;  ///< query_dim / plan_dim are filled from the featurizer.
  uint64_t seed = 17;
};

struct EpisodeStats {
  int episode = 0;
  double train_total_latency_ms = 0.0;  ///< Executed latency over the episode.
  float retrain_loss = 0.0f;            ///< Final minibatch MSE.
  double nn_time_ms = 0.0;              ///< Wall time spent on network training.
  double search_time_ms = 0.0;          ///< Wall time spent searching plans.
  size_t experience_states = 0;
};

class Neo {
 public:
  Neo(const featurize::Featurizer* featurizer, engine::ExecutionEngine* engine,
      NeoConfig config);

  /// Collects expert demonstrations: for each query, runs the expert's plan
  /// on the engine, records it as experience and as the per-query baseline.
  void Bootstrap(const std::vector<const query::Query*>& queries,
                 optim::Optimizer* expert);

  /// One full training episode over the training queries.
  EpisodeStats RunEpisode(const std::vector<const query::Query*>& queries);

  /// Search a plan with the current value network (no execution).
  SearchResult Plan(const query::Query& query);

  /// Search + execute; returns observed latency (ms). Does not learn.
  double PlanAndExecute(const query::Query& query);

  /// Total latency of the current policy over a set of queries (no learning).
  double EvaluateTotalLatency(const std::vector<const query::Query*>& queries);

  /// Executes a query with learning: plan, execute, add to experience.
  /// Returns observed latency. Used by the Ext-JOB incremental-learning
  /// experiment (§6.4.2).
  double ExecuteAndLearn(const query::Query& query);

  /// Re-fits the value network on current experience (called automatically
  /// by RunEpisode; exposed for Fig. 13/14 style offline training).
  float Retrain();

  /// Thread-safe serve entry point for the serving core: executes
  /// `learned_plan` through the guarded choke point (ServeAndMaybeLearn)
  /// under an internal serve mutex, so N request workers may call this
  /// concurrently — with each other AND with a background Retrain. The
  /// breaker/watchdog state machines, guard counters, and engine accounting
  /// all advance atomically per serve; experience inserts additionally
  /// synchronize with Retrain's sampling via a second internal mutex.
  /// A single caller sees exactly ServeAndMaybeLearn's semantics (guards off
  /// = the pre-guardrail execute path, bit-identical).
  /// `from_search` distinguishes live search results from pinned/fallback
  /// plans for the experience store's mode machine (see store/).
  double Serve(const query::Query& query, const plan::PartialPlan& learned_plan,
               bool learn, bool from_search = true);

  void SetBaseline(int query_id, double latency_ms) {
    baselines_[query_id] = latency_ms;
  }
  double Baseline(int query_id) const;

  /// The bootstrap expert plan recorded for `fingerprint`, or nullptr when
  /// none exists. This is what the circuit breaker serves while open, and
  /// what the serving core's degradation ladder serves at its no-search
  /// level when the experience store has no best-known plan. The map is
  /// populated only by Bootstrap (which must precede serving), so reading it
  /// concurrently from request workers is safe.
  const plan::PartialPlan* FallbackPlan(uint64_t fingerprint) const {
    const auto it = fallback_plans_.find(fingerprint);
    return it == fallback_plans_.end() ? nullptr : &it->second;
  }

  Experience& experience() { return experience_; }
  nn::ValueNetwork& net() { return *net_; }
  PlanSearch& search() { return search_; }
  engine::ExecutionEngine& engine() { return *engine_; }
  const featurize::Featurizer& featurizer() const { return *featurizer_; }
  const NeoConfig& config() const { return config_; }

  double total_nn_time_ms() const { return total_nn_time_ms_; }
  int episodes_run() const { return episodes_run_; }

  /// Attaches a fault injector driving Retrain's weight-corruption site
  /// (latency spikes / execution failures attach to the engine instead, via
  /// ExecutionEngine::SetFaultInjector). nullptr detaches. Not owned; must
  /// outlive this object or be detached first.
  void SetFaultInjector(util::FaultInjector* injector) { fault_injector_ = injector; }

  /// Attaches the durable per-query-type experience store: every serve
  /// through the choke point is recorded (latency + best-plan + cardinality
  /// corrections). nullptr detaches — with no store attached the serve path
  /// is the literal unchanged code. Not owned; must outlive this object or
  /// be detached first.
  void SetExperienceStore(store::ExperienceStore* store) { store_ = store; }
  store::ExperienceStore* experience_store() const { return store_; }

  GuardStats guard_stats() const;
  CircuitBreaker& breaker() { return breaker_; }
  nn::ModelHealthMonitor& health() { return health_; }
  /// True when any guardrail layer is enabled (the guarded serve path runs);
  /// false = the exact pre-guardrail serve code path.
  bool GuardsActive() const;

 private:
  double CostOf(const query::Query& query, double latency_ms) const;

  /// The watchdog deadline for one serve of `query` (0 = none): the tighter
  /// of the absolute deadline and baseline_factor x recorded baseline.
  double EffectiveDeadline(const query::Query& query) const;

  /// The single serve choke point: every execution of a searched plan
  /// (RunEpisode, PlanAndExecute, ExecuteAndLearn) funnels through here.
  /// Guards inactive: executes `learned_plan` exactly as the pre-guardrail
  /// code did. Guards active: consults the breaker for the plan to serve
  /// (learned vs the query's bootstrap fallback), executes it under the
  /// watchdog deadline, reports the outcome back to the breaker, and — when
  /// `learn` — feeds the (possibly deadline-clipped) observation of the plan
  /// that actually ran into experience. Returns the incurred latency.
  double ServeAndMaybeLearn(const query::Query& query,
                            const plan::PartialPlan& learned_plan, bool learn,
                            bool from_search = true);

  /// Feeds one executed serve into the attached experience store (no-op when
  /// detached): the observation itself, plus observed-vs-estimated
  /// cardinality corrections for the executed plan's join subsets when the
  /// featurizer runs the kEstimated channel.
  void RecordStoreFeedback(const query::Query& query,
                           const plan::PartialPlan& plan, double latency_ms,
                           bool from_search);

  const featurize::Featurizer* featurizer_;
  engine::ExecutionEngine* engine_;
  NeoConfig config_;
  std::unique_ptr<nn::ValueNetwork> net_;
  Experience experience_;
  PlanSearch search_;
  /// Extra PlanSearch instances for RunEpisode's concurrent planning phase
  /// (created lazily; each worker thread checks one out, so score caches and
  /// inference scratch are never shared across threads).
  std::vector<std::unique_ptr<PlanSearch>> episode_searches_;
  util::Rng rng_;
  std::unordered_map<int, double> baselines_;
  /// Expert bootstrap plan per Query::fingerprint — what the breaker serves
  /// while open. The breaker only engages for fingerprints present here.
  std::unordered_map<uint64_t, plan::PartialPlan> fallback_plans_;
  CircuitBreaker breaker_;
  nn::ModelHealthMonitor health_;
  util::FaultInjector* fault_injector_ = nullptr;  ///< Not owned; may be null.
  store::ExperienceStore* store_ = nullptr;        ///< Not owned; may be null.
  /// Serializes concurrent Serve() calls through the guarded choke point
  /// (breaker + watchdog + counters advance atomically per serve); mutable so
  /// guard_stats() reads a consistent snapshot. The single-threaded episode
  /// paths never take it — they call ServeAndMaybeLearn directly.
  mutable std::mutex serve_mu_;
  /// Synchronizes experience-store mutation (serves learning) with Retrain's
  /// sampling. Sampled pointers stay valid across concurrent inserts (the
  /// store is node-based and samples are immutable after insert), so only the
  /// map operations themselves need the lock — TrainBatch runs outside it.
  std::mutex experience_mu_;
  double total_nn_time_ms_ = 0.0;
  int episodes_run_ = 0;
  int64_t retrains_run_ = 0;
  // Local guard counters (breaker/health keep their own; composed by
  // guard_stats()).
  int64_t learned_serves_ = 0;
  int64_t timeouts_ = 0;
  int64_t injected_failures_ = 0;
};

}  // namespace neo::core
