// Neo (Neural Optimizer): the end-to-end learned query optimizer of the
// paper, tying together featurization, the value network, DNN-guided search,
// the experience store, and the execution engine.
//
// Lifecycle (paper §2, Figure 1):
//   1. Bootstrap(queries, expert)  - "Expertise Collection": execute the
//      expert optimizer's plans, seed the experience store, record per-query
//      baselines (used by the relative cost function).
//   2. RunEpisode(queries)         - "Model Building + Plan Search + Model
//      Refinement": retrain the value network on experience, then for each
//      training query search a plan, execute it, and add the observed
//      latency back to experience (value iteration).
//   3. Plan / PlanAndExecute       - inference on arbitrary queries.
#pragma once

#include <memory>

#include "src/core/experience.h"
#include "src/core/search.h"
#include "src/engine/execution_engine.h"
#include "src/optim/optimizer.h"

namespace neo::core {

struct NeoConfig {
  CostFunction cost_function = CostFunction::kLatency;
  int epochs_per_episode = 2;
  int batch_size = 64;
  size_t max_train_samples = 3000;
  SearchOptions search;
  /// Episode/training parallelism degree (1 = fully serial). RunEpisode
  /// plans up to this many queries concurrently (one PlanSearch worker
  /// each); Retrain's packed TrainBatch partitions its GEMM rows this wide.
  /// Results are identical at any setting: planning happens against a
  /// frozen network and execution + experience updates run serially in the
  /// shuffled query order afterwards.
  int threads = 1;
  /// Latency clipping applied when adding experience (0 = off). Used by the
  /// no-demonstration experiment (§6.3.3): clipping destroys the reward
  /// signal beyond the timeout.
  double latency_clip_ms = 0.0;
  nn::ValueNetConfig net;  ///< query_dim / plan_dim are filled from the featurizer.
  uint64_t seed = 17;
};

struct EpisodeStats {
  int episode = 0;
  double train_total_latency_ms = 0.0;  ///< Executed latency over the episode.
  float retrain_loss = 0.0f;            ///< Final minibatch MSE.
  double nn_time_ms = 0.0;              ///< Wall time spent on network training.
  double search_time_ms = 0.0;          ///< Wall time spent searching plans.
  size_t experience_states = 0;
};

class Neo {
 public:
  Neo(const featurize::Featurizer* featurizer, engine::ExecutionEngine* engine,
      NeoConfig config);

  /// Collects expert demonstrations: for each query, runs the expert's plan
  /// on the engine, records it as experience and as the per-query baseline.
  void Bootstrap(const std::vector<const query::Query*>& queries,
                 optim::Optimizer* expert);

  /// One full training episode over the training queries.
  EpisodeStats RunEpisode(const std::vector<const query::Query*>& queries);

  /// Search a plan with the current value network (no execution).
  SearchResult Plan(const query::Query& query);

  /// Search + execute; returns observed latency (ms). Does not learn.
  double PlanAndExecute(const query::Query& query);

  /// Total latency of the current policy over a set of queries (no learning).
  double EvaluateTotalLatency(const std::vector<const query::Query*>& queries);

  /// Executes a query with learning: plan, execute, add to experience.
  /// Returns observed latency. Used by the Ext-JOB incremental-learning
  /// experiment (§6.4.2).
  double ExecuteAndLearn(const query::Query& query);

  /// Re-fits the value network on current experience (called automatically
  /// by RunEpisode; exposed for Fig. 13/14 style offline training).
  float Retrain();

  void SetBaseline(int query_id, double latency_ms) {
    baselines_[query_id] = latency_ms;
  }
  double Baseline(int query_id) const;

  Experience& experience() { return experience_; }
  nn::ValueNetwork& net() { return *net_; }
  PlanSearch& search() { return search_; }
  engine::ExecutionEngine& engine() { return *engine_; }
  const NeoConfig& config() const { return config_; }

  double total_nn_time_ms() const { return total_nn_time_ms_; }
  int episodes_run() const { return episodes_run_; }

 private:
  double CostOf(const query::Query& query, double latency_ms) const;

  const featurize::Featurizer* featurizer_;
  engine::ExecutionEngine* engine_;
  NeoConfig config_;
  std::unique_ptr<nn::ValueNetwork> net_;
  Experience experience_;
  PlanSearch search_;
  /// Extra PlanSearch instances for RunEpisode's concurrent planning phase
  /// (created lazily; each worker thread checks one out, so score caches and
  /// inference scratch are never shared across threads).
  std::vector<std::unique_ptr<PlanSearch>> episode_searches_;
  util::Rng rng_;
  std::unordered_map<int, double> baselines_;
  double total_nn_time_ms_ = 0.0;
  int episodes_run_ = 0;
};

}  // namespace neo::core
