#include "src/core/circuit_breaker.h"

#include <algorithm>

namespace neo::core {

bool CircuitBreaker::AllowLearned(uint64_t fp) {
  if (!options_.enabled) return true;
  Entry& e = entries_[fp];
  switch (e.state) {
    case State::kClosed:
    case State::kHalfOpen:
      return true;
    case State::kOpen:
      if (e.remaining > 0) {
        --e.remaining;
        ++stats_.fallback_serves;
        return false;
      }
      // Cooldown exhausted: this request is the half-open probe.
      e.state = State::kHalfOpen;
      ++stats_.probes;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordLearnedOutcome(uint64_t fp, bool regressed) {
  if (!options_.enabled) return;
  Entry& e = entries_[fp];
  switch (e.state) {
    case State::kClosed:
      if (!regressed) {
        e.consecutive_regressions = 0;
        return;
      }
      if (++e.consecutive_regressions >= options_.trip_after) {
        e.state = State::kOpen;
        e.consecutive_regressions = 0;
        e.cooldown = std::max(1, options_.initial_cooldown);
        e.remaining = e.cooldown;
        ++stats_.trips;
      }
      return;
    case State::kHalfOpen:
      if (regressed) {
        // Probe lost: back off exponentially before probing again.
        e.state = State::kOpen;
        e.cooldown = std::min(options_.max_cooldown, std::max(1, e.cooldown * 2));
        e.remaining = e.cooldown;
        ++stats_.reopens;
      } else {
        e.state = State::kClosed;
        e.consecutive_regressions = 0;
        e.cooldown = 0;
        ++stats_.recoveries;
      }
      return;
    case State::kOpen:
      // No learned serve should have been admitted while open; ignore.
      return;
  }
}

CircuitBreaker::State CircuitBreaker::StateOf(uint64_t fp) const {
  const auto it = entries_.find(fp);
  return it == entries_.end() ? State::kClosed : it->second.state;
}

}  // namespace neo::core
