// DNN-guided best-first plan search (paper §4.2).
//
// The search state is a partial plan (forest). A min-heap ordered by the
// value network's prediction repeatedly expands the most promising state.
// Children either (a) specify an unspecified root scan as a table or index
// scan, or (b) join two fully-specified roots with one of the three join
// operators in either orientation (orientation matters: probe/build,
// outer/inner). The search is *anytime*: it keeps the best complete plan
// found and stops on an expansion budget or wall-clock cutoff; if the budget
// expires with no complete plan, a greedy "hurry-up" descent (the paper's
// §4.2 fallback, equivalent to Q-learning-style greedy action selection)
// finishes the plan.
//
// Inference batching: all children of one expansion round are scored in a
// single value-network forward pass (Featurizer::EncodePlanBatch packs them
// into one forest; ValueNetwork::PredictBatch runs each layer as one large
// GEMM). A per-query LRU score cache keyed by (plan hash, network version)
// ensures the hurry-up descent and re-expansions never re-evaluate a plan
// already scored, while SearchOptions::score_cache_cap bounds its footprint
// on very large joins.
//
// Parallelism model
// -----------------
// Three nested levels, all built on util::ThreadPool and all bit-
// deterministic at any thread count:
//   1. Speculative multi-expansion (SearchOptions::speculation = K): each
//      round pops the top-K heap states, merges and dedups their children,
//      and scores the merged set in ONE PredictBatch call; scored children
//      re-enter the heap before the next round, preserving best-first
//      semantics per round. K changes which frontier is explored (K = 1 is
//      exactly the classic serial search); the thread count never does.
//   2. Kernel row partitioning (SearchOptions::threads = N): the batched
//      forward's per-layer GEMMs and elementwise loops split their OUTPUT
//      rows across the pool (nn::ComputeThreads). Every output value is
//      produced by the unchanged serial inner loop, so scores — and hence
//      the chosen plan, expansion counts, and cache behavior — are
//      bit-identical for any N. {threads = 1, speculation = 1} reproduces
//      the PR-1 serial path exactly.
//   3. Concurrent searches (Neo::RunEpisode): one PlanSearch per worker.
//      PlanSearch holds all mutable state (score cache, activation cache,
//      scratch, the network inference context), so distinct instances may run
//      FindPlan concurrently against one shared ValueNetwork/Featurizer as
//      long as no training runs at the same time.
//
// Activation cache (incremental tree-conv inference)
// --------------------------------------------------
// A child plan differs from its parent by one specified leaf or one appended
// join; every other node's subtree — and therefore its per-layer conv
// activation, which is a pure function of the subtree's features and the
// (query embedding, weights) — is unchanged. PlanSearch keeps a second
// exact-LRU map from PlanNode::subtree_fp (subtree shape + ops + tables +
// rel_masks) to the node's concatenated post-activation rows of every conv
// layer. Each batched scoring pass probes it per packed node row: hits are
// copied in, misses ("dirty" rows — for a one-node delta, the root-to-leaf
// spine plus the new node, O(depth) of O(nodes)) run a row-restricted
// gather/GEMM/scatter and are inserted afterwards.
//
// Keying/invalidation model: entries are valid only for the (query
// fingerprint, network version, reference-kernel mode, kernel dispatch arm)
// tuple tracked by SyncCache — the same discipline as the score cache — because activations
// depend on the query embedding (layer 0's shared-suffix projection) and the
// weights. Any mismatch drops the whole cache; SearchOptions::
// activation_cache_cap bounds its footprint (one entry holds
// ValueNetwork::TotalConvChannels() floats). Row values are bit-identical to
// the full pass (MatMul rows are position-independent), so the incremental
// path changes no search outcome at any thread count; SearchOptions::
// incremental = false disables it (bench baseline arms).
//
// ---- Memory model (zero-alloc steady state) --------------------------------
// Every per-round buffer of FindPlan/ScoreAll is instance-owned and capacity-
// reused: the state arena, heap, visited set (util::FlatHashSet64), child and
// miss scratch, score vectors, and the activation slab (a util::Arena, reset
// per scoring round to one high-water block). The NN-eval portion of a round
// — activation-cache probing plus the batched forward — runs inside
// util::AllocRegionScope, and with a warmed search the network's Into-paths
// allocate nothing (see the memory-model notes atop value_network.h); bench
// harnesses report the counted allocations as steady_state_heap_allocs.
// Plan-node construction (Children's shared_ptr trees) is intentionally
// OUTSIDE the counted region: it is proportional to new states discovered,
// not to NN work, and vanishes as caches warm.
#pragma once

#include "src/featurize/featurizer.h"
#include "src/nn/value_network.h"
#include "src/plan/plan.h"
#include "src/util/arena.h"
#include "src/util/flat_hash_set.h"
#include "src/util/lru_map.h"
#include "src/util/sharded_lru.h"

namespace neo::core {

/// Scoring indirection for PlanSearch's batched forward passes. The default
/// (no scorer installed) calls net->PredictBatch directly; the serving core
/// installs a cross-query coalescer here so concurrent searches' small
/// candidate batches merge into one PredictBatchMulti GEMM. The contract is
/// strict bit-transparency: ScoreBatch must return exactly what
/// net->PredictBatch(query_embedding, batch, ctx, reuse) would, and must
/// honor `reuse` (serve cached rows, fill store rows) before returning.
class BatchScorer {
 public:
  virtual ~BatchScorer() = default;
  virtual std::vector<float> ScoreBatch(nn::ValueNetwork* net,
                                        const nn::Matrix& query_embedding,
                                        const nn::PlanBatch& batch,
                                        const nn::ActivationReuse* reuse,
                                        nn::ValueNetwork::InferenceContext* ctx) = 0;
};

/// Process-global promotion of PlanSearch's per-instance score/activation
/// caches: sharded, mutex-per-shard LRUs shared by every concurrent search of
/// a serving core. Entries are keyed by HashCombine(local key, salt) where
/// the salt folds in (query fingerprint, net version, kernel mode/ISA, RCU
/// weight generation) — so searches of different queries, different weight
/// snapshots, or different standby nets of the SAME version can coexist in
/// one map without ever serving each other stale values, and invalidation is
/// free (stale entries simply stop being probed and age out of the LRU).
/// Activation values are copied out under the shard lock into the probing
/// search's private slab, so eviction never invalidates rows mid-forward.
struct SharedSearchCaches {
  SharedSearchCaches(size_t score_cap, size_t activation_cap, int shards = 16,
                     size_t leaf_cap = 0)
      : scores(score_cap, shards),
        activations(activation_cap, shards),
        leaf_activations(leaf_cap == 0 ? activation_cap : leaf_cap, shards) {}

  util::ShardedLruMap<uint64_t, float> scores;
  util::ShardedLruMap<uint64_t, std::vector<float>> activations;
  /// Cross-request tier for small-subtree (<= 3 node: leaves and first joins)
  /// activation entries — the rows every search recomputes in its first
  /// expansion rounds. Keyed by HashCombine(subtree_fp, leaf salt) where the
  /// leaf salt folds in the BIT PATTERN of the query embedding (activations'
  /// true query dependency: layer 0 adds the embedding's suffix projection to
  /// every row) plus (net version, kernel mode/ISA, RCU generation), instead
  /// of the query fingerprint — so any two requests whose embeddings coincide
  /// bitwise (the same query re-served, under any request or search instance)
  /// share these rows. Only valid when node features are a pure function of
  /// the subtree fingerprint (FeaturizerConfig::card_channel == kNone; query-
  /// dependent cardinality channels would alias under one fp) — PlanSearch
  /// gates on that. A separate LRU so the high-reuse small entries are never
  /// evicted by the churn of deep-plan rows in `activations`.
  util::ShardedLruMap<uint64_t, std::vector<float>> leaf_activations;
};

struct SearchOptions {
  int max_expansions = 60;      ///< Heap pops before giving up (<=0: unlimited).
  double time_cutoff_ms = 0.0;  ///< Wall-clock cutoff (0 = disabled).
  bool early_stop = true;       ///< Stop when heap top >= best complete score.
  bool batched = true;          ///< Score each round's children in one pass.
  int speculation = 1;          ///< Heap states expanded per scoring round.
  int threads = 1;              ///< Kernel row-partitioning degree (pool).
  /// Max entries in the per-query score cache (<= 0: unbounded). Evicted
  /// plans are simply re-scored on the next encounter.
  int score_cache_cap = 64 * 1024;
  /// Incremental tree-conv inference: reuse per-node conv activations across
  /// the parent/child plans of one search (see the activation-cache notes at
  /// the top of this header). Bit-identical to the full pass; off reverts
  /// batched scoring to recomputing every node row.
  bool incremental = true;
  /// Max node entries in the activation cache (<= 0: unbounded). An evicted
  /// node's rows are simply recomputed on the next encounter.
  int activation_cache_cap = 64 * 1024;
};

struct SearchResult {
  plan::PartialPlan plan;
  float predicted_cost = 0.0f;
  int expansions = 0;
  size_t evaluations = 0;  ///< Real value-network forward passes (cache misses).
  size_t cache_hits = 0;   ///< Scores served from the per-query score cache.
  size_t cache_evictions = 0;  ///< LRU evictions forced by score_cache_cap.
  size_t activation_hits = 0;  ///< Packed node rows served by the activation cache.
  /// Of activation_hits, rows served by the shared small-subtree tier
  /// (SharedSearchCaches::leaf_activations) after a main-cache miss — i.e.
  /// first-expansion recomputation another request's search already paid for.
  size_t leaf_tier_hits = 0;
  /// Conv rows computed vs. served from cache, summed over layers (a node hit
  /// saves one row in EVERY conv layer, so these are activation-miss/hit node
  /// counts x num conv layers). rows_reused / (rows_reused + rows_recomputed)
  /// is the conv-flop reuse rate of the search.
  size_t rows_recomputed = 0;
  size_t rows_reused = 0;
  double wall_ms = 0.0;
  bool hurried = false;  ///< Completed via hurry-up mode.
};

class PlanSearch {
 public:
  PlanSearch(const featurize::Featurizer* featurizer, nn::ValueNetwork* net)
      : featurizer_(featurizer), net_(net) {}

  PlanSearch(PlanSearch&&) = default;
  PlanSearch& operator=(PlanSearch&&) = default;

  SearchResult FindPlan(const query::Query& query, const SearchOptions& options);

  /// Child states of a partial plan (exposed for tests / the ablation
  /// bench's pure-greedy mode).
  std::vector<plan::PartialPlan> Children(const query::Query& query,
                                          const plan::PartialPlan& plan) const;

  /// Fills `out` with the child states (cleared first). Reusing one vector
  /// across expansions avoids a fresh allocation per heap pop.
  void ChildrenInto(const query::Query& query, const plan::PartialPlan& plan,
                    std::vector<plan::PartialPlan>* out) const;

  /// Greedy descent: repeatedly takes the best-scored child ("hurry-up"
  /// from the start state == Q-learning-style planning, §4.2).
  SearchResult GreedyPlan(const query::Query& query);

  /// Routes subsequent batched scoring through `scorer` (nullptr restores
  /// the direct PredictBatch path). The scorer must outlive every FindPlan
  /// that runs under it. Purely an indirection — scores are bit-identical
  /// either way (see BatchScorer).
  void SetBatchScorer(BatchScorer* scorer) { scorer_ = scorer; }

  /// Switches this search onto process-global caches (nullptr reverts to the
  /// private per-instance LRUs). `generation` is the RCU weight-snapshot
  /// generation folded into the cache salt; it must change whenever the
  /// bound network's weights could alias another generation's version
  /// number (standby nets reuse version counters). Invalidates the local
  /// validity tuple so the next search re-salts.
  void SetSharedCaches(SharedSearchCaches* caches, uint64_t generation) {
    shared_ = caches;
    shared_generation_ = generation;
    cache_valid_ = false;
  }

  /// Re-points this search at another network (the serving core acquires an
  /// RCU snapshot per request). The caller must pair this with
  /// SetSharedCaches' generation for correct cache salting.
  void Rebind(nn::ValueNetwork* net) {
    net_ = net;
    cache_valid_ = false;
  }

 private:
  float Score(const query::Query& query, const nn::Matrix& query_embedding,
              const plan::PartialPlan& plan, const SearchOptions& options,
              SearchResult* result);

  /// Forward pass + cache insert for a plan whose hash is already known to
  /// miss the cache. Shared by Score() and ScoreAll()'s per-candidate path.
  float ScoreUncached(const query::Query& query, const nn::Matrix& query_embedding,
                      const plan::PartialPlan& plan, uint64_t hash,
                      SearchResult* result);

  /// Scores `plans` into `out` (resized; capacity-reused), serving cached
  /// entries and batching the misses into one PredictBatch call (or per-plan
  /// passes when `options.batched` is false). `hashes`, when non-null,
  /// supplies plans[i].Hash() values the caller already computed (Hash()
  /// allocates and sorts, so it is worth reusing).
  void ScoreAll(const query::Query& query, const nn::Matrix& query_embedding,
                const std::vector<plan::PartialPlan>& plans,
                const std::vector<uint64_t>* hashes, const SearchOptions& options,
                SearchResult* result, std::vector<float>* out);

  /// Drops the score + activation caches unless they match (query, network
  /// version).
  void SyncCache(const query::Query& query, const SearchOptions& options);

  const featurize::Featurizer* featurizer_;
  nn::ValueNetwork* net_;

  /// Per-query score cache (plan hash -> predicted cost); valid only for
  /// (cache_query_fp_, cache_version_, cache_reference_mode_,
  /// cache_kernel_isa_) and cleared on any mismatch. Keyed by
  /// Query::fingerprint (content hash), not Query::id, so distinct queries
  /// that share an id (or the -1 default) never read each other's scores; the
  /// reference-kernel mode and the GEMM dispatch arm are part of the key so
  /// bench/test arms on one instance never mix kernel paths (arms differ by
  /// accumulation-order ulps, and within-arm bit-identity is the contract).
  util::LruMap<uint64_t, float> score_cache_;
  /// Per-query activation cache (PlanNode::subtree_fp -> concatenated
  /// per-layer post-activation rows); same validity tuple as score_cache_
  /// (see the activation-cache notes at the top of this header).
  util::LruMap<uint64_t, std::vector<float>> activation_cache_;
  uint64_t cache_version_ = 0;
  uint64_t cache_query_fp_ = 0;
  size_t cache_cap_ = 0;
  size_t act_cache_cap_ = 0;
  bool cache_reference_mode_ = false;
  nn::KernelIsa cache_kernel_isa_ = nn::KernelIsa::kPortable;
  /// Featurizer::encoding_epoch() at cache build: the experience store's
  /// cardinality corrections change plan encodings, so the epoch joins the
  /// validity tuple (and the shared-cache salt) exactly like net version.
  uint64_t cache_encoding_epoch_ = 0;
  bool cache_valid_ = false;

  /// Serving-mode seams (both null outside a serving core): the batched-
  /// scoring indirection and the process-global cache pair, plus the salt
  /// mixing (query fp, net version, kernel mode, weight generation) into
  /// every shared-cache key. SyncCache recomputes the salt on any tuple
  /// change; in shared mode the private LRUs above go unused.
  BatchScorer* scorer_ = nullptr;
  SharedSearchCaches* shared_ = nullptr;
  uint64_t shared_generation_ = 0;
  uint64_t salt_ = 0;
  /// Shared leaf-tier salt for the current FindPlan: Mix64 over (query
  /// embedding bit-pattern hash, net version, kernel mode/ISA, generation).
  /// Recomputed per FindPlan after EmbedQuery; leaf_tier_enabled_ gates the
  /// tier on shared mode + a fingerprint-pure featurizer (card_channel ==
  /// kNone).
  uint64_t leaf_salt_ = 0;
  bool leaf_tier_enabled_ = false;

  /// Per-instance network scratch, so concurrent PlanSearch workers never
  /// share inference buffers.
  nn::ValueNetwork::InferenceContext net_ctx_;

  /// Scratch reused across expansions (children, batch encoding buffers, and
  /// the cache-miss bookkeeping of ScoreAll).
  std::vector<plan::PartialPlan> child_scratch_;
  std::vector<uint64_t> child_hash_scratch_;
  std::vector<plan::PartialPlan> round_child_scratch_;
  nn::PlanBatch batch_scratch_;
  std::vector<const plan::PartialPlan*> miss_scratch_;
  std::vector<size_t> miss_idx_scratch_;
  std::vector<uint64_t> miss_hash_scratch_;
  /// Incremental-path scratch: the per-row cached/store pointer views handed
  /// to PredictBatch, the bump-pointer arena the per-round activation slab is
  /// carved from (reset per round; Reset coalesces to one high-water block,
  /// so the steady state allocates nothing — rows are inserted into
  /// activation_cache_ after the forward pass, never during it, so eviction
  /// cannot invalidate in-use cached pointers), the per-batch fingerprint
  /// dedup for those inserts, and per-row packed-forest subtree sizes for the
  /// leaf-tier gate.
  nn::ActivationReuse reuse_scratch_;
  util::Arena slab_arena_;
  util::FlatHashSet64 act_seen_scratch_;
  std::vector<int> subtree_size_scratch_;

  /// FindPlan round state, hoisted so repeated searches on one instance reuse
  /// capacity instead of reallocating per request.
  struct HeapEntry {
    float score;
    size_t idx;
    bool operator>(const HeapEntry& o) const { return score > o.score; }
  };
  std::vector<plan::PartialPlan> state_arena_;
  std::vector<HeapEntry> heap_;
  util::FlatHashSet64 visited_;
  std::vector<size_t> round_states_;
  std::vector<float> scores_scratch_;
  std::vector<float> predicted_scratch_;

 public:
  /// Peak bytes of the per-round activation slab arena (bench reporting).
  size_t activation_slab_peak_bytes() const { return slab_arena_.peak_bytes(); }
};

}  // namespace neo::core
