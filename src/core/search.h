// DNN-guided best-first plan search (paper §4.2).
//
// The search state is a partial plan (forest). A min-heap ordered by the
// value network's prediction repeatedly expands the most promising state.
// Children either (a) specify an unspecified root scan as a table or index
// scan, or (b) join two fully-specified roots with one of the three join
// operators in either orientation (orientation matters: probe/build,
// outer/inner). The search is *anytime*: it keeps the best complete plan
// found and stops on an expansion budget or wall-clock cutoff; if the budget
// expires with no complete plan, a greedy "hurry-up" descent (the paper's
// §4.2 fallback, equivalent to Q-learning-style greedy action selection)
// finishes the plan.
//
// Inference batching: all children of one expansion are scored in a single
// value-network forward pass (Featurizer::EncodePlanBatch packs them into one
// forest; ValueNetwork::PredictBatch runs each layer as one large GEMM). A
// per-query score cache keyed by (plan hash, network version) ensures the
// hurry-up descent and re-expansions never re-evaluate a plan already scored.
#pragma once

#include <unordered_map>

#include "src/featurize/featurizer.h"
#include "src/nn/value_network.h"
#include "src/plan/plan.h"

namespace neo::core {

struct SearchOptions {
  int max_expansions = 60;      ///< Heap pops before giving up (<=0: unlimited).
  double time_cutoff_ms = 0.0;  ///< Wall-clock cutoff (0 = disabled).
  bool early_stop = true;       ///< Stop when heap top >= best complete score.
  bool batched = true;          ///< Score each expansion's children in one pass.
};

struct SearchResult {
  plan::PartialPlan plan;
  float predicted_cost = 0.0f;
  int expansions = 0;
  size_t evaluations = 0;  ///< Real value-network forward passes (cache misses).
  size_t cache_hits = 0;   ///< Scores served from the per-query score cache.
  double wall_ms = 0.0;
  bool hurried = false;  ///< Completed via hurry-up mode.
};

class PlanSearch {
 public:
  PlanSearch(const featurize::Featurizer* featurizer, nn::ValueNetwork* net)
      : featurizer_(featurizer), net_(net) {}

  SearchResult FindPlan(const query::Query& query, const SearchOptions& options);

  /// Child states of a partial plan (exposed for tests / the ablation
  /// bench's pure-greedy mode).
  std::vector<plan::PartialPlan> Children(const query::Query& query,
                                          const plan::PartialPlan& plan) const;

  /// Fills `out` with the child states (cleared first). Reusing one vector
  /// across expansions avoids a fresh allocation per heap pop.
  void ChildrenInto(const query::Query& query, const plan::PartialPlan& plan,
                    std::vector<plan::PartialPlan>* out) const;

  /// Greedy descent: repeatedly takes the best-scored child ("hurry-up"
  /// from the start state == Q-learning-style planning, §4.2).
  SearchResult GreedyPlan(const query::Query& query);

 private:
  float Score(const query::Query& query, const nn::Matrix& query_embedding,
              const plan::PartialPlan& plan, SearchResult* result);

  /// Forward pass + cache insert for a plan whose hash is already known to
  /// miss the cache. Shared by Score() and ScoreAll()'s per-candidate path.
  float ScoreUncached(const query::Query& query, const nn::Matrix& query_embedding,
                      const plan::PartialPlan& plan, uint64_t hash,
                      SearchResult* result);

  /// Scores `plans`, serving cached entries and batching the misses into one
  /// PredictBatch call (or per-plan passes when `batched` is false).
  /// `hashes`, when non-null, supplies plans[i].Hash() values the caller
  /// already computed (Hash() allocates and sorts, so it is worth reusing).
  std::vector<float> ScoreAll(const query::Query& query,
                              const nn::Matrix& query_embedding,
                              const std::vector<plan::PartialPlan>& plans,
                              const std::vector<uint64_t>* hashes, bool batched,
                              SearchResult* result);

  /// Drops the score cache unless it matches (query, network version).
  void SyncCache(const query::Query& query);

  const featurize::Featurizer* featurizer_;
  nn::ValueNetwork* net_;

  /// Per-query score cache: plan hash -> predicted cost. Valid only for
  /// (cache_query_fp_, cache_version_, cache_reference_mode_); cleared on
  /// any mismatch. Keyed by Query::fingerprint (content hash), not
  /// Query::id, so distinct queries that share an id (or the -1 default)
  /// never read each other's scores; the reference-kernel mode is part of
  /// the key so bench arms on one instance never mix kernel paths.
  std::unordered_map<uint64_t, float> score_cache_;
  uint64_t cache_version_ = 0;
  uint64_t cache_query_fp_ = 0;
  bool cache_reference_mode_ = false;
  bool cache_valid_ = false;

  /// Scratch reused across expansions (children, batch encoding buffers, and
  /// the cache-miss bookkeeping of ScoreAll).
  std::vector<plan::PartialPlan> child_scratch_;
  std::vector<uint64_t> child_hash_scratch_;
  nn::PlanBatch batch_scratch_;
  std::vector<const plan::PartialPlan*> miss_scratch_;
  std::vector<size_t> miss_idx_scratch_;
  std::vector<uint64_t> miss_hash_scratch_;
};

}  // namespace neo::core
