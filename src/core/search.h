// DNN-guided best-first plan search (paper §4.2).
//
// The search state is a partial plan (forest). A min-heap ordered by the
// value network's prediction repeatedly expands the most promising state.
// Children either (a) specify an unspecified root scan as a table or index
// scan, or (b) join two fully-specified roots with one of the three join
// operators in either orientation (orientation matters: probe/build,
// outer/inner). The search is *anytime*: it keeps the best complete plan
// found and stops on an expansion budget or wall-clock cutoff; if the budget
// expires with no complete plan, a greedy "hurry-up" descent (the paper's
// §4.2 fallback, equivalent to Q-learning-style greedy action selection)
// finishes the plan.
#pragma once

#include <unordered_map>

#include "src/featurize/featurizer.h"
#include "src/nn/value_network.h"
#include "src/plan/plan.h"

namespace neo::core {

struct SearchOptions {
  int max_expansions = 60;      ///< Heap pops before giving up (<=0: unlimited).
  double time_cutoff_ms = 0.0;  ///< Wall-clock cutoff (0 = disabled).
  bool early_stop = true;       ///< Stop when heap top >= best complete score.
};

struct SearchResult {
  plan::PartialPlan plan;
  float predicted_cost = 0.0f;
  int expansions = 0;
  size_t evaluations = 0;
  double wall_ms = 0.0;
  bool hurried = false;  ///< Completed via hurry-up mode.
};

class PlanSearch {
 public:
  PlanSearch(const featurize::Featurizer* featurizer, nn::ValueNetwork* net)
      : featurizer_(featurizer), net_(net) {}

  SearchResult FindPlan(const query::Query& query, const SearchOptions& options);

  /// Child states of a partial plan (exposed for tests / the ablation
  /// bench's pure-greedy mode).
  std::vector<plan::PartialPlan> Children(const query::Query& query,
                                          const plan::PartialPlan& plan) const;

  /// Greedy descent: repeatedly takes the best-scored child ("hurry-up"
  /// from the start state == Q-learning-style planning, §4.2).
  SearchResult GreedyPlan(const query::Query& query);

 private:
  float Score(const query::Query& query, const nn::Matrix& query_embedding,
              const plan::PartialPlan& plan, size_t* evals);

  const featurize::Featurizer* featurizer_;
  nn::ValueNetwork* net_;
};

}  // namespace neo::core
