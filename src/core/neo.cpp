#include "src/core/neo.h"

#include <algorithm>
#include <functional>
#include <mutex>

#include "src/store/experience_store.h"
#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace neo::core {

Neo::Neo(const featurize::Featurizer* featurizer, engine::ExecutionEngine* engine,
         NeoConfig config)
    : featurizer_(featurizer),
      engine_(engine),
      config_(std::move(config)),
      experience_(featurizer),
      search_(featurizer, nullptr),
      rng_(config_.seed) {
  config_.net.query_dim = featurizer_->query_dim();
  config_.net.plan_dim = featurizer_->plan_dim();
  config_.net.seed = util::HashCombine(config_.seed, 0x4e7ULL);
  net_ = std::make_unique<nn::ValueNetwork>(config_.net);
  search_ = PlanSearch(featurizer_, net_.get());
  breaker_ = CircuitBreaker(config_.guards.breaker);
  health_ = nn::ModelHealthMonitor(config_.guards.health);
}

bool Neo::GuardsActive() const {
  const GuardrailConfig& g = config_.guards;
  return g.watchdog.deadline_ms > 0.0 || g.watchdog.baseline_factor > 0.0 ||
         g.breaker.enabled || g.health.enabled;
}

double Neo::EffectiveDeadline(const query::Query& query) const {
  const WatchdogOptions& w = config_.guards.watchdog;
  double deadline = w.deadline_ms > 0.0 ? w.deadline_ms : 0.0;
  if (w.baseline_factor > 0.0) {
    // Baseline() defaults to 1.0 for unknown ids — gate on actual presence
    // so un-bootstrapped queries don't get a meaningless 1ms-scale deadline.
    const auto it = baselines_.find(query.id);
    if (it != baselines_.end()) {
      const double relative = w.baseline_factor * std::max(1e-6, it->second);
      deadline = deadline > 0.0 ? std::min(deadline, relative) : relative;
    }
  }
  return deadline;
}

double Neo::Serve(const query::Query& query, const plan::PartialPlan& learned_plan,
                  bool learn, bool from_search) {
  std::lock_guard<std::mutex> lock(serve_mu_);
  return ServeAndMaybeLearn(query, learned_plan, learn, from_search);
}

void Neo::RecordStoreFeedback(const query::Query& query,
                              const plan::PartialPlan& plan, double latency_ms,
                              bool from_search) {
  store_->RecordServe(query, plan, latency_ms, from_search);
  // Observed-vs-estimated cardinality corrections for the executed plan's
  // join subsets, fed back into the featurizer's kEstimated channel.
  const featurize::FeaturizerConfig& fc = featurizer_->config();
  if (fc.card_channel != featurize::CardChannel::kEstimated ||
      featurizer_->hist_estimator() == nullptr) {
    return;
  }
  std::vector<uint64_t> masks;
  std::function<void(const plan::PlanNode&)> collect =
      [&](const plan::PlanNode& node) {
        if (!node.is_join) return;
        if (std::find(masks.begin(), masks.end(), node.rel_mask) ==
            masks.end()) {
          masks.push_back(node.rel_mask);
        }
        collect(*node.left);
        collect(*node.right);
      };
  for (const auto& root : plan.roots) collect(*root);
  for (uint64_t mask : masks) {
    const double estimated =
        featurizer_->hist_estimator()->EstimateSubset(query, mask);
    const double observed = engine_->oracle().Cardinality(query, mask);
    store_->RecordCardCorrection(query, mask, estimated, observed);
  }
}

double Neo::ServeAndMaybeLearn(const query::Query& query,
                               const plan::PartialPlan& learned_plan, bool learn,
                               bool from_search) {
  if (!GuardsActive()) {
    // Parity fast path: the exact pre-guardrail serve (see the guardrail
    // notes in neo.h — guards off must stay bit-identical).
    const double latency = engine_->ExecutePlan(query, learned_plan);
    if (learn) {
      std::lock_guard<std::mutex> lock(experience_mu_);
      experience_.AddCompletePlan(query, learned_plan, CostOf(query, latency));
    }
    if (store_ != nullptr) {
      RecordStoreFeedback(query, learned_plan, latency, from_search);
    }
    return latency;
  }

  // The breaker engages only for fingerprints with a recorded expert
  // fallback; otherwise there is nothing safe to serve instead.
  const auto fb = fallback_plans_.find(query.fingerprint);
  const bool has_fallback = fb != fallback_plans_.end();
  const bool serve_learned = !has_fallback || breaker_.AllowLearned(query.fingerprint);
  const plan::PartialPlan& plan = serve_learned ? learned_plan : fb->second;

  // The watchdog covers learned AND fallback serves: a fallback execution
  // can also hit an injected spike, and bounding both is what makes guarded
  // workload latency <= baseline_factor x expert latency structural.
  const engine::ExecutionResult result =
      engine_->ExecutePlanGuarded(query, plan, EffectiveDeadline(query));
  if (serve_learned) ++learned_serves_;
  if (result.timed_out) ++timeouts_;
  if (result.injected_failure) ++injected_failures_;

  if (serve_learned && has_fallback) {
    const bool regressed =
        !result.status.ok() ||
        result.latency_ms >
            breaker_.options().regression_factor * Baseline(query.id);
    breaker_.RecordLearnedOutcome(query.fingerprint, regressed);
  }
  if (learn) {
    // The incurred (deadline-clipped) latency of the plan that actually ran
    // is the honest observation — the same clipped-reward semantics as
    // NeoConfig::latency_clip_ms, applied at execution time.
    std::lock_guard<std::mutex> lock(experience_mu_);
    experience_.AddCompletePlan(query, plan, CostOf(query, result.latency_ms));
  }
  if (store_ != nullptr) {
    // A breaker-fallback serve did not come from a live search, whatever the
    // caller believed.
    RecordStoreFeedback(query, plan, result.latency_ms,
                        from_search && serve_learned);
  }
  return result.latency_ms;
}

GuardStats Neo::guard_stats() const {
  std::lock_guard<std::mutex> lock(serve_mu_);
  GuardStats s;
  s.learned_serves = learned_serves_;
  s.timeouts = timeouts_;
  s.injected_failures = injected_failures_;
  const CircuitBreaker::Stats& b = breaker_.stats();
  s.fallback_serves = static_cast<int64_t>(b.fallback_serves);
  s.breaker_trips = static_cast<int64_t>(b.trips);
  s.breaker_reopens = static_cast<int64_t>(b.reopens);
  s.breaker_recoveries = static_cast<int64_t>(b.recoveries);
  s.breaker_probes = static_cast<int64_t>(b.probes);
  s.health_rollbacks = health_.rollbacks();
  return s;
}

double Neo::Baseline(int query_id) const {
  auto it = baselines_.find(query_id);
  return it == baselines_.end() ? 1.0 : std::max(1e-6, it->second);
}

double Neo::CostOf(const query::Query& query, double latency_ms) const {
  double lat = latency_ms;
  if (config_.latency_clip_ms > 0.0) lat = std::min(lat, config_.latency_clip_ms);
  switch (config_.cost_function) {
    case CostFunction::kLatency: return lat;
    case CostFunction::kRelative: return lat / Baseline(query.id);
  }
  return lat;
}

void Neo::Bootstrap(const std::vector<const query::Query*>& queries,
                    optim::Optimizer* expert) {
  for (const query::Query* q : queries) {
    const plan::PartialPlan plan = expert->Optimize(*q);
    const double latency = engine_->ExecutePlan(*q, plan);
    SetBaseline(q->id, latency);
    // Remember the expert plan: it is what the circuit breaker serves for
    // this fingerprint while open (cheap — PartialPlan is a shared_ptr
    // forest). insert_or_assign so a re-bootstrap refreshes it.
    fallback_plans_.insert_or_assign(q->fingerprint, plan);
    std::lock_guard<std::mutex> lock(experience_mu_);
    experience_.AddCompletePlan(*q, plan, CostOf(*q, latency));
  }
}

float Neo::Retrain() {
  util::Stopwatch watch;
  // Training GEMMs/updates row-partition this wide; loss curves are
  // identical at any degree (see ValueNetwork::TrainBatch).
  nn::ComputeThreadsScope compute_scope(config_.threads);
  float last_loss = 0.0f;
  for (int epoch = 0; epoch < config_.epochs_per_episode; ++epoch) {
    // Sampling synchronizes with concurrent serves' experience inserts; the
    // sampled pointers stay valid outside the lock (node-based store,
    // samples immutable after insert), so training itself runs unlocked and
    // never stalls the serving path.
    Experience::TrainingBatchView view = [&] {
      std::lock_guard<std::mutex> lock(experience_mu_);
      return experience_.Sample(config_.max_train_samples, rng_);
    }();
    if (view.samples.empty()) break;
    // Minibatches slice the sampled view by offset — no per-batch vector
    // copies, and the final under-sized batch trains in place like any other.
    for (size_t start = 0; start < view.samples.size();
         start += static_cast<size_t>(config_.batch_size)) {
      const size_t len = std::min(view.samples.size() - start,
                                  static_cast<size_t>(config_.batch_size));
      last_loss =
          net_->TrainBatch(view.samples.data() + start, view.targets.data() + start, len);
    }
  }
  total_nn_time_ms_ += watch.ElapsedMs();

  // Fault-injection site: a corrupting optimizer step, keyed by retrain
  // index. Deliberately independent of whether the health monitor is enabled
  // — the unguarded arm must demonstrate the divergence the guarded arm
  // recovers from.
  const uint64_t retrain_index = static_cast<uint64_t>(retrains_run_++);
  if (fault_injector_ != nullptr &&
      fault_injector_->DrawWeightCorruption(retrain_index)) {
    net_->DebugPoisonWeights(util::HashCombine(config_.seed, retrain_index));
  }
  // Post-retrain health screen: snapshot if healthy, roll back if not.
  // No-op when config_.guards.health.enabled is false.
  health_.Observe(net_.get(), last_loss);
  return last_loss;
}

EpisodeStats Neo::RunEpisode(const std::vector<const query::Query*>& queries) {
  EpisodeStats stats;
  stats.episode = ++episodes_run_;

  util::Stopwatch nn_watch;
  stats.retrain_loss = Retrain();
  stats.nn_time_ms = nn_watch.ElapsedMs();

  // Plan, execute, and learn from each training query (shuffled order).
  std::vector<const query::Query*> order = queries;
  rng_.Shuffle(order);
  util::Stopwatch search_watch;
  double search_ms = 0.0;
  // Reference-kernel mode (bench seed-path reconstruction) routes inference
  // through the dense forward, which mutates shared layer caches and is
  // single-thread only — force serial planning rather than race.
  const int planners = nn::UseReferenceKernels()
                           ? 1
                           : std::min<int>(config_.threads,
                                           static_cast<int>(order.size()));
  if (planners <= 1) {
    for (const query::Query* q : order) {
      search_watch.Restart();
      const SearchResult found = search_.FindPlan(*q, config_.search);
      search_ms += search_watch.ElapsedMs();
      stats.train_total_latency_ms += ServeAndMaybeLearn(*q, found.plan, /*learn=*/true);
    }
  } else {
    // Concurrent planning phase: the network is frozen between Retrain and
    // the next episode, and each worker checks out its own PlanSearch, so
    // searches are independent and each query's plan is identical to the
    // serial path's. Execution and experience updates then run serially in
    // the shuffled order — stronger than a mutex: the episode outcome does
    // not depend on thread scheduling at all.
    while (episode_searches_.size() < static_cast<size_t>(planners)) {
      episode_searches_.push_back(std::make_unique<PlanSearch>(featurizer_, net_.get()));
    }
    std::vector<PlanSearch*> free_searches;
    for (int i = 0; i < planners; ++i) free_searches.push_back(episode_searches_[i].get());
    std::mutex free_mu;
    std::vector<SearchResult> found(order.size());
    util::ThreadPool::Global().ParallelFor(
        0, static_cast<int64_t>(order.size()), planners, /*grain=*/1,
        [&](int64_t begin, int64_t end) {
          PlanSearch* searcher = nullptr;
          {
            std::lock_guard<std::mutex> lock(free_mu);
            searcher = free_searches.back();
            free_searches.pop_back();
          }
          for (int64_t i = begin; i < end; ++i) {
            found[static_cast<size_t>(i)] =
                searcher->FindPlan(*order[static_cast<size_t>(i)], config_.search);
          }
          std::lock_guard<std::mutex> lock(free_mu);
          free_searches.push_back(searcher);
        });
    search_ms = search_watch.ElapsedMs();  // Wall time of the planning phase.
    // Guarded or not, serving decisions happen here in the serial phase —
    // the breaker state machine advances in shuffled query order, identical
    // to the serial path, so guardrails never break thread-count invariance.
    for (size_t i = 0; i < order.size(); ++i) {
      stats.train_total_latency_ms +=
          ServeAndMaybeLearn(*order[i], found[i].plan, /*learn=*/true);
    }
  }
  stats.search_time_ms = search_ms;
  stats.experience_states = experience_.NumStates();
  return stats;
}

SearchResult Neo::Plan(const query::Query& query) {
  return search_.FindPlan(query, config_.search);
}

double Neo::PlanAndExecute(const query::Query& query) {
  const SearchResult found = search_.FindPlan(query, config_.search);
  return ServeAndMaybeLearn(query, found.plan, /*learn=*/false);
}

double Neo::EvaluateTotalLatency(const std::vector<const query::Query*>& queries) {
  double total = 0.0;
  for (const query::Query* q : queries) total += PlanAndExecute(*q);
  return total;
}

double Neo::ExecuteAndLearn(const query::Query& query) {
  const SearchResult found = search_.FindPlan(query, config_.search);
  return ServeAndMaybeLearn(query, found.plan, /*learn=*/true);
}

}  // namespace neo::core
