#include "src/core/neo.h"

#include <algorithm>
#include <mutex>

#include "src/util/stopwatch.h"
#include "src/util/thread_pool.h"

namespace neo::core {

Neo::Neo(const featurize::Featurizer* featurizer, engine::ExecutionEngine* engine,
         NeoConfig config)
    : featurizer_(featurizer),
      engine_(engine),
      config_(std::move(config)),
      experience_(featurizer),
      search_(featurizer, nullptr),
      rng_(config_.seed) {
  config_.net.query_dim = featurizer_->query_dim();
  config_.net.plan_dim = featurizer_->plan_dim();
  config_.net.seed = util::HashCombine(config_.seed, 0x4e7ULL);
  net_ = std::make_unique<nn::ValueNetwork>(config_.net);
  search_ = PlanSearch(featurizer_, net_.get());
}

double Neo::Baseline(int query_id) const {
  auto it = baselines_.find(query_id);
  return it == baselines_.end() ? 1.0 : std::max(1e-6, it->second);
}

double Neo::CostOf(const query::Query& query, double latency_ms) const {
  double lat = latency_ms;
  if (config_.latency_clip_ms > 0.0) lat = std::min(lat, config_.latency_clip_ms);
  switch (config_.cost_function) {
    case CostFunction::kLatency: return lat;
    case CostFunction::kRelative: return lat / Baseline(query.id);
  }
  return lat;
}

void Neo::Bootstrap(const std::vector<const query::Query*>& queries,
                    optim::Optimizer* expert) {
  for (const query::Query* q : queries) {
    const plan::PartialPlan plan = expert->Optimize(*q);
    const double latency = engine_->ExecutePlan(*q, plan);
    SetBaseline(q->id, latency);
    experience_.AddCompletePlan(*q, plan, CostOf(*q, latency));
  }
}

float Neo::Retrain() {
  util::Stopwatch watch;
  // Training GEMMs/updates row-partition this wide; loss curves are
  // identical at any degree (see ValueNetwork::TrainBatch).
  nn::ComputeThreadsScope compute_scope(config_.threads);
  float last_loss = 0.0f;
  for (int epoch = 0; epoch < config_.epochs_per_episode; ++epoch) {
    Experience::TrainingBatchView view =
        experience_.Sample(config_.max_train_samples, rng_);
    if (view.samples.empty()) break;
    // Minibatches slice the sampled view by offset — no per-batch vector
    // copies, and the final under-sized batch trains in place like any other.
    for (size_t start = 0; start < view.samples.size();
         start += static_cast<size_t>(config_.batch_size)) {
      const size_t len = std::min(view.samples.size() - start,
                                  static_cast<size_t>(config_.batch_size));
      last_loss =
          net_->TrainBatch(view.samples.data() + start, view.targets.data() + start, len);
    }
  }
  total_nn_time_ms_ += watch.ElapsedMs();
  return last_loss;
}

EpisodeStats Neo::RunEpisode(const std::vector<const query::Query*>& queries) {
  EpisodeStats stats;
  stats.episode = ++episodes_run_;

  util::Stopwatch nn_watch;
  stats.retrain_loss = Retrain();
  stats.nn_time_ms = nn_watch.ElapsedMs();

  // Plan, execute, and learn from each training query (shuffled order).
  std::vector<const query::Query*> order = queries;
  rng_.Shuffle(order);
  util::Stopwatch search_watch;
  double search_ms = 0.0;
  // Reference-kernel mode (bench seed-path reconstruction) routes inference
  // through the dense forward, which mutates shared layer caches and is
  // single-thread only — force serial planning rather than race.
  const int planners = nn::UseReferenceKernels()
                           ? 1
                           : std::min<int>(config_.threads,
                                           static_cast<int>(order.size()));
  if (planners <= 1) {
    for (const query::Query* q : order) {
      search_watch.Restart();
      const SearchResult found = search_.FindPlan(*q, config_.search);
      search_ms += search_watch.ElapsedMs();
      const double latency = engine_->ExecutePlan(*q, found.plan);
      stats.train_total_latency_ms += latency;
      experience_.AddCompletePlan(*q, found.plan, CostOf(*q, latency));
    }
  } else {
    // Concurrent planning phase: the network is frozen between Retrain and
    // the next episode, and each worker checks out its own PlanSearch, so
    // searches are independent and each query's plan is identical to the
    // serial path's. Execution and experience updates then run serially in
    // the shuffled order — stronger than a mutex: the episode outcome does
    // not depend on thread scheduling at all.
    while (episode_searches_.size() < static_cast<size_t>(planners)) {
      episode_searches_.push_back(std::make_unique<PlanSearch>(featurizer_, net_.get()));
    }
    std::vector<PlanSearch*> free_searches;
    for (int i = 0; i < planners; ++i) free_searches.push_back(episode_searches_[i].get());
    std::mutex free_mu;
    std::vector<SearchResult> found(order.size());
    util::ThreadPool::Global().ParallelFor(
        0, static_cast<int64_t>(order.size()), planners, /*grain=*/1,
        [&](int64_t begin, int64_t end) {
          PlanSearch* searcher = nullptr;
          {
            std::lock_guard<std::mutex> lock(free_mu);
            searcher = free_searches.back();
            free_searches.pop_back();
          }
          for (int64_t i = begin; i < end; ++i) {
            found[static_cast<size_t>(i)] =
                searcher->FindPlan(*order[static_cast<size_t>(i)], config_.search);
          }
          std::lock_guard<std::mutex> lock(free_mu);
          free_searches.push_back(searcher);
        });
    search_ms = search_watch.ElapsedMs();  // Wall time of the planning phase.
    for (size_t i = 0; i < order.size(); ++i) {
      const query::Query& q = *order[i];
      const double latency = engine_->ExecutePlan(q, found[i].plan);
      stats.train_total_latency_ms += latency;
      experience_.AddCompletePlan(q, found[i].plan, CostOf(q, latency));
    }
  }
  stats.search_time_ms = search_ms;
  stats.experience_states = experience_.NumStates();
  return stats;
}

SearchResult Neo::Plan(const query::Query& query) {
  return search_.FindPlan(query, config_.search);
}

double Neo::PlanAndExecute(const query::Query& query) {
  const SearchResult found = search_.FindPlan(query, config_.search);
  return engine_->ExecutePlan(query, found.plan);
}

double Neo::EvaluateTotalLatency(const std::vector<const query::Query*>& queries) {
  double total = 0.0;
  for (const query::Query* q : queries) total += PlanAndExecute(*q);
  return total;
}

double Neo::ExecuteAndLearn(const query::Query& query) {
  const SearchResult found = search_.FindPlan(query, config_.search);
  const double latency = engine_->ExecutePlan(query, found.plan);
  experience_.AddCompletePlan(query, found.plan, CostOf(query, latency));
  return latency;
}

}  // namespace neo::core
