#include "src/core/neo.h"

#include <algorithm>

#include "src/util/stopwatch.h"

namespace neo::core {

Neo::Neo(const featurize::Featurizer* featurizer, engine::ExecutionEngine* engine,
         NeoConfig config)
    : featurizer_(featurizer),
      engine_(engine),
      config_(std::move(config)),
      experience_(featurizer),
      search_(featurizer, nullptr),
      rng_(config_.seed) {
  config_.net.query_dim = featurizer_->query_dim();
  config_.net.plan_dim = featurizer_->plan_dim();
  config_.net.seed = util::HashCombine(config_.seed, 0x4e7ULL);
  net_ = std::make_unique<nn::ValueNetwork>(config_.net);
  search_ = PlanSearch(featurizer_, net_.get());
}

double Neo::Baseline(int query_id) const {
  auto it = baselines_.find(query_id);
  return it == baselines_.end() ? 1.0 : std::max(1e-6, it->second);
}

double Neo::CostOf(const query::Query& query, double latency_ms) const {
  double lat = latency_ms;
  if (config_.latency_clip_ms > 0.0) lat = std::min(lat, config_.latency_clip_ms);
  switch (config_.cost_function) {
    case CostFunction::kLatency: return lat;
    case CostFunction::kRelative: return lat / Baseline(query.id);
  }
  return lat;
}

void Neo::Bootstrap(const std::vector<const query::Query*>& queries,
                    optim::Optimizer* expert) {
  for (const query::Query* q : queries) {
    const plan::PartialPlan plan = expert->Optimize(*q);
    const double latency = engine_->ExecutePlan(*q, plan);
    SetBaseline(q->id, latency);
    experience_.AddCompletePlan(*q, plan, CostOf(*q, latency));
  }
}

float Neo::Retrain() {
  util::Stopwatch watch;
  float last_loss = 0.0f;
  for (int epoch = 0; epoch < config_.epochs_per_episode; ++epoch) {
    Experience::TrainingBatchView view =
        experience_.Sample(config_.max_train_samples, rng_);
    if (view.samples.empty()) break;
    for (size_t start = 0; start < view.samples.size();
         start += static_cast<size_t>(config_.batch_size)) {
      const size_t end = std::min(view.samples.size(),
                                  start + static_cast<size_t>(config_.batch_size));
      std::vector<const nn::PlanSample*> batch(view.samples.begin() + start,
                                               view.samples.begin() + end);
      std::vector<float> targets(view.targets.begin() + start,
                                 view.targets.begin() + end);
      last_loss = net_->TrainBatch(batch, targets);
    }
  }
  total_nn_time_ms_ += watch.ElapsedMs();
  return last_loss;
}

EpisodeStats Neo::RunEpisode(const std::vector<const query::Query*>& queries) {
  EpisodeStats stats;
  stats.episode = ++episodes_run_;

  util::Stopwatch nn_watch;
  stats.retrain_loss = Retrain();
  stats.nn_time_ms = nn_watch.ElapsedMs();

  // Plan, execute, and learn from each training query (shuffled order).
  std::vector<const query::Query*> order = queries;
  rng_.Shuffle(order);
  util::Stopwatch search_watch;
  double search_ms = 0.0;
  for (const query::Query* q : order) {
    search_watch.Restart();
    const SearchResult found = search_.FindPlan(*q, config_.search);
    search_ms += search_watch.ElapsedMs();
    const double latency = engine_->ExecutePlan(*q, found.plan);
    stats.train_total_latency_ms += latency;
    experience_.AddCompletePlan(*q, found.plan, CostOf(*q, latency));
  }
  stats.search_time_ms = search_ms;
  stats.experience_states = experience_.NumStates();
  return stats;
}

SearchResult Neo::Plan(const query::Query& query) {
  return search_.FindPlan(query, config_.search);
}

double Neo::PlanAndExecute(const query::Query& query) {
  const SearchResult found = search_.FindPlan(query, config_.search);
  return engine_->ExecutePlan(query, found.plan);
}

double Neo::EvaluateTotalLatency(const std::vector<const query::Query*>& queries) {
  double total = 0.0;
  for (const query::Query* q : queries) total += PlanAndExecute(*q);
  return total;
}

double Neo::ExecuteAndLearn(const query::Query& query) {
  const SearchResult found = search_.FindPlan(query, config_.search);
  const double latency = engine_->ExecutePlan(query, found.plan);
  experience_.AddCompletePlan(query, found.plan, CostOf(query, latency));
  return latency;
}

}  // namespace neo::core
