// Tree convolution (Mou et al. [40], paper §4.1) over binary plan trees.
//
// A tree sample is a flattened node array with child indices; filters are
// triples of weight vectors (e_p, e_l, e_r) applied to each (node, left
// child, right child) triangle. Missing children behave as zero vectors
// (the paper attaches all-zero leaves). The output is a tree with identical
// structure and `out_channels` features per node.
//
// DynamicPooling flattens a tree into a single vector via per-channel max
// (paper §4 / Appendix A).
#pragma once

#include <vector>

#include "src/nn/layers.h"

namespace neo::nn {

/// Flattened forest structure shared by all tree-conv layers of one forward
/// pass. Node features live in a (num_nodes x channels) matrix; `left` /
/// `right` give child row indices or -1.
struct TreeStructure {
  std::vector<int> left;
  std::vector<int> right;

  size_t NumNodes() const { return left.size(); }
};

/// One tree convolution layer: out[i] = [x_i ; x_l ; x_r] * W + b.
///
/// `shared_suffix_dim` (s) declares that at inference time the last s input
/// channels of every node carry the same vector (Neo's spatially-replicated
/// query embedding): ForwardInference then takes the (n x (in-s)) varying
/// features plus the (1 x s) suffix and projects the suffix through each
/// weight block once per call instead of once per node.
class TreeConv {
 public:
  TreeConv(int in_channels, int out_channels, util::Rng& rng,
           int shared_suffix_dim = 0);

  /// Reusable gather buffers for ForwardInference. The layer itself holds no
  /// inference scratch, so concurrent callers (parallel plan searches) stay
  /// race-free by each owning one Scratch per layer.
  struct Scratch {
    Matrix gather;             ///< Child-feature gather buffer.
    std::vector<int> parent;   ///< Gather-row -> node map.
  };

  /// x: (nodes x in_channels) -> (nodes x out_channels). Training path:
  /// builds the dense concat matrix and caches it for Backward.
  Matrix Forward(const TreeStructure& tree, const Matrix& x);

  /// Inference-only forward that skips absent-child weight blocks:
  /// y = x*W_p + gather(x_left)*W_l + gather(x_right)*W_r + b. Most forest
  /// nodes are leaves, so this does roughly half the flops of Forward. With
  /// shared_suffix_dim > 0, `x` holds only the varying (in-s) channels and
  /// `shared_suffix` the common (1 x s) tail. Each output row depends only
  /// on that node's (self, left, right) features, so results are identical
  /// whether a tree is scored alone or in a batch. Caller must
  /// RefreshInferenceWeights() after any weight update; results may differ
  /// from Forward by accumulation-order ulps. Const and safe to call from
  /// many threads concurrently when each passes its own `scratch` (nullptr
  /// allocates locally).
  Matrix ForwardInference(const TreeStructure& tree, const Matrix& x,
                          const Matrix* shared_suffix = nullptr,
                          Scratch* scratch = nullptr) const;

  /// Incremental variant of ForwardInference: computes ONLY the output rows
  /// listed in `rows` (ascending node indices), writing them into the
  /// pre-sized (nodes x out_channels) `y`; all other rows of `y` must already
  /// hold their values (the caller fills them from its activation cache).
  /// `x` still spans every node — a dirty row may gather a clean child's
  /// input. Each computed row runs the exact gather/GEMM/scatter arithmetic
  /// of the full pass (MatMul rows are position-independent), so it is
  /// bit-identical to the same row of ForwardInference. Same thread-safety
  /// and RefreshInferenceWeights contract as ForwardInference.
  void ForwardInferenceRows(const TreeStructure& tree, const Matrix& x,
                            const std::vector<int>& rows,
                            const Matrix* shared_suffix, Scratch* scratch,
                            Matrix* y) const;

  /// Re-splits the stacked weight into the per-block copies ForwardInference
  /// multiplies with, pre-packed into the kernel dispatch panel layout so the
  /// hot gather/GEMM/scatter never repacks. Cheap (one copy of the weights).
  void RefreshInferenceWeights();

  /// Backward for the most recent Forward (same tree).
  Matrix Backward(const TreeStructure& tree, const Matrix& grad_out);

  void CollectParams(std::vector<Param*>* out) {
    out->push_back(&weight_);
    out->push_back(&bias_);
  }

  int in_channels() const { return in_channels_; }
  int out_channels() const { return weight_.value.cols(); }

 private:
  int in_channels_;
  int shared_suffix_dim_;
  Param weight_;  ///< (3*in x out): [e_p; e_l; e_r] stacked.
  Param bias_;    ///< (1 x out)
  Matrix last_concat_;  ///< (nodes x 3*in) cached for backward.
  /// ((in - s) x out) varying-channel blocks of weight_, pre-packed for the
  /// active GEMM dispatch arm (MatMulPacked).
  PackedB w_self_, w_left_, w_right_;
  /// (s x out) shared-suffix blocks (empty when shared_suffix_dim_ == 0).
  PackedB w_self_suffix_, w_left_suffix_, w_right_suffix_;
  bool split_fresh_ = false;
};

/// Per-channel max pool over all nodes: (nodes x C) -> (1 x C).
///
/// The segmented overload pools a packed forest of N trees in one pass: rows
/// [offsets[s], offsets[s+1]) of `x` pool into row s of the output, giving an
/// (N x C) matrix that feeds the FC head as one batch.
class DynamicPooling {
 public:
  Matrix Forward(const Matrix& x);
  Matrix Forward(const Matrix& x, const std::vector<int>& offsets);

  /// Same pooling as the segmented Forward but records no argmax state, so
  /// it is const, cannot feed Backward, and is safe to call concurrently.
  Matrix ForwardInference(const Matrix& x, const std::vector<int>& offsets) const;

  Matrix Backward(const Matrix& grad_out);

 private:
  std::vector<int> argmax_;  ///< (segments x C) winning row per (segment, channel).
  int last_rows_ = 0;
  int last_segments_ = 0;
};

}  // namespace neo::nn
