// Tree convolution (Mou et al. [40], paper §4.1) over binary plan trees.
//
// A tree sample is a flattened node array with child indices; filters are
// triples of weight vectors (e_p, e_l, e_r) applied to each (node, left
// child, right child) triangle. Missing children behave as zero vectors
// (the paper attaches all-zero leaves). The output is a tree with identical
// structure and `out_channels` features per node.
//
// DynamicPooling flattens a tree into a single vector via per-channel max
// (paper §4 / Appendix A).
//
// ---- Training-path design (sparse split-weight conv) -----------------------
//
// Block layout. The stacked (3*cin x cout) weight is three contiguous
// (cin x cout) blocks — W_p (self), W_l (left), W_r (right), rows
// [b*cin, (b+1)*cin). Both the training Forward/Backward and the inference
// fast path compute per block:
//
//   y = x W_p + bias + gather_l(x) W_l + gather_r(x) W_r
//
// where gather_s(x) collects the side-s child feature rows. Nothing ever
// materializes the (n x 3*cin) [self ; left ; right] concatenation, and in
// sparse mode (the default) the gathers carry ONLY rows whose child exists —
// and are never even copied: the GEMM/gradient kernels read the rows through
// the per-forest index lists (MatMulGather* in matrix.h), so a training step
// does one pass over the child features per block with zero gather
// materialization. The dense fallback materializes its zero-padded gathers
// explicitly; that padding is exactly the cost the sparse path deletes.
//
// Why absent-child blocks are skippable. An absent child contributes a zero
// feature row; a zero row's products are exact no-ops in every kernel's
// summation (single-fma-chain / explicit-zero-skip — see matrix.h's
// MatMulTransposeAInto contract and the gemm_acc_rows notes in
// matrix_simd.h). Leaves dominate plan forests, so skipping them cuts the
// training conv's flops by ~1/3 and halves the gather traffic.
//
// Summation-order contract. Every output element of the forward and of each
// gradient is computed in an order that is a fixed function of (k, m) within
// its block — never of the gather-row count or of row positions. Hence
//  (a) sparse (skip) and dense (zero-row-padded) training are BIT-IDENTICAL
//      under every kernel dispatch arm and every thread count — the dense
//      fallback (NEO_DENSE_TRAINING=1 / SetSparseTrainingConv(false)) is the
//      same code minus the skip, kept as a belt-and-braces escape hatch;
//  (b) the packed-forest and per-sample training paths share this one
//      forward/backward, so their forward values agree bitwise too (rows are
//      position-independent).
// Backward accumulates each weight-gradient block in place via the
// scatter-add MatMulTransposeAInto (no (3*cin x cout) temporary, no
// grad_concat): input gradients come from one MatMulTransposeBBlock per
// block, scattered to child rows (each node has at most one parent, so the
// scatter is race- and order-free).
//
// The dense concat path survives only under SetUseReferenceKernels(true),
// where benches reconstruct the seed training/inference path faithfully.
#pragma once

#include <cstdint>
#include <vector>

#include "src/nn/layers.h"

namespace neo::nn {

/// Flattened forest structure shared by all tree-conv layers of one forward
/// pass. Node features live in a (num_nodes x channels) matrix; `left` /
/// `right` give child row indices or -1.
struct TreeStructure {
  std::vector<int> left;
  std::vector<int> right;

  size_t NumNodes() const { return left.size(); }
};

/// Present-child gather list for one side of a forest: child[i] is the
/// side-child row of node parent[i]; parent indices ascend. Built once per
/// forest (PackPlanBatch / per-sample forward) and shared by every conv
/// layer's forward AND backward — the structure never changes across layers.
struct SideGather {
  std::vector<int> parent;
  std::vector<int> child;
};

/// Both sides' gather lists.
struct TreeGather {
  SideGather left;
  SideGather right;

  static TreeGather Build(const TreeStructure& tree);
  /// Build into an existing TreeGather, reusing its vectors' capacity (the
  /// zero-steady-state-allocation form).
  static void BuildInto(const TreeStructure& tree, TreeGather* out);
};

/// When true (default), the training conv gathers only present-child rows and
/// skips absent-child work entirely; when false, it gathers a zero row per
/// absent child (same code, same bits, dense flops). Initialized from the
/// environment: NEO_DENSE_TRAINING=1 forces the dense fallback. Process-wide;
/// intended for benches, the CI fallback matrix arm, and parity tests.
void SetSparseTrainingConv(bool sparse);
bool SparseTrainingConv();

/// One tree convolution layer: out[i] = x_i W_p + x_l W_l + x_r W_r + b.
///
/// `shared_suffix_dim` (s) declares that at inference time the last s input
/// channels of every node carry the same vector (Neo's spatially-replicated
/// query embedding): ForwardInference then takes the (n x (in-s)) varying
/// features plus the (1 x s) suffix and projects the suffix through each
/// weight block once per call instead of once per node.
class TreeConv {
 public:
  TreeConv(int in_channels, int out_channels, util::Rng& rng,
           int shared_suffix_dim = 0);

  /// Reusable inference scratch: gather buffers, per-side GEMM outputs, and
  /// the per-call suffix projections. Every buffer is capacity-reused
  /// (Reshape, fully overwritten), so a warmed Scratch makes repeated
  /// inference forwards heap-allocation-free. The layer itself holds no
  /// inference scratch, so concurrent callers (parallel plan searches) stay
  /// race-free by each owning one Scratch per layer.
  struct Scratch {
    Matrix gather;              ///< Child-feature gather buffer (per side).
    Matrix self;                ///< Dirty-row self GEMM output (Rows variants).
    Matrix lcontrib, rcontrib;  ///< Per-side GEMM outputs (both live at once
                                ///< so the epilogue can fuse them).
    Matrix suffix_self, suffix_left, suffix_right;  ///< Suffix projections.
    std::vector<int> lparent, rparent;  ///< Gather-row -> node maps.
  };

  /// Reusable training-path scratch, shared across all conv layers of one
  /// step (buffers Reshape to each layer's dims without reallocating).
  /// ValueNetwork owns one, passes it to every Forward/Backward, and by
  /// default RETAINS it across steps (high-water reuse: the steady-state
  /// training step performs zero heap allocations). Results are bit-identical
  /// with or without a scratch and whether or not it is retained (every
  /// reused element is fully overwritten).
  struct TrainScratch {
    Matrix gather;     ///< Dense-fallback zero-padded child gather.
    Matrix lcontrib;   ///< Left-side GEMM output.
    Matrix rcontrib;   ///< Right-side GEMM output.
    Matrix proj_self, proj_left, proj_right;  ///< (B x cout) suffix projections.
    Matrix seg_grad;   ///< (B x cout) per-sample grad sums (suffix backward).
    Matrix sgrad_tmp;  ///< (B x s) per-block suffix-grad staging.
    GemmScratch gemm;  ///< Pack + transpose staging for the block GEMMs.

    void Release() { *this = TrainScratch(); }
    size_t Bytes() const {
      return (gather.Size() + lcontrib.Size() + rcontrib.Size() +
              proj_self.Size() + proj_left.Size() + proj_right.Size() +
              seg_grad.Size() + sgrad_tmp.Size() + gemm.staging.Size() +
              gemm.pack.size()) * sizeof(float);
    }
  };

  /// Per-layer training-path counters, accumulated across Forward/Backward
  /// calls (training is single-threaded per network). `madds` count GEMM
  /// multiply-adds; `gather_bytes` counts gather/scatter row traffic;
  /// `rows_skipped` counts absent-child gather rows sparse mode avoided.
  struct TrainStats {
    uint64_t forward_madds = 0;
    uint64_t backward_madds = 0;
    uint64_t gather_bytes = 0;
    uint64_t rows_skipped = 0;
  };

  /// Training forward: x (nodes x in_channels) -> (nodes x out_channels) via
  /// the per-block gather/GEMM/scatter above. Always multiplies the LIVE
  /// weights (no packed copy), so direct parameter pokes stay visible.
  /// `gather`, when provided, must describe `tree` (PackPlanBatch builds it
  /// once per forest); nullptr builds one locally. Under
  /// SetUseReferenceKernels(true) this runs the seed dense-concat path
  /// instead (and caches the concat for the matching Backward).
  Matrix Forward(const TreeStructure& tree, const Matrix& x,
                 const TreeGather* gather = nullptr,
                 TrainScratch* scratch = nullptr);

  /// Fast-path training forward with the fused epilogue and the layer-0
  /// shared-suffix split (the training-side twin of ForwardInference's
  /// suffix handling). `x` holds only the (in - s) varying channels;
  /// `suffixes` is the (B x s) per-sample suffix stack (nullptr when the
  /// layer has no suffix), projected through each weight block ONCE PER
  /// FOREST instead of once per node; `node_seg` maps node -> sample row
  /// (nullptr = all sample 0). Bias, both side contributions, the suffix
  /// projections, and (when `leaky_alpha` >= 0) the leaky-ReLU are applied
  /// in one fused pass, so each post-activation row is written exactly once.
  /// Multiplies the LIVE weights. The per-element op order is a fixed
  /// function of the node's (left, right) presence alone, so sparse and
  /// dense training stay bit-identical and packed/per-sample forwards agree
  /// bitwise. Not available under SetUseReferenceKernels (callers keep the
  /// seed concat path there).
  void ForwardTrain(const TreeStructure& tree, const Matrix& x,
                    const Matrix* suffixes, const int* node_seg,
                    const TreeGather& gather, TrainScratch* scratch,
                    float leaky_alpha, Matrix* y);

  /// Backward for ForwardTrain. `grad_out` must already be masked through
  /// the activation derivative. Accumulates weight/bias gradients (top
  /// sub-blocks from the varying channels, suffix sub-blocks via per-sample
  /// segment sums). When `grad_suffix` is non-null it is OVERWRITTEN with
  /// the (B x s) suffix gradient. When `grad_in` is non-null (suffix-free
  /// layers only) it receives the (n x in) input gradient; layer 0 passes
  /// nullptr and skips the input-gradient GEMMs entirely — plan features
  /// are leaf inputs.
  void BackwardTrain(const TreeStructure& tree, const Matrix& x,
                     const Matrix* suffixes, const int* node_seg,
                     const Matrix& grad_out, const TreeGather& gather,
                     TrainScratch* scratch, Matrix* grad_in,
                     Matrix* grad_suffix);

  /// Inference-only forward that skips absent-child weight blocks:
  /// y = x*W_p + gather(x_left)*W_l + gather(x_right)*W_r + b. Most forest
  /// nodes are leaves, so this does roughly half the flops of Forward. With
  /// shared_suffix_dim > 0, `x` holds only the varying (in-s) channels and
  /// `shared_suffix` the common (1 x s) tail. Each output row depends only
  /// on that node's (self, left, right) features, so results are identical
  /// whether a tree is scored alone or in a batch. Caller must
  /// RefreshInferenceWeights() after any weight update; results may differ
  /// from Forward by accumulation-order ulps. Const and safe to call from
  /// many threads concurrently when each passes its own `scratch` (nullptr
  /// allocates locally).
  Matrix ForwardInference(const TreeStructure& tree, const Matrix& x,
                          const Matrix* shared_suffix = nullptr,
                          Scratch* scratch = nullptr) const;

  /// ForwardInference into a caller-owned output with the fused epilogue:
  /// self GEMM lands in `y`, then ONE serial pass per row applies bias,
  /// suffix projections, both side contributions, and (when `leaky_alpha`
  /// >= 0) the leaky-ReLU — the post-activation row is written exactly once,
  /// in the exact per-element op order of the unfused passes (bias, self
  /// suffix, left contrib, left suffix, right contrib, right suffix,
  /// activation), so results are bit-identical to running them separately
  /// under every dispatch arm. With a warmed `scratch` the call performs
  /// zero heap allocations. `leaky_alpha` < 0 skips the activation
  /// (pre-activation output, the compatibility wrapper's behavior).
  void ForwardInferenceInto(const TreeStructure& tree, const Matrix& x,
                            const Matrix* shared_suffix, Scratch* scratch,
                            float leaky_alpha, Matrix* y) const;

  /// Incremental variant of ForwardInference: computes ONLY the output rows
  /// listed in `rows` (ascending node indices), writing them into the
  /// pre-sized (nodes x out_channels) `y`; all other rows of `y` must already
  /// hold their values (the caller fills them from its activation cache).
  /// `x` still spans every node — a dirty row may gather a clean child's
  /// input. Each computed row runs the exact gather/GEMM/scatter arithmetic
  /// of the full pass (MatMul rows are position-independent), so it is
  /// bit-identical to the same row of ForwardInference. Same thread-safety
  /// and RefreshInferenceWeights contract as ForwardInference.
  void ForwardInferenceRows(const TreeStructure& tree, const Matrix& x,
                            const std::vector<int>& rows,
                            const Matrix* shared_suffix, Scratch* scratch,
                            Matrix* y, float leaky_alpha = -1.0f) const;

  /// Multi-query variant of ForwardInference for cross-query coalescing:
  /// the forest packs trees from K different queries, `suffixes` is the
  /// (K x s) stack of their shared-suffix vectors, and `node_seg[i]` names
  /// node i's query segment (children share their parent's segment, since a
  /// tree never spans queries). The K suffix projections are computed as one
  /// multi-row GEMM whose rows are bitwise equal to K separate (1 x s) GEMMs
  /// (MatMul rows are position-independent), and every per-row add runs in
  /// the exact order of the single-query path — so each output row is
  /// BIT-IDENTICAL to the same node scored through ForwardInference with its
  /// own query alone. Only layer 0 carries a suffix; deeper layers coalesce
  /// through the unmodified single-suffix-free functions. When the layer has
  /// no suffix (s == 0), pass an empty `suffixes`.
  Matrix ForwardInferenceMulti(const TreeStructure& tree, const Matrix& x,
                               const Matrix& suffixes,
                               const std::vector<int>& node_seg,
                               Scratch* scratch) const;

  /// ForwardInferenceMulti into a caller-owned output with the fused
  /// epilogue (see ForwardInferenceInto).
  void ForwardInferenceMultiInto(const TreeStructure& tree, const Matrix& x,
                                 const Matrix& suffixes,
                                 const std::vector<int>& node_seg,
                                 Scratch* scratch, float leaky_alpha,
                                 Matrix* y) const;

  /// Incremental multi-query variant (see ForwardInferenceRows): computes
  /// only `rows`, reading each row's suffix projection via `node_seg`.
  void ForwardInferenceRowsMulti(const TreeStructure& tree, const Matrix& x,
                                 const std::vector<int>& rows,
                                 const Matrix& suffixes,
                                 const std::vector<int>& node_seg,
                                 Scratch* scratch, Matrix* y,
                                 float leaky_alpha = -1.0f) const;

  /// Re-splits the stacked weight into the per-block copies ForwardInference
  /// multiplies with, pre-packed into the kernel dispatch panel layout so the
  /// hot gather/GEMM/scatter never repacks. Cheap (one copy of the weights).
  void RefreshInferenceWeights();

  /// Backward for a Forward over the same (tree, x, gather). Accumulates
  /// weight/bias gradients and returns grad_in (nodes x in_channels). Holds
  /// no cached state of its own outside reference mode — the caller passes
  /// the forward input back in (ValueNetwork keeps the per-layer
  /// post-activations it needs anyway, which is what dropped the per-layer
  /// (n x 3*cin) concat cache from training's footprint).
  Matrix Backward(const TreeStructure& tree, const Matrix& x,
                  const Matrix& grad_out, const TreeGather* gather = nullptr,
                  TrainScratch* scratch = nullptr);

  void CollectParams(std::vector<Param*>* out) {
    out->push_back(&weight_);
    out->push_back(&bias_);
  }

  /// Drops any batch-sized training scratch (the reference path's cached
  /// concat); a no-op for the block path, which holds none.
  void ReleaseTrainingScratch() { last_concat_ = Matrix(); }
  size_t TrainingScratchBytes() const {
    return last_concat_.Size() * sizeof(float);
  }

  const TrainStats& train_stats() const { return train_stats_; }
  void ResetTrainStats() { train_stats_ = TrainStats(); }

  int in_channels() const { return in_channels_; }
  int out_channels() const { return weight_.value.cols(); }

 private:
  int in_channels_;
  int shared_suffix_dim_;
  Param weight_;  ///< (3*in x out): [e_p; e_l; e_r] stacked.
  Param bias_;    ///< (1 x out)
  Matrix last_concat_;  ///< (nodes x 3*in); reference (seed) path only.
  TrainStats train_stats_;
  /// ((in - s) x out) varying-channel blocks of weight_, pre-packed for the
  /// active GEMM dispatch arm (MatMulPacked).
  PackedB w_self_, w_left_, w_right_;
  /// (s x out) shared-suffix blocks (empty when shared_suffix_dim_ == 0).
  PackedB w_self_suffix_, w_left_suffix_, w_right_suffix_;
  bool split_fresh_ = false;
};

/// Per-channel max pool over all nodes: (nodes x C) -> (1 x C).
///
/// The segmented overload pools a packed forest of N trees in one pass: rows
/// [offsets[s], offsets[s+1]) of `x` pool into row s of the output, giving an
/// (N x C) matrix that feeds the FC head as one batch.
class DynamicPooling {
 public:
  Matrix Forward(const Matrix& x);
  Matrix Forward(const Matrix& x, const std::vector<int>& offsets);

  /// Segmented Forward into a caller-owned output (capacity-reused; the
  /// zero-steady-state-allocation training form). Bit-identical to Forward.
  void ForwardInto(const Matrix& x, const std::vector<int>& offsets, Matrix* y);

  /// Same pooling as the segmented Forward but records no argmax state, so
  /// it is const, cannot feed Backward, and is safe to call concurrently.
  Matrix ForwardInference(const Matrix& x, const std::vector<int>& offsets) const;

  /// ForwardInference into a caller-owned output (capacity-reused).
  void ForwardInferenceInto(const Matrix& x, const std::vector<int>& offsets,
                            Matrix* y) const;

  Matrix Backward(const Matrix& grad_out);

  /// Backward into a caller-owned output (Reshape'd + zeroed, then the same
  /// scatter-add as Backward).
  void BackwardInto(const Matrix& grad_out, Matrix* grad_in);

  /// Drops the batch-sized argmax state after a training step.
  void ReleaseTrainingScratch() {
    argmax_.clear();
    argmax_.shrink_to_fit();
  }
  size_t TrainingScratchBytes() const { return argmax_.size() * sizeof(int); }

 private:
  std::vector<int> argmax_;  ///< (segments x C) winning row per (segment, channel).
  int last_rows_ = 0;
  int last_segments_ = 0;
};

}  // namespace neo::nn
