// Tree convolution (Mou et al. [40], paper §4.1) over binary plan trees.
//
// A tree sample is a flattened node array with child indices; filters are
// triples of weight vectors (e_p, e_l, e_r) applied to each (node, left
// child, right child) triangle. Missing children behave as zero vectors
// (the paper attaches all-zero leaves). The output is a tree with identical
// structure and `out_channels` features per node.
//
// DynamicPooling flattens a tree into a single vector via per-channel max
// (paper §4 / Appendix A).
#pragma once

#include <vector>

#include "src/nn/layers.h"

namespace neo::nn {

/// Flattened forest structure shared by all tree-conv layers of one forward
/// pass. Node features live in a (num_nodes x channels) matrix; `left` /
/// `right` give child row indices or -1.
struct TreeStructure {
  std::vector<int> left;
  std::vector<int> right;

  size_t NumNodes() const { return left.size(); }
};

/// One tree convolution layer: out[i] = [x_i ; x_l ; x_r] * W + b.
class TreeConv {
 public:
  TreeConv(int in_channels, int out_channels, util::Rng& rng);

  /// x: (nodes x in_channels) -> (nodes x out_channels).
  Matrix Forward(const TreeStructure& tree, const Matrix& x);

  /// Backward for the most recent Forward (same tree).
  Matrix Backward(const TreeStructure& tree, const Matrix& grad_out);

  void CollectParams(std::vector<Param*>* out) {
    out->push_back(&weight_);
    out->push_back(&bias_);
  }

  int in_channels() const { return in_channels_; }
  int out_channels() const { return weight_.value.cols(); }

 private:
  int in_channels_;
  Param weight_;  ///< (3*in x out): [e_p; e_l; e_r] stacked.
  Param bias_;    ///< (1 x out)
  Matrix last_concat_;  ///< (nodes x 3*in) cached for backward.
};

/// Per-channel max pool over all nodes: (nodes x C) -> (1 x C).
class DynamicPooling {
 public:
  Matrix Forward(const Matrix& x);
  Matrix Backward(const Matrix& grad_out);

 private:
  std::vector<int> argmax_;
  int last_rows_ = 0;
};

}  // namespace neo::nn
