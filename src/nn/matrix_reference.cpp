// Reference triple-loop GEMM kernels, in their own translation unit kept at
// the build's default -O2 (no vectorization override): benches use them to
// reconstruct the seed inference path faithfully, and tests use them as the
// ground truth for the blocked kernels.
//
// Not to be confused with the "portable" kernel dispatch arm
// (NEO_FORCE_PORTABLE / KernelIsa::kPortable): that arm is the register-
// blocked -O3 kernel in matrix.cpp — the fallback when no SIMD arm fits the
// CPU — while these naive loops exist only for seed-path benches and
// ground-truth tests (SetUseReferenceKernels).
#include "src/nn/matrix.h"

namespace neo::nn {

Matrix MatMulNaive(const Matrix& a, const Matrix& b) {
  NEO_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  for (int i = 0; i < n; ++i) {
    const float* arow = a.Row(i);
    float* orow = out.Row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;  // Seed kernel's sparse skip (one-hot inputs).
      const float* brow = b.Row(p);
      for (int j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix MatMulTransposeBNaive(const Matrix& a, const Matrix& b) {
  NEO_CHECK(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  const int n = a.rows(), k = a.cols(), m = b.rows();
  for (int i = 0; i < n; ++i) {
    const float* arow = a.Row(i);
    float* orow = out.Row(i);
    for (int j = 0; j < m; ++j) {
      const float* brow = b.Row(j);
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] = acc;
    }
  }
  return out;
}

Matrix MatMulTransposeANaive(const Matrix& a, const Matrix& b) {
  NEO_CHECK(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  for (int r = 0; r < n; ++r) {
    const float* arow = a.Row(r);
    const float* brow = b.Row(r);
    for (int i = 0; i < k; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;  // Seed kernel's sparse skip.
      float* orow = out.Row(i);
      for (int j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

void MatMulTransposeAIntoNaive(const Matrix& a, const Matrix& b, float* out) {
  NEO_CHECK(a.rows() == b.rows());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  for (int r = 0; r < n; ++r) {
    const float* arow = a.Row(r);
    const float* brow = b.Row(r);
    for (int i = 0; i < k; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;  // Zero rows contribute nothing.
      float* orow = out + static_cast<size_t>(i) * m;
      for (int j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
}

}  // namespace neo::nn
