#include "src/nn/matrix.h"

#include "src/util/thread_pool.h"

namespace neo::nn {

// Optimized GEMM kernels (this TU is compiled -O3; see CMakeLists.txt).
//
// MatMul — the inference hot path (tree-conv + FC forward) — uses a
// register-blocked kernel: outputs are produced in fixed 16-wide column
// chunks held in registers across the whole k sweep, with four interleaved
// k-chains per chunk so the FMA accumulation pipeline stays full even at the
// small output widths (16-64 channels) the value network uses.
//
// Numerical contract: each output element's summation order is a fixed
// function of (k, m) only — independent of the row's position and of how many
// rows the call carries. Scoring one plan or a packed batch of plans
// therefore yields bit-identical values, which keeps batched and per-
// candidate search decisions in lockstep. Results may differ from the
// reference kernels by accumulation-order ulps (tests allow 1e-5).
//
// The backward-only kernels (MatMulTransposeA/B) are built on the same row
// kernel where it wins: MatMulTransposeB always materializes b^T and uses
// it (so its outputs sum in the row kernel's interleaved-chain order, not
// the reference ascending-k order); MatMulTransposeA does the same for
// narrow outputs and otherwise keeps a rank-1-update kernel whose outputs
// sum in ascending input-row order. Both differ from the reference kernels
// by accumulation-order ulps; both are deterministic for a given shape.
//
// Parallelism: when ComputeThreads() > 1 and the product is large enough,
// each kernel partitions its *output rows* across the global thread pool.
// Every output row is produced by the same serial routine regardless of the
// partition, so parallel results are bit-identical to serial ones (and to
// any other thread count); the numerical contract above is unaffected.

namespace {

// Tile sizes (floats) for the backward kernels: a 64 x 128 block of outputs
// or inputs stays well inside L2 while the k-dim rows stream through L1.
constexpr int kBlockI = 64;
constexpr int kBlockJ = 128;

// Minimum multiply-add count before a kernel fans out over the pool; below
// this, the job-dispatch overhead exceeds the work.
constexpr int64_t kMinParallelMadds = 1 << 16;

inline int MinInt(int a, int b) { return a < b ? a : b; }

bool g_use_reference_kernels = false;

thread_local int g_compute_threads = 1;

}  // namespace

void SetUseReferenceKernels(bool use) { g_use_reference_kernels = use; }
bool UseReferenceKernels() { return g_use_reference_kernels; }

const char* KernelArchString() {
#ifdef NEO_NATIVE_ARCH
  return "avx2+fma";
#else
  return "default";
#endif
}

void SetComputeThreads(int n) { g_compute_threads = n < 1 ? 1 : n; }
int ComputeThreads() { return g_compute_threads; }

void ParallelRows(int64_t n, int64_t min_parallel,
                  const std::function<void(int64_t, int64_t)>& fn) {
  const int threads = ComputeThreads();
  if (threads <= 1 || n < min_parallel) {
    if (n > 0) fn(0, n);
    return;
  }
  util::ThreadPool::Global().ParallelFor(0, n, threads, /*grain=*/0, fn);
}

namespace {

/// One output row x one 16-wide (or `w`-wide tail) column chunk: four
/// interleaved k-chains c0..c3 (p % 4), folded as (c0+c1)+(c2+c3). The chunk
/// accumulators live in vector registers for the whole k sweep.
template <bool kFullWidth>
inline void MatMulRowChunk(const float* __restrict arow,
                           const float* __restrict bdata, float* __restrict orow,
                           int k, int m, int jc, int w) {
  constexpr int kW = 16;
  float c0[kW] = {0}, c1[kW] = {0}, c2[kW] = {0}, c3[kW] = {0};
  const int width = kFullWidth ? kW : w;
  int p = 0;
  for (; p + 3 < k; p += 4) {
    const float av0 = arow[p], av1 = arow[p + 1];
    const float av2 = arow[p + 2], av3 = arow[p + 3];
    const float* __restrict b0 = bdata + static_cast<size_t>(p) * m + jc;
    const float* __restrict b1 = b0 + m;
    const float* __restrict b2 = b1 + m;
    const float* __restrict b3 = b2 + m;
    for (int jj = 0; jj < width; ++jj) {
      c0[jj] += av0 * b0[jj];
      c1[jj] += av1 * b1[jj];
      c2[jj] += av2 * b2[jj];
      c3[jj] += av3 * b3[jj];
    }
  }
  for (; p < k; ++p) {
    const float av = arow[p];
    const float* __restrict bp = bdata + static_cast<size_t>(p) * m + jc;
    for (int jj = 0; jj < width; ++jj) c0[jj] += av * bp[jj];
  }
  for (int jj = 0; jj < width; ++jj) {
    orow[jc + jj] = (c0[jj] + c1[jj]) + (c2[jj] + c3[jj]);
  }
}

/// Output rows [r0, r1) of a * b. The per-row routine is shared verbatim by
/// the serial and parallel paths, so row values never depend on the split.
void MatMulRows(const float* __restrict adata, const float* __restrict bdata,
                float* __restrict odata, int64_t r0, int64_t r1, int k, int m) {
  constexpr int kW = 16;
  for (int64_t i = r0; i < r1; ++i) {
    const float* __restrict arow = adata + static_cast<size_t>(i) * k;
    float* __restrict orow = odata + static_cast<size_t>(i) * m;
    int jc = 0;
    for (; jc + kW <= m; jc += kW) {
      MatMulRowChunk<true>(arow, bdata, orow, k, m, jc, kW);
    }
    if (jc < m) MatMulRowChunk<false>(arow, bdata, orow, k, m, jc, m - jc);
  }
}

// a * b^T has no dedicated row routine: at the backward's shapes (k of
// 32-64, m of 100-160) dot-product traversal of b is L1-bandwidth bound and
// an order of magnitude slower than the register-blocked row kernel, so
// MatMulTransposeB materializes b^T once (a (m x k) copy, trivial next to
// the product) and reuses MatMulRows.

/// Output rows [i0, i1) of a^T * b (a: n x k, out: k x m). Each output
/// accumulates a rank-1 update per input row r; r stays the outermost
/// accumulation dimension so every output sums in ascending-r order no
/// matter how the i-range is partitioned.
void MatMulTransposeARows(const float* __restrict adata,
                          const float* __restrict bdata, float* __restrict odata,
                          int64_t i0, int64_t i1, int n, int k, int m) {
  for (int jc = 0; jc < m; jc += kBlockJ) {
    const int jend = MinInt(jc + kBlockJ, m);
    const int jlen = jend - jc;
    for (int64_t icc = i0; icc < i1; icc += kBlockI) {
      const int64_t icend = std::min<int64_t>(icc + kBlockI, i1);
      for (int r = 0; r < n; ++r) {
        const float* __restrict arow = adata + static_cast<size_t>(r) * k;
        const float* __restrict brow = bdata + static_cast<size_t>(r) * m + jc;
        for (int64_t i = icc; i < icend; ++i) {
          const float av = arow[i];
          if (av == 0.0f) continue;
          float* __restrict orow = odata + static_cast<size_t>(i) * m + jc;
          for (int j = 0; j < jlen; ++j) orow[j] += av * brow[j];
        }
      }
    }
  }
}

/// Row-partitions [0, rows) across the pool when the product is big enough
/// for the dispatch to pay off; otherwise runs the range inline.
void DispatchRows(int64_t rows, int64_t madds,
                  const std::function<void(int64_t, int64_t)>& fn) {
  const int threads = ComputeThreads();
  if (threads <= 1 || rows <= 1 || madds < kMinParallelMadds) {
    fn(0, rows);
    return;
  }
  util::ThreadPool::Global().ParallelFor(0, rows, threads, /*grain=*/0, fn);
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  if (g_use_reference_kernels) return MatMulNaive(a, b);
  NEO_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  const float* adata = a.data();
  const float* bdata = b.data();
  float* odata = out.data();
  DispatchRows(n, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
    MatMulRows(adata, bdata, odata, r0, r1, k, m);
  });
  return out;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  if (g_use_reference_kernels) return MatMulTransposeBNaive(a, b);
  NEO_CHECK(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  const int n = a.rows(), k = a.cols(), m = b.rows();
  Matrix bt(k, m);
  for (int r = 0; r < m; ++r) {
    const float* src = b.Row(r);
    for (int c = 0; c < k; ++c) bt.At(c, r) = src[c];
  }
  const float* adata = a.data();
  const float* btdata = bt.data();
  float* odata = out.data();
  DispatchRows(n, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
    MatMulRows(adata, btdata, odata, r0, r1, k, m);
  });
  return out;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  if (g_use_reference_kernels) return MatMulTransposeANaive(a, b);
  NEO_CHECK(a.rows() == b.rows());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  // Narrow outputs starve the rank-1-update kernel (each input row touches
  // only m accumulators); transposing a once and running the register-
  // blocked row kernel is 2-4x faster there. Wide outputs and short inputs
  // (the per-sample training path) keep the update kernel, which also skips
  // the concat matrix's structural zeros. The branch is a fixed function of
  // the shape, so results stay deterministic for any thread count.
  if (n >= 64 && m <= 48) {
    Matrix at(k, n);
    for (int r = 0; r < n; ++r) {
      const float* src = a.Row(r);
      for (int c = 0; c < k; ++c) at.At(c, r) = src[c];
    }
    Matrix out(k, m);
    const float* atdata = at.data();
    const float* bdata = b.data();
    float* odata = out.data();
    DispatchRows(k, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
      MatMulRows(atdata, bdata, odata, r0, r1, n, m);
    });
    return out;
  }
  Matrix out(k, m);
  const float* adata = a.data();
  const float* bdata = b.data();
  float* odata = out.data();
  // Partitioned over output rows (the k dimension of a^T); the reduction
  // dimension r is never split, keeping ascending-r accumulation per output.
  DispatchRows(k, static_cast<int64_t>(n) * k * m, [&](int64_t i0, int64_t i1) {
    MatMulTransposeARows(adata, bdata, odata, i0, i1, n, k, m);
  });
  return out;
}

}  // namespace neo::nn
