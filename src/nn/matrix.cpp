#include "src/nn/matrix.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "src/nn/matrix_simd.h"
#include "src/util/thread_pool.h"

namespace neo::nn {

// Optimized GEMM kernels (this TU is compiled -O3; see CMakeLists.txt).
//
// MatMul — the inference hot path (tree-conv + FC forward) — uses a
// register-blocked kernel: outputs are produced in fixed 16-wide column
// chunks held in registers across the whole k sweep, with four interleaved
// k-chains per chunk so the FMA accumulation pipeline stays full even at the
// small output widths (16-64 channels) the value network uses.
//
// Numerical contract: each output element's summation order is a fixed
// function of (k, m) only — independent of the row's position and of how many
// rows the call carries. Scoring one plan or a packed batch of plans
// therefore yields bit-identical values, which keeps batched and per-
// candidate search decisions in lockstep. Results may differ from the
// reference kernels by accumulation-order ulps (tests allow 1e-5).
//
// The backward-only kernels (MatMulTransposeA/B) are built on the same row
// kernel where it wins: MatMulTransposeB always materializes b^T and uses
// it (so its outputs sum in the row kernel's interleaved-chain order, not
// the reference ascending-k order); MatMulTransposeA does the same for
// narrow outputs and otherwise keeps a rank-1-update kernel whose outputs
// sum in ascending input-row order. Both differ from the reference kernels
// by accumulation-order ulps; both are deterministic for a given shape.
//
// Parallelism: when ComputeThreads() > 1 and the product is large enough,
// each kernel partitions its *output rows* across the global thread pool.
// Every output row is produced by the same serial routine regardless of the
// partition, so parallel results are bit-identical to serial ones (and to
// any other thread count); the numerical contract above is unaffected.

namespace {

// Minimum multiply-add count before a kernel fans out over the pool; below
// this, the job-dispatch overhead exceeds the work.
constexpr int64_t kMinParallelMadds = 1 << 16;

inline int MinInt(int a, int b) { return a < b ? a : b; }

bool g_use_reference_kernels = false;

thread_local int g_compute_threads = 1;

// ---- Kernel dispatch state -------------------------------------------------

// -1 = not yet initialized; otherwise a KernelIsa value. Atomic (relaxed)
// so concurrent searches can read it while a bench/test thread switches arms
// without a data race; the arm itself is process-wide configuration like
// g_use_reference_kernels.
std::atomic<int> g_kernel_isa{-1};
std::once_flag g_kernel_isa_once;

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports includes the OS XSAVE/ymm-state check.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool CpuSupportsAvx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

const detail::SimdGemmKernels* KernelsFor(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kAvx2:
      return detail::Avx2Kernels();
    case KernelIsa::kAvx512:
      return detail::Avx512Kernels();
    default:
      return nullptr;
  }
}

KernelIsa DetectStartupIsa() {
  const char* force = std::getenv("NEO_FORCE_PORTABLE");
  if (force != nullptr && force[0] != '\0' && std::strcmp(force, "0") != 0) {
    return KernelIsa::kPortable;
  }
  if (const char* pick = std::getenv("NEO_KERNEL_ISA")) {
    for (KernelIsa isa : {KernelIsa::kPortable, KernelIsa::kAvx2, KernelIsa::kAvx512}) {
      if (std::strcmp(pick, KernelIsaName(isa)) == 0 && KernelIsaAvailable(isa)) {
        return isa;
      }
    }
    // Unknown or unavailable request: fall through to auto-detection rather
    // than crash a startup path that never calls back into user code.
  }
  return BestKernelIsa();
}

void EnsureKernelIsaInit() {
  std::call_once(g_kernel_isa_once, [] {
    g_kernel_isa.store(static_cast<int>(DetectStartupIsa()),
                       std::memory_order_relaxed);
  });
}

/// The active arm's SIMD kernels, or nullptr when the portable arm is active.
const detail::SimdGemmKernels* ActiveSimdKernels() {
  return KernelsFor(ActiveKernelIsa());
}

}  // namespace

void SetUseReferenceKernels(bool use) { g_use_reference_kernels = use; }
bool UseReferenceKernels() { return g_use_reference_kernels; }

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kAvx2:
      return "avx2";
    case KernelIsa::kAvx512:
      return "avx512";
    default:
      return "portable";
  }
}

bool KernelIsaAvailable(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kAvx2:
      return detail::Avx2Kernels() != nullptr && CpuSupportsAvx2();
    case KernelIsa::kAvx512:
      return detail::Avx512Kernels() != nullptr && CpuSupportsAvx512();
    default:
      return true;
  }
}

KernelIsa BestKernelIsa() {
  if (KernelIsaAvailable(KernelIsa::kAvx512)) return KernelIsa::kAvx512;
  if (KernelIsaAvailable(KernelIsa::kAvx2)) return KernelIsa::kAvx2;
  return KernelIsa::kPortable;
}

std::vector<KernelIsa> AvailableKernelIsas() {
  std::vector<KernelIsa> isas = {KernelIsa::kPortable};
  for (KernelIsa isa : {KernelIsa::kAvx2, KernelIsa::kAvx512}) {
    if (KernelIsaAvailable(isa)) isas.push_back(isa);
  }
  return isas;
}

KernelIsa ActiveKernelIsa() {
  EnsureKernelIsaInit();
  return static_cast<KernelIsa>(g_kernel_isa.load(std::memory_order_relaxed));
}

void SetKernelIsa(KernelIsa isa) {
  NEO_CHECK(KernelIsaAvailable(isa));
  EnsureKernelIsaInit();  // A later lazy init must not clobber the override.
  g_kernel_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
}

const char* KernelArchString() { return KernelIsaName(ActiveKernelIsa()); }

const char* PortableArmCodegen() {
#ifdef NEO_NATIVE_ARCH
  return "explicit avx2 autovec (NEO_NATIVE_ARCH)";
#else
  return "march=native autovec where available";
#endif
}

void SetComputeThreads(int n) { g_compute_threads = n < 1 ? 1 : n; }
int ComputeThreads() { return g_compute_threads; }

void ParallelRows(int64_t n, int64_t min_parallel,
                  const std::function<void(int64_t, int64_t)>& fn) {
  const int threads = ComputeThreads();
  if (threads <= 1 || n < min_parallel) {
    if (n > 0) fn(0, n);
    return;
  }
  util::ThreadPool::Global().ParallelFor(0, n, threads, /*grain=*/0, fn);
}

namespace {

/// One output row x one 16-wide (or `w`-wide tail) column chunk: four
/// interleaved k-chains c0..c3 (p % 4), folded as (c0+c1)+(c2+c3). The chunk
/// accumulators live in vector registers for the whole k sweep.
template <bool kFullWidth>
inline void MatMulRowChunk(const float* __restrict arow,
                           const float* __restrict bdata, float* __restrict orow,
                           int k, int m, int jc, int w) {
  constexpr int kW = 16;
  float c0[kW] = {0}, c1[kW] = {0}, c2[kW] = {0}, c3[kW] = {0};
  const int width = kFullWidth ? kW : w;
  int p = 0;
  for (; p + 3 < k; p += 4) {
    const float av0 = arow[p], av1 = arow[p + 1];
    const float av2 = arow[p + 2], av3 = arow[p + 3];
    const float* __restrict b0 = bdata + static_cast<size_t>(p) * m + jc;
    const float* __restrict b1 = b0 + m;
    const float* __restrict b2 = b1 + m;
    const float* __restrict b3 = b2 + m;
    for (int jj = 0; jj < width; ++jj) {
      c0[jj] += av0 * b0[jj];
      c1[jj] += av1 * b1[jj];
      c2[jj] += av2 * b2[jj];
      c3[jj] += av3 * b3[jj];
    }
  }
  for (; p < k; ++p) {
    const float av = arow[p];
    const float* __restrict bp = bdata + static_cast<size_t>(p) * m + jc;
    for (int jj = 0; jj < width; ++jj) c0[jj] += av * bp[jj];
  }
  for (int jj = 0; jj < width; ++jj) {
    orow[jc + jj] = (c0[jj] + c1[jj]) + (c2[jj] + c3[jj]);
  }
}

/// Output rows [r0, r1) of a * b. The per-row routine is shared verbatim by
/// the serial and parallel paths, so row values never depend on the split.
void MatMulRows(const float* __restrict adata, const float* __restrict bdata,
                float* __restrict odata, int64_t r0, int64_t r1, int k, int m) {
  constexpr int kW = 16;
  for (int64_t i = r0; i < r1; ++i) {
    const float* __restrict arow = adata + static_cast<size_t>(i) * k;
    float* __restrict orow = odata + static_cast<size_t>(i) * m;
    int jc = 0;
    for (; jc + kW <= m; jc += kW) {
      MatMulRowChunk<true>(arow, bdata, orow, k, m, jc, kW);
    }
    if (jc < m) MatMulRowChunk<false>(arow, bdata, orow, k, m, jc, m - jc);
  }
}

// a * b^T has no dedicated row routine: at the backward's shapes (k of
// 32-64, m of 100-160) dot-product traversal of b is L1-bandwidth bound and
// an order of magnitude slower than the register-blocked row kernel, so
// MatMulTransposeB materializes b^T once (a (m x k) copy, trivial next to
// the product) and reuses MatMulRows.

/// Output rows [i0, i1) of a^T * b (a: n x k, out: k x m). Each output
/// accumulates a rank-1 update per input row r; r stays the outermost
/// accumulation dimension so every output sums in ascending-r order no
/// matter how the i-range is partitioned.
void MatMulTransposeARows(const float* __restrict adata,
                          const float* __restrict bdata, float* __restrict odata,
                          int64_t i0, int64_t i1, int n, int k, int m) {
  for (int jc = 0; jc < m; jc += detail::kTaBlockJ) {
    const int jend = MinInt(jc + detail::kTaBlockJ, m);
    const int jlen = jend - jc;
    for (int64_t icc = i0; icc < i1; icc += detail::kTaBlockI) {
      const int64_t icend = std::min<int64_t>(icc + detail::kTaBlockI, i1);
      for (int r = 0; r < n; ++r) {
        const float* __restrict arow = adata + static_cast<size_t>(r) * k;
        const float* __restrict brow = bdata + static_cast<size_t>(r) * m + jc;
        for (int64_t i = icc; i < icend; ++i) {
          const float av = arow[i];
          if (av == 0.0f) continue;
          float* __restrict orow = odata + static_cast<size_t>(i) * m + jc;
          for (int j = 0; j < jlen; ++j) orow[j] += av * brow[j];
        }
      }
    }
  }
}

/// Row-partitions [0, rows) across the pool when the product is big enough
/// for the dispatch to pay off; otherwise runs the range inline.
void DispatchRows(int64_t rows, int64_t madds,
                  const std::function<void(int64_t, int64_t)>& fn) {
  const int threads = ComputeThreads();
  if (threads <= 1 || rows <= 1 || madds < kMinParallelMadds) {
    fn(0, rows);
    return;
  }
  util::ThreadPool::Global().ParallelFor(0, rows, threads, /*grain=*/0, fn);
}

/// Per-call pack buffer for the SIMD arms. Local (not thread_local): the
/// work-stealing pool lets a caller execute unrelated tasks while helping
/// its own ParallelFor, so a thread-shared buffer could be repacked out from
/// under a job; a fresh vector per GEMM is cheap next to the product.
struct PackScratch {
  std::vector<float> buf;
  float* Prepare(int k, int m) {
    buf.resize(detail::PackedBSize(k, m));
    return buf.data();
  }
};

}  // namespace

namespace detail {

void PackBPanels(const float* b, int k, int m, float* packed) {
  const int panels = NumPanels(m);
  for (int pj = 0; pj < panels; ++pj) {
    const int jc = pj * kPanelWidth;
    const int w = MinInt(kPanelWidth, m - jc);
    float* dst = packed + static_cast<size_t>(pj) * k * kPanelWidth;
    for (int p = 0; p < k; ++p, dst += kPanelWidth) {
      const float* src = b + static_cast<size_t>(p) * m + jc;
      for (int jj = 0; jj < w; ++jj) dst[jj] = src[jj];
      for (int jj = w; jj < kPanelWidth; ++jj) dst[jj] = 0.0f;
    }
  }
}

void PackBTransposedPanels(const float* b, int k, int m, float* packed) {
  // b is (m x k) row-major; pack its transpose's panels (column panel jc of
  // b^T is rows [jc, jc+16) of b read column-wise).
  const int panels = NumPanels(m);
  for (int pj = 0; pj < panels; ++pj) {
    const int jc = pj * kPanelWidth;
    const int w = MinInt(kPanelWidth, m - jc);
    float* dst = packed + static_cast<size_t>(pj) * k * kPanelWidth;
    for (int p = 0; p < k; ++p, dst += kPanelWidth) {
      for (int jj = 0; jj < w; ++jj) {
        dst[jj] = b[static_cast<size_t>(jc + jj) * k + p];
      }
      for (int jj = w; jj < kPanelWidth; ++jj) dst[jj] = 0.0f;
    }
  }
}

}  // namespace detail

void PackedB::Assign(const Matrix& b) { Assign(b.data(), b.rows(), b.cols()); }

void PackedB::Assign(const float* b, int rows, int cols) {
  if (b_.rows() != rows || b_.cols() != cols) b_ = Matrix(rows, cols);
  std::copy(b, b + static_cast<size_t>(rows) * cols, b_.data());
  panels_.resize(detail::PackedBSize(rows, cols));
  detail::PackBPanels(b, rows, cols, panels_.data());
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  if (g_use_reference_kernels) return MatMulNaive(a, b);
  NEO_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  const float* adata = a.data();
  const float* bdata = b.data();
  float* odata = out.data();
  if (const detail::SimdGemmKernels* simd = ActiveSimdKernels()) {
    PackScratch scratch;
    const float* packed = scratch.Prepare(k, m);
    detail::PackBPanels(bdata, k, m, scratch.buf.data());
    DispatchRows(n, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
      simd->gemm_rows(adata, packed, odata, r0, r1, k, m);
    });
    return out;
  }
  DispatchRows(n, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
    MatMulRows(adata, bdata, odata, r0, r1, k, m);
  });
  return out;
}

Matrix MatMulPacked(const Matrix& a, const PackedB& b) {
  if (g_use_reference_kernels) return MatMulNaive(a, b.unpacked());
  NEO_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  const float* adata = a.data();
  float* odata = out.data();
  if (const detail::SimdGemmKernels* simd = ActiveSimdKernels()) {
    const float* packed = b.panels();
    DispatchRows(n, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
      simd->gemm_rows(adata, packed, odata, r0, r1, k, m);
    });
    return out;
  }
  const float* bdata = b.unpacked().data();
  DispatchRows(n, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
    MatMulRows(adata, bdata, odata, r0, r1, k, m);
  });
  return out;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  if (g_use_reference_kernels) return MatMulTransposeBNaive(a, b);
  NEO_CHECK(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  const int n = a.rows(), k = a.cols(), m = b.rows();
  const float* adata = a.data();
  float* odata = out.data();
  if (const detail::SimdGemmKernels* simd = ActiveSimdKernels()) {
    // Pack b^T's panels straight from b — no intermediate transpose matrix.
    PackScratch scratch;
    const float* packed = scratch.Prepare(k, m);
    detail::PackBTransposedPanels(b.data(), k, m, scratch.buf.data());
    DispatchRows(n, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
      simd->gemm_rows(adata, packed, odata, r0, r1, k, m);
    });
    return out;
  }
  Matrix bt(k, m);
  for (int r = 0; r < m; ++r) {
    const float* src = b.Row(r);
    for (int c = 0; c < k; ++c) bt.At(c, r) = src[c];
  }
  const float* btdata = bt.data();
  DispatchRows(n, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
    MatMulRows(adata, btdata, odata, r0, r1, k, m);
  });
  return out;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  if (g_use_reference_kernels) return MatMulTransposeANaive(a, b);
  NEO_CHECK(a.rows() == b.rows());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  // Narrow outputs starve the rank-1-update kernel (each input row touches
  // only m accumulators — and it moves an output cache line per vector FMA);
  // transposing a once and running the register-blocked row kernel is 2-4x
  // faster there. Under the SIMD arms the row kernel wins across the whole
  // backward m range, so those arms transpose for any backward-sized m,
  // while the portable arm keeps the m <= 48 condition it was tuned with
  // (wide outputs + short inputs — the per-sample training path — keep the
  // update kernel, which also skips the concat matrix's structural zeros).
  // The branch is a fixed function of (shape, arm), so within-arm results
  // stay deterministic for any thread count.
  const detail::SimdGemmKernels* simd = ActiveSimdKernels();
  const int m_transpose_max = simd != nullptr ? 160 : 48;
  if (n >= 64 && m <= m_transpose_max) {
    Matrix at(k, n);
    for (int r = 0; r < n; ++r) {
      const float* src = a.Row(r);
      for (int c = 0; c < k; ++c) at.At(c, r) = src[c];
    }
    Matrix out(k, m);
    const float* atdata = at.data();
    const float* bdata = b.data();
    float* odata = out.data();
    if (simd != nullptr) {
      PackScratch scratch;
      const float* packed = scratch.Prepare(n, m);
      detail::PackBPanels(bdata, n, m, scratch.buf.data());
      DispatchRows(k, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
        simd->gemm_rows(atdata, packed, odata, r0, r1, n, m);
      });
      return out;
    }
    DispatchRows(k, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
      MatMulRows(atdata, bdata, odata, r0, r1, n, m);
    });
    return out;
  }
  Matrix out(k, m);
  const float* adata = a.data();
  const float* bdata = b.data();
  float* odata = out.data();
  // Partitioned over output rows (the k dimension of a^T); the reduction
  // dimension r is never split, keeping ascending-r accumulation per output.
  DispatchRows(k, static_cast<int64_t>(n) * k * m, [&](int64_t i0, int64_t i1) {
    if (simd != nullptr) {
      simd->ta_update_rows(adata, bdata, odata, i0, i1, n, k, m);
    } else {
      MatMulTransposeARows(adata, bdata, odata, i0, i1, n, k, m);
    }
  });
  return out;
}

}  // namespace neo::nn
