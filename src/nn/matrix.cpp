#include "src/nn/matrix.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "src/nn/matrix_simd.h"
#include "src/util/thread_pool.h"

namespace neo::nn {

// Optimized GEMM kernels (this TU is compiled -O3; see CMakeLists.txt).
//
// MatMul — the inference hot path (tree-conv + FC forward) — uses a
// register-blocked kernel: outputs are produced in fixed 16-wide column
// chunks held in registers across the whole k sweep, with four interleaved
// k-chains per chunk so the FMA accumulation pipeline stays full even at the
// small output widths (16-64 channels) the value network uses.
//
// Numerical contract: each output element's summation order is a fixed
// function of (k, m) only — independent of the row's position and of how many
// rows the call carries. Scoring one plan or a packed batch of plans
// therefore yields bit-identical values, which keeps batched and per-
// candidate search decisions in lockstep. Results may differ from the
// reference kernels by accumulation-order ulps (tests allow 1e-5).
//
// The backward-only kernels (MatMulTransposeA/B) are built on the same row
// kernel where it wins: MatMulTransposeB always materializes b^T and uses
// it (so its outputs sum in the row kernel's interleaved-chain order, not
// the reference ascending-k order); MatMulTransposeA does the same for
// narrow outputs and otherwise keeps a rank-1-update kernel whose outputs
// sum in ascending input-row order. Both differ from the reference kernels
// by accumulation-order ulps; both are deterministic for a given shape.
//
// Parallelism: when ComputeThreads() > 1 and the product is large enough,
// each kernel partitions its *output rows* across the global thread pool.
// Every output row is produced by the same serial routine regardless of the
// partition, so parallel results are bit-identical to serial ones (and to
// any other thread count); the numerical contract above is unaffected.

namespace {

// Minimum multiply-add count before a kernel fans out over the pool; below
// this, the job-dispatch overhead exceeds the work.
constexpr int64_t kMinParallelMadds = 1 << 16;

inline int MinInt(int a, int b) { return a < b ? a : b; }

bool g_use_reference_kernels = false;

thread_local int g_compute_threads = 1;

// ---- Kernel dispatch state -------------------------------------------------

// -1 = not yet initialized; otherwise a KernelIsa value. Atomic (relaxed)
// so concurrent searches can read it while a bench/test thread switches arms
// without a data race; the arm itself is process-wide configuration like
// g_use_reference_kernels.
std::atomic<int> g_kernel_isa{-1};
std::once_flag g_kernel_isa_once;

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports includes the OS XSAVE/ymm-state check.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool CpuSupportsAvx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

const detail::SimdGemmKernels* KernelsFor(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kAvx2:
      return detail::Avx2Kernels();
    case KernelIsa::kAvx512:
      return detail::Avx512Kernels();
    default:
      return nullptr;
  }
}

KernelIsa DetectStartupIsa() {
  const char* force = std::getenv("NEO_FORCE_PORTABLE");
  if (force != nullptr && force[0] != '\0' && std::strcmp(force, "0") != 0) {
    return KernelIsa::kPortable;
  }
  if (const char* pick = std::getenv("NEO_KERNEL_ISA")) {
    for (KernelIsa isa : {KernelIsa::kPortable, KernelIsa::kAvx2, KernelIsa::kAvx512}) {
      if (std::strcmp(pick, KernelIsaName(isa)) == 0 && KernelIsaAvailable(isa)) {
        return isa;
      }
    }
    // Unknown or unavailable request: fall through to auto-detection rather
    // than crash a startup path that never calls back into user code.
  }
  return BestKernelIsa();
}

void EnsureKernelIsaInit() {
  std::call_once(g_kernel_isa_once, [] {
    g_kernel_isa.store(static_cast<int>(DetectStartupIsa()),
                       std::memory_order_relaxed);
  });
}

/// The active arm's SIMD kernels, or nullptr when the portable arm is active.
const detail::SimdGemmKernels* ActiveSimdKernels() {
  return KernelsFor(ActiveKernelIsa());
}

}  // namespace

void SetUseReferenceKernels(bool use) { g_use_reference_kernels = use; }
bool UseReferenceKernels() { return g_use_reference_kernels; }

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kAvx2:
      return "avx2";
    case KernelIsa::kAvx512:
      return "avx512";
    default:
      return "portable";
  }
}

bool KernelIsaAvailable(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kAvx2:
      return detail::Avx2Kernels() != nullptr && CpuSupportsAvx2();
    case KernelIsa::kAvx512:
      return detail::Avx512Kernels() != nullptr && CpuSupportsAvx512();
    default:
      return true;
  }
}

KernelIsa BestKernelIsa() {
  if (KernelIsaAvailable(KernelIsa::kAvx512)) return KernelIsa::kAvx512;
  if (KernelIsaAvailable(KernelIsa::kAvx2)) return KernelIsa::kAvx2;
  return KernelIsa::kPortable;
}

std::vector<KernelIsa> AvailableKernelIsas() {
  std::vector<KernelIsa> isas = {KernelIsa::kPortable};
  for (KernelIsa isa : {KernelIsa::kAvx2, KernelIsa::kAvx512}) {
    if (KernelIsaAvailable(isa)) isas.push_back(isa);
  }
  return isas;
}

KernelIsa ActiveKernelIsa() {
  EnsureKernelIsaInit();
  return static_cast<KernelIsa>(g_kernel_isa.load(std::memory_order_relaxed));
}

void SetKernelIsa(KernelIsa isa) {
  NEO_CHECK(KernelIsaAvailable(isa));
  EnsureKernelIsaInit();  // A later lazy init must not clobber the override.
  g_kernel_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
}

const char* KernelArchString() { return KernelIsaName(ActiveKernelIsa()); }

const char* PortableArmCodegen() {
#ifdef NEO_NATIVE_ARCH
  return "explicit avx2 autovec (NEO_NATIVE_ARCH)";
#else
  return "march=native autovec where available";
#endif
}

void SetComputeThreads(int n) { g_compute_threads = n < 1 ? 1 : n; }
int ComputeThreads() { return g_compute_threads; }

void ParallelRowsImpl(int64_t n, int64_t min_parallel,
                      void (*fn)(const void*, int64_t, int64_t),
                      const void* ctx) {
  const int threads = ComputeThreads();
  if (threads <= 1 || n < min_parallel) {
    if (n > 0) fn(ctx, 0, n);
    return;
  }
  // {fn, ctx} is 16 trivially-copyable bytes: fits std::function's inline
  // storage, so even the pool path constructs no heap-backed callable.
  util::ThreadPool::Global().ParallelFor(
      0, n, threads, /*grain=*/0,
      [fn, ctx](int64_t r0, int64_t r1) { fn(ctx, r0, r1); });
}

namespace {

/// One output row x one 16-wide (or `w`-wide tail) column chunk: four
/// interleaved k-chains c0..c3 (p % 4), folded as (c0+c1)+(c2+c3). The chunk
/// accumulators live in vector registers for the whole k sweep.
template <bool kFullWidth>
inline void MatMulRowChunk(const float* __restrict arow,
                           const float* __restrict bdata, float* __restrict orow,
                           int k, int m, int jc, int w) {
  constexpr int kW = 16;
  float c0[kW] = {0}, c1[kW] = {0}, c2[kW] = {0}, c3[kW] = {0};
  const int width = kFullWidth ? kW : w;
  int p = 0;
  for (; p + 3 < k; p += 4) {
    const float av0 = arow[p], av1 = arow[p + 1];
    const float av2 = arow[p + 2], av3 = arow[p + 3];
    const float* __restrict b0 = bdata + static_cast<size_t>(p) * m + jc;
    const float* __restrict b1 = b0 + m;
    const float* __restrict b2 = b1 + m;
    const float* __restrict b3 = b2 + m;
    for (int jj = 0; jj < width; ++jj) {
      c0[jj] += av0 * b0[jj];
      c1[jj] += av1 * b1[jj];
      c2[jj] += av2 * b2[jj];
      c3[jj] += av3 * b3[jj];
    }
  }
  for (; p < k; ++p) {
    const float av = arow[p];
    const float* __restrict bp = bdata + static_cast<size_t>(p) * m + jc;
    for (int jj = 0; jj < width; ++jj) c0[jj] += av * bp[jj];
  }
  for (int jj = 0; jj < width; ++jj) {
    orow[jc + jj] = (c0[jj] + c1[jj]) + (c2[jj] + c3[jj]);
  }
}

/// Output rows [r0, r1) of a * b. The per-row routine is shared verbatim by
/// the serial and parallel paths, so row values never depend on the split.
/// `arows` optionally remaps A rows (zero-copy gather; output rows keep
/// their positions) — the values, and hence the bits, match multiplying the
/// materialized gather.
void MatMulRows(const float* __restrict adata, const int* __restrict arows,
                const float* __restrict bdata, float* __restrict odata,
                int64_t r0, int64_t r1, int k, int m) {
  constexpr int kW = 16;
  for (int64_t i = r0; i < r1; ++i) {
    const float* __restrict arow =
        adata + static_cast<size_t>(arows != nullptr ? arows[i] : i) * k;
    float* __restrict orow = odata + static_cast<size_t>(i) * m;
    int jc = 0;
    for (; jc + kW <= m; jc += kW) {
      MatMulRowChunk<true>(arow, bdata, orow, k, m, jc, kW);
    }
    if (jc < m) MatMulRowChunk<false>(arow, bdata, orow, k, m, jc, m - jc);
  }
}

/// Accumulating portable row chunk for MatMulTransposeAInto's transposed-GEMM
/// strategy: orow[j] becomes a SINGLE ascending-k chain seeded from the
/// existing orow[j] — deliberately not the 4-interleaved-chain structure of
/// MatMulRowChunk. With one chain, a zero a entry contributes an exact no-op
/// at its own position, so inserting zero rows into the reduction (the dense
/// training fallback's padding) cannot move any product between chains or
/// change any output bit. The jj lanes stay independent, so the loop still
/// vectorizes across the chunk width.
template <bool kFullWidth>
inline void MatMulAccRowChunk(const float* __restrict arow,
                              const float* __restrict bdata,
                              float* __restrict orow, int k, int m, int jc,
                              int w) {
  constexpr int kW = 16;
  float acc[kW];
  const int width = kFullWidth ? kW : w;
  for (int jj = 0; jj < width; ++jj) acc[jj] = orow[jc + jj];
  for (int p = 0; p < k; ++p) {
    const float av = arow[p];
    const float* __restrict bp = bdata + static_cast<size_t>(p) * m + jc;
    for (int jj = 0; jj < width; ++jj) acc[jj] += av * bp[jj];
  }
  for (int jj = 0; jj < width; ++jj) orow[jc + jj] = acc[jj];
}

/// Accumulating twin of MatMulRows (o += a * b); see MatMulAccRowChunk.
void MatMulAccRows(const float* __restrict adata, const int* __restrict arows,
                   const float* __restrict bdata, float* __restrict odata,
                   int64_t r0, int64_t r1, int k, int m) {
  constexpr int kW = 16;
  for (int64_t i = r0; i < r1; ++i) {
    const float* __restrict arow =
        adata + static_cast<size_t>(arows != nullptr ? arows[i] : i) * k;
    float* __restrict orow = odata + static_cast<size_t>(i) * m;
    int jc = 0;
    for (; jc + kW <= m; jc += kW) {
      MatMulAccRowChunk<true>(arow, bdata, orow, k, m, jc, kW);
    }
    if (jc < m) MatMulAccRowChunk<false>(arow, bdata, orow, k, m, jc, m - jc);
  }
}

// a * b^T has no dedicated row routine: at the backward's shapes (k of
// 32-64, m of 100-160) dot-product traversal of b is L1-bandwidth bound and
// an order of magnitude slower than the register-blocked row kernel, so
// MatMulTransposeB materializes b^T once (a (m x k) copy, trivial next to
// the product) and reuses MatMulRows.

/// Output rows [i0, i1) of a^T * b (a: n x k, out: k x m). Each output
/// accumulates a rank-1 update per input row r; r stays the outermost
/// accumulation dimension so every output sums in ascending-r order no
/// matter how the i-range is partitioned.
void MatMulTransposeARows(const float* __restrict adata,
                          const int* __restrict arows,
                          const float* __restrict bdata,
                          const int* __restrict brows, float* __restrict odata,
                          int64_t i0, int64_t i1, int n, int k, int m) {
  for (int jc = 0; jc < m; jc += detail::kTaBlockJ) {
    const int jend = MinInt(jc + detail::kTaBlockJ, m);
    const int jlen = jend - jc;
    for (int64_t icc = i0; icc < i1; icc += detail::kTaBlockI) {
      const int64_t icend = std::min<int64_t>(icc + detail::kTaBlockI, i1);
      for (int r = 0; r < n; ++r) {
        const float* __restrict arow =
            adata + static_cast<size_t>(arows != nullptr ? arows[r] : r) * k;
        const float* __restrict brow =
            bdata + static_cast<size_t>(brows != nullptr ? brows[r] : r) * m + jc;
        for (int64_t i = icc; i < icend; ++i) {
          const float av = arow[i];
          if (av == 0.0f) continue;
          float* __restrict orow = odata + static_cast<size_t>(i) * m + jc;
          for (int j = 0; j < jlen; ++j) orow[j] += av * brow[j];
        }
      }
    }
  }
}

/// Row-partitions [0, rows) across the pool when the product is big enough
/// for the dispatch to pay off; otherwise runs the range inline. A template
/// (lambda captures stay on the stack; the pool path gets a 16-byte SSO
/// std::function) so GEMM calls never heap-allocate for dispatch.
template <typename Fn>
void DispatchRows(int64_t rows, int64_t madds, const Fn& fn) {
  const int threads = ComputeThreads();
  if (threads <= 1 || rows <= 1 || madds < kMinParallelMadds) {
    fn(0, rows);
    return;
  }
  void (*tramp)(const void*, int64_t, int64_t) =
      [](const void* c, int64_t r0, int64_t r1) {
        (*static_cast<const Fn*>(c))(r0, r1);
      };
  const void* ctx = &fn;
  util::ThreadPool::Global().ParallelFor(
      0, rows, threads, /*grain=*/0,
      [tramp, ctx](int64_t r0, int64_t r1) { tramp(ctx, r0, r1); });
}

}  // namespace

namespace detail {

void PackBPanels(const float* b, int k, int m, float* packed) {
  const int panels = NumPanels(m);
  for (int pj = 0; pj < panels; ++pj) {
    const int jc = pj * kPanelWidth;
    const int w = MinInt(kPanelWidth, m - jc);
    float* dst = packed + static_cast<size_t>(pj) * k * kPanelWidth;
    for (int p = 0; p < k; ++p, dst += kPanelWidth) {
      const float* src = b + static_cast<size_t>(p) * m + jc;
      for (int jj = 0; jj < w; ++jj) dst[jj] = src[jj];
      for (int jj = w; jj < kPanelWidth; ++jj) dst[jj] = 0.0f;
    }
  }
}

void PackBPanelsGathered(const float* b, const int* brows, int k, int m,
                         float* packed) {
  const int panels = NumPanels(m);
  for (int pj = 0; pj < panels; ++pj) {
    const int jc = pj * kPanelWidth;
    const int w = MinInt(kPanelWidth, m - jc);
    float* dst = packed + static_cast<size_t>(pj) * k * kPanelWidth;
    for (int p = 0; p < k; ++p, dst += kPanelWidth) {
      const float* src =
          b + static_cast<size_t>(brows != nullptr ? brows[p] : p) * m + jc;
      for (int jj = 0; jj < w; ++jj) dst[jj] = src[jj];
      for (int jj = w; jj < kPanelWidth; ++jj) dst[jj] = 0.0f;
    }
  }
}

void PackBTransposedPanels(const float* b, int k, int m, float* packed) {
  // b is (m x k) row-major; pack its transpose's panels (column panel jc of
  // b^T is rows [jc, jc+16) of b read column-wise).
  const int panels = NumPanels(m);
  for (int pj = 0; pj < panels; ++pj) {
    const int jc = pj * kPanelWidth;
    const int w = MinInt(kPanelWidth, m - jc);
    float* dst = packed + static_cast<size_t>(pj) * k * kPanelWidth;
    for (int p = 0; p < k; ++p, dst += kPanelWidth) {
      for (int jj = 0; jj < w; ++jj) {
        dst[jj] = b[static_cast<size_t>(jc + jj) * k + p];
      }
      for (int jj = w; jj < kPanelWidth; ++jj) dst[jj] = 0.0f;
    }
  }
}

}  // namespace detail

void PackedB::Assign(const Matrix& b) { Assign(b.data(), b.rows(), b.cols()); }

void PackedB::Assign(const float* b, int rows, int cols) {
  if (b_.rows() != rows || b_.cols() != cols) b_ = Matrix(rows, cols);
  std::copy(b, b + static_cast<size_t>(rows) * cols, b_.data());
  panels_.resize(detail::PackedBSize(rows, cols));
  detail::PackBPanels(b, rows, cols, panels_.data());
}

namespace {

/// Prepares a B-panel pack buffer: the caller's reusable GemmScratch when
/// provided (growth-only resize — no per-call realloc or re-zero), a local
/// otherwise.
float* PreparePack(GemmScratch* scratch, std::vector<float>* local, int k,
                   int m) {
  std::vector<float>* buf = scratch != nullptr ? &scratch->pack : local;
  if (buf->size() < detail::PackedBSize(k, m)) {
    buf->resize(detail::PackedBSize(k, m));
  }
  return buf->data();
}

/// Shared body of MatMul and MatMulBlock: out = a * b for a raw row-major
/// (k x m) right-hand side, written into the Reshape'd `out`. Reference-
/// kernel routing happens in the callers (the naive kernels take Matrix
/// operands).
void MatMulImplInto(const Matrix& a, const int* arows, int nrows,
                    const float* bdata, int k, int m, Matrix* out,
                    GemmScratch* scratch) {
  NEO_CHECK(a.cols() == k);
  const int n = arows != nullptr ? nrows : a.rows();
  out->Reshape(n, m);
  const float* adata = a.data();
  float* odata = out->data();
  if (const detail::SimdGemmKernels* simd = ActiveSimdKernels()) {
    std::vector<float> local;
    const float* packed = PreparePack(scratch, &local, k, m);
    detail::PackBPanels(bdata, k, m, const_cast<float*>(packed));
    DispatchRows(n, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
      simd->gemm_rows(adata, arows, packed, odata, r0, r1, k, m);
    });
    return;
  }
  DispatchRows(n, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
    MatMulRows(adata, arows, bdata, odata, r0, r1, k, m);
  });
}

/// Wraps a raw (rows x cols) block in a Matrix for the reference kernels
/// (bench/test-only path; the copy is irrelevant there).
Matrix BlockToMatrix(const float* b, int rows, int cols) {
  Matrix m(rows, cols);
  std::copy(b, b + static_cast<size_t>(rows) * cols, m.data());
  return m;
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  if (g_use_reference_kernels) return MatMulNaive(a, b);
  NEO_CHECK(a.cols() == b.rows());
  Matrix out;
  MatMulImplInto(a, nullptr, 0, b.data(), b.rows(), b.cols(), &out, nullptr);
  return out;
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out,
                GemmScratch* scratch) {
  if (g_use_reference_kernels) {
    *out = MatMulNaive(a, b);
    return;
  }
  NEO_CHECK(a.cols() == b.rows());
  MatMulImplInto(a, nullptr, 0, b.data(), b.rows(), b.cols(), out, scratch);
}

Matrix MatMulBlock(const Matrix& a, const float* b, int k, int m) {
  if (g_use_reference_kernels) {
    return MatMulNaive(a, BlockToMatrix(b, k, m));
  }
  Matrix out;
  MatMulImplInto(a, nullptr, 0, b, k, m, &out, nullptr);
  return out;
}

void MatMulBlockInto(const Matrix& a, const float* b, int k, int m,
                     Matrix* out, GemmScratch* scratch) {
  if (g_use_reference_kernels) {
    *out = MatMulNaive(a, BlockToMatrix(b, k, m));
    return;
  }
  MatMulImplInto(a, nullptr, 0, b, k, m, out, scratch);
}

namespace {

/// Materializes a row gather for the reference/naive fallbacks (bench/test
/// paths; values — and hence results — match the zero-copy kernels).
Matrix GatherRows(const Matrix& a, const int* rows, int nrows) {
  Matrix g(nrows, a.cols());
  for (int r = 0; r < nrows; ++r) {
    std::copy(a.Row(rows[r]), a.Row(rows[r]) + a.cols(), g.Row(r));
  }
  return g;
}

}  // namespace

void MatMulGatherBlockInto(const Matrix& a, const int* rows, int nrows,
                           const float* b, int k, int m, Matrix* out,
                           GemmScratch* scratch) {
  if (g_use_reference_kernels) {
    *out = MatMulNaive(GatherRows(a, rows, nrows), BlockToMatrix(b, k, m));
    return;
  }
  MatMulImplInto(a, rows, nrows, b, k, m, out, scratch);
}

Matrix MatMulPacked(const Matrix& a, const PackedB& b) {
  if (g_use_reference_kernels) return MatMulNaive(a, b.unpacked());
  NEO_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  const float* adata = a.data();
  float* odata = out.data();
  if (const detail::SimdGemmKernels* simd = ActiveSimdKernels()) {
    const float* packed = b.panels();
    DispatchRows(n, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
      simd->gemm_rows(adata, nullptr, packed, odata, r0, r1, k, m);
    });
    return out;
  }
  const float* bdata = b.unpacked().data();
  DispatchRows(n, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
    MatMulRows(adata, nullptr, bdata, odata, r0, r1, k, m);
  });
  return out;
}

void MatMulPackedInto(const Matrix& a, const PackedB& b, Matrix* out) {
  if (g_use_reference_kernels) {
    *out = MatMulNaive(a, b.unpacked());
    return;
  }
  NEO_CHECK(a.cols() == b.rows());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  out->Reshape(n, m);
  const float* adata = a.data();
  float* odata = out->data();
  if (const detail::SimdGemmKernels* simd = ActiveSimdKernels()) {
    const float* packed = b.panels();
    DispatchRows(n, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
      simd->gemm_rows(adata, nullptr, packed, odata, r0, r1, k, m);
    });
    return;
  }
  const float* bdata = b.unpacked().data();
  DispatchRows(n, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
    MatMulRows(adata, nullptr, bdata, odata, r0, r1, k, m);
  });
}

namespace {

/// Shared body of MatMulTransposeB and MatMulTransposeBBlock: out = a * b^T
/// for a raw row-major (m x k) right-hand side, into the Reshape'd `out`.
void MatMulTransposeBImplInto(const Matrix& a, const int* arows, int nrows,
                              const float* bdata, int m, Matrix* out,
                              GemmScratch* scratch) {
  const int n = arows != nullptr ? nrows : a.rows();
  const int k = a.cols();
  out->Reshape(n, m);
  const float* adata = a.data();
  float* odata = out->data();
  if (const detail::SimdGemmKernels* simd = ActiveSimdKernels()) {
    // Pack b^T's panels straight from b — no intermediate transpose matrix.
    std::vector<float> local;
    const float* packed = PreparePack(scratch, &local, k, m);
    detail::PackBTransposedPanels(bdata, k, m, const_cast<float*>(packed));
    DispatchRows(n, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
      simd->gemm_rows(adata, arows, packed, odata, r0, r1, k, m);
    });
    return;
  }
  Matrix bt_local;
  Matrix& bt = scratch != nullptr ? scratch->staging : bt_local;
  bt.Reshape(k, m);  // Fully overwritten below.
  for (int r = 0; r < m; ++r) {
    const float* src = bdata + static_cast<size_t>(r) * k;
    for (int c = 0; c < k; ++c) bt.At(c, r) = src[c];
  }
  const float* btdata = bt.data();
  DispatchRows(n, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
    MatMulRows(adata, arows, btdata, odata, r0, r1, k, m);
  });
}

}  // namespace

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  if (g_use_reference_kernels) return MatMulTransposeBNaive(a, b);
  NEO_CHECK(a.cols() == b.cols());
  Matrix out;
  MatMulTransposeBImplInto(a, nullptr, 0, b.data(), b.rows(), &out, nullptr);
  return out;
}

void MatMulTransposeBInto(const Matrix& a, const Matrix& b, Matrix* out,
                          GemmScratch* scratch) {
  if (g_use_reference_kernels) {
    *out = MatMulTransposeBNaive(a, b);
    return;
  }
  NEO_CHECK(a.cols() == b.cols());
  MatMulTransposeBImplInto(a, nullptr, 0, b.data(), b.rows(), out, scratch);
}

Matrix MatMulTransposeBBlock(const Matrix& a, const float* b, int m) {
  if (g_use_reference_kernels) {
    return MatMulTransposeBNaive(a, BlockToMatrix(b, m, a.cols()));
  }
  Matrix out;
  MatMulTransposeBImplInto(a, nullptr, 0, b, m, &out, nullptr);
  return out;
}

void MatMulTransposeBBlockInto(const Matrix& a, const float* b, int m,
                               Matrix* out, GemmScratch* scratch) {
  if (g_use_reference_kernels) {
    *out = MatMulTransposeBNaive(a, BlockToMatrix(b, m, a.cols()));
    return;
  }
  MatMulTransposeBImplInto(a, nullptr, 0, b, m, out, scratch);
}

void MatMulGatherTransposeBBlockInto(const Matrix& a, const int* rows,
                                     int nrows, const float* b, int m,
                                     Matrix* out, GemmScratch* scratch) {
  if (g_use_reference_kernels) {
    *out = MatMulTransposeBNaive(GatherRows(a, rows, nrows),
                                 BlockToMatrix(b, m, a.cols()));
    return;
  }
  MatMulTransposeBImplInto(a, rows, nrows, b, m, out, scratch);
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  if (g_use_reference_kernels) return MatMulTransposeANaive(a, b);
  NEO_CHECK(a.rows() == b.rows());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  // Narrow outputs starve the rank-1-update kernel (each input row touches
  // only m accumulators — and it moves an output cache line per vector FMA);
  // transposing a once and running the register-blocked row kernel is 2-4x
  // faster there. Under the SIMD arms the row kernel wins across the whole
  // backward m range, so those arms transpose for any backward-sized m,
  // while the portable arm keeps the m <= 48 condition it was tuned with
  // (wide outputs + short inputs — the per-sample training path — keep the
  // update kernel, which also skips the concat matrix's structural zeros).
  // The branch is a fixed function of (shape, arm), so within-arm results
  // stay deterministic for any thread count.
  const detail::SimdGemmKernels* simd = ActiveSimdKernels();
  const int m_transpose_max = simd != nullptr ? 160 : 48;
  if (n >= 64 && m <= m_transpose_max) {
    Matrix at(k, n);
    for (int r = 0; r < n; ++r) {
      const float* src = a.Row(r);
      for (int c = 0; c < k; ++c) at.At(c, r) = src[c];
    }
    Matrix out(k, m);
    const float* atdata = at.data();
    const float* bdata = b.data();
    float* odata = out.data();
    if (simd != nullptr) {
      std::vector<float> local;
      const float* packed = PreparePack(nullptr, &local, n, m);
      detail::PackBPanels(bdata, n, m, const_cast<float*>(packed));
      DispatchRows(k, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
        simd->gemm_rows(atdata, nullptr, packed, odata, r0, r1, n, m);
      });
      return out;
    }
    DispatchRows(k, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
      MatMulRows(atdata, nullptr, bdata, odata, r0, r1, n, m);
    });
    return out;
  }
  Matrix out(k, m);
  const float* adata = a.data();
  const float* bdata = b.data();
  float* odata = out.data();
  // Partitioned over output rows (the k dimension of a^T); the reduction
  // dimension r is never split, keeping ascending-r accumulation per output.
  DispatchRows(k, static_cast<int64_t>(n) * k * m, [&](int64_t i0, int64_t i1) {
    if (simd != nullptr) {
      simd->ta_update_rows(adata, nullptr, bdata, nullptr, odata, i0, i1, n, k, m);
    } else {
      MatMulTransposeARows(adata, nullptr, bdata, nullptr, odata, i0, i1, n, k, m);
    }
  });
  return out;
}

namespace {

/// Shared body of MatMulTransposeAInto and its zero-copy-gather variant:
/// out += a[arows]^T b[brows] over `n` (possibly remapped) input rows.
void MatMulTransposeAIntoImpl(const Matrix& a, const int* arows,
                              const Matrix& b, const int* brows, int n,
                              float* out, GemmScratch* scratch) {
  const int k = a.cols(), m = b.cols();
  const float* adata = a.data();
  const float* bdata = b.data();
  // Strategy choice is a function of (k, m, arm) ONLY — unlike
  // MatMulTransposeA, n (the reduction length) must not participate, because
  // the sparse and dense training conv call this with different n for the
  // same logical gradient and both must take the same summation path (see
  // matrix.h). Both strategies sum ascending input rows with exact-no-op
  // zero rows: the transposed-GEMM path seeds a single per-element chain
  // from `out` (gemm_acc_rows / MatMulAccRows), the rank-1 path accumulates
  // row-by-row with an explicit zero skip / no-op fma.
  //
  // Under the SIMD arms a SMALL output block (k*m floats within easy L1
  // reach — every tree-conv weight-gradient block qualifies) skips the
  // transpose + pack entirely: the 4-row-unrolled rank-1 kernel streams a
  // and b exactly once while the whole output stays L1-resident, which beats
  // the transposed GEMM's extra two passes at these shapes.
  const detail::SimdGemmKernels* simd = ActiveSimdKernels();
  const bool small_block =
      simd != nullptr && static_cast<int64_t>(k) * m <= 4096;
  const int m_transpose_max =
      small_block ? 0 : (simd != nullptr ? 160 : 48);
  if (m <= m_transpose_max) {
    Matrix local_at;
    Matrix* at = scratch != nullptr ? &scratch->staging : &local_at;
    at->Reshape(k, n);
    for (int r = 0; r < n; ++r) {
      const float* src = a.Row(arows != nullptr ? arows[r] : r);
      for (int c = 0; c < k; ++c) at->At(c, r) = src[c];
    }
    const float* atdata = at->data();
    if (simd != nullptr) {
      std::vector<float> local;
      const float* packed = PreparePack(scratch, &local, n, m);
      detail::PackBPanelsGathered(bdata, brows, n, m, const_cast<float*>(packed));
      DispatchRows(k, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
        simd->gemm_acc_rows(atdata, nullptr, packed, out, r0, r1, n, m);
      });
      return;
    }
    Matrix local_bt;
    const float* b_rows_data = bdata;
    if (brows != nullptr) {
      local_bt.Reshape(n, m);
      for (int r = 0; r < n; ++r) {
        std::copy(b.Row(brows[r]), b.Row(brows[r]) + m, local_bt.Row(r));
      }
      b_rows_data = local_bt.data();
    }
    DispatchRows(k, static_cast<int64_t>(n) * k * m, [&](int64_t r0, int64_t r1) {
      MatMulAccRows(atdata, nullptr, b_rows_data, out, r0, r1, n, m);
    });
    return;
  }
  DispatchRows(k, static_cast<int64_t>(n) * k * m, [&](int64_t i0, int64_t i1) {
    if (simd != nullptr) {
      simd->ta_update_rows(adata, arows, bdata, brows, out, i0, i1, n, k, m);
    } else {
      MatMulTransposeARows(adata, arows, bdata, brows, out, i0, i1, n, k, m);
    }
  });
}

}  // namespace

void MatMulTransposeAInto(const Matrix& a, const Matrix& b, float* out,
                          GemmScratch* scratch) {
  if (g_use_reference_kernels) {
    MatMulTransposeAIntoNaive(a, b, out);
    return;
  }
  NEO_CHECK(a.rows() == b.rows());
  MatMulTransposeAIntoImpl(a, nullptr, b, nullptr, a.rows(), out, scratch);
}

void MatMulGatherTransposeAInto(const Matrix& a, const int* arows,
                                const Matrix& b, const int* brows, int nrows,
                                float* out, GemmScratch* scratch) {
  if (g_use_reference_kernels) {
    MatMulTransposeAIntoNaive(GatherRows(a, arows, nrows),
                              GatherRows(b, brows, nrows), out);
    return;
  }
  MatMulTransposeAIntoImpl(a, arows, b, brows, nrows, out, scratch);
}

// ---- Fused Adam update -----------------------------------------------------

namespace detail {

void AdamUpdateScalarRange(float* w, float* m, float* v, const float* g,
                           int64_t i0, int64_t i1, const AdamScalars& s) {
  const float one_minus_b1 = 1.0f - s.beta1;
  const float one_minus_b2 = 1.0f - s.beta2;
  for (int64_t i = i0; i < i1; ++i) {
    // Every step is an explicit single-rounding op (fmaf / * / / / sqrt) so
    // the vector arms can mirror it lane-for-lane; no adjacent mul+add pairs
    // are left for the compiler to contract differently per build.
    const float grad = std::fmaf(s.weight_decay, w[i], g[i]);
    m[i] = std::fmaf(s.beta1, m[i], one_minus_b1 * grad);
    v[i] = std::fmaf(s.beta2, v[i], one_minus_b2 * (grad * grad));
    const float m_hat = m[i] / s.bc1;
    const float v_hat = v[i] / s.bc2;
    const float denom = std::sqrt(v_hat) + s.eps;
    w[i] = w[i] - (s.lr * m_hat) / denom;
  }
}

}  // namespace detail

void AdamFusedUpdate(float* w, float* m, float* v, const float* g,
                     int64_t count, const detail::AdamScalars& s) {
  const detail::SimdGemmKernels* simd = ActiveSimdKernels();
  // Element-partitioned over the pool: each (m, v, w) slot is owned by
  // exactly one chunk, and the per-element arithmetic is identical in every
  // arm and tail, so the update is bit-identical for any partition and arm.
  ParallelRows(count, /*min_parallel=*/1 << 13, [&](int64_t i0, int64_t i1) {
    if (simd != nullptr) {
      simd->adam_update(w, m, v, g, i0, i1, s);
    } else {
      detail::AdamUpdateScalarRange(w, m, v, g, i0, i1, s);
    }
  });
}

}  // namespace neo::nn
