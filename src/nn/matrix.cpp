#include "src/nn/matrix.h"

namespace neo::nn {

// Optimized GEMM kernels (this TU is compiled -O3; see CMakeLists.txt).
//
// MatMul — the inference hot path (tree-conv + FC forward) — uses a
// register-blocked kernel: outputs are produced in fixed 16-wide column
// chunks held in registers across the whole k sweep, with four interleaved
// k-chains per chunk so the FMA accumulation pipeline stays full even at the
// small output widths (16-64 channels) the value network uses.
//
// Numerical contract: each output element's summation order is a fixed
// function of (k, m) only — independent of the row's position and of how many
// rows the call carries. Scoring one plan or a packed batch of plans
// therefore yields bit-identical values, which keeps batched and per-
// candidate search decisions in lockstep. Results may differ from the
// reference kernels by accumulation-order ulps (tests allow 1e-5).
//
// The backward-only kernels (MatMulTransposeA/B) keep the reference
// ascending-k order per output and gain their speed from loop blocking and
// multi-accumulator ILP alone.

namespace {

// Tile sizes (floats) for the backward kernels: a 64 x 128 block of outputs
// or inputs stays well inside L2 while the k-dim rows stream through L1.
constexpr int kBlockI = 64;
constexpr int kBlockJ = 128;

inline int MinInt(int a, int b) { return a < b ? a : b; }

bool g_use_reference_kernels = false;

}  // namespace

void SetUseReferenceKernels(bool use) { g_use_reference_kernels = use; }
bool UseReferenceKernels() { return g_use_reference_kernels; }




namespace {

/// One output row x one 16-wide (or `w`-wide tail) column chunk: four
/// interleaved k-chains c0..c3 (p % 4), folded as (c0+c1)+(c2+c3). The chunk
/// accumulators live in vector registers for the whole k sweep.
template <bool kFullWidth>
inline void MatMulRowChunk(const float* __restrict arow,
                           const float* __restrict bdata, float* __restrict orow,
                           int k, int m, int jc, int w) {
  constexpr int kW = 16;
  float c0[kW] = {0}, c1[kW] = {0}, c2[kW] = {0}, c3[kW] = {0};
  const int width = kFullWidth ? kW : w;
  int p = 0;
  for (; p + 3 < k; p += 4) {
    const float av0 = arow[p], av1 = arow[p + 1];
    const float av2 = arow[p + 2], av3 = arow[p + 3];
    const float* __restrict b0 = bdata + static_cast<size_t>(p) * m + jc;
    const float* __restrict b1 = b0 + m;
    const float* __restrict b2 = b1 + m;
    const float* __restrict b3 = b2 + m;
    for (int jj = 0; jj < width; ++jj) {
      c0[jj] += av0 * b0[jj];
      c1[jj] += av1 * b1[jj];
      c2[jj] += av2 * b2[jj];
      c3[jj] += av3 * b3[jj];
    }
  }
  for (; p < k; ++p) {
    const float av = arow[p];
    const float* __restrict bp = bdata + static_cast<size_t>(p) * m + jc;
    for (int jj = 0; jj < width; ++jj) c0[jj] += av * bp[jj];
  }
  for (int jj = 0; jj < width; ++jj) {
    orow[jc + jj] = (c0[jj] + c1[jj]) + (c2[jj] + c3[jj]);
  }
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  if (g_use_reference_kernels) return MatMulNaive(a, b);
  NEO_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  const float* __restrict adata = a.data();
  const float* __restrict bdata = b.data();
  float* __restrict odata = out.data();

  constexpr int kW = 16;
  for (int i = 0; i < n; ++i) {
    const float* __restrict arow = adata + static_cast<size_t>(i) * k;
    float* __restrict orow = odata + static_cast<size_t>(i) * m;
    int jc = 0;
    for (; jc + kW <= m; jc += kW) {
      MatMulRowChunk<true>(arow, bdata, orow, k, m, jc, kW);
    }
    if (jc < m) MatMulRowChunk<false>(arow, bdata, orow, k, m, jc, m - jc);
  }
  return out;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  if (g_use_reference_kernels) return MatMulTransposeBNaive(a, b);
  NEO_CHECK(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  const int n = a.rows(), k = a.cols(), m = b.rows();
  const float* __restrict adata = a.data();
  const float* __restrict bdata = b.data();
  float* __restrict odata = out.data();

  // Both operands are traversed along contiguous k-rows; computing four dot
  // products per pass gives four independent accumulator chains (ILP) while
  // each output still sums in ascending-p order.
  for (int ic = 0; ic < n; ic += kBlockI) {
    const int iend = MinInt(ic + kBlockI, n);
    for (int jc = 0; jc < m; jc += kBlockJ) {
      const int jend = MinInt(jc + kBlockJ, m);
      for (int i = ic; i < iend; ++i) {
        const float* __restrict arow = adata + static_cast<size_t>(i) * k;
        float* __restrict orow = odata + static_cast<size_t>(i) * m;
        int j = jc;
        for (; j + 3 < jend; j += 4) {
          const float* __restrict b0 = bdata + static_cast<size_t>(j) * k;
          const float* __restrict b1 = bdata + static_cast<size_t>(j + 1) * k;
          const float* __restrict b2 = bdata + static_cast<size_t>(j + 2) * k;
          const float* __restrict b3 = bdata + static_cast<size_t>(j + 3) * k;
          float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
          for (int p = 0; p < k; ++p) {
            const float av = arow[p];
            acc0 += av * b0[p];
            acc1 += av * b1[p];
            acc2 += av * b2[p];
            acc3 += av * b3[p];
          }
          orow[j] = acc0;
          orow[j + 1] = acc1;
          orow[j + 2] = acc2;
          orow[j + 3] = acc3;
        }
        for (; j < jend; ++j) {
          const float* __restrict brow = bdata + static_cast<size_t>(j) * k;
          float acc = 0.0f;
          for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
          orow[j] = acc;
        }
      }
    }
  }
  return out;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  if (g_use_reference_kernels) return MatMulTransposeANaive(a, b);
  NEO_CHECK(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  const float* __restrict adata = a.data();
  const float* __restrict bdata = b.data();
  float* __restrict odata = out.data();

  // out (k x m) accumulates a rank-1 update per input row r; r stays the
  // outermost accumulation dimension so each output sums in ascending-r
  // order. Tiling i/j keeps the touched slice of `out` resident.
  for (int jc = 0; jc < m; jc += kBlockJ) {
    const int jend = MinInt(jc + kBlockJ, m);
    const int jlen = jend - jc;
    for (int icc = 0; icc < k; icc += kBlockI) {
      const int icend = MinInt(icc + kBlockI, k);
      for (int r = 0; r < n; ++r) {
        const float* __restrict arow = adata + static_cast<size_t>(r) * k;
        const float* __restrict brow = bdata + static_cast<size_t>(r) * m + jc;
        for (int i = icc; i < icend; ++i) {
          const float av = arow[i];
          if (av == 0.0f) continue;
          float* __restrict orow = odata + static_cast<size_t>(i) * m + jc;
          for (int j = 0; j < jlen; ++j) orow[j] += av * brow[j];
        }
      }
    }
  }
  return out;
}

}  // namespace neo::nn
