// AVX-512F GEMM micro-kernels (the "avx512" dispatch arm). Always compiled
// with -mavx512f (see CMakeLists.txt); the runtime dispatcher only routes
// here after cpuid confirms AVX-512 Foundation, and the TU degrades to an
// unavailable-arm stub on toolchains that cannot target it.
//
// The tile is 6x32: six output rows by two 16-float B panels, one zmm per
// (row, panel) accumulator — twelve independent FMA chains, mirroring the
// AVX2 arm's 6x16 shape at twice the width. A 16-float panel row is exactly
// one zmm load, so this arm reads the same packed-B layout as AVX2 (no
// repacking when the dispatch arm changes). Odd trailing panels run the same
// tile at single-panel width, and the zero-padded tail panel is handled with
// a masked store, so every output element is still a single ascending-k FMA
// chain regardless of tile placement.
#include "src/nn/matrix_simd.h"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace neo::nn::detail {
namespace {

/// MR (<= 6) output rows by NP (1 or 2) 16-float panels starting at column
/// jc. Panels are contiguous in the packed buffer (stride k*16 floats).
/// Accumulators are named variables behind `if constexpr` guards, not
/// arrays, for the same GCC SRA reason as the AVX2 tile (a [6][2] zmm array
/// is memory-backed and every FMA grows a spill store).
template <int MR, int NP, bool Acc = false>
inline void GemmTileAvx512(const float* __restrict a, const int* __restrict arows,
                           int64_t row, int k, const float* __restrict panel0,
                           float* __restrict o, int m, int jc) {
  static_assert(MR >= 1 && MR <= 6 && (NP == 1 || NP == 2));
  // `arows` remaps A rows only (zero-copy gather); output rows keep their
  // positions.
  const auto rptr = [&](int r) {
    const int64_t gr = row + (r < MR ? r : 0);
    return a + static_cast<size_t>(arows != nullptr ? arows[gr] : gr) * k;
  };
  const float* __restrict a0 = rptr(0);
  const float* __restrict a1 = rptr(1);
  const float* __restrict a2 = rptr(2);
  const float* __restrict a3 = rptr(3);
  const float* __restrict a4 = rptr(4);
  const float* __restrict a5 = rptr(5);
  __m512 c00 = _mm512_setzero_ps(), c01 = _mm512_setzero_ps();
  __m512 c10 = c00, c11 = c00, c20 = c00, c21 = c00;
  __m512 c30 = c00, c31 = c00, c40 = c00, c41 = c00;
  __m512 c50 = c00, c51 = c00;
  const float* __restrict panel1 =
      panel0 + (NP > 1 ? static_cast<size_t>(k) * kPanelWidth : 0);
  const auto load_mask = [&](int np) {
    const int w = m - (jc + np * kPanelWidth);
    return w >= kPanelWidth ? static_cast<__mmask16>(0xffff)
                            : static_cast<__mmask16>((1u << (w > 0 ? w : 0)) - 1u);
  };
  if constexpr (Acc) {
    // Accumulate mode: seed each chain from the existing output
    // (gemm_acc_rows contract); masked-off tail lanes seed zero and are
    // never stored.
    const auto load_row = [&](int r, __m512& v0, __m512& v1) {
      const float* orow = o + static_cast<size_t>(row + (r < MR ? r : 0)) * m + jc;
      v0 = _mm512_maskz_loadu_ps(load_mask(0), orow);
      if constexpr (NP > 1) {
        v1 = _mm512_maskz_loadu_ps(load_mask(1), orow + kPanelWidth);
      }
    };
    load_row(0, c00, c01);
    if constexpr (MR > 1) load_row(1, c10, c11);
    if constexpr (MR > 2) load_row(2, c20, c21);
    if constexpr (MR > 3) load_row(3, c30, c31);
    if constexpr (MR > 4) load_row(4, c40, c41);
    if constexpr (MR > 5) load_row(5, c50, c51);
  }
  for (int p = 0; p < k; ++p) {
    const __m512 b0 = _mm512_loadu_ps(panel0 + static_cast<size_t>(p) * kPanelWidth);
    __m512 b1 = b0;
    if constexpr (NP > 1) {
      b1 = _mm512_loadu_ps(panel1 + static_cast<size_t>(p) * kPanelWidth);
    }
    __m512 av = _mm512_set1_ps(a0[p]);
    c00 = _mm512_fmadd_ps(av, b0, c00);
    if constexpr (NP > 1) c01 = _mm512_fmadd_ps(av, b1, c01);
    if constexpr (MR > 1) {
      av = _mm512_set1_ps(a1[p]);
      c10 = _mm512_fmadd_ps(av, b0, c10);
      if constexpr (NP > 1) c11 = _mm512_fmadd_ps(av, b1, c11);
    }
    if constexpr (MR > 2) {
      av = _mm512_set1_ps(a2[p]);
      c20 = _mm512_fmadd_ps(av, b0, c20);
      if constexpr (NP > 1) c21 = _mm512_fmadd_ps(av, b1, c21);
    }
    if constexpr (MR > 3) {
      av = _mm512_set1_ps(a3[p]);
      c30 = _mm512_fmadd_ps(av, b0, c30);
      if constexpr (NP > 1) c31 = _mm512_fmadd_ps(av, b1, c31);
    }
    if constexpr (MR > 4) {
      av = _mm512_set1_ps(a4[p]);
      c40 = _mm512_fmadd_ps(av, b0, c40);
      if constexpr (NP > 1) c41 = _mm512_fmadd_ps(av, b1, c41);
    }
    if constexpr (MR > 5) {
      av = _mm512_set1_ps(a5[p]);
      c50 = _mm512_fmadd_ps(av, b0, c50);
      if constexpr (NP > 1) c51 = _mm512_fmadd_ps(av, b1, c51);
    }
  }
  const __mmask16 mask0 = load_mask(0);
  const __mmask16 mask1 = NP > 1 ? load_mask(1) : mask0;
  const auto store_row = [&](int r, __m512 v0, __m512 v1) {
    float* orow = o + static_cast<size_t>(row + r) * m + jc;
    _mm512_mask_storeu_ps(orow, mask0, v0);
    if constexpr (NP > 1) {
      _mm512_mask_storeu_ps(orow + kPanelWidth, mask1, v1);
    }
  };
  store_row(0, c00, c01);
  if constexpr (MR > 1) store_row(1, c10, c11);
  if constexpr (MR > 2) store_row(2, c20, c21);
  if constexpr (MR > 3) store_row(3, c30, c31);
  if constexpr (MR > 4) store_row(4, c40, c41);
  if constexpr (MR > 5) store_row(5, c50, c51);
}

template <int MR, bool Acc>
inline void GemmRowBlockAvx512(const float* a, const int* arows,
                               const float* packed, float* o, int64_t row,
                               int k, int m) {
  const int panels = NumPanels(m);
  const size_t panel_stride = static_cast<size_t>(k) * kPanelWidth;
  int pj = 0;
  for (; pj + 2 <= panels; pj += 2) {
    GemmTileAvx512<MR, 2, Acc>(a, arows, row, k, packed + pj * panel_stride, o,
                               m, pj * kPanelWidth);
  }
  if (pj < panels) {
    GemmTileAvx512<MR, 1, Acc>(a, arows, row, k, packed + pj * panel_stride, o,
                               m, pj * kPanelWidth);
  }
}

template <bool Acc>
void GemmRowsAvx512Impl(const float* a, const int* arows, const float* packed,
                        float* o, int64_t r0, int64_t r1, int k, int m) {
  int64_t i = r0;
  for (; i + 6 <= r1; i += 6) {
    GemmRowBlockAvx512<6, Acc>(a, arows, packed, o, i, k, m);
  }
  switch (static_cast<int>(r1 - i)) {
    case 1: GemmRowBlockAvx512<1, Acc>(a, arows, packed, o, i, k, m); break;
    case 2: GemmRowBlockAvx512<2, Acc>(a, arows, packed, o, i, k, m); break;
    case 3: GemmRowBlockAvx512<3, Acc>(a, arows, packed, o, i, k, m); break;
    case 4: GemmRowBlockAvx512<4, Acc>(a, arows, packed, o, i, k, m); break;
    case 5: GemmRowBlockAvx512<5, Acc>(a, arows, packed, o, i, k, m); break;
    default: break;
  }
}

void GemmRowsAvx512(const float* a, const int* arows, const float* packed,
                    float* o, int64_t r0, int64_t r1, int k, int m) {
  GemmRowsAvx512Impl<false>(a, arows, packed, o, r0, r1, k, m);
}

void GemmAccRowsAvx512(const float* a, const int* arows, const float* packed,
                       float* o, int64_t r0, int64_t r1, int k, int m) {
  GemmRowsAvx512Impl<true>(a, arows, packed, o, r0, r1, k, m);
}

/// Fused Adam sweep at 16 lanes; op-sequence-identical to
/// detail::AdamUpdateScalarRange (see the AVX2 twin for the determinism
/// notes — the tail routes through that scalar routine).
void AdamUpdateAvx512(float* w, float* m, float* v, const float* g, int64_t i0,
                      int64_t i1, const AdamScalars& s) {
  const __m512 lr = _mm512_set1_ps(s.lr);
  const __m512 b1 = _mm512_set1_ps(s.beta1);
  const __m512 b2 = _mm512_set1_ps(s.beta2);
  const __m512 one_minus_b1 = _mm512_set1_ps(1.0f - s.beta1);
  const __m512 one_minus_b2 = _mm512_set1_ps(1.0f - s.beta2);
  const __m512 eps = _mm512_set1_ps(s.eps);
  const __m512 wd = _mm512_set1_ps(s.weight_decay);
  const __m512 bc1 = _mm512_set1_ps(s.bc1);
  const __m512 bc2 = _mm512_set1_ps(s.bc2);
  int64_t i = i0;
  for (; i + 16 <= i1; i += 16) {
    const __m512 wv = _mm512_loadu_ps(w + i);
    const __m512 gv = _mm512_fmadd_ps(wd, wv, _mm512_loadu_ps(g + i));
    const __m512 mv =
        _mm512_fmadd_ps(b1, _mm512_loadu_ps(m + i), _mm512_mul_ps(one_minus_b1, gv));
    const __m512 vv = _mm512_fmadd_ps(
        b2, _mm512_loadu_ps(v + i), _mm512_mul_ps(one_minus_b2, _mm512_mul_ps(gv, gv)));
    _mm512_storeu_ps(m + i, mv);
    _mm512_storeu_ps(v + i, vv);
    const __m512 m_hat = _mm512_div_ps(mv, bc1);
    const __m512 v_hat = _mm512_div_ps(vv, bc2);
    const __m512 denom = _mm512_add_ps(_mm512_sqrt_ps(v_hat), eps);
    _mm512_storeu_ps(
        w + i, _mm512_sub_ps(wv, _mm512_div_ps(_mm512_mul_ps(lr, m_hat), denom)));
  }
  if (i < i1) AdamUpdateScalarRange(w, m, v, g, i, i1, s);
}

// Same structure as the AVX2 arm's TaUpdateRowsAvx2 at 16 lanes; see the
// determinism notes there. Input rows are processed four at a time with the
// four FMAs CHAINED in ascending r per output vector — a single rounding per
// step, exactly the order of the one-row-at-a-time loop (fma with av == 0 is
// an exact no-op, so the zero-skip may drop to per-quad granularity without
// changing a bit) — while quartering the output load/store traffic that
// bounds this kernel.
void TaUpdateRowsAvx512(const float* __restrict a, const int* __restrict arows,
                        const float* __restrict b, const int* __restrict brows,
                        float* __restrict o, int64_t i0, int64_t i1, int n,
                        int k, int m) {
  for (int jc = 0; jc < m; jc += kTaBlockJ) {
    const int jend = jc + kTaBlockJ < m ? jc + kTaBlockJ : m;
    const int jlen = jend - jc;
    const int jvec = jlen & ~15;
    for (int64_t icc = i0; icc < i1; icc += kTaBlockI) {
      const int64_t icend = icc + kTaBlockI < i1 ? icc + kTaBlockI : i1;
      const auto aptr = [&](int r) {
        return a + static_cast<size_t>(arows != nullptr ? arows[r] : r) * k;
      };
      const auto bptr = [&](int r) {
        return b + static_cast<size_t>(brows != nullptr ? brows[r] : r) * m + jc;
      };
      int r = 0;
      for (; r + 4 <= n; r += 4) {
        const float* __restrict a0 = aptr(r);
        const float* __restrict a1 = aptr(r + 1);
        const float* __restrict a2 = aptr(r + 2);
        const float* __restrict a3 = aptr(r + 3);
        const float* __restrict b0 = bptr(r);
        const float* __restrict b1 = bptr(r + 1);
        const float* __restrict b2 = bptr(r + 2);
        const float* __restrict b3 = bptr(r + 3);
        for (int64_t i = icc; i < icend; ++i) {
          const float av0 = a0[i], av1 = a1[i], av2 = a2[i], av3 = a3[i];
          if (av0 == 0.0f && av1 == 0.0f && av2 == 0.0f && av3 == 0.0f) continue;
          float* __restrict orow = o + static_cast<size_t>(i) * m + jc;
          const __m512 avv0 = _mm512_set1_ps(av0);
          const __m512 avv1 = _mm512_set1_ps(av1);
          const __m512 avv2 = _mm512_set1_ps(av2);
          const __m512 avv3 = _mm512_set1_ps(av3);
          int j = 0;
          for (; j < jvec; j += 16) {
            __m512 acc = _mm512_loadu_ps(orow + j);
            acc = _mm512_fmadd_ps(avv0, _mm512_loadu_ps(b0 + j), acc);
            acc = _mm512_fmadd_ps(avv1, _mm512_loadu_ps(b1 + j), acc);
            acc = _mm512_fmadd_ps(avv2, _mm512_loadu_ps(b2 + j), acc);
            acc = _mm512_fmadd_ps(avv3, _mm512_loadu_ps(b3 + j), acc);
            _mm512_storeu_ps(orow + j, acc);
          }
          for (; j < jlen; ++j) {
            // Scalar tail mirrors the vector chain: four single-rounding fmas
            // in ascending r (std::fmaf == vector fma lane).
            float acc = orow[j];
            acc = __builtin_fmaf(av0, b0[j], acc);
            acc = __builtin_fmaf(av1, b1[j], acc);
            acc = __builtin_fmaf(av2, b2[j], acc);
            acc = __builtin_fmaf(av3, b3[j], acc);
            orow[j] = acc;
          }
        }
      }
      for (; r < n; ++r) {
        const float* __restrict arow = aptr(r);
        const float* __restrict brow = bptr(r);
        for (int64_t i = icc; i < icend; ++i) {
          const float av = arow[i];
          if (av == 0.0f) continue;
          float* __restrict orow = o + static_cast<size_t>(i) * m + jc;
          const __m512 avv = _mm512_set1_ps(av);
          int j = 0;
          for (; j < jvec; j += 16) {
            const __m512 acc = _mm512_loadu_ps(orow + j);
            _mm512_storeu_ps(orow + j,
                             _mm512_fmadd_ps(avv, _mm512_loadu_ps(brow + j), acc));
          }
          for (; j < jlen; ++j) orow[j] = __builtin_fmaf(av, brow[j], orow[j]);
        }
      }
    }
  }
}

constexpr SimdGemmKernels kAvx512Kernels = {"avx512", GemmRowsAvx512,
                                            GemmAccRowsAvx512,
                                            TaUpdateRowsAvx512,
                                            AdamUpdateAvx512};

}  // namespace

const SimdGemmKernels* Avx512Kernels() { return &kAvx512Kernels; }

}  // namespace neo::nn::detail

#else  // !__AVX512F__

namespace neo::nn::detail {
const SimdGemmKernels* Avx512Kernels() { return nullptr; }
}  // namespace neo::nn::detail

#endif
