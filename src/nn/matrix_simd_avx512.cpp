// AVX-512F GEMM micro-kernels (the "avx512" dispatch arm). Always compiled
// with -mavx512f (see CMakeLists.txt); the runtime dispatcher only routes
// here after cpuid confirms AVX-512 Foundation, and the TU degrades to an
// unavailable-arm stub on toolchains that cannot target it.
//
// The tile is 6x32: six output rows by two 16-float B panels, one zmm per
// (row, panel) accumulator — twelve independent FMA chains, mirroring the
// AVX2 arm's 6x16 shape at twice the width. A 16-float panel row is exactly
// one zmm load, so this arm reads the same packed-B layout as AVX2 (no
// repacking when the dispatch arm changes). Odd trailing panels run the same
// tile at single-panel width, and the zero-padded tail panel is handled with
// a masked store, so every output element is still a single ascending-k FMA
// chain regardless of tile placement.
#include "src/nn/matrix_simd.h"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace neo::nn::detail {
namespace {

/// MR (<= 6) output rows by NP (1 or 2) 16-float panels starting at column
/// jc. Panels are contiguous in the packed buffer (stride k*16 floats).
/// Accumulators are named variables behind `if constexpr` guards, not
/// arrays, for the same GCC SRA reason as the AVX2 tile (a [6][2] zmm array
/// is memory-backed and every FMA grows a spill store).
template <int MR, int NP>
inline void GemmTileAvx512(const float* __restrict a, int64_t row, int k,
                           const float* __restrict panel0, float* __restrict o,
                           int m, int jc) {
  static_assert(MR >= 1 && MR <= 6 && (NP == 1 || NP == 2));
  const auto rptr = [&](int r) {
    return a + static_cast<size_t>(row + (r < MR ? r : 0)) * k;
  };
  const float* __restrict a0 = rptr(0);
  const float* __restrict a1 = rptr(1);
  const float* __restrict a2 = rptr(2);
  const float* __restrict a3 = rptr(3);
  const float* __restrict a4 = rptr(4);
  const float* __restrict a5 = rptr(5);
  __m512 c00 = _mm512_setzero_ps(), c01 = _mm512_setzero_ps();
  __m512 c10 = c00, c11 = c00, c20 = c00, c21 = c00;
  __m512 c30 = c00, c31 = c00, c40 = c00, c41 = c00;
  __m512 c50 = c00, c51 = c00;
  const float* __restrict panel1 =
      panel0 + (NP > 1 ? static_cast<size_t>(k) * kPanelWidth : 0);
  for (int p = 0; p < k; ++p) {
    const __m512 b0 = _mm512_loadu_ps(panel0 + static_cast<size_t>(p) * kPanelWidth);
    __m512 b1 = b0;
    if constexpr (NP > 1) {
      b1 = _mm512_loadu_ps(panel1 + static_cast<size_t>(p) * kPanelWidth);
    }
    __m512 av = _mm512_set1_ps(a0[p]);
    c00 = _mm512_fmadd_ps(av, b0, c00);
    if constexpr (NP > 1) c01 = _mm512_fmadd_ps(av, b1, c01);
    if constexpr (MR > 1) {
      av = _mm512_set1_ps(a1[p]);
      c10 = _mm512_fmadd_ps(av, b0, c10);
      if constexpr (NP > 1) c11 = _mm512_fmadd_ps(av, b1, c11);
    }
    if constexpr (MR > 2) {
      av = _mm512_set1_ps(a2[p]);
      c20 = _mm512_fmadd_ps(av, b0, c20);
      if constexpr (NP > 1) c21 = _mm512_fmadd_ps(av, b1, c21);
    }
    if constexpr (MR > 3) {
      av = _mm512_set1_ps(a3[p]);
      c30 = _mm512_fmadd_ps(av, b0, c30);
      if constexpr (NP > 1) c31 = _mm512_fmadd_ps(av, b1, c31);
    }
    if constexpr (MR > 4) {
      av = _mm512_set1_ps(a4[p]);
      c40 = _mm512_fmadd_ps(av, b0, c40);
      if constexpr (NP > 1) c41 = _mm512_fmadd_ps(av, b1, c41);
    }
    if constexpr (MR > 5) {
      av = _mm512_set1_ps(a5[p]);
      c50 = _mm512_fmadd_ps(av, b0, c50);
      if constexpr (NP > 1) c51 = _mm512_fmadd_ps(av, b1, c51);
    }
  }
  const auto panel_mask = [&](int np) {
    const int w = m - (jc + np * kPanelWidth);
    return w >= kPanelWidth ? static_cast<__mmask16>(0xffff)
                            : static_cast<__mmask16>((1u << w) - 1u);
  };
  const __mmask16 mask0 = panel_mask(0);
  const __mmask16 mask1 = NP > 1 ? panel_mask(1) : mask0;
  const auto store_row = [&](int r, __m512 v0, __m512 v1) {
    float* orow = o + static_cast<size_t>(row + r) * m + jc;
    _mm512_mask_storeu_ps(orow, mask0, v0);
    if constexpr (NP > 1) {
      _mm512_mask_storeu_ps(orow + kPanelWidth, mask1, v1);
    }
  };
  store_row(0, c00, c01);
  if constexpr (MR > 1) store_row(1, c10, c11);
  if constexpr (MR > 2) store_row(2, c20, c21);
  if constexpr (MR > 3) store_row(3, c30, c31);
  if constexpr (MR > 4) store_row(4, c40, c41);
  if constexpr (MR > 5) store_row(5, c50, c51);
}

template <int MR>
inline void GemmRowBlockAvx512(const float* a, const float* packed, float* o,
                               int64_t row, int k, int m) {
  const int panels = NumPanels(m);
  const size_t panel_stride = static_cast<size_t>(k) * kPanelWidth;
  int pj = 0;
  for (; pj + 2 <= panels; pj += 2) {
    GemmTileAvx512<MR, 2>(a, row, k, packed + pj * panel_stride, o, m,
                          pj * kPanelWidth);
  }
  if (pj < panels) {
    GemmTileAvx512<MR, 1>(a, row, k, packed + pj * panel_stride, o, m,
                          pj * kPanelWidth);
  }
}

void GemmRowsAvx512(const float* a, const float* packed, float* o, int64_t r0,
                    int64_t r1, int k, int m) {
  int64_t i = r0;
  for (; i + 6 <= r1; i += 6) GemmRowBlockAvx512<6>(a, packed, o, i, k, m);
  switch (static_cast<int>(r1 - i)) {
    case 1: GemmRowBlockAvx512<1>(a, packed, o, i, k, m); break;
    case 2: GemmRowBlockAvx512<2>(a, packed, o, i, k, m); break;
    case 3: GemmRowBlockAvx512<3>(a, packed, o, i, k, m); break;
    case 4: GemmRowBlockAvx512<4>(a, packed, o, i, k, m); break;
    case 5: GemmRowBlockAvx512<5>(a, packed, o, i, k, m); break;
    default: break;
  }
}

// Same structure as the AVX2 arm's TaUpdateRowsAvx2 at 16 lanes; see the
// determinism notes there.
void TaUpdateRowsAvx512(const float* __restrict a, const float* __restrict b,
                        float* __restrict o, int64_t i0, int64_t i1, int n,
                        int k, int m) {
  for (int jc = 0; jc < m; jc += kTaBlockJ) {
    const int jend = jc + kTaBlockJ < m ? jc + kTaBlockJ : m;
    const int jlen = jend - jc;
    const int jvec = jlen & ~15;
    for (int64_t icc = i0; icc < i1; icc += kTaBlockI) {
      const int64_t icend = icc + kTaBlockI < i1 ? icc + kTaBlockI : i1;
      for (int r = 0; r < n; ++r) {
        const float* __restrict arow = a + static_cast<size_t>(r) * k;
        const float* __restrict brow = b + static_cast<size_t>(r) * m + jc;
        for (int64_t i = icc; i < icend; ++i) {
          const float av = arow[i];
          if (av == 0.0f) continue;
          float* __restrict orow = o + static_cast<size_t>(i) * m + jc;
          const __m512 avv = _mm512_set1_ps(av);
          int j = 0;
          for (; j < jvec; j += 16) {
            const __m512 acc = _mm512_loadu_ps(orow + j);
            _mm512_storeu_ps(orow + j,
                             _mm512_fmadd_ps(avv, _mm512_loadu_ps(brow + j), acc));
          }
          for (; j < jlen; ++j) orow[j] += av * brow[j];
        }
      }
    }
  }
}

constexpr SimdGemmKernels kAvx512Kernels = {"avx512", GemmRowsAvx512,
                                            TaUpdateRowsAvx512};

}  // namespace

const SimdGemmKernels* Avx512Kernels() { return &kAvx512Kernels; }

}  // namespace neo::nn::detail

#else  // !__AVX512F__

namespace neo::nn::detail {
const SimdGemmKernels* Avx512Kernels() { return nullptr; }
}  // namespace neo::nn::detail

#endif
