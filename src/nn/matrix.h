// Minimal dense float matrix used by the neural network layers. Row-major,
// contiguous; all shapes are (rows x cols).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace neo::nn {

class Matrix {
 public:
  Matrix() = default;
  /// Constructs zero-initialized (many callers accumulate into fresh
  /// matrices); use Reshape on a default-constructed Matrix to get
  /// uninitialized storage for fully-overwritten outputs.
  Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
    capacity_ = Size();
    data_.reset(new float[capacity_]());  // ()-init: zeroed.
  }
  Matrix(const Matrix& other) : rows_(other.rows_), cols_(other.cols_) {
    capacity_ = Size();
    data_.reset(new float[capacity_]);
    std::copy(other.data(), other.data() + Size(), data_.get());
  }
  Matrix& operator=(const Matrix& other) {
    if (this == &other) return *this;
    if (capacity_ < other.Size()) {
      capacity_ = other.Size();
      data_.reset(new float[capacity_]);
    }
    rows_ = other.rows_;
    cols_ = other.cols_;
    std::copy(other.data(), other.data() + Size(), data_.get());
    return *this;
  }
  Matrix(Matrix&& other) noexcept { *this = std::move(other); }
  Matrix& operator=(Matrix&& other) noexcept {
    if (this == &other) return *this;
    rows_ = other.rows_;
    cols_ = other.cols_;
    capacity_ = other.capacity_;
    data_ = std::move(other.data_);
    other.rows_ = other.cols_ = 0;
    other.capacity_ = 0;
    return *this;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t Size() const { return static_cast<size_t>(rows_) * static_cast<size_t>(cols_); }

  float& At(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  float At(int r, int c) const { return data_[static_cast<size_t>(r) * cols_ + c]; }

  float* Row(int r) { return data_.get() + static_cast<size_t>(r) * cols_; }
  const float* Row(int r) const { return data_.get() + static_cast<size_t>(r) * cols_; }

  float* data() { return data_.get(); }
  const float* data() const { return data_.get(); }

  void Zero() { std::fill(data_.get(), data_.get() + Size(), 0.0f); }

  /// Kaiming-uniform initialization for a layer with `fan_in` inputs.
  void InitKaiming(util::Rng& rng, int fan_in) {
    const double bound = std::sqrt(6.0 / static_cast<double>(fan_in > 0 ? fan_in : 1));
    for (size_t i = 0; i < Size(); ++i) {
      data_[i] = static_cast<float>(rng.NextUniform(-bound, bound));
    }
  }

  /// this += other (same shape).
  void Add(const Matrix& other) {
    NEO_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
    for (size_t i = 0; i < Size(); ++i) data_[i] += other.data_[i];
  }

  /// this *= s.
  void Scale(float s) {
    for (size_t i = 0; i < Size(); ++i) data_[i] *= s;
  }

  /// Reshapes to (rows x cols) WITHOUT initializing: existing storage is
  /// reused when its capacity suffices (the fast path for per-step scratch
  /// and GEMM outputs that the caller fully overwrites — no malloc, no
  /// memset); on growth the new storage is left uninitialized. Callers that
  /// need zeros must call Zero() afterwards.
  void Reshape(int rows, int cols) {
    rows_ = rows;
    cols_ = cols;
    if (capacity_ < Size()) {
      capacity_ = Size();
      data_.reset(new float[capacity_]);
    }
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  size_t capacity_ = 0;
  std::unique_ptr<float[]> data_;
};

/// out = a (n x k) * b (k x m). Register-blocked kernel. Each output's
/// summation order is a fixed function of (k, m) alone — independent of the
/// row's position and of n — so a row multiplied alone or inside any batch
/// yields bit-identical results (batched plan scoring relies on this).
/// Results may differ from MatMulNaive by accumulation-order ulps.
Matrix MatMul(const Matrix& a, const Matrix& b);

struct GemmScratch;

/// MatMul into a caller-owned output (Reshape'd, fully overwritten).
/// Bit-identical to MatMul under every arm, including reference mode.
/// `scratch` reuses the B-panel pack buffer across calls (zero-alloc steady
/// state); results are bit-identical with or without it.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out,
                GemmScratch* scratch = nullptr);

/// out = a (n x k) * b^T where b is (m x k). Blocked kernel.
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);

/// MatMulTransposeB into a caller-owned output (Reshape'd, fully
/// overwritten). Bit-identical to MatMulTransposeB under every arm.
void MatMulTransposeBInto(const Matrix& a, const Matrix& b, Matrix* out,
                          GemmScratch* scratch = nullptr);

/// out = a^T (k x n -> n x k') ... computes a^T (a: k x n) times b (k x m).
/// Blocked kernel.
Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);

// ---- Raw-block variants (sparse training conv) -----------------------------
//
// TreeConv's training path multiplies against the three cin x cout blocks of
// its stacked (3*cin x cout) weight. Each block is a contiguous row range, so
// these overloads take a raw row-major pointer into the live parameter and
// never copy or cache weights — direct parameter pokes (numeric-gradient
// tests, Adam) are always visible. Same kernels, dispatch, and determinism
// contract as the Matrix-typed entry points.

/// Reusable cross-call scratch for the block/Into GEMM variants: the
/// per-call B-panel pack buffer and the transpose staging matrix. Passing
/// one (TreeConv's training scratch does) avoids re-allocating and
/// re-zeroing them for every block GEMM of a training step; results are
/// bit-identical with or without it. Not thread-safe — one per caller.
struct GemmScratch {
  std::vector<float> pack;
  Matrix staging;
};

/// out = a (n x k) * b where b is a raw row-major (k x m) block.
Matrix MatMulBlock(const Matrix& a, const float* b, int k, int m);

/// MatMulBlock into a caller-owned output (Reshape'd, fully overwritten).
void MatMulBlockInto(const Matrix& a, const float* b, int k, int m,
                     Matrix* out, GemmScratch* scratch = nullptr);

/// out = a (n x k) * b^T where b is a raw row-major (m x k) block
/// (k = a.cols()).
Matrix MatMulTransposeBBlock(const Matrix& a, const float* b, int m);

/// MatMulTransposeBBlock into a caller-owned output.
void MatMulTransposeBBlockInto(const Matrix& a, const float* b, int m,
                               Matrix* out, GemmScratch* scratch = nullptr);

/// Scatter-add transpose-A: out (k x m raw row-major, e.g. one block of a
/// weight gradient) += a^T * b (a: n x k, b: n x m). Accumulates directly
/// into `out` — no temporary product matrix.
///
/// Contract beyond MatMulTransposeA's: the summation strategy is chosen from
/// (k, m) ALONE — never from n — and every strategy sums ascending input
/// rows with exact-no-op zero rows (single fma chains / explicit zero skip).
/// Appending or interleaving all-zero rows of `a` (with arbitrary matching
/// `b` rows) therefore cannot change a single output bit, which is what
/// keeps the sparse (present-children-only) and dense (zero-padded) training
/// conv gradients bit-identical under every dispatch arm and thread count.
void MatMulTransposeAInto(const Matrix& a, const Matrix& b, float* out,
                          GemmScratch* scratch = nullptr);

// ---- Zero-copy gather variants ---------------------------------------------
//
// The sparse training conv multiplies GATHERED row subsets (present children
// / their parents). These variants read A rows through an index list inside
// the kernels instead of materializing the gather — same values in the same
// order, so results are bit-identical to gathering first, with no copy, no
// scratch matrix, and no extra memory pass.

/// out = a[rows[0..nrows)] * b where b is a raw row-major (k x m) block.
void MatMulGatherBlockInto(const Matrix& a, const int* rows, int nrows,
                           const float* b, int k, int m, Matrix* out,
                           GemmScratch* scratch = nullptr);

/// out = a[rows[0..nrows)] * b^T where b is a raw row-major (m x k) block.
void MatMulGatherTransposeBBlockInto(const Matrix& a, const int* rows,
                                     int nrows, const float* b, int m,
                                     Matrix* out, GemmScratch* scratch = nullptr);

/// out (k x m raw) += a[arows]^T * b[brows] over nrows gathered row pairs.
/// Same strategy/summation contract as MatMulTransposeAInto.
void MatMulGatherTransposeAInto(const Matrix& a, const int* arows,
                                const Matrix& b, const int* brows, int nrows,
                                float* out, GemmScratch* scratch = nullptr);

/// Reference triple-loop kernels. Used by tests to validate the blocked
/// kernels on non-tile-multiple shapes and by benches as the baseline.
Matrix MatMulNaive(const Matrix& a, const Matrix& b);
Matrix MatMulTransposeBNaive(const Matrix& a, const Matrix& b);
Matrix MatMulTransposeANaive(const Matrix& a, const Matrix& b);
/// Reference for MatMulTransposeAInto: out += a^T b via the naive loop.
void MatMulTransposeAIntoNaive(const Matrix& a, const Matrix& b, float* out);

// ---- Fused Adam update -----------------------------------------------------

namespace detail {
struct AdamScalars;  // Per-step scalars; defined in matrix_simd.h.
}  // namespace detail

/// One fused Adam sweep over a parameter's `count` elements: m, v, and w are
/// each read and written exactly once, no temporaries, vectorized by the
/// active kernel dispatch arm and partitioned over the thread pool. Every
/// element's update is the identical correctly-rounded op sequence in every
/// arm (and in the scalar tails), so the result is bit-identical across
/// dispatch arms AND thread counts.
void AdamFusedUpdate(float* w, float* m, float* v, const float* g,
                     int64_t count, const detail::AdamScalars& s);

// ---- Kernel dispatch -------------------------------------------------------
//
// One binary carries several GEMM kernel arms and picks the best one the CPU
// supports at startup (cpuid). Design notes for the SIMD arms:
//
//  * Tiles. The AVX2+FMA arm computes 6x16 register tiles (6 output rows by
//    one 16-float column panel, 12 ymm accumulators); the AVX-512F arm
//    computes 6x32 tiles (two panels, 12 zmm accumulators). Row blocks sweep
//    the full k extent before moving on (i-row blocking over a k panel), so
//    the accumulators never leave registers and A rows stream through L1
//    exactly once per panel.
//
//  * Packing. B is packed into 16-float column panels, k-major within each
//    panel and zero-padded at the ragged edge (see matrix_simd.h). A panel
//    row is 64 bytes — two ymm or one zmm load — so both SIMD arms read the
//    same layout and a PackedB survives dispatch-arm changes. MatMul packs
//    per call; PackedB pre-packs weight matrices so the inference hot path
//    (TreeConv / Linear) multiplies without repacking.
//
//  * Determinism contract. Within one dispatch arm, every output element's
//    summation order is a fixed function of the shape (k, m) alone: in the
//    SIMD arms each element is a single FMA chain over ascending k, and in
//    the portable arm four interleaved chains folded in a fixed order. The
//    order never depends on the row's position, the number of rows in the
//    call, the thread count, or tile boundaries — so batched, incremental,
//    row-subset, and parallel evaluations are all bit-identical within an
//    arm. Across arms (SIMD vs portable) results differ by accumulation-
//    order/FMA-rounding ulps only; tests assert parity at 1e-5 relative.
//
//  * Adding an ISA. Provide a TU exposing a detail::SimdGemmKernels (see
//    matrix_simd.h) whose kernels read the shared panel layout and keep the
//    single-ascending-k-chain order, compile it with the ISA's flags in
//    CMakeLists.txt (stub out when the toolchain lacks them), add an enum
//    value plus cpuid check in matrix.cpp's KernelsFor/KernelIsaAvailable,
//    and extend BestKernelIsa's preference order. The dispatch tests in
//    nn_test.cpp pick up new arms automatically via AvailableKernelIsas().
//
// Startup override: NEO_FORCE_PORTABLE=1 in the environment pins the
// portable arm (the CI fallback matrix arm uses this); NEO_KERNEL_ISA=
// portable|avx2|avx512 picks a specific arm when available. SetKernelIsa
// overrides at runtime (benches sweep arms with it).

enum class KernelIsa { kPortable = 0, kAvx2 = 1, kAvx512 = 2 };

/// "portable", "avx2", or "avx512".
const char* KernelIsaName(KernelIsa isa);

/// True when the arm is compiled into this binary AND the CPU supports it.
/// kPortable is always available.
bool KernelIsaAvailable(KernelIsa isa);

/// The most capable available arm (avx512 > avx2 > portable).
KernelIsa BestKernelIsa();

/// Every available arm, portable first then ascending capability. Tests and
/// benches sweep this so a new ISA added to the dispatch table is covered
/// automatically.
std::vector<KernelIsa> AvailableKernelIsas();

/// The arm MatMul & friends currently dispatch to. Initialized on first use
/// from the environment (NEO_FORCE_PORTABLE / NEO_KERNEL_ISA) or
/// BestKernelIsa().
KernelIsa ActiveKernelIsa();

/// Switches the dispatch arm process-wide. NEO_CHECKs availability. Results
/// computed under different arms differ by ulps; per-search caches key on the
/// active arm, so switching mid-process is safe (benches and tests do).
void SetKernelIsa(KernelIsa isa);

/// RAII scope for SetKernelIsa (restores the previous arm).
class KernelIsaScope {
 public:
  explicit KernelIsaScope(KernelIsa isa) : prev_(ActiveKernelIsa()) {
    SetKernelIsa(isa);
  }
  ~KernelIsaScope() { SetKernelIsa(prev_); }
  KernelIsaScope(const KernelIsaScope&) = delete;
  KernelIsaScope& operator=(const KernelIsaScope&) = delete;

 private:
  KernelIsa prev_;
};

/// A right-hand-side matrix pre-packed into the SIMD arms' shared panel
/// layout (plus a plain copy for the portable/reference paths). Pack once
/// per weight update, multiply many times: MatMulPacked(a, pb) is bit-
/// identical to MatMul(a, pb.unpacked()) under every dispatch arm, it just
/// skips the per-call pack.
class PackedB {
 public:
  PackedB() = default;
  explicit PackedB(const Matrix& b) { Assign(b); }

  void Assign(const Matrix& b);
  /// Copies the (rows x cols) row-major block at `b` (need not be a Matrix;
  /// TreeConv packs row ranges of its stacked weight directly).
  void Assign(const float* b, int rows, int cols);

  int rows() const { return b_.rows(); }
  int cols() const { return b_.cols(); }
  const Matrix& unpacked() const { return b_; }
  const float* panels() const { return panels_.data(); }

 private:
  Matrix b_;
  std::vector<float> panels_;
};

/// out = a (n x k) * b (k x m) with b pre-packed. Same kernels, contract,
/// and bit-exact results as MatMul under the active dispatch arm.
Matrix MatMulPacked(const Matrix& a, const PackedB& b);

/// MatMulPacked into a caller-owned output (Reshape'd, fully overwritten).
/// Bit-identical to MatMulPacked; the zero-steady-state-allocation form the
/// inference hot path uses with capacity-reused scratch matrices.
void MatMulPackedInto(const Matrix& a, const PackedB& b, Matrix* out);

/// Name of the runtime-dispatched kernel arm (KernelIsaName(ActiveKernelIsa())).
/// Recorded as "kernel_arch" in the BENCH_*.json files so perf numbers are
/// attributable to the arm that actually ran, not just the compile flags.
const char* KernelArchString();

/// How the portable arm's TU was compiled — "explicit avx2 autovec
/// (NEO_NATIVE_ARCH)" or "march=native autovec where available". Bench
/// metadata: the portable baseline's throughput depends on this, so
/// BENCH_gemm.json records it next to the per-arm ratios. Lives here because
/// only the hot NN TUs see the NEO_NATIVE_ARCH define.
const char* PortableArmCodegen();

/// When true, MatMul / MatMulTransposeA / MatMulTransposeB route through the
/// reference kernels, and ValueNetwork inference reverts to the dense
/// augment-and-concat forward. Bench-only: lets perf comparisons reconstruct
/// the pre-optimization ("seed") inference path at runtime.
void SetUseReferenceKernels(bool use);
bool UseReferenceKernels();

/// Thread-LOCAL parallelism degree for the optimized kernels and the NN's
/// elementwise hot loops (1 = serial, the default). Work is partitioned over
/// *output* rows/elements only — every output value is still computed by the
/// unchanged serial inner loop — so results are bit-identical at any setting.
/// Being thread-local, concurrent searches can each carry their own degree
/// without racing on a global. Reference kernels always run serial.
void SetComputeThreads(int n);
int ComputeThreads();

/// RAII scope for SetComputeThreads (restores the previous degree).
class ComputeThreadsScope {
 public:
  explicit ComputeThreadsScope(int n) : prev_(ComputeThreads()) { SetComputeThreads(n); }
  ~ComputeThreadsScope() { SetComputeThreads(prev_); }
  ComputeThreadsScope(const ComputeThreadsScope&) = delete;
  ComputeThreadsScope& operator=(const ComputeThreadsScope&) = delete;

 private:
  int prev_;
};

/// Type-erased body of ParallelRows (function pointer + context, so the hot
/// paths never construct a heap-backed std::function).
void ParallelRowsImpl(int64_t n, int64_t min_parallel,
                      void (*fn)(const void*, int64_t, int64_t),
                      const void* ctx);

/// Runs fn over disjoint chunks covering [0, n) on the global thread pool,
/// using the ambient ComputeThreads() degree (inline serial when it is 1 or
/// n < min_parallel). fn's output for index i must depend only on i, which
/// makes the result independent of the thread count. A template (not
/// std::function) so per-call capture lists never heap-allocate — the NN hot
/// loops run inside counted zero-alloc regions.
template <typename Fn>
inline void ParallelRows(int64_t n, int64_t min_parallel, Fn&& fn) {
  using F = std::remove_reference_t<Fn>;
  ParallelRowsImpl(
      n, min_parallel,
      [](const void* c, int64_t r0, int64_t r1) {
        (*const_cast<F*>(static_cast<const F*>(c)))(r0, r1);
      },
      static_cast<const void*>(std::addressof(fn)));
}

}  // namespace neo::nn
