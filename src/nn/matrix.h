// Minimal dense float matrix used by the neural network layers. Row-major,
// contiguous; all shapes are (rows x cols).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace neo::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols) : rows_(rows), cols_(cols), data_(Size(), 0.0f) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t Size() const { return static_cast<size_t>(rows_) * static_cast<size_t>(cols_); }

  float& At(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  float At(int r, int c) const { return data_[static_cast<size_t>(r) * cols_ + c]; }

  float* Row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* Row(int r) const { return data_.data() + static_cast<size_t>(r) * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

  /// Kaiming-uniform initialization for a layer with `fan_in` inputs.
  void InitKaiming(util::Rng& rng, int fan_in) {
    const double bound = std::sqrt(6.0 / static_cast<double>(fan_in > 0 ? fan_in : 1));
    for (auto& v : data_) v = static_cast<float>(rng.NextUniform(-bound, bound));
  }

  /// this += other (same shape).
  void Add(const Matrix& other) {
    NEO_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
    for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  }

  /// this *= s.
  void Scale(float s) {
    for (auto& v : data_) v *= s;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

/// out = a (n x k) * b (k x m). Register-blocked kernel. Each output's
/// summation order is a fixed function of (k, m) alone — independent of the
/// row's position and of n — so a row multiplied alone or inside any batch
/// yields bit-identical results (batched plan scoring relies on this).
/// Results may differ from MatMulNaive by accumulation-order ulps.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// out = a (n x k) * b^T where b is (m x k). Blocked kernel.
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);

/// out = a^T (k x n -> n x k') ... computes a^T (a: k x n) times b (k x m).
/// Blocked kernel.
Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);

/// Reference triple-loop kernels. Used by tests to validate the blocked
/// kernels on non-tile-multiple shapes and by benches as the baseline.
Matrix MatMulNaive(const Matrix& a, const Matrix& b);
Matrix MatMulTransposeBNaive(const Matrix& a, const Matrix& b);
Matrix MatMulTransposeANaive(const Matrix& a, const Matrix& b);

/// Instruction-set flags the optimized-kernel TU was compiled with: "avx2+fma"
/// under -DNEO_NATIVE_ARCH=ON, else "default" (-march=native where the
/// toolchain supports it). Recorded in the BENCH_*.json files so perf numbers
/// are attributable to the build configuration.
const char* KernelArchString();

/// When true, MatMul / MatMulTransposeA / MatMulTransposeB route through the
/// reference kernels, and ValueNetwork inference reverts to the dense
/// augment-and-concat forward. Bench-only: lets perf comparisons reconstruct
/// the pre-optimization ("seed") inference path at runtime.
void SetUseReferenceKernels(bool use);
bool UseReferenceKernels();

/// Thread-LOCAL parallelism degree for the optimized kernels and the NN's
/// elementwise hot loops (1 = serial, the default). Work is partitioned over
/// *output* rows/elements only — every output value is still computed by the
/// unchanged serial inner loop — so results are bit-identical at any setting.
/// Being thread-local, concurrent searches can each carry their own degree
/// without racing on a global. Reference kernels always run serial.
void SetComputeThreads(int n);
int ComputeThreads();

/// RAII scope for SetComputeThreads (restores the previous degree).
class ComputeThreadsScope {
 public:
  explicit ComputeThreadsScope(int n) : prev_(ComputeThreads()) { SetComputeThreads(n); }
  ~ComputeThreadsScope() { SetComputeThreads(prev_); }
  ComputeThreadsScope(const ComputeThreadsScope&) = delete;
  ComputeThreadsScope& operator=(const ComputeThreadsScope&) = delete;

 private:
  int prev_;
};

/// Runs fn over disjoint chunks covering [0, n) on the global thread pool,
/// using the ambient ComputeThreads() degree (inline serial when it is 1 or
/// n < min_parallel). fn's output for index i must depend only on i, which
/// makes the result independent of the thread count.
void ParallelRows(int64_t n, int64_t min_parallel,
                  const std::function<void(int64_t, int64_t)>& fn);

}  // namespace neo::nn
