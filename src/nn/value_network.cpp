#include "src/nn/value_network.h"

#include <cmath>
#include <cstdio>

namespace neo::nn {

ValueNetwork::ValueNetwork(const ValueNetConfig& config)
    : config_(config), rng_(config.seed), leaky_alpha_(config.leaky_alpha) {
  NEO_CHECK(config.query_dim > 0 && config.plan_dim > 0);
  NEO_CHECK(!config.query_fc.empty() && !config.tree_channels.empty());

  // Query-level FC stack with layer norm (paper §6.1).
  int prev = config.query_dim;
  for (size_t i = 0; i < config.query_fc.size(); ++i) {
    const int width = config.query_fc[i];
    query_stack_.Add(std::make_unique<Linear>(prev, width, rng_));
    query_stack_.Add(std::make_unique<LayerNorm>(width));
    query_stack_.Add(std::make_unique<LeakyReLU>(leaky_alpha_));
    prev = width;
  }
  embed_dim_ = prev;

  // Tree convolution stack over augmented nodes. The first layer's input is
  // [plan features ; query embedding]; the embedding tail is row-constant at
  // inference, so layer 0 is built with a shared-suffix declaration and the
  // inference path never materializes the augmented matrix.
  int channels = config.plan_dim + embed_dim_;
  for (size_t i = 0; i < config.tree_channels.size(); ++i) {
    const int out_channels = config.tree_channels[i];
    convs_.emplace_back(channels, out_channels, rng_, i == 0 ? embed_dim_ : 0);
    channels = out_channels;
  }

  // Head FC stack -> scalar.
  prev = channels;
  for (int width : config.head_fc) {
    head_.Add(std::make_unique<Linear>(prev, width, rng_));
    head_.Add(std::make_unique<LayerNorm>(width));
    head_.Add(std::make_unique<LeakyReLU>(leaky_alpha_));
    prev = width;
  }
  head_.Add(std::make_unique<Linear>(prev, 1, rng_));

  std::vector<Param*> params;
  query_stack_.CollectParams(&params);
  for (auto& conv : convs_) conv.CollectParams(&params);
  head_.CollectParams(&params);
  adam_ = std::make_unique<Adam>(std::move(params), config.adam);
}

size_t ValueNetwork::NumParameters() const {
  std::vector<Param*> params;
  const_cast<ValueNetwork*>(this)->query_stack_.CollectParams(&params);
  for (auto& conv : const_cast<ValueNetwork*>(this)->convs_) conv.CollectParams(&params);
  const_cast<ValueNetwork*>(this)->head_.CollectParams(&params);
  size_t total = 0;
  for (const Param* p : params) total += p->value.Size();
  return total;
}

namespace {
constexpr uint32_t kWeightsMagic = 0x4e454f57;  // "NEOW"
}  // namespace

bool ValueNetwork::SaveWeights(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::vector<Param*> params;
  auto* self = const_cast<ValueNetwork*>(this);
  self->query_stack_.CollectParams(&params);
  for (auto& conv : self->convs_) conv.CollectParams(&params);
  self->head_.CollectParams(&params);

  bool ok = true;
  const uint32_t magic = kWeightsMagic;
  const uint32_t n_params = static_cast<uint32_t>(params.size());
  ok &= std::fwrite(&magic, sizeof(magic), 1, f) == 1;
  ok &= std::fwrite(&n_params, sizeof(n_params), 1, f) == 1;
  for (const Param* p : params) {
    const int32_t rows = p->value.rows();
    const int32_t cols = p->value.cols();
    ok &= std::fwrite(&rows, sizeof(rows), 1, f) == 1;
    ok &= std::fwrite(&cols, sizeof(cols), 1, f) == 1;
    ok &= std::fwrite(p->value.data(), sizeof(float), p->value.Size(), f) ==
          p->value.Size();
  }
  std::fclose(f);
  return ok;
}

bool ValueNetwork::LoadWeights(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::vector<Param*> params;
  query_stack_.CollectParams(&params);
  for (auto& conv : convs_) conv.CollectParams(&params);
  head_.CollectParams(&params);

  bool ok = true;
  uint32_t magic = 0, n_params = 0;
  ok &= std::fread(&magic, sizeof(magic), 1, f) == 1 && magic == kWeightsMagic;
  ok &= std::fread(&n_params, sizeof(n_params), 1, f) == 1 &&
        n_params == params.size();
  for (Param* p : params) {
    if (!ok) break;
    int32_t rows = 0, cols = 0;
    ok &= std::fread(&rows, sizeof(rows), 1, f) == 1;
    ok &= std::fread(&cols, sizeof(cols), 1, f) == 1;
    ok &= rows == p->value.rows() && cols == p->value.cols();
    if (ok) {
      ok &= std::fread(p->value.data(), sizeof(float), p->value.Size(), f) ==
            p->value.Size();
    }
  }
  std::fclose(f);
  // Bump even on failure: a truncated file may have partially overwritten
  // parameters, and every weight-derived cache (score cache, inference
  // weight splits) keys off version_ — stale serves would be silent.
  ++version_;
  return ok;
}

PlanBatch PackPlanBatch(const std::vector<const PlanSample*>& samples) {
  PlanBatch batch;
  batch.tree_offsets.reserve(samples.size() + 1);
  batch.tree_offsets.push_back(0);
  size_t total = 0;
  for (const PlanSample* s : samples) {
    total += s->tree.NumNodes();
    batch.tree_offsets.push_back(static_cast<int>(total));
  }
  if (total == 0) return batch;
  batch.forest.left.reserve(total);
  batch.forest.right.reserve(total);
  batch.node_features = Matrix(static_cast<int>(total), samples[0]->node_features.cols());
  for (size_t s = 0; s < samples.size(); ++s) {
    const PlanSample& sample = *samples[s];
    NEO_CHECK(sample.node_features.cols() == batch.node_features.cols());
    NEO_CHECK(sample.node_features.rows() ==
              static_cast<int>(sample.tree.NumNodes()));
    const int base = batch.tree_offsets[s];
    for (size_t i = 0; i < sample.tree.NumNodes(); ++i) {
      const int l = sample.tree.left[i];
      const int r = sample.tree.right[i];
      batch.forest.left.push_back(l < 0 ? -1 : l + base);
      batch.forest.right.push_back(r < 0 ? -1 : r + base);
      std::copy(sample.node_features.Row(static_cast<int>(i)),
                sample.node_features.Row(static_cast<int>(i)) + sample.node_features.cols(),
                batch.node_features.Row(base + static_cast<int>(i)));
    }
  }
  return batch;
}

Matrix ValueNetwork::EmbedQuery(const Matrix& query_vec) {
  return query_stack_.Forward(query_vec);
}

Matrix ValueNetwork::AugmentNodes(const Matrix& query_embedding,
                                  const Matrix& node_features) const {
  // Spatial replication: append the query embedding to every node.
  const int n = node_features.rows();
  Matrix augmented(n, config_.plan_dim + embed_dim_);
  const float* e = query_embedding.Row(0);
  for (int i = 0; i < n; ++i) {
    float* dst = augmented.Row(i);
    const float* src = node_features.Row(i);
    for (int c = 0; c < config_.plan_dim; ++c) dst[c] = src[c];
    for (int c = 0; c < embed_dim_; ++c) dst[config_.plan_dim + c] = e[c];
  }
  return augmented;
}

void ValueNetwork::SyncInferenceWeights() {
  if (inference_weights_version_ == version_) return;
  for (auto& conv : convs_) conv.RefreshInferenceWeights();
  inference_weights_version_ = version_;
}

void ValueNetwork::ApplyLeakyReLU(Matrix* m) const {
  for (size_t i = 0; i < m->Size(); ++i) {
    if (m->data()[i] < 0.0f) m->data()[i] *= leaky_alpha_;
  }
}

Matrix ValueNetwork::InferencePooled(const TreeStructure& tree,
                                     const Matrix& node_features,
                                     const Matrix& query_embedding,
                                     const std::vector<int>& offsets) {
  SyncInferenceWeights();
  Matrix cur;
  for (size_t li = 0; li < convs_.size(); ++li) {
    Matrix z = li == 0 ? convs_[0].ForwardInference(tree, node_features,
                                                    &query_embedding)
                       : convs_[li].ForwardInference(tree, cur);
    ApplyLeakyReLU(&z);
    cur = std::move(z);
  }
  return pool_.Forward(cur, offsets);
}

std::vector<float> ValueNetwork::PredictBatch(const Matrix& query_embedding,
                                              const PlanBatch& batch) {
  const int n_plans = batch.size();
  if (n_plans == 0) return {};
  NEO_CHECK(batch.node_features.rows() ==
            static_cast<int>(batch.forest.NumNodes()));
  Matrix pooled;  // (N x C)
  if (UseReferenceKernels()) {
    // Seed-path reconstruction for benches: dense augment-and-concat stack.
    Matrix cur = AugmentNodes(query_embedding, batch.node_features);
    for (auto& conv : convs_) {
      Matrix z = conv.Forward(batch.forest, cur);
      ApplyLeakyReLU(&z);
      cur = std::move(z);
    }
    pooled = pool_.Forward(cur, batch.tree_offsets);
  } else {
    pooled = InferencePooled(batch.forest, batch.node_features, query_embedding,
                             batch.tree_offsets);
  }
  const Matrix scores = head_.Forward(pooled);  // (N x 1)
  std::vector<float> out(static_cast<size_t>(n_plans));
  for (int i = 0; i < n_plans; ++i) out[static_cast<size_t>(i)] = scores.At(i, 0);
  return out;
}

std::vector<float> ValueNetwork::PredictBatch(
    const Matrix& query_embedding, const std::vector<const PlanSample*>& samples) {
  return PredictBatch(query_embedding, PackPlanBatch(samples));
}

float ValueNetwork::ForwardPlan(const Matrix& query_embedding, const TreeStructure& tree,
                                const Matrix& node_features, ForwardState* state) {
  const int n = node_features.rows();
  NEO_CHECK(n > 0);

  // Fast inference: absent-child blocks are skipped and the query embedding
  // is projected once per call (shared-suffix layer 0) instead of per node.
  // Reference-kernel mode (benches reconstructing the seed path) uses the
  // dense branch below even at inference.
  if (state == nullptr && !UseReferenceKernels()) {
    const std::vector<int> offsets = {0, n};
    const Matrix pooled = InferencePooled(tree, node_features, query_embedding, offsets);
    return head_.Forward(pooled).At(0, 0);
  }

  // Dense concat forward: training (caches activations for the backward) and
  // reference mode.
  Matrix augmented = AugmentNodes(query_embedding, node_features);
  Matrix cur = augmented;
  std::vector<Matrix> pre, post;
  for (auto& conv : convs_) {
    Matrix z = conv.Forward(tree, cur);
    if (state != nullptr) pre.push_back(z);
    ApplyLeakyReLU(&z);  // Leaky ReLU between conv layers.
    if (state != nullptr) post.push_back(z);
    cur = std::move(z);
  }
  const Matrix pooled = pool_.Forward(cur);
  const Matrix out = head_.Forward(pooled);
  if (state != nullptr) {
    state->augmented = std::move(augmented);
    state->conv_pre = std::move(pre);
    state->conv_post = std::move(post);
  }
  return out.At(0, 0);
}

float ValueNetwork::Predict(const PlanSample& sample) {
  const Matrix embed = EmbedQuery(sample.query_vec);
  return ForwardPlan(embed, sample.tree, sample.node_features, nullptr);
}

float ValueNetwork::PredictWithEmbedding(const Matrix& query_embedding,
                                         const TreeStructure& tree,
                                         const Matrix& node_features) {
  return ForwardPlan(query_embedding, tree, node_features, nullptr);
}

float ValueNetwork::TrainBatch(const std::vector<const PlanSample*>& samples,
                               const std::vector<float>& targets) {
  NEO_CHECK(samples.size() == targets.size());
  NEO_CHECK(!samples.empty());
  double total_loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(samples.size());

  for (size_t s = 0; s < samples.size(); ++s) {
    const PlanSample& sample = *samples[s];
    // Forward (query stack caches activations for this sample's backward).
    const Matrix embed = query_stack_.Forward(sample.query_vec);
    ForwardState state;
    const float pred = ForwardPlan(embed, sample.tree, sample.node_features, &state);

    const float err = pred - targets[s];
    total_loss += static_cast<double>(err) * err;

    // Backward: dL/dpred = 2 * err / batch (L2 loss, paper §4).
    Matrix grad_out(1, 1);
    grad_out.At(0, 0) = 2.0f * err * inv_batch;
    Matrix grad_pooled = head_.Backward(grad_out);
    Matrix grad_nodes = pool_.Backward(grad_pooled);

    // Back through the conv stack (activation then conv, reversed).
    for (int li = static_cast<int>(convs_.size()) - 1; li >= 0; --li) {
      // Leaky ReLU backward on pre-activation.
      const Matrix& z = state.conv_pre[static_cast<size_t>(li)];
      for (size_t i = 0; i < grad_nodes.Size(); ++i) {
        if (z.data()[i] < 0.0f) grad_nodes.data()[i] *= leaky_alpha_;
      }
      grad_nodes = convs_[static_cast<size_t>(li)].Backward(sample.tree, grad_nodes);
    }

    // Split: plan-feature gradients are dropped (inputs); query-embedding
    // gradients sum over nodes (replication).
    Matrix grad_embed(1, embed_dim_);
    for (int i = 0; i < grad_nodes.rows(); ++i) {
      const float* row = grad_nodes.Row(i);
      float* ge = grad_embed.Row(0);
      for (int c = 0; c < embed_dim_; ++c) ge[c] += row[config_.plan_dim + c];
    }
    query_stack_.Backward(grad_embed);
  }

  adam_->Step();
  ++version_;
  return static_cast<float>(total_loss / static_cast<double>(samples.size()));
}

}  // namespace neo::nn
