#include "src/nn/value_network.h"

#include <cmath>
#include <cstdio>

namespace neo::nn {

ValueNetwork::ValueNetwork(const ValueNetConfig& config)
    : config_(config), rng_(config.seed), leaky_alpha_(config.leaky_alpha) {
  NEO_CHECK(config.query_dim > 0 && config.plan_dim > 0);
  NEO_CHECK(!config.query_fc.empty() && !config.tree_channels.empty());

  // Query-level FC stack with layer norm (paper §6.1).
  int prev = config.query_dim;
  for (size_t i = 0; i < config.query_fc.size(); ++i) {
    const int width = config.query_fc[i];
    query_stack_.Add(std::make_unique<Linear>(prev, width, rng_));
    query_stack_.Add(std::make_unique<LayerNorm>(width));
    query_stack_.Add(std::make_unique<LeakyReLU>(leaky_alpha_));
    prev = width;
  }
  embed_dim_ = prev;

  // Tree convolution stack over augmented nodes.
  int channels = config.plan_dim + embed_dim_;
  for (int out_channels : config.tree_channels) {
    convs_.emplace_back(channels, out_channels, rng_);
    channels = out_channels;
  }

  // Head FC stack -> scalar.
  prev = channels;
  for (int width : config.head_fc) {
    head_.Add(std::make_unique<Linear>(prev, width, rng_));
    head_.Add(std::make_unique<LayerNorm>(width));
    head_.Add(std::make_unique<LeakyReLU>(leaky_alpha_));
    prev = width;
  }
  head_.Add(std::make_unique<Linear>(prev, 1, rng_));

  std::vector<Param*> params;
  query_stack_.CollectParams(&params);
  for (auto& conv : convs_) conv.CollectParams(&params);
  head_.CollectParams(&params);
  adam_ = std::make_unique<Adam>(std::move(params), config.adam);
}

size_t ValueNetwork::NumParameters() const {
  std::vector<Param*> params;
  const_cast<ValueNetwork*>(this)->query_stack_.CollectParams(&params);
  for (auto& conv : const_cast<ValueNetwork*>(this)->convs_) conv.CollectParams(&params);
  const_cast<ValueNetwork*>(this)->head_.CollectParams(&params);
  size_t total = 0;
  for (const Param* p : params) total += p->value.Size();
  return total;
}

namespace {
constexpr uint32_t kWeightsMagic = 0x4e454f57;  // "NEOW"
}  // namespace

bool ValueNetwork::SaveWeights(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::vector<Param*> params;
  auto* self = const_cast<ValueNetwork*>(this);
  self->query_stack_.CollectParams(&params);
  for (auto& conv : self->convs_) conv.CollectParams(&params);
  self->head_.CollectParams(&params);

  bool ok = true;
  const uint32_t magic = kWeightsMagic;
  const uint32_t n_params = static_cast<uint32_t>(params.size());
  ok &= std::fwrite(&magic, sizeof(magic), 1, f) == 1;
  ok &= std::fwrite(&n_params, sizeof(n_params), 1, f) == 1;
  for (const Param* p : params) {
    const int32_t rows = p->value.rows();
    const int32_t cols = p->value.cols();
    ok &= std::fwrite(&rows, sizeof(rows), 1, f) == 1;
    ok &= std::fwrite(&cols, sizeof(cols), 1, f) == 1;
    ok &= std::fwrite(p->value.data(), sizeof(float), p->value.Size(), f) ==
          p->value.Size();
  }
  std::fclose(f);
  return ok;
}

bool ValueNetwork::LoadWeights(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::vector<Param*> params;
  query_stack_.CollectParams(&params);
  for (auto& conv : convs_) conv.CollectParams(&params);
  head_.CollectParams(&params);

  bool ok = true;
  uint32_t magic = 0, n_params = 0;
  ok &= std::fread(&magic, sizeof(magic), 1, f) == 1 && magic == kWeightsMagic;
  ok &= std::fread(&n_params, sizeof(n_params), 1, f) == 1 &&
        n_params == params.size();
  for (Param* p : params) {
    if (!ok) break;
    int32_t rows = 0, cols = 0;
    ok &= std::fread(&rows, sizeof(rows), 1, f) == 1;
    ok &= std::fread(&cols, sizeof(cols), 1, f) == 1;
    ok &= rows == p->value.rows() && cols == p->value.cols();
    if (ok) {
      ok &= std::fread(p->value.data(), sizeof(float), p->value.Size(), f) ==
            p->value.Size();
    }
  }
  std::fclose(f);
  if (ok) ++version_;  // Loaded weights invalidate any cached scores.
  return ok;
}

Matrix ValueNetwork::EmbedQuery(const Matrix& query_vec) {
  return query_stack_.Forward(query_vec);
}

float ValueNetwork::ForwardPlan(const Matrix& query_embedding, const TreeStructure& tree,
                                const Matrix& node_features, ForwardState* state) {
  const int n = node_features.rows();
  NEO_CHECK(n > 0);
  // Spatial replication: append the query embedding to every node.
  Matrix augmented(n, config_.plan_dim + embed_dim_);
  for (int i = 0; i < n; ++i) {
    float* dst = augmented.Row(i);
    const float* src = node_features.Row(i);
    for (int c = 0; c < config_.plan_dim; ++c) dst[c] = src[c];
    const float* e = query_embedding.Row(0);
    for (int c = 0; c < embed_dim_; ++c) dst[config_.plan_dim + c] = e[c];
  }

  Matrix cur = augmented;
  std::vector<Matrix> pre, post;
  for (auto& conv : convs_) {
    Matrix z = conv.Forward(tree, cur);
    if (state != nullptr) pre.push_back(z);
    // Leaky ReLU between conv layers.
    for (size_t i = 0; i < z.Size(); ++i) {
      if (z.data()[i] < 0.0f) z.data()[i] *= leaky_alpha_;
    }
    if (state != nullptr) post.push_back(z);
    cur = std::move(z);
  }
  const Matrix pooled = pool_.Forward(cur);
  const Matrix out = head_.Forward(pooled);
  if (state != nullptr) {
    state->augmented = std::move(augmented);
    state->conv_pre = std::move(pre);
    state->conv_post = std::move(post);
  }
  return out.At(0, 0);
}

float ValueNetwork::Predict(const PlanSample& sample) {
  const Matrix embed = EmbedQuery(sample.query_vec);
  return ForwardPlan(embed, sample.tree, sample.node_features, nullptr);
}

float ValueNetwork::PredictWithEmbedding(const Matrix& query_embedding,
                                         const TreeStructure& tree,
                                         const Matrix& node_features) {
  return ForwardPlan(query_embedding, tree, node_features, nullptr);
}

float ValueNetwork::TrainBatch(const std::vector<const PlanSample*>& samples,
                               const std::vector<float>& targets) {
  NEO_CHECK(samples.size() == targets.size());
  NEO_CHECK(!samples.empty());
  double total_loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(samples.size());

  for (size_t s = 0; s < samples.size(); ++s) {
    const PlanSample& sample = *samples[s];
    // Forward (query stack caches activations for this sample's backward).
    const Matrix embed = query_stack_.Forward(sample.query_vec);
    ForwardState state;
    const float pred = ForwardPlan(embed, sample.tree, sample.node_features, &state);

    const float err = pred - targets[s];
    total_loss += static_cast<double>(err) * err;

    // Backward: dL/dpred = 2 * err / batch (L2 loss, paper §4).
    Matrix grad_out(1, 1);
    grad_out.At(0, 0) = 2.0f * err * inv_batch;
    Matrix grad_pooled = head_.Backward(grad_out);
    Matrix grad_nodes = pool_.Backward(grad_pooled);

    // Back through the conv stack (activation then conv, reversed).
    for (int li = static_cast<int>(convs_.size()) - 1; li >= 0; --li) {
      // Leaky ReLU backward on pre-activation.
      const Matrix& z = state.conv_pre[static_cast<size_t>(li)];
      for (size_t i = 0; i < grad_nodes.Size(); ++i) {
        if (z.data()[i] < 0.0f) grad_nodes.data()[i] *= leaky_alpha_;
      }
      grad_nodes = convs_[static_cast<size_t>(li)].Backward(sample.tree, grad_nodes);
    }

    // Split: plan-feature gradients are dropped (inputs); query-embedding
    // gradients sum over nodes (replication).
    Matrix grad_embed(1, embed_dim_);
    for (int i = 0; i < grad_nodes.rows(); ++i) {
      const float* row = grad_nodes.Row(i);
      float* ge = grad_embed.Row(0);
      for (int c = 0; c < embed_dim_; ++c) ge[c] += row[config_.plan_dim + c];
    }
    query_stack_.Backward(grad_embed);
  }

  adam_->Step();
  ++version_;
  return static_cast<float>(total_loss / static_cast<double>(samples.size()));
}

}  // namespace neo::nn
