#include "src/nn/value_network.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "src/util/alloc_counter.h"



namespace neo::nn {

ValueNetwork::ValueNetwork(const ValueNetConfig& config)
    : config_(config), rng_(config.seed), leaky_alpha_(config.leaky_alpha) {
  NEO_CHECK(config.query_dim > 0 && config.plan_dim > 0);
  NEO_CHECK(!config.query_fc.empty() && !config.tree_channels.empty());

  // Query-level FC stack with layer norm (paper §6.1).
  int prev = config.query_dim;
  for (size_t i = 0; i < config.query_fc.size(); ++i) {
    const int width = config.query_fc[i];
    query_stack_.Add(std::make_unique<Linear>(prev, width, rng_));
    query_stack_.Add(std::make_unique<LayerNorm>(width));
    query_stack_.Add(std::make_unique<LeakyReLU>(leaky_alpha_));
    prev = width;
  }
  embed_dim_ = prev;

  // Tree convolution stack over augmented nodes. The first layer's input is
  // [plan features ; query embedding]; the embedding tail is row-constant at
  // inference, so layer 0 is built with a shared-suffix declaration and the
  // inference path never materializes the augmented matrix.
  int channels = config.plan_dim + embed_dim_;
  for (size_t i = 0; i < config.tree_channels.size(); ++i) {
    const int out_channels = config.tree_channels[i];
    convs_.emplace_back(channels, out_channels, rng_, i == 0 ? embed_dim_ : 0);
    channels = out_channels;
    total_conv_channels_ += out_channels;
  }

  // Head FC stack -> scalar.
  prev = channels;
  for (int width : config.head_fc) {
    head_.Add(std::make_unique<Linear>(prev, width, rng_));
    head_.Add(std::make_unique<LayerNorm>(width));
    head_.Add(std::make_unique<LeakyReLU>(leaky_alpha_));
    prev = width;
  }
  head_.Add(std::make_unique<Linear>(prev, 1, rng_));

  std::vector<Param*> params;
  query_stack_.CollectParams(&params);
  for (auto& conv : convs_) conv.CollectParams(&params);
  head_.CollectParams(&params);
  adam_ = std::make_unique<Adam>(std::move(params), config.adam);
}

std::vector<Param*> ValueNetwork::AllParams() const {
  std::vector<Param*> params;
  auto* self = const_cast<ValueNetwork*>(this);
  self->query_stack_.CollectParams(&params);
  for (auto& conv : self->convs_) conv.CollectParams(&params);
  self->head_.CollectParams(&params);
  return params;
}

size_t ValueNetwork::NumParameters() const {
  size_t total = 0;
  for (const Param* p : AllParams()) total += p->value.Size();
  return total;
}

namespace {
constexpr uint32_t kWeightsMagic = 0x4e454f57;  // "NEOW"
constexpr uint32_t kWeightsFormatVersion = 2;   // v2: +format version, +checksum.

/// FNV-1a 64 over a byte range, chainable via `h`.
uint64_t Fnv1a(const void* data, size_t n, uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}
constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
}  // namespace

util::Status ValueNetwork::SaveWeights(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::Internal("cannot open for write: " + path);
  }
  const std::vector<Param*> params = AllParams();

  bool ok = true;
  const uint32_t magic = kWeightsMagic;
  const uint32_t format = kWeightsFormatVersion;
  const uint32_t n_params = static_cast<uint32_t>(params.size());
  ok &= std::fwrite(&magic, sizeof(magic), 1, f) == 1;
  ok &= std::fwrite(&format, sizeof(format), 1, f) == 1;
  ok &= std::fwrite(&n_params, sizeof(n_params), 1, f) == 1;
  uint64_t checksum = Fnv1a(&n_params, sizeof(n_params), kFnvOffsetBasis);
  for (const Param* p : params) {
    const int32_t rows = p->value.rows();
    const int32_t cols = p->value.cols();
    ok &= std::fwrite(&rows, sizeof(rows), 1, f) == 1;
    ok &= std::fwrite(&cols, sizeof(cols), 1, f) == 1;
    ok &= std::fwrite(p->value.data(), sizeof(float), p->value.Size(), f) ==
          p->value.Size();
    checksum = Fnv1a(&rows, sizeof(rows), checksum);
    checksum = Fnv1a(&cols, sizeof(cols), checksum);
    checksum = Fnv1a(p->value.data(), sizeof(float) * p->value.Size(), checksum);
  }
  ok &= std::fwrite(&checksum, sizeof(checksum), 1, f) == 1;
  ok &= std::fclose(f) == 0;
  if (!ok) return util::Status::Internal("short write: " + path);
  return util::Status::Ok();
}

util::Status ValueNetwork::LoadWeights(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return util::Status::NotFound("no such checkpoint: " + path);
  const std::vector<Param*> params = AllParams();

  // Bump-on-exit, even on failure: a truncated file may have partially
  // overwritten parameters, and every weight-derived cache (score cache,
  // inference weight splits) keys off version_ — stale serves would be
  // silent. The head's packed weight copy is invalidated eagerly so the
  // window between this load and the next SyncInferenceWeights cannot
  // multiply stale packed values (the conv splits are lazy-refreshed behind
  // the version check; the query stack never packs).
  struct VersionBump {
    ValueNetwork* net;
    ~VersionBump() {
      net->head_.InvalidateInferenceWeights();
      ++net->version_;
    }
  } bump{this};

  util::Status status = util::Status::Ok();
  uint32_t magic = 0, format = 0, n_params = 0;
  if (std::fread(&magic, sizeof(magic), 1, f) != 1 ||
      std::fread(&format, sizeof(format), 1, f) != 1 ||
      std::fread(&n_params, sizeof(n_params), 1, f) != 1 ||
      magic != kWeightsMagic || format != kWeightsFormatVersion) {
    status = util::Status::DataLoss("bad magic/format header: " + path);
  } else if (n_params != params.size()) {
    status = util::Status::FailedPrecondition("parameter count mismatch: " + path);
  }
  uint64_t checksum = Fnv1a(&n_params, sizeof(n_params), kFnvOffsetBasis);
  for (Param* p : params) {
    if (!status.ok()) break;
    int32_t rows = 0, cols = 0;
    if (std::fread(&rows, sizeof(rows), 1, f) != 1 ||
        std::fread(&cols, sizeof(cols), 1, f) != 1) {
      status = util::Status::DataLoss("truncated checkpoint: " + path);
      break;
    }
    if (rows != p->value.rows() || cols != p->value.cols()) {
      status = util::Status::FailedPrecondition("architecture mismatch: " + path);
      break;
    }
    if (std::fread(p->value.data(), sizeof(float), p->value.Size(), f) !=
        p->value.Size()) {
      status = util::Status::DataLoss("truncated checkpoint: " + path);
      break;
    }
    checksum = Fnv1a(&rows, sizeof(rows), checksum);
    checksum = Fnv1a(&cols, sizeof(cols), checksum);
    checksum = Fnv1a(p->value.data(), sizeof(float) * p->value.Size(), checksum);
  }
  if (status.ok()) {
    uint64_t stored = 0;
    if (std::fread(&stored, sizeof(stored), 1, f) != 1) {
      status = util::Status::DataLoss("missing checksum: " + path);
    } else if (stored != checksum) {
      status = util::Status::DataLoss("checksum mismatch (corrupted checkpoint): " +
                                      path);
    }
  }
  std::fclose(f);
  return status;
}

void ValueNetwork::CaptureSnapshot(WeightSnapshot* snap) const {
  const std::vector<Param*> params = AllParams();
  snap->params.assign(params.size(), Matrix());
  for (size_t i = 0; i < params.size(); ++i) snap->params[i] = params[i]->value;
  adam_->CaptureState(&snap->adam_m, &snap->adam_v, &snap->adam_steps);
  snap->version = version_;
}

void ValueNetwork::RestoreSnapshot(const WeightSnapshot& snap) {
  const std::vector<Param*> params = AllParams();
  NEO_CHECK(snap.params.size() == params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    NEO_CHECK(snap.params[i].rows() == params[i]->value.rows() &&
              snap.params[i].cols() == params[i]->value.cols());
    params[i]->value = snap.params[i];
    params[i]->ZeroGrad();
  }
  adam_->RestoreState(snap.adam_m, snap.adam_v, snap.adam_steps);
  // Same discipline as LoadWeights: any weight mutation bumps the version so
  // score/activation caches keyed on it invalidate, and the head's packed
  // copy is dropped eagerly.
  head_.InvalidateInferenceWeights();
  ++version_;
}

bool ValueNetwork::HasNonFiniteParams() const {
  for (const Param* p : AllParams()) {
    const float* data = p->value.data();
    for (size_t i = 0; i < p->value.Size(); ++i) {
      if (!std::isfinite(data[i])) return true;
    }
  }
  return false;
}

void ValueNetwork::DebugPoisonWeights(uint64_t key) {
  const std::vector<Param*> params = AllParams();
  // Poison a few elements spread across parameter matrices, deterministically
  // keyed: the same (key, architecture) always corrupts the same weights.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (int k = 0; k < 3; ++k) {
    const uint64_t h = util::Mix64(util::HashCombine(key, static_cast<uint64_t>(k)));
    Param* p = params[h % params.size()];
    p->value.data()[util::Mix64(h) % p->value.Size()] = nan;
  }
  head_.InvalidateInferenceWeights();
  ++version_;
}

PlanBatch PackPlanBatch(const std::vector<const PlanSample*>& samples) {
  return PackPlanBatch(samples.data(), samples.size());
}

PlanBatch PackPlanBatch(const PlanSample* const* samples, size_t n) {
  PlanBatch batch;
  PackPlanBatchInto(samples, n, &batch);
  return batch;
}

void PackPlanBatchInto(const PlanSample* const* samples, size_t n,
                       PlanBatch* out) {
  out->tree_offsets.clear();
  out->tree_offsets.reserve(n + 1);
  out->tree_offsets.push_back(0);
  out->node_fp.clear();
  out->forest.left.clear();
  out->forest.right.clear();
  size_t total = 0;
  for (size_t s = 0; s < n; ++s) {
    total += samples[s]->tree.NumNodes();
    out->tree_offsets.push_back(static_cast<int>(total));
  }
  if (total == 0) {
    out->node_features.Reshape(0, 0);
    return;
  }
  out->forest.left.reserve(total);
  out->forest.right.reserve(total);
  out->node_features.Reshape(static_cast<int>(total),
                             samples[0]->node_features.cols());
  for (size_t s = 0; s < n; ++s) {
    const PlanSample& sample = *samples[s];
    NEO_CHECK(sample.node_features.cols() == out->node_features.cols());
    NEO_CHECK(sample.node_features.rows() ==
              static_cast<int>(sample.tree.NumNodes()));
    const int base = out->tree_offsets[s];
    for (size_t i = 0; i < sample.tree.NumNodes(); ++i) {
      const int l = sample.tree.left[i];
      const int r = sample.tree.right[i];
      out->forest.left.push_back(l < 0 ? -1 : l + base);
      out->forest.right.push_back(r < 0 ? -1 : r + base);
      std::copy(sample.node_features.Row(static_cast<int>(i)),
                sample.node_features.Row(static_cast<int>(i)) + sample.node_features.cols(),
                out->node_features.Row(base + static_cast<int>(i)));
    }
  }
  // Gather lists once per forest: every conv layer's training forward AND
  // backward reuses them instead of re-scanning child indices per layer.
  TreeGather::BuildInto(out->forest, &out->gather);
}

Matrix ValueNetwork::EmbedQuery(const Matrix& query_vec) const {
  return query_stack_.ForwardInference(query_vec);
}

void ValueNetwork::EmbedQueryInto(const Matrix& query_vec,
                                  PipelineScratch* scratch, Matrix* out) const {
  query_stack_.ForwardInferenceInto(query_vec, scratch, out);
}

Matrix ValueNetwork::AugmentNodes(const Matrix& query_embedding,
                                  const Matrix& node_features) const {
  // Spatial replication: append the query embedding to every node.
  const int n = node_features.rows();
  Matrix augmented(n, config_.plan_dim + embed_dim_);
  const float* e = query_embedding.Row(0);
  for (int i = 0; i < n; ++i) {
    float* dst = augmented.Row(i);
    const float* src = node_features.Row(i);
    for (int c = 0; c < config_.plan_dim; ++c) dst[c] = src[c];
    for (int c = 0; c < embed_dim_; ++c) dst[config_.plan_dim + c] = e[c];
  }
  return augmented;
}

void ValueNetwork::SyncInferenceWeights() {
  // Double-checked: the version match is the overwhelmingly common case, and
  // the mutex only serializes the first inference after a weight update.
  // Training must still never run concurrently with inference (the refresh
  // itself would read half-updated weights), which Neo's retrain-then-plan
  // episode structure guarantees.
  if (inference_weights_version_.load(std::memory_order_acquire) == version_) return;
  std::lock_guard<std::mutex> lock(inference_sync_mu_);
  if (inference_weights_version_.load(std::memory_order_relaxed) == version_) return;
  for (auto& conv : convs_) conv.RefreshInferenceWeights();
  // Re-pack the head stack's weights for the kernel dispatch arms alongside
  // the conv splits: every head read happens after a SyncInferenceWeights on
  // the reading thread (PredictBatch / ForwardPlan call it first), so the
  // version acquire/release pair orders these writes before them. The QUERY
  // stack is deliberately NOT packed: EmbedQuery runs without a sync (it may
  // race with another search's first-inference refresh), and its per-query
  // (1 x dim) GEMMs gain nothing from pre-packing — it always multiplies the
  // live weights instead.
  head_.RefreshInferenceWeights();
  inference_weights_version_.store(version_, std::memory_order_release);
}

void ValueNetwork::ApplyLeakyReLU(Matrix* m) const {
  float* data = m->data();
  ParallelRows(static_cast<int64_t>(m->Size()), /*min_parallel=*/1 << 14,
               [&](int64_t i0, int64_t i1) {
                 for (int64_t i = i0; i < i1; ++i) {
                   if (data[i] < 0.0f) data[i] *= leaky_alpha_;
                 }
               });
}

void ValueNetwork::InferencePooledInto(const TreeStructure& tree,
                                       const Matrix& node_features,
                                       const Matrix& query_embedding,
                                       const std::vector<int>& offsets,
                                       InferenceContext* ctx,
                                       const ActivationReuse* reuse,
                                       Matrix* pooled) {
  SyncInferenceWeights();
  if (ctx == nullptr) ctx = &default_ctx_;
  if (ctx->conv_scratch.size() < convs_.size()) ctx->conv_scratch.resize(convs_.size());
  if (ctx->conv_out.size() < convs_.size()) ctx->conv_out.resize(convs_.size());

  if (reuse == nullptr) {
    for (size_t li = 0; li < convs_.size(); ++li) {
      // Leaky ReLU is fused into the conv's scatter epilogue (bit-identical
      // to a separate pass), so conv_out[li] holds post-activations.
      if (li == 0) {
        convs_[0].ForwardInferenceInto(tree, node_features, &query_embedding,
                                       &ctx->conv_scratch[0], leaky_alpha_,
                                       &ctx->conv_out[0]);
      } else {
        convs_[li].ForwardInferenceInto(tree, ctx->conv_out[li - 1], nullptr,
                                        &ctx->conv_scratch[li], leaky_alpha_,
                                        &ctx->conv_out[li]);
      }
    }
    pool_.ForwardInferenceInto(ctx->conv_out[convs_.size() - 1], offsets, pooled);
    return;
  }

  // Incremental path: cached rows are copied in per layer, dirty rows run the
  // row-restricted gather/GEMM/scatter. Every row of every layer matrix ends
  // up filled (clean from cache, dirty computed), so a dirty node may sit
  // anywhere — its children's input rows are always available. Dirty rows get
  // the same per-row arithmetic (with the same fused leaky ReLU) as the full
  // pass, and cached rows were themselves computed that way in an earlier
  // batch, so the pooled result is bit-identical to the non-incremental path.
  const int n = node_features.rows();
  NEO_CHECK(reuse->cached.size() == static_cast<size_t>(n));
  NEO_CHECK(reuse->store.size() == static_cast<size_t>(n));
  std::vector<int>& dirty = ctx->dirty_rows;
  dirty.clear();
  for (int i = 0; i < n; ++i) {
    if (reuse->cached[static_cast<size_t>(i)] == nullptr) dirty.push_back(i);
  }
  int layer_off = 0;
  for (size_t li = 0; li < convs_.size(); ++li) {
    const int cout = convs_[li].out_channels();
    Matrix& z = ctx->conv_out[li];
    z.Reshape(n, cout);
    for (int i = 0; i < n; ++i) {
      const float* hit = reuse->cached[static_cast<size_t>(i)];
      if (hit != nullptr) std::copy(hit + layer_off, hit + layer_off + cout, z.Row(i));
    }
    convs_[li].ForwardInferenceRows(tree,
                                    li == 0 ? node_features : ctx->conv_out[li - 1],
                                    dirty, li == 0 ? &query_embedding : nullptr,
                                    &ctx->conv_scratch[li], &z, leaky_alpha_);
    for (const int i : dirty) {
      float* out = reuse->store[static_cast<size_t>(i)];
      if (out != nullptr) {
        const float* row = z.Row(i);
        std::copy(row, row + cout, out + layer_off);
      }
    }
    layer_off += cout;
  }
  pool_.ForwardInferenceInto(ctx->conv_out[convs_.size() - 1], offsets, pooled);
}

std::vector<float> ValueNetwork::PredictBatch(const Matrix& query_embedding,
                                              const PlanBatch& batch,
                                              InferenceContext* ctx,
                                              const ActivationReuse* reuse) {
  std::vector<float> out;
  PredictBatchInto(query_embedding, batch, ctx, reuse, &out);
  return out;
}

void ValueNetwork::PredictBatchInto(const Matrix& query_embedding,
                                    const PlanBatch& batch,
                                    InferenceContext* ctx,
                                    const ActivationReuse* reuse,
                                    std::vector<float>* out) {
  out->clear();
  const int n_plans = batch.size();
  if (n_plans == 0) return;
  NEO_CHECK(batch.node_features.rows() ==
            static_cast<int>(batch.forest.NumNodes()));
  if (UseReferenceKernels()) {
    // Seed-path reconstruction for benches: dense augment-and-concat stack.
    // Mutates layer caches, so it is single-thread only. Activation reuse is
    // a fast-kernel feature; callers must not pass it in reference mode.
    NEO_CHECK(reuse == nullptr);
    Matrix cur = AugmentNodes(query_embedding, batch.node_features);
    for (auto& conv : convs_) {
      Matrix z = conv.Forward(batch.forest, cur);
      ApplyLeakyReLU(&z);
      cur = std::move(z);
    }
    const Matrix pooled = pool_.Forward(cur, batch.tree_offsets);
    const Matrix scores = head_.ForwardInference(pooled);  // (N x 1)
    out->resize(static_cast<size_t>(n_plans));
    for (int i = 0; i < n_plans; ++i) (*out)[static_cast<size_t>(i)] = scores.At(i, 0);
    return;
  }
  if (ctx == nullptr) ctx = &default_ctx_;
  InferencePooledInto(batch.forest, batch.node_features, query_embedding,
                      batch.tree_offsets, ctx, reuse, &ctx->pooled);
  head_.ForwardInferenceInto(ctx->pooled, &ctx->head_pipe, &ctx->scores);
  out->resize(static_cast<size_t>(n_plans));
  for (int i = 0; i < n_plans; ++i) {
    (*out)[static_cast<size_t>(i)] = ctx->scores.At(i, 0);
  }
}

std::vector<float> ValueNetwork::PredictBatch(
    const Matrix& query_embedding, const std::vector<const PlanSample*>& samples) {
  return PredictBatch(query_embedding, PackPlanBatch(samples));
}

void ValueNetwork::InferencePooledMultiInto(const TreeStructure& tree,
                                            const Matrix& node_features,
                                            const Matrix& suffixes,
                                            const std::vector<int>& node_seg,
                                            const std::vector<int>& offsets,
                                            InferenceContext* ctx,
                                            const ActivationReuse* reuse,
                                            Matrix* pooled) {
  SyncInferenceWeights();
  if (ctx->conv_scratch.size() < convs_.size()) ctx->conv_scratch.resize(convs_.size());
  if (ctx->conv_out.size() < convs_.size()) ctx->conv_out.resize(convs_.size());

  if (reuse == nullptr) {
    for (size_t li = 0; li < convs_.size(); ++li) {
      if (li == 0) {
        convs_[0].ForwardInferenceMultiInto(tree, node_features, suffixes,
                                            node_seg, &ctx->conv_scratch[0],
                                            leaky_alpha_, &ctx->conv_out[0]);
      } else {
        convs_[li].ForwardInferenceInto(tree, ctx->conv_out[li - 1], nullptr,
                                        &ctx->conv_scratch[li], leaky_alpha_,
                                        &ctx->conv_out[li]);
      }
    }
    pool_.ForwardInferenceInto(ctx->conv_out[convs_.size() - 1], offsets, pooled);
    return;
  }

  // Incremental path over the merged forest: identical to the solo one
  // except layer 0's row-restricted pass reads each dirty row's suffix
  // projection via node_seg. Dirty rows from different queries share the
  // GEMMs (rows are position-independent), so each row's bits match the
  // solo-query incremental pass.
  const int n = node_features.rows();
  NEO_CHECK(reuse->cached.size() == static_cast<size_t>(n));
  NEO_CHECK(reuse->store.size() == static_cast<size_t>(n));
  std::vector<int>& dirty = ctx->dirty_rows;
  dirty.clear();
  for (int i = 0; i < n; ++i) {
    if (reuse->cached[static_cast<size_t>(i)] == nullptr) dirty.push_back(i);
  }
  int layer_off = 0;
  for (size_t li = 0; li < convs_.size(); ++li) {
    const int cout = convs_[li].out_channels();
    Matrix& z = ctx->conv_out[li];
    z.Reshape(n, cout);
    for (int i = 0; i < n; ++i) {
      const float* hit = reuse->cached[static_cast<size_t>(i)];
      if (hit != nullptr) std::copy(hit + layer_off, hit + layer_off + cout, z.Row(i));
    }
    if (li == 0) {
      convs_[0].ForwardInferenceRowsMulti(tree, node_features, dirty, suffixes,
                                          node_seg, &ctx->conv_scratch[0], &z,
                                          leaky_alpha_);
    } else {
      convs_[li].ForwardInferenceRows(tree, ctx->conv_out[li - 1], dirty, nullptr,
                                      &ctx->conv_scratch[li], &z, leaky_alpha_);
    }
    for (const int i : dirty) {
      float* out = reuse->store[static_cast<size_t>(i)];
      if (out != nullptr) {
        const float* row = z.Row(i);
        std::copy(row, row + cout, out + layer_off);
      }
    }
    layer_off += cout;
  }
  pool_.ForwardInferenceInto(ctx->conv_out[convs_.size() - 1], offsets, pooled);
}

std::vector<float> ValueNetwork::PredictBatchMulti(const MultiPredictItem* items,
                                                   size_t n_items,
                                                   InferenceContext* ctx) {
  std::vector<float> out;
  PredictBatchMultiInto(items, n_items, ctx, &out);
  return out;
}

void ValueNetwork::PredictBatchMultiInto(const MultiPredictItem* items,
                                         size_t n_items, InferenceContext* ctx,
                                         std::vector<float>* out) {
  NEO_CHECK(n_items > 0);
  if (n_items == 1) {
    PredictBatchInto(*items[0].query_embedding, *items[0].batch, ctx,
                     items[0].reuse, out);
    return;
  }
  NEO_CHECK(!UseReferenceKernels());
  if (ctx == nullptr) ctx = &default_ctx_;
  InferenceContext::MultiScratch& ms = ctx->multi;

  int total_nodes = 0;
  int total_plans = 0;
  bool any_reuse = false;
  for (size_t k = 0; k < n_items; ++k) {
    const PlanBatch& b = *items[k].batch;
    NEO_CHECK(b.size() > 0);
    NEO_CHECK(b.node_features.rows() == static_cast<int>(b.forest.NumNodes()));
    total_nodes += b.node_features.rows();
    total_plans += b.size();
    if (items[k].reuse != nullptr) any_reuse = true;
  }

  // Merge: concatenate forests (child indices rebased), stack embeddings as
  // suffix rows, tag each node with its query segment, splice the per-item
  // reuse spans (an item without reuse scores all-dirty and stores nothing).
  ms.forest.left.clear();
  ms.forest.right.clear();
  ms.forest.left.reserve(static_cast<size_t>(total_nodes));
  ms.forest.right.reserve(static_cast<size_t>(total_nodes));
  ms.node_seg.clear();
  ms.node_seg.reserve(static_cast<size_t>(total_nodes));
  ms.features.Reshape(total_nodes, config_.plan_dim);
  ms.suffixes.Reshape(static_cast<int>(n_items), embed_dim_);
  ms.offsets.assign(1, 0);
  if (any_reuse) {
    ms.reuse.cached.assign(static_cast<size_t>(total_nodes), nullptr);
    ms.reuse.store.assign(static_cast<size_t>(total_nodes), nullptr);
  }
  int node_base = 0;
  for (size_t k = 0; k < n_items; ++k) {
    const PlanBatch& b = *items[k].batch;
    const int bn = b.node_features.rows();
    for (int i = 0; i < bn; ++i) {
      const int l = b.forest.left[static_cast<size_t>(i)];
      const int r = b.forest.right[static_cast<size_t>(i)];
      ms.forest.left.push_back(l < 0 ? -1 : l + node_base);
      ms.forest.right.push_back(r < 0 ? -1 : r + node_base);
      ms.node_seg.push_back(static_cast<int>(k));
      std::copy(b.node_features.Row(i), b.node_features.Row(i) + config_.plan_dim,
                ms.features.Row(node_base + i));
    }
    NEO_CHECK(items[k].query_embedding->cols() == embed_dim_);
    std::copy(items[k].query_embedding->Row(0),
              items[k].query_embedding->Row(0) + embed_dim_,
              ms.suffixes.Row(static_cast<int>(k)));
    for (int t = 1; t <= b.size(); ++t) {
      ms.offsets.push_back(node_base + b.tree_offsets[static_cast<size_t>(t)]);
    }
    if (any_reuse && items[k].reuse != nullptr) {
      const ActivationReuse& r = *items[k].reuse;
      NEO_CHECK(r.cached.size() == static_cast<size_t>(bn));
      NEO_CHECK(r.store.size() == static_cast<size_t>(bn));
      std::copy(r.cached.begin(), r.cached.end(),
                ms.reuse.cached.begin() + node_base);
      std::copy(r.store.begin(), r.store.end(),
                ms.reuse.store.begin() + node_base);
    }
    node_base += bn;
  }

  InferencePooledMultiInto(ms.forest, ms.features, ms.suffixes, ms.node_seg,
                           ms.offsets, ctx, any_reuse ? &ms.reuse : nullptr,
                           &ctx->pooled);
  head_.ForwardInferenceInto(ctx->pooled, &ctx->head_pipe, &ctx->scores);
  out->resize(static_cast<size_t>(total_plans));
  for (int i = 0; i < total_plans; ++i) {
    (*out)[static_cast<size_t>(i)] = ctx->scores.At(i, 0);
  }
}

float ValueNetwork::ForwardPlan(const Matrix& query_embedding, const TreeStructure& tree,
                                const Matrix& node_features, ForwardState* state,
                                InferenceContext* ctx) {
  const int n = node_features.rows();
  NEO_CHECK(n > 0);

  // Fast inference: absent-child blocks are skipped and the query embedding
  // is projected once per call (shared-suffix layer 0) instead of per node.
  // Reference-kernel mode (benches reconstructing the seed path) uses the
  // dense branch below even at inference.
  if (state == nullptr && !UseReferenceKernels()) {
    const std::vector<int> offsets = {0, n};
    if (ctx == nullptr) ctx = &default_ctx_;
    InferencePooledInto(tree, node_features, query_embedding, offsets, ctx,
                        nullptr, &ctx->pooled);
    head_.ForwardInferenceInto(ctx->pooled, &ctx->head_pipe, &ctx->scores);
    return ctx->scores.At(0, 0);
  }

  // Training forward (caches activations for the backward) and reference
  // mode. TreeConv::Forward runs the sparse block path under normal kernels
  // and the seed dense-concat path under reference kernels.
  if (state != nullptr) state->gather = TreeGather::Build(tree);
  Matrix augmented = AugmentNodes(query_embedding, node_features);
  Matrix cur = augmented;
  std::vector<Matrix> post;
  for (auto& conv : convs_) {
    Matrix z = conv.Forward(tree, cur, state != nullptr ? &state->gather : nullptr,
                            &train_scratch_);
    ApplyLeakyReLU(&z);  // Leaky ReLU between conv layers.
    if (state != nullptr) post.push_back(z);
    cur = std::move(z);
  }
  const Matrix pooled = pool_.Forward(cur);
  const Matrix out = head_.Forward(pooled);
  if (state != nullptr) {
    state->augmented = std::move(augmented);
    state->conv_post = std::move(post);
  }
  return out.At(0, 0);
}

float ValueNetwork::Predict(const PlanSample& sample) {
  const Matrix embed = EmbedQuery(sample.query_vec);
  return ForwardPlan(embed, sample.tree, sample.node_features, nullptr);
}

float ValueNetwork::PredictWithEmbedding(const Matrix& query_embedding,
                                         const TreeStructure& tree,
                                         const Matrix& node_features,
                                         InferenceContext* ctx) {
  return ForwardPlan(query_embedding, tree, node_features, nullptr, ctx);
}

float ValueNetwork::TrainBatch(const std::vector<const PlanSample*>& samples,
                               const std::vector<float>& targets) {
  NEO_CHECK(samples.size() == targets.size());
  return TrainBatch(samples.data(), targets.data(), samples.size());
}

namespace {

/// DEPRECATED no-op. Earlier revisions raised glibc's M_TRIM_THRESHOLD here:
/// training then freed a few MB of batch-sized buffers every step, and the
/// default 128KB trim threshold returned those pages to the kernel each time
/// (~0.5ms/step of re-fault cost). Training scratch is now RETAINED across
/// steps (see SetRetainTrainingScratch) — the steady state frees nothing, so
/// there is nothing for malloc to trim and no allocator knob to turn. The
/// NEO_NO_MALLOC_TUNING opt-out is still parsed so existing launch scripts
/// keep working, but it changes nothing.
void TuneAllocatorForTraining() {
  static const bool parsed = [] {
    const char* off = std::getenv("NEO_NO_MALLOC_TUNING");
    (void)off;  // Deprecated and ignored.
    return true;
  }();
  (void)parsed;
}

}  // namespace

float ValueNetwork::TrainBatch(const PlanSample* const* samples, const float* targets,
                               size_t n) {
  NEO_CHECK(n > 0);
  TuneAllocatorForTraining();
  // Count every heap allocation made by the step (benches assert the steady
  // state makes none; see util::RegionAllocs).
  util::AllocRegionScope alloc_region;
  return batched_training_ ? TrainBatchPacked(samples, targets, n)
                           : TrainBatchPerSample(samples, targets, n);
}

float ValueNetwork::TrainBatchPacked(const PlanSample* const* samples,
                                     const float* targets, size_t n) {
  if (UseReferenceKernels()) return TrainBatchPackedReference(samples, targets, n);
  // Pack the minibatch into one forest: every conv layer, the pooling, the
  // head, and the query stack run once over the whole batch as large GEMMs
  // instead of n small per-sample passes. Forward values are bit-identical
  // to the per-sample fast path (all kernels are row-independent); gradient
  // sums differ from it only by accumulation order.
  //
  // Every buffer here is a member, capacity-reused across steps: after one
  // step at the batch-size high-water mark the whole step performs zero heap
  // allocations. Layer 0 runs the suffix-split ForwardTrain/BackwardTrain —
  // the query-embedding suffix is projected once per forest (one (B x s)
  // GEMM), never materialized per node, so the augmented matrix of the old
  // path no longer exists.
  const int batch = static_cast<int>(n);
  PackPlanBatchInto(samples, n, &train_batch_);
  const PlanBatch& packed = train_batch_;
  const int total_nodes = packed.node_features.rows();
  NEO_CHECK(total_nodes > 0);

  // Query stack forward over all query vectors at once.
  train_query_vecs_.Reshape(batch, config_.query_dim);
  for (int s = 0; s < batch; ++s) {
    NEO_CHECK(samples[s]->query_vec.cols() == config_.query_dim);
    std::copy(samples[s]->query_vec.Row(0),
              samples[s]->query_vec.Row(0) + config_.query_dim,
              train_query_vecs_.Row(s));
  }
  query_stack_.ForwardInto(train_query_vecs_, &train_pipe_, &train_embeds_);

  // Node row -> sample segment (which embedding row a node's suffix is).
  train_node_seg_.resize(static_cast<size_t>(total_nodes));
  for (int s = 0; s < batch; ++s) {
    const int begin = packed.tree_offsets[static_cast<size_t>(s)];
    const int end = packed.tree_offsets[static_cast<size_t>(s) + 1];
    for (int i = begin; i < end; ++i) train_node_seg_[static_cast<size_t>(i)] = s;
  }

  // Conv stack forward. Leaky ReLU is fused into each layer's scatter
  // epilogue, so train_post_[li] holds post-activations — the layers'
  // backward inputs (leaky ReLU preserves sign, so the backward's relu mask
  // reads post < 0 and no pre-activation copy is ever made).
  if (train_post_.size() < convs_.size()) train_post_.resize(convs_.size());
  for (size_t li = 0; li < convs_.size(); ++li) {
    convs_[li].ForwardTrain(packed.forest,
                            li == 0 ? packed.node_features : train_post_[li - 1],
                            li == 0 ? &train_embeds_ : nullptr,
                            li == 0 ? train_node_seg_.data() : nullptr,
                            packed.gather, &train_scratch_, leaky_alpha_,
                            &train_post_[li]);
  }
  pool_.ForwardInto(train_post_[convs_.size() - 1], packed.tree_offsets,
                    &train_pooled_);                                // (batch x C)
  head_.ForwardInto(train_pooled_, &train_pipe_, &train_head_out_);  // (batch x 1)

  // L2 loss and output gradient: dL/dpred_s = 2 * err_s / batch (paper §4).
  double total_loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  train_grad_out_.Reshape(batch, 1);
  for (int s = 0; s < batch; ++s) {
    const float err = train_head_out_.At(s, 0) - targets[s];
    total_loss += static_cast<double>(err) * err;
    train_grad_out_.At(s, 0) = 2.0f * err * inv_batch;
  }

  head_.BackwardInto(train_grad_out_, &train_pipe_, &train_grad_pooled_);
  pool_.BackwardInto(train_grad_pooled_, &train_grad_nodes_);
  // Peak-scratch high-water mark, sampled at maximal liveness: every conv
  // post-activation, the packed features, the embeddings, and the layers'
  // backward caches are all alive here.
  size_t live_bytes = (packed.node_features.Size() + train_embeds_.Size() +
                       train_grad_nodes_.Size()) * sizeof(float);
  for (const Matrix& z : train_post_) live_bytes += z.Size() * sizeof(float);
  for (int li = static_cast<int>(convs_.size()) - 1; li >= 0; --li) {
    // Leaky ReLU backward mask (elementwise, partitionable): post < 0 iff
    // pre < 0 since alpha > 0, so the kept post-activations suffice.
    const float* z = train_post_[static_cast<size_t>(li)].data();
    float* g = train_grad_nodes_.data();
    ParallelRows(static_cast<int64_t>(train_grad_nodes_.Size()),
                 /*min_parallel=*/1 << 14, [&](int64_t i0, int64_t i1) {
                   for (int64_t i = i0; i < i1; ++i) {
                     if (z[i] < 0.0f) g[i] *= leaky_alpha_;
                   }
                 });
    if (li > 0) {
      convs_[static_cast<size_t>(li)].BackwardTrain(
          packed.forest, train_post_[static_cast<size_t>(li) - 1],
          /*suffixes=*/nullptr, /*node_seg=*/nullptr, train_grad_nodes_,
          packed.gather, &train_scratch_, &train_grad_nodes_tmp_,
          /*grad_suffix=*/nullptr);
      std::swap(train_grad_nodes_, train_grad_nodes_tmp_);
    } else {
      // Layer 0: plan features are leaf inputs (no input gradient); the
      // suffix gradient comes back per SAMPLE (ascending per-segment sums —
      // the spatial-replication split of the old path, without the
      // augmented-matrix round trip).
      convs_[0].BackwardTrain(packed.forest, packed.node_features,
                              &train_embeds_, train_node_seg_.data(),
                              train_grad_nodes_, packed.gather, &train_scratch_,
                              /*grad_in=*/nullptr, &train_grad_embeds_);
    }
  }
  query_stack_.BackwardInto(train_grad_embeds_, &train_pipe_, &train_grad_query_);

  adam_->Step();
  ++version_;
  NoteScratchPeakAndRelease(live_bytes);
  return static_cast<float>(total_loss / static_cast<double>(batch));
}

float ValueNetwork::TrainBatchPackedReference(const PlanSample* const* samples,
                                              const float* targets, size_t n) {
  // Seed-path packed step, kept verbatim for reference-kernel benches: dense
  // augment + concat conv, per-step allocation of every batch buffer.
  const int batch = static_cast<int>(n);
  const PlanBatch packed = PackPlanBatch(samples, n);
  const int total_nodes = packed.node_features.rows();
  NEO_CHECK(total_nodes > 0);

  // Query stack forward over all query vectors at once.
  Matrix query_vecs(batch, config_.query_dim);
  for (int s = 0; s < batch; ++s) {
    NEO_CHECK(samples[s]->query_vec.cols() == config_.query_dim);
    std::copy(samples[s]->query_vec.Row(0),
              samples[s]->query_vec.Row(0) + config_.query_dim, query_vecs.Row(s));
  }
  const Matrix embeds = query_stack_.Forward(query_vecs);  // (batch x E)

  // Spatial replication: node r of sample s gets [features_r ; embed_s].
  // Partitioned over samples; each node row is written exactly once.
  Matrix augmented(total_nodes, config_.plan_dim + embed_dim_);
  ParallelRows(batch, /*min_parallel=*/8, [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      const float* e = embeds.Row(static_cast<int>(s));
      const int begin = packed.tree_offsets[static_cast<size_t>(s)];
      const int end = packed.tree_offsets[static_cast<size_t>(s) + 1];
      for (int i = begin; i < end; ++i) {
        float* dst = augmented.Row(i);
        const float* src = packed.node_features.Row(i);
        for (int c = 0; c < config_.plan_dim; ++c) dst[c] = src[c];
        for (int c = 0; c < embed_dim_; ++c) dst[config_.plan_dim + c] = e[c];
      }
    }
  });

  // Conv stack forward over the packed forest: sparse block path (gathers
  // reuse packed.gather). Post-activations are kept — they are the layers'
  // backward inputs, replacing the per-layer (n x 3*cin) concat caches.
  // Post-activations only: leaky ReLU preserves sign, so the backward's relu
  // mask reads post < 0 and no pre-activation copy is ever made.
  std::vector<Matrix> post;
  post.reserve(convs_.size());
  for (size_t li = 0; li < convs_.size(); ++li) {
    Matrix z = convs_[li].Forward(packed.forest,
                                  li == 0 ? augmented : post[li - 1],
                                  &packed.gather, &train_scratch_);
    ApplyLeakyReLU(&z);
    post.push_back(std::move(z));
  }
  const Matrix pooled = pool_.Forward(post.back(), packed.tree_offsets);  // (batch x C)
  const Matrix out = head_.Forward(pooled);                               // (batch x 1)

  // L2 loss and output gradient: dL/dpred_s = 2 * err_s / batch (paper §4).
  double total_loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  Matrix grad_out(batch, 1);
  for (int s = 0; s < batch; ++s) {
    const float err = out.At(s, 0) - targets[s];
    total_loss += static_cast<double>(err) * err;
    grad_out.At(s, 0) = 2.0f * err * inv_batch;
  }

  Matrix grad_pooled = head_.Backward(grad_out);   // (batch x C)
  Matrix grad_nodes = pool_.Backward(grad_pooled); // (total_nodes x C)
  // Peak-scratch high-water mark, sampled at maximal liveness: every conv
  // pre/post activation, the augmented input, the packed features, and the
  // layers' backward caches are all alive here.
  size_t live_bytes = (augmented.Size() + packed.node_features.Size() +
                       grad_nodes.Size()) * sizeof(float);
  for (const Matrix& z : post) live_bytes += z.Size() * sizeof(float);
  for (int li = static_cast<int>(convs_.size()) - 1; li >= 0; --li) {
    // Leaky ReLU backward mask (elementwise, partitionable): post < 0 iff
    // pre < 0 since alpha > 0, so the kept post-activations suffice.
    const float* z = post[static_cast<size_t>(li)].data();
    float* g = grad_nodes.data();
    ParallelRows(static_cast<int64_t>(grad_nodes.Size()), /*min_parallel=*/1 << 14,
                 [&](int64_t i0, int64_t i1) {
                   for (int64_t i = i0; i < i1; ++i) {
                     if (z[i] < 0.0f) g[i] *= leaky_alpha_;
                   }
                 });
    grad_nodes = convs_[static_cast<size_t>(li)].Backward(
        packed.forest, li == 0 ? augmented : post[static_cast<size_t>(li) - 1],
        grad_nodes, &packed.gather, &train_scratch_);
  }

  // Split the augmented gradient: plan-feature columns are inputs (dropped);
  // each sample's query-embedding columns sum over its own nodes, ascending,
  // so the partition over samples never changes the result.
  Matrix grad_embeds(batch, embed_dim_);
  ParallelRows(batch, /*min_parallel=*/8, [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      float* ge = grad_embeds.Row(static_cast<int>(s));
      const int begin = packed.tree_offsets[static_cast<size_t>(s)];
      const int end = packed.tree_offsets[static_cast<size_t>(s) + 1];
      for (int i = begin; i < end; ++i) {
        const float* row = grad_nodes.Row(i);
        for (int c = 0; c < embed_dim_; ++c) ge[c] += row[config_.plan_dim + c];
      }
    }
  });
  query_stack_.Backward(grad_embeds);

  adam_->Step();
  ++version_;
  NoteScratchPeakAndRelease(live_bytes);
  return static_cast<float>(total_loss / static_cast<double>(batch));
}

float ValueNetwork::TrainBatchPerSample(const PlanSample* const* samples,
                                        const float* targets, size_t n) {
  if (!UseReferenceKernels()) {
    // Fast per-sample loop: the same suffix-split ForwardTrain/BackwardTrain
    // chain as the packed path at B == 1 (node_seg == nullptr: every node
    // reads suffix row 0), so per-sample predictions — and thus the first
    // loss — stay bit-identical to TrainBatchPacked (GEMM rows are
    // position-independent). Gradient sums differ only by accumulation order.
    double total_loss = 0.0;
    const float inv_batch = 1.0f / static_cast<float>(n);
    for (size_t s = 0; s < n; ++s) {
      const PlanSample& sample = *samples[s];
      const Matrix embed = query_stack_.Forward(sample.query_vec);  // (1 x E)
      TreeGather gather = TreeGather::Build(sample.tree);
      std::vector<Matrix> post(convs_.size());
      for (size_t li = 0; li < convs_.size(); ++li) {
        convs_[li].ForwardTrain(sample.tree,
                                li == 0 ? sample.node_features : post[li - 1],
                                li == 0 ? &embed : nullptr,
                                /*node_seg=*/nullptr, gather, &train_scratch_,
                                leaky_alpha_, &post[li]);
      }
      const Matrix pooled = pool_.Forward(post.back());
      const Matrix out = head_.Forward(pooled);

      const float err = out.At(0, 0) - targets[s];
      total_loss += static_cast<double>(err) * err;

      Matrix grad_out(1, 1);
      grad_out.At(0, 0) = 2.0f * err * inv_batch;
      Matrix grad_pooled = head_.Backward(grad_out);
      Matrix grad_nodes = pool_.Backward(grad_pooled);

      // Peak-scratch sample at maximal liveness (mirrors the packed path).
      size_t live_bytes = grad_nodes.Size() * sizeof(float);
      for (const Matrix& z : post) live_bytes += z.Size() * sizeof(float);
      const size_t layer_bytes = current_training_scratch_bytes();
      if (live_bytes + layer_bytes > peak_train_scratch_) {
        peak_train_scratch_ = live_bytes + layer_bytes;
      }

      Matrix grad_embed;
      for (int li = static_cast<int>(convs_.size()) - 1; li >= 0; --li) {
        // Leaky ReLU backward mask from the post-activation (sign-preserving).
        const Matrix& z = post[static_cast<size_t>(li)];
        for (size_t i = 0; i < grad_nodes.Size(); ++i) {
          if (z.data()[i] < 0.0f) grad_nodes.data()[i] *= leaky_alpha_;
        }
        if (li > 0) {
          Matrix grad_in;
          convs_[static_cast<size_t>(li)].BackwardTrain(
              sample.tree, post[static_cast<size_t>(li) - 1],
              /*suffixes=*/nullptr, /*node_seg=*/nullptr, grad_nodes, gather,
              &train_scratch_, &grad_in, /*grad_suffix=*/nullptr);
          grad_nodes = std::move(grad_in);
        } else {
          convs_[0].BackwardTrain(sample.tree, sample.node_features, &embed,
                                  /*node_seg=*/nullptr, grad_nodes, gather,
                                  &train_scratch_, /*grad_in=*/nullptr,
                                  &grad_embed);
        }
      }
      query_stack_.Backward(grad_embed);
    }
    adam_->Step();
    ++version_;
    NoteScratchPeakAndRelease(0);
    return static_cast<float>(total_loss / static_cast<double>(n));
  }

  double total_loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(n);

  for (size_t s = 0; s < n; ++s) {
    const PlanSample& sample = *samples[s];
    // Forward (query stack caches activations for this sample's backward).
    const Matrix embed = query_stack_.Forward(sample.query_vec);
    ForwardState state;
    const float pred = ForwardPlan(embed, sample.tree, sample.node_features, &state);

    const float err = pred - targets[s];
    total_loss += static_cast<double>(err) * err;

    // Backward: dL/dpred = 2 * err / batch (L2 loss, paper §4).
    Matrix grad_out(1, 1);
    grad_out.At(0, 0) = 2.0f * err * inv_batch;
    Matrix grad_pooled = head_.Backward(grad_out);
    Matrix grad_nodes = pool_.Backward(grad_pooled);

    // Peak-scratch sample at maximal liveness (mirrors the packed path).
    size_t live_bytes = (state.augmented.Size() + grad_nodes.Size()) * sizeof(float);
    for (const Matrix& z : state.conv_post) live_bytes += z.Size() * sizeof(float);
    const size_t layer_bytes = current_training_scratch_bytes();
    if (live_bytes + layer_bytes > peak_train_scratch_) {
      peak_train_scratch_ = live_bytes + layer_bytes;
    }

    // Back through the conv stack (activation then conv, reversed).
    for (int li = static_cast<int>(convs_.size()) - 1; li >= 0; --li) {
      // Leaky ReLU backward mask from the post-activation (sign-preserving).
      const Matrix& z = state.conv_post[static_cast<size_t>(li)];
      for (size_t i = 0; i < grad_nodes.Size(); ++i) {
        if (z.data()[i] < 0.0f) grad_nodes.data()[i] *= leaky_alpha_;
      }
      grad_nodes = convs_[static_cast<size_t>(li)].Backward(
          sample.tree,
          li == 0 ? state.augmented : state.conv_post[static_cast<size_t>(li) - 1],
          grad_nodes, &state.gather, &train_scratch_);
    }

    // Split: plan-feature gradients are dropped (inputs); query-embedding
    // gradients sum over nodes (replication).
    Matrix grad_embed(1, embed_dim_);
    for (int i = 0; i < grad_nodes.rows(); ++i) {
      const float* row = grad_nodes.Row(i);
      float* ge = grad_embed.Row(0);
      for (int c = 0; c < embed_dim_; ++c) ge[c] += row[config_.plan_dim + c];
    }
    query_stack_.Backward(grad_embed);
  }

  adam_->Step();
  ++version_;
  NoteScratchPeakAndRelease(0);
  return static_cast<float>(total_loss / static_cast<double>(n));
}

size_t ValueNetwork::current_training_scratch_bytes() const {
  size_t total = query_stack_.TrainingScratchBytes() +
                 head_.TrainingScratchBytes() + pool_.TrainingScratchBytes() +
                 train_scratch_.Bytes();
  for (const auto& conv : convs_) total += conv.TrainingScratchBytes();
  return total;
}

void ValueNetwork::NoteScratchPeakAndRelease(size_t live_bytes) {
  const size_t total = live_bytes + current_training_scratch_bytes();
  if (total > peak_train_scratch_) peak_train_scratch_ = total;
  // Default: RETAIN everything. The buffers are fully overwritten next step
  // (capacity reuse), so retention changes no bits — it only removes the
  // per-step free/alloc churn that the old M_TRIM_THRESHOLD hack papered
  // over.
  if (retain_training_scratch_) return;
  query_stack_.ReleaseTrainingScratch();
  head_.ReleaseTrainingScratch();
  pool_.ReleaseTrainingScratch();
  for (auto& conv : convs_) conv.ReleaseTrainingScratch();
  train_scratch_.Release();
  // Member-owned packed-batch buffers.
  train_batch_ = PlanBatch();
  train_query_vecs_ = Matrix();
  train_embeds_ = Matrix();
  train_node_seg_.clear();
  train_node_seg_.shrink_to_fit();
  train_post_.clear();
  train_post_.shrink_to_fit();
  train_pooled_ = Matrix();
  train_head_out_ = Matrix();
  train_grad_out_ = Matrix();
  train_grad_pooled_ = Matrix();
  train_grad_nodes_ = Matrix();
  train_grad_nodes_tmp_ = Matrix();
  train_grad_embeds_ = Matrix();
  train_grad_query_ = Matrix();
  train_pipe_ = PipelineScratch();
}

std::vector<TreeConv::TrainStats> ValueNetwork::ConvTrainStats() const {
  std::vector<TreeConv::TrainStats> stats;
  stats.reserve(convs_.size());
  for (const auto& conv : convs_) stats.push_back(conv.train_stats());
  return stats;
}

void ValueNetwork::ResetConvTrainStats() {
  for (auto& conv : convs_) conv.ResetTrainStats();
}

}  // namespace neo::nn
