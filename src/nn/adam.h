// Adam optimizer (Kingma & Ba [19]; paper §6.1 trains with Adam).
#pragma once

#include <vector>

#include "src/nn/layers.h"

namespace neo::nn {

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
  float grad_clip = 5.0f;  ///< Global-norm clip; 0 disables.
};

class Adam {
 public:
  explicit Adam(std::vector<Param*> params, AdamOptions options = {});

  /// Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  void ZeroGrad();

  int64_t steps() const { return t_; }

  /// Copies the optimizer state (first/second moments + step count) out /
  /// back in. Used by the model-health snapshot ring: rolling weights back
  /// without their moments would let diverged moments re-corrupt the next
  /// step. Restore requires shapes captured from this same optimizer.
  void CaptureState(std::vector<Matrix>* m, std::vector<Matrix>* v,
                    int64_t* steps) const;
  void RestoreState(const std::vector<Matrix>& m, const std::vector<Matrix>& v,
                    int64_t steps);

 private:
  std::vector<Param*> params_;
  AdamOptions options_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  int64_t t_ = 0;
};

}  // namespace neo::nn
