// Model-health monitor: post-retrain weight/loss screening with a snapshot
// ring and last-good rollback (the guardrail PR's "model health" leg).
//
// Why: the RL loop retrains the value network every episode on its own
// execution experience. A single diverging retrain (bad batch, exploding
// gradients, or — in the fault-injection harness — a corrupted optimizer
// step) poisons every subsequent plan choice: the search trusts scores from
// a network whose weights hold NaN/Inf or whose loss has left its operating
// band. The monitor screens the network after each retrain; healthy states
// are snapshotted into a small in-memory ring, unhealthy ones are rolled
// back to the most recent good snapshot. Rollback restores Adam moments
// alongside the weights (restoring weights under diverged moments would let
// the very next step re-corrupt them) and bumps the weight version, so every
// score/activation cache keyed on (query, version, ...) invalidates instead
// of serving stale scores.
#pragma once

#include <cstdint>
#include <deque>

#include "src/nn/value_network.h"

namespace neo::nn {

struct ModelHealthOptions {
  bool enabled = false;
  /// Snapshots retained. 1 is enough for single-step faults; a deeper ring
  /// tolerates delayed detection (divergence noticed N retrains in).
  int snapshot_ring = 3;
  /// A retrain loss above `loss_divergence_factor` x the median of the
  /// recent healthy-loss window is treated as divergence. 0 disables the
  /// loss screen (non-finite screens stay on).
  double loss_divergence_factor = 0.0;
  /// Healthy losses remembered for the divergence median. The screen only
  /// engages once the window is full, so early-training loss swings (where
  /// no stable operating band exists yet) never trip it.
  int loss_window = 8;
};

/// Deterministic, serial-phase-only (called between retrain and search, where
/// Neo is single-threaded by construction).
class ModelHealthMonitor {
 public:
  enum class Verdict {
    kHealthy = 0,
    kNonFiniteLoss,     ///< Retrain reported NaN/Inf loss.
    kNonFiniteWeights,  ///< A parameter scan found NaN/Inf.
    kLossDiverged,      ///< Loss left the recent healthy band.
  };

  explicit ModelHealthMonitor(ModelHealthOptions options = {})
      : options_(options) {}

  /// Screens `net` after a retrain that reported mean loss `loss`. Healthy:
  /// snapshots the network into the ring and returns kHealthy. Unhealthy:
  /// rolls `net` back to the most recent good snapshot (if any) and returns
  /// the failing screen. Disabled: always kHealthy, no snapshots.
  Verdict Observe(ValueNetwork* net, double loss);

  static const char* VerdictName(Verdict v);

  int64_t rollbacks() const { return rollbacks_; }
  int64_t snapshots_taken() const { return snapshots_taken_; }
  bool has_snapshot() const { return !ring_.empty(); }
  const ModelHealthOptions& options() const { return options_; }

  void Reset() {
    ring_.clear();
    recent_losses_.clear();
    rollbacks_ = 0;
    snapshots_taken_ = 0;
  }

 private:
  bool LossDiverged(double loss) const;

  ModelHealthOptions options_;
  std::deque<ValueNetwork::WeightSnapshot> ring_;  ///< Oldest at front.
  std::deque<double> recent_losses_;               ///< Healthy losses only.
  int64_t rollbacks_ = 0;
  int64_t snapshots_taken_ = 0;
};

}  // namespace neo::nn
